package mlkv_test

import (
	"testing"

	"github.com/llm-db/mlkv-go/internal/util"
)

// remoteGetBatchAllocBudget is the committed allocs/op ceiling for the
// remote 256-key GetBatch hot path, client and loopback server combined.
// The steady state after the zero-allocation work is 5 allocs/op (one
// response channel, the pooled-buffer box, and map churn — see
// BENCH_allocs.json); the budget leaves headroom for scheduler noise
// while still failing loudly if per-frame or per-batch allocations creep
// back in (the pre-pooling path was 13).
const remoteGetBatchAllocBudget = 8

// TestRemoteGetBatchAllocBudget is the allocation-regression gate wired
// into CI's bench-smoke step: it fails when the remote hot read path
// allocates more than the committed budget per 256-key GetBatch. It
// shares its harness (and thus its exact configuration — single-shard
// loopback server, 2^16 first-touched keys) with
// BenchmarkRemoteGetBatch256, the benchmark BENCH_allocs.json tracks.
func TestRemoteGetBatchAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate needs a steady loopback server")
	}
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	const batch = 256
	s, keys, dst := newRemoteBenchSession(t, batch, 0)
	zipf := util.NewScrambledZipf(util.NewRNG(7), remoteBenchRecords, 0.99)
	// A few untimed rounds settle the pools and scratch growth.
	for i := 0; i < 16; i++ {
		for j := range keys {
			keys[j] = zipf.Next()
		}
		if err := s.GetBatch(keys, dst); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		for j := range keys {
			keys[j] = zipf.Next()
		}
		if err := s.GetBatch(keys, dst); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("remote GetBatch(%d): %.1f allocs/op (budget %d)", batch, avg, remoteGetBatchAllocBudget)
	if avg > remoteGetBatchAllocBudget {
		t.Fatalf("remote GetBatch(%d) allocates %.1f/op, budget %d — the hot path regressed",
			batch, avg, remoteGetBatchAllocBudget)
	}
}
