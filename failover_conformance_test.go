package mlkv_test

import (
	"context"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	mlkv "github.com/llm-db/mlkv-go"
	"github.com/llm-db/mlkv-go/internal/cluster"
	"github.com/llm-db/mlkv-go/internal/faultnet"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/server"
)

// Failover conformance: the acceptance tests for the failure-detection /
// replica-promotion subsystem, driven end to end through the public API
// with real TCP servers and the faultnet chaos proxy in between. These are
// the only tests allowed to kill a primary mid-workload.

// failoverHealth is the detector tuning the failover tests run with: tight
// enough that a kill-to-promotion cycle fits a test budget, loose enough
// that a loaded CI machine does not false-positive a healthy peer.
var failoverHealth = cluster.HealthConfig{
	Interval:     25 * time.Millisecond,
	SuspectAfter: 250 * time.Millisecond,
}

// failoverNode is one live node of a failover test cluster.
type failoverNode struct {
	id  string
	dir string // data dir: model stores + the persisted cluster map
	reg *server.Registry
	st  *cluster.State
	srv *server.Server
	ln  net.Listener
	end chan error
}

// startFailoverNode brings one node up the way cmd/mlkv-server does:
// registry, cluster state with persistence + replication + health, server.
func startFailoverNode(t *testing.T, id, dir string, ln net.Listener, m *cluster.Map) *failoverNode {
	t.Helper()
	reg := server.NewRegistry(server.RegistryConfig{
		DefaultShards: 2,
		DefaultBound:  mlkv.ASP,
		Name:          id,
		Opener: func(model string, dim, shards int, b int64, engine string) (kv.Store, error) {
			return kv.OpenEngine(engine, kv.ShardedConfig{
				Dir: filepath.Join(dir, model), Shards: shards, ValueSize: dim * 4,
				RecordsPerPage: 64, MemoryBytes: 1 << 20, ExpectedKeys: 1 << 12,
				StalenessBound: b,
			}, "mlkv")
		},
	})
	st, err := cluster.NewState(id, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.EnablePersistence(dir); err != nil {
		t.Fatal(err)
	}
	st.EnableReplication()
	hc := failoverHealth
	hc.Watermark = reg.ReplWatermark
	hc.Logf = t.Logf
	st.StartHealth(hc)
	srv := server.New(server.Config{Registry: reg, Cluster: st})
	n := &failoverNode{id: id, dir: dir, reg: reg, st: st, srv: srv, ln: ln, end: make(chan error, 1)}
	go func() { n.end <- srv.Serve(ln) }()
	return n
}

// stop tears a node down; graceful says whether to drain politely (a
// planned restart) or yank everything (simulated death — the caller cuts
// the network first, so peers see silence, not a FIN).
func (n *failoverNode) stop(graceful bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if graceful {
		_ = n.srv.Shutdown(ctx)
		<-n.end
		n.st.Close()
		return
	}
	n.st.Close()
	_ = n.srv.Shutdown(ctx)
	<-n.end
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// failVal is the deterministic value written for key k at generation gen,
// so read-back can prove which acked write survived the failover.
func failVal(k uint64, gen int, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(k)*10 + float32(gen)
	}
	return v
}

// TestClusterFailoverPromotion is the headline acceptance test: kill the
// primary mid-workload through the chaos proxy, and the cluster must
// confirm the death, promote the most-caught-up replica, and serve client
// writes again within the retry budget — with every previously acked
// write still readable, and the old primary demoted (not split-brained)
// when it rejoins from its stale persisted map.
func TestClusterFailoverPromotion(t *testing.T) {
	const dim = 4
	dirs := map[string]string{"n0": t.TempDir(), "n1": t.TempDir(), "n2": t.TempDir()}
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// n0 is fronted by the chaos proxy: its advertised address — what
	// peers and clients dial — is the proxy, so severing the proxy is the
	// network half of killing it.
	proxy, err := faultnet.New(ln0.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	m, err := cluster.BuildMap([]cluster.Node{
		{ID: "n0", Addr: proxy.Addr(), Role: cluster.RolePrimary},
		{ID: "n1", Addr: ln1.Addr().String(), Role: cluster.RolePrimary},
		{ID: "n2", Addr: ln2.Addr().String(), Role: cluster.RoleReplica, PrimaryID: "n0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	n0 := startFailoverNode(t, "n0", dirs["n0"], ln0, m)
	n1 := startFailoverNode(t, "n1", dirs["n1"], ln1, m)
	n2 := startFailoverNode(t, "n2", dirs["n2"], ln2, m)
	defer n1.stop(true)
	defer n2.stop(true)

	db, err := mlkv.Connect(mlkv.Scheme+strings.Join([]string{proxy.Addr(), ln1.Addr().String(), ln2.Addr().String()}, ","),
		mlkv.WithConns(2))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mdl, err := db.Open("failover", dim, mlkv.WithStalenessBound(mlkv.ASP))
	if err != nil {
		t.Fatal(err)
	}
	defer mdl.Close()
	ses, err := mdl.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()

	// Workload phase 1: 64 keys across the whole ring, so both primaries
	// own some and the replica has a stream to catch up on.
	const keys = 64
	var n0Owned []uint64
	for k := uint64(0); k < keys; k++ {
		if err := ses.Put(k, failVal(k, 1, dim)); err != nil {
			t.Fatal(err)
		}
		if m.Owner(k).ID == "n0" {
			n0Owned = append(n0Owned, k)
		}
	}
	if len(n0Owned) == 0 {
		t.Fatal("no keys landed on n0; the scenario cannot run")
	}
	// The promotion read-back is only honest once the replica has applied
	// everything the dying primary acked.
	waitFor(t, 5*time.Second, "replica catch-up", func() bool {
		return n2.reg.ReplWatermark() >= uint64(len(n0Owned))
	})

	// Kill n0: sever its network, then stop the process. Peers see pure
	// silence — no FIN, no leave announcement — the hard way to die.
	proxy.Partition()
	n0.stop(false)
	t0 := time.Now()

	// Workload phase 2: keep hammering an n0-owned key until a write is
	// acked again. Each attempt runs under its own deadline; the overall
	// budget is what the acceptance criterion bounds.
	probe := n0Owned[0]
	waitFor(t, 30*time.Second, "first post-failure acked write", func() bool {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		return ses.PutCtx(ctx, probe, failVal(probe, 2, dim)) == nil
	})
	t.Logf("failover: detection to first acked write took %v", time.Since(t0))

	// The survivors must agree n2 now owns n0's ranges at a higher epoch.
	for _, n := range []*failoverNode{n1, n2} {
		cur := n.st.Map()
		if cur.Epoch <= m.Epoch {
			t.Fatalf("%s still at epoch %d after promotion", n.id, cur.Epoch)
		}
		if cur.Node("n2").Role != cluster.RolePrimary {
			t.Fatalf("%s does not see n2 as primary", n.id)
		}
		if got := cur.Node("n0"); got.Role != cluster.RoleReplica || got.PrimaryID != "n2" {
			t.Fatalf("%s sees dead n0 as %v of %q, want demoted replica of n2", n.id, got.Role, got.PrimaryID)
		}
	}
	if deaths, promos := n2.st.HealthStats(); deaths == 0 || promos != 1 {
		t.Fatalf("n2 health stats deaths=%d promotions=%d, want >=1 and 1", deaths, promos)
	}

	// Every write acked before or after the kill must read back: phase-1
	// values for untouched keys, the phase-2 value for the probe.
	for _, k := range append([]uint64(nil), n0Owned...) {
		gen := 1
		if k == probe {
			gen = 2
		}
		got := make([]float32, dim)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := ses.GetCtx(ctx, k, got)
		cancel()
		if err != nil {
			t.Fatalf("acked key %d unreadable after failover: %v", k, err)
		}
		if want := failVal(k, gen, dim); !f32sEq(got, want) {
			t.Fatalf("acked key %d read back %v, want %v: an acked write was lost", k, got, want)
		}
	}

	// More writes across the ring must now succeed first-try on the new
	// topology (n2 for the failed-over ranges, n1 untouched).
	for k := uint64(keys); k < keys+16; k++ {
		if err := ses.Put(k, failVal(k, 2, dim)); err != nil {
			t.Fatalf("post-failover put %d: %v", k, err)
		}
	}

	// Rejoin: restart n0 from its stale persisted map (which still claims
	// n0 is primary) on a fresh listener behind the healed proxy. Anti-
	// entropy with the survivors must demote it, not split-brain the ring.
	self, stale, err := cluster.LoadMap(dirs["n0"])
	if err != nil {
		t.Fatal(err)
	}
	if self != "n0" || stale.Epoch != m.Epoch || stale.Node("n0").Role != cluster.RolePrimary {
		t.Fatalf("persisted map for n0: self=%q epoch=%d, want the pre-death topology", self, stale.Epoch)
	}
	ln0b, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n0b := startFailoverNode(t, "n0", dirs["n0"], ln0b, stale)
	defer n0b.stop(true)
	proxy.SetTarget(ln0b.Addr().String())
	proxy.Heal()

	waitFor(t, 10*time.Second, "rejoined primary to demote itself", func() bool {
		cur := n0b.st.Map()
		n := cur.Node("n0")
		return cur.Epoch > m.Epoch && n.Role == cluster.RoleReplica && !n0b.st.WriteOwned(probe)
	})
	// And the demoted node refuses what it used to own: a write through
	// the client still lands on n2, not the returned zombie.
	if err := ses.Put(probe, failVal(probe, 3, dim)); err != nil {
		t.Fatalf("write after rejoin: %v", err)
	}
	got := make([]float32, dim)
	if err := ses.Get(probe, got); err != nil || !f32sEq(got, failVal(probe, 3, dim)) {
		t.Fatalf("read after rejoin: %v %v", got, err)
	}
}

// TestClusterFailoverRestartFromPersistedMaps pins flag-less restart: all
// three nodes shut down gracefully and come back with nothing but their
// data dirs — topology, roles, and epoch recovered from the persisted
// cluster maps, and the cluster serves clients again.
func TestClusterFailoverRestartFromPersistedMaps(t *testing.T) {
	const dim = 4
	ids := []string{"n0", "n1", "n2"}
	dirs := make(map[string]string, len(ids))
	lns := make(map[string]net.Listener, len(ids))
	specs := make([]cluster.Node, 0, len(ids))
	for _, id := range ids {
		dirs[id] = t.TempDir()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[id] = ln
		role, primary := cluster.RolePrimary, ""
		if id == "n2" {
			role, primary = cluster.RoleReplica, "n0"
		}
		specs = append(specs, cluster.Node{ID: id, Addr: ln.Addr().String(), Role: role, PrimaryID: primary})
	}
	m, err := cluster.BuildMap(specs)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*failoverNode, 0, len(ids))
	for _, id := range ids {
		nodes = append(nodes, startFailoverNode(t, id, dirs[id], lns[id], m))
	}

	target := mlkv.Scheme + strings.Join([]string{specs[0].Addr, specs[1].Addr, specs[2].Addr}, ",")
	db, err := mlkv.Connect(target, mlkv.WithConns(2))
	if err != nil {
		t.Fatal(err)
	}
	mdl, err := db.Open("restart", dim, mlkv.WithStalenessBound(mlkv.ASP))
	if err != nil {
		t.Fatal(err)
	}
	ses, err := mdl.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 16; k++ {
		if err := ses.Put(k, failVal(k, 1, dim)); err != nil {
			t.Fatal(err)
		}
	}
	ses.Close()
	mdl.Close()
	db.Close()

	// Full-cluster graceful shutdown, then restart every node from
	// nothing but LoadMap — the equivalent of rebooting mlkv-server with
	// only -addr and -dir (no -cluster, no -join).
	for _, n := range nodes {
		n.stop(true)
	}
	for _, id := range ids {
		self, saved, err := cluster.LoadMap(dirs[id])
		if err != nil {
			t.Fatalf("node %s persisted no usable map: %v", id, err)
		}
		if self != id {
			t.Fatalf("node %s persisted self id %q", id, self)
		}
		if saved.Epoch != m.Epoch || len(saved.Nodes) != len(ids) {
			t.Fatalf("node %s recovered epoch=%d nodes=%d, want %d/%d", id, saved.Epoch, len(saved.Nodes), m.Epoch, len(ids))
		}
		for _, want := range specs {
			got := saved.Node(want.ID)
			if got == nil || got.Addr != want.Addr || got.Role != want.Role || got.PrimaryID != want.PrimaryID {
				t.Fatalf("node %s recovered %s as %+v, want %+v", id, want.ID, got, want)
			}
		}
		// Rebind the same advertised address the persisted map records.
		ln, err := net.Listen("tcp", saved.Node(id).Addr)
		if err != nil {
			t.Fatalf("rebind %s: %v", saved.Node(id).Addr, err)
		}
		lns[id] = ln
		nodes = append(nodes, startFailoverNode(t, id, dirs[id], ln, saved))
	}
	restarted := nodes[len(ids):]
	for _, n := range restarted {
		defer n.stop(true)
	}

	// The reborn cluster serves the public API end to end.
	db2, err := mlkv.Connect(target, mlkv.WithConns(2))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	mdl2, err := db2.Open("restart-2", dim, mlkv.WithStalenessBound(mlkv.ASP))
	if err != nil {
		t.Fatal(err)
	}
	defer mdl2.Close()
	ses2, err := mdl2.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer ses2.Close()
	for k := uint64(0); k < 16; k++ {
		if err := ses2.Put(k, failVal(k, 2, dim)); err != nil {
			t.Fatalf("put %d on restarted cluster: %v", k, err)
		}
		got := make([]float32, dim)
		if err := ses2.Get(k, got); err != nil || !f32sEq(got, failVal(k, 2, dim)) {
			t.Fatalf("get %d on restarted cluster: %v %v", k, got, err)
		}
	}
	st, err := mdl2.StatsCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.ClusterNodes != int64(len(ids)) || st.ClusterEpoch != int64(m.Epoch) {
		t.Fatalf("client sees nodes=%d epoch=%d, want %d/%d", st.ClusterNodes, st.ClusterEpoch, len(ids), m.Epoch)
	}
}
