package mlkv_test

// One testing.B benchmark per paper artifact (Figures 2 and 6–11), each
// delegating to the same experiment runners that cmd/mlkv-bench uses, at
// the tiny scale so `go test -bench=.` completes in minutes. Use
// `go run ./cmd/mlkv-bench -scale small` (or paper) for the full sweeps;
// EXPERIMENTS.md records representative output.

import (
	"io"
	"testing"
	"time"

	"github.com/llm-db/mlkv-go/internal/bench"
	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/ycsb"

	mlkv "github.com/llm-db/mlkv-go"
)

func benchScale() bench.Scale {
	s := bench.Tiny
	s.MaxSamples = 2000
	s.Duration = 300 * time.Millisecond
	return s
}

func runFigure(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e := bench.NewEnv(benchScale(), b.TempDir(), io.Discard)
		if err := e.Run(name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2SyncVsAsync regenerates Figure 2 (the data-stall /
// staleness problem statement).
func BenchmarkFig2SyncVsAsync(b *testing.B) { runFigure(b, "fig2") }

// BenchmarkFig6Convergence regenerates Figure 6 (end-to-end convergence,
// native in-memory vs MLKV).
func BenchmarkFig6Convergence(b *testing.B) { runFigure(b, "fig6") }

// BenchmarkFig7Backends regenerates Figure 7 (larger-than-memory
// throughput and energy across mlkv/faster/lsm/bptree and buffer sizes).
func BenchmarkFig7Backends(b *testing.B) { runFigure(b, "fig7") }

// BenchmarkFig8Staleness regenerates Figure 8 (throughput vs quality
// across staleness bounds).
func BenchmarkFig8Staleness(b *testing.B) { runFigure(b, "fig8") }

// BenchmarkFig9Lookahead regenerates Figure 9 (look-ahead prefetching and
// the BETA ordering).
func BenchmarkFig9Lookahead(b *testing.B) { runFigure(b, "fig9") }

// BenchmarkFig10YCSB regenerates Figure 10 (YCSB, MLKV vs FASTER).
func BenchmarkFig10YCSB(b *testing.B) { runFigure(b, "fig10") }

// BenchmarkFig11EBay regenerates Figure 11 (eBay-like case studies).
func BenchmarkFig11EBay(b *testing.B) { runFigure(b, "fig11") }

// BenchmarkGetPut measures raw single-key Get+Put latency through the
// public API with the clock enabled (micro-benchmark, not a paper figure).
func BenchmarkGetPut(b *testing.B) {
	m, err := mlkv.Open("bench", 16,
		mlkv.WithDir(b.TempDir()), mlkv.WithMemory(64<<20), mlkv.WithStalenessBound(mlkv.ASP))
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	s, err := m.NewSession()
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	emb := make([]float32, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i%100000 + 1)
		if err := s.Get(k, emb); err != nil {
			b.Fatal(err)
		}
		if err := s.Put(k, emb); err != nil {
			b.Fatal(err)
		}
	}
}

// benchShardedZipf measures Zipf read-heavy KV throughput over a store
// hash-partitioned across the given shard count, with the total memory
// budget held fixed, under durable (fsync-per-page) writes. The 1-vs-4
// pair quantifies the shard router's win: one store serializes every log
// append behind a single flusher's fsync stream, while independent
// per-shard logs overlap their flushes.
func benchShardedZipf(b *testing.B, shards int) {
	b.Helper()
	const records = 1 << 19
	store, err := kv.OpenFasterShards(kv.ShardedConfig{
		Dir: b.TempDir(), Shards: shards, ValueSize: 64,
		MemoryBytes: 512 * 256 * (64 + 24), ExpectedKeys: records,
		MutableFraction: 0.375,
		StalenessBound:  faster.BoundAsync, SyncWrites: true,
	}, "mlkv-sharded")
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	if err := ycsb.Load(store, records, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	res, err := ycsb.Run(ycsb.Options{
		Store: store, Records: records, Threads: 8,
		ReadFraction: 0.9, Dist: ycsb.Zipfian,
		MaxOps: int64(b.N) + 1000, Seed: 2, SkipLoad: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Throughput, "ops/s")
}

// BenchmarkZipfUnsharded is the 1-shard baseline for the sharding pair.
func BenchmarkZipfUnsharded(b *testing.B) { benchShardedZipf(b, 1) }

// BenchmarkZipfSharded4 runs the same workload hash-partitioned across 4
// store instances under the same total memory budget.
func BenchmarkZipfSharded4(b *testing.B) { benchShardedZipf(b, 4) }

// BenchmarkYCSBZipfian measures raw KV throughput under YCSB-A skew
// (micro-benchmark feeding Figure 10's shape).
func BenchmarkYCSBZipfian(b *testing.B) {
	st, err := faster.Open(faster.Config{
		Dir: b.TempDir(), ValueSize: 64, RecordsPerPage: 256,
		MemPages: 64, MutablePages: 24,
		StalenessBound: faster.BoundAsync, ExpectedKeys: 1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	store := kv.WrapFaster(st, "mlkv")
	defer store.Close()
	if err := ycsb.Load(store, 1<<16, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	res, err := ycsb.Run(ycsb.Options{
		Store: store, Records: 1 << 16, Threads: 4,
		ReadFraction: 0.5, Dist: ycsb.Zipfian,
		MaxOps: int64(b.N) + 1000, Seed: 2, SkipLoad: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Throughput, "ops/s")
}
