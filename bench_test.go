package mlkv_test

// One testing.B benchmark per paper artifact (Figures 2 and 6–11), each
// delegating to the same experiment runners that cmd/mlkv-bench uses, at
// the tiny scale so `go test -bench=.` completes in minutes. Use
// `go run ./cmd/mlkv-bench -scale small` (or paper) for the full sweeps;
// EXPERIMENTS.md records representative output.

import (
	"context"
	"io"
	"net"
	"testing"
	"time"

	"github.com/llm-db/mlkv-go/internal/bench"
	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/server"
	"github.com/llm-db/mlkv-go/internal/util"
	"github.com/llm-db/mlkv-go/internal/ycsb"

	mlkv "github.com/llm-db/mlkv-go"
)

func benchScale() bench.Scale {
	s := bench.Tiny
	s.MaxSamples = 2000
	s.Duration = 300 * time.Millisecond
	return s
}

func runFigure(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e := bench.NewEnv(benchScale(), b.TempDir(), io.Discard)
		if err := e.Run(name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2SyncVsAsync regenerates Figure 2 (the data-stall /
// staleness problem statement).
func BenchmarkFig2SyncVsAsync(b *testing.B) { runFigure(b, "fig2") }

// BenchmarkFig6Convergence regenerates Figure 6 (end-to-end convergence,
// native in-memory vs MLKV).
func BenchmarkFig6Convergence(b *testing.B) { runFigure(b, "fig6") }

// BenchmarkFig7Backends regenerates Figure 7 (larger-than-memory
// throughput and energy across mlkv/faster/lsm/bptree and buffer sizes).
func BenchmarkFig7Backends(b *testing.B) { runFigure(b, "fig7") }

// BenchmarkFig8Staleness regenerates Figure 8 (throughput vs quality
// across staleness bounds).
func BenchmarkFig8Staleness(b *testing.B) { runFigure(b, "fig8") }

// BenchmarkFig9Lookahead regenerates Figure 9 (look-ahead prefetching and
// the BETA ordering).
func BenchmarkFig9Lookahead(b *testing.B) { runFigure(b, "fig9") }

// BenchmarkFig10YCSB regenerates Figure 10 (YCSB, MLKV vs FASTER).
func BenchmarkFig10YCSB(b *testing.B) { runFigure(b, "fig10") }

// BenchmarkFig11EBay regenerates Figure 11 (eBay-like case studies).
func BenchmarkFig11EBay(b *testing.B) { runFigure(b, "fig11") }

// BenchmarkEngines runs the engine bake-off (faster vs lsm vs bptree on
// YCSB mixes, batched DLRM training, and public-API batched reads — the
// tracked BENCH_engines.json sweep).
func BenchmarkEngines(b *testing.B) { runFigure(b, "engines") }

// BenchmarkLatency runs the tail-latency sweep (Zipf reads across
// workers × batch on the in-process and loopback tiers, hot tier off and
// on — the tracked BENCH_latency.json sweep).
func BenchmarkLatency(b *testing.B) { runFigure(b, "latency") }

// BenchmarkGetPut measures raw single-key Get+Put latency through the
// public API with the clock enabled (micro-benchmark, not a paper figure).
func BenchmarkGetPut(b *testing.B) {
	m, err := mlkv.Open("bench", 16,
		mlkv.WithDir(b.TempDir()), mlkv.WithMemory(64<<20), mlkv.WithStalenessBound(mlkv.ASP))
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	s, err := m.NewSession()
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	emb := make([]float32, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i%100000 + 1)
		if err := s.Get(k, emb); err != nil {
			b.Fatal(err)
		}
		if err := s.Put(k, emb); err != nil {
			b.Fatal(err)
		}
	}
}

// benchShardedZipf measures Zipf read-heavy KV throughput over a store
// hash-partitioned across the given shard count, with the total memory
// budget held fixed, under durable (fsync-per-page) writes. The 1-vs-4
// pair quantifies the shard router's win: one store serializes every log
// append behind a single flusher's fsync stream, while independent
// per-shard logs overlap their flushes.
func benchShardedZipf(b *testing.B, shards int) {
	b.Helper()
	const records = 1 << 19
	store, err := kv.OpenFasterShards(kv.ShardedConfig{
		Dir: b.TempDir(), Shards: shards, ValueSize: 64,
		MemoryBytes: 512 * 256 * (64 + 24), ExpectedKeys: records,
		MutableFraction: 0.375,
		StalenessBound:  faster.BoundAsync, SyncWrites: true,
	}, "mlkv-sharded")
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	if err := ycsb.Load(store, records, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	res, err := ycsb.Run(ycsb.Options{
		Store: store, Records: records, Threads: 8,
		ReadFraction: 0.9, Dist: ycsb.Zipfian,
		MaxOps: int64(b.N) + 1000, Seed: 2, SkipLoad: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Throughput, "ops/s")
}

// BenchmarkZipfUnsharded is the 1-shard baseline for the sharding pair.
func BenchmarkZipfUnsharded(b *testing.B) { benchShardedZipf(b, 1) }

// BenchmarkZipfSharded4 runs the same workload hash-partitioned across 4
// store instances under the same total memory budget.
func BenchmarkZipfSharded4(b *testing.B) { benchShardedZipf(b, 4) }

// remoteBenchRecords/Dim fix the configuration the remote hot-path
// harness measures; the CI allocation gate and the benchmarks share it,
// so the committed budget and the tracked trajectory describe the same
// setup.
const (
	remoteBenchRecords = 1 << 16
	remoteBenchDim     = 16
)

// newRemoteBenchSession starts a single-shard loopback mlkv-server,
// opens one model through the public API (with a client-side hot tier
// when cacheEntries > 0), and first-touches the whole key space so the
// caller's measured loop is pure steady-state reads (the first-touch
// init/write-back path allocates by design — per-key RNG seeding and a
// write-back round trip). Everything tears down via tb.Cleanup.
func newRemoteBenchSession(tb testing.TB, batch, cacheEntries int, copts ...mlkv.ConnectOption) (*mlkv.Session, []uint64, []float32) {
	tb.Helper()
	dir := tb.TempDir()
	reg := server.NewRegistry(server.RegistryConfig{
		DefaultBound: faster.BoundAsync,
		Opener: func(id string, d, shards int, bound int64, engine string) (kv.Store, error) {
			return kv.OpenFasterShards(kv.ShardedConfig{
				Dir: dir + "/" + id, Shards: shards, ValueSize: d * 4,
				MemoryBytes: 32 << 20, ExpectedKeys: remoteBenchRecords,
				StalenessBound: bound,
			}, "mlkv")
		},
	})
	tb.Cleanup(func() { reg.Close() })
	srv := server.New(server.Config{Registry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	tb.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveErr
	})

	db, err := mlkv.Connect(mlkv.Scheme+ln.Addr().String(), copts...)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { db.Close() })
	opts := []mlkv.Option{mlkv.WithStalenessBound(mlkv.ASP)}
	if cacheEntries > 0 {
		opts = append(opts, mlkv.WithCache(cacheEntries))
	}
	m, err := db.Open("allocbench", remoteBenchDim, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { m.Close() })
	s, err := m.NewSession()
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(s.Close)

	keys := make([]uint64, batch)
	dst := make([]float32, batch*remoteBenchDim)
	for base := uint64(0); base < remoteBenchRecords; base += uint64(batch) {
		for i := range keys {
			keys[i] = base + uint64(i)
		}
		if err := s.GetBatch(keys, dst); err != nil {
			tb.Fatal(err)
		}
	}
	return s, keys, dst
}

// benchRemoteGetBatch measures the remote hot read path end to end: a
// loopback mlkv-server and a public-API session issuing Zipf-skewed
// GetBatch calls of the given batch size. ReportAllocs makes it the
// allocation trajectory for the whole client+server path (both run in
// this process), which BENCH_allocs.json and the CI allocation gate
// track.
func benchRemoteGetBatch(b *testing.B, batch int, cacheEntries int, copts ...mlkv.ConnectOption) {
	b.Helper()
	s, keys, dst := newRemoteBenchSession(b, batch, cacheEntries, copts...)
	zipf := util.NewScrambledZipf(util.NewRNG(7), remoteBenchRecords, 0.99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range keys {
			keys[j] = zipf.Next()
		}
		if err := s.GetBatch(keys, dst); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "keys/s")
}

// BenchmarkRemoteGetBatch256 is the remote 256-key hot read path the
// allocation-regression gate budgets (see TestRemoteGetBatchAllocBudget).
func BenchmarkRemoteGetBatch256(b *testing.B) { benchRemoteGetBatch(b, 256, 0) }

// BenchmarkRemoteGetBatch256Cached is the same path with the client-side
// hot tier enabled, at a capacity covering the whole key space.
func BenchmarkRemoteGetBatch256Cached(b *testing.B) { benchRemoteGetBatch(b, 256, 1<<16) }

// BenchmarkRemoteGetBatch256Hedged is the same path with adaptive read
// hedging armed on a two-connection pool — the configuration the latency
// experiment's remote-hedge rows measure. On an unloaded loopback almost
// no hedge fires (the adaptive delay tracks the observed p99), so the
// number also documents hedging's overhead when it is not needed.
func BenchmarkRemoteGetBatch256Hedged(b *testing.B) {
	benchRemoteGetBatch(b, 256, 0, mlkv.WithConns(2), mlkv.WithAdaptiveHedge())
}

// BenchmarkYCSBZipfian measures raw KV throughput under YCSB-A skew
// (micro-benchmark feeding Figure 10's shape).
func BenchmarkYCSBZipfian(b *testing.B) {
	st, err := faster.Open(faster.Config{
		Dir: b.TempDir(), ValueSize: 64, RecordsPerPage: 256,
		MemPages: 64, MutablePages: 24,
		StalenessBound: faster.BoundAsync, ExpectedKeys: 1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	store := kv.WrapFaster(st, "mlkv")
	defer store.Close()
	if err := ycsb.Load(store, 1<<16, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	res, err := ycsb.Run(ycsb.Options{
		Store: store, Records: 1 << 16, Threads: 4,
		ReadFraction: 0.5, Dist: ycsb.Zipfian,
		MaxOps: int64(b.N) + 1000, Seed: 2, SkipLoad: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Throughput, "ops/s")
}
