package mlkv_test

import (
	"context"
	"errors"
	"math"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	mlkv "github.com/llm-db/mlkv-go"
	"github.com/llm-db/mlkv-go/internal/cluster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/server"
	"github.com/llm-db/mlkv-go/internal/wire"
)

// engineCases are the engine axis of the conformance matrix: every
// storage engine the public API can select, and whether it carries the
// vector clock the staleness ladder needs.
var engineCases = []struct {
	name      string
	clockFree bool
}{
	{"mlkv", false},
	{"lsm", true},
	{"bptree", true},
}

// startTestServer serves a lazily-opening model registry on loopback and
// returns an "mlkv://" target for it. The opener honors the engine each
// OPEN frame requests, exactly like cmd/mlkv-server.
func startTestServer(t *testing.T, bound int64) string {
	t.Helper()
	dir := t.TempDir()
	reg := server.NewRegistry(server.RegistryConfig{
		DefaultShards: 2,
		DefaultBound:  bound,
		Opener: func(id string, dim, shards int, b int64, engine string) (kv.Store, error) {
			name := engine
			if eng, err := kv.NormalizeEngine(engine); err == nil && eng == kv.EngineFaster {
				name = "mlkv"
			}
			return kv.OpenEngine(engine, kv.ShardedConfig{
				Dir: filepath.Join(dir, id), Shards: shards, ValueSize: dim * 4,
				RecordsPerPage: 64, MemoryBytes: 1 << 20, ExpectedKeys: 1 << 12,
				StalenessBound: b,
			}, name)
		},
	})
	srv := server.New(server.Config{Registry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
		reg.Close()
	})
	return mlkv.Scheme + ln.Addr().String()
}

// startTestCluster serves a three-node loopback cluster — primaries n0,
// n1, n2, or (withReplica) primaries n0, n1 plus n2 replicating n0 — and
// returns the full seed-list target, the per-node registries keyed by node
// id (for asserting which server actually served an op), and the topology
// map clients will discover.
func startTestCluster(t *testing.T, bound int64, withReplica bool) (string, map[string]*server.Registry, *cluster.Map) {
	t.Helper()
	ids := []string{"n0", "n1", "n2"}
	lns := make([]net.Listener, len(ids))
	specs := make([]cluster.Node, len(ids))
	addrs := make([]string, len(ids))
	for i := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i], addrs[i] = ln, ln.Addr().String()
		specs[i] = cluster.Node{ID: ids[i], Addr: addrs[i], Role: cluster.RolePrimary}
	}
	if withReplica {
		specs[2].Role = cluster.RoleReplica
		specs[2].PrimaryID = ids[0]
	}
	m, err := cluster.BuildMap(specs)
	if err != nil {
		t.Fatal(err)
	}
	regs := make(map[string]*server.Registry, len(ids))
	for i := range ids {
		dir := t.TempDir()
		reg := server.NewRegistry(server.RegistryConfig{
			DefaultShards: 2,
			DefaultBound:  bound,
			Name:          ids[i],
			Opener: func(id string, dim, shards int, b int64, engine string) (kv.Store, error) {
				name := engine
				if eng, err := kv.NormalizeEngine(engine); err == nil && eng == kv.EngineFaster {
					name = "mlkv"
				}
				return kv.OpenEngine(engine, kv.ShardedConfig{
					Dir: filepath.Join(dir, id), Shards: shards, ValueSize: dim * 4,
					RecordsPerPage: 64, MemoryBytes: 1 << 20, ExpectedKeys: 1 << 12,
					StalenessBound: b,
				}, name)
			},
		})
		st, err := cluster.NewState(ids[i], m)
		if err != nil {
			t.Fatal(err)
		}
		st.EnableReplication()
		srv := server.New(server.Config{Registry: reg, Cluster: st})
		serveErr := make(chan error, 1)
		go func(ln net.Listener) { serveErr <- srv.Serve(ln) }(lns[i])
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
			if err := <-serveErr; err != nil {
				t.Errorf("serve: %v", err)
			}
			st.Close()
			reg.Close()
		})
		regs[ids[i]] = reg
	}
	return mlkv.Scheme + strings.Join(addrs, ","), regs, m
}

// clusterModelStats returns the named model's server-side stats on one
// node of the cluster. The router eager-opens models on every node, so a
// missing model is a harness failure, not an assertable condition.
func clusterModelStats(t *testing.T, reg *server.Registry, id string) wire.ModelStats {
	t.Helper()
	for _, m := range reg.Models() {
		if m.ID() == id {
			return m.Stats()
		}
	}
	t.Fatalf("node %s has no model %q", reg.Name(), id)
	return wire.ModelStats{}
}

// withTargets runs fn against a local directory DB, a live loopback
// mlkv-server, and a three-node loopback cluster — the driver axis of the
// conformance harness: the public API must behave identically over all
// three.
func withTargets(t *testing.T, fn func(t *testing.T, db *mlkv.DB)) {
	t.Run("local", func(t *testing.T) {
		db, err := mlkv.Connect(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		fn(t, db)
	})
	t.Run("remote", func(t *testing.T) {
		db, err := mlkv.Connect(startTestServer(t, mlkv.ASP), mlkv.WithConns(3))
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		fn(t, db)
	})
	t.Run("cluster", func(t *testing.T) {
		target, _, _ := startTestCluster(t, mlkv.ASP, false)
		db, err := mlkv.Connect(target, mlkv.WithConns(2))
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		fn(t, db)
	})
}

// withEngineTargets runs fn over the full conformance matrix: every
// engine (mlkv, lsm, bptree) behind both drivers (local, remote). The
// same API calls must observe the same behavior in all six cells, except
// where a staleness-ladder case names a capability an engine genuinely
// lacks (and then the test documents the skip).
func withEngineTargets(t *testing.T, fn func(t *testing.T, db *mlkv.DB, engine string, clockFree bool)) {
	for _, ec := range engineCases {
		ec := ec
		t.Run(ec.name, func(t *testing.T) {
			withTargets(t, func(t *testing.T, db *mlkv.DB) {
				fn(t, db, ec.name, ec.clockFree)
			})
		})
	}
}

func f32sEq(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestAPITwoModels opens two models with differing dimensions on one DB
// and drives the full session surface on both: first-touch Get, batch
// round trips, Peek, Lookahead, RMW, Delete, Checkpoint, and stats —
// on every engine, over both drivers.
func TestAPITwoModels(t *testing.T) {
	withEngineTargets(t, func(t *testing.T, db *mlkv.DB, engine string, _ bool) {
		a, err := db.Open("conf-a", 8, mlkv.WithEngine(engine),
			mlkv.WithStalenessBound(mlkv.ASP), mlkv.WithMemory(4<<20))
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		b, err := db.Open("conf-b", 4, mlkv.WithEngine(engine),
			mlkv.WithStalenessBound(mlkv.ASP), mlkv.WithMemory(4<<20))
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		if a.Dim() != 8 || b.Dim() != 4 {
			t.Fatalf("dims: %d/%d", a.Dim(), b.Dim())
		}
		// Dim mismatch on an existing model is refused on either driver.
		if _, err := db.Open("conf-a", 16); err == nil {
			t.Fatal("dim mismatch accepted")
		}

		sa, err := a.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		defer sa.Close()
		sb, err := b.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		defer sb.Close()

		// First touch initializes deterministically; the same key on the
		// two models is independent state.
		embA := make([]float32, 8)
		if err := sa.Get(7, embA); err != nil {
			t.Fatal(err)
		}
		if err := sa.Put(7, embA); err != nil {
			t.Fatal(err)
		}
		wantB := []float32{1, 2, 3, 4}
		if err := sb.Put(7, wantB); err != nil {
			t.Fatal(err)
		}
		gotB := make([]float32, 4)
		if found, err := sb.Peek(7, gotB); err != nil || !found || !f32sEq(gotB, wantB) {
			t.Fatalf("model b key 7: found=%v err=%v got=%v", found, err, gotB)
		}
		gotA := make([]float32, 8)
		if found, err := sa.Peek(7, gotA); err != nil || !found || !f32sEq(gotA, embA) {
			t.Fatalf("model a key 7 clobbered: found=%v err=%v got=%v", found, err, gotA)
		}

		// Batch round trip on model a.
		keys := []uint64{100, 101, 102, 103}
		vals := make([]float32, len(keys)*8)
		for i := range vals {
			vals[i] = float32(i) * 0.5
		}
		if err := sa.PutBatch(keys, vals); err != nil {
			t.Fatal(err)
		}
		got := make([]float32, len(vals))
		if err := sa.GetBatch(keys, got); err != nil {
			t.Fatal(err)
		}
		if err := sa.PutBatch(keys, got); err != nil { // balance the clock
			t.Fatal(err)
		}
		if !f32sEq(got, vals) {
			t.Fatal("batch round trip mismatch")
		}

		// Lookahead is asynchronous (or a no-op) and safe on every cell.
		if err := sa.Lookahead(keys); err != nil {
			t.Fatal(err)
		}

		// RMW applies the gradient step.
		grad := make([]float32, 8)
		grad[0] = 2
		if err := sa.RMW(100, grad, 0.5); err != nil {
			t.Fatal(err)
		}
		if found, err := sa.Peek(100, gotA); err != nil || !found || gotA[0] != vals[0]-1 {
			t.Fatalf("RMW: found=%v err=%v got=%v want first %v", found, err, gotA[0], vals[0]-1)
		}

		// Delete removes the key on the right model only.
		if err := sb.Delete(7); err != nil {
			t.Fatal(err)
		}
		if found, _ := sb.Peek(7, gotB); found {
			t.Fatal("model b key 7 survived delete")
		}
		if found, _ := sa.Peek(7, gotA); !found {
			t.Fatal("model a key 7 vanished with model b's delete")
		}

		if err := a.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		st, err := a.StatsCtx(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.Gets == 0 || st.Puts == 0 || st.BatchGets == 0 || st.BatchPuts == 0 {
			t.Fatalf("stats dropped counters: %+v", st)
		}
	})
}

// TestAPIFirstTouchParity pins the property the CI quickstart-divergence
// check relies on, widened across the engine matrix: the same key
// initializes to the same embedding on every engine, local or remote
// (every cell runs the same seeded initializer).
func TestAPIFirstTouchParity(t *testing.T) {
	read := func(t *testing.T, db *mlkv.DB, engine string) []float32 {
		m, err := db.Open("parity", 8, mlkv.WithEngine(engine), mlkv.WithStalenessBound(mlkv.ASP))
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		s, err := m.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		out := make([]float32, 8)
		if err := s.Get(42, out); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(42, out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	var want []float32
	for _, ec := range engineCases {
		local, err := mlkv.Connect(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		remote, err := mlkv.Connect(startTestServer(t, mlkv.ASP), mlkv.WithConns(2))
		if err != nil {
			local.Close()
			t.Fatal(err)
		}
		lv := read(t, local, ec.name)
		rv := read(t, remote, ec.name)
		local.Close()
		remote.Close()
		if want == nil {
			want = lv
		}
		if !f32sEq(lv, want) || !f32sEq(rv, want) {
			t.Fatalf("first-touch values diverge on %s: local=%v remote=%v want=%v",
				ec.name, lv, rv, want)
		}
	}
}

// TestAPICtxCancellation pins the context contract on both drivers: a
// clocked read stalled on the staleness bound (BSP, token held by another
// session) returns ctx.Err() at the deadline instead of waiting, holds no
// token afterward, and the stalled key becomes readable once the
// releasing write lands. Only the hybrid log carries the vector clock
// this ladder exercises; the clock-free engines reject BSP at open (see
// TestAPIEngineValidation), so their cells skip rather than fake a stall.
func TestAPICtxCancellation(t *testing.T) {
	run := func(t *testing.T, db *mlkv.DB) {
		m, err := db.Open("cancel", 4, mlkv.WithStalenessBound(mlkv.BSP), mlkv.WithMemory(4<<20))
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		s1, err := m.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		defer s1.Close()
		s2, err := m.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()

		emb := make([]float32, 4)
		const key = 9
		// Create the key with a balanced clock first (remote first touch
		// initializes client-side without acquiring a token), then have
		// s1 acquire the token with a clocked read of the existing record.
		if err := s1.Get(key, emb); err != nil {
			t.Fatal(err)
		}
		if err := s1.Put(key, emb); err != nil {
			t.Fatal(err)
		}
		if err := s1.Get(key, emb); err != nil {
			t.Fatal(err)
		}
		// s2's read must stall on the bound and give up at the deadline.
		ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
		defer cancel()
		start := time.Now()
		err = s2.GetCtx(ctx, key, emb)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("stalled read returned %v, want DeadlineExceeded", err)
		}
		if time.Since(start) > 5*time.Second {
			t.Fatal("cancelled read did not return promptly")
		}
		// The releasing write unblocks the key; the cancelled read left
		// no token behind, so one Get/Put cycle balances cleanly.
		if err := s1.Put(key, emb); err != nil {
			t.Fatal(err)
		}
		ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		if err := s2.GetCtx(ctx2, key, emb); err != nil {
			t.Fatalf("read after release: %v", err)
		}
		if err := s2.Put(key, emb); err != nil {
			t.Fatal(err)
		}
	}
	for _, ec := range engineCases {
		ec := ec
		t.Run(ec.name, func(t *testing.T) {
			if ec.clockFree {
				t.Skipf("engine %q has no vector clock: it rejects the BSP bound this ladder needs, so there is no staleness wait to cancel", ec.name)
			}
			t.Run("local", func(t *testing.T) {
				db, err := mlkv.Connect(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				defer db.Close()
				run(t, db)
			})
			t.Run("remote", func(t *testing.T) {
				// Two conns: the stalled read's connection handler blocks on
				// the server until the releasing write arrives on the other.
				db, err := mlkv.Connect(startTestServer(t, mlkv.BSP), mlkv.WithConns(2))
				if err != nil {
					t.Fatal(err)
				}
				defer db.Close()
				run(t, db)
			})
		})
	}
}

// TestAPIRemoteSessionRelease verifies the public remote driver detaches
// sessions on every engine: the server's per-model gauge follows
// Session.Close regardless of what backs the model.
func TestAPIRemoteSessionRelease(t *testing.T) {
	for _, ec := range engineCases {
		ec := ec
		t.Run(ec.name, func(t *testing.T) {
			db, err := mlkv.Connect(startTestServer(t, mlkv.ASP), mlkv.WithConns(2))
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			m, err := db.Open("release", 4, mlkv.WithEngine(ec.name))
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			s1, err := m.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			s2, err := m.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			if n := m.ActiveSessions(); n != 2 {
				t.Fatalf("ActiveSessions = %d, want 2", n)
			}
			s1.Close()
			if n := m.ActiveSessions(); n != 1 {
				t.Fatalf("ActiveSessions = %d after one close, want 1", n)
			}
			s2.Close()
			if n := m.ActiveSessions(); n != 0 {
				t.Fatalf("ActiveSessions = %d after both closed, want 0", n)
			}
		})
	}
}

// TestAPISharedModelClose pins handle semantics across the matrix:
// opening a name twice shares the model, and double-closing one handle
// releases its reference exactly once — the sibling handle keeps working.
func TestAPISharedModelClose(t *testing.T) {
	withEngineTargets(t, func(t *testing.T, db *mlkv.DB, engine string, _ bool) {
		m1, err := db.Open("shared", 4, mlkv.WithEngine(engine), mlkv.WithStalenessBound(mlkv.ASP))
		if err != nil {
			t.Fatal(err)
		}
		m2, err := db.Open("shared", 4, mlkv.WithEngine(engine), mlkv.WithStalenessBound(mlkv.ASP))
		if err != nil {
			t.Fatal(err)
		}
		if err := m1.Close(); err != nil {
			t.Fatal(err)
		}
		if err := m1.Close(); err != nil { // double close of one handle
			t.Fatal(err)
		}
		s, err := m2.NewSession()
		if err != nil {
			t.Fatalf("sibling handle broken after double close: %v", err)
		}
		emb := make([]float32, 4)
		if err := s.Get(1, emb); err != nil {
			t.Fatalf("sibling session broken: %v", err)
		}
		if err := s.Put(1, emb); err != nil {
			t.Fatal(err)
		}
		s.Close()
		if err := m2.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAPIEngineSelection pins what WithEngine means end to end: the
// engine a model opens with is the engine that serves it, is reported by
// EngineName on both drivers, and sticks to the model — a conflicting
// reopen is refused while the model is live and again from its on-disk
// marker after it closes.
func TestAPIEngineSelection(t *testing.T) {
	t.Run("local", func(t *testing.T) {
		dir := t.TempDir()
		db, err := mlkv.Connect(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		want := map[string]string{"mlkv": "mlkv", "lsm": "lsm", "bptree": "bptree"}
		for _, ec := range engineCases {
			m, err := db.Open("sel-"+ec.name, 4, mlkv.WithEngine(ec.name))
			if err != nil {
				t.Fatalf("%s: %v", ec.name, err)
			}
			if got := m.EngineName(); got != want[ec.name] {
				t.Fatalf("%s: EngineName = %q, want %q", ec.name, got, want[ec.name])
			}
			if ec.clockFree {
				if b := m.StalenessBound(); b != mlkv.Disabled {
					t.Fatalf("%s: StalenessBound = %d, want Disabled", ec.name, b)
				}
			} else if b := m.StalenessBound(); b != 4 {
				t.Fatalf("mlkv local default bound = %d, want SSP(4)", b)
			}
			// A live model refuses a conflicting engine...
			if _, err := db.Open("sel-"+ec.name, 4, mlkv.WithEngine(otherEngine(ec.name))); err == nil {
				t.Fatalf("%s: live engine conflict accepted", ec.name)
			}
			// ...and an engine-less reopen shares it as-is.
			m2, err := db.Open("sel-"+ec.name, 4)
			if err != nil {
				t.Fatalf("%s: engine-less reopen: %v", ec.name, err)
			}
			m2.Close()
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			// Closed and on disk, the directory still pins the engine.
			if _, err := db.Open("sel-"+ec.name, 4, mlkv.WithEngine(otherEngine(ec.name))); err == nil {
				t.Fatalf("%s: on-disk engine conflict accepted", ec.name)
			}
		}
	})
	t.Run("remote", func(t *testing.T) {
		db, err := mlkv.Connect(startTestServer(t, mlkv.ASP), mlkv.WithConns(2))
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		for _, ec := range engineCases {
			m, err := db.Open("sel-"+ec.name, 4, mlkv.WithEngine(ec.name))
			if err != nil {
				t.Fatalf("%s: %v", ec.name, err)
			}
			if got, want := m.EngineName(), "remote("+ec.name+")"; got != want {
				t.Fatalf("%s: EngineName = %q, want %q", ec.name, got, want)
			}
			// The server refuses to swap a live model's engine.
			if _, err := db.Open("sel-"+ec.name, 4, mlkv.WithEngine(otherEngine(ec.name))); err == nil {
				t.Fatalf("%s: remote engine conflict accepted", ec.name)
			}
			m.Close()
		}
	})
}

// otherEngine returns an engine different from name, for conflict tests.
func otherEngine(name string) string {
	if name == "lsm" {
		return "bptree"
	}
	return "lsm"
}

// TestAPIEngineValidation pins the engine-seam error surface on both
// drivers: unknown engines are rejected, and the clock-free engines
// refuse the blocking bounds (BSP, finite SSP) they cannot honor while
// accepting the non-blocking ones.
func TestAPIEngineValidation(t *testing.T) {
	withTargets(t, func(t *testing.T, db *mlkv.DB) {
		if _, err := db.Open("bad-engine", 4, mlkv.WithEngine("rocksdb")); err == nil {
			t.Fatal("unknown engine accepted")
		} else if !strings.Contains(err.Error(), "rocksdb") {
			t.Fatalf("unknown-engine error does not name the engine: %v", err)
		}
		for _, engine := range []string{"lsm", "bptree"} {
			for _, bound := range []int64{mlkv.BSP, 4} {
				if _, err := db.Open("cf-"+engine, 4, mlkv.WithEngine(engine),
					mlkv.WithStalenessBound(bound)); err == nil {
					t.Fatalf("engine %s accepted blocking bound %d", engine, bound)
				}
			}
			// Non-blocking bounds are no-ops, not errors.
			m, err := db.Open("cf-ok-"+engine, 4, mlkv.WithEngine(engine),
				mlkv.WithStalenessBound(mlkv.ASP))
			if err != nil {
				t.Fatalf("engine %s rejected ASP: %v", engine, err)
			}
			m.Close()
		}
	})
}

// TestClusterOwnerRouting pins the partitioning invariant end to end:
// every key written through the cluster driver lands on exactly the node
// the topology map names as its owner — counted server-side, per node.
func TestClusterOwnerRouting(t *testing.T) {
	target, regs, mp := startTestCluster(t, mlkv.ASP, false)
	db, err := mlkv.Connect(target, mlkv.WithConns(2))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	m, err := db.Open("route", 4, mlkv.WithStalenessBound(mlkv.ASP))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	emb := []float32{1, 2, 3, 4}
	const keys = 96
	want := map[string]int64{}
	for k := uint64(0); k < keys; k++ {
		if err := s.Put(k, emb); err != nil {
			t.Fatal(err)
		}
		want[mp.Owner(k).ID]++
	}
	spread := 0
	for id, reg := range regs {
		st := clusterModelStats(t, reg, "route")
		if st.Puts != want[id] {
			t.Fatalf("node %s served %d puts, want %d: keys did not route to exactly their owner", id, st.Puts, want[id])
		}
		if want[id] > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("all %d keys landed on %d node(s); the topology was not exercised", keys, spread)
	}
}

// TestClusterReplicaRouting pins staleness-aware read routing against a
// two-primaries-plus-replica topology: BSP reads never touch the replica
// (a clocked read must see the primary's vector clock), while ASP reads on
// the same keys do — counted both server-side (the replica's GET-class
// latency counter) and client-side (Stats.ReplicaReads).
func TestClusterReplicaRouting(t *testing.T) {
	target, regs, mp := startTestCluster(t, mlkv.ASP, true)
	db, err := mlkv.Connect(target, mlkv.WithConns(2), mlkv.WithReadReplicas())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Only keys owned by n0 — the replica's primary — can ever be
	// replica-served, so the test drives exactly those.
	var keys []uint64
	for k := uint64(0); len(keys) < 8; k++ {
		if mp.Owner(k).ID == "n0" {
			keys = append(keys, k)
		}
	}
	emb := make([]float32, 4)

	// BSP first (the router's replica-read counter is pool-wide, so the
	// zero assertion must precede any ASP traffic).
	bsp, err := db.Open("repl-bsp", 4, mlkv.WithStalenessBound(mlkv.BSP))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := bsp.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if err := sb.Get(k, emb); err != nil {
			t.Fatal(err)
		}
	}
	if st := clusterModelStats(t, regs["n2"], "repl-bsp"); st.LatGet.Count != 0 {
		t.Fatalf("BSP reads reached the replica %d times; a clocked read must stay on the primary", st.LatGet.Count)
	}
	bst, err := bsp.StatsCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if bst.ReplicaReads != 0 {
		t.Fatalf("client counted %d replica reads under BSP, want 0", bst.ReplicaReads)
	}
	sb.Close()
	bsp.Close()

	// ASP: the same keys are admissible on the replica regardless of lag.
	asp, err := db.Open("repl-asp", 4, mlkv.WithStalenessBound(mlkv.ASP))
	if err != nil {
		t.Fatal(err)
	}
	defer asp.Close()
	sa, err := asp.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	for _, k := range keys {
		if err := sa.Put(k, emb); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		if err := sa.Get(k, emb); err != nil {
			t.Fatal(err)
		}
	}
	if st := clusterModelStats(t, regs["n2"], "repl-asp"); st.LatGet.Count == 0 {
		t.Fatal("ASP reads of replica-covered keys never reached the replica")
	}
	ast, err := asp.StatsCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ast.ReplicaReads == 0 {
		t.Fatal("client counted no replica reads under ASP")
	}
}

// TestClusterReplicaDeathFallback pins read availability: a replica dying
// mid-session turns its reads into primary reads, not errors. The cluster
// is two primaries plus a replica of n0; after the replica is shut down,
// single gets and batch gets over both primaries' key ranges — the paths
// that previously routed to the replica — must still return every value.
func TestClusterReplicaDeathFallback(t *testing.T) {
	ids := []string{"n0", "n1", "n2"}
	lns := make([]net.Listener, len(ids))
	specs := make([]cluster.Node, len(ids))
	addrs := make([]string, len(ids))
	for i := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i], addrs[i] = ln, ln.Addr().String()
		specs[i] = cluster.Node{ID: ids[i], Addr: addrs[i], Role: cluster.RolePrimary}
	}
	specs[2].Role = cluster.RoleReplica
	specs[2].PrimaryID = ids[0]
	mp, err := cluster.BuildMap(specs)
	if err != nil {
		t.Fatal(err)
	}
	regs := map[string]*server.Registry{}
	stops := map[string]func(){}
	for i := range ids {
		dir := t.TempDir()
		reg := server.NewRegistry(server.RegistryConfig{
			DefaultShards: 2,
			DefaultBound:  mlkv.ASP,
			Name:          ids[i],
			Opener: func(id string, dim, shards int, b int64, engine string) (kv.Store, error) {
				return kv.OpenEngine(engine, kv.ShardedConfig{
					Dir: filepath.Join(dir, id), Shards: shards, ValueSize: dim * 4,
					RecordsPerPage: 64, MemoryBytes: 1 << 20, ExpectedKeys: 1 << 12,
					StalenessBound: b,
				}, ids[i])
			},
		})
		st, err := cluster.NewState(ids[i], mp)
		if err != nil {
			t.Fatal(err)
		}
		st.EnableReplication()
		srv := server.New(server.Config{Registry: reg, Cluster: st})
		serveErr := make(chan error, 1)
		go func(ln net.Listener) { serveErr <- srv.Serve(ln) }(lns[i])
		stopped := false
		stop := func() {
			if stopped {
				return
			}
			stopped = true
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
			if err := <-serveErr; err != nil {
				t.Errorf("serve: %v", err)
			}
			st.Close()
			reg.Close()
		}
		stops[ids[i]] = stop
		t.Cleanup(stop)
		regs[ids[i]] = reg
	}

	db, err := mlkv.Connect(mlkv.Scheme+strings.Join(addrs[:2], ","), mlkv.WithConns(2), mlkv.WithReadReplicas())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	m, err := db.Open("repl-death", 4, mlkv.WithStalenessBound(mlkv.ASP))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Keys spanning both primaries, values tagged by key.
	keys := make([]uint64, 16)
	for i := range keys {
		keys[i] = uint64(i)
		emb := []float32{float32(i), 1, 2, 3}
		if err := s.Put(keys[i], emb); err != nil {
			t.Fatal(err)
		}
	}

	// Warm the replica route so the session holds live replica state
	// (ASP admits the replica unconditionally), then prove the replica
	// actually served something — otherwise the fallback below is vacuous.
	emb := make([]float32, 4)
	for _, k := range keys {
		if err := s.Get(k, emb); err != nil {
			t.Fatal(err)
		}
	}
	if st := clusterModelStats(t, regs["n2"], "repl-death"); st.LatGet.Count == 0 {
		t.Fatal("ASP reads never reached the replica; the fallback path is not being exercised")
	}

	stops["n2"]() // the replica dies mid-session

	// Single reads: every key must still resolve, n0's via fallback.
	for i, k := range keys {
		if err := s.Get(k, emb); err != nil {
			t.Fatalf("get key %d after replica death: %v", k, err)
		}
		if emb[0] != float32(i) {
			t.Fatalf("key %d after replica death: got %v", k, emb[0])
		}
	}

	// Batch read across both primaries: the dead replica's group must be
	// re-served by its primary inside the same call.
	batch := make([]float32, len(keys)*4)
	if err := s.GetBatch(keys, batch); err != nil {
		t.Fatalf("batch after replica death: %v", err)
	}
	for i := range keys {
		if v := batch[i*4]; v != float32(i) {
			t.Fatalf("key %d after replica death: got %v", keys[i], v)
		}
	}

	// Opening a model after the replica died must also succeed: replicas
	// are a read optimization, not an availability dependency.
	late, err := db.Open("repl-death-late", 4, mlkv.WithStalenessBound(mlkv.ASP))
	if err != nil {
		t.Fatalf("open after replica death: %v", err)
	}
	defer late.Close()
	sl, err := late.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Close()
	if err := sl.Put(1, []float32{9, 9, 9, 9}); err != nil {
		t.Fatalf("put on late-opened model: %v", err)
	}
	if err := sl.Get(1, emb); err != nil {
		t.Fatalf("get on late-opened model: %v", err)
	}
	if emb[0] != 9 {
		t.Fatalf("late-opened model read back %v, want 9", emb[0])
	}
}

// TestClusterAnySeedBootstrap pins discovery: a client pointed at any
// single member — not the full seed list — learns the whole topology from
// that member's CLUSTERMAP and routes writes to every node.
func TestClusterAnySeedBootstrap(t *testing.T) {
	target, regs, _ := startTestCluster(t, mlkv.ASP, false)
	addrs := strings.Split(strings.TrimPrefix(target, mlkv.Scheme), ",")
	emb := make([]float32, 4)
	for i, addr := range addrs {
		db, err := mlkv.Connect(mlkv.Scheme+addr, mlkv.WithConns(2))
		if err != nil {
			t.Fatalf("seed %s: %v", addr, err)
		}
		m, err := db.Open("seed", 4, mlkv.WithStalenessBound(mlkv.ASP))
		if err != nil {
			t.Fatalf("seed %s: %v", addr, err)
		}
		st, err := m.StatsCtx(context.Background())
		if err != nil {
			t.Fatalf("seed %s: %v", addr, err)
		}
		if st.ClusterNodes != 3 {
			t.Fatalf("seed %s discovered %d nodes, want 3", addr, st.ClusterNodes)
		}
		if st.ClusterEpoch == 0 {
			t.Fatalf("seed %s reports epoch 0", addr)
		}
		if i == 0 {
			// Enough keys that an even hash split leaves no node silent.
			s, err := m.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			for k := uint64(0); k < 64; k++ {
				if err := s.Put(k, emb); err != nil {
					t.Fatal(err)
				}
			}
			s.Close()
		}
		m.Close()
		db.Close()
	}
	for id, reg := range regs {
		if st := clusterModelStats(t, reg, "seed"); st.Puts == 0 {
			t.Fatalf("node %s never saw a put from the single-seed client", id)
		}
	}
}

// TestAPIOpenValidation pins the public-surface validation errors.
func TestAPIOpenValidation(t *testing.T) {
	withTargets(t, func(t *testing.T, db *mlkv.DB) {
		if _, err := db.Open("", 8); err == nil {
			t.Fatal("empty id accepted")
		}
		if _, err := db.Open("x", 0); err == nil {
			t.Fatal("zero dim accepted")
		}
	})
	if _, err := mlkv.Connect(""); err == nil {
		t.Fatal("empty target accepted")
	}
	if _, err := mlkv.Connect(mlkv.Scheme); err == nil {
		t.Fatal("empty remote address accepted")
	}
}
