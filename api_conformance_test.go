package mlkv_test

import (
	"context"
	"errors"
	"math"
	"net"
	"path/filepath"
	"testing"
	"time"

	mlkv "github.com/llm-db/mlkv-go"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/server"
)

// startTestServer serves a lazily-opening model registry on loopback and
// returns an "mlkv://" target for it.
func startTestServer(t *testing.T, bound int64) string {
	t.Helper()
	dir := t.TempDir()
	reg := server.NewRegistry(server.RegistryConfig{
		DefaultShards: 2,
		DefaultBound:  bound,
		Opener: func(id string, dim, shards int, b int64) (kv.Store, error) {
			return kv.OpenFasterShards(kv.ShardedConfig{
				Dir: filepath.Join(dir, id), Shards: shards, ValueSize: dim * 4,
				RecordsPerPage: 64, MemoryBytes: 1 << 20, ExpectedKeys: 1 << 12,
				StalenessBound: b,
			}, "mlkv")
		},
	})
	srv := server.New(server.Config{Registry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
		reg.Close()
	})
	return mlkv.Scheme + ln.Addr().String()
}

// withTargets runs fn once against a local directory DB and once against
// a live loopback mlkv-server — the conformance harness: the public API
// must behave identically over both drivers.
func withTargets(t *testing.T, fn func(t *testing.T, db *mlkv.DB)) {
	t.Run("local", func(t *testing.T) {
		db, err := mlkv.Connect(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		fn(t, db)
	})
	t.Run("remote", func(t *testing.T) {
		db, err := mlkv.Connect(startTestServer(t, mlkv.ASP), mlkv.WithConns(3))
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		fn(t, db)
	})
}

func f32sEq(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestAPITwoModels opens two models with differing dimensions on one DB
// and drives the full session surface on both: first-touch Get,
// batch round trips, Peek, Lookahead, Delete, Checkpoint, and stats.
func TestAPITwoModels(t *testing.T) {
	withTargets(t, func(t *testing.T, db *mlkv.DB) {
		a, err := db.Open("conf-a", 8, mlkv.WithStalenessBound(mlkv.ASP), mlkv.WithMemory(4<<20))
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		b, err := db.Open("conf-b", 4, mlkv.WithStalenessBound(mlkv.ASP), mlkv.WithMemory(4<<20))
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		if a.Dim() != 8 || b.Dim() != 4 {
			t.Fatalf("dims: %d/%d", a.Dim(), b.Dim())
		}
		// Dim mismatch on an existing model is refused on either driver.
		if _, err := db.Open("conf-a", 16); err == nil {
			t.Fatal("dim mismatch accepted")
		}

		sa, err := a.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		defer sa.Close()
		sb, err := b.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		defer sb.Close()

		// First touch initializes deterministically; the same key on the
		// two models is independent state.
		embA := make([]float32, 8)
		if err := sa.Get(7, embA); err != nil {
			t.Fatal(err)
		}
		if err := sa.Put(7, embA); err != nil {
			t.Fatal(err)
		}
		wantB := []float32{1, 2, 3, 4}
		if err := sb.Put(7, wantB); err != nil {
			t.Fatal(err)
		}
		gotB := make([]float32, 4)
		if found, err := sb.Peek(7, gotB); err != nil || !found || !f32sEq(gotB, wantB) {
			t.Fatalf("model b key 7: found=%v err=%v got=%v", found, err, gotB)
		}
		gotA := make([]float32, 8)
		if found, err := sa.Peek(7, gotA); err != nil || !found || !f32sEq(gotA, embA) {
			t.Fatalf("model a key 7 clobbered: found=%v err=%v got=%v", found, err, gotA)
		}

		// Batch round trip on model a.
		keys := []uint64{100, 101, 102, 103}
		vals := make([]float32, len(keys)*8)
		for i := range vals {
			vals[i] = float32(i) * 0.5
		}
		if err := sa.PutBatch(keys, vals); err != nil {
			t.Fatal(err)
		}
		got := make([]float32, len(vals))
		if err := sa.GetBatch(keys, got); err != nil {
			t.Fatal(err)
		}
		if err := sa.PutBatch(keys, got); err != nil { // balance the clock
			t.Fatal(err)
		}
		if !f32sEq(got, vals) {
			t.Fatal("batch round trip mismatch")
		}

		// Lookahead is asynchronous and safe on both drivers.
		if err := sa.Lookahead(keys); err != nil {
			t.Fatal(err)
		}

		// RMW applies the gradient step.
		grad := make([]float32, 8)
		grad[0] = 2
		if err := sa.RMW(100, grad, 0.5); err != nil {
			t.Fatal(err)
		}
		if found, err := sa.Peek(100, gotA); err != nil || !found || gotA[0] != vals[0]-1 {
			t.Fatalf("RMW: found=%v err=%v got=%v want first %v", found, err, gotA[0], vals[0]-1)
		}

		// Delete removes the key on the right model only.
		if err := sb.Delete(7); err != nil {
			t.Fatal(err)
		}
		if found, _ := sb.Peek(7, gotB); found {
			t.Fatal("model b key 7 survived delete")
		}
		if found, _ := sa.Peek(7, gotA); !found {
			t.Fatal("model a key 7 vanished with model b's delete")
		}

		if err := a.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		st, err := a.StatsCtx(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.Gets == 0 || st.Puts == 0 || st.BatchGets == 0 || st.BatchPuts == 0 {
			t.Fatalf("stats dropped counters: %+v", st)
		}
	})
}

// TestAPIFirstTouchParity pins the property the CI quickstart-divergence
// check relies on: the same key initializes to the same embedding whether
// the model is local or remote (the remote driver runs the same seeded
// initializer client-side).
func TestAPIFirstTouchParity(t *testing.T) {
	read := func(t *testing.T, db *mlkv.DB) []float32 {
		m, err := db.Open("parity", 8, mlkv.WithStalenessBound(mlkv.ASP))
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		s, err := m.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		out := make([]float32, 8)
		if err := s.Get(42, out); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(42, out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	local, err := mlkv.Connect(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	remote, err := mlkv.Connect(startTestServer(t, mlkv.ASP), mlkv.WithConns(2))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	lv := read(t, local)
	rv := read(t, remote)
	if !f32sEq(lv, rv) {
		t.Fatalf("first-touch values diverge: local=%v remote=%v", lv, rv)
	}
}

// TestAPICtxCancellation pins the context contract on both drivers: a
// clocked read stalled on the staleness bound (BSP, token held by another
// session) returns ctx.Err() at the deadline instead of waiting, holds no
// token afterward, and the stalled key becomes readable once the
// releasing write lands.
func TestAPICtxCancellation(t *testing.T) {
	run := func(t *testing.T, db *mlkv.DB) {
		m, err := db.Open("cancel", 4, mlkv.WithStalenessBound(mlkv.BSP), mlkv.WithMemory(4<<20))
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		s1, err := m.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		defer s1.Close()
		s2, err := m.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()

		emb := make([]float32, 4)
		const key = 9
		// Create the key with a balanced clock first (remote first touch
		// initializes client-side without acquiring a token), then have
		// s1 acquire the token with a clocked read of the existing record.
		if err := s1.Get(key, emb); err != nil {
			t.Fatal(err)
		}
		if err := s1.Put(key, emb); err != nil {
			t.Fatal(err)
		}
		if err := s1.Get(key, emb); err != nil {
			t.Fatal(err)
		}
		// s2's read must stall on the bound and give up at the deadline.
		ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
		defer cancel()
		start := time.Now()
		err = s2.GetCtx(ctx, key, emb)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("stalled read returned %v, want DeadlineExceeded", err)
		}
		if time.Since(start) > 5*time.Second {
			t.Fatal("cancelled read did not return promptly")
		}
		// The releasing write unblocks the key; the cancelled read left
		// no token behind, so one Get/Put cycle balances cleanly.
		if err := s1.Put(key, emb); err != nil {
			t.Fatal(err)
		}
		ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		if err := s2.GetCtx(ctx2, key, emb); err != nil {
			t.Fatalf("read after release: %v", err)
		}
		if err := s2.Put(key, emb); err != nil {
			t.Fatal(err)
		}
	}
	t.Run("local", func(t *testing.T) {
		db, err := mlkv.Connect(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		run(t, db)
	})
	t.Run("remote", func(t *testing.T) {
		// Two conns: the stalled read's connection handler blocks on the
		// server until the releasing write arrives on the other one.
		db, err := mlkv.Connect(startTestServer(t, mlkv.BSP), mlkv.WithConns(2))
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		run(t, db)
	})
}

// TestAPIRemoteSessionRelease verifies the public remote driver detaches
// sessions: the server's per-model gauge follows Session.Close.
func TestAPIRemoteSessionRelease(t *testing.T) {
	db, err := mlkv.Connect(startTestServer(t, mlkv.ASP), mlkv.WithConns(2))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	m, err := db.Open("release", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s1, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if n := m.ActiveSessions(); n != 2 {
		t.Fatalf("ActiveSessions = %d, want 2", n)
	}
	s1.Close()
	if n := m.ActiveSessions(); n != 1 {
		t.Fatalf("ActiveSessions = %d after one close, want 1", n)
	}
	s2.Close()
	if n := m.ActiveSessions(); n != 0 {
		t.Fatalf("ActiveSessions = %d after both closed, want 0", n)
	}
}

// TestAPISharedModelClose pins handle semantics: opening a name twice
// shares the model, and double-closing one handle releases its reference
// exactly once — the sibling handle keeps working.
func TestAPISharedModelClose(t *testing.T) {
	withTargets(t, func(t *testing.T, db *mlkv.DB) {
		m1, err := db.Open("shared", 4, mlkv.WithStalenessBound(mlkv.ASP))
		if err != nil {
			t.Fatal(err)
		}
		m2, err := db.Open("shared", 4, mlkv.WithStalenessBound(mlkv.ASP))
		if err != nil {
			t.Fatal(err)
		}
		if err := m1.Close(); err != nil {
			t.Fatal(err)
		}
		if err := m1.Close(); err != nil { // double close of one handle
			t.Fatal(err)
		}
		s, err := m2.NewSession()
		if err != nil {
			t.Fatalf("sibling handle broken after double close: %v", err)
		}
		emb := make([]float32, 4)
		if err := s.Get(1, emb); err != nil {
			t.Fatalf("sibling session broken: %v", err)
		}
		if err := s.Put(1, emb); err != nil {
			t.Fatal(err)
		}
		s.Close()
		if err := m2.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAPIOpenValidation pins the public-surface validation errors.
func TestAPIOpenValidation(t *testing.T) {
	withTargets(t, func(t *testing.T, db *mlkv.DB) {
		if _, err := db.Open("", 8); err == nil {
			t.Fatal("empty id accepted")
		}
		if _, err := db.Open("x", 0); err == nil {
			t.Fatal("zero dim accepted")
		}
	})
	if _, err := mlkv.Connect(""); err == nil {
		t.Fatal("empty target accepted")
	}
	if _, err := mlkv.Connect(mlkv.Scheme); err == nil {
		t.Fatal("empty remote address accepted")
	}
}
