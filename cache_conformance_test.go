package mlkv_test

import (
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"

	mlkv "github.com/llm-db/mlkv-go"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/server"
)

// driveModel runs one deterministic op sequence against a fresh session
// of m and returns every value the sequence observed, so two models can
// be compared observation by observation.
func driveModel(t *testing.T, m *mlkv.Model, dim int) []float32 {
	t.Helper()
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var seen []float32
	emb := make([]float32, dim)
	batch := make([]uint64, 8)
	bvals := make([]float32, len(batch)*dim)
	for round := 0; round < 4; round++ {
		// Writes: a moving window of keys, values derived from the round.
		for k := uint64(0); k < 16; k++ {
			for i := range emb {
				emb[i] = float32(round*100) + float32(k) + float32(i)*0.25
			}
			if err := s.Put(k, emb); err != nil {
				t.Fatal(err)
			}
		}
		// Hot reads: the same head keys over and over (the tier's home turf).
		for rep := 0; rep < 4; rep++ {
			for k := uint64(0); k < 16; k++ {
				if err := s.Get(k, emb); err != nil {
					t.Fatal(err)
				}
				seen = append(seen, emb...)
				if err := s.Put(k, emb); err != nil { // balance the clock
					t.Fatal(err)
				}
			}
		}
		// Batch reads.
		for i := range batch {
			batch[i] = uint64(i * 2)
		}
		if err := s.GetBatch(batch, bvals); err != nil {
			t.Fatal(err)
		}
		seen = append(seen, bvals...)
		if err := s.PutBatch(batch, bvals); err != nil {
			t.Fatal(err)
		}
		// RMW and Delete keep the invalidation paths honest.
		grad := make([]float32, dim)
		grad[0] = 1
		if err := s.RMW(3, grad, 0.1); err != nil {
			t.Fatal(err)
		}
		if err := s.Get(3, emb); err != nil {
			t.Fatal(err)
		}
		seen = append(seen, emb...)
		if err := s.Put(3, emb); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete(5); err != nil {
			t.Fatal(err)
		}
		if found, err := s.Peek(5, emb); err != nil || found {
			t.Fatalf("round %d: key 5 survived delete (found=%v err=%v)", round, found, err)
		}
	}
	return seen
}

// TestAPICacheEquivalence is the cache-on vs cache-off conformance check
// on both drivers: the same op sequence over a cached and an uncached
// model must observe identical values — the hot tier may only change
// speed, never results — and the cached model must actually have served
// reads from the tier.
func TestAPICacheEquivalence(t *testing.T) {
	const dim = 4
	for _, bound := range []int64{mlkv.ASP, 3 /* SSP */} {
		withTargets(t, func(t *testing.T, db *mlkv.DB) {
			plain, err := db.Open("ce-plain", dim, mlkv.WithStalenessBound(bound))
			if err != nil {
				t.Fatal(err)
			}
			defer plain.Close()
			cached, err := db.Open("ce-cached", dim, mlkv.WithStalenessBound(bound), mlkv.WithCache(1024))
			if err != nil {
				t.Fatal(err)
			}
			defer cached.Close()

			want := driveModel(t, plain, dim)
			got := driveModel(t, cached, dim)
			if !f32sEq(got, want) {
				t.Fatalf("bound %d: cached model diverged from uncached (%d observations)", bound, len(want))
			}
			st := cached.Stats()
			if st.CacheHits == 0 {
				t.Fatalf("bound %d: tier never served a read (misses=%d)", bound, st.CacheMisses)
			}
			if plain.Stats().CacheHits != 0 {
				t.Fatal("uncached model reported tier hits")
			}
		})
	}
}

// TestAPICacheBSPNeverServes pins the consistency floor on both drivers:
// under BSP a cache-enabled model must never serve a read from the tier
// (every read synchronizes through the store), and results stay exact.
func TestAPICacheBSPNeverServes(t *testing.T) {
	const dim = 4
	withTargets(t, func(t *testing.T, db *mlkv.DB) {
		m, err := db.Open("ce-bsp", dim, mlkv.WithStalenessBound(mlkv.BSP), mlkv.WithCache(1024))
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		s, err := m.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		emb := make([]float32, dim)
		for k := uint64(1); k <= 32; k++ {
			for i := range emb {
				emb[i] = float32(k)
			}
			if err := s.Put(k, emb); err != nil {
				t.Fatal(err)
			}
			if err := s.Get(k, emb); err != nil {
				t.Fatal(err)
			}
			if emb[0] != float32(k) {
				t.Fatalf("key %d read %v", k, emb[0])
			}
			if err := s.Put(k, emb); err != nil { // balance the token
				t.Fatal(err)
			}
		}
		if hits := m.Stats().CacheHits; hits != 0 {
			t.Fatalf("BSP model served %d reads from the tier", hits)
		}
	})
}

// TestAPIServerSideCache exercises the server's shared per-model hot tier
// (-cache): a registry with CacheEntries set serves correct values and
// reports tier hits through the STATS op into the public Stats surface.
func TestAPIServerSideCache(t *testing.T) {
	dir := t.TempDir()
	reg := server.NewRegistry(server.RegistryConfig{
		DefaultBound: mlkv.ASP,
		CacheEntries: 1024,
		Opener: func(id string, dim, shards int, b int64, engine string) (kv.Store, error) {
			return kv.OpenFasterShards(kv.ShardedConfig{
				Dir: filepath.Join(dir, id), Shards: shards, ValueSize: dim * 4,
				RecordsPerPage: 64, MemoryBytes: 1 << 20, ExpectedKeys: 1 << 12,
				StalenessBound: b,
			}, "mlkv")
		},
	})
	defer reg.Close()
	srv := server.New(server.Config{Registry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveErr
	}()

	db, err := mlkv.Connect(mlkv.Scheme + ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	m, err := db.Open("srv-cache", 4, mlkv.WithStalenessBound(mlkv.ASP))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	emb := []float32{1, 2, 3, 4}
	if err := s.Put(9, emb); err != nil {
		t.Fatal(err)
	}
	got := make([]float32, 4)
	for i := 0; i < 8; i++ {
		if err := s.Get(9, got); err != nil {
			t.Fatal(err)
		}
		if !f32sEq(got, emb) {
			t.Fatalf("read %v, want %v", got, emb)
		}
	}
	st, err := m.StatsCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits == 0 {
		t.Fatalf("server tier never hit: %+v", st)
	}
	// Overwrite and re-read: write-through keeps the tier exact.
	emb2 := []float32{9, 8, 7, 6}
	if err := s.Put(9, emb2); err != nil {
		t.Fatal(err)
	}
	if err := s.Get(9, got); err != nil {
		t.Fatal(err)
	}
	if !f32sEq(got, emb2) {
		t.Fatalf("stale read after write-through: %v", got)
	}
}
