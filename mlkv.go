// Package mlkv is the public API of MLKV-Go, a reproduction of "MLKV:
// Efficiently Scaling up Large Embedding Model Training with Disk-based
// Key-Value Storage" (He et al., ICDE 2025).
//
// MLKV stores embedding tables in a FASTER-style disk-backed hybrid log and
// adds two optimizations that specialized training frameworks previously
// implemented privately: bounded-staleness consistency (a per-record vector
// clock packed into the record lock word) and look-ahead prefetching (an
// asynchronous interface that moves disk-resident embeddings into the
// mutable memory buffer beyond the staleness window).
//
// Mirroring Figure 3 of the paper:
//
//	model, _ := mlkv.Open("ctr-model", dim, mlkv.WithStalenessBound(4))
//	defer model.Close()
//	sess, _ := model.NewSession()
//	defer sess.Close()
//
//	emb := make([]float32, dim)
//	for _, batch := range loader {
//	    sess.Lookahead(batch.FutureKeys)        // hide disk access
//	    for _, k := range batch.Keys {
//	        sess.Get(k, emb)                    // forward pass input
//	        ...                                  // compute gradient
//	        sess.Put(k, updated)                // backward pass write
//	    }
//	}
package mlkv

import (
	"errors"
	"math"
	"os"
	"path/filepath"

	"github.com/llm-db/mlkv-go/internal/core"
)

// Staleness bounds with paper-aligned names (§III-C1).
const (
	// BSP (bound 0): a read waits until no update is outstanding on the
	// record — bulk-synchronous training.
	BSP = int64(0)
	// ASP (INT64_MAX): the vector clock is maintained but never blocks —
	// fully asynchronous training.
	ASP = int64(math.MaxInt64)
	// Disabled (-1): plain FASTER semantics, no vector clock.
	Disabled = int64(-1)
)

// Option customizes Open.
type Option func(*config)

type config struct {
	dir       string
	bound     int64
	memory    int64
	keys      uint64
	initScale float32
	workers   int
	shards    int
}

// WithDir places the model's storage under dir (default: ./mlkv-data).
func WithDir(dir string) Option { return func(c *config) { c.dir = dir } }

// WithStalenessBound sets the consistency bound: BSP, ASP, Disabled, or any
// positive SSP bound.
func WithStalenessBound(b int64) Option { return func(c *config) { c.bound = b } }

// WithMemory sets the in-memory buffer budget in bytes (the paper's
// "buffer size"; default 256 MiB).
func WithMemory(bytes int64) Option { return func(c *config) { c.memory = bytes } }

// WithExpectedKeys sizes the hash index for the expected embedding count.
func WithExpectedKeys(n uint64) Option { return func(c *config) { c.keys = n } }

// WithInitScale sets the uniform first-touch initialization range
// [-scale, scale) (default 0.05; 0 keeps zeros).
func WithInitScale(s float32) Option { return func(c *config) { c.initScale = s } }

// WithPrefetchWorkers sizes the Lookahead worker pool (default 2).
func WithPrefetchWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithShards hash-partitions the embedding table across n independent
// FASTER store instances, each with its own hybrid log, hash index, and
// epoch domain. Batch operations (GetBatch, PutBatch) group keys by shard
// and fan out across shards in parallel, and concurrent sessions contend
// on n log tails instead of one. The memory budget is split evenly across
// shards. Default 1 (unsharded, the paper's configuration). A table must
// be reopened with the shard count it was created with.
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// Model is one embedding model: a named, disk-backed embedding table.
type Model struct {
	table *core.Table
	id    string
}

// Open creates or recovers the embedding model id with the given embedding
// dimension — the Open(model_id, dim, staleness_bound) interface of §III-A.
func Open(id string, dim int, opts ...Option) (*Model, error) {
	if id == "" {
		return nil, errors.New("mlkv: model id is required")
	}
	cfg := config{
		dir:       "mlkv-data",
		bound:     4,
		memory:    256 << 20,
		initScale: 0.05,
		workers:   2,
	}
	for _, o := range opts {
		o(&cfg)
	}
	dir := filepath.Join(cfg.dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var init core.Initializer
	if cfg.initScale > 0 {
		init = core.UniformInit(cfg.initScale, 0x6d6c6b76)
	}
	t, err := core.OpenTable(core.Options{
		Dir:             dir,
		Dim:             dim,
		Shards:          cfg.shards,
		StalenessBound:  cfg.bound,
		MemoryBytes:     cfg.memory,
		ExpectedKeys:    cfg.keys,
		PrefetchWorkers: cfg.workers,
		Init:            init,
	})
	if err != nil {
		return nil, err
	}
	return &Model{table: t, id: id}, nil
}

// ID returns the model identifier.
func (m *Model) ID() string { return m.id }

// Dim returns the embedding dimension.
func (m *Model) Dim() int { return m.table.Dim() }

// Shards returns the number of hash partitions backing the model (see
// WithShards).
func (m *Model) Shards() int { return m.table.Shards() }

// SetStalenessBound adjusts the consistency bound at runtime.
func (m *Model) SetStalenessBound(b int64) { m.table.SetStalenessBound(b) }

// Checkpoint persists the model durably; call it at a training barrier
// (the paper checkpoints local NVMe state to durable storage periodically).
func (m *Model) Checkpoint() error { return m.table.Checkpoint() }

// Stats reports storage counters useful for diagnosing data stalls.
type Stats struct {
	Gets           int64
	Puts           int64
	DiskReads      int64
	MemHits        int64
	StalenessWaits int64
	PrefetchCopies int64
}

// Stats returns a snapshot of storage counters, summed across shards.
func (m *Model) Stats() Stats {
	s := m.table.StoreStats()
	return Stats{
		Gets:           s.Gets,
		Puts:           s.Puts,
		DiskReads:      s.DiskReads,
		MemHits:        s.MemHits,
		StalenessWaits: s.StalenessWaits,
		PrefetchCopies: s.PrefetchCopies,
	}
}

// ActiveSessions reports how many sessions are currently open on the
// model (serving front-ends use it to track drains and load).
func (m *Model) ActiveSessions() int64 { return m.table.ActiveSessions() }

// Close releases the model.
func (m *Model) Close() error { return m.table.Close() }

// Session is one goroutine's handle. Sessions are cheap; create one per
// worker and close it when done.
type Session struct {
	s *core.Session
}

// NewSession registers a session.
func (m *Model) NewSession() (*Session, error) {
	s, err := m.table.NewSession()
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

// Close unregisters the session.
func (s *Session) Close() { s.s.Close() }

// Get reads the embedding for key into dst (len == Dim), initializing on
// first touch, under the bounded-staleness protocol: it waits until the
// record's outstanding-update count is within the bound, then atomically
// increments it.
func (s *Session) Get(key uint64, dst []float32) error { return s.s.Get(key, dst) }

// GetBatch reads len(keys) embeddings into dst (len == len(keys)*Dim).
func (s *Session) GetBatch(keys []uint64, dst []float32) error {
	return s.s.GetBatch(keys, dst)
}

// Put upserts the embedding for key, decrementing the record's
// outstanding-update count. Puts never wait.
func (s *Session) Put(key uint64, val []float32) error { return s.s.Put(key, val) }

// PutBatch upserts len(keys) embeddings from vals.
func (s *Session) PutBatch(keys []uint64, vals []float32) error {
	return s.s.PutBatch(keys, vals)
}

// RMW applies emb ← emb − lr·grad atomically in storage.
func (s *Session) RMW(key uint64, grad []float32, lr float32) error {
	return s.s.ApplyGradient(key, grad, lr)
}

// Peek reads without consistency effects (for evaluation/inference).
func (s *Session) Peek(key uint64, dst []float32) (bool, error) {
	return s.s.Peek(key, dst)
}

// Delete removes key's embedding.
func (s *Session) Delete(key uint64) error { return s.s.Delete(key) }

// Lookahead asynchronously copies the given keys' embeddings from disk into
// MLKV's mutable memory buffer ahead of use (§III-C2). Unlike conventional
// prefetching it is not limited by the staleness bound. It never blocks.
func (s *Session) Lookahead(keys []uint64) error {
	return s.s.Lookahead(keys, core.DestStorageBuffer, nil)
}
