// Package mlkv is the public API of MLKV-Go, a reproduction of "MLKV:
// Efficiently Scaling up Large Embedding Model Training with Disk-based
// Key-Value Storage" (He et al., ICDE 2025).
//
// MLKV stores embedding tables in a FASTER-style disk-backed hybrid log and
// adds two optimizations that specialized training frameworks previously
// implemented privately: bounded-staleness consistency (a per-record vector
// clock packed into the record lock word) and look-ahead prefetching (an
// asynchronous interface that moves disk-resident embeddings into the
// mutable memory buffer beyond the staleness window).
//
// A DB is one storage target — a local data directory, or a shared
// mlkv-server reached as "mlkv://host:port" — from which any number of
// named models are opened, the Open(model_id, dim, staleness_bound)
// interface of §III-A. The same program runs against either target:
//
//	db, _ := mlkv.Connect(target)               // "/data/mlkv" or "mlkv://host:7070"
//	defer db.Close()
//	model, _ := db.Open("ctr-model", dim, mlkv.WithStalenessBound(4))
//	defer model.Close()
//	sess, _ := model.NewSession()
//	defer sess.Close()
//
//	emb := make([]float32, dim)
//	for _, batch := range loader {
//	    sess.Lookahead(batch.FutureKeys)        // hide disk access
//	    for _, k := range batch.Keys {
//	        sess.Get(k, emb)                    // forward pass input
//	        ...                                  // compute gradient
//	        sess.Put(k, updated)                // backward pass write
//	    }
//	}
//
// Every session operation has a context-taking variant (GetCtx, PutCtx,
// ...): the context bounds staleness waits on a local model and network
// round trips on a remote one.
package mlkv

import (
	"context"
	"errors"
	"math"
	"time"

	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/driver"
	"github.com/llm-db/mlkv-go/internal/latency"
)

// Staleness bounds with paper-aligned names (§III-C1).
const (
	// BSP (bound 0): a read waits until no update is outstanding on the
	// record — bulk-synchronous training.
	BSP = int64(0)
	// ASP (INT64_MAX): the vector clock is maintained but never blocks —
	// fully asynchronous training.
	ASP = int64(math.MaxInt64)
	// Disabled (-1): plain FASTER semantics, no vector clock.
	Disabled = int64(-1)
)

// Scheme prefixes a remote Connect target: "mlkv://host:port".
const Scheme = "mlkv://"

// ErrNoLiveOwner reports a cluster operation that exhausted its retry
// budget without reaching any live owner for the key: the owning primary
// was unreachable and no refetched topology produced a reachable
// successor within the caller's deadline. Test with errors.Is. Transient
// single-node failures never surface this — the router retries against
// refreshed maps (and a failed-over replica promotion heals mid-call), so
// seeing it means the range is genuinely down right now.
var ErrNoLiveOwner = driver.ErrNoLiveOwner

// Initializer produces the initial embedding for a key seen for the first
// time; dst arrives zeroed with the model's dimension. It must be
// deterministic in key: on a remote model it runs client-side on every
// worker that first touches a key.
type Initializer = core.Initializer

// initSeed seeds the default uniform initializer ("mlkv" in ASCII).
const initSeed = 0x6d6c6b76

// ConnectOption customizes Connect.
type ConnectOption func(*connectConfig)

type connectConfig struct {
	conns         int
	dialTimeout   time.Duration
	hedgeDelay    time.Duration
	hedgeAdaptive bool
	readReplicas  bool
}

// WithConns sizes the connection pool of a remote target (default 2).
// Size it to the number of concurrently blocking sessions: under BSP or a
// finite SSP bound, a blocked remote read must not queue behind the write
// that unblocks it on a shared connection. Local targets ignore it.
func WithConns(n int) ConnectOption { return func(c *connectConfig) { c.conns = n } }

// WithDialTimeout bounds each TCP connect of a remote target (default 5s).
func WithDialTimeout(d time.Duration) ConnectOption {
	return func(c *connectConfig) { c.dialTimeout = d }
}

// WithHedge attacks the read tail of a remote target: when a GET or
// GETBATCH response has not arrived within delay, the read is re-issued
// as a clock-free duplicate (PEEK/PEEKBATCH) on a second pooled
// connection, and whichever response arrives first wins — one slow
// server thread, GC pause, or lost-in-queue frame no longer decides the
// p99. Hedging applies only to reads that cannot block on the staleness
// bound (ASP or a disabled clock — never BSP or finite SSP, whose reads
// wait on clock tokens a duplicate must not touch), so a hedged read
// returns exactly what the primary would have. A token bucket caps
// duplicates at ~10% of admissible reads (with a small burst), so a
// uniformly slow server sees at most 1.1× its offered load. Counted in
// Stats (HedgedReads / HedgeWins / HedgeWasted / HedgeSuppressed).
// delay <= 0 is ignored. Local targets ignore the option.
func WithHedge(delay time.Duration) ConnectOption {
	return func(c *connectConfig) {
		if delay > 0 {
			c.hedgeDelay = delay
		}
	}
}

// WithAdaptiveHedge is WithHedge with the trigger derived from the
// connection pool's own latency histograms: the delay tracks the
// observed per-op-class p99 (floored at 200µs), so reads hedge exactly
// when they are slower than 99% of their recent peers, with no constant
// to tune. Until enough samples accumulate the pool falls back to the
// WithHedge delay if one was given, else 2ms.
func WithAdaptiveHedge() ConnectOption {
	return func(c *connectConfig) { c.hedgeAdaptive = true }
}

// WithReadReplicas lets a cluster target ("mlkv://a,b,c") serve reads
// from replicas, staleness-bound-aware: ASP reads may hit any replica of
// the key's range, BSP reads always go to the owning primary, and an SSP
// read uses a replica only while its advertised replication lag passes
// the model's bound — the same admissibility rule the hot cache applies,
// one network hop earlier. Writes always go to primaries. Keys served by
// replicas are counted in Stats.ReplicaReads. Non-cluster targets ignore
// the option.
func WithReadReplicas() ConnectOption {
	return func(c *connectConfig) { c.readReplicas = true }
}

// DB is one storage target serving named models: a local data directory
// or a remote mlkv-server.
type DB struct {
	d      driver.DB
	remote bool
}

// Connect opens a target. A target of the form "mlkv://host:port" dials a
// running mlkv-server; anything else is a local directory (created on the
// first Open).
func Connect(target string, opts ...ConnectOption) (*DB, error) {
	var cfg connectConfig
	for _, o := range opts {
		o(&cfg)
	}
	d, err := driver.Connect(target, driver.ConnectOptions{
		Conns:         cfg.conns,
		DialTimeout:   cfg.dialTimeout,
		HedgeDelay:    cfg.hedgeDelay,
		HedgeAdaptive: cfg.hedgeAdaptive,
		ReadReplicas:  cfg.readReplicas,
	})
	if err != nil {
		return nil, err
	}
	return &DB{d: d, remote: driver.IsRemote(target)}, nil
}

// Target echoes the Connect target string.
func (db *DB) Target() string { return db.d.Target() }

// Remote reports whether the DB is backed by a remote server.
func (db *DB) Remote() bool { return db.remote }

// Close releases the target: open models of a local DB, the connection
// pool of a remote one (whose models then fail).
func (db *DB) Close() error { return db.d.Close() }

// Option customizes DB.Open.
type Option func(*config)

type config struct {
	dir          string // compat: mlkv.Open's connect target
	engine       string
	bound        int64
	boundSet     bool
	memory       int64
	keys         uint64
	initScale    float32
	init         Initializer
	workers      int
	shards       int
	cacheEntries int
	flushPace    time.Duration
}

// WithDir places the model's storage under dir (default: ./mlkv-data).
// It applies to the compatibility entry point Open; with Connect the DB
// already names the target and the option is ignored.
func WithDir(dir string) Option { return func(c *config) { c.dir = dir } }

// WithEngine selects the storage engine behind the model: "mlkv" (or
// "faster" — the clocked hybrid log, the default), "lsm" (a write-optimized
// log-structured merge tree), or "bptree" (a read-optimized on-disk
// B+tree). On a remote DB the engine travels in the OPEN frame, so the
// same option picks the engine server-side; a server may pin a model to an
// engine, in which case a conflicting request fails. The clock-free
// engines (lsm, bptree) have no staleness clock: they reject BSP and
// finite SSP bounds, always run effectively unbounded, and a model opens
// with the engine it was created with — reopening under a different one is
// refused. Unset (or ""), the target chooses: locally the hybrid log,
// remotely the server's default engine.
func WithEngine(name string) Option { return func(c *config) { c.engine = name } }

// WithStalenessBound sets the consistency bound: BSP, ASP, Disabled, or any
// positive SSP bound. Unset, a local model on the hybrid log defaults to
// SSP(4), a local model on a clock-free engine (WithEngine "lsm"/"bptree")
// runs unbounded, and a remote model keeps the server's bound for it.
func WithStalenessBound(b int64) Option {
	return func(c *config) { c.bound, c.boundSet = b, true }
}

// WithMemory sets the in-memory buffer budget in bytes (the paper's
// "buffer size"; default 256 MiB). Remote models ignore it: the server
// owns its sizing.
func WithMemory(bytes int64) Option { return func(c *config) { c.memory = bytes } }

// WithExpectedKeys sizes the hash index for the expected embedding count
// (local models).
func WithExpectedKeys(n uint64) Option { return func(c *config) { c.keys = n } }

// WithInitScale sets the uniform first-touch initialization range
// [-scale, scale) (default 0.05; 0 keeps zeros). The initializer is
// seeded per key, so local and remote workers all derive the same
// embedding for a given key.
func WithInitScale(s float32) Option { return func(c *config) { c.initScale = s } }

// WithInitializer installs a custom first-touch initializer, overriding
// WithInitScale. It must be deterministic in key (see Initializer).
func WithInitializer(fn Initializer) Option { return func(c *config) { c.init = fn } }

// WithPrefetchWorkers sizes the Lookahead worker pool of a local model
// (default 2).
func WithPrefetchWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithCache attaches a staleness-aware hot tier holding up to entries
// embeddings in front of the model's read path (Figure 5(b)'s
// application-side cache). Entries are stamped with the model's write
// clock when they are filled, and a cached read is served only when the
// entry is provably within the staleness bound in effect: always under
// ASP, never under BSP (bound 0), and only while no more than bound
// writes have landed since the fill under a finite SSP bound. Writes
// update the tier in place (Put/PutBatch) or invalidate it (RMW,
// Delete). On a local model the tier sits above the store and its clock
// counts every writer of the table, so a served value is never more than
// the bound allows. On a remote model the tier lives client-side and
// saves the network round trip on a hit — but its clock counts only this
// process's writes, so under a finite SSP bound the gap check bounds
// staleness relative to this client alone; other clients' writes are
// invisible to it (as they are to any application-side cache), and a
// bound changed by another client's re-open is not seen either. When
// foreign writes must bound cached reads, use the server's shared tier
// (mlkv-server -cache), whose clock sees every client. Default 0 (no
// cache).
func WithCache(entries int) Option { return func(c *config) { c.cacheEntries = entries } }

// WithFlushPace rate-limits a local model's background log flusher: at
// most one flush write per pace interval, smearing a burst of frozen
// pages over time instead of letting it saturate the device under
// foreground reads — flush bandwidth traded for read-tail latency. The
// flusher still merges adjacent frozen pages into single group-commit
// writes, so pacing delays durability by at most a few intervals even
// under write bursts. 0 (the default) flushes as fast as the device
// allows. Remote models ignore it: pace the server with -flush-pace.
func WithFlushPace(pace time.Duration) Option {
	return func(c *config) {
		if pace > 0 {
			c.flushPace = pace
		}
	}
}

// WithShards hash-partitions the embedding table across n independent
// FASTER store instances, each with its own hybrid log, hash index, and
// epoch domain. Batch operations (GetBatch, PutBatch) group keys by shard
// and fan out across shards in parallel, and concurrent sessions contend
// on n log tails instead of one. The memory budget is split evenly across
// shards. Default 1 (unsharded, the paper's configuration). A table must
// be reopened with the shard count it was created with; for a remote
// model the count is advisory — it applies only if the server creates the
// model on this Open.
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// Open creates or looks up the named model with the given embedding
// dimension. Opening the same name twice on one DB returns the same
// underlying model (a server additionally deduplicates across clients).
func (db *DB) Open(id string, dim int, opts ...Option) (*Model, error) {
	return db.OpenCtx(context.Background(), id, dim, opts...)
}

// OpenCtx is Open bounded by ctx.
func (db *DB) OpenCtx(ctx context.Context, id string, dim int, opts ...Option) (*Model, error) {
	if id == "" {
		return nil, errors.New("mlkv: model id is required")
	}
	if dim <= 0 {
		return nil, errors.New("mlkv: dim must be positive")
	}
	cfg := config{
		memory:    256 << 20,
		initScale: 0.05,
		workers:   2,
	}
	for _, o := range opts {
		o(&cfg)
	}
	dcfg := driver.Config{
		Dim:             dim,
		Engine:          cfg.engine,
		Shards:          cfg.shards,
		Bound:           cfg.bound,
		BoundSet:        cfg.boundSet,
		MemoryBytes:     cfg.memory,
		ExpectedKeys:    cfg.keys,
		PrefetchWorkers: cfg.workers,
		CacheEntries:    cfg.cacheEntries,
		FlushPace:       cfg.flushPace,
		Init:            cfg.init,
	}
	if dcfg.Init == nil && cfg.initScale > 0 {
		dcfg.Init = core.UniformInit(cfg.initScale, initSeed)
	}
	m, err := db.d.Open(ctx, id, dcfg)
	if err != nil {
		return nil, err
	}
	return &Model{m: m, id: id}, nil
}

// Open creates or recovers the embedding model id under a local directory
// (WithDir, default ./mlkv-data) — the one-call form of
// Connect(dir).Open(id, dim, ...). Closing the model also closes the DB
// it implicitly connected.
func Open(id string, dim int, opts ...Option) (*Model, error) {
	cfg := config{dir: "mlkv-data"}
	for _, o := range opts {
		o(&cfg)
	}
	db, err := Connect(cfg.dir)
	if err != nil {
		return nil, err
	}
	m, err := db.Open(id, dim, opts...)
	if err != nil {
		db.Close()
		return nil, err
	}
	m.ownsDB = db
	return m, nil
}

// Model is one embedding model: a named, disk-backed embedding table,
// served in-process or by a remote server.
type Model struct {
	m      driver.Model
	id     string
	ownsDB *DB // set by the package-level Open
}

// ID returns the model identifier.
func (m *Model) ID() string { return m.id }

// Dim returns the embedding dimension.
func (m *Model) Dim() int { return m.m.Dim() }

// Shards returns the number of hash partitions backing the model (see
// WithShards).
func (m *Model) Shards() int { return m.m.Shards() }

// EngineName identifies the backing engine: "mlkv", "faster" (clock
// disabled), "lsm", "bptree", or "remote(<engine>)".
func (m *Model) EngineName() string { return m.m.EngineName() }

// StalenessBound returns the consistency bound in effect when the model
// was opened (or last set through this handle).
func (m *Model) StalenessBound() int64 { return m.m.StalenessBound() }

// SetStalenessBound adjusts the consistency bound at runtime, best
// effort; use SetStalenessBoundCtx to observe a remote error.
func (m *Model) SetStalenessBound(b int64) { m.m.SetStalenessBound(context.Background(), b) } //nolint:errcheck

// SetStalenessBoundCtx adjusts the consistency bound at runtime. On a
// remote model this re-opens the model with an explicit bound.
func (m *Model) SetStalenessBoundCtx(ctx context.Context, b int64) error {
	return m.m.SetStalenessBound(ctx, b)
}

// Checkpoint persists the model durably; call it at a training barrier
// (the paper checkpoints local NVMe state to durable storage periodically).
func (m *Model) Checkpoint() error { return m.m.Checkpoint(context.Background()) }

// CheckpointCtx is Checkpoint bounded by ctx.
func (m *Model) CheckpointCtx(ctx context.Context) error { return m.m.Checkpoint(ctx) }

// Stats reports storage counters useful for diagnosing data stalls.
type Stats struct {
	// Per-operation counts.
	Gets    int64
	Puts    int64
	RMWs    int64
	Deletes int64
	// Where clocked reads were served.
	DiskReads int64
	MemHits   int64
	// Consistency and write-path behavior.
	StalenessWaits int64
	InPlaceUpdates int64
	RCUAppends     int64
	// Look-ahead activity: records copied into the memory buffer and
	// hints dropped on a full queue.
	PrefetchCopies  int64
	PrefetchDropped int64
	// Batch amortization: GetBatch/PutBatch calls (each may cover
	// thousands of keys) and Lookahead calls.
	BatchGets      int64
	BatchPuts      int64
	LookaheadCalls int64
	// Hot-tier activity (WithCache, and a server's -cache tier for remote
	// models): reads served from the staleness-aware cache, reads it could
	// not serve (absent or beyond the bound), and LRU evictions.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	// Flush volume and shaping: pages and bytes written by the background
	// flusher, multi-page group-commit writes (adjacent frozen pages
	// merged into one write), and pacing sleeps taken between writes
	// (WithFlushPace / mlkv-server -flush-pace).
	FlushedPages    int64
	BytesFlushed    int64
	GroupCommits    int64
	FlushPaceStalls int64
	// Hedged-read activity of a remote model's connection pool
	// (WithHedge/WithAdaptiveHedge; shared by every model opened from the
	// same Connect): duplicates issued, duplicates that beat their
	// primary, duplicates the primary beat, and hedges suppressed by the
	// token bucket.
	HedgedReads     int64
	HedgeWins       int64
	HedgeWasted     int64
	HedgeSuppressed int64
	// Cluster activity (targets of the form "mlkv://a,b,c"; zero
	// elsewhere): nodes and map epoch the client's router currently holds,
	// NOT_OWNER redirects it followed (each adopting the server's newer
	// map), and keys served by read replicas (WithReadReplicas).
	ClusterNodes     int64
	ClusterEpoch     int64
	ClusterRedirects int64
	ReplicaReads     int64
	// Redial activity of a remote target's connection pools (zero for
	// local models): DialRetries counts redial attempts actually made
	// against broken pooled connections; DialBackoffs counts checkouts the
	// jittered-backoff breaker failed fast instead of re-dialing a host
	// already known dead. A rising DialBackoffs with flat DialRetries is a
	// pool waiting out a dead host, not hammering it.
	DialRetries  int64
	DialBackoffs int64
	// Per-op-class latency, always on. A local model times the table's
	// store operations; a remote model times this process's network round
	// trips (per connection pool, so every model opened from the same
	// Connect shares the summaries), which includes queueing in the
	// pipelined client — the tail your callers actually see. LatRMW is
	// the full RMW span: storage-side locally, Get+step+Put remotely.
	LatGet      LatencySummary
	LatGetBatch LatencySummary
	LatPut      LatencySummary
	LatPutBatch LatencySummary
	LatRMW      LatencySummary
}

// LatencySummary is a percentile digest of one op class's latency
// histogram. Quantiles come from an HDR-style log-bucketed histogram
// with under 1% relative error; Max is exact. A zero Count means the
// class has not been exercised.
type LatencySummary struct {
	Count int64
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	P999  time.Duration
	Max   time.Duration
}

// summaryOf converts the driver's nanosecond snapshot to the public type.
func summaryOf(s latency.Snapshot) LatencySummary {
	return LatencySummary{
		Count: s.Count,
		Mean:  time.Duration(s.Mean()),
		P50:   time.Duration(s.P50),
		P90:   time.Duration(s.P90),
		P99:   time.Duration(s.P99),
		P999:  time.Duration(s.P999),
		Max:   time.Duration(s.Max),
	}
}

// Stats returns a snapshot of storage counters, summed across shards —
// best effort on a remote model (zero value if the server is unreachable;
// use StatsCtx to observe the error).
func (m *Model) Stats() Stats {
	s, _ := m.StatsCtx(context.Background())
	return s
}

// StatsCtx returns a snapshot of storage counters, summed across shards.
func (m *Model) StatsCtx(ctx context.Context) (Stats, error) {
	s, err := m.m.Stats(ctx)
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		Gets: s.Gets, Puts: s.Puts, RMWs: s.RMWs, Deletes: s.Deletes,
		DiskReads: s.DiskReads, MemHits: s.MemHits,
		StalenessWaits: s.StalenessWaits,
		InPlaceUpdates: s.InPlaceUpdates, RCUAppends: s.RCUAppends,
		PrefetchCopies: s.PrefetchCopies, PrefetchDropped: s.PrefetchDropped,
		BatchGets: s.BatchGets, BatchPuts: s.BatchPuts,
		LookaheadCalls: s.LookaheadCalls,
		CacheHits:      s.CacheHits, CacheMisses: s.CacheMisses,
		CacheEvictions: s.CacheEvictions,
		FlushedPages: s.FlushedPages, BytesFlushed: s.BytesFlushed,
		GroupCommits: s.GroupCommits, FlushPaceStalls: s.FlushPaceStalls,
		HedgedReads:  s.HedgedReads, HedgeWins: s.HedgeWins,
		HedgeWasted: s.HedgeWasted, HedgeSuppressed: s.HedgeSuppressed,
		ClusterNodes: s.ClusterNodes, ClusterEpoch: s.ClusterEpoch,
		ClusterRedirects: s.ClusterRedirects, ReplicaReads: s.ReplicaReads,
		DialRetries: s.DialRetries, DialBackoffs: s.DialBackoffs,
		LatGet: summaryOf(s.LatGet), LatGetBatch: summaryOf(s.LatGetBatch),
		LatPut: summaryOf(s.LatPut), LatPutBatch: summaryOf(s.LatPutBatch),
		LatRMW: summaryOf(s.LatRMW),
	}, nil
}

// ActiveSessions reports how many sessions are currently open on the
// model (serving front-ends use it to track drains and load). On a remote
// model it is the server's count across every client, fetched best effort.
func (m *Model) ActiveSessions() int64 {
	n, _ := m.m.ActiveSessions(context.Background())
	return n
}

// Close releases the model (and, for a model opened with the package-level
// Open, its implicit DB).
func (m *Model) Close() error {
	err := m.m.Close()
	if m.ownsDB != nil {
		if cerr := m.ownsDB.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// NewSession registers a session. Sessions are cheap; create one per
// worker goroutine and close it when done.
func (m *Model) NewSession() (*Session, error) {
	return m.NewSessionCtx(context.Background())
}

// NewSessionCtx is NewSession bounded by ctx.
func (m *Model) NewSessionCtx(ctx context.Context) (*Session, error) {
	s, err := m.m.NewSession(ctx)
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

// Session is one goroutine's handle. Sessions are cheap; create one per
// worker and close it when done.
type Session struct {
	s driver.Session
}

// Close unregisters the session (on a remote model, the server is told so
// its per-model session accounting stays truthful).
func (s *Session) Close() { s.s.Close() }

// Get reads the embedding for key into dst (len == Dim), initializing on
// first touch, under the bounded-staleness protocol: it waits until the
// record's outstanding-update count is within the bound, then atomically
// increments it.
func (s *Session) Get(key uint64, dst []float32) error {
	return s.s.Get(context.Background(), key, dst)
}

// GetCtx is Get bounded by ctx: a read stalled on the staleness bound (or
// a remote round trip) returns ctx.Err() when ctx ends. A read that ends
// this way holds no staleness token, so it owes no balancing Put. On a
// remote model the guarantee rides on the context's *deadline*, which
// travels in the frame so the server abandons the stalled read too;
// cancelling a deadline-free context returns early but leaves the
// server-side read running — prefer deadlines for remote reads.
func (s *Session) GetCtx(ctx context.Context, key uint64, dst []float32) error {
	return s.s.Get(ctx, key, dst)
}

// GetBatch reads len(keys) embeddings into dst (len == len(keys)*Dim).
func (s *Session) GetBatch(keys []uint64, dst []float32) error {
	return s.s.GetBatch(context.Background(), keys, dst)
}

// GetBatchCtx is GetBatch bounded by ctx (checked on every clocked read
// locally, per frame remotely).
func (s *Session) GetBatchCtx(ctx context.Context, keys []uint64, dst []float32) error {
	return s.s.GetBatch(ctx, keys, dst)
}

// Put upserts the embedding for key, decrementing the record's
// outstanding-update count. Puts never wait.
func (s *Session) Put(key uint64, val []float32) error {
	return s.s.Put(context.Background(), key, val)
}

// PutCtx is Put bounded by ctx.
func (s *Session) PutCtx(ctx context.Context, key uint64, val []float32) error {
	return s.s.Put(ctx, key, val)
}

// PutBatch upserts len(keys) embeddings from vals.
func (s *Session) PutBatch(keys []uint64, vals []float32) error {
	return s.s.PutBatch(context.Background(), keys, vals)
}

// PutBatchCtx is PutBatch bounded by ctx.
func (s *Session) PutBatchCtx(ctx context.Context, keys []uint64, vals []float32) error {
	return s.s.PutBatch(ctx, keys, vals)
}

// RMW applies emb ← emb − lr·grad atomically in storage (remotely: a
// clocked read, the step applied client-side, and the balancing write).
func (s *Session) RMW(key uint64, grad []float32, lr float32) error {
	return s.s.RMW(context.Background(), key, grad, lr)
}

// RMWCtx is RMW bounded by ctx.
func (s *Session) RMWCtx(ctx context.Context, key uint64, grad []float32, lr float32) error {
	return s.s.RMW(ctx, key, grad, lr)
}

// Peek reads without consistency effects (for evaluation/inference).
func (s *Session) Peek(key uint64, dst []float32) (bool, error) {
	return s.s.Peek(context.Background(), key, dst)
}

// PeekCtx is Peek bounded by ctx.
func (s *Session) PeekCtx(ctx context.Context, key uint64, dst []float32) (bool, error) {
	return s.s.Peek(ctx, key, dst)
}

// Delete removes key's embedding.
func (s *Session) Delete(key uint64) error {
	return s.s.Delete(context.Background(), key)
}

// DeleteCtx is Delete bounded by ctx.
func (s *Session) DeleteCtx(ctx context.Context, key uint64) error {
	return s.s.Delete(ctx, key)
}

// Lookahead asynchronously copies the given keys' embeddings from disk into
// MLKV's mutable memory buffer ahead of use (§III-C2). Unlike conventional
// prefetching it is not limited by the staleness bound. It never blocks:
// on a remote model the hint travels on a background session, and hints
// beyond the queue capacity are dropped (and counted in Stats).
func (s *Session) Lookahead(keys []uint64) error {
	return s.s.Lookahead(keys)
}
