package mlkv_test

import (
	"context"
	"testing"
	"time"

	mlkv "github.com/llm-db/mlkv-go"
)

// TestHedgeStatsEndToEnd drives read hedging through the public API
// against a live loopback server and checks the counters surface in
// mlkv.Stats: an ASP model with an aggressive fixed delay attempts a
// hedge on essentially every read (issued or suppressed by the token
// bucket), while a BSP model on the same connection pool — whose clocked
// reads a clock-free duplicate would weaken — moves the counters not at
// all.
func TestHedgeStatsEndToEnd(t *testing.T) {
	const dim = 4
	target := startTestServer(t, mlkv.ASP)
	// A nanosecond delay means every read outlives the trigger: maximal
	// hedging pressure, bounded only by the token bucket.
	db, err := mlkv.Connect(target, mlkv.WithConns(2), mlkv.WithHedge(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	asp, err := db.Open("hedge-asp", dim, mlkv.WithStalenessBound(mlkv.ASP))
	if err != nil {
		t.Fatal(err)
	}
	defer asp.Close()
	s, err := asp.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	keys := make([]uint64, 32)
	for i := range keys {
		keys[i] = uint64(i)
	}
	dst := make([]float32, len(keys)*dim)
	for round := 0; round < 8; round++ {
		if err := s.GetBatch(keys, dst); err != nil {
			t.Fatal(err)
		}
	}
	st, err := asp.StatsCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	attempts := st.HedgedReads + st.HedgeSuppressed
	if attempts == 0 {
		t.Fatalf("no hedge attempts surfaced in Stats: %+v", st)
	}
	if st.HedgedReads != st.HedgeWins+st.HedgeWasted {
		t.Fatalf("issued hedges (%d) != wins (%d) + wasted (%d); a hedge outcome went uncounted",
			st.HedgedReads, st.HedgeWins, st.HedgeWasted)
	}

	// BSP model on the same pool: its clocked reads must not hedge, so
	// the pool-wide counters stay where the ASP traffic left them.
	bsp, err := db.Open("hedge-bsp", dim, mlkv.WithStalenessBound(mlkv.BSP))
	if err != nil {
		t.Fatal(err)
	}
	defer bsp.Close()
	bs, err := bsp.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	before, err := bsp.StatsCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Balanced clock: each clocked read acquires a token its paired write
	// releases, so the BSP rounds never stall on the bound.
	for round := 0; round < 4; round++ {
		if err := bs.GetBatch(keys, dst); err != nil {
			t.Fatal(err)
		}
		if err := bs.PutBatch(keys, dst); err != nil {
			t.Fatal(err)
		}
	}
	after, err := bsp.StatsCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if after.HedgedReads != before.HedgedReads || after.HedgeSuppressed != before.HedgeSuppressed {
		t.Fatalf("BSP reads hedged: %d/%d attempts before, %d/%d after",
			before.HedgedReads, before.HedgeSuppressed, after.HedgedReads, after.HedgeSuppressed)
	}
}
