package mlkv_test

import (
	"fmt"
	"sync"
	"testing"

	mlkv "github.com/llm-db/mlkv-go"
)

func openModel(t *testing.T, opts ...mlkv.Option) *mlkv.Model {
	t.Helper()
	opts = append([]mlkv.Option{
		mlkv.WithDir(t.TempDir()),
		mlkv.WithMemory(8 << 20),
	}, opts...)
	m, err := mlkv.Open("test-model", 8, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestOpenGetPut(t *testing.T) {
	m := openModel(t)
	if m.Dim() != 8 || m.ID() != "test-model" {
		t.Fatalf("model metadata wrong: dim=%d id=%q", m.Dim(), m.ID())
	}
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	emb := make([]float32, 8)
	if err := s.Get(1, emb); err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	if err := s.Put(1, want); err != nil {
		t.Fatal(err)
	}
	got := make([]float32, 8)
	if found, err := s.Peek(1, got); err != nil || !found {
		t.Fatalf("peek: %v %v", found, err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dim %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestBatchAndRMW(t *testing.T) {
	m := openModel(t, mlkv.WithStalenessBound(mlkv.ASP))
	s, _ := m.NewSession()
	defer s.Close()
	keys := []uint64{10, 11, 12}
	vals := make([]float32, 24)
	for i := range vals {
		vals[i] = float32(i)
	}
	if err := s.PutBatch(keys, vals); err != nil {
		t.Fatal(err)
	}
	got := make([]float32, 24)
	if err := s.GetBatch(keys, got); err != nil {
		t.Fatal(err)
	}
	if err := s.PutBatch(keys, got); err != nil { // balance the clock
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("batch slot %d mismatch", i)
		}
	}
	grad := make([]float32, 8)
	grad[0] = 2
	if err := s.RMW(10, grad, 0.5); err != nil {
		t.Fatal(err)
	}
	one := make([]float32, 8)
	s.Peek(10, one)
	if one[0] != vals[0]-1 {
		t.Fatalf("RMW result %v, want %v", one[0], vals[0]-1)
	}
}

func TestLookaheadAndStats(t *testing.T) {
	m := openModel(t, mlkv.WithStalenessBound(4), mlkv.WithMemory(1<<20))
	s, _ := m.NewSession()
	defer s.Close()
	emb := make([]float32, 8)
	// Write past the memory budget so early keys hit disk.
	for k := uint64(1); k <= 20000; k++ {
		if err := s.Put(k, emb); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Lookahead([]uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Puts < 20000 {
		t.Fatalf("stats undercount: %+v", st)
	}
}

func TestDeleteAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	m, err := mlkv.Open("ckpt", 4, mlkv.WithDir(dir), mlkv.WithMemory(4<<20), mlkv.WithInitScale(0))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := m.NewSession()
	s.Put(1, []float32{9, 9, 9, 9})
	s.Delete(2)
	s.Close()
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2, err := mlkv.Open("ckpt", 4, mlkv.WithDir(dir), mlkv.WithMemory(4<<20), mlkv.WithInitScale(0))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	s2, _ := m2.NewSession()
	defer s2.Close()
	got := make([]float32, 4)
	if found, _ := s2.Peek(1, got); !found || got[0] != 9 {
		t.Fatalf("checkpointed embedding lost: found=%v val=%v", found, got)
	}
}

func TestConcurrentSessions(t *testing.T) {
	m := openModel(t, mlkv.WithStalenessBound(8))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := m.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			emb := make([]float32, 8)
			for i := 0; i < 500; i++ {
				k := uint64(i%50 + 1)
				if err := s.Get(k, emb); err != nil {
					t.Error(err)
					return
				}
				if err := s.Put(k, emb); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestOpenValidation(t *testing.T) {
	if _, err := mlkv.Open("", 8); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := mlkv.Open("x", 0, mlkv.WithDir(t.TempDir())); err == nil {
		t.Fatal("zero dim accepted")
	}
}

func TestShardedModel(t *testing.T) {
	m := openModel(t, mlkv.WithShards(4), mlkv.WithStalenessBound(mlkv.ASP))
	if m.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", m.Shards())
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := m.NewSession()
			if err != nil {
				errCh <- err
				return
			}
			defer s.Close()
			keys := make([]uint64, 64)
			vals := make([]float32, 64*8)
			got := make([]float32, 64*8)
			for i := range keys {
				keys[i] = uint64(i * 17)
				for j := 0; j < 8; j++ {
					vals[i*8+j] = float32(keys[i]) + float32(j)
				}
			}
			for iter := 0; iter < 10; iter++ {
				if err := s.PutBatch(keys, vals); err != nil {
					errCh <- err
					return
				}
				if err := s.GetBatch(keys, got); err != nil {
					errCh <- err
					return
				}
				for i := range got {
					if got[i] != vals[i] {
						errCh <- fmt.Errorf("worker %d iter %d: got[%d]=%v want %v",
							w, iter, i, got[i], vals[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Puts == 0 || st.Gets == 0 {
		t.Fatalf("merged stats empty: %+v", st)
	}
}
