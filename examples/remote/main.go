// Remote quickstart: serve a sharded store over loopback with the
// mlkv-server machinery, then drive it through the network client — the
// same kv.Store interface the in-process engines implement, so everything
// that runs locally (YCSB, benchmarks, this loop) runs remotely unchanged.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"github.com/llm-db/mlkv-go/internal/client"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/server"
)

func main() {
	dir, err := os.MkdirTemp("", "mlkv-remote-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A 4-shard store: one embedding table partitioned across four
	// independent hybrid logs, exactly what cmd/mlkv-server opens.
	const valueSize = 32 // an 8-dim float32 embedding
	store, err := kv.OpenFasterShards(kv.ShardedConfig{
		Dir: dir, Shards: 4, ValueSize: valueSize,
		MemoryBytes: 8 << 20, ExpectedKeys: 10000,
	}, "mlkv")
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Serve it on loopback (cmd/mlkv-server does this with flags).
	srv := server.New(server.Config{Store: store})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	// Dial it back. The client is a kv.Store; sessions pipeline over a
	// small connection pool and batches travel as single frames.
	cl, err := client.Dial(ln.Addr().String(), client.Options{Conns: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	fmt.Printf("connected to %s: valuesize=%d shards=%d\n",
		cl.Name(), cl.ValueSize(), cl.Shards())

	sess, err := cl.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// One batched round trip writes 256 embeddings; the server fans the
	// frame across all four shards in parallel.
	const n = 256
	keys := make([]uint64, n)
	vals := make([]byte, n*valueSize)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i*valueSize] = byte(i)
	}
	if err := kv.SessionPutBatch(sess, valueSize, keys, vals); err != nil {
		log.Fatal(err)
	}

	got := make([]byte, n*valueSize)
	found := make([]bool, n)
	if err := kv.SessionGetBatch(sess, valueSize, keys, got, found); err != nil {
		log.Fatal(err)
	}
	hits := 0
	for _, f := range found {
		if f {
			hits++
		}
	}
	fmt.Printf("wrote and read back %d embeddings in one frame each (%d hits)\n", n, hits)

	// Store-level ops travel over the wire too.
	if err := cl.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	stats := cl.Stats()
	fmt.Printf("server counters: gets=%d puts=%d memhits=%d\n",
		stats.Gets, stats.Puts, stats.MemHits)

	// Graceful drain: in-flight requests finish before connections close.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained cleanly")
}
