// Remote quickstart: start an in-process mlkv-server hosting named models
// (the machinery cmd/mlkv-server wraps in flags), then connect to it with
// the same public API a local directory target uses — mlkv.Connect on an
// "mlkv://" target. Two models with different dimensions share the one
// server; batches travel as single frames and fan into each model's
// sharded store in parallel.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	mlkv "github.com/llm-db/mlkv-go"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/server"
)

func main() {
	dir, err := os.MkdirTemp("", "mlkv-remote-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A model registry that lazily opens a 4-shard store per named model —
	// exactly what cmd/mlkv-server builds from its flags. The engine the
	// client requested (mlkv.WithEngine, "" for the default) picks the
	// storage engine behind the model.
	reg := server.NewRegistry(server.RegistryConfig{
		DefaultShards: 4,
		DefaultBound:  mlkv.ASP,
		Opener: func(id string, dim, shards int, bound int64, engine string) (kv.Store, error) {
			return kv.OpenEngine(engine, kv.ShardedConfig{
				Dir: filepath.Join(dir, id), Shards: shards, ValueSize: dim * 4,
				MemoryBytes: 8 << 20, ExpectedKeys: 10000, StalenessBound: bound,
			}, "mlkv")
		},
	})
	defer reg.Close()

	// Serve it on loopback.
	srv := server.New(server.Config{Registry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	// Connect with the public API — the same call, and everything after
	// it, that a local directory target would use.
	db, err := mlkv.Connect(mlkv.Scheme+ln.Addr().String(), mlkv.WithConns(2))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Two named models, two dimensions, one server.
	ctr, err := db.Open("ctr-model", 8)
	if err != nil {
		log.Fatal(err)
	}
	kge, err := db.Open("kge-model", 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected to %s: %s (dim=%d, %d shards), %s (dim=%d, %d shards)\n",
		db.Target(), ctr.ID(), ctr.Dim(), ctr.Shards(), kge.ID(), kge.Dim(), kge.Shards())

	sess, err := ctr.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// One batched round trip writes 256 embeddings; the server fans the
	// frame across all four shards in parallel.
	const n = 256
	keys := make([]uint64, n)
	vals := make([]float32, n*8)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i*8] = float32(i)
	}
	if err := sess.PutBatch(keys, vals); err != nil {
		log.Fatal(err)
	}
	got := make([]float32, n*8)
	if err := sess.GetBatch(keys, got); err != nil {
		log.Fatal(err)
	}
	if err := sess.PutBatch(keys, got); err != nil { // balance the clock
		log.Fatal(err)
	}
	fmt.Printf("wrote and read back %d embeddings in one frame each (got[255][0]=%.0f)\n", n, got[255*8])

	// Model-level ops travel over the wire too, and the server accounts
	// remote sessions truthfully (this process holds one on ctr-model).
	if err := ctr.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	stats := ctr.Stats()
	fmt.Printf("server counters for %s: gets=%d puts=%d batchGets=%d batchPuts=%d sessions=%d\n",
		ctr.ID(), stats.Gets, stats.Puts, stats.BatchGets, stats.BatchPuts, ctr.ActiveSessions())

	// Graceful drain: in-flight requests finish before connections close.
	sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained cleanly")
}
