// Knowledge-graph-embedding link prediction (DistMult) with Marius-style
// BETA partition ordering over MLKV (the paper's DGL-KE-MLKV scenario,
// Figure 9b). The optional argument is the storage target — a directory
// or "mlkv://host:port".
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	mlkv "github.com/llm-db/mlkv-go"
	"github.com/llm-db/mlkv-go/internal/data"
	"github.com/llm-db/mlkv-go/internal/models"
	"github.com/llm-db/mlkv-go/internal/train"
)

func main() {
	target := ""
	if len(os.Args) > 1 {
		target = os.Args[1]
	}
	if target == "" {
		dir, err := os.MkdirTemp("", "mlkv-kge-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		target = dir
	}

	const (
		dim     = 16
		workers = 4
	)
	db, err := mlkv.Connect(target, mlkv.WithConns(workers+2))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	model, err := db.Open("kge", dim,
		mlkv.WithStalenessBound(8),
		mlkv.WithMemory(16<<20),
		mlkv.WithExpectedKeys(500_000),
		mlkv.WithInitScale(0.5), // multiplicative scorers need scale
	)
	if err != nil {
		log.Fatal(err)
	}
	defer model.Close()

	gen := data.NewKGGen(data.KGConfig{
		Entities: 500_000, Relations: 16, Clusters: 32, Seed: 17,
	})
	distmult := models.NewKGE(models.DistMult, dim)

	fmt.Printf("training DistMult for 10s with BETA partition ordering on %s...\n", model.EngineName())
	res, err := train.TrainKGE(train.KGEOptions{
		Gen: gen, Model: distmult,
		Backend: train.NewModelBackend(model, true),
		Workers: workers, Negatives: 4, EmbLR: 0.1,
		Duration:       10 * time.Second,
		BETA:           true,
		BETAPartitions: 8, BETABuffer: 4,
		LookaheadDepth: 8,
		EvalEvery:      2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d triples at %.0f triples/s\n", res.Samples, res.Throughput)
	for _, p := range res.Curve {
		fmt.Printf("  t=%5.1fs Hits@10=%.1f%%\n", p.Seconds, p.Metric)
	}
	fmt.Printf("final Hits@10: %.1f%%\n", res.FinalMetric)
}
