// Knowledge-graph-embedding link prediction (DistMult) with Marius-style
// BETA partition ordering over MLKV (the paper's DGL-KE-MLKV scenario,
// Figure 9b).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/data"
	"github.com/llm-db/mlkv-go/internal/models"
	"github.com/llm-db/mlkv-go/internal/train"
)

func main() {
	dir, err := os.MkdirTemp("", "mlkv-kge-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const dim = 16
	tbl, err := core.OpenTable(core.Options{
		Dir: dir, Dim: dim,
		StalenessBound: 8,
		MemoryBytes:    16 << 20,
		ExpectedKeys:   500_000,
		Init:           core.UniformInit(0.5, 7), // multiplicative scorers need scale
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tbl.Close()

	gen := data.NewKGGen(data.KGConfig{
		Entities: 500_000, Relations: 16, Clusters: 32, Seed: 17,
	})
	model := models.NewKGE(models.DistMult, dim)

	fmt.Println("training DistMult for 10s with BETA partition ordering...")
	res, err := train.TrainKGE(train.KGEOptions{
		Gen: gen, Model: model,
		Backend: train.NewTableBackend(tbl, true),
		Workers: 4, Negatives: 4, EmbLR: 0.1,
		Duration:       10 * time.Second,
		BETA:           true,
		BETAPartitions: 8, BETABuffer: 4,
		LookaheadDepth: 8,
		EvalEvery:      2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d triples at %.0f triples/s\n", res.Samples, res.Throughput)
	for _, p := range res.Curve {
		fmt.Printf("  t=%5.1fs Hits@10=%.1f%%\n", p.Seconds, p.Metric)
	}
	fmt.Printf("final Hits@10: %.1f%%\n", res.FinalMetric)
}
