// DLRM click-through-rate training on a synthetic Criteo-like click log,
// with embeddings out-of-core in MLKV (the paper's PERSIA-MLKV scenario).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/data"
	"github.com/llm-db/mlkv-go/internal/models"
	"github.com/llm-db/mlkv-go/internal/train"
)

func main() {
	dir, err := os.MkdirTemp("", "mlkv-dlrm-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const (
		fields = 8
		dim    = 16
	)
	// A 16 MiB buffer over an 800k-key table: larger-than-memory training.
	tbl, err := core.OpenTable(core.Options{
		Dir: dir, Dim: dim,
		StalenessBound: 8, // SSP
		MemoryBytes:    16 << 20,
		ExpectedKeys:   800_000,
		Init:           core.UniformInit(0.1, 7),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tbl.Close()

	gen := data.NewCTRGen(data.CTRConfig{
		Fields: fields, DenseDim: 4, FieldCard: 100_000, Zipf: 0.9, Seed: 11,
	})
	model := models.NewDLRM(models.DCN, fields, dim, 4, []int{32}, 13)

	fmt.Println("training DCN for 10s with look-ahead prefetching...")
	res, err := train.TrainCTR(train.CTROptions{
		Gen: gen, Model: model,
		Backend: train.NewTableBackend(tbl, true),
		Workers: 4, Mode: train.ModeAsync,
		DenseLR: 0.05, EmbLR: 0.05,
		Duration:       10 * time.Second,
		LookaheadDepth: 16,
		EvalEvery:      2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d samples at %.0f samples/s\n", res.Samples, res.Throughput)
	for _, p := range res.Curve {
		fmt.Printf("  t=%5.1fs AUC=%.4f\n", p.Seconds, p.Metric)
	}
	fmt.Printf("final AUC: %.4f\n", res.FinalMetric)
	copied, dropped := tbl.PrefetchStats()
	fmt.Printf("lookahead: %d embeddings copied to the memory buffer, %d requests dropped\n", copied, dropped)
}
