// DLRM click-through-rate training on a synthetic Criteo-like click log,
// with embeddings out-of-core in MLKV (the paper's PERSIA-MLKV scenario).
// The optional argument is the storage target — a directory or
// "mlkv://host:port" — so the same program trains against local disk or a
// shared embedding server.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	mlkv "github.com/llm-db/mlkv-go"
	"github.com/llm-db/mlkv-go/internal/data"
	"github.com/llm-db/mlkv-go/internal/models"
	"github.com/llm-db/mlkv-go/internal/train"
)

func main() {
	target := ""
	if len(os.Args) > 1 {
		target = os.Args[1]
	}
	if target == "" {
		dir, err := os.MkdirTemp("", "mlkv-dlrm-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		target = dir
	}

	const (
		fields  = 8
		dim     = 16
		workers = 4
	)
	db, err := mlkv.Connect(target, mlkv.WithConns(workers+2))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A 16 MiB buffer over an 800k-key table: larger-than-memory training.
	model, err := db.Open("dlrm", dim,
		mlkv.WithStalenessBound(8), // SSP
		mlkv.WithMemory(16<<20),
		mlkv.WithExpectedKeys(800_000),
		mlkv.WithInitScale(0.1),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer model.Close()

	gen := data.NewCTRGen(data.CTRConfig{
		Fields: fields, DenseDim: 4, FieldCard: 100_000, Zipf: 0.9, Seed: 11,
	})
	dcn := models.NewDLRM(models.DCN, fields, dim, 4, []int{32}, 13)

	fmt.Printf("training DCN for 10s with look-ahead prefetching on %s...\n", model.EngineName())
	res, err := train.TrainCTR(train.CTROptions{
		Gen: gen, Model: dcn,
		Backend: train.NewModelBackend(model, true),
		Workers: workers, Mode: train.ModeAsync,
		DenseLR: 0.05, EmbLR: 0.05,
		Duration:       10 * time.Second,
		LookaheadDepth: 16,
		EvalEvery:      2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d samples at %.0f samples/s\n", res.Samples, res.Throughput)
	for _, p := range res.Curve {
		fmt.Printf("  t=%5.1fs AUC=%.4f\n", p.Seconds, p.Metric)
	}
	fmt.Printf("final AUC: %.4f\n", res.FinalMetric)
	st := model.Stats()
	fmt.Printf("lookahead: %d embeddings copied to the memory buffer, %d requests dropped\n",
		st.PrefetchCopies, st.PrefetchDropped)
}
