// Quickstart: the Open/Get/Put/Lookahead lifecycle of Figure 3.
package main

import (
	"fmt"
	"log"
	"os"

	mlkv "github.com/llm-db/mlkv-go"
)

func main() {
	dir, err := os.MkdirTemp("", "mlkv-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const dim = 8
	// Open an embedding model with a staleness bound of 4 (SSP).
	model, err := mlkv.Open("quickstart", dim,
		mlkv.WithDir(dir),
		mlkv.WithStalenessBound(4),
		mlkv.WithMemory(16<<20),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer model.Close()

	sess, err := model.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// Tell MLKV which embeddings the next batch will need; the prefetch
	// pool moves disk-resident ones into the memory buffer asynchronously.
	batch := []uint64{1, 2, 3}
	if err := sess.Lookahead(batch); err != nil {
		log.Fatal(err)
	}

	emb := make([]float32, dim)
	for _, key := range batch {
		// Forward pass: read the embedding (initialized on first touch).
		if err := sess.Get(key, emb); err != nil {
			log.Fatal(err)
		}
		// ... compute a gradient; here we just nudge the vector ...
		for i := range emb {
			emb[i] += 0.01
		}
		// Backward pass: write the update, releasing the staleness token.
		if err := sess.Put(key, emb); err != nil {
			log.Fatal(err)
		}
	}

	// Gradient application can also run inside storage as an atomic RMW.
	grad := make([]float32, dim)
	grad[0] = 1.0
	if err := sess.RMW(1, grad, 0.1); err != nil {
		log.Fatal(err)
	}

	if found, err := sess.Peek(1, emb); err != nil || !found {
		log.Fatalf("peek: found=%v err=%v", found, err)
	}
	fmt.Printf("embedding[1][0] after updates: %.3f\n", emb[0])

	if err := model.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	st := model.Stats()
	fmt.Printf("gets=%d puts=%d diskReads=%d\n", st.Gets, st.Puts, st.DiskReads)
	fmt.Println("quickstart done")
}
