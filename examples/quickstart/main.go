// Quickstart: the Connect/Open/Get/Put/Lookahead lifecycle of Figure 3.
//
// The one optional argument is the storage target — a directory, or a
// running mlkv-server as "mlkv://host:port". The program is identical for
// both: it opens two named models (differing dimensions) on the target,
// runs the Figure-3 training loop on one, and prints the same
// deterministic output either way.
//
//	go run ./examples/quickstart                      # temp directory
//	go run ./examples/quickstart /data/mlkv           # local directory
//	go run ./examples/quickstart mlkv://127.0.0.1:7070
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	mlkv "github.com/llm-db/mlkv-go"
)

func main() {
	target := ""
	if len(os.Args) > 1 {
		target = os.Args[1]
	}
	if target == "" {
		dir, err := os.MkdirTemp("", "mlkv-quickstart-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		target = dir
	}

	// One DB serves any number of named models, local or remote.
	db, err := mlkv.Connect(target, mlkv.WithConns(2))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Open an 8-dim model with a staleness bound of 4 (SSP) and a second,
	// 4-dim model — two models, two dimensions, one storage service.
	const dim = 8
	model, err := db.Open("quickstart-ctr", dim,
		mlkv.WithStalenessBound(4),
		mlkv.WithMemory(16<<20),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer model.Close()
	side, err := db.Open("quickstart-kge", 4,
		mlkv.WithStalenessBound(mlkv.ASP),
		mlkv.WithMemory(8<<20),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer side.Close()
	fmt.Printf("models: %s dim=%d, %s dim=%d\n", model.ID(), model.Dim(), side.ID(), side.Dim())

	sess, err := model.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// Tell MLKV which embeddings the next batch will need; the prefetch
	// machinery moves disk-resident ones toward memory asynchronously.
	batch := []uint64{1, 2, 3}
	if err := sess.Lookahead(batch); err != nil {
		log.Fatal(err)
	}

	emb := make([]float32, dim)
	for _, key := range batch {
		// Forward pass: read the embedding (initialized on first touch).
		if err := sess.Get(key, emb); err != nil {
			log.Fatal(err)
		}
		// ... compute a gradient; here we just nudge the vector ...
		for i := range emb {
			emb[i] += 0.01
		}
		// Backward pass: write the update, releasing the staleness token.
		if err := sess.Put(key, emb); err != nil {
			log.Fatal(err)
		}
	}

	// Gradient application can also run as an atomic RMW.
	grad := make([]float32, dim)
	grad[0] = 1.0
	if err := sess.RMW(1, grad, 0.1); err != nil {
		log.Fatal(err)
	}

	// Every operation has a context variant: deadlines bound staleness
	// waits locally and network round trips remotely.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := sess.GetCtx(ctx, 2, emb); err != nil {
		log.Fatal(err)
	}
	if err := sess.PutCtx(ctx, 2, emb); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedding[2][0] after updates: %.3f\n", emb[0])

	if found, err := sess.Peek(1, emb); err != nil || !found {
		log.Fatalf("peek: found=%v err=%v", found, err)
	}
	fmt.Printf("embedding[1][0] after updates: %.3f\n", emb[0])

	// The second model is independent: its own dimension, its own keys.
	sideSess, err := side.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	defer sideSess.Close()
	keys := []uint64{10, 11}
	vals := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	if err := sideSess.PutBatch(keys, vals); err != nil {
		log.Fatal(err)
	}
	got := make([]float32, len(vals))
	if err := sideSess.GetBatch(keys, got); err != nil {
		log.Fatal(err)
	}
	if err := sideSess.PutBatch(keys, got); err != nil { // balance the clock
		log.Fatal(err)
	}
	fmt.Printf("side model batch round-trip: %.0f %.0f ... %.0f\n", got[0], got[1], got[len(got)-1])

	if err := model.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	st := model.Stats()
	fmt.Printf("counters recorded: gets=%v puts=%v\n", st.Gets > 0, st.Puts > 0)
	fmt.Println("quickstart done")
}
