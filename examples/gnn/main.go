// GraphSage node classification on a synthetic power-law community graph
// with node embeddings out-of-core in MLKV (the paper's DGL-MLKV scenario,
// and the shape of the eBay risk-detection case studies).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/data"
	"github.com/llm-db/mlkv-go/internal/models"
	"github.com/llm-db/mlkv-go/internal/train"
)

func main() {
	dir, err := os.MkdirTemp("", "mlkv-gnn-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const (
		dim     = 16
		classes = 8
	)
	tbl, err := core.OpenTable(core.Options{
		Dir: dir, Dim: dim,
		StalenessBound: 8,
		MemoryBytes:    16 << 20,
		ExpectedKeys:   200_000,
		Init:           core.UniformInit(0.3, 7),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tbl.Close()

	graph := data.NewGraphGen(data.GraphConfig{
		Nodes: 200_000, Classes: classes, AvgDegree: 12, Homophily: 0.85, Seed: 19,
	})
	sage := models.NewGraphSage(dim, 32, classes, 23)

	fmt.Println("training GraphSage for 10s...")
	res, err := train.TrainGNN(train.GNNOptions{
		Graph: graph, Kind: train.KindGraphSage, Sage: sage,
		Backend: train.NewTableBackend(tbl, true),
		Workers: 4, Fanout: 4, Fanout2: 4,
		DenseLR: 0.05, EmbLR: 0.1,
		Duration:       10 * time.Second,
		LookaheadDepth: 8,
		EvalEvery:      2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d nodes at %.0f nodes/s\n", res.Samples, res.Throughput)
	for _, p := range res.Curve {
		fmt.Printf("  t=%5.1fs accuracy=%.1f%%\n", p.Seconds, p.Metric)
	}
	fmt.Printf("final accuracy: %.1f%% (random = %.1f%%)\n", res.FinalMetric, 100.0/classes)
}
