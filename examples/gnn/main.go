// GraphSage node classification on a synthetic power-law community graph
// with node embeddings out-of-core in MLKV (the paper's DGL-MLKV scenario,
// and the shape of the eBay risk-detection case studies). The optional
// argument is the storage target — a directory or "mlkv://host:port".
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	mlkv "github.com/llm-db/mlkv-go"
	"github.com/llm-db/mlkv-go/internal/data"
	"github.com/llm-db/mlkv-go/internal/models"
	"github.com/llm-db/mlkv-go/internal/train"
)

func main() {
	target := ""
	if len(os.Args) > 1 {
		target = os.Args[1]
	}
	if target == "" {
		dir, err := os.MkdirTemp("", "mlkv-gnn-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		target = dir
	}

	const (
		dim     = 16
		classes = 8
		workers = 4
	)
	db, err := mlkv.Connect(target, mlkv.WithConns(workers+2))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	model, err := db.Open("gnn", dim,
		mlkv.WithStalenessBound(8),
		mlkv.WithMemory(16<<20),
		mlkv.WithExpectedKeys(200_000),
		mlkv.WithInitScale(0.3),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer model.Close()

	graph := data.NewGraphGen(data.GraphConfig{
		Nodes: 200_000, Classes: classes, AvgDegree: 12, Homophily: 0.85, Seed: 19,
	})
	sage := models.NewGraphSage(dim, 32, classes, 23)

	fmt.Printf("training GraphSage for 10s on %s...\n", model.EngineName())
	res, err := train.TrainGNN(train.GNNOptions{
		Graph: graph, Kind: train.KindGraphSage, Sage: sage,
		Backend: train.NewModelBackend(model, true),
		Workers: workers, Fanout: 4, Fanout2: 4,
		DenseLR: 0.05, EmbLR: 0.1,
		Duration:       10 * time.Second,
		LookaheadDepth: 8,
		EvalEvery:      2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d nodes at %.0f nodes/s\n", res.Samples, res.Throughput)
	for _, p := range res.Curve {
		fmt.Printf("  t=%5.1fs accuracy=%.1f%%\n", p.Seconds, p.Metric)
	}
	fmt.Printf("final accuracy: %.1f%% (random = %.1f%%)\n", res.FinalMetric, 100.0/classes)
}
