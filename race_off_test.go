//go:build !race

package mlkv_test

// raceEnabled reports whether the race detector instruments this build;
// the allocation gate skips under it (instrumentation perturbs counts).
const raceEnabled = false
