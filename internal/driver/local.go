package driver

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/kv"
)

// localDB serves models out of one data directory, each model a backend
// under <dir>/<id>: the clocked hybrid log (core.Table) by default, or a
// lifted clock-free engine when Config.Engine asks for one. Opening the
// same id twice returns the same model (refcounted), mirroring the server
// registry's by-name deduplication.
type localDB struct {
	dir string

	mu     sync.Mutex
	closed bool
	models map[string]*localModel
}

func (db *localDB) Target() string { return db.dir }

// localBackend is the engine side of a local model: what differs between
// the hybrid log and the lifted clock-free engines once the refcounting
// and handle bookkeeping above it are shared.
type localBackend interface {
	Dim() int
	Shards() int
	EngineName() string
	StalenessBound() int64
	SetStalenessBound(b int64) error
	Checkpoint() error
	Stats() Stats
	ActiveSessions() int64
	NewSession() (Session, error)
	Close() error
}

func (db *localDB) Open(ctx context.Context, id string, cfg Config) (Model, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	engine := "" // "" = caller has no preference; reopens match anything
	if cfg.Engine != "" {
		var err error
		if engine, err = kv.NormalizeEngine(cfg.Engine); err != nil {
			return nil, err
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, fmt.Errorf("driver: db %q is closed", db.dir)
	}
	if m, ok := db.models[id]; ok {
		if m.be.Dim() != cfg.Dim {
			return nil, fmt.Errorf("driver: model %q has dim %d, requested %d", id, m.be.Dim(), cfg.Dim)
		}
		if engine != "" && engine != m.engine {
			return nil, fmt.Errorf("driver: model %q runs engine %q, requested %q", id, m.engine, engine)
		}
		if cfg.BoundSet {
			if err := m.be.SetStalenessBound(cfg.Bound); err != nil {
				return nil, err
			}
		}
		m.refs++
		return &localHandle{localModel: m}, nil
	}
	if engine == "" {
		engine = kv.EngineFaster
	}
	var (
		be  localBackend
		err error
	)
	if engine == kv.EngineFaster {
		be, err = openCoreBackend(filepath.Join(db.dir, id), cfg)
	} else {
		be, err = openKVBackend(filepath.Join(db.dir, id), engine, cfg)
	}
	if err != nil {
		return nil, err
	}
	m := &localModel{db: db, id: id, engine: engine, be: be, refs: 1}
	db.models[id] = m
	return &localHandle{localModel: m}, nil
}

// Close closes every model still open on the directory.
func (db *localDB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	models := make([]*localModel, 0, len(db.models))
	for _, m := range db.models {
		models = append(models, m)
	}
	db.models = make(map[string]*localModel)
	db.mu.Unlock()
	var first error
	for _, m := range models {
		if err := m.be.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// localModel wraps one backend. refs counts Opens; the backend closes when
// the last reference is released (or when the DB closes). Each Open
// returns its own localHandle so a double Close of one handle releases
// its reference once, never a sibling's.
type localModel struct {
	db     *localDB
	id     string
	engine string // canonical: faster, lsm, or bptree
	be     localBackend
	refs   int // guarded by db.mu
}

// localHandle is one Open's view of a shared localModel.
type localHandle struct {
	*localModel
	closed atomic.Bool
}

// Close releases this handle's reference exactly once; the backend closes
// when the last handle goes.
func (h *localHandle) Close() error {
	if h.closed.Swap(true) {
		return nil
	}
	return h.localModel.release()
}

func (m *localModel) ID() string            { return m.id }
func (m *localModel) Dim() int              { return m.be.Dim() }
func (m *localModel) Shards() int           { return m.be.Shards() }
func (m *localModel) EngineName() string    { return m.be.EngineName() }
func (m *localModel) StalenessBound() int64 { return m.be.StalenessBound() }

func (m *localModel) SetStalenessBound(ctx context.Context, b int64) error {
	return m.be.SetStalenessBound(b)
}

func (m *localModel) Checkpoint(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return m.be.Checkpoint()
}

func (m *localModel) Stats(ctx context.Context) (Stats, error) {
	return m.be.Stats(), nil
}

func (m *localModel) ActiveSessions(ctx context.Context) (int64, error) {
	return m.be.ActiveSessions(), nil
}

func (m *localModel) NewSession(ctx context.Context) (Session, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m.be.NewSession()
}

// release drops one reference; the backend closes when the last one goes.
func (m *localModel) release() error {
	m.db.mu.Lock()
	if m.refs == 0 { // DB already closed everything
		m.db.mu.Unlock()
		return nil
	}
	m.refs--
	last := m.refs == 0
	if last {
		delete(m.db.models, m.id)
	}
	m.db.mu.Unlock()
	if !last {
		return nil
	}
	return m.be.Close()
}

// --- hybrid-log backend (core.Table) ---

// coreBackend is the default engine behind a local model: the clocked
// hybrid log, the only backend with a staleness clock.
type coreBackend struct {
	t *core.Table
}

func openCoreBackend(dir string, cfg Config) (*coreBackend, error) {
	// A directory a clock-free engine populated must not be reopened as
	// the hybrid log on top of foreign files (and vice versa).
	if err := kv.CheckEngineDir(dir, kv.EngineFaster); err != nil {
		return nil, err
	}
	bound := cfg.Bound
	if !cfg.BoundSet {
		// The public API's historical local default: SSP(4). It lives here
		// rather than in the public layer so that an engine-less reopen of
		// an existing clock-free model never carries an implied blocking
		// bound the model would have to refuse.
		bound = 4
	}
	t, err := core.OpenTable(core.Options{
		Dir:             dir,
		Dim:             cfg.Dim,
		Shards:          cfg.Shards,
		StalenessBound:  bound,
		MemoryBytes:     cfg.MemoryBytes,
		ExpectedKeys:    cfg.ExpectedKeys,
		PrefetchWorkers: cfg.PrefetchWorkers,
		CacheEntries:    cfg.CacheEntries,
		FlushPace:       cfg.FlushPace,
		Init:            cfg.Init,
		// Always on through the public API: both drivers report the same
		// latency fields in Stats, so local-vs-remote comparisons hold.
		TrackLatency: true,
	})
	if err != nil {
		return nil, err
	}
	return &coreBackend{t: t}, nil
}

func (b *coreBackend) Dim() int    { return b.t.Dim() }
func (b *coreBackend) Shards() int { return b.t.Shards() }

func (b *coreBackend) EngineName() string {
	if b.t.Store().StalenessBound() >= 0 {
		return "mlkv"
	}
	return "faster"
}

func (b *coreBackend) StalenessBound() int64 { return b.t.Store().StalenessBound() }

func (b *coreBackend) SetStalenessBound(bound int64) error {
	b.t.SetStalenessBound(bound)
	return nil
}

func (b *coreBackend) Checkpoint() error { return b.t.Checkpoint() }

func (b *coreBackend) Stats() Stats {
	ts := b.t.TableStats()
	return Stats{
		Gets: ts.Gets, Puts: ts.Puts, RMWs: ts.RMWs, Deletes: ts.Deletes,
		MemHits: ts.MemHits, DiskReads: ts.DiskReads,
		InPlaceUpdates: ts.InPlaceUpdates, RCUAppends: ts.RCUAppends,
		StalenessWaits: ts.StalenessWaits,
		PrefetchCopies: ts.PrefetchCopies, PrefetchDropped: ts.PrefetchDropped,
		FlushedPages: ts.FlushedPages, BytesFlushed: ts.BytesFlushed,
		GroupCommits: ts.GroupCommits, FlushPaceStalls: ts.FlushPaceStalls,
		BatchGets: ts.BatchGets, BatchPuts: ts.BatchPuts,
		LookaheadCalls: ts.LookaheadCalls,
		CacheHits:      ts.CacheHits, CacheMisses: ts.CacheMisses,
		CacheEvictions: ts.CacheEvictions,
		LatGet:         ts.LatGet, LatGetBatch: ts.LatGetBatch,
		LatPut: ts.LatPut, LatPutBatch: ts.LatPutBatch, LatRMW: ts.LatRMW,
	}
}

func (b *coreBackend) ActiveSessions() int64 { return b.t.ActiveSessions() }

func (b *coreBackend) NewSession() (Session, error) {
	s, err := b.t.NewSession()
	if err != nil {
		return nil, err
	}
	return &localSession{s: s}, nil
}

func (b *coreBackend) Close() error { return b.t.Close() }

// localSession adapts core.Session to the driver seam.
type localSession struct {
	s *core.Session
}

func (s *localSession) Get(ctx context.Context, key uint64, dst []float32) error {
	return s.s.GetCtx(ctx, key, dst)
}

func (s *localSession) GetBatch(ctx context.Context, keys []uint64, dst []float32) error {
	return s.s.GetBatchCtx(ctx, keys, dst)
}

func (s *localSession) Put(ctx context.Context, key uint64, val []float32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.s.Put(key, val)
}

func (s *localSession) PutBatch(ctx context.Context, keys []uint64, vals []float32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.s.PutBatch(keys, vals)
}

func (s *localSession) RMW(ctx context.Context, key uint64, grad []float32, lr float32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.s.ApplyGradient(key, grad, lr)
}

func (s *localSession) Peek(ctx context.Context, key uint64, dst []float32) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return s.s.Peek(key, dst)
}

func (s *localSession) Delete(ctx context.Context, key uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.s.Delete(key)
}

func (s *localSession) Lookahead(keys []uint64) error {
	return s.s.Lookahead(keys, core.DestStorageBuffer, nil)
}

func (s *localSession) Close() { s.s.Close() }
