package driver

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"github.com/llm-db/mlkv-go/internal/core"
)

// localDB serves models out of one data directory, each model a
// core.Table under <dir>/<id>. Opening the same id twice returns the same
// model (refcounted), mirroring the server registry's by-name
// deduplication.
type localDB struct {
	dir string

	mu     sync.Mutex
	closed bool
	models map[string]*localModel
}

func (db *localDB) Target() string { return db.dir }

func (db *localDB) Open(ctx context.Context, id string, cfg Config) (Model, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, fmt.Errorf("driver: db %q is closed", db.dir)
	}
	if m, ok := db.models[id]; ok {
		if m.table.Dim() != cfg.Dim {
			return nil, fmt.Errorf("driver: model %q has dim %d, requested %d", id, m.table.Dim(), cfg.Dim)
		}
		if cfg.BoundSet {
			m.table.SetStalenessBound(cfg.Bound)
		}
		m.refs++
		return &localHandle{localModel: m}, nil
	}
	bound := cfg.Bound
	if !cfg.BoundSet {
		bound = core.BoundASP
	}
	t, err := core.OpenTable(core.Options{
		Dir:             filepath.Join(db.dir, id),
		Dim:             cfg.Dim,
		Shards:          cfg.Shards,
		StalenessBound:  bound,
		MemoryBytes:     cfg.MemoryBytes,
		ExpectedKeys:    cfg.ExpectedKeys,
		PrefetchWorkers: cfg.PrefetchWorkers,
		CacheEntries:    cfg.CacheEntries,
		Init:            cfg.Init,
	})
	if err != nil {
		return nil, err
	}
	m := &localModel{db: db, id: id, table: t, refs: 1}
	db.models[id] = m
	return &localHandle{localModel: m}, nil
}

// Close closes every model still open on the directory.
func (db *localDB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	models := make([]*localModel, 0, len(db.models))
	for _, m := range db.models {
		models = append(models, m)
	}
	db.models = make(map[string]*localModel)
	db.mu.Unlock()
	var first error
	for _, m := range models {
		if err := m.table.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// localModel wraps one core.Table. refs counts Opens; the table closes
// when the last reference is released (or when the DB closes). Each Open
// returns its own localHandle so a double Close of one handle releases
// its reference once, never a sibling's.
type localModel struct {
	db    *localDB
	id    string
	table *core.Table
	refs  int // guarded by db.mu
}

// localHandle is one Open's view of a shared localModel.
type localHandle struct {
	*localModel
	closed atomic.Bool
}

// Close releases this handle's reference exactly once; the table closes
// when the last handle goes.
func (h *localHandle) Close() error {
	if h.closed.Swap(true) {
		return nil
	}
	return h.localModel.release()
}

func (m *localModel) ID() string  { return m.id }
func (m *localModel) Dim() int    { return m.table.Dim() }
func (m *localModel) Shards() int { return m.table.Shards() }

func (m *localModel) EngineName() string {
	if m.table.Store().StalenessBound() >= 0 {
		return "mlkv"
	}
	return "faster"
}

func (m *localModel) StalenessBound() int64 { return m.table.Store().StalenessBound() }

func (m *localModel) SetStalenessBound(ctx context.Context, b int64) error {
	m.table.SetStalenessBound(b)
	return nil
}

func (m *localModel) Checkpoint(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return m.table.Checkpoint()
}

func (m *localModel) Stats(ctx context.Context) (Stats, error) {
	ts := m.table.TableStats()
	return Stats{
		Gets: ts.Gets, Puts: ts.Puts, RMWs: ts.RMWs, Deletes: ts.Deletes,
		MemHits: ts.MemHits, DiskReads: ts.DiskReads,
		InPlaceUpdates: ts.InPlaceUpdates, RCUAppends: ts.RCUAppends,
		StalenessWaits: ts.StalenessWaits,
		PrefetchCopies: ts.PrefetchCopies, PrefetchDropped: ts.PrefetchDropped,
		FlushedPages: ts.FlushedPages, BytesFlushed: ts.BytesFlushed,
		BatchGets: ts.BatchGets, BatchPuts: ts.BatchPuts,
		LookaheadCalls: ts.LookaheadCalls,
		CacheHits:      ts.CacheHits, CacheMisses: ts.CacheMisses,
		CacheEvictions: ts.CacheEvictions,
	}, nil
}

func (m *localModel) ActiveSessions(ctx context.Context) (int64, error) {
	return m.table.ActiveSessions(), nil
}

func (m *localModel) NewSession(ctx context.Context) (Session, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := m.table.NewSession()
	if err != nil {
		return nil, err
	}
	return &localSession{s: s}, nil
}

// release drops one reference; the table closes when the last one goes.
func (m *localModel) release() error {
	m.db.mu.Lock()
	if m.refs == 0 { // DB already closed everything
		m.db.mu.Unlock()
		return nil
	}
	m.refs--
	last := m.refs == 0
	if last {
		delete(m.db.models, m.id)
	}
	m.db.mu.Unlock()
	if !last {
		return nil
	}
	return m.table.Close()
}

// localSession adapts core.Session to the driver seam.
type localSession struct {
	s *core.Session
}

func (s *localSession) Get(ctx context.Context, key uint64, dst []float32) error {
	return s.s.GetCtx(ctx, key, dst)
}

func (s *localSession) GetBatch(ctx context.Context, keys []uint64, dst []float32) error {
	return s.s.GetBatchCtx(ctx, keys, dst)
}

func (s *localSession) Put(ctx context.Context, key uint64, val []float32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.s.Put(key, val)
}

func (s *localSession) PutBatch(ctx context.Context, keys []uint64, vals []float32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.s.PutBatch(keys, vals)
}

func (s *localSession) RMW(ctx context.Context, key uint64, grad []float32, lr float32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.s.ApplyGradient(key, grad, lr)
}

func (s *localSession) Peek(ctx context.Context, key uint64, dst []float32) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return s.s.Peek(key, dst)
}

func (s *localSession) Delete(ctx context.Context, key uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.s.Delete(key)
}

func (s *localSession) Lookahead(keys []uint64) error {
	return s.s.Lookahead(keys, core.DestStorageBuffer, nil)
}

func (s *localSession) Close() { s.s.Close() }
