package driver

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/llm-db/mlkv-go/internal/client"
	"github.com/llm-db/mlkv-go/internal/cluster"
	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/hotcache"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/latency"
	"github.com/llm-db/mlkv-go/internal/tensor"
	"github.com/llm-db/mlkv-go/internal/wire"
)

// wireSession is one worker's byte-level handle on a remote target,
// satisfied by both *client.Session (one server) and *cluster.RSession
// (routed across a cluster). Not safe for concurrent use.
type wireSession interface {
	GetCtx(ctx context.Context, key uint64, dst []byte) (bool, error)
	PeekCtx(ctx context.Context, key uint64, dst []byte) (bool, error)
	PutCtx(ctx context.Context, key uint64, val []byte) error
	DeleteCtx(ctx context.Context, key uint64) error
	GetBatchCtx(ctx context.Context, keys []uint64, vals []byte, found []bool) error
	PutBatchCtx(ctx context.Context, keys []uint64, vals []byte) error
	LookaheadCtx(ctx context.Context, keys []uint64) (int, error)
	Close()
}

// wireModel is one named model behind either remote backend.
type wireModel interface {
	ID() string
	Dim() int
	Shards() int
	Name() string
	StalenessBound() int64
	SetBoundHint(bound int64)
	CheckpointCtx(ctx context.Context) error
	ModelStats(ctx context.Context) (wire.ModelStats, error)
	NewWireSession(ctx context.Context) (wireSession, error)
}

// ErrNoLiveOwner re-exports the cluster router's failover sentinel across
// the seam: an operation that spent its whole owner-retry budget without
// any reachable owner for the key wraps this, so callers can distinguish
// "the cluster is down for this range" from a single failed round trip.
var ErrNoLiveOwner = cluster.ErrNoLiveOwner

// wireBackend is what remoteDB sits on: one server's connection pool or a
// cluster router fanning over many.
type wireBackend interface {
	OpenWireModel(ctx context.Context, spec client.OpenSpec) (wireModel, error)
	Latency() *latency.OpSet
	HedgeStats() client.HedgeStats
	// ClusterInfo reports (nodes, epoch, redirects, replicaReads); all
	// zero for a single-server backend.
	ClusterInfo() (int64, int64, int64, int64)
	// DialStats reports (redial attempts, breaker fast-fails), summed
	// across every pool the backend holds.
	DialStats() (int64, int64)
	Close() error
}

// singleBackend is the plain one-server pool.
type singleBackend struct{ c *client.Client }

// singleModel adapts *client.Model's concrete session type to the seam.
type singleModel struct{ *client.Model }

func (m singleModel) NewWireSession(ctx context.Context) (wireSession, error) {
	return m.Model.NewSessionCtx(ctx)
}

func (b singleBackend) OpenWireModel(ctx context.Context, spec client.OpenSpec) (wireModel, error) {
	m, err := b.c.OpenModel(ctx, spec)
	if err != nil {
		return nil, err
	}
	return singleModel{m}, nil
}
func (b singleBackend) Latency() *latency.OpSet                 { return b.c.Latency() }
func (b singleBackend) HedgeStats() client.HedgeStats           { return b.c.HedgeStats() }
func (b singleBackend) ClusterInfo() (int64, int64, int64, int64) { return 0, 0, 0, 0 }
func (b singleBackend) DialStats() (int64, int64)                 { return b.c.DialStats() }
func (b singleBackend) Close() error                            { return b.c.Close() }

// clusterBackend is the cluster router behind the same seam.
type clusterBackend struct{ r *cluster.Router }

// clusterModel adapts *cluster.RModel's concrete session type to the seam.
type clusterModel struct{ *cluster.RModel }

func (m clusterModel) NewWireSession(ctx context.Context) (wireSession, error) {
	return m.RModel.NewSession(ctx)
}

func (b clusterBackend) OpenWireModel(ctx context.Context, spec client.OpenSpec) (wireModel, error) {
	m, err := b.r.OpenModel(ctx, spec)
	if err != nil {
		return nil, err
	}
	return clusterModel{m}, nil
}
func (b clusterBackend) Latency() *latency.OpSet       { return b.r.Latency() }
func (b clusterBackend) HedgeStats() client.HedgeStats { return b.r.HedgeStats() }
func (b clusterBackend) ClusterInfo() (int64, int64, int64, int64) {
	m := b.r.Map()
	return int64(len(m.Nodes)), int64(m.Epoch), b.r.Redirects(), b.r.ReplicaReads()
}
func (b clusterBackend) DialStats() (int64, int64) { return b.r.DialStats() }
func (b clusterBackend) Close() error              { return b.r.Close() }

// remoteDB is a backend onto one or many mlkv-servers; models open over
// the wire with OPEN frames and all data moves through internal/tensor's
// float32 codecs. This package is the only one that may import
// internal/client and internal/cluster — everything else reaches a server
// through the public API (or DialKV below).
type remoteDB struct {
	target string
	c      wireBackend
}

// connectRemote bootstraps from the first reachable seed: every server is
// probed with CLUSTERMAP. A map answer builds the cluster router (so a
// client bootstrapped from any single seed discovers all nodes); a refusal
// from a single-host target is the plain one-server backend; a refusal
// from a multi-host target is a configuration error — a seed list promises
// a cluster.
func connectRemote(target string, addrs []string, opts ConnectOptions) (DB, error) {
	copts := client.Options{
		Conns:         opts.Conns,
		DialTimeout:   opts.DialTimeout,
		HedgeDelay:    opts.HedgeDelay,
		HedgeAdaptive: opts.HedgeAdaptive,
	}
	probeTimeout := opts.DialTimeout
	if probeTimeout <= 0 {
		probeTimeout = 5 * time.Second
	}
	var lastErr error
	for _, addr := range addrs {
		c, err := client.Dial(addr, copts)
		if err != nil {
			lastErr = err
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
		raw, err := c.ClusterMapRaw(ctx)
		cancel()
		if err == nil {
			m, derr := cluster.DecodeMap(raw)
			if derr != nil {
				c.Close()
				return nil, fmt.Errorf("driver: node %s served a bad cluster map: %w", addr, derr)
			}
			ropts := cluster.RouterOptions{Client: copts, ReadReplicas: opts.ReadReplicas}
			return &remoteDB{target: target, c: clusterBackend{r: cluster.NewRouter(m, addr, c, ropts)}}, nil
		}
		var se *client.ServerError
		if errors.As(err, &se) {
			// The server answered: reachable, just not clustered.
			if len(addrs) > 1 {
				c.Close()
				return nil, fmt.Errorf("driver: target %q names %d servers but %s is not clustered: %s", target, len(addrs), addr, se.Msg)
			}
			return &remoteDB{target: target, c: singleBackend{c: c}}, nil
		}
		c.Close()
		lastErr = err
	}
	return nil, fmt.Errorf("driver: no reachable server in %q: %w", target, lastErr)
}

func (db *remoteDB) Target() string { return db.target }

func (db *remoteDB) Open(ctx context.Context, id string, cfg Config) (Model, error) {
	bound := wire.BoundUnset
	if cfg.BoundSet {
		bound = cfg.Bound
	}
	engine := "" // "" = the server's choice; the wire carries canonical names
	if cfg.Engine != "" {
		var err error
		if engine, err = kv.NormalizeEngine(cfg.Engine); err != nil {
			return nil, err
		}
	}
	cm, err := db.c.OpenWireModel(ctx, client.OpenSpec{
		ID: id, Dim: cfg.Dim, Shards: cfg.Shards, Bound: bound,
		Engine: engine,
	})
	if err != nil {
		return nil, err
	}
	m := &remoteModel{
		db:       db,
		m:        cm,
		init:     cfg.Init,
		lookCh:   make(chan []uint64, 1024),
		lookStop: make(chan struct{}),
		lookDone: make(chan struct{}),
	}
	m.bound.Store(cm.StalenessBound())
	if cfg.CacheEntries > 0 {
		m.cache = hotcache.New[float32](cfg.CacheEntries, cfg.Dim)
	}
	return m, nil
}

// Close tears down the connection pool; models and sessions opened from
// this DB fail afterwards (and their Lookahead hints drop).
func (db *remoteDB) Close() error { return db.c.Close() }

// remoteModel is one named model on the server. Lookahead hints are
// fire-and-forget on a local table but a blocking round trip on the wire,
// so the model hands them to a background worker with its own session
// (started on the first hint); a full queue drops the hint, matching
// core.Table's prefetch-pool semantics.
type remoteModel struct {
	db   *remoteDB
	m    wireModel
	init core.Initializer

	// cache is the client-side hot tier (Config.CacheEntries), shared by
	// every session of this model handle. clock counts this process's
	// writes to the model — the stamp source for tier entries — and bound
	// tracks the staleness bound in effect (updated by SetStalenessBound,
	// which the wire otherwise reports only at open time). The tier's gap
	// check therefore bounds staleness relative to this process's writes;
	// other clients' writes are invisible to it, exactly as they are to a
	// PERSIA-style application-side cache. Workloads where foreign writes
	// must bound cached reads belong on the server-side tier (-cache),
	// whose clock sees every client.
	cache *hotcache.Cache[float32]
	clock atomic.Int64
	bound atomic.Int64

	// lookMu orders worker start against Close, so a hint racing a Close
	// can never start a worker Close no longer sees.
	lookMu      sync.Mutex
	lookStarted bool
	lookClosed  bool
	lookCh      chan []uint64
	lookStop    chan struct{}
	lookDone    chan struct{}
	lookDropped atomic.Int64
}

func (m *remoteModel) ID() string            { return m.m.ID() }
func (m *remoteModel) Dim() int              { return m.m.Dim() }
func (m *remoteModel) Shards() int           { return m.m.Shards() }
func (m *remoteModel) EngineName() string    { return m.m.Name() }
func (m *remoteModel) StalenessBound() int64 { return m.bound.Load() }

// SetStalenessBound re-opens the model with an explicit bound — the wire
// protocol's way to adjust an existing model's consistency. The local
// bound mirror (which the hot tier's admissibility checks read) updates
// only on success.
func (m *remoteModel) SetStalenessBound(ctx context.Context, b int64) error {
	_, err := m.db.c.OpenWireModel(ctx, client.OpenSpec{
		ID: m.m.ID(), Dim: m.m.Dim(), Bound: b,
	})
	if err == nil {
		m.bound.Store(b)
		// The wire model's own mirror gates hedge admissibility; a model
		// retuned to a blocking bound must stop hedging immediately.
		m.m.SetBoundHint(b)
	}
	return err
}

func (m *remoteModel) Checkpoint(ctx context.Context) error { return m.m.CheckpointCtx(ctx) }

func (m *remoteModel) Stats(ctx context.Context) (Stats, error) {
	ms, err := m.m.ModelStats(ctx)
	if err != nil {
		return Stats{}, err
	}
	// The hot-tier view merges the server's shared per-model tier with
	// this handle's client-side tier: both sit in front of the same store.
	cache := hotcache.Stats{Hits: ms.CacheHits, Misses: ms.CacheMisses, Evictions: ms.CacheEvictions}
	if m.cache != nil {
		cache = cache.Add(m.cache.Stats())
	}
	// Latency is this pool's round-trip view — end to end, including
	// demux queueing — not the server-side store timings in ms.Lat* (those
	// stay visible through the mlkv_latency expvar and raw STATS frames).
	// The pool is per-DB, so the summaries cover every model opened from
	// this Connect; RMW is the composite client-side Get+step+Put.
	lat := m.db.c.Latency()
	hs := m.db.c.HedgeStats()
	nodes, epoch, redirects, replicaReads := m.db.c.ClusterInfo()
	dialRetries, dialBackoffs := m.db.c.DialStats()
	return Stats{
		ClusterNodes: nodes, ClusterEpoch: epoch,
		ClusterRedirects: redirects, ReplicaReads: replicaReads,
		DialRetries: dialRetries, DialBackoffs: dialBackoffs,
		Gets: ms.Gets, Puts: ms.Puts, RMWs: ms.RMWs, Deletes: ms.Deletes,
		MemHits: ms.MemHits, DiskReads: ms.DiskReads,
		InPlaceUpdates: ms.InPlaceUpdates, RCUAppends: ms.RCUAppends,
		StalenessWaits: ms.StalenessWaits,
		PrefetchCopies: ms.PrefetchCopies, PrefetchDropped: m.lookDropped.Load(),
		FlushedPages: ms.FlushedPages, BytesFlushed: ms.BytesFlushed,
		GroupCommits: ms.GroupCommits, FlushPaceStalls: ms.FlushPaceStalls,
		BatchGets: ms.BatchGets, BatchPuts: ms.BatchPuts,
		LookaheadCalls: ms.LookaheadFrames,
		CacheHits:      cache.Hits, CacheMisses: cache.Misses,
		CacheEvictions: cache.Evictions,
		HedgedReads:    hs.Issued, HedgeWins: hs.Won,
		HedgeWasted: hs.Wasted, HedgeSuppressed: hs.Suppressed,
		LatGet:         lat[latency.OpGet].Snapshot(),
		LatGetBatch:    lat[latency.OpGetBatch].Snapshot(),
		LatPut:         lat[latency.OpPut].Snapshot(),
		LatPutBatch:    lat[latency.OpPutBatch].Snapshot(),
		LatRMW:         lat[latency.OpRMW].Snapshot(),
	}, nil
}

// ActiveSessions reports the server's attach-minus-detach balance for the
// model — every remote client's sessions, not just this process's.
func (m *remoteModel) ActiveSessions(ctx context.Context) (int64, error) {
	ms, err := m.m.ModelStats(ctx)
	if err != nil {
		return 0, err
	}
	return ms.ActiveSessions, nil
}

func (m *remoteModel) NewSession(ctx context.Context) (Session, error) {
	s, err := m.m.NewWireSession(ctx)
	if err != nil {
		return nil, err
	}
	vs := m.m.Dim() * 4
	return &remoteSession{m: m, s: s, buf: make([]byte, vs)}, nil
}

// Close stops the lookahead worker. The server keeps the model open (the
// registry owns its lifecycle); the pool closes with the DB. Idempotent.
func (m *remoteModel) Close() error {
	m.lookMu.Lock()
	if m.lookClosed {
		m.lookMu.Unlock()
		return nil
	}
	m.lookClosed = true
	started := m.lookStarted
	m.lookMu.Unlock()
	if started {
		close(m.lookStop)
		<-m.lookDone
	}
	return nil
}

// lookaheadWorker drains the hint queue into LOOKAHEAD frames on its own
// session. Hints are best-effort: a transient server error drops this
// hint, not the pipeline.
func (m *remoteModel) lookaheadWorker() {
	defer close(m.lookDone)
	s, err := m.m.NewWireSession(context.Background())
	if err != nil {
		return
	}
	defer s.Close()
	for {
		select {
		case <-m.lookStop:
			return
		case keys := <-m.lookCh:
			if _, err := s.LookaheadCtx(context.Background(), keys); err != nil {
				continue
			}
		}
	}
}

// enqueueLookahead hands keys to the worker, starting it on first use;
// hints beyond the queue capacity drop (and are counted). A hint racing
// Close is dropped — start and close are ordered under lookMu.
func (m *remoteModel) enqueueLookahead(keys []uint64) {
	m.lookMu.Lock()
	if m.lookClosed {
		m.lookMu.Unlock()
		return
	}
	if !m.lookStarted {
		m.lookStarted = true
		go m.lookaheadWorker()
	}
	m.lookMu.Unlock()
	cp := append([]uint64(nil), keys...) // caller reuses its slice
	select {
	case m.lookCh <- cp:
	default:
		m.lookDropped.Add(1)
	}
}

// remoteSession adapts a wire session to the float32 seam, adding
// client-side first-touch initialization — the paper's
// "framework + plain KV store" integration pattern, with the initializer
// seeded per key so every worker initializes an embedding identically.
type remoteSession struct {
	m   *remoteModel
	s   wireSession
	buf []byte // one value, scalar-path staging

	// Batch-path scratch, grown on demand and reused across steps.
	bbuf     []byte
	found    []bool
	missKeys []uint64
	missVals []byte
	// Hot-tier scratch: positions the tier missed and their compacted
	// keys (what actually goes on the wire).
	cacheMiss []int
	fetchKeys []uint64
	// rmw is the read-modify-write staging value.
	rmw []float32
}

func (s *remoteSession) initInto(key uint64, dst []float32) {
	if s.m.init != nil {
		s.m.init(key, dst)
		return
	}
	clear(dst)
}

// tier returns the model's hot tier when it may be consulted: present and
// not under BSP, where every read must synchronize through the store.
func (s *remoteSession) tier() (*hotcache.Cache[float32], int64, bool) {
	c := s.m.cache
	if c == nil {
		return nil, 0, false
	}
	bound := s.m.bound.Load()
	if bound == 0 {
		return nil, 0, false
	}
	return c, bound, true
}

func (s *remoteSession) Get(ctx context.Context, key uint64, dst []float32) error {
	if len(dst) != s.m.Dim() {
		return fmt.Errorf("driver: dst length %d != dim %d", len(dst), s.m.Dim())
	}
	c, bound, on := s.tier()
	var stamp int64
	if on {
		stamp = s.m.clock.Load()
		if c.Get(key, dst, stamp, bound) {
			return nil
		}
	}
	found, err := s.s.GetCtx(ctx, key, s.buf)
	if err != nil {
		return err
	}
	if !found {
		// First touch: initialize client-side and write back, so later
		// reads (from any worker) see the same embedding. The fresh
		// record's clock starts balanced — a miss acquired no token, and
		// a Put on a zero-staleness record is floored, not underflowed.
		s.initInto(key, dst)
		tensor.F32sToBytes(dst, s.buf)
		if err := s.s.PutCtx(ctx, key, s.buf); err != nil {
			return err
		}
		if on {
			c.Put(key, dst, s.m.clock.Add(1))
		}
		return nil
	}
	tensor.BytesToF32s(s.buf, dst)
	if on {
		// Pre-read stamp: concurrent writes only widen the apparent gap.
		c.Put(key, dst, stamp)
	}
	return nil
}

// GetBatch serves admissible keys from the hot tier, issues one batched
// read for the rest, then initializes and writes back the missing keys
// with one batched write — the first-touch protocol of the scalar path,
// paid once per step instead of once per key.
func (s *remoteSession) GetBatch(ctx context.Context, keys []uint64, dst []float32) error {
	dim := s.m.Dim()
	if len(dst) != len(keys)*dim {
		return fmt.Errorf("driver: dst length %d != %d keys × dim %d", len(dst), len(keys), dim)
	}
	vs := dim * 4
	c, bound, on := s.tier()
	fetch := keys
	var idx []int // position of fetch[j] in keys; nil = identity
	var stamp int64
	if on {
		stamp = s.m.clock.Load()
		s.cacheMiss = s.cacheMiss[:0]
		s.fetchKeys = s.fetchKeys[:0]
		for i, k := range keys {
			if c.Get(k, dst[i*dim:(i+1)*dim], stamp, bound) {
				continue
			}
			s.cacheMiss = append(s.cacheMiss, i)
			s.fetchKeys = append(s.fetchKeys, k)
		}
		if len(s.fetchKeys) == 0 {
			return nil
		}
		fetch, idx = s.fetchKeys, s.cacheMiss
	}
	n := len(fetch)
	s.bbuf = growSlice(s.bbuf, n*vs)
	s.found = growSlice(s.found, n)
	if err := s.s.GetBatchCtx(ctx, fetch, s.bbuf, s.found); err != nil {
		return err
	}
	s.missKeys = s.missKeys[:0]
	s.missVals = s.missVals[:0]
	for j, ok := range s.found {
		i := j
		if idx != nil {
			i = idx[j]
		}
		seg := dst[i*dim : (i+1)*dim]
		if ok {
			tensor.BytesToF32s(s.bbuf[j*vs:], seg)
		} else {
			// First touch. The tier fill below is safe even if the
			// write-back fails: the initializer is deterministic in key, so
			// any later read would materialize the same value.
			s.initInto(fetch[j], seg)
			s.missKeys = append(s.missKeys, fetch[j])
			nv := len(s.missVals)
			s.missVals = extendBytes(s.missVals, vs)
			tensor.F32sToBytes(seg, s.missVals[nv:])
		}
		if on {
			c.Put(keys[i], seg, stamp)
		}
	}
	if len(s.missKeys) == 0 {
		return nil
	}
	if err := s.s.PutBatchCtx(ctx, s.missKeys, s.missVals); err != nil {
		return err
	}
	if on {
		s.m.clock.Add(int64(len(s.missKeys)))
	}
	return nil
}

func (s *remoteSession) Put(ctx context.Context, key uint64, val []float32) error {
	if len(val) != s.m.Dim() {
		return fmt.Errorf("driver: val length %d != dim %d", len(val), s.m.Dim())
	}
	tensor.F32sToBytes(val, s.buf)
	if err := s.s.PutCtx(ctx, key, s.buf); err != nil {
		return err
	}
	if c := s.m.cache; c != nil {
		c.Put(key, val, s.m.clock.Add(1))
	}
	return nil
}

func (s *remoteSession) PutBatch(ctx context.Context, keys []uint64, vals []float32) error {
	dim := s.m.Dim()
	if len(vals) != len(keys)*dim {
		return fmt.Errorf("driver: vals length %d != %d keys × dim %d", len(vals), len(keys), dim)
	}
	vs := dim * 4
	s.bbuf = growSlice(s.bbuf, len(keys)*vs)
	tensor.F32sToBytes(vals, s.bbuf)
	if err := s.s.PutBatchCtx(ctx, keys, s.bbuf[:len(keys)*vs]); err != nil {
		return err
	}
	if c := s.m.cache; c != nil {
		clock := s.m.clock.Add(int64(len(keys)))
		for i, k := range keys {
			c.Put(k, vals[i*dim:(i+1)*dim], clock)
		}
	}
	return nil
}

// RMW emulates the storage-side read-modify-write over the wire: a
// clocked read (initializing on first touch), the gradient step applied
// client-side, and the balancing write. With a hot tier the read may be
// served from it — the step then applies to a value at most the staleness
// bound behind, which is exactly the guarantee bounded-staleness training
// grants — and the write refreshes the tier through Put.
func (s *remoteSession) RMW(ctx context.Context, key uint64, grad []float32, lr float32) error {
	dim := s.m.Dim()
	if len(grad) != dim {
		return fmt.Errorf("driver: grad length %d != dim %d", len(grad), dim)
	}
	// The composite is what a trainer waits on, so record its full span —
	// up to two round trips — into the pool's RMW class (the wire has no
	// RMW frame for the per-frame histograms to see).
	defer s.m.db.c.Latency().Since(latency.OpRMW, time.Now())
	s.rmw = growSlice(s.rmw, dim)
	cur := s.rmw
	if err := s.Get(ctx, key, cur); err != nil {
		return err
	}
	for i := range cur {
		cur[i] -= lr * grad[i]
	}
	return s.Put(ctx, key, cur)
}

func (s *remoteSession) Peek(ctx context.Context, key uint64, dst []float32) (bool, error) {
	if len(dst) != s.m.Dim() {
		return false, fmt.Errorf("driver: dst length %d != dim %d", len(dst), s.m.Dim())
	}
	found, err := s.s.PeekCtx(ctx, key, s.buf)
	if found {
		tensor.BytesToF32s(s.buf, dst)
	}
	return found, err
}

func (s *remoteSession) Delete(ctx context.Context, key uint64) error {
	if err := s.s.DeleteCtx(ctx, key); err != nil {
		return err
	}
	if c := s.m.cache; c != nil {
		s.m.clock.Add(1)
		c.Invalidate(key)
	}
	return nil
}

func (s *remoteSession) Lookahead(keys []uint64) error {
	if len(keys) > 0 {
		s.m.enqueueLookahead(keys)
	}
	return nil
}

func (s *remoteSession) Close() { s.s.Close() }

// growSlice resizes a reusable scratch slice to n elements without
// preserving contents (callers overwrite the whole slice).
func growSlice[T any](b []T, n int) []T {
	if cap(b) < n {
		return make([]T, n)
	}
	return b[:n]
}

// extendBytes grows b by n bytes in place, preserving its contents —
// the reusable replacement for appending a fresh zero slab per missing
// key: steady state extends within capacity and allocates nothing.
func extendBytes(b []byte, n int) []byte {
	want := len(b) + n
	if cap(b) >= want {
		return b[:want]
	}
	nb := make([]byte, want, 2*want)
	copy(nb, b)
	return nb
}

// DialKV opens the named model on a remote server as a byte-level
// kv.Store — the escape hatch for harnesses that work on raw values (the
// YCSB benchmark, the network sweep). Closing the returned store closes
// its connection pool.
func DialKV(addr, model string, dim, conns int) (kv.Store, error) {
	return DialKVHedged(addr, model, dim, conns, 0, false)
}

// DialKVHedged is DialKV with read hedging: hedge > 0 re-issues slow
// admissible reads after that fixed delay, adaptive derives the delay
// from the pool's observed tail instead (see ConnectOptions).
func DialKVHedged(addr, model string, dim, conns int, hedge time.Duration, adaptive bool) (kv.Store, error) {
	c, err := client.Dial(addr, client.Options{
		Conns: conns, HedgeDelay: hedge, HedgeAdaptive: adaptive,
	})
	if err != nil {
		return nil, err
	}
	m, err := c.OpenModel(context.Background(), client.OpenSpec{
		ID: model, Dim: dim, Bound: wire.BoundUnset,
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	return &dialedStore{Model: m, c: c}, nil
}

// dialedStore pairs a remote model with ownership of its pool.
type dialedStore struct {
	*client.Model
	c *client.Client
}

func (d *dialedStore) Close() error { return d.c.Close() }

// HedgeStats reports the pool's hedging counters (issued, won, wasted,
// suppressed) for harness summaries; all zero when hedging is off.
func (d *dialedStore) HedgeStats() (issued, won, wasted, suppressed int64) {
	hs := d.c.HedgeStats()
	return hs.Issued, hs.Won, hs.Wasted, hs.Suppressed
}
