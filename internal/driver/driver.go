// Package driver is the seam between mlkv's public API and the places an
// embedding model can live: a local disk directory (the in-process
// core.Table engine) or a remote mlkv-server (the internal/client pool
// speaking the wire protocol). The public mlkv package programs against
// the DB/Model/Session interfaces here, so application code is identical
// against either target — the paper's Open(model_id, dim, staleness_bound)
// served locally or as a shared storage service.
//
// Every operation is context-first: deadlines and cancellation are
// honored on staleness waits (local) and network round trips (remote).
// The public package supplies context.Background() for its convenience
// wrappers.
package driver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/latency"
)

// Scheme prefixes a remote target: "mlkv://host:port", or a comma-
// separated seed list "mlkv://host1,host2,host3" for a cluster. Anything
// else is a local directory.
const Scheme = "mlkv://"

// DefaultPort is assumed when a remote target's host omits its port.
const DefaultPort = "7070"

// IsRemote reports whether target names a remote mlkv-server.
func IsRemote(target string) bool { return strings.HasPrefix(target, Scheme) }

// ConnectOptions configures Connect for remote targets (local ones ignore
// it).
type ConnectOptions struct {
	// Conns is the connection-pool size (default 2). Size it to the
	// number of concurrently blocking sessions: under BSP or finite SSP a
	// blocked remote read must not queue behind the write that unblocks
	// it on a shared connection.
	Conns int
	// DialTimeout bounds each TCP connect (default 5s).
	DialTimeout time.Duration
	// HedgeDelay, when positive, re-issues admissible reads (GET/GETBATCH
	// on models whose staleness bound cannot block) as clock-free
	// duplicates on a second pooled connection when the first response is
	// slower than the delay; first response wins. Zero disables hedging
	// unless HedgeAdaptive.
	HedgeDelay time.Duration
	// HedgeAdaptive derives the hedge delay from the pool's own observed
	// tail (per-op-class p99, floored) instead of a fixed constant;
	// HedgeDelay then serves as the fallback until enough samples exist.
	HedgeAdaptive bool
	// ReadReplicas lets a cluster target route admissible reads to
	// replicas: ASP reads may hit any replica, SSP reads a replica whose
	// advertised lag passes the bound, BSP always the primary. Off, every
	// operation goes to owning primaries. Ignored by non-cluster targets.
	ReadReplicas bool
}

// Config carries one model's open parameters across the seam.
type Config struct {
	// Dim is the embedding dimension.
	Dim int
	// Engine selects the storage engine behind the model: "" lets the
	// target choose (locally the clocked hybrid log; remotely the server's
	// default), otherwise "mlkv"/"faster" (the hybrid log), "lsm", or
	// "bptree". The clock-free engines reject blocking staleness bounds.
	Engine string
	// Shards is the hash-partition count (0 = target default).
	Shards int
	// Bound is the staleness bound; applied only when BoundSet.
	Bound    int64
	BoundSet bool
	// MemoryBytes / ExpectedKeys / PrefetchWorkers size the local engine;
	// a remote server owns its own sizing and ignores them.
	MemoryBytes     int64
	ExpectedKeys    uint64
	PrefetchWorkers int
	// CacheEntries attaches a staleness-aware hot tier of this capacity in
	// front of the model's read path: above the local engine, or
	// client-side for a remote model. 0 disables it.
	CacheEntries int
	// FlushPace rate-limits the local hybrid log's background flusher: a
	// minimum gap between flush writes, smearing a burst of frozen pages
	// over time instead of saturating the device under foreground reads.
	// 0 flushes as fast as the device allows. Remote servers own their own
	// pacing (-flush-pace) and ignore it.
	FlushPace time.Duration
	// Init produces first-touch embeddings. The local engine runs it
	// inside storage; the remote driver runs it client-side on a miss and
	// writes the result back, so a given key initializes identically on
	// every worker (seed it deterministically).
	Init core.Initializer
}

// Stats is the driver-neutral counter snapshot behind mlkv.Stats.
type Stats struct {
	Gets, Puts, RMWs, Deletes       int64
	MemHits, DiskReads              int64
	InPlaceUpdates, RCUAppends      int64
	StalenessWaits                  int64
	PrefetchCopies, PrefetchDropped int64
	FlushedPages, BytesFlushed      int64
	// GroupCommits counts multi-page flush writes (adjacent frozen pages
	// merged into one write); FlushPaceStalls counts pacing sleeps the
	// flusher took between writes (Config.FlushPace / server -flush-pace).
	GroupCommits, FlushPaceStalls int64
	BatchGets, BatchPuts          int64
	LookaheadCalls                int64
	// Hedged-read counters (remote models with ConnectOptions hedging):
	// duplicates issued, duplicates that beat their primary, duplicates
	// the primary beat, and hedges the token bucket suppressed. The pool
	// is per-Connect, so they cover every model opened from this DB.
	HedgedReads, HedgeWins, HedgeWasted, HedgeSuppressed int64
	// Hot-tier counters (WithCache). For a remote model they merge the
	// client-side tier with the server's shared per-model tier.
	CacheHits, CacheMisses, CacheEvictions int64
	// Cluster topology counters (cluster targets; zero elsewhere):
	// node count and map epoch the router currently holds, NOT_OWNER
	// redirects it followed, and keys served by replicas instead of
	// primaries.
	ClusterNodes, ClusterEpoch, ClusterRedirects, ReplicaReads int64
	// Redial breaker counters (remote targets; zero for local): redial
	// attempts actually made against dead pooled connections, and checkout
	// attempts the jittered-backoff breaker refused fast instead of
	// re-dialing a host already known dead.
	DialRetries, DialBackoffs int64
	// Per-op-class latency summaries (nanoseconds). A local model reports
	// the core table's op timings; a remote model reports the connection
	// pool's round-trip timings — end to end, including queueing in the
	// pipelined demux — which is the tail a caller actually experiences.
	LatGet, LatGetBatch, LatPut, LatPutBatch, LatRMW latency.Snapshot
}

// DB is one target: a local data directory or a remote server.
type DB interface {
	// Open creates or looks up the named model.
	Open(ctx context.Context, id string, cfg Config) (Model, error)
	// Target echoes the Connect target string.
	Target() string
	// Close releases the target: open models for a local DB, the
	// connection pool for a remote one.
	Close() error
}

// Model is one named embedding model behind either driver.
type Model interface {
	ID() string
	Dim() int
	Shards() int
	// EngineName identifies the backing engine ("mlkv", "faster", "lsm",
	// "bptree", or "remote(<engine>)").
	EngineName() string
	StalenessBound() int64
	SetStalenessBound(ctx context.Context, b int64) error
	Checkpoint(ctx context.Context) error
	Stats(ctx context.Context) (Stats, error)
	ActiveSessions(ctx context.Context) (int64, error)
	NewSession(ctx context.Context) (Session, error)
	Close() error
}

// Session is one worker's handle. Not safe for concurrent use.
type Session interface {
	Get(ctx context.Context, key uint64, dst []float32) error
	GetBatch(ctx context.Context, keys []uint64, dst []float32) error
	Put(ctx context.Context, key uint64, val []float32) error
	PutBatch(ctx context.Context, keys []uint64, vals []float32) error
	RMW(ctx context.Context, key uint64, grad []float32, lr float32) error
	Peek(ctx context.Context, key uint64, dst []float32) (bool, error)
	Delete(ctx context.Context, key uint64) error
	// Lookahead is asynchronous on both drivers and never blocks; hints
	// beyond the queue capacity are dropped (and counted).
	Lookahead(keys []uint64) error
	Close()
}

// ParseTarget splits a remote target into dialable host:port addresses:
// "mlkv://host:port" yields one, "mlkv://a,b,c" one per seed. A host
// without a port takes DefaultPort; IPv6 hosts must be bracketed
// ("mlkv://[::1]:7070"). Empty targets and empty list entries are
// descriptive errors, not dial failures.
func ParseTarget(target string) ([]string, error) {
	if !IsRemote(target) {
		return nil, fmt.Errorf("driver: target %q is not remote (missing %q prefix)", target, Scheme)
	}
	raw := strings.TrimPrefix(target, Scheme)
	if strings.TrimSpace(raw) == "" {
		return nil, fmt.Errorf("driver: target %q names no server address", target)
	}
	parts := strings.Split(raw, ",")
	addrs := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("driver: target %q has an empty host entry", target)
		}
		addr, err := withDefaultPort(p)
		if err != nil {
			return nil, fmt.Errorf("driver: target %q: %w", target, err)
		}
		addrs = append(addrs, addr)
	}
	return addrs, nil
}

// withDefaultPort normalizes one host entry to host:port.
func withDefaultPort(hostport string) (string, error) {
	_, _, err := net.SplitHostPort(hostport)
	if err == nil {
		return hostport, nil
	}
	var ae *net.AddrError
	if !errors.As(err, &ae) || !strings.Contains(ae.Err, "missing port") {
		return "", err // e.g. an unbracketed IPv6 literal: "too many colons"
	}
	host := hostport
	if strings.HasPrefix(host, "[") && strings.HasSuffix(host, "]") {
		host = host[1 : len(host)-1]
	}
	if host == "" {
		return "", errors.New("empty host")
	}
	return net.JoinHostPort(host, DefaultPort), nil
}

// Connect opens a target. "mlkv://host[:port][,host...]" dials a server
// (or bootstraps a cluster router from the first reachable seed); anything
// else is a local directory (created on first Open).
func Connect(target string, opts ConnectOptions) (DB, error) {
	if target == "" {
		return nil, fmt.Errorf("driver: empty target")
	}
	if IsRemote(target) {
		addrs, err := ParseTarget(target)
		if err != nil {
			return nil, err
		}
		return connectRemote(target, addrs, opts)
	}
	return &localDB{dir: target, models: make(map[string]*localModel)}, nil
}
