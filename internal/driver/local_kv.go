package driver

import (
	"context"
	"fmt"
	"sync/atomic"

	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/tensor"
)

// kvBackend serves a local model from a lifted clock-free engine (LSM or
// B+tree) — the paper's "framework + conventional KV store" deployment
// behind the same public API as the hybrid log. The engines speak bytes,
// so the float32 codec and deterministic first-touch initialization run on
// this side of the seam, exactly like the remote driver and the training
// pipeline's KV adapter: a key reads identically no matter which engine
// materializes it.
type kvBackend struct {
	store    kv.Store // possibly a hot-tier wrapper over base
	base     kv.Store
	engine   string // canonical: kv.EngineLSM or kv.EngineBPTree
	dim      int
	init     core.Initializer
	sessions atomic.Int64
}

func openKVBackend(dir, engine string, cfg Config) (*kvBackend, error) {
	bound := int64(-1) // clock-free engines default to the bound off
	if cfg.BoundSet {
		bound = cfg.Bound // OpenEngine rejects blocking bounds
	}
	base, err := kv.OpenEngine(engine, kv.ShardedConfig{
		Dir:            dir,
		Shards:         cfg.Shards,
		ValueSize:      cfg.Dim * 4,
		MemoryBytes:    cfg.MemoryBytes,
		ExpectedKeys:   cfg.ExpectedKeys,
		StalenessBound: bound,
		FlushPace:      cfg.FlushPace, // honored by the hybrid log; clock-free engines ignore it
	}, engine)
	if err != nil {
		return nil, err
	}
	store := base
	if cfg.CacheEntries > 0 {
		store = kv.WrapCached(base, cfg.CacheEntries)
	}
	return &kvBackend{store: store, base: base, engine: engine, dim: cfg.Dim, init: cfg.Init}, nil
}

func (b *kvBackend) Dim() int { return b.dim }

func (b *kvBackend) Shards() int {
	if sh, ok := b.base.(kv.Sharded); ok {
		return sh.Shards()
	}
	return 1
}

func (b *kvBackend) EngineName() string { return b.engine }

// StalenessBound is always -1: these engines have no vector clock.
func (b *kvBackend) StalenessBound() int64 { return -1 }

func (b *kvBackend) SetStalenessBound(bound int64) error {
	if faster.BlockingBound(bound) {
		return fmt.Errorf("driver: engine %q has no vector clock and cannot honor blocking staleness bound %d", b.engine, bound)
	}
	return nil // ASP / disabled are what the engine already does
}

func (b *kvBackend) Checkpoint() error {
	if cp, ok := b.store.(kv.Checkpointer); ok {
		return cp.Checkpoint()
	}
	return fmt.Errorf("driver: engine %q cannot checkpoint", b.engine)
}

func (b *kvBackend) Stats() Stats {
	st := Stats{}
	if sr, ok := b.store.(kv.StatsReporter); ok {
		ss := sr.Stats()
		st.Gets, st.Puts, st.RMWs, st.Deletes = ss.Gets, ss.Puts, ss.RMWs, ss.Deletes
		st.MemHits, st.DiskReads = ss.MemHits, ss.DiskReads
		st.FlushedPages, st.BytesFlushed = ss.FlushedPages, ss.BytesFlushed
	}
	if bc, ok := b.base.(kv.BatchCallReporter); ok {
		st.BatchGets, st.BatchPuts = bc.BatchCalls()
	}
	if cr, ok := b.store.(kv.CacheStatsReporter); ok {
		cs := cr.CacheStats()
		st.CacheHits, st.CacheMisses, st.CacheEvictions = cs.Hits, cs.Misses, cs.Evictions
	}
	return st
}

func (b *kvBackend) ActiveSessions() int64 { return b.sessions.Load() }

func (b *kvBackend) NewSession() (Session, error) {
	s, err := b.store.NewSession()
	if err != nil {
		return nil, err
	}
	b.sessions.Add(1)
	return &kvSession{b: b, s: s, buf: make([]byte, b.dim*4)}, nil
}

func (b *kvBackend) Close() error { return b.store.Close() }

// kvSession adapts a byte-level kv.Session to the driver seam: float32
// conversion, first-touch initialization with write-back, and RMW as
// get+step+put (these engines have no native read-modify-write).
type kvSession struct {
	b   *kvBackend
	s   kv.Session
	buf []byte // one value, scalar-path staging

	// Batch-path scratch, grown on demand and reused across calls.
	bbuf     []byte
	found    []bool
	missKeys []uint64
	missVals []byte
	rmw      []float32
}

func (s *kvSession) initInto(key uint64, dst []float32) {
	if s.b.init != nil {
		s.b.init(key, dst)
		return
	}
	for i := range dst {
		dst[i] = 0
	}
}

func (s *kvSession) Get(ctx context.Context, key uint64, dst []float32) error {
	if len(dst) != s.b.dim {
		return fmt.Errorf("driver: dst length %d != dim %d", len(dst), s.b.dim)
	}
	found, err := kv.SessionGetCtx(ctx, s.s, key, s.buf)
	if err != nil {
		return err
	}
	if !found {
		// First touch: initialize deterministically and persist, so every
		// session (and every engine) materializes the same embedding.
		s.initInto(key, dst)
		tensor.F32sToBytes(dst, s.buf)
		return s.s.Put(key, s.buf)
	}
	tensor.BytesToF32s(s.buf, dst)
	return nil
}

// GetBatch issues one batched read, then initializes and writes back the
// missing keys with one batched write — the scalar first-touch protocol
// paid once per batch instead of once per key.
func (s *kvSession) GetBatch(ctx context.Context, keys []uint64, dst []float32) error {
	dim := s.b.dim
	if len(dst) != len(keys)*dim {
		return fmt.Errorf("driver: dst length %d != %d keys × dim %d", len(dst), len(keys), dim)
	}
	vs := dim * 4
	s.bbuf = growSlice(s.bbuf, len(keys)*vs)
	s.found = growSlice(s.found, len(keys))
	if err := kv.SessionGetBatchCtx(ctx, s.s, vs, keys, s.bbuf, s.found); err != nil {
		return err
	}
	s.missKeys = s.missKeys[:0]
	s.missVals = s.missVals[:0]
	for i, ok := range s.found {
		seg := dst[i*dim : (i+1)*dim]
		if ok {
			tensor.BytesToF32s(s.bbuf[i*vs:], seg)
			continue
		}
		s.initInto(keys[i], seg)
		s.missKeys = append(s.missKeys, keys[i])
		n := len(s.missVals)
		s.missVals = append(s.missVals, make([]byte, vs)...)
		tensor.F32sToBytes(seg, s.missVals[n:])
	}
	if len(s.missKeys) == 0 {
		return nil
	}
	return kv.SessionPutBatch(s.s, vs, s.missKeys, s.missVals)
}

func (s *kvSession) Put(ctx context.Context, key uint64, val []float32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(val) != s.b.dim {
		return fmt.Errorf("driver: val length %d != dim %d", len(val), s.b.dim)
	}
	tensor.F32sToBytes(val, s.buf)
	return s.s.Put(key, s.buf)
}

func (s *kvSession) PutBatch(ctx context.Context, keys []uint64, vals []float32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	dim := s.b.dim
	if len(vals) != len(keys)*dim {
		return fmt.Errorf("driver: vals length %d != %d keys × dim %d", len(vals), len(keys), dim)
	}
	vs := dim * 4
	s.bbuf = growSlice(s.bbuf, len(keys)*vs)
	tensor.F32sToBytes(vals, s.bbuf)
	return kv.SessionPutBatch(s.s, vs, keys, s.bbuf[:len(keys)*vs])
}

// RMW reads, steps, and writes back. Unlike the hybrid log's in-storage
// RMW this is not atomic across sessions; concurrent updaters of one key
// should batch their gradients the way the trainers do.
func (s *kvSession) RMW(ctx context.Context, key uint64, grad []float32, lr float32) error {
	dim := s.b.dim
	if len(grad) != dim {
		return fmt.Errorf("driver: grad length %d != dim %d", len(grad), dim)
	}
	s.rmw = growSlice(s.rmw, dim)
	if err := s.Get(ctx, key, s.rmw); err != nil {
		return err
	}
	for i := range s.rmw {
		s.rmw[i] -= lr * grad[i]
	}
	tensor.F32sToBytes(s.rmw, s.buf)
	return s.s.Put(key, s.buf)
}

// Peek reads without first-touch side effects; missing keys leave dst
// zeroed.
func (s *kvSession) Peek(ctx context.Context, key uint64, dst []float32) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if len(dst) != s.b.dim {
		return false, fmt.Errorf("driver: dst length %d != dim %d", len(dst), s.b.dim)
	}
	found, err := kv.SessionPeek(s.s, key, s.buf)
	if err != nil {
		return false, err
	}
	if !found {
		for i := range dst {
			dst[i] = 0
		}
		return false, nil
	}
	tensor.BytesToF32s(s.buf, dst)
	return true, nil
}

func (s *kvSession) Delete(ctx context.Context, key uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.s.Delete(key)
}

// Lookahead is best-effort: these engines have no prefetch pipeline, so
// the hint resolves synchronously (or not at all) and never blocks reads.
func (s *kvSession) Lookahead(keys []uint64) error {
	_, err := kv.SessionLookahead(s.s, keys)
	return err
}

func (s *kvSession) Close() {
	s.s.Close()
	s.b.sessions.Add(-1)
}
