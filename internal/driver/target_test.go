package driver

import (
	"reflect"
	"strings"
	"testing"
)

// TestParseTarget drives the full remote-target grammar: single host,
// default port, seed lists, bracketed IPv6, and the malformed shapes that
// must fail descriptively instead of surfacing as dial errors.
func TestParseTarget(t *testing.T) {
	cases := []struct {
		name    string
		target  string
		want    []string
		wantErr string // substring of the error; "" = success
	}{
		{name: "host and port", target: "mlkv://127.0.0.1:7070", want: []string{"127.0.0.1:7070"}},
		{name: "host only takes default port", target: "mlkv://db1", want: []string{"db1:" + DefaultPort}},
		{name: "hostname and port", target: "mlkv://db1.internal:9000", want: []string{"db1.internal:9000"}},
		{name: "multi host", target: "mlkv://a:1,b:2,c:3", want: []string{"a:1", "b:2", "c:3"}},
		{name: "multi host mixed ports", target: "mlkv://a,b:9000,c", want: []string{"a:" + DefaultPort, "b:9000", "c:" + DefaultPort}},
		{name: "spaces around entries", target: "mlkv://a:1, b:2 ,c:3", want: []string{"a:1", "b:2", "c:3"}},
		{name: "bracketed ipv6 with port", target: "mlkv://[::1]:7070", want: []string{"[::1]:7070"}},
		{name: "bracketed ipv6 default port", target: "mlkv://[::1]", want: []string{"[::1]:" + DefaultPort}},

		{name: "empty target", target: "mlkv://", wantErr: "names no server address"},
		{name: "whitespace target", target: "mlkv://  ", wantErr: "names no server address"},
		{name: "empty list entry", target: "mlkv://a:1,,b:2", wantErr: "empty host entry"},
		{name: "trailing comma", target: "mlkv://a:1,", wantErr: "empty host entry"},
		{name: "only commas", target: "mlkv://,,", wantErr: "empty host entry"},
		{name: "empty brackets", target: "mlkv://[]", wantErr: "empty host"},
		{name: "unbracketed ipv6", target: "mlkv://::1", wantErr: "too many colons"},
		{name: "not remote", target: "/data/mlkv", wantErr: "is not remote"},
		{name: "empty string", target: "", wantErr: "is not remote"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseTarget(tc.target)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("ParseTarget(%q) = %v, want error containing %q", tc.target, got, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("ParseTarget(%q) error = %q, want it to contain %q", tc.target, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseTarget(%q): %v", tc.target, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("ParseTarget(%q) = %v, want %v", tc.target, got, tc.want)
			}
		})
	}
}

// TestConnectEmptyHostError pins the Connect-level behavior the parse
// errors exist for: an empty host list is a descriptive error, not a dial
// panic or a cryptic transport failure.
func TestConnectEmptyHostError(t *testing.T) {
	for _, target := range []string{"mlkv://", "mlkv://a:1,,b:2"} {
		if _, err := Connect(target, ConnectOptions{}); err == nil {
			t.Fatalf("Connect(%q) succeeded, want descriptive parse error", target)
		} else if strings.Contains(err.Error(), "connection refused") {
			t.Fatalf("Connect(%q) surfaced a dial error (%v), want a parse error", target, err)
		}
	}
}
