package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Cluster-map persistence: each node saves its current map (and its own
// identity) under its data directory, so a full-cluster restart recovers
// topology from disk instead of requiring the original -cluster flags.
// The file is tiny and rewritten whole on every epoch change:
//
//	[8]  magic "MLKVMAP1"
//	[4]  CRC32-IEEE over everything after this field
//	[2]  self-id length (LE)  [n] self-id bytes
//	[..] EncodeMap payload (the wire codec — one format, one fuzzer)
//
// Writes go through a temp file + os.Rename, so a crash mid-write leaves
// either the old map or the new one, never a torn file; the CRC catches
// torn or bit-rotted content anyway and the loader refuses it with a
// clear error rather than booting from garbage. A persisted map is a
// *hint*, not truth: the boot path syncs with live peers afterward, so a
// stale epoch on disk is superseded by the first CLUSTERSYNC exchange.

// mapFileName is the persisted map's name under the node's data dir.
const mapFileName = "cluster-map"

// mapMagic identifies (and versions) the persisted-map format.
var mapMagic = [8]byte{'M', 'L', 'K', 'V', 'M', 'A', 'P', '1'}

// ErrNoSavedMap reports that the data dir holds no persisted cluster map
// (a fresh node, or a pre-failover data dir) — distinct from a corrupt
// one, which is an error the operator should see.
var ErrNoSavedMap = errors.New("cluster: no saved map")

// SaveMap atomically persists m and this node's identity under dir.
func SaveMap(dir, self string, m *Map) error {
	if len(self) == 0 || len(self) > MaxNodeID {
		return fmt.Errorf("cluster: save map: bad self id %q", self)
	}
	enc := EncodeMap(m)
	buf := make([]byte, 0, len(mapMagic)+4+2+len(self)+len(enc))
	buf = append(buf, mapMagic[:]...)
	buf = append(buf, 0, 0, 0, 0) // CRC placeholder
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(self)))
	buf = append(buf, self...)
	buf = append(buf, enc...)
	binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(buf[12:]))

	path := filepath.Join(dir, mapFileName)
	tmp, err := os.CreateTemp(dir, mapFileName+".tmp*")
	if err != nil {
		return fmt.Errorf("cluster: save map: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: save map: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: save map: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cluster: save map: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cluster: save map: %w", err)
	}
	return nil
}

// LoadMap reads the map persisted under dir, returning the saved node
// identity and the validated map. A missing file returns ErrNoSavedMap; a
// torn, truncated, or corrupt file returns a descriptive error — the
// caller should surface it, not silently boot unclustered.
func LoadMap(dir string) (self string, m *Map, err error) {
	buf, err := os.ReadFile(filepath.Join(dir, mapFileName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return "", nil, ErrNoSavedMap
		}
		return "", nil, fmt.Errorf("cluster: load map: %w", err)
	}
	if len(buf) < len(mapMagic)+4+2 {
		return "", nil, fmt.Errorf("cluster: load map: file truncated (%d bytes)", len(buf))
	}
	if [8]byte(buf[:8]) != mapMagic {
		return "", nil, fmt.Errorf("cluster: load map: bad magic %q", buf[:8])
	}
	if got, want := crc32.ChecksumIEEE(buf[12:]), binary.LittleEndian.Uint32(buf[8:]); got != want {
		return "", nil, fmt.Errorf("cluster: load map: checksum mismatch (file %#x, computed %#x)", want, got)
	}
	rest := buf[12:]
	idLen := int(binary.LittleEndian.Uint16(rest))
	rest = rest[2:]
	if idLen == 0 || idLen > MaxNodeID || idLen > len(rest) {
		return "", nil, fmt.Errorf("cluster: load map: bad self-id length %d", idLen)
	}
	self = string(rest[:idLen])
	m, err = DecodeMap(rest[idLen:])
	if err != nil {
		return "", nil, fmt.Errorf("cluster: load map: %w", err)
	}
	if m.Node(self) == nil {
		return "", nil, fmt.Errorf("cluster: load map: saved map has no node %q", self)
	}
	return self, m, nil
}
