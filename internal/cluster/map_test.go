package cluster

import (
	"math"
	"strings"
	"testing"
)

// twoPrimaries builds a valid two-primary map by hand: n0 owns the lower
// half of the ring, n1 the upper.
func twoPrimaries() *Map {
	return &Map{Epoch: 1, Nodes: []Node{
		{ID: "n0", Addr: "a:1", Role: RolePrimary, Ranges: []Range{{Start: 0, End: math.MaxUint64 / 2}}},
		{ID: "n1", Addr: "b:1", Role: RolePrimary, Ranges: []Range{{Start: math.MaxUint64/2 + 1, End: math.MaxUint64}}},
	}}
}

// TestValidateRingCoverage pins the partition check: Validate must reject
// any map whose primary ranges do not exactly cover [0, 2^64) — a gappy
// map makes keys permanently unroutable, an overlapping one makes
// ownership ambiguous — while accepting exact partitions regardless of
// which primary holds which piece.
func TestValidateRingCoverage(t *testing.T) {
	if err := twoPrimaries().Validate(); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(m *Map)
		want   string
	}{
		{"gap in the middle", func(m *Map) {
			m.Nodes[1].Ranges[0].Start += 2
		}, "gap"},
		{"gap at ring start", func(m *Map) {
			m.Nodes[0].Ranges[0].Start = 1
		}, "ring start"},
		{"gap at ring end", func(m *Map) {
			m.Nodes[1].Ranges[0].End--
		}, "gap"},
		{"overlap", func(m *Map) {
			m.Nodes[1].Ranges[0].Start--
		}, "overlap"},
		{"inverted range", func(m *Map) {
			r := &m.Nodes[0].Ranges[0]
			r.Start, r.End = r.End, r.Start
		}, "inverted"},
		{"primary without ranges", func(m *Map) {
			m.Nodes[0].Ranges = nil
			m.Nodes[1].Ranges = nil
		}, "ring start"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := twoPrimaries()
			tc.mutate(m)
			err := m.Validate()
			if err == nil {
				t.Fatalf("Validate accepted a map that does not partition the ring")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestBuildMapPartitions pins that BuildMap's deterministic range
// assignment always passes the (stricter) partition validation, for any
// primary count and with replicas mixed in.
func TestBuildMapPartitions(t *testing.T) {
	for _, primaries := range []int{1, 2, 3, 5, 7} {
		nodes := make([]Node, 0, primaries+1)
		for i := 0; i < primaries; i++ {
			nodes = append(nodes, Node{ID: string(rune('a' + i)), Addr: "x:1", Role: RolePrimary})
		}
		nodes = append(nodes, Node{ID: "z-rep", Addr: "y:1", Role: RoleReplica, PrimaryID: "a"})
		m, err := BuildMap(nodes)
		if err != nil {
			t.Fatalf("%d primaries: %v", primaries, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%d primaries: built map fails validation: %v", primaries, err)
		}
		// Spot-check totality directly: a spread of slots all resolve.
		for slot := uint64(0); ; slot += math.MaxUint64 / 17 {
			if m.OwnerOfSlot(slot) == nil {
				t.Fatalf("%d primaries: slot %#x has no owner", primaries, slot)
			}
			if slot > math.MaxUint64-math.MaxUint64/17 {
				break
			}
		}
		if m.OwnerOfSlot(math.MaxUint64) == nil {
			t.Fatalf("%d primaries: last slot has no owner", primaries)
		}
	}
}
