package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// State is one server node's view of the cluster: its identity, the
// current Map, and (on primaries) the replication fan-out to its replicas.
// The server consults it on every data frame — ownership checks sit on the
// hot path, so the current map hangs off an atomic pointer and the encoded
// form is cached per epoch for NOT_OWNER/CLUSTERMAP responses.
type State struct {
	self string
	cur  atomic.Pointer[Map]

	mu       sync.Mutex // serializes Join/Adopt and the encoded cache
	encEpoch uint64
	enc      []byte

	// persistDir, when set, receives an atomic SaveMap after every map
	// install so a full-cluster restart recovers topology from disk.
	persistDir string

	repl atomic.Pointer[Replicator]
	det  atomic.Pointer[detector]
}

// NewState builds a node's state from its id and an initial map, which
// must contain the node itself.
func NewState(self string, m *Map) (*State, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.Node(self) == nil {
		return nil, fmt.Errorf("cluster: initial map has no node %q", self)
	}
	st := &State{self: self}
	st.cur.Store(m.Clone())
	return st, nil
}

// Self returns this node's id.
func (st *State) Self() string { return st.self }

// Map returns the current topology. Callers must treat it as immutable.
func (st *State) Map() *Map { return st.cur.Load() }

// Encoded returns the current map's wire encoding, cached per epoch.
// Callers must not retain or mutate the slice across epochs (the server
// writes it into a response frame before handling the next request).
func (st *State) Encoded() []byte {
	m := st.Map()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.enc == nil || st.encEpoch != m.Epoch {
		st.enc = EncodeMap(m)
		st.encEpoch = m.Epoch
	}
	return st.enc
}

// Adopt installs m if its epoch is newer than the current one, reporting
// whether it was installed. Replication targets refresh on adoption.
func (st *State) Adopt(m *Map) bool {
	if err := m.Validate(); err != nil {
		return false
	}
	st.mu.Lock()
	if m.Epoch <= st.cur.Load().Epoch {
		st.mu.Unlock()
		return false
	}
	st.cur.Store(m.Clone())
	st.mu.Unlock()
	st.mapInstalled()
	return true
}

// mapInstalled runs the after-install hooks shared by Adopt and Join:
// replication streams and health probes reconcile with the new
// membership, and the map is persisted if persistence is enabled.
func (st *State) mapInstalled() {
	if r := st.repl.Load(); r != nil {
		r.refresh()
	}
	if d := st.det.Load(); d != nil {
		d.refresh()
	}
	st.persist()
}

// Join merges a new (or re-announcing) node into the membership, bumping
// the epoch, and returns the new map for the joiner to gossip onward.
func (st *State) Join(n Node) (*Map, error) {
	st.mu.Lock()
	merged, err := st.cur.Load().WithNode(n)
	if err != nil {
		st.mu.Unlock()
		return nil, err
	}
	st.cur.Store(merged)
	st.mu.Unlock()
	st.mapInstalled()
	return merged, nil
}

// HandleJoin services a CLUSTERJOIN frame: decode the joining node's
// record, merge it, and return the merged map encoded (the joiner's
// bootstrap answer). This is the server.ClusterState face of Join.
func (st *State) HandleJoin(payload []byte) ([]byte, error) {
	n, err := DecodeNode(payload)
	if err != nil {
		return nil, err
	}
	merged, err := st.Join(n)
	if err != nil {
		return nil, err
	}
	return EncodeMap(merged), nil
}

// HandleSync services a CLUSTERSYNC frame: adopt the gossiped map if
// newer, answer with this node's current map either way — sync doubles as
// an epoch exchange. This is the server.ClusterState face of Adopt.
func (st *State) HandleSync(payload []byte) ([]byte, error) {
	m, err := DecodeMap(payload)
	if err != nil {
		return nil, err
	}
	st.Adopt(m)
	return st.Encoded(), nil
}

// HandlePing services a CLUSTERPING frame (server dispatch): the sender's
// health record is absorbed, this node's is returned. Refused when no
// detector runs — the pinger reads the refusal itself as proof of life.
func (st *State) HandlePing(payload []byte) ([]byte, error) {
	d := st.det.Load()
	if d == nil {
		return nil, fmt.Errorf("cluster: health detector not running")
	}
	return d.handlePing(payload)
}

// HandleLeave services a CLUSTERLEAVE frame (server dispatch): the named
// node is marked confirmed-dead immediately, skipping the suspicion
// timeout. Without a detector the announcement is validated and dropped —
// leave is advisory, a node that ignores it just detects the death slowly.
func (st *State) HandleLeave(payload []byte) ([]byte, error) {
	if d := st.det.Load(); d != nil {
		return nil, d.handleLeave(payload)
	}
	_, err := decodeLeave(payload)
	return nil, err
}

// StartHealth starts this node's failure detector (idempotent — the
// first configuration wins). With it running, the node heartbeats every
// peer, gossips suspicion, confirms deaths by quorum, and — when it is
// the most-caught-up replica of a confirmed-dead primary — promotes
// itself and gossips the new map.
func (st *State) StartHealth(cfg HealthConfig) {
	d := newDetector(st, cfg)
	if st.det.CompareAndSwap(nil, d) {
		d.start()
	}
}

// HealthStats reports detector decisions: deaths confirmed and
// self-promotions performed.
func (st *State) HealthStats() (confirmedDeaths, promotions int64) {
	if d := st.det.Load(); d != nil {
		return d.confirmedDeaths.Load(), d.promotions.Load()
	}
	return 0, 0
}

// EnablePersistence saves the current map under dir now and after every
// future map install, so a restart can recover topology with LoadMap
// instead of -cluster flags. The initial save's error is returned;
// subsequent saves are best effort (the boot path re-syncs with live
// peers anyway, so a missed save costs staleness, not correctness).
func (st *State) EnablePersistence(dir string) error {
	st.mu.Lock()
	st.persistDir = dir
	st.mu.Unlock()
	return SaveMap(dir, st.self, st.Map())
}

// persist best-effort-saves the current map if persistence is enabled.
func (st *State) persist() {
	st.mu.Lock()
	dir := st.persistDir
	st.mu.Unlock()
	if dir != "" {
		_ = SaveMap(dir, st.self, st.Map())
	}
}

// ranges returns the slot ranges this node serves reads for: its own when
// primary, its primary's when replica.
func (st *State) readRanges(m *Map) []Range {
	n := m.Node(st.self)
	if n == nil {
		return nil
	}
	if n.Role == RoleReplica {
		if p := m.Node(n.PrimaryID); p != nil {
			return p.Ranges
		}
		return nil
	}
	return n.Ranges
}

// ReadOwned reports whether this node may serve reads for key: primaries
// for their own ranges, replicas for their primary's.
func (st *State) ReadOwned(key uint64) bool {
	slot := Slot(key)
	for _, r := range st.readRanges(st.Map()) {
		if r.Contains(slot) {
			return true
		}
	}
	return false
}

// WriteOwned reports whether this node accepts client writes for key:
// only the owning primary does (replicas take writes solely over the
// replication stream, which bypasses this check).
func (st *State) WriteOwned(key uint64) bool {
	m := st.Map()
	n := m.Node(st.self)
	if n == nil || n.Role != RolePrimary {
		return false
	}
	slot := Slot(key)
	for _, r := range n.Ranges {
		if r.Contains(slot) {
			return true
		}
	}
	return false
}

// EnableReplication starts the primary→replica write stream for this
// node. Harmless on nodes without replicas — the replicator idles until
// the map names some.
func (st *State) EnableReplication() {
	st.repl.CompareAndSwap(nil, newReplicator(st))
	if r := st.repl.Load(); r != nil {
		r.refresh()
	}
}

// Replicate forwards a committed write to this node's replicas, if
// replication is enabled and the map names any. keys and vals are copied —
// the server reuses its frame buffers.
func (st *State) Replicate(model string, dim int, kind byte, keys []uint64, vals []byte) {
	if r := st.repl.Load(); r != nil {
		r.replicate(model, dim, kind, keys, vals)
	}
}

// ReplicationDropped counts write records lost to a replica for good:
// evicted from the replay ring before a sender could deliver them, or
// refused by the replica. The replica sees the sequence gap and pins its
// advertised lag at the last contiguously applied sequence, so it stays
// out of SSP rotation rather than serving values staler than the bound.
func (st *State) ReplicationDropped() int64 {
	if r := st.repl.Load(); r != nil {
		return r.dropped.Load()
	}
	return 0
}

// Close stops the replication streams and the failure detector.
func (st *State) Close() {
	if d := st.det.Load(); d != nil {
		d.close()
	}
	if r := st.repl.Load(); r != nil {
		r.close()
	}
}
