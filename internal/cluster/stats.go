package cluster

import (
	"github.com/llm-db/mlkv-go/internal/latency"
	"github.com/llm-db/mlkv-go/internal/wire"
)

// wireStats aliases the STATS payload struct so router signatures stay
// readable.
type wireStats = wire.ModelStats

// addStats folds one node's counters into the merged view: scalars sum,
// latency summaries fold (counts/sums add, max and percentiles take the
// worst node — merged percentiles without raw histograms would be a
// guess), and ReplicaLag keeps the laggiest replica.
func addStats(dst *wireStats, s wireStats) {
	dst.Gets += s.Gets
	dst.Puts += s.Puts
	dst.RMWs += s.RMWs
	dst.Deletes += s.Deletes
	dst.MemHits += s.MemHits
	dst.DiskReads += s.DiskReads
	dst.InPlaceUpdates += s.InPlaceUpdates
	dst.RCUAppends += s.RCUAppends
	dst.PrefetchCopies += s.PrefetchCopies
	dst.AbandonedAppends += s.AbandonedAppends
	dst.StalenessWaits += s.StalenessWaits
	dst.FlushedPages += s.FlushedPages
	dst.BytesFlushed += s.BytesFlushed
	dst.GroupCommits += s.GroupCommits
	dst.FlushPaceStalls += s.FlushPaceStalls
	dst.BatchGets += s.BatchGets
	dst.BatchPuts += s.BatchPuts
	dst.LookaheadFrames += s.LookaheadFrames
	dst.ActiveSessions += s.ActiveSessions
	dst.CacheHits += s.CacheHits
	dst.CacheMisses += s.CacheMisses
	dst.CacheEvictions += s.CacheEvictions
	foldLat(&dst.LatGet, &s.LatGet)
	foldLat(&dst.LatGetBatch, &s.LatGetBatch)
	foldLat(&dst.LatPut, &s.LatPut)
	foldLat(&dst.LatPutBatch, &s.LatPutBatch)
	foldLat(&dst.LatRMW, &s.LatRMW)
	if s.ReplicaLag > dst.ReplicaLag {
		dst.ReplicaLag = s.ReplicaLag
	}
}

func foldLat(dst *latency.Snapshot, s *latency.Snapshot) {
	dst.Count += s.Count
	dst.Sum += s.Sum
	for _, p := range []struct{ d, s *int64 }{
		{&dst.Max, &s.Max}, {&dst.P50, &s.P50}, {&dst.P90, &s.P90},
		{&dst.P99, &s.P99}, {&dst.P999, &s.P999},
	} {
		if *p.s > *p.d {
			*p.d = *p.s
		}
	}
}
