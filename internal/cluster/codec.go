package cluster

import (
	"encoding/binary"
	"fmt"

	"github.com/llm-db/mlkv-go/internal/wire"
)

// Map wire encoding, carried by CLUSTERMAP/CLUSTERJOIN/CLUSTERSYNC
// responses and NOT_OWNER redirects:
//
//	uint64  epoch
//	uint32  node count
//	per node:
//	  uint32  record length (bytes that follow for this node)
//	  uint8   role
//	  uint16  id length      | id bytes
//	  uint16  addr length    | addr bytes
//	  uint16  primary length | primary id bytes
//	  uint32  range count    | count × (uint64 start | uint64 end)
//	  [unknown trailing bytes — skipped]
//
// All integers little-endian, matching the rest of the wire package. The
// per-node record length is the forward-compat seam: a future field
// appended inside a record is skipped by old decoders, the same way the
// STATS field count lets both sides read the prefix they understand.
// Decoders check every length exactly against the record envelope and
// reject anything over the topology caps before allocating.

const mapHeaderSize = 12 // epoch + node count

// EncodeNode serializes one node as a length-prefixed record — the
// CLUSTERJOIN request payload (a joining node is not a valid map on its
// own: a joining replica has no primary beside it).
func EncodeNode(n Node) []byte {
	recLen := 1 + 2 + len(n.ID) + 2 + len(n.Addr) + 2 + len(n.PrimaryID) + 4 + 16*len(n.Ranges)
	p := make([]byte, 0, 4+recLen)
	return appendNode(p, &n)
}

// DecodeNode parses one length-prefixed node record, checking only
// per-node invariants (map-level validation happens after the merge).
func DecodeNode(p []byte) (Node, error) {
	n, rest, err := decodeNode(p, 0)
	if err != nil {
		return Node{}, err
	}
	if len(rest) != 0 {
		return Node{}, fmt.Errorf("%w: cluster node record carries %d trailing bytes", wire.ErrShortPayload, len(rest))
	}
	if n.ID == "" || len(n.ID) > MaxNodeID {
		return Node{}, fmt.Errorf("cluster: bad node id %q", n.ID)
	}
	if n.Addr == "" {
		return Node{}, fmt.Errorf("cluster: node %q has no address", n.ID)
	}
	if n.Role != RolePrimary && n.Role != RoleReplica {
		return Node{}, fmt.Errorf("cluster: node %q has unknown role %d", n.ID, n.Role)
	}
	return n, nil
}

// appendNode appends one node's length-prefixed record.
func appendNode(p []byte, n *Node) []byte {
	recLen := 1 + 2 + len(n.ID) + 2 + len(n.Addr) + 2 + len(n.PrimaryID) + 4 + 16*len(n.Ranges)
	p = binary.LittleEndian.AppendUint32(p, uint32(recLen))
	p = append(p, byte(n.Role))
	p = binary.LittleEndian.AppendUint16(p, uint16(len(n.ID)))
	p = append(p, n.ID...)
	p = binary.LittleEndian.AppendUint16(p, uint16(len(n.Addr)))
	p = append(p, n.Addr...)
	p = binary.LittleEndian.AppendUint16(p, uint16(len(n.PrimaryID)))
	p = append(p, n.PrimaryID...)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(n.Ranges)))
	for _, r := range n.Ranges {
		p = binary.LittleEndian.AppendUint64(p, r.Start)
		p = binary.LittleEndian.AppendUint64(p, r.End)
	}
	return p
}

// decodeNode parses one length-prefixed node record from rest, returning
// the node and the remainder. i labels the node in errors.
func decodeNode(rest []byte, i int) (Node, []byte, error) {
	if len(rest) < 4 {
		return Node{}, nil, fmt.Errorf("%w: cluster node %d record length wants 4 bytes, got %d", wire.ErrShortPayload, i, len(rest))
	}
	recLen := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if recLen > len(rest) {
		return Node{}, nil, fmt.Errorf("%w: cluster node %d record wants %d bytes, got %d", wire.ErrShortPayload, i, recLen, len(rest))
	}
	rec := rest[:recLen]
	rest = rest[recLen:]

	if len(rec) < 1 {
		return Node{}, nil, fmt.Errorf("%w: cluster node %d record is empty", wire.ErrShortPayload, i)
	}
	n := Node{Role: Role(rec[0])}
	rec = rec[1:]
	var err error
	if n.ID, rec, err = decodeString(rec, "id", MaxNodeID); err != nil {
		return Node{}, nil, err
	}
	if n.Addr, rec, err = decodeString(rec, "address", MaxNodeAddr); err != nil {
		return Node{}, nil, err
	}
	if n.PrimaryID, rec, err = decodeString(rec, "primary id", MaxNodeID); err != nil {
		return Node{}, nil, err
	}
	if len(rec) < 4 {
		return Node{}, nil, fmt.Errorf("%w: cluster node %q range count wants 4 bytes, got %d", wire.ErrShortPayload, n.ID, len(rec))
	}
	ranges := int(binary.LittleEndian.Uint32(rec))
	rec = rec[4:]
	if ranges > MaxRangesPerNode {
		return Node{}, nil, fmt.Errorf("cluster: node %q with %d ranges exceeds limit %d", n.ID, ranges, MaxRangesPerNode)
	}
	if len(rec) < 16*ranges {
		return Node{}, nil, fmt.Errorf("%w: cluster node %q wants %d range bytes, got %d", wire.ErrShortPayload, n.ID, 16*ranges, len(rec))
	}
	if ranges > 0 {
		n.Ranges = make([]Range, ranges)
		for j := range n.Ranges {
			n.Ranges[j].Start = binary.LittleEndian.Uint64(rec[16*j:])
			n.Ranges[j].End = binary.LittleEndian.Uint64(rec[16*j+8:])
		}
	}
	// Bytes past the ranges are fields from a newer encoder: skipped,
	// because the record envelope already told us where this node ends.
	return n, rest, nil
}

// EncodeMap serializes m.
func EncodeMap(m *Map) []byte {
	p := make([]byte, 0, mapHeaderSize+64*len(m.Nodes))
	p = binary.LittleEndian.AppendUint64(p, m.Epoch)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(m.Nodes)))
	for i := range m.Nodes {
		p = appendNode(p, &m.Nodes[i])
	}
	return p
}

// decodeString reads a uint16-length-prefixed string from rec, returning
// the remainder.
func decodeString(rec []byte, what string, max int) (string, []byte, error) {
	if len(rec) < 2 {
		return "", nil, fmt.Errorf("%w: cluster node %s length wants 2 bytes, got %d", wire.ErrShortPayload, what, len(rec))
	}
	n := int(binary.LittleEndian.Uint16(rec))
	if n > max {
		return "", nil, fmt.Errorf("cluster: node %s of %d bytes exceeds limit %d", what, n, max)
	}
	if len(rec) < 2+n {
		return "", nil, fmt.Errorf("%w: cluster node %s wants %d bytes, got %d", wire.ErrShortPayload, what, n, len(rec)-2)
	}
	return string(rec[2 : 2+n]), rec[2+n:], nil
}

// DecodeMap parses an encoded map and validates it.
func DecodeMap(p []byte) (*Map, error) {
	if len(p) < mapHeaderSize {
		return nil, fmt.Errorf("%w: cluster map wants >= %d bytes, got %d", wire.ErrShortPayload, mapHeaderSize, len(p))
	}
	m := &Map{Epoch: binary.LittleEndian.Uint64(p)}
	count := int(binary.LittleEndian.Uint32(p[8:]))
	if count > MaxNodes {
		return nil, fmt.Errorf("cluster: map of %d nodes exceeds limit %d", count, MaxNodes)
	}
	rest := p[mapHeaderSize:]
	m.Nodes = make([]Node, 0, count)
	for i := 0; i < count; i++ {
		n, r, err := decodeNode(rest, i)
		if err != nil {
			return nil, err
		}
		rest = r
		m.Nodes = append(m.Nodes, n)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: cluster map carries %d trailing bytes", wire.ErrShortPayload, len(rest))
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
