// Package cluster makes N mlkv-server processes one logical store. It has
// three faces:
//
//   - Map: the epoch-numbered topology every node and client shares — node
//     id → address → consistent-hash slot ranges → role. Primaries own
//     disjoint ranges of a 64-bit hash ring; replicas mirror one primary.
//   - State: the server side. Each node holds its current Map, answers
//     CLUSTERMAP/CLUSTERJOIN/CLUSTERSYNC frames, rejects data ops for keys
//     it does not own with a NOT_OWNER redirect carrying the map, and (on
//     primaries) streams writes to its replicas.
//   - Router: the client side. It lifts internal/core's shard fan-out one
//     level up — per-server key groups, parallel batch fan-out with the
//     blocking-bound serial gate — and routes reads by staleness bound:
//     ASP reads may hit any replica, BSP must hit the primary, SSP hits a
//     replica only when its advertised lag passes hotcache.Admissible.
//
// A client bootstraps from any seed node (CLUSTERMAP probe) and refreshes
// its cached map whenever a NOT_OWNER response attaches a newer epoch, so
// topology changes propagate without a coordination service.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"github.com/llm-db/mlkv-go/internal/util"
)

// Role is a node's place in the cluster.
type Role uint8

const (
	// RolePrimary owns hash ranges and accepts writes for them.
	RolePrimary Role = 1
	// RoleReplica mirrors one primary's ranges and serves bounded-staleness
	// reads for them; writes arrive only over the replication stream.
	RoleReplica Role = 2
)

// String names the role for diagnostics.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleReplica:
		return "replica"
	}
	return fmt.Sprintf("Role(%d)", uint8(r))
}

// Topology caps. They bound the encoded map (codec.go rejects anything
// larger) so a hostile or corrupt CLUSTERMAP payload cannot force a giant
// allocation.
const (
	// MaxNodes bounds cluster membership.
	MaxNodes = 64
	// MaxNodeID bounds a node id's byte length.
	MaxNodeID = 128
	// MaxNodeAddr bounds a node address's byte length.
	MaxNodeAddr = 256
	// MaxRangesPerNode bounds one node's slot-range list.
	MaxRangesPerNode = 256
)

// slotSalt folds keys onto the cluster hash ring. It is deliberately
// distinct from util.HashKey's and util.ShardOf's salts so cluster
// placement, intra-node shard placement, and index placement decorrelate:
// a key group landing on one node still spreads across that node's shards.
const slotSalt = 0xd6e8feb86659fd93

// Slot maps a key to its position on the 64-bit hash ring.
func Slot(key uint64) uint64 { return util.Mix64(key ^ slotSalt) }

// Range is one contiguous slot interval, inclusive on both ends.
type Range struct {
	Start uint64
	End   uint64
}

// Contains reports whether slot falls inside the range.
func (r Range) Contains(slot uint64) bool { return slot >= r.Start && slot <= r.End }

// Node is one cluster member.
type Node struct {
	// ID names the node; it is the stable identity (-cluster flag value).
	ID string
	// Addr is the host:port clients and peers dial.
	Addr string
	// Role says whether the node owns ranges or mirrors a primary.
	Role Role
	// PrimaryID names the primary a replica mirrors (empty on primaries).
	PrimaryID string
	// Ranges are the slot intervals a primary owns (empty on replicas —
	// a replica serves its primary's ranges, looked up through PrimaryID).
	Ranges []Range
}

// Map is the shared topology at one epoch. Nodes are sorted by ID and the
// primaries' ranges partition the full ring, so Owner is total: every key
// has exactly one owning primary.
type Map struct {
	// Epoch orders map versions; higher wins. Join bumps it.
	Epoch uint64
	// Nodes is the membership, sorted by ID.
	Nodes []Node
}

// Validate checks structural invariants: caps, sorted unique ids, at least
// one primary, replicas naming existing primaries, and — because Owner
// must be total — that the primaries' ranges exactly partition the full
// ring, with no gaps and no overlaps.
func (m *Map) Validate() error {
	if len(m.Nodes) == 0 {
		return fmt.Errorf("cluster: map has no nodes")
	}
	if len(m.Nodes) > MaxNodes {
		return fmt.Errorf("cluster: %d nodes exceeds limit %d", len(m.Nodes), MaxNodes)
	}
	primaries := map[string]bool{}
	for _, n := range m.Nodes {
		if n.ID == "" || len(n.ID) > MaxNodeID {
			return fmt.Errorf("cluster: bad node id %q", n.ID)
		}
		if n.Addr == "" || len(n.Addr) > MaxNodeAddr {
			return fmt.Errorf("cluster: node %q has bad address %q", n.ID, n.Addr)
		}
		if len(n.Ranges) > MaxRangesPerNode {
			return fmt.Errorf("cluster: node %q has %d ranges, limit %d", n.ID, len(n.Ranges), MaxRangesPerNode)
		}
		switch n.Role {
		case RolePrimary:
			primaries[n.ID] = true
		case RoleReplica:
			if n.PrimaryID == "" {
				return fmt.Errorf("cluster: replica %q names no primary", n.ID)
			}
		default:
			return fmt.Errorf("cluster: node %q has unknown role %d", n.ID, n.Role)
		}
	}
	for i := 1; i < len(m.Nodes); i++ {
		if m.Nodes[i-1].ID >= m.Nodes[i].ID {
			return fmt.Errorf("cluster: node ids not sorted/unique at %q", m.Nodes[i].ID)
		}
	}
	if len(primaries) == 0 {
		return fmt.Errorf("cluster: map has no primary")
	}
	for _, n := range m.Nodes {
		if n.Role == RoleReplica && !primaries[n.PrimaryID] {
			return fmt.Errorf("cluster: replica %q names unknown primary %q", n.ID, n.PrimaryID)
		}
	}
	// Owner is total only if the primaries' ranges partition the whole
	// ring: a structurally-plausible map from a peer with a gap would make
	// the gapped keys permanently unroutable, an overlap would make
	// ownership ambiguous.
	var ranges []Range
	for _, n := range m.Nodes {
		if n.Role != RolePrimary {
			continue
		}
		for _, r := range n.Ranges {
			if r.Start > r.End {
				return fmt.Errorf("cluster: node %q has inverted range [%#x, %#x]", n.ID, r.Start, r.End)
			}
			ranges = append(ranges, r)
		}
	}
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].Start < ranges[j].Start })
	if len(ranges) == 0 || ranges[0].Start != 0 {
		return fmt.Errorf("cluster: primary ranges do not cover the ring start")
	}
	for i := 1; i < len(ranges); i++ {
		prev, cur := ranges[i-1], ranges[i]
		if cur.Start <= prev.End {
			return fmt.Errorf("cluster: primary ranges overlap at slot %#x", cur.Start)
		}
		if cur.Start != prev.End+1 {
			return fmt.Errorf("cluster: ring gap between slots %#x and %#x", prev.End, cur.Start)
		}
	}
	if end := ranges[len(ranges)-1].End; end != math.MaxUint64 {
		return fmt.Errorf("cluster: ring gap after slot %#x", end)
	}
	return nil
}

// Node returns the member with the given id, or nil.
func (m *Map) Node(id string) *Node {
	i := sort.Search(len(m.Nodes), func(i int) bool { return m.Nodes[i].ID >= id })
	if i < len(m.Nodes) && m.Nodes[i].ID == id {
		return &m.Nodes[i]
	}
	return nil
}

// OwnerOfSlot returns the primary whose ranges contain slot. A valid map
// partitions the ring, so the only nil case is a malformed map.
func (m *Map) OwnerOfSlot(slot uint64) *Node {
	for i := range m.Nodes {
		n := &m.Nodes[i]
		if n.Role != RolePrimary {
			continue
		}
		for _, r := range n.Ranges {
			if r.Contains(slot) {
				return n
			}
		}
	}
	return nil
}

// Owner returns the primary owning key.
func (m *Map) Owner(key uint64) *Node { return m.OwnerOfSlot(Slot(key)) }

// ReplicasOf returns the replicas mirroring the named primary.
func (m *Map) ReplicasOf(primaryID string) []*Node {
	var out []*Node
	for i := range m.Nodes {
		if m.Nodes[i].Role == RoleReplica && m.Nodes[i].PrimaryID == primaryID {
			out = append(out, &m.Nodes[i])
		}
	}
	return out
}

// Primaries returns the range-owning nodes in ID order.
func (m *Map) Primaries() []*Node {
	var out []*Node
	for i := range m.Nodes {
		if m.Nodes[i].Role == RolePrimary {
			out = append(out, &m.Nodes[i])
		}
	}
	return out
}

// Clone deep-copies the map so adopters can hold it immutably.
func (m *Map) Clone() *Map {
	out := &Map{Epoch: m.Epoch, Nodes: make([]Node, len(m.Nodes))}
	copy(out.Nodes, m.Nodes)
	for i := range out.Nodes {
		out.Nodes[i].Ranges = append([]Range(nil), out.Nodes[i].Ranges...)
	}
	return out
}

// assignRanges deterministically splits the ring evenly across the
// primaries in ID order: every node that sees the same membership computes
// the same ownership without negotiation. The last primary absorbs the
// division remainder so the ranges cover the ring exactly.
func assignRanges(nodes []Node) {
	var primaries []*Node
	for i := range nodes {
		nodes[i].Ranges = nil
		if nodes[i].Role == RolePrimary {
			primaries = append(primaries, &nodes[i])
		}
	}
	p := uint64(len(primaries))
	if p == 0 {
		return
	}
	width := math.MaxUint64/p + 1 // ring size 2^64 split p ways, rounded up
	start := uint64(0)
	for i, n := range primaries {
		end := uint64(math.MaxUint64)
		if i < len(primaries)-1 {
			end = start + width - 1
		}
		n.Ranges = []Range{{Start: start, End: end}}
		start = end + 1
	}
}

// BuildMap constructs a validated epoch-1 map from a membership list,
// sorting nodes and assigning ranges.
func BuildMap(nodes []Node) (*Map, error) {
	m := &Map{Epoch: 1, Nodes: append([]Node(nil), nodes...)}
	sort.Slice(m.Nodes, func(i, j int) bool { return m.Nodes[i].ID < m.Nodes[j].ID })
	assignRanges(m.Nodes)
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Promote returns a new map in which promoteID (a replica of the
// confirmed-dead primary deadID) takes over the dead primary's ranges
// wholesale, with the epoch bumped. The receiver is unchanged.
//
// Unlike WithNode this must NOT rerun assignRanges: an even re-split
// would shuffle ownership across every surviving primary, invalidating
// data placement cluster-wide, when the only thing that changed is who
// serves the dead node's ranges. The ranges move as a block to the node
// that already holds a replicated copy of them.
//
// The dead node stays in the map, demoted to a replica of its successor:
// when it rejoins (process restart, partition heal) it adopts the newer
// epoch, finds itself a non-owner, refuses client writes, and receives
// catch-up writes over the new primary's replication stream — demotion is
// the map's default, not a separate protocol step, so a stale primary
// cannot split-brain the range. Other replicas of the dead primary are
// re-pointed at the successor.
func (m *Map) Promote(deadID, promoteID string) (*Map, error) {
	out := m.Clone()
	out.Epoch = m.Epoch + 1
	dead := out.Node(deadID)
	promoted := out.Node(promoteID)
	if dead == nil || promoted == nil {
		return nil, fmt.Errorf("cluster: promote %q over %q: node not in map", promoteID, deadID)
	}
	if dead.Role != RolePrimary {
		return nil, fmt.Errorf("cluster: cannot promote over %q: not a primary", deadID)
	}
	if promoted.Role != RoleReplica || promoted.PrimaryID != deadID {
		return nil, fmt.Errorf("cluster: %q is not a replica of %q", promoteID, deadID)
	}
	promoted.Role = RolePrimary
	promoted.PrimaryID = ""
	promoted.Ranges = append([]Range(nil), dead.Ranges...)
	dead.Role = RoleReplica
	dead.PrimaryID = promoteID
	dead.Ranges = nil
	for i := range out.Nodes {
		n := &out.Nodes[i]
		if n.Role == RoleReplica && n.PrimaryID == deadID && n.ID != deadID {
			n.PrimaryID = promoteID
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// WithNode returns a new map with n added (or replaced, matching by ID),
// ranges reassigned, and the epoch bumped. The receiver is unchanged.
func (m *Map) WithNode(n Node) (*Map, error) {
	out := m.Clone()
	out.Epoch = m.Epoch + 1
	if old := out.Node(n.ID); old != nil {
		*old = n
	} else {
		out.Nodes = append(out.Nodes, n)
		sort.Slice(out.Nodes, func(i, j int) bool { return out.Nodes[i].ID < out.Nodes[j].ID })
	}
	assignRanges(out.Nodes)
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
