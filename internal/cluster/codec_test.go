package cluster

import (
	"encoding/binary"
	"math"
	"reflect"
	"strings"
	"testing"
)

// testMap builds the canonical three-primaries-plus-replica topology the
// suite round-trips.
func testMap(t *testing.T) *Map {
	t.Helper()
	m, err := BuildMap([]Node{
		{ID: "a", Addr: "127.0.0.1:7070", Role: RolePrimary},
		{ID: "b", Addr: "127.0.0.1:7071", Role: RolePrimary},
		{ID: "c", Addr: "127.0.0.1:7072", Role: RolePrimary},
		{ID: "r1", Addr: "127.0.0.1:7073", Role: RoleReplica, PrimaryID: "a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMapRoundTrip(t *testing.T) {
	m := testMap(t)
	m.Epoch = 42
	got, err := DecodeMap(EncodeMap(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

// TestMapTruncation decodes every strict prefix of a valid encoding: all
// must error (the codec checks each length before reading), none may
// panic or succeed.
func TestMapTruncation(t *testing.T) {
	enc := EncodeMap(testMap(t))
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeMap(enc[:i]); err == nil {
			t.Fatalf("DecodeMap accepted a %d/%d-byte prefix", i, len(enc))
		}
	}
}

func TestMapTrailingBytesRejected(t *testing.T) {
	enc := append(EncodeMap(testMap(t)), 0xEE)
	if _, err := DecodeMap(enc); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("DecodeMap(enc+junk) = %v, want trailing-bytes error", err)
	}
}

// TestMapOversizeRejected corrupts each length field past its topology cap
// and expects a refusal before any giant allocation.
func TestMapOversizeRejected(t *testing.T) {
	base := EncodeMap(testMap(t))
	mutate := func(f func(p []byte)) []byte {
		p := append([]byte(nil), base...)
		f(p)
		return p
	}
	cases := []struct {
		name string
		p    []byte
		want string
	}{
		{"node count over cap", mutate(func(p []byte) {
			binary.LittleEndian.PutUint32(p[8:], MaxNodes+1)
		}), "exceeds limit"},
		{"id length over cap", mutate(func(p []byte) {
			// First node record: recLen at 12, role at 16, id len at 17.
			binary.LittleEndian.PutUint16(p[17:], MaxNodeID+1)
		}), "exceeds limit"},
		{"range count over cap", mutate(func(p []byte) {
			// Node "a": role(1) + idlen(2)+1 + addrlen(2)+14 + prilen(2)+0,
			// so the range count sits 22 bytes into the record.
			binary.LittleEndian.PutUint32(p[12+4+22:], MaxRangesPerNode+1)
		}), "exceeds limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeMap(tc.p); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("DecodeMap = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestMapUnknownFieldForwardCompat appends bytes a future encoder might
// add inside a node record (bumping its envelope length): today's decoder
// must skip them and still produce the same map.
func TestMapUnknownFieldForwardCompat(t *testing.T) {
	m := testMap(t)
	enc := EncodeMap(m)
	// Splice 4 unknown bytes at the end of the first node's record and
	// grow its recLen envelope to cover them.
	recLen := binary.LittleEndian.Uint32(enc[12:])
	recEnd := 12 + 4 + int(recLen)
	grown := append([]byte(nil), enc[:recEnd]...)
	grown = append(grown, 0xDE, 0xAD, 0xBE, 0xEF)
	grown = append(grown, enc[recEnd:]...)
	binary.LittleEndian.PutUint32(grown[12:], recLen+4)
	got, err := DecodeMap(grown)
	if err != nil {
		t.Fatalf("decode with unknown trailing field: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("unknown-field decode mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestNodeRoundTripAndValidation(t *testing.T) {
	n := Node{ID: "r9", Addr: "10.0.0.9:7070", Role: RoleReplica, PrimaryID: "a"}
	got, err := DecodeNode(EncodeNode(n))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, n) {
		t.Fatalf("node round trip: got %+v want %+v", got, n)
	}
	for _, bad := range []Node{
		{ID: "", Addr: "x:1", Role: RolePrimary},
		{ID: "a", Addr: "", Role: RolePrimary},
		{ID: "a", Addr: "x:1", Role: Role(9)},
	} {
		if _, err := DecodeNode(EncodeNode(bad)); err == nil {
			t.Fatalf("DecodeNode accepted invalid node %+v", bad)
		}
	}
	enc := append(EncodeNode(n), 0x01)
	if _, err := DecodeNode(enc); err == nil {
		t.Fatal("DecodeNode accepted trailing bytes")
	}
}

// TestOwnershipPartitionsRing checks the routing invariant everything
// rests on: every slot — boundaries included — has exactly one owning
// primary, and replicas own nothing directly.
func TestOwnershipPartitionsRing(t *testing.T) {
	m := testMap(t)
	slots := []uint64{0, 1, math.MaxUint64, math.MaxUint64 - 1}
	for _, p := range m.Primaries() {
		for _, r := range p.Ranges {
			slots = append(slots, r.Start, r.End)
			if r.End < math.MaxUint64 {
				slots = append(slots, r.End+1)
			}
		}
	}
	for _, slot := range slots {
		owners := 0
		for _, p := range m.Primaries() {
			for _, r := range p.Ranges {
				if r.Contains(slot) {
					owners++
				}
			}
		}
		if owners != 1 {
			t.Fatalf("slot %#x has %d owners, want exactly 1", slot, owners)
		}
	}
	for key := uint64(0); key < 4096; key++ {
		if m.Owner(key) == nil {
			t.Fatalf("key %d has no owner", key)
		}
	}
	if rep := m.Node("r1"); len(rep.Ranges) != 0 {
		t.Fatalf("replica owns ranges directly: %+v", rep.Ranges)
	}
}

// TestWithNodeRebalances: adding a primary bumps the epoch and reassigns
// ranges deterministically; the old map is untouched.
func TestWithNodeRebalances(t *testing.T) {
	m := testMap(t)
	before := EncodeMap(m)
	grown, err := m.WithNode(Node{ID: "d", Addr: "127.0.0.1:7074", Role: RolePrimary})
	if err != nil {
		t.Fatal(err)
	}
	if grown.Epoch != m.Epoch+1 {
		t.Fatalf("epoch = %d, want %d", grown.Epoch, m.Epoch+1)
	}
	if got := len(grown.Primaries()); got != 4 {
		t.Fatalf("primaries = %d, want 4", got)
	}
	if !reflect.DeepEqual(EncodeMap(m), before) {
		t.Fatal("WithNode mutated its receiver")
	}
	// Deterministic assignment: rebuilding from scratch with the same
	// membership yields identical ranges.
	rebuilt, err := BuildMap(grown.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range grown.Primaries() {
		if !reflect.DeepEqual(p.Ranges, rebuilt.Node(p.ID).Ranges) {
			t.Fatalf("node %q ranges differ from deterministic rebuild", p.ID)
		}
	}
}
