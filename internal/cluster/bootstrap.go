package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/llm-db/mlkv-go/internal/wire"
)

// Raw node-to-node conversations: joining, gossiping maps, and streaming
// replication all speak the ordinary wire protocol over a plain synchronous
// connection — no pipelining, no pooling — because none of them are on a
// client's latency path.

// RemoteError is an application-level refusal (RespErr) from a peer node,
// as opposed to a transport failure: the peer is alive and the connection
// usable, it just said no.
type RemoteError struct{ Msg string }

// Error returns the peer's message.
func (e *RemoteError) Error() string { return e.Msg }

// rawConn is one synchronous wire connection to a peer node.
type rawConn struct {
	c    net.Conn
	br   *bufio.Reader
	fw   *wire.FrameWriter
	bw   *bufio.Writer
	corr uint32
	buf  []byte
}

// dialRaw connects and completes the HELLO exchange.
func dialRaw(addr string, timeout time.Duration) (*rawConn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(c)
	rc := &rawConn{c: c, br: bufio.NewReader(c), bw: bw, fw: wire.NewFrameWriter(bw)}
	if _, err := rc.roundTrip(wire.OpHello, wire.EncodeHello(), timeout); err != nil {
		c.Close()
		return nil, err
	}
	return rc, nil
}

// roundTrip sends one frame and reads its response. The returned payload
// aliases the connection's read buffer and is valid until the next call.
// A RespErr answer comes back as *RemoteError.
func (rc *rawConn) roundTrip(op wire.Op, payload []byte, timeout time.Duration) ([]byte, error) {
	rc.corr++
	if timeout > 0 {
		rc.c.SetDeadline(time.Now().Add(timeout))
		defer rc.c.SetDeadline(time.Time{})
	}
	if err := rc.fw.Write(rc.corr, op, payload); err != nil {
		return nil, err
	}
	if err := rc.bw.Flush(); err != nil {
		return nil, err
	}
	f, buf, err := wire.ReadFrameBuf(rc.br, 0, rc.buf)
	rc.buf = buf
	if err != nil {
		return nil, err
	}
	if f.CorrID != rc.corr {
		return nil, fmt.Errorf("cluster: peer answered correlation id %d, expected %d", f.CorrID, rc.corr)
	}
	switch f.Op {
	case wire.RespOK:
		return f.Payload, nil
	case wire.RespErr:
		return nil, &RemoteError{Msg: string(f.Payload)}
	}
	return nil, fmt.Errorf("cluster: peer answered unexpected op %s", f.Op)
}

func (rc *rawConn) close() { rc.c.Close() }

// FetchMap asks one node for its current cluster map.
func FetchMap(addr string, timeout time.Duration) (*Map, error) {
	rc, err := dialRaw(addr, timeout)
	if err != nil {
		return nil, err
	}
	defer rc.close()
	p, err := rc.roundTrip(wire.OpClusterMap, nil, timeout)
	if err != nil {
		return nil, err
	}
	return DecodeMap(p)
}

// JoinCluster announces n to the seed node and returns the merged map at
// its new epoch. The caller then gossips that map to the remaining members
// with PushMap so they learn the joiner without waiting for a redirect.
func JoinCluster(seed string, n Node, timeout time.Duration) (*Map, error) {
	rc, err := dialRaw(seed, timeout)
	if err != nil {
		return nil, err
	}
	defer rc.close()
	p, err := rc.roundTrip(wire.OpClusterJoin, EncodeNode(n), timeout)
	if err != nil {
		return nil, err
	}
	return DecodeMap(p)
}

// PushMap gossips m to one node and returns that node's current map after
// the exchange (m itself if adopted, something newer if the peer was
// ahead). Transport errors are returned; a peer refusing the sync is too.
func PushMap(addr string, m *Map, timeout time.Duration) (*Map, error) {
	rc, err := dialRaw(addr, timeout)
	if err != nil {
		return nil, err
	}
	defer rc.close()
	p, err := rc.roundTrip(wire.OpClusterSync, EncodeMap(m), timeout)
	if err != nil {
		return nil, err
	}
	return DecodeMap(p)
}

// IsRemoteRefusal reports whether err is a peer's application-level
// refusal rather than a transport failure.
func IsRemoteRefusal(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}
