package cluster

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/llm-db/mlkv-go/internal/client"
	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/latency"
)

// errNoOwner reports a key that falls outside every primary's ranges — a
// malformed map, since a valid one partitions the whole ring.
var errNoOwner = errors.New("cluster: key has no owner in the current map")

// RSession is one worker's routed session: a lazy per-node client session
// behind each node the worker's keys touch. Like every kv.Session it is
// single-goroutine from the caller's side; batch fan-out below spawns one
// goroutine per node group, each owning that node's session for the call.
type RSession struct {
	m      *RModel
	sess   map[string]*client.Session // node id → session
	rr     uint32                     // replica round-robin cursor
	closed bool
}

// node returns (attaching if needed) this session on one node.
func (s *RSession) node(ctx context.Context, n *Node) (*client.Session, error) {
	if ss, ok := s.sess[n.ID]; ok {
		return ss, nil
	}
	cm, err := s.m.model(ctx, n)
	if err != nil {
		return nil, err
	}
	ss, err := cm.NewSessionCtx(ctx)
	if err != nil {
		return nil, err
	}
	s.sess[n.ID] = ss
	return ss, nil
}

// readTarget picks where a read of p's range goes under bound: an
// admissible replica (round-robin when several) with its session, else the
// primary. Replica session-attach failures fall back to the primary here;
// a replica failing mid-read falls back in the callers (getCtx and the
// batch paths re-read from the owning primary instead of erroring).
func (s *RSession) readTarget(ctx context.Context, mp *Map, p *Node, bound int64) (*Node, *client.Session, error) {
	if s.m.r.opts.ReadReplicas {
		reps := mp.ReplicasOf(p.ID)
		for i := 0; i < len(reps); i++ {
			rep := reps[int(s.rr)%len(reps)]
			s.rr++
			if !s.m.replicaAdmissible(ctx, bound, rep) {
				continue
			}
			if ss, err := s.node(ctx, rep); err == nil {
				return rep, ss, nil
			}
		}
	}
	ss, err := s.node(ctx, p)
	return p, ss, err
}

// GetCtx reads one key through the cluster: replica when the staleness
// bound admits it (a clock-free PEEK — a replica holds no clock), primary
// otherwise; a replica miss re-reads authoritatively from the primary.
func (s *RSession) GetCtx(ctx context.Context, key uint64, dst []byte) (bool, error) {
	start := time.Now()
	defer s.m.r.lat.Since(latency.OpGet, start)
	return s.getCtx(ctx, key, dst, false)
}

// PeekCtx is the clock-free read, routed like GetCtx (the bound still
// gates replica use, so BSP peeks stay on the primary too).
func (s *RSession) PeekCtx(ctx context.Context, key uint64, dst []byte) (bool, error) {
	start := time.Now()
	defer s.m.r.lat.Since(latency.OpGet, start)
	return s.getCtx(ctx, key, dst, true)
}

func (s *RSession) getCtx(ctx context.Context, key uint64, dst []byte, peek bool) (bool, error) {
	var ownerRetries int
	for attempt := 0; ; attempt++ {
		mp := s.m.r.Map()
		p := mp.Owner(key)
		if p == nil {
			return false, errNoOwner
		}
		bound := s.m.bound.Load()
		rn, ss, err := s.readTarget(ctx, mp, p, bound)
		if err != nil {
			if s.m.r.retryOwner(ctx, &ownerRetries, p.ID, err) {
				continue
			}
			return s.degradedOrFail(ctx, mp, p, bound, key, dst, err, ownerRetries)
		}
		if rn != p {
			found, err := ss.PeekCtx(ctx, key, dst)
			if err != nil {
				if s.m.r.redirected(err, attempt) {
					continue
				}
				var noe *client.NotOwnerError
				if errors.As(err, &noe) {
					return false, err // redirect budget spent: the map is flapping
				}
				// The replica died mid-read; the primary can still serve it.
			} else if found {
				s.m.r.replicaReads.Add(1)
				return true, nil
			}
			// Replica miss or failure: maybe lag, maybe a dead node — the
			// owning primary is authoritative either way.
			if ss, err = s.node(ctx, p); err != nil {
				if s.m.r.retryOwner(ctx, &ownerRetries, p.ID, err) {
					continue
				}
				return s.degradedOrFail(ctx, mp, p, bound, key, dst, err, ownerRetries)
			}
		}
		var found bool
		if peek {
			found, err = ss.PeekCtx(ctx, key, dst)
		} else {
			found, err = ss.GetCtx(ctx, key, dst)
		}
		if err != nil {
			if s.m.r.redirected(err, attempt) {
				continue
			}
			if s.m.r.retryOwner(ctx, &ownerRetries, p.ID, err) {
				continue
			}
			return s.degradedOrFail(ctx, mp, p, bound, key, dst, err, ownerRetries)
		}
		return found, nil
	}
}

// degradedOrFail is a read's last resort once the owner-retry budget is
// spent: a read whose staleness bound cannot block may still be served by
// an admissible replica of the dead primary — graceful degradation, a
// stale-but-bounded answer instead of an outage. Blocking bounds (and
// reads with no admissible replica) surface the typed failure.
func (s *RSession) degradedOrFail(ctx context.Context, mp *Map, p *Node, bound int64, key uint64, dst []byte, err error, ownerRetries int) (bool, error) {
	if transportFailure(err) {
		for _, rep := range mp.ReplicasOf(p.ID) {
			if !s.m.replicaAdmissible(ctx, bound, rep) {
				continue
			}
			ss, serr := s.node(ctx, rep)
			if serr != nil {
				continue
			}
			if f, perr := ss.PeekCtx(ctx, key, dst); perr == nil {
				s.m.r.replicaReads.Add(1)
				return f, nil
			}
		}
	}
	return false, s.m.r.finalize(err, ownerRetries)
}

// PutCtx writes one key to its owning primary.
func (s *RSession) PutCtx(ctx context.Context, key uint64, val []byte) error {
	start := time.Now()
	defer s.m.r.lat.Since(latency.OpPut, start)
	var ownerRetries int
	for attempt := 0; ; attempt++ {
		mp := s.m.r.Map()
		p := mp.Owner(key)
		if p == nil {
			return errNoOwner
		}
		ss, err := s.node(ctx, p)
		if err == nil {
			err = ss.PutCtx(ctx, key, val)
		}
		if err == nil {
			return nil
		}
		if s.m.r.redirected(err, attempt) {
			continue
		}
		if s.m.r.retryOwner(ctx, &ownerRetries, p.ID, err) {
			continue
		}
		return s.m.r.finalize(err, ownerRetries)
	}
}

// DeleteCtx removes one key on its owning primary.
func (s *RSession) DeleteCtx(ctx context.Context, key uint64) error {
	start := time.Now()
	defer s.m.r.lat.Since(latency.OpPut, start)
	var ownerRetries int
	for attempt := 0; ; attempt++ {
		mp := s.m.r.Map()
		p := mp.Owner(key)
		if p == nil {
			return errNoOwner
		}
		ss, err := s.node(ctx, p)
		if err == nil {
			err = ss.DeleteCtx(ctx, key)
		}
		if err == nil {
			return nil
		}
		if s.m.r.redirected(err, attempt) {
			continue
		}
		if s.m.r.retryOwner(ctx, &ownerRetries, p.ID, err) {
			continue
		}
		return s.m.r.finalize(err, ownerRetries)
	}
}

// GetBatchCtx reads a batch through the cluster: keys group by read node
// (internal/core's shard grouping, one level up) and the groups fan out in
// parallel — except under a blocking bound, where the serial gate applies:
// multi-node blocking reads go one key at a time in caller order, exactly
// like the core table serializes blocking batch reads, so token
// acquisition order stays deterministic.
func (s *RSession) GetBatchCtx(ctx context.Context, keys []uint64, vals []byte, found []bool) error {
	start := time.Now()
	defer s.m.r.lat.Since(latency.OpGetBatch, start)
	return s.batchRead(ctx, keys, vals, found, false)
}

// PeekBatchCtx is the clock-free batch read, routed like GetBatchCtx.
func (s *RSession) PeekBatchCtx(ctx context.Context, keys []uint64, vals []byte, found []bool) error {
	start := time.Now()
	defer s.m.r.lat.Since(latency.OpGetBatch, start)
	return s.batchRead(ctx, keys, vals, found, true)
}

func (s *RSession) batchRead(ctx context.Context, keys []uint64, vals []byte, found []bool, peek bool) error {
	var ownerRetries int
	for attempt := 0; ; attempt++ {
		err := s.batchReadOnce(ctx, keys, vals, found, peek)
		if err == nil {
			return nil
		}
		if s.m.r.redirected(err, attempt) {
			continue
		}
		// Owner unknown at this level (any group may have failed): refetch
		// from every member and retry the whole batch — re-reads are
		// idempotent, and a promotion re-groups the keys on the next pass.
		if s.m.r.retryOwner(ctx, &ownerRetries, "", err) {
			continue
		}
		return s.m.r.finalize(err, ownerRetries)
	}
}

// readGroup is one node's slice of a batch: gather, read (PEEK on
// replicas), scatter. It returns the caller-space indices a replica
// missed, for the authoritative primary re-read.
func (s *RSession) readGroup(ctx context.Context, ss *client.Session, replica bool, idxs []int, keys []uint64, vals []byte, found []bool, peek bool) ([]int, error) {
	vs := s.m.dim * 4
	gkeys := make([]uint64, len(idxs))
	gvals := make([]byte, len(idxs)*vs)
	gfound := make([]bool, len(idxs))
	for j, i := range idxs {
		gkeys[j] = keys[i]
	}
	var err error
	if replica || peek {
		err = ss.PeekBatchCtx(ctx, gkeys, gvals, gfound)
	} else {
		err = ss.GetBatchCtx(ctx, gkeys, gvals, gfound)
	}
	if err != nil {
		return nil, err
	}
	var miss []int
	served := 0
	for j, i := range idxs {
		found[i] = gfound[j]
		if gfound[j] {
			copy(vals[i*vs:(i+1)*vs], gvals[j*vs:(j+1)*vs])
			served++
		} else if replica {
			miss = append(miss, i)
		}
	}
	if replica {
		s.m.r.replicaReads.Add(int64(served))
	}
	return miss, nil
}

func (s *RSession) batchReadOnce(ctx context.Context, keys []uint64, vals []byte, found []bool, peek bool) error {
	mp := s.m.r.Map()
	bound := s.m.bound.Load()

	// Group caller indices by read node, choosing each primary's read
	// target once per batch so one batch never straddles a primary and its
	// replica for the same range.
	type group struct {
		node    *Node
		sess    *client.Session
		replica bool
		idxs    []int
	}
	byPrimary := map[string]*group{}
	var groups []*group
	for i, k := range keys {
		p := mp.Owner(k)
		if p == nil {
			return errNoOwner
		}
		g, ok := byPrimary[p.ID]
		if !ok {
			rn, ss, err := s.readTarget(ctx, mp, p, bound)
			if err != nil {
				return err
			}
			g = &group{node: rn, sess: ss, replica: rn != p}
			byPrimary[p.ID] = g
			groups = append(groups, g)
		}
		g.idxs = append(g.idxs, i)
	}

	if len(groups) == 1 {
		// One node serves the whole batch: forward it whole and let the
		// server-side gate handle blocking bounds.
		g := groups[0]
		miss, err := s.readGroup(ctx, g.sess, g.replica, g.idxs, keys, vals, found, peek)
		if err != nil {
			var noe *client.NotOwnerError
			if !g.replica || errors.As(err, &noe) {
				return err
			}
			// The replica died mid-read: the owning primary re-serves the
			// whole group instead of surfacing the error.
			miss = g.idxs
		}
		return s.primaryRefetch(ctx, mp, keys, vals, found, peek, miss)
	}

	if faster.BlockingBound(bound) {
		// The serial gate, one level up: blocking multi-node reads go one
		// key at a time in caller order.
		vs := s.m.dim * 4
		for i, k := range keys {
			f, err := s.getCtx(ctx, k, vals[i*vs:(i+1)*vs], peek)
			if err != nil {
				return err
			}
			found[i] = f
		}
		return nil
	}

	// Parallel fan-out: one goroutine per node group, each owning that
	// node's session for the duration (the single-goroutine session
	// contract holds per node).
	misses := make([][]int, len(groups))
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for gi, g := range groups {
		wg.Add(1)
		go func(gi int, g *group) {
			defer wg.Done()
			misses[gi], errs[gi] = s.readGroup(ctx, g.sess, g.replica, g.idxs, keys, vals, found, peek)
		}(gi, g)
	}
	wg.Wait()
	var noe *client.NotOwnerError
	var first error
	for gi, err := range errs {
		if err == nil {
			continue
		}
		if errors.As(err, &noe) {
			return err // redirects outrank other failures: retrying may fix them all
		}
		if groups[gi].replica {
			// A replica died mid-read: its owning primary re-serves the
			// whole group below instead of failing the batch.
			misses[gi] = groups[gi].idxs
			continue
		}
		if first == nil {
			first = err
		}
	}
	if first != nil {
		return first
	}
	var miss []int
	for gi := range groups {
		miss = append(miss, misses[gi]...)
	}
	return s.primaryRefetch(ctx, mp, keys, vals, found, peek, miss)
}

// primaryRefetch re-reads replica misses from their owning primaries: a
// miss on a lagging replica is not authoritative. Serial — the fan-out has
// joined, so every session is free again.
func (s *RSession) primaryRefetch(ctx context.Context, mp *Map, keys []uint64, vals []byte, found []bool, peek bool, miss []int) error {
	if len(miss) == 0 {
		return nil
	}
	vs := s.m.dim * 4
	byPrimary := map[string][]int{}
	prim := map[string]*Node{}
	for _, i := range miss {
		p := mp.Owner(keys[i])
		if p == nil {
			return errNoOwner
		}
		prim[p.ID] = p
		byPrimary[p.ID] = append(byPrimary[p.ID], i)
	}
	for id, idxs := range byPrimary {
		ss, err := s.node(ctx, prim[id])
		if err != nil {
			return err
		}
		gkeys := make([]uint64, len(idxs))
		gvals := make([]byte, len(idxs)*vs)
		gfound := make([]bool, len(idxs))
		for j, i := range idxs {
			gkeys[j] = keys[i]
		}
		if peek {
			err = ss.PeekBatchCtx(ctx, gkeys, gvals, gfound)
		} else {
			err = ss.GetBatchCtx(ctx, gkeys, gvals, gfound)
		}
		if err != nil {
			return err
		}
		for j, i := range idxs {
			found[i] = gfound[j]
			if gfound[j] {
				copy(vals[i*vs:(i+1)*vs], gvals[j*vs:(j+1)*vs])
			}
		}
	}
	return nil
}

// PutBatchCtx writes a batch through the cluster, grouped by owning
// primary and fanned out in parallel — the shard fan-out pattern lifted to
// the node level. Writes never see replicas.
func (s *RSession) PutBatchCtx(ctx context.Context, keys []uint64, vals []byte) error {
	start := time.Now()
	defer s.m.r.lat.Since(latency.OpPutBatch, start)
	var ownerRetries int
	for attempt := 0; ; attempt++ {
		err := s.putBatchOnce(ctx, keys, vals)
		if err == nil {
			return nil
		}
		if s.m.r.redirected(err, attempt) {
			continue
		}
		// Retrying the whole batch re-puts groups that already committed —
		// puts are idempotent upserts, so the cost is duplicate work, not
		// duplicate state.
		if s.m.r.retryOwner(ctx, &ownerRetries, "", err) {
			continue
		}
		return s.m.r.finalize(err, ownerRetries)
	}
}

func (s *RSession) putBatchOnce(ctx context.Context, keys []uint64, vals []byte) error {
	mp := s.m.r.Map()
	vs := s.m.dim * 4
	byPrimary := map[string][]int{}
	prim := map[string]*Node{}
	var order []string
	for i, k := range keys {
		p := mp.Owner(k)
		if p == nil {
			return errNoOwner
		}
		if _, ok := byPrimary[p.ID]; !ok {
			prim[p.ID] = p
			order = append(order, p.ID)
		}
		byPrimary[p.ID] = append(byPrimary[p.ID], i)
	}
	if len(order) == 1 {
		ss, err := s.node(ctx, prim[order[0]])
		if err != nil {
			return err
		}
		return ss.PutBatchCtx(ctx, keys, vals)
	}
	// Sessions are created serially (the session map is single-goroutine);
	// only the already-bound round trips run in parallel.
	sessions := make([]*client.Session, len(order))
	for gi, id := range order {
		ss, err := s.node(ctx, prim[id])
		if err != nil {
			return err
		}
		sessions[gi] = ss
	}
	errs := make([]error, len(order))
	var wg sync.WaitGroup
	for gi, id := range order {
		wg.Add(1)
		go func(gi int, ss *client.Session, idxs []int) {
			defer wg.Done()
			gkeys := make([]uint64, len(idxs))
			gvals := make([]byte, len(idxs)*vs)
			for j, i := range idxs {
				gkeys[j] = keys[i]
				copy(gvals[j*vs:(j+1)*vs], vals[i*vs:(i+1)*vs])
			}
			errs[gi] = ss.PutBatchCtx(ctx, gkeys, gvals)
		}(gi, sessions[gi], byPrimary[id])
	}
	wg.Wait()
	var noe *client.NotOwnerError
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.As(err, &noe) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// LookaheadCtx forwards the prefetch hint to each key's owning primary
// (serially — lookahead is advisory, not latency-critical) and sums the
// accepted counts.
func (s *RSession) LookaheadCtx(ctx context.Context, keys []uint64) (int, error) {
	mp := s.m.r.Map()
	byPrimary := map[string][]uint64{}
	prim := map[string]*Node{}
	for _, k := range keys {
		p := mp.Owner(k)
		if p == nil {
			return 0, errNoOwner
		}
		prim[p.ID] = p
		byPrimary[p.ID] = append(byPrimary[p.ID], k)
	}
	total := 0
	for id, gkeys := range byPrimary {
		ss, err := s.node(ctx, prim[id])
		if err != nil {
			return total, err
		}
		n, err := ss.LookaheadCtx(ctx, gkeys)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Close releases every per-node session.
func (s *RSession) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, ss := range s.sess {
		ss.Close()
	}
	s.sess = map[string]*client.Session{}
}
