package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/llm-db/mlkv-go/internal/client"
	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/hotcache"
	"github.com/llm-db/mlkv-go/internal/latency"
)

// Router is the client side of the cluster: one connection pool per node,
// a cached Map, and routing that lifts internal/core's shard fan-out one
// level up — group keys by owning server, fan batches out in parallel,
// keep the blocking-bound serial gate. Reads are staleness-bound-aware
// when RouterOptions.ReadReplicas is set: ASP reads may hit any replica,
// BSP always hits the primary, and SSP hits a replica only while its
// advertised lag passes hotcache.Admissible. A NOT_OWNER redirect carries
// the server's newer map; the router adopts it and retries.
type Router struct {
	opts RouterOptions
	cur  atomic.Pointer[Map]

	mu     sync.Mutex
	pools  map[string]*client.Client // node address → pool
	closed bool

	// lat times whole routed operations — including redirects, fan-out
	// joins, and replica fallbacks — the latency a cluster caller actually
	// experiences. Each node pool keeps its own per-hop histograms below.
	lat latency.OpSet

	redirects    atomic.Int64
	replicaReads atomic.Int64
}

// RouterOptions configures NewRouter.
type RouterOptions struct {
	// Client configures every node pool (conns, hedging, timeouts); hedges
	// ride each node's own pool, so PR 8's hedge machinery applies per node.
	Client client.Options
	// ReadReplicas routes admissible reads to replicas; off, every
	// operation goes to owning primaries.
	ReadReplicas bool
	// LagRefresh is how long a replica's advertised lag is trusted before
	// the router re-fetches it (default 100ms). Only SSP reads consult lag.
	LagRefresh time.Duration
}

// maxRedirects bounds NOT_OWNER retries per operation: each retry adopts
// the redirecting server's map, so more than a few means the topology is
// flapping faster than a client can follow.
const maxRedirects = 3

// Owner-unreachable retry: when an operation fails at the transport level
// (the owning node may be dead), the router refetches the map from any
// live member — a promotion shows up as a newer epoch — and retries, with
// jittered exponential backoff while the cluster has not yet noticed the
// death. The budget bounds the worst case: the caller's context deadline
// still cuts every sleep short.
const (
	ownerRetryBudget = 8
	ownerBackoffMin  = 25 * time.Millisecond
	ownerBackoffMax  = 500 * time.Millisecond
)

// ErrNoLiveOwner reports a key range whose owning primary is unreachable
// and for which no failover produced a reachable owner within the retry
// budget — the cluster is genuinely degraded, not just slow.
var ErrNoLiveOwner = errors.New("cluster: no live owner for key range")

// transportFailure reports whether err says the peer may be dead — as
// opposed to a server refusal (ServerError), a routing redirect
// (NotOwnerError), the caller's own cancellation, or a malformed map.
// Only transport failures are worth retrying against a refreshed map.
func transportFailure(err error) bool {
	if err == nil ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, errNoOwner) {
		return false
	}
	var noe *client.NotOwnerError
	if errors.As(err, &noe) {
		return false
	}
	var se *client.ServerError
	return !errors.As(err, &se)
}

// NewRouter wraps an already-dialed seed pool and the map it served.
func NewRouter(m *Map, seedAddr string, seed *client.Client, opts RouterOptions) *Router {
	if opts.LagRefresh <= 0 {
		opts.LagRefresh = 100 * time.Millisecond
	}
	r := &Router{opts: opts, pools: map[string]*client.Client{seedAddr: seed}}
	r.cur.Store(m.Clone())
	return r
}

// Map returns the router's current topology (immutable).
func (r *Router) Map() *Map { return r.cur.Load() }

// Latency exposes the router-level histograms (the driver folds them into
// Stats and records composite RMWs into OpRMW here).
func (r *Router) Latency() *latency.OpSet { return &r.lat }

// Redirects counts NOT_OWNER redirects followed.
func (r *Router) Redirects() int64 { return r.redirects.Load() }

// ReplicaReads counts keys served by replicas instead of primaries.
func (r *Router) ReplicaReads() int64 { return r.replicaReads.Load() }

// DialStats sums the redial counters across the node pools: retries
// actually dialed and attempts the per-pool breaker refused fast.
func (r *Router) DialStats() (retries, backoffs int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range r.pools {
		dr, db := p.DialStats()
		retries += dr
		backoffs += db
	}
	return retries, backoffs
}

// HedgeStats sums hedging counters across the node pools.
func (r *Router) HedgeStats() client.HedgeStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out client.HedgeStats
	for _, p := range r.pools {
		hs := p.HedgeStats()
		out.Issued += hs.Issued
		out.Won += hs.Won
		out.Wasted += hs.Wasted
		out.Suppressed += hs.Suppressed
	}
	return out
}

// Close tears down every node pool.
func (r *Router) Close() error {
	r.mu.Lock()
	r.closed = true
	pools := make([]*client.Client, 0, len(r.pools))
	for _, p := range r.pools {
		pools = append(pools, p)
	}
	r.pools = map[string]*client.Client{}
	r.mu.Unlock()
	var first error
	for _, p := range pools {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// pool returns (dialing if needed) the connection pool for one node.
func (r *Router) pool(addr string) (*client.Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, errors.New("cluster: router closed")
	}
	if p, ok := r.pools[addr]; ok {
		return p, nil
	}
	p, err := client.Dial(addr, r.opts.Client)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial node %s: %w", addr, err)
	}
	r.pools[addr] = p
	return p, nil
}

// adopt installs a map carried by a NOT_OWNER redirect if it is newer
// than the router's current one.
func (r *Router) adopt(payload []byte) {
	m, err := DecodeMap(payload)
	if err != nil {
		return // a corrupt redirect map is ignored; the retry re-asks
	}
	r.mu.Lock()
	if m.Epoch > r.cur.Load().Epoch {
		r.cur.Store(m)
	}
	r.mu.Unlock()
}

// refetchMap asks the cluster for a fresher topology than cur, probing
// every member except excludeID (the node we just failed against — it
// cannot absolve itself) and adopting any newer map. Reports whether a
// newer epoch was installed.
func (r *Router) refetchMap(ctx context.Context, cur *Map, excludeID string) bool {
	for i := range cur.Nodes {
		n := &cur.Nodes[i]
		if n.ID == excludeID {
			continue
		}
		p, err := r.pool(n.Addr)
		if err != nil {
			continue
		}
		payload, err := p.ClusterMapRaw(ctx)
		if err != nil {
			continue
		}
		r.adopt(payload)
	}
	return r.Map().Epoch > cur.Epoch
}

// retryOwner handles one transport failure against the node ownerID:
// within the budget it refetches the map from the surviving members (a
// replica promotion shows up as a newer epoch) and — when the topology
// has not moved yet — sleeps a jittered exponential backoff bounded by
// ctx, giving the failure detector time to act. Reports whether the
// caller should retry the operation.
func (r *Router) retryOwner(ctx context.Context, retries *int, ownerID string, err error) bool {
	if !transportFailure(err) || *retries >= ownerRetryBudget || ctx.Err() != nil {
		return false
	}
	*retries++
	cur := r.Map()
	if r.refetchMap(ctx, cur, ownerID) {
		return true // new topology: retry immediately
	}
	shift := *retries - 1
	if shift > 7 {
		shift = 7
	}
	backoff := ownerBackoffMin << shift
	if backoff > ownerBackoffMax {
		backoff = ownerBackoffMax
	}
	backoff = backoff/2 + time.Duration(rand.Int63n(int64(backoff))) // ±50% jitter
	t := time.NewTimer(backoff)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// finalize shapes an operation's terminal error: a transport failure that
// survived the whole retry budget becomes the typed ErrNoLiveOwner, so
// callers can tell "this range currently has no reachable owner" from an
// ordinary failed request.
func (r *Router) finalize(err error, retries int) error {
	if retries >= ownerRetryBudget && transportFailure(err) {
		return fmt.Errorf("%w (gave up after %d retries: %v)", ErrNoLiveOwner, retries, err)
	}
	return err
}

// redirected handles one operation error: if it is a NOT_OWNER redirect
// and the attempt budget allows, the attached map is adopted and the
// caller should retry. Anything else is final.
func (r *Router) redirected(err error, attempt int) bool {
	var noe *client.NotOwnerError
	if !errors.As(err, &noe) || attempt >= maxRedirects {
		return false
	}
	r.adopt(noe.Map)
	r.redirects.Add(1)
	return true
}

// OpenModel opens the model on every node in the current map (so a bound
// change propagates cluster-wide) and returns the routed model. Calling it
// again with the same ID re-opens with the new spec on every node. An
// unreachable replica does not fail the open — replicas are a read
// optimization, so the model opens there lazily when a read first routes
// to it, and readTarget falls back to the primary until then. Primaries
// stay strict: every range owner must accept the spec.
func (r *Router) OpenModel(ctx context.Context, spec client.OpenSpec) (*RModel, error) {
	m := &RModel{r: r, spec: spec, models: map[string]*client.Model{}, lags: map[string]*lagEntry{}}
	mp := r.Map()
	for i := range mp.Nodes {
		if _, err := m.model(ctx, &mp.Nodes[i]); err != nil {
			if mp.Nodes[i].Role == RoleReplica {
				continue
			}
			return nil, err
		}
	}
	return m, nil
}

// RModel is one model routed across the cluster.
type RModel struct {
	r    *Router
	spec client.OpenSpec

	mu     sync.Mutex
	models map[string]*client.Model // node id → per-node model
	lags   map[string]*lagEntry     // replica node id → cached lag

	dim    int
	shards int
	engine string
	bound  atomic.Int64
	once   sync.Once // latches geometry from the first successful open
}

// lagEntry caches one replica's advertised lag between refreshes.
type lagEntry struct {
	lag atomic.Int64
	at  atomic.Int64 // mono nanos of the last refresh
}

// model returns (opening if needed) this model on one node.
func (m *RModel) model(ctx context.Context, n *Node) (*client.Model, error) {
	m.mu.Lock()
	if cm, ok := m.models[n.ID]; ok {
		m.mu.Unlock()
		return cm, nil
	}
	m.mu.Unlock()
	p, err := m.r.pool(n.Addr)
	if err != nil {
		return nil, err
	}
	cm, err := p.OpenModel(ctx, m.spec)
	if err != nil {
		return nil, fmt.Errorf("cluster: open %q on node %s: %w", m.spec.ID, n.ID, err)
	}
	m.mu.Lock()
	if prev, ok := m.models[n.ID]; ok { // lost a race; keep the first
		m.mu.Unlock()
		return prev, nil
	}
	m.models[n.ID] = cm
	m.mu.Unlock()
	m.once.Do(func() {
		m.dim = cm.Dim()
		m.shards = cm.Shards()
		m.engine = cm.Name()
		m.bound.Store(cm.StalenessBound())
	})
	return cm, nil
}

// ID returns the model name.
func (m *RModel) ID() string { return m.spec.ID }

// Dim returns the embedding dimension.
func (m *RModel) Dim() int { return m.dim }

// Shards returns one node's hash-partition count (the intra-node layer —
// cluster ranges partition above it).
func (m *RModel) Shards() int { return m.shards }

// Name identifies the routed engine in benchmark output.
func (m *RModel) Name() string {
	return fmt.Sprintf("cluster(%d×%s)", len(m.r.Map().Nodes), m.engine)
}

// StalenessBound returns the bound in effect.
func (m *RModel) StalenessBound() int64 { return m.bound.Load() }

// SetBoundHint records a bound change on the routed model and every
// per-node model, so hedge and replica admissibility react immediately.
func (m *RModel) SetBoundHint(bound int64) {
	m.bound.Store(bound)
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, cm := range m.models {
		cm.SetBoundHint(bound)
	}
}

// CheckpointCtx checkpoints the model on every primary.
func (m *RModel) CheckpointCtx(ctx context.Context) error {
	mp := m.r.Map()
	for _, p := range mp.Primaries() {
		cm, err := m.model(ctx, p)
		if err != nil {
			return err
		}
		if err := cm.CheckpointCtx(ctx); err != nil {
			return err
		}
	}
	return nil
}

// ModelStats merges every node's counters: scalars sum, latency summaries
// fold (counts and sums add, percentiles take the worst node — a merged
// percentile without the raw histograms would be a guess), and ReplicaLag
// reports the laggiest replica. An unreachable replica is skipped — its
// counters are unavailable, not zero, and a dead read optimization must
// not take down the stats of a serving cluster. Primaries stay strict.
func (m *RModel) ModelStats(ctx context.Context) (wireStats, error) {
	mp := m.r.Map()
	var out wireStats
	for i := range mp.Nodes {
		cm, err := m.model(ctx, &mp.Nodes[i])
		if err == nil {
			var s wireStats
			if s, err = cm.ModelStats(ctx); err == nil {
				addStats(&out, s)
				continue
			}
		}
		if mp.Nodes[i].Role == RoleReplica {
			continue
		}
		return out, err
	}
	return out, nil
}

// lagOf returns one replica's advertised replication lag, refreshed at
// most every LagRefresh. Unreachable replicas report an infinite lag, so
// admissibility holds them out of rotation instead of guessing.
func (m *RModel) lagOf(ctx context.Context, rep *Node) int64 {
	m.mu.Lock()
	e := m.lags[rep.ID]
	if e == nil {
		e = &lagEntry{}
		e.lag.Store(int64(^uint64(0) >> 1)) // unknown = infinite until fetched
		m.lags[rep.ID] = e
	}
	m.mu.Unlock()
	now := time.Now().UnixNano()
	last := e.at.Load()
	if last != 0 && now-last < int64(m.r.opts.LagRefresh) {
		return e.lag.Load()
	}
	if !e.at.CompareAndSwap(last, now) {
		return e.lag.Load() // someone else is refreshing
	}
	cm, err := m.model(ctx, rep)
	if err != nil {
		return e.lag.Load()
	}
	s, err := cm.ModelStats(ctx)
	if err != nil {
		return e.lag.Load()
	}
	e.lag.Store(s.ReplicaLag)
	return s.ReplicaLag
}

// replicaAdmissible decides whether a read under bound may be served by
// rep right now — the cluster face of the staleness ladder: ASP (and a
// disabled clock) always admissible, BSP never, SSP only while the
// replica's advertised lag passes the same Admissible predicate the hot
// cache uses.
func (m *RModel) replicaAdmissible(ctx context.Context, bound int64, rep *Node) bool {
	if bound == 0 {
		return false
	}
	if !faster.BlockingBound(bound) {
		return true
	}
	return hotcache.Admissible(bound, m.lagOf(ctx, rep))
}

// NewSession opens a routed session (kv.Session shape, one goroutine).
func (m *RModel) NewSession(ctx context.Context) (*RSession, error) {
	return &RSession{m: m, sess: map[string]*client.Session{}}, nil
}
