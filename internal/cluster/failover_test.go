package cluster

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// failoverMap builds the canonical promotion scenario: two primaries
// splitting the ring, with two replicas both following n0.
func failoverMap() *Map {
	m, err := BuildMap([]Node{
		{ID: "n0", Addr: "127.0.0.1:1", Role: RolePrimary},
		{ID: "n1", Addr: "127.0.0.1:2", Role: RolePrimary},
		{ID: "n2", Addr: "127.0.0.1:3", Role: RoleReplica, PrimaryID: "n0"},
		{ID: "n3", Addr: "127.0.0.1:4", Role: RoleReplica, PrimaryID: "n0"},
	})
	if err != nil {
		panic(err)
	}
	return m
}

// TestPromoteMovesRangesWholesale pins the promotion transform: the dead
// primary's ranges move to the promoted replica as-is (no cluster-wide
// reshuffle — surviving primaries must keep serving their keys untouched),
// the dead node stays in-map demoted to a replica of its successor, sibling
// replicas re-point, and the epoch bumps so the new map wins gossip.
func TestPromoteMovesRangesWholesale(t *testing.T) {
	m := failoverMap()
	beforeN1 := append([]Range(nil), m.Node("n1").Ranges...)
	deadRanges := append([]Range(nil), m.Node("n0").Ranges...)

	out, err := m.Promote("n0", "n2")
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if out.Epoch != m.Epoch+1 {
		t.Fatalf("epoch %d, want %d", out.Epoch, m.Epoch+1)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("promoted map invalid: %v", err)
	}
	p := out.Node("n2")
	if p.Role != RolePrimary || p.PrimaryID != "" || !reflect.DeepEqual(p.Ranges, deadRanges) {
		t.Fatalf("promoted node = %+v, want primary holding the dead node's ranges verbatim", p)
	}
	if !reflect.DeepEqual(out.Node("n1").Ranges, beforeN1) {
		t.Fatal("Promote reshuffled a surviving primary's ranges")
	}
	dead := out.Node("n0")
	if dead == nil || dead.Role != RoleReplica || dead.PrimaryID != "n2" || len(dead.Ranges) != 0 {
		t.Fatalf("dead primary = %+v, want in-map demoted to replica of n2", dead)
	}
	if sib := out.Node("n3"); sib.PrimaryID != "n2" {
		t.Fatalf("sibling replica follows %q, want n2", sib.PrimaryID)
	}
	if m.Node("n0").Role != RolePrimary {
		t.Fatal("Promote mutated the input map")
	}
}

// TestPromoteRejections pins the guard rails: only a replica of the dead
// primary may be promoted, and both parties must exist.
func TestPromoteRejections(t *testing.T) {
	m := failoverMap()
	for _, tc := range []struct{ dead, promote, want string }{
		{"nope", "n2", "not in map"},
		{"n0", "nope", "not in map"},
		{"n2", "n3", "not a primary"},
		{"n0", "n1", "not a replica"},
		{"n1", "n2", "not a replica of"},
	} {
		_, err := m.Promote(tc.dead, tc.promote)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("Promote(%s, %s) = %v, want mention of %q", tc.dead, tc.promote, err, tc.want)
		}
	}
}

// TestPingCodecRoundTrip pins the CLUSTERPING payload format both ways,
// including the empty-suspect-list fast path.
func TestPingCodecRoundTrip(t *testing.T) {
	for _, p := range []pingInfo{
		{From: "n0", Epoch: 3, Watermark: 99},
		{From: "a-node", Epoch: 1 << 40, Watermark: 0, Suspects: []string{"n1", "n2"}},
	} {
		got, err := decodePingInfo(encodePingInfo(p))
		if err != nil {
			t.Fatalf("decode(encode(%+v)): %v", p, err)
		}
		if got.From != p.From || got.Epoch != p.Epoch || got.Watermark != p.Watermark ||
			!reflect.DeepEqual(got.Suspects, p.Suspects) {
			t.Fatalf("round trip %+v -> %+v", p, got)
		}
	}
}

// TestPingCodecRejectsMalformed pins the hostile-frame guards: short
// payloads, anonymous senders, and trailing garbage are all errors, never
// a zero-value pingInfo silently absorbed into peer state.
func TestPingCodecRejectsMalformed(t *testing.T) {
	good := encodePingInfo(pingInfo{From: "n0", Epoch: 1, Suspects: []string{"n1"}})
	for cut := 0; cut < len(good); cut++ {
		if _, err := decodePingInfo(good[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	if _, err := decodePingInfo(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("trailing byte decoded")
	}
	if _, err := decodePingInfo(encodePingInfo(pingInfo{From: "", Epoch: 1})); err == nil {
		t.Fatal("anonymous ping decoded")
	}
}

// TestLeaveCodecRoundTrip pins the CLUSTERLEAVE payload format.
func TestLeaveCodecRoundTrip(t *testing.T) {
	id, err := decodeLeave(encodeLeave("node-7"))
	if err != nil || id != "node-7" {
		t.Fatalf("round trip = %q, %v", id, err)
	}
	if _, err := decodeLeave(encodeLeave("")); err == nil {
		t.Fatal("anonymous leave decoded")
	}
	if _, err := decodeLeave(append(encodeLeave("x"), 0)); err == nil {
		t.Fatal("trailing byte decoded")
	}
}

// testDetector builds a detector over a fresh State without starting its
// probe/eval goroutines, so tests can fabricate peer evidence and call
// evaluate() deterministically.
func testDetector(t *testing.T, self string, wm uint64) (*State, *detector) {
	t.Helper()
	st, err := NewState(self, failoverMap())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	d := newDetector(st, HealthConfig{
		Interval:     10 * time.Millisecond,
		SuspectAfter: 50 * time.Millisecond,
		Watermark:    func() uint64 { return wm },
	})
	return st, d
}

// seePeer records fabricated gossip from a peer: when it last proved
// life, its replication watermark, and who it said it suspects.
func (d *detector) seePeer(id string, ago time.Duration, wm uint64, suspects ...string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ph := &peerHealth{lastAck: time.Now().Add(-ago), watermark: wm, suspects: map[string]bool{}}
	for _, s := range suspects {
		ph.suspects[s] = true
	}
	d.peers[id] = ph
}

// TestEvaluateNeedsQuorum pins the confirmation rule in a 4-node map
// (quorum 2 = self + one corroborating live peer): silence alone is
// suspicion, not death. Only when a live peer's gossip corroborates does
// the target become confirmed-dead — so a one-way partition that only
// this node observes cannot trigger a promotion.
func TestEvaluateNeedsQuorum(t *testing.T) {
	_, d := testDetector(t, "n1", 0)
	// n0 silent past SuspectAfter; n2, n3 alive and saying nothing.
	d.seePeer("n0", time.Second, 0)
	d.seePeer("n2", 0, 0)
	d.seePeer("n3", 0, 0)
	d.evaluate()
	if n := d.confirmedDeaths.Load(); n != 0 {
		t.Fatalf("solo suspicion confirmed %d deaths, want 0", n)
	}

	// A second vote from a live peer crosses quorum.
	d.seePeer("n2", 0, 0, "n0")
	d.evaluate()
	if n := d.confirmedDeaths.Load(); n != 1 {
		t.Fatalf("corroborated suspicion confirmed %d deaths, want 1", n)
	}

	// Suspicions gossiped by a peer that is itself silent do not count.
	_, d2 := testDetector(t, "n1", 0)
	d2.seePeer("n0", time.Second, 0)
	d2.seePeer("n2", time.Second, 0, "n0") // n2 suspected n0, then went silent too
	d2.seePeer("n3", 0, 0)
	d2.evaluate()
	d2.mu.Lock()
	n0dead := d2.peers["n0"].dead
	d2.mu.Unlock()
	if n0dead {
		t.Fatal("a dead peer's stale vote confirmed a death")
	}
}

// TestEvaluateLeaveBypassesQuorum pins the graceful-shutdown path: a
// CLUSTERLEAVE tombstone is confirmed-dead immediately, no votes needed.
func TestEvaluateLeaveBypassesQuorum(t *testing.T) {
	_, d := testDetector(t, "n1", 0)
	d.seePeer("n2", 0, 0)
	d.seePeer("n3", 0, 0)
	if _, err := d.handlePing(encodePingInfo(pingInfo{From: "n0", Epoch: 1})); err != nil {
		t.Fatal(err)
	}
	if err := d.handleLeave(encodeLeave("n0")); err != nil {
		t.Fatal(err)
	}
	d.evaluate()
	if n := d.confirmedDeaths.Load(); n != 1 {
		t.Fatalf("leave confirmed %d deaths, want 1", n)
	}
	if err := d.handleLeave(encodeLeave("n1")); err == nil {
		t.Fatal("detector accepted its own leave announcement")
	}
}

// TestIncomingPingIsProofOfLife pins the one-way-partition defense: a
// peer whose acks we never see but whose pings keep arriving is alive.
func TestIncomingPingIsProofOfLife(t *testing.T) {
	_, d := testDetector(t, "n1", 0)
	d.seePeer("n0", time.Second, 0) // stale by the probe's account...
	d.seePeer("n2", 0, 0, "n0")     // ...and a live peer even corroborates
	d.seePeer("n3", 0, 0)
	// ...but n0's own ping just arrived: that overrides everything.
	if _, err := d.handlePing(encodePingInfo(pingInfo{From: "n0", Epoch: 1})); err != nil {
		t.Fatal(err)
	}
	d.evaluate()
	if n := d.confirmedDeaths.Load(); n != 0 {
		t.Fatalf("peer with arriving pings confirmed dead (%d deaths)", n)
	}
}

// TestPromotionPicksMostCaughtUpReplica pins the volunteer rule each
// surviving replica runs locally: highest gossiped watermark wins, ties
// break to the lowest node ID, and rivals that are themselves silent do
// not outrank.
func TestPromotionPicksMostCaughtUpReplica(t *testing.T) {
	confirm := func(d *detector) {
		d.seePeer("n0", time.Second, 0)
		d.seePeer("n1", 0, 0, "n0")
		d.evaluate()
	}

	// Self (n2, watermark 5) vs live sibling n3 at watermark 3: self wins.
	st, d := testDetector(t, "n2", 5)
	d.seePeer("n3", 0, 3)
	confirm(d)
	if d.promotions.Load() != 1 {
		t.Fatal("most-caught-up replica did not volunteer")
	}
	m := st.Map()
	if m.Node("n2").Role != RolePrimary || m.Node("n0").Role != RoleReplica {
		t.Fatalf("promotion not installed: n2=%v n0=%v", m.Node("n2").Role, m.Node("n0").Role)
	}
	if m.Node("n0").PrimaryID != "n2" {
		t.Fatal("dead primary not demoted under its successor")
	}

	// Sibling further ahead: self stands down.
	st2, d2 := testDetector(t, "n2", 5)
	d2.seePeer("n3", 0, 9)
	confirm(d2)
	if d2.promotions.Load() != 0 {
		t.Fatal("outranked replica volunteered anyway")
	}
	if st2.Map().Node("n2").Role != RoleReplica {
		t.Fatal("outranked replica installed a promotion")
	}

	// Watermark tie: lowest ID (n2 < n3) wins from n2's side...
	_, d3 := testDetector(t, "n2", 5)
	d3.seePeer("n3", 0, 5)
	confirm(d3)
	if d3.promotions.Load() != 1 {
		t.Fatal("tie-break loser: n2 should win a watermark tie against n3")
	}
	// ...and n3 stands down on the same evidence.
	_, d4 := testDetector(t, "n3", 5)
	d4.seePeer("n2", 0, 5)
	confirm(d4)
	if d4.promotions.Load() != 0 {
		t.Fatal("both sides of a watermark tie volunteered")
	}

	// A silent rival with a huge watermark does not outrank: it may be
	// dead too, and waiting on it would stall the failover forever.
	_, d5 := testDetector(t, "n2", 5)
	d5.seePeer("n3", time.Second, 999)
	confirm(d5)
	if d5.promotions.Load() != 1 {
		t.Fatal("silent rival blocked the promotion")
	}

	// A non-replica bystander (n1) never volunteers.
	st6, d6 := testDetector(t, "n1", 999)
	d6.seePeer("n0", time.Second, 0)
	d6.seePeer("n2", 0, 1, "n0")
	d6.evaluate()
	if d6.promotions.Load() != 0 || st6.Map().Node("n1").Ranges == nil {
		t.Fatal("a surviving primary tried to adopt the dead node's ranges")
	}
}
