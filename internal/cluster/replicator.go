package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/llm-db/mlkv-go/internal/wire"
)

// Replicator streams a primary's committed writes to its replicas,
// asynchronously: the server's write path only appends a copied record to
// the model's replay ring and returns, so replication never sits on a
// client's latency path. Each replica gets its own sender goroutine that
// pulls the ring in sequence order — sequence assignment and ring append
// happen under one lock, so a stream can never deliver a model's writes in
// an order different from their sequence numbers. A slow replica exerts no
// backpressure: its sender simply trails the ring head, and a stream
// teardown or reconnect replays from the oldest retained record (puts and
// deletes are idempotent), so transient stalls heal by replay. Records are
// truly lost only when a replica falls more than replLogCap writes behind
// the ring: the sender skips the evicted range (counted in dropped) and
// the replica, seeing the sequence gap, pins its advertised lag at head
// minus the highest contiguously applied sequence — so SSP admissibility
// holds it out of rotation for good instead of letting it serve values
// staler than the bound.
type Replicator struct {
	st *State

	mu      sync.Mutex
	streams map[string]*replStream // replica node id → sender
	models  map[string]*replModel  // model id → replay ring
	closed  bool

	dropped atomic.Int64
}

// replLogCap bounds each model's replay ring: a replica may fall this many
// writes behind and still catch up losslessly by replay. Beyond it the
// oldest records are overwritten and the replica's lag pins (counted in
// dropped).
const replLogCap = 4096

// replRedialDelay paces reconnect attempts to an unreachable replica.
const replRedialDelay = 50 * time.Millisecond

// replDialTimeout bounds each dial/round-trip to a replica.
const replDialTimeout = 5 * time.Second

// replRec is one committed write, copied into the ring at sequence-
// assignment time. Records are immutable once stored: a wrapping append
// replaces the slot with a fresh record rather than mutating the old one,
// so a sender holding a fetched record outside the lock stays safe.
type replRec struct {
	kind byte
	keys []uint64
	vals []byte
}

// replModel is one model's replication log: a monotone sequence head plus
// a ring of the last replLogCap records. Sequence seq lives at slot
// (seq-1)%replLogCap while seq > head−replLogCap.
type replModel struct {
	dim int

	mu   sync.Mutex
	head uint64
	recs [replLogCap]replRec
}

// append assigns the next sequence number to one committed write and logs
// it. Assignment and placement share the mutex, so ring order is sequence
// order even under concurrent writers.
func (rm *replModel) append(kind byte, keys []uint64, vals []byte) {
	rm.mu.Lock()
	rm.head++
	rm.recs[(rm.head-1)%replLogCap] = replRec{kind: kind, keys: keys, vals: vals}
	rm.mu.Unlock()
}

// fetch returns the record at seq — clamped up to the oldest retained
// sequence when seq has been evicted — plus the sequence actually returned
// and the current head. ok is false when seq is past the head (stream
// drained).
func (rm *replModel) fetch(seq uint64) (rec replRec, at, head uint64, ok bool) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if seq > rm.head {
		return replRec{}, seq, rm.head, false
	}
	if oldest := rm.oldest(); seq < oldest {
		seq = oldest
	}
	return rm.recs[(seq-1)%replLogCap], seq, rm.head, true
}

// oldest returns the lowest sequence the ring still holds (callers hold
// rm.mu).
func (rm *replModel) oldest() uint64 {
	if rm.head > replLogCap {
		return rm.head - replLogCap + 1
	}
	return 1
}

// replStream is one replica's sender: a wake signal plus the stop/done
// pair. The per-model cursors live in the run goroutine — senders pull
// from the model rings, so there is no queue to overflow or reorder.
type replStream struct {
	addr string
	wake chan struct{} // cap 1: one pending signal survives any append burst
	stop chan struct{}
	done chan struct{}
}

func newReplicator(st *State) *Replicator {
	return &Replicator{
		st:      st,
		streams: map[string]*replStream{},
		models:  map[string]*replModel{},
	}
}

// refresh reconciles the stream set with the current map: a stream per
// replica of this node, none for anyone else. A re-created stream replays
// from the ring, so teardown loses nothing the ring still holds.
func (r *Replicator) refresh() {
	m := r.st.Map()
	want := map[string]string{} // replica id → addr
	if self := m.Node(r.st.Self()); self != nil && self.Role == RolePrimary {
		for _, rep := range m.ReplicasOf(self.ID) {
			want[rep.ID] = rep.Addr
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	for id, s := range r.streams {
		if addr, ok := want[id]; !ok || addr != s.addr {
			close(s.stop)
			delete(r.streams, id)
		}
	}
	for id, addr := range want {
		if _, ok := r.streams[id]; ok {
			continue
		}
		s := &replStream{
			addr: addr,
			wake: make(chan struct{}, 1),
			stop: make(chan struct{}),
			done: make(chan struct{}),
		}
		r.streams[id] = s
		go r.run(s)
	}
}

// replicate copies one committed write into the model's ring and wakes
// every sender.
func (r *Replicator) replicate(model string, dim int, kind byte, keys []uint64, vals []byte) {
	r.mu.Lock()
	if r.closed || len(r.streams) == 0 {
		r.mu.Unlock()
		return
	}
	rm := r.models[model]
	if rm == nil {
		rm = &replModel{dim: dim}
		r.models[model] = rm
	}
	r.mu.Unlock()

	k := append([]uint64(nil), keys...)
	var v []byte
	if kind == wire.ReplPut {
		v = append([]byte(nil), vals...)
	}
	rm.append(kind, k, v)

	// Snapshot the streams after the append, so a sender created in
	// between either sees the record in its startup sweep or gets this
	// wake.
	r.mu.Lock()
	targets := make([]*replStream, 0, len(r.streams))
	for _, s := range r.streams {
		targets = append(targets, s)
	}
	r.mu.Unlock()
	for _, s := range targets {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
}

// run is one replica's sender loop: sweep every model's backlog in
// sequence order, then sleep until the next append — or pace a redial when
// transport trouble left records pending.
func (r *Replicator) run(s *replStream) {
	defer close(s.done)
	sn := &sender{r: r, s: s, cursor: map[string]uint64{}}
	defer sn.reset()
	for {
		drained := sn.sweep()
		var retry <-chan time.Time
		if !drained {
			retry = time.After(replRedialDelay)
		}
		select {
		case <-s.stop:
			return
		case <-s.wake:
		case <-retry:
		}
	}
}

// sender is the per-stream state its run goroutine owns: the wire
// connection, the replica-side model handles, and each model's next
// sequence to send.
type sender struct {
	r       *Replicator
	s       *replStream
	rc      *rawConn
	handles map[string]uint32
	cursor  map[string]uint64
	frame   []byte
}

// reset drops the connection (and with it the replica-side handles).
func (sn *sender) reset() {
	if sn.rc != nil {
		sn.rc.close()
		sn.rc = nil
	}
	sn.handles = nil
}

// sweep pushes every model's backlog to the replica. It returns false when
// a dial or transport failure interrupted it with records still pending,
// true when every model is drained to its head.
func (sn *sender) sweep() bool {
	sn.r.mu.Lock()
	models := make(map[string]*replModel, len(sn.r.models))
	for id, rm := range sn.r.models {
		models[id] = rm
	}
	sn.r.mu.Unlock()
	drained := true
	for id, rm := range models {
		if !sn.sweepModel(id, rm) {
			drained = false
		}
	}
	return drained
}

// sweepModel drains one model's ring from this stream's cursor to the
// head. An application-level refusal skips one record (counted) — the
// replica sees the sequence gap and keeps its lag pinned, and retrying a
// frame the replica rejects would wedge the stream forever. A transport
// failure leaves the cursor in place so the paced retry resumes exactly
// where it stopped.
func (sn *sender) sweepModel(id string, rm *replModel) (ok bool) {
	next := sn.cursor[id]
	if next == 0 {
		// First sight of this model: replay from the oldest retained
		// record. Replayed writes are idempotent and the replica's
		// contiguity cursor absorbs duplicates.
		next = 1
	}
	defer func() { sn.cursor[id] = next }()
	for {
		select {
		case <-sn.s.stop:
			return true
		default:
		}
		rec, seq, head, more := rm.fetch(next)
		if !more {
			return true
		}
		if seq > next {
			// Ring eviction: records [next, seq) are gone for good. Count
			// them and move on — the replica will see the sequence gap and
			// keep advertising the full lag back to the loss, staying out
			// of SSP rotation.
			sn.r.dropped.Add(int64(seq - next))
			next = seq
		}
		if sn.rc == nil {
			c, err := dialRaw(sn.s.addr, replDialTimeout)
			if err != nil {
				return false
			}
			sn.rc = c
			sn.handles = map[string]uint32{}
		}
		handle, opened := sn.handles[id]
		if !opened {
			h, err := sn.r.openModel(sn.rc, id, rm.dim)
			if err != nil {
				if IsRemoteRefusal(err) {
					sn.r.dropped.Add(1)
					next = seq + 1
					continue
				}
				sn.reset()
				return false
			}
			handle = h
			sn.handles[id] = h
		}
		sn.frame = wire.AppendReplWrite(sn.frame[:0], handle, seq, head, rec.kind, rec.keys, rec.vals)
		if _, err := sn.rc.roundTrip(wire.OpReplWrite, sn.frame, replDialTimeout); err != nil {
			if IsRemoteRefusal(err) {
				sn.r.dropped.Add(1)
				next = seq + 1
				continue
			}
			sn.reset()
			return false
		}
		next = seq + 1
	}
}

// openModel opens and attaches the model on the replica, returning its
// handle there (handles are per-server, not cluster-wide).
func (r *Replicator) openModel(rc *rawConn, model string, dim int) (uint32, error) {
	req, err := wire.EncodeOpen(model, dim, 0, wire.BoundUnset, "")
	if err != nil {
		return 0, err
	}
	p, err := rc.roundTrip(wire.OpOpen, req, replDialTimeout)
	if err != nil {
		return 0, err
	}
	handle, _, _, _, _, err := wire.DecodeOpenResp(p)
	if err != nil {
		return 0, err
	}
	if _, err := rc.roundTrip(wire.OpAttach, wire.EncodeHandle(handle), replDialTimeout); err != nil {
		return 0, err
	}
	return handle, nil
}

// close stops every stream and waits for the senders to exit.
func (r *Replicator) close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	streams := make([]*replStream, 0, len(r.streams))
	for _, s := range r.streams {
		streams = append(streams, s)
	}
	r.streams = map[string]*replStream{}
	r.mu.Unlock()
	for _, s := range streams {
		close(s.stop)
	}
	for _, s := range streams {
		<-s.done
	}
}
