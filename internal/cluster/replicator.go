package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/llm-db/mlkv-go/internal/wire"
)

// Replicator streams a primary's committed writes to its replicas,
// asynchronously: the server's write path only enqueues a copied event and
// returns, so replication never sits on a client's latency path. Each
// replica gets its own stream goroutine with a bounded queue; when a
// replica falls behind the queue, events are dropped and counted — the
// stream head keeps advancing, so the replica's advertised lag (head −
// last applied sequence) stays truthful and SSP admissibility keeps
// holding it out of rotation until it catches up.
type Replicator struct {
	st *State

	mu      sync.Mutex
	streams map[string]*replStream // replica node id → stream
	models  map[string]*replModel  // model id → sequence head
	closed  bool

	dropped atomic.Int64
}

// replModel numbers one model's replication stream.
type replModel struct {
	dim  int
	head atomic.Uint64
}

// replEvent is one copied write, fanned to every replica stream.
type replEvent struct {
	model string
	dim   int
	kind  byte
	keys  []uint64
	vals  []byte
	seq   uint64
	head  *atomic.Uint64
}

// replStream is one replica's queue and sender goroutine.
type replStream struct {
	addr string
	ch   chan replEvent
	stop chan struct{}
	done chan struct{}
}

// replQueueCap bounds each replica stream's in-flight queue. Overflow
// drops (counted) rather than blocking the primary's write path.
const replQueueCap = 1024

// replRedialDelay paces reconnect attempts to an unreachable replica.
const replRedialDelay = 50 * time.Millisecond

// replDialTimeout bounds each dial/round-trip to a replica.
const replDialTimeout = 5 * time.Second

func newReplicator(st *State) *Replicator {
	return &Replicator{
		st:      st,
		streams: map[string]*replStream{},
		models:  map[string]*replModel{},
	}
}

// refresh reconciles the stream set with the current map: a stream per
// replica of this node, none for anyone else.
func (r *Replicator) refresh() {
	m := r.st.Map()
	want := map[string]string{} // replica id → addr
	if self := m.Node(r.st.Self()); self != nil && self.Role == RolePrimary {
		for _, rep := range m.ReplicasOf(self.ID) {
			want[rep.ID] = rep.Addr
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	for id, s := range r.streams {
		if addr, ok := want[id]; !ok || addr != s.addr {
			close(s.stop)
			delete(r.streams, id)
		}
	}
	for id, addr := range want {
		if _, ok := r.streams[id]; ok {
			continue
		}
		s := &replStream{
			addr: addr,
			ch:   make(chan replEvent, replQueueCap),
			stop: make(chan struct{}),
			done: make(chan struct{}),
		}
		r.streams[id] = s
		go r.run(s)
	}
}

// replicate copies one committed write and enqueues it on every stream.
func (r *Replicator) replicate(model string, dim int, kind byte, keys []uint64, vals []byte) {
	r.mu.Lock()
	if r.closed || len(r.streams) == 0 {
		r.mu.Unlock()
		return
	}
	rm := r.models[model]
	if rm == nil {
		rm = &replModel{dim: dim}
		r.models[model] = rm
	}
	targets := make([]*replStream, 0, len(r.streams))
	for _, s := range r.streams {
		targets = append(targets, s)
	}
	r.mu.Unlock()

	ev := replEvent{
		model: model,
		dim:   dim,
		kind:  kind,
		keys:  append([]uint64(nil), keys...),
		seq:   rm.head.Add(1),
		head:  &rm.head,
	}
	if kind == wire.ReplPut {
		ev.vals = append([]byte(nil), vals...)
	}
	for _, s := range targets {
		select {
		case s.ch <- ev:
		default:
			r.dropped.Add(1)
		}
	}
}

// run drains one replica's queue over a synchronous wire connection,
// reconnecting (and re-opening models) after transport failures. An
// application-level refusal drops the event — retrying a frame the replica
// rejects would wedge the stream forever.
func (r *Replicator) run(s *replStream) {
	defer close(s.done)
	var (
		rc      *rawConn
		handles map[string]uint32
		frame   []byte
	)
	defer func() {
		if rc != nil {
			rc.close()
		}
	}()
	reset := func() {
		if rc != nil {
			rc.close()
			rc = nil
		}
		handles = nil
	}
	for {
		var ev replEvent
		select {
		case <-s.stop:
			return
		case ev = <-s.ch:
		}
		for {
			if rc == nil {
				c, err := dialRaw(s.addr, replDialTimeout)
				if err != nil {
					select {
					case <-s.stop:
						return
					case <-time.After(replRedialDelay):
					}
					continue
				}
				rc = c
				handles = map[string]uint32{}
			}
			handle, ok := handles[ev.model]
			if !ok {
				h, err := r.openModel(rc, ev.model, ev.dim)
				if err != nil {
					if IsRemoteRefusal(err) {
						r.dropped.Add(1)
						break // this event is undeliverable; keep the stream alive
					}
					reset()
					continue
				}
				handle = h
				handles[ev.model] = handle
			}
			frame = wire.AppendReplWrite(frame[:0], handle, ev.seq, ev.head.Load(), ev.kind, ev.keys, ev.vals)
			if _, err := rc.roundTrip(wire.OpReplWrite, frame, replDialTimeout); err != nil {
				if IsRemoteRefusal(err) {
					r.dropped.Add(1)
					break
				}
				reset()
				continue
			}
			break
		}
	}
}

// openModel opens and attaches ev's model on the replica, returning its
// handle there (handles are per-server, not cluster-wide).
func (r *Replicator) openModel(rc *rawConn, model string, dim int) (uint32, error) {
	req, err := wire.EncodeOpen(model, dim, 0, wire.BoundUnset, "")
	if err != nil {
		return 0, err
	}
	p, err := rc.roundTrip(wire.OpOpen, req, replDialTimeout)
	if err != nil {
		return 0, err
	}
	handle, _, _, _, _, err := wire.DecodeOpenResp(p)
	if err != nil {
		return 0, err
	}
	if _, err := rc.roundTrip(wire.OpAttach, wire.EncodeHandle(handle), replDialTimeout); err != nil {
		return 0, err
	}
	return handle, nil
}

// close stops every stream and waits for the senders to exit.
func (r *Replicator) close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	streams := make([]*replStream, 0, len(r.streams))
	for _, s := range r.streams {
		streams = append(streams, s)
	}
	r.streams = map[string]*replStream{}
	r.mu.Unlock()
	for _, s := range streams {
		close(s.stop)
	}
	for _, s := range streams {
		<-s.done
	}
}
