package cluster

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// threeNodeMap builds a valid map: two primaries splitting the ring and
// one replica following n0.
func threeNodeMap(epoch uint64) *Map {
	return &Map{Epoch: epoch, Nodes: []Node{
		{ID: "n0", Addr: "127.0.0.1:1", Role: RolePrimary, Ranges: []Range{{Start: 0, End: math.MaxUint64 / 2}}},
		{ID: "n1", Addr: "127.0.0.1:2", Role: RolePrimary, Ranges: []Range{{Start: math.MaxUint64/2 + 1, End: math.MaxUint64}}},
		{ID: "n2", Addr: "127.0.0.1:3", Role: RoleReplica, PrimaryID: "n0"},
	}}
}

// TestSaveLoadRoundTrip pins the persistence format: what SaveMap writes,
// LoadMap returns bit-identically — self id, epoch, and full topology —
// and a re-save atomically replaces the previous file.
func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := threeNodeMap(7)
	if err := SaveMap(dir, "n2", m); err != nil {
		t.Fatalf("SaveMap: %v", err)
	}
	self, got, err := LoadMap(dir)
	if err != nil {
		t.Fatalf("LoadMap: %v", err)
	}
	if self != "n2" {
		t.Fatalf("self = %q, want n2", self)
	}
	if got.Epoch != 7 || len(got.Nodes) != 3 {
		t.Fatalf("loaded epoch=%d nodes=%d, want 7/3", got.Epoch, len(got.Nodes))
	}
	for i := range m.Nodes {
		w, g := m.Nodes[i], got.Nodes[i]
		if w.ID != g.ID || w.Addr != g.Addr || w.Role != g.Role || w.PrimaryID != g.PrimaryID {
			t.Fatalf("node %d round-tripped as %+v, want %+v", i, g, w)
		}
	}

	// Overwrite with a newer epoch: the rename must fully replace.
	if err := SaveMap(dir, "n2", threeNodeMap(9)); err != nil {
		t.Fatalf("re-SaveMap: %v", err)
	}
	if _, got, err = LoadMap(dir); err != nil || got.Epoch != 9 {
		t.Fatalf("after re-save: epoch=%d err=%v, want 9/nil", got.Epoch, err)
	}
}

// TestLoadMapMissing pins the sentinel: a dir with no saved map is
// ErrNoSavedMap (a normal fresh boot), not a generic I/O error.
func TestLoadMapMissing(t *testing.T) {
	if _, _, err := LoadMap(t.TempDir()); !errors.Is(err, ErrNoSavedMap) {
		t.Fatalf("LoadMap on empty dir = %v, want ErrNoSavedMap", err)
	}
}

// TestLoadMapRejectsCorruption truncates the saved file at every byte
// boundary and flips every byte in turn: no damaged variant may load —
// a half-written or bit-rotted map silently re-seeding a cluster is a
// split-brain generator.
func TestLoadMapRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	if err := SaveMap(dir, "n0", threeNodeMap(3)); err != nil {
		t.Fatalf("SaveMap: %v", err)
	}
	path := filepath.Join(dir, mapFileName)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut < len(good); cut++ {
		if err := os.WriteFile(path, good[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadMap(dir); err == nil || errors.Is(err, ErrNoSavedMap) {
			t.Fatalf("truncation at byte %d/%d loaded (err=%v), want refusal", cut, len(good), err)
		}
	}
	for i := 0; i < len(good); i++ {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0xff
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadMap(dir); err == nil {
			t.Fatalf("flipped byte %d/%d loaded, want refusal", i, len(good))
		}
	}

	// And the pristine bytes still load after all that abuse.
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadMap(dir); err != nil {
		t.Fatalf("pristine file refused: %v", err)
	}
}

// TestStatePersistsAdoptedMaps pins the write-through hook: once
// EnablePersistence is on, every map the state adopts (e.g. a newer epoch
// gossiped by a live peer superseding the stale on-disk one) lands on
// disk, so the next restart recovers the freshest topology this node saw.
func TestStatePersistsAdoptedMaps(t *testing.T) {
	dir := t.TempDir()
	st, err := NewState("n2", threeNodeMap(3))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.EnablePersistence(dir); err != nil {
		t.Fatalf("EnablePersistence: %v", err)
	}
	if _, got, err := LoadMap(dir); err != nil || got.Epoch != 3 {
		t.Fatalf("initial persist: epoch=%d err=%v, want 3/nil", got.Epoch, err)
	}

	if !st.Adopt(threeNodeMap(8)) {
		t.Fatal("Adopt of a newer epoch refused")
	}
	self, got, err := LoadMap(dir)
	if err != nil || self != "n2" || got.Epoch != 8 {
		t.Fatalf("after adopt: self=%q epoch=%d err=%v, want n2/8/nil", self, got.Epoch, err)
	}

	// A stale epoch must neither install nor clobber the file.
	if st.Adopt(threeNodeMap(5)) {
		t.Fatal("Adopt of a stale epoch accepted")
	}
	if _, got, _ := LoadMap(dir); got.Epoch != 8 {
		t.Fatalf("stale adopt clobbered the file: epoch=%d, want 8", got.Epoch)
	}
}
