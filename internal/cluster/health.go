package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/llm-db/mlkv-go/internal/wire"
)

// Failure detection and replica promotion — the part of the cluster that
// turns a dead machine into a latency blip instead of an outage.
//
// Every node runs a detector: one probe goroutine per peer sends a
// CLUSTERPING each Interval carrying a pingInfo (map epoch, replication
// watermark, and the peers the sender currently suspects); the reply
// carries the receiver's. Suspicion gossip therefore rides the heartbeats
// themselves — no extra rounds — and an *incoming* ping counts as proof
// of life, so a one-way partition (A cannot reach B, B can reach A) never
// builds mutual suspicion.
//
// The state machine per peer is alive → suspect → confirmed-dead:
//
//	alive ──(no ack for SuspectAfter)──▶ suspect
//	suspect ──(self + enough peers suspect: quorum)──▶ confirmed-dead
//	suspect/confirmed ──(any ack)──▶ alive
//	alive ──(CLUSTERLEAVE)──▶ confirmed-dead   (graceful: no timeout)
//
// Quorum is floor(N/2)+1 where N is the membership excluding the target,
// counting this node's own suspicion as one vote — so in a 3-node cluster
// a death needs both survivors to agree, and a node that only *I* cannot
// reach keeps serving. (A 2-node cluster degenerates to quorum 1: the
// lone survivor's own view decides, there is nobody to disagree.)
//
// When a confirmed-dead node is a primary, its most-caught-up live
// replica promotes itself: highest replication watermark wins, ties break
// to the lowest node ID, currently-suspect replicas do not count. The
// promotion is Map.Promote (ranges move wholesale, dead primary kept
// demoted), installed through the ordinary Adopt path — epoch bump, map
// persisted, replication streams refreshed — and gossiped to every live
// peer; clients learn it from the next NOT_OWNER redirect. Epoch mismatch
// seen in any ping triggers a PushMap anti-entropy exchange, which is
// also how a rejoining stale primary discovers its own demotion.

// Detector defaults, used when HealthConfig leaves fields zero.
const (
	defaultPingInterval = 500 * time.Millisecond
	defaultSuspectAfter = 2 * time.Second
)

// HealthConfig tunes a node's failure detector.
type HealthConfig struct {
	// Interval between heartbeats to each peer (default 500ms).
	Interval time.Duration
	// SuspectAfter is how long a peer may go unheard before this node
	// suspects it (default 2s; must comfortably exceed Interval).
	SuspectAfter time.Duration
	// Watermark reports this node's replication watermark — the
	// contiguously applied write sequence — gossiped in pings so peers can
	// pick the most-caught-up replica at promotion time. Nil reads as 0.
	Watermark func() uint64
	// Logf reports detector transitions (suspicion, confirmation,
	// promotion); nil discards them.
	Logf func(format string, args ...any)
}

// pingInfo is the CLUSTERPING payload, identical in both directions.
type pingInfo struct {
	From      string   // sender's node id
	Epoch     uint64   // sender's map epoch (anti-entropy trigger)
	Watermark uint64   // sender's replication watermark
	Suspects  []string // peers the sender currently suspects
}

// encodePingInfo serializes p:
//
//	uint64 epoch | uint64 watermark | uint16 from len | from |
//	uint16 suspect count | count × (uint16 len | id)
func encodePingInfo(p pingInfo) []byte {
	n := 8 + 8 + 2 + len(p.From) + 2
	for _, s := range p.Suspects {
		n += 2 + len(s)
	}
	out := make([]byte, 0, n)
	out = binary.LittleEndian.AppendUint64(out, p.Epoch)
	out = binary.LittleEndian.AppendUint64(out, p.Watermark)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(p.From)))
	out = append(out, p.From...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(p.Suspects)))
	for _, s := range p.Suspects {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(s)))
		out = append(out, s...)
	}
	return out
}

// decodePingInfo parses a CLUSTERPING payload, applying the same topology
// caps as the map codec so a hostile frame cannot force a giant allocation.
func decodePingInfo(p []byte) (pingInfo, error) {
	if len(p) < 18 {
		return pingInfo{}, fmt.Errorf("%w: ping wants >= 18 bytes, got %d", wire.ErrShortPayload, len(p))
	}
	info := pingInfo{
		Epoch:     binary.LittleEndian.Uint64(p),
		Watermark: binary.LittleEndian.Uint64(p[8:]),
	}
	rest := p[16:]
	var err error
	if info.From, rest, err = decodeString(rest, "ping sender", MaxNodeID); err != nil {
		return pingInfo{}, err
	}
	if info.From == "" {
		return pingInfo{}, errors.New("cluster: ping names no sender")
	}
	if len(rest) < 2 {
		return pingInfo{}, fmt.Errorf("%w: ping suspect count wants 2 bytes, got %d", wire.ErrShortPayload, len(rest))
	}
	count := int(binary.LittleEndian.Uint16(rest))
	rest = rest[2:]
	if count > MaxNodes {
		return pingInfo{}, fmt.Errorf("cluster: ping with %d suspects exceeds limit %d", count, MaxNodes)
	}
	for i := 0; i < count; i++ {
		var s string
		if s, rest, err = decodeString(rest, "ping suspect", MaxNodeID); err != nil {
			return pingInfo{}, err
		}
		info.Suspects = append(info.Suspects, s)
	}
	if len(rest) != 0 {
		return pingInfo{}, fmt.Errorf("%w: ping carries %d trailing bytes", wire.ErrShortPayload, len(rest))
	}
	return info, nil
}

// encodeLeave serializes a CLUSTERLEAVE payload: the departing node's id.
func encodeLeave(id string) []byte {
	out := make([]byte, 0, 2+len(id))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(id)))
	return append(out, id...)
}

// decodeLeave parses a CLUSTERLEAVE payload.
func decodeLeave(p []byte) (string, error) {
	id, rest, err := decodeString(p, "leave", MaxNodeID)
	if err != nil {
		return "", err
	}
	if id == "" {
		return "", errors.New("cluster: leave names no node")
	}
	if len(rest) != 0 {
		return "", fmt.Errorf("%w: leave carries %d trailing bytes", wire.ErrShortPayload, len(rest))
	}
	return id, nil
}

// peerHealth is everything the detector knows about one peer.
type peerHealth struct {
	lastAck   time.Time       // last proof of life (ack or incoming ping)
	epoch     uint64          // peer's last gossiped map epoch
	watermark uint64          // peer's last gossiped replication watermark
	suspects  map[string]bool // who the peer last said it suspects
	left      bool            // peer announced a graceful departure
	dead      bool            // confirmed dead and acted upon
}

// probe is one peer's heartbeat goroutine.
type probe struct {
	id, addr string
	stop     chan struct{}
	done     chan struct{}
}

// detector is a node's failure detector: probes, peer knowledge, and the
// evaluation loop that turns suspicion into confirmed deaths and deaths
// into promotions.
type detector struct {
	st  *State
	cfg HealthConfig

	mu     sync.Mutex
	probes map[string]*probe
	peers  map[string]*peerHealth
	closed bool

	kickCh chan struct{} // nudges the evaluator (leave frames, tests)
	stopCh chan struct{}
	doneCh chan struct{}

	confirmedDeaths atomic.Int64
	promotions      atomic.Int64
}

func newDetector(st *State, cfg HealthConfig) *detector {
	if cfg.Interval <= 0 {
		cfg.Interval = defaultPingInterval
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = defaultSuspectAfter
	}
	if cfg.SuspectAfter < 2*cfg.Interval {
		cfg.SuspectAfter = 2 * cfg.Interval
	}
	return &detector{
		st:     st,
		cfg:    cfg,
		probes: map[string]*probe{},
		peers:  map[string]*peerHealth{},
		kickCh: make(chan struct{}, 1),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
}

func (d *detector) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

func (d *detector) watermark() uint64 {
	if d.cfg.Watermark != nil {
		return d.cfg.Watermark()
	}
	return 0
}

// pingTimeout bounds one heartbeat round trip: half the suspicion window
// (so one stuck ping cannot eat the whole budget), capped at a second.
func (d *detector) pingTimeout() time.Duration {
	t := d.cfg.SuspectAfter / 2
	if t > time.Second {
		t = time.Second
	}
	if t <= 0 {
		t = time.Second
	}
	return t
}

func (d *detector) start() {
	go d.evalLoop()
	d.refresh()
}

// refresh reconciles probe goroutines with the current map — the same
// shape as Replicator.refresh: stop probes for departed peers, start
// probes for new ones, restart probes whose peer changed address.
func (d *detector) refresh() {
	m := d.st.Map()
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	want := map[string]string{}
	for i := range m.Nodes {
		if m.Nodes[i].ID != d.st.self {
			want[m.Nodes[i].ID] = m.Nodes[i].Addr
		}
	}
	var stopped []*probe
	for id, p := range d.probes {
		if addr, ok := want[id]; !ok || addr != p.addr {
			stopped = append(stopped, p)
			delete(d.probes, id)
		}
	}
	for id, addr := range want {
		if _, ok := d.probes[id]; ok {
			continue
		}
		p := &probe{id: id, addr: addr, stop: make(chan struct{}), done: make(chan struct{})}
		d.probes[id] = p
		if d.peers[id] == nil {
			// The grace period: a just-learned peer starts fully alive, so
			// SuspectAfter of genuine silence must pass before suspicion.
			d.peers[id] = &peerHealth{lastAck: time.Now()}
		}
		go d.probeLoop(p)
	}
	d.mu.Unlock()
	for _, p := range stopped {
		close(p.stop)
		<-p.done
	}
}

func (d *detector) close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	probes := make([]*probe, 0, len(d.probes))
	for _, p := range d.probes {
		probes = append(probes, p)
	}
	d.probes = map[string]*probe{}
	d.mu.Unlock()
	close(d.stopCh)
	for _, p := range probes {
		close(p.stop)
		<-p.done
	}
	<-d.doneCh
}

// probeLoop heartbeats one peer until stopped, holding one cached raw
// connection that is dropped and redialed on any transport error.
func (d *detector) probeLoop(p *probe) {
	defer close(p.done)
	var rc *rawConn
	defer func() {
		if rc != nil {
			rc.close()
		}
	}()
	t := time.NewTicker(d.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
		rc = d.pingOnce(p, rc)
	}
}

// pingOnce sends one heartbeat to p, returning the (possibly fresh,
// possibly dropped) cached connection.
func (d *detector) pingOnce(p *probe, rc *rawConn) *rawConn {
	timeout := d.pingTimeout()
	if rc == nil {
		c, err := dialRaw(p.addr, timeout)
		if err != nil {
			return nil // unreachable; suspicion accrues from silence
		}
		rc = c
	}
	payload, err := rc.roundTrip(wire.OpClusterPing, encodePingInfo(d.selfInfo()), timeout)
	if err != nil {
		if IsRemoteRefusal(err) {
			// The peer answered — it is alive — it just runs no detector
			// (older build, or health disabled). Count the ack, learn nothing.
			d.recordAck(p.id, nil)
			return rc
		}
		rc.close()
		return nil
	}
	info, err := decodePingInfo(payload)
	if err != nil {
		rc.close()
		return nil
	}
	d.recordAck(p.id, &info)
	// Anti-entropy: any epoch disagreement triggers a full map exchange.
	// This is how promotion gossip reaches a partitioned-then-healed node
	// and how a rejoining stale primary learns it was demoted.
	if cur := d.st.Map(); info.Epoch != cur.Epoch {
		if got, err := PushMap(p.addr, cur, timeout); err == nil {
			d.st.Adopt(got)
		}
	}
	return rc
}

// selfInfo builds this node's half of a ping exchange.
func (d *detector) selfInfo() pingInfo {
	return pingInfo{
		From:      d.st.self,
		Epoch:     d.st.Map().Epoch,
		Watermark: d.watermark(),
		Suspects:  d.currentSuspects(),
	}
}

// currentSuspects lists the peers this node cannot currently vouch for.
func (d *detector) currentSuspects() []string {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for id, ph := range d.peers {
		if ph.left || now.Sub(ph.lastAck) > d.cfg.SuspectAfter {
			out = append(out, id)
		}
	}
	return out
}

// recordAck marks a peer alive (a ping ack, or an incoming ping — both
// prove life) and absorbs its gossiped state. A peer heard from again
// after confirmation or a leave is back: tombstones clear.
func (d *detector) recordAck(id string, info *pingInfo) {
	d.mu.Lock()
	ph := d.peers[id]
	if ph == nil {
		ph = &peerHealth{}
		d.peers[id] = ph
	}
	wasDead := ph.dead
	ph.lastAck = time.Now()
	ph.left = false
	ph.dead = false
	if info != nil {
		ph.epoch = info.Epoch
		ph.watermark = info.Watermark
		ph.suspects = make(map[string]bool, len(info.Suspects))
		for _, s := range info.Suspects {
			ph.suspects[s] = true
		}
	}
	d.mu.Unlock()
	if wasDead {
		d.logf("cluster: node %s is back", id)
	}
}

// handlePing services an incoming CLUSTERPING (server dispatch).
func (d *detector) handlePing(payload []byte) ([]byte, error) {
	info, err := decodePingInfo(payload)
	if err != nil {
		return nil, err
	}
	d.recordAck(info.From, &info)
	return encodePingInfo(d.selfInfo()), nil
}

// handleLeave services an incoming CLUSTERLEAVE: the named node is
// treated as confirmed-dead right away — a planned restart should not
// cost a suspicion timeout.
func (d *detector) handleLeave(payload []byte) error {
	id, err := decodeLeave(payload)
	if err != nil {
		return err
	}
	if id == d.st.self {
		return errors.New("cluster: refusing own leave announcement")
	}
	d.mu.Lock()
	ph := d.peers[id]
	if ph == nil {
		ph = &peerHealth{}
		d.peers[id] = ph
	}
	ph.left = true
	d.mu.Unlock()
	d.logf("cluster: node %s announced departure", id)
	d.kick()
	return nil
}

// kick nudges the evaluator without waiting for its ticker.
func (d *detector) kick() {
	select {
	case d.kickCh <- struct{}{}:
	default:
	}
}

// evalLoop periodically turns accumulated evidence into decisions.
func (d *detector) evalLoop() {
	defer close(d.doneCh)
	t := time.NewTicker(d.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-d.stopCh:
			return
		case <-t.C:
		case <-d.kickCh:
		}
		d.evaluate()
	}
}

// evaluate runs the suspicion → confirmed-dead transition for every peer
// and drives promotion for confirmed-dead primaries.
func (d *detector) evaluate() {
	m := d.st.Map()
	now := time.Now()
	quorum := (len(m.Nodes)-1)/2 + 1
	var deadPrimaries []string
	d.mu.Lock()
	for i := range m.Nodes {
		n := &m.Nodes[i]
		if n.ID == d.st.self {
			continue
		}
		ph := d.peers[n.ID]
		if ph == nil || ph.dead {
			continue
		}
		suspect := ph.left || now.Sub(ph.lastAck) > d.cfg.SuspectAfter
		if !suspect {
			continue
		}
		confirmed := ph.left
		if !confirmed {
			votes := 1 // this node's own suspicion
			for pid, other := range d.peers {
				if pid == n.ID || now.Sub(other.lastAck) > d.cfg.SuspectAfter {
					continue // only live peers vote
				}
				if other.suspects[n.ID] {
					votes++
				}
			}
			confirmed = votes >= quorum
		}
		if !confirmed {
			continue
		}
		ph.dead = true
		d.confirmedDeaths.Add(1)
		d.logf("cluster: node %s confirmed dead (left=%v)", n.ID, ph.left)
		if n.Role == RolePrimary {
			deadPrimaries = append(deadPrimaries, n.ID)
		}
	}
	d.mu.Unlock()
	for _, id := range deadPrimaries {
		d.maybePromote(m, id)
	}
}

// maybePromote promotes this node over the confirmed-dead primary deadID
// if this node is its most-caught-up live replica. Every surviving
// replica runs the same deterministic rule (watermark, then lowest ID) on
// gossiped watermarks, so with settled gossip exactly one volunteers.
func (d *detector) maybePromote(m *Map, deadID string) {
	self := m.Node(d.st.self)
	if self == nil || self.Role != RoleReplica || self.PrimaryID != deadID {
		return
	}
	myWM := d.watermark()
	now := time.Now()
	d.mu.Lock()
	best := true
	for _, r := range m.ReplicasOf(deadID) {
		if r.ID == d.st.self {
			continue
		}
		ph := d.peers[r.ID]
		if ph == nil || ph.left || ph.dead || now.Sub(ph.lastAck) > d.cfg.SuspectAfter {
			continue // a replica we cannot vouch for does not outrank us
		}
		if ph.watermark > myWM || (ph.watermark == myWM && r.ID < d.st.self) {
			best = false
			break
		}
	}
	d.mu.Unlock()
	if !best {
		return
	}
	promoted, err := m.Promote(deadID, d.st.self)
	if err != nil {
		d.logf("cluster: promotion over %s failed: %v", deadID, err)
		return
	}
	if !d.st.Adopt(promoted) {
		return // someone installed a newer map first; defer to it
	}
	d.promotions.Add(1)
	d.logf("cluster: promoted self over dead primary %s at epoch %d (watermark %d)",
		deadID, promoted.Epoch, myWM)
	// Gossip the promotion to every live peer so clients heal on their
	// next NOT_OWNER instead of waiting for anti-entropy.
	cur := d.st.Map()
	timeout := d.pingTimeout()
	for i := range cur.Nodes {
		n := cur.Nodes[i]
		if n.ID == d.st.self || n.ID == deadID {
			continue
		}
		go func(addr string) {
			if got, err := PushMap(addr, cur, timeout); err == nil {
				d.st.Adopt(got)
			}
		}(n.Addr)
	}
}

// AnnounceLeave tells every other member of m that self is shutting down
// gracefully, so peers skip the suspicion timeout. Best effort: an
// unreachable peer will fall back to detecting the death the slow way.
func AnnounceLeave(m *Map, self string, timeout time.Duration) {
	payload := encodeLeave(self)
	for i := range m.Nodes {
		n := m.Nodes[i]
		if n.ID == self {
			continue
		}
		rc, err := dialRaw(n.Addr, timeout)
		if err != nil {
			continue
		}
		_, _ = rc.roundTrip(wire.OpClusterLeave, payload, timeout)
		rc.close()
	}
}
