// Package train implements the training pipelines of the paper's
// evaluation: synchronous (BSP), bounded-staleness (SSP), and fully
// asynchronous (ASP) out-of-core training of DLRM, KGE, and GNN models over
// pluggable embedding backends (MLKV, plain FASTER, LSM, B+tree, sharded
// memory), with per-stage time instrumentation (embedding access, forward,
// backward) and periodic quality evaluation — everything needed to
// regenerate Figures 2 and 6–11.
package train

import (
	"sync"

	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/util"
)

// Backend abstracts an embedding store for the trainers.
type Backend interface {
	// Name identifies the engine in results.
	Name() string
	// NewHandle returns a per-worker handle.
	NewHandle() (Handle, error)
	// Dim is the embedding dimension.
	Dim() int
}

// Handle is one worker's embedding-store handle.
type Handle interface {
	// Get reads (initializing on first touch) under the engine's
	// consistency protocol.
	Get(key uint64, dst []float32) error
	// Put writes an updated embedding.
	Put(key uint64, val []float32) error
	// Peek reads without consistency effects (evaluation). Missing keys
	// leave dst zeroed and return false.
	Peek(key uint64, dst []float32) (bool, error)
	// Lookahead hints that keys will be read soon (best-effort, async).
	Lookahead(keys []uint64)
	// Close releases the handle.
	Close()
}

// --- MLKV / FASTER backend (core.Table) ---

// TableBackend adapts a core.Table. With StalenessBound disabled it *is*
// the plain-FASTER baseline; with a bound it is MLKV.
type TableBackend struct {
	T            *Table
	UseLookahead bool
}

// Table aliases core.Table for brevity in this package.
type Table = core.Table

// NewTableBackend wraps a table. useLookahead enables DestStorageBuffer
// prefetching for Lookahead calls (MLKV); when false Lookahead is a no-op
// (plain FASTER, which has no such interface).
func NewTableBackend(t *core.Table, useLookahead bool) *TableBackend {
	return &TableBackend{T: t, UseLookahead: useLookahead}
}

// Name identifies the engine.
func (b *TableBackend) Name() string {
	if b.T.Store().StalenessBound() >= 0 {
		return "mlkv"
	}
	return "faster"
}

// Dim returns the embedding dimension.
func (b *TableBackend) Dim() int { return b.T.Dim() }

// NewHandle registers a session.
func (b *TableBackend) NewHandle() (Handle, error) {
	s, err := b.T.NewSession()
	if err != nil {
		return nil, err
	}
	return &tableHandle{b: b, s: s}, nil
}

type tableHandle struct {
	b *TableBackend
	s *core.Session
}

func (h *tableHandle) Get(key uint64, dst []float32) error { return h.s.Get(key, dst) }
func (h *tableHandle) Put(key uint64, val []float32) error { return h.s.Put(key, val) }
func (h *tableHandle) Peek(key uint64, dst []float32) (bool, error) {
	return h.s.Peek(key, dst)
}
func (h *tableHandle) Lookahead(keys []uint64) {
	if h.b.UseLookahead {
		h.s.Lookahead(keys, core.DestStorageBuffer, nil)
	}
}
func (h *tableHandle) Close() { h.s.Close() }

// --- kv.Store backend (LSM, B+tree) ---

// KVBackend adapts a byte-interface kv.Store, adding float32 conversion
// and first-touch initialization on the application side — exactly how the
// paper's "framework + RocksDB/WiredTiger" integrations offload embeddings.
type KVBackend struct {
	S    kv.Store
	DimN int
	Init core.Initializer
}

// NewKVBackend wraps a store.
func NewKVBackend(s kv.Store, dim int, init core.Initializer) *KVBackend {
	return &KVBackend{S: s, DimN: dim, Init: init}
}

// Name identifies the engine.
func (b *KVBackend) Name() string { return b.S.Name() }

// Dim returns the embedding dimension.
func (b *KVBackend) Dim() int { return b.DimN }

// NewHandle returns a session adapter.
func (b *KVBackend) NewHandle() (Handle, error) {
	s, err := b.S.NewSession()
	if err != nil {
		return nil, err
	}
	return &kvHandle{b: b, s: s, buf: make([]byte, b.DimN*4)}, nil
}

type kvHandle struct {
	b   *KVBackend
	s   kv.Session
	buf []byte
}

func (h *kvHandle) Get(key uint64, dst []float32) error {
	found, err := h.s.Get(key, h.buf)
	if err != nil {
		return err
	}
	if !found {
		if h.b.Init != nil {
			h.b.Init(key, dst)
		} else {
			for i := range dst {
				dst[i] = 0
			}
		}
		floats32ToBytes(dst, h.buf)
		return h.s.Put(key, h.buf)
	}
	bytesToFloats32(h.buf, dst)
	return nil
}

func (h *kvHandle) Put(key uint64, val []float32) error {
	floats32ToBytes(val, h.buf)
	return h.s.Put(key, h.buf)
}

func (h *kvHandle) Peek(key uint64, dst []float32) (bool, error) {
	found, err := h.s.Get(key, h.buf)
	if found {
		bytesToFloats32(h.buf, dst)
	}
	return found, err
}

func (h *kvHandle) Lookahead(keys []uint64) {
	for _, k := range keys {
		h.s.Prefetch(k)
	}
}

func (h *kvHandle) Close() { h.s.Close() }

// --- sharded in-memory backend ---

// MemBackend is a sharded in-memory embedding store: the stand-in both for
// specialized frameworks' proprietary in-memory storage (Figure 6's
// baselines) and for DGL-DDP's two-instance RAM deployment (Figure 11a).
type MemBackend struct {
	NameStr string
	DimN    int
	Init    core.Initializer
	shards  []memShard
	mask    uint64
}

type memShard struct {
	mu sync.RWMutex
	m  map[uint64][]float32
}

// NewMemBackend builds an in-memory backend with 64 shards.
func NewMemBackend(name string, dim int, init core.Initializer) *MemBackend {
	const n = 64
	b := &MemBackend{NameStr: name, DimN: dim, Init: init, shards: make([]memShard, n), mask: n - 1}
	for i := range b.shards {
		b.shards[i].m = make(map[uint64][]float32)
	}
	return b
}

// Name identifies the engine.
func (b *MemBackend) Name() string { return b.NameStr }

// Dim returns the embedding dimension.
func (b *MemBackend) Dim() int { return b.DimN }

// NewHandle returns a handle (the backend is internally synchronized).
func (b *MemBackend) NewHandle() (Handle, error) { return &memHandle{b: b}, nil }

type memHandle struct{ b *MemBackend }

func (h *memHandle) Get(key uint64, dst []float32) error {
	sh := &h.b.shards[util.Mix64(key)&h.b.mask]
	sh.mu.RLock()
	v, ok := sh.m[key]
	if ok {
		copy(dst, v)
		sh.mu.RUnlock()
		return nil
	}
	sh.mu.RUnlock()
	if h.b.Init != nil {
		h.b.Init(key, dst)
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	sh.mu.Lock()
	if v, ok := sh.m[key]; ok {
		copy(dst, v)
	} else {
		sh.m[key] = append([]float32(nil), dst...)
	}
	sh.mu.Unlock()
	return nil
}

func (h *memHandle) Put(key uint64, val []float32) error {
	sh := &h.b.shards[util.Mix64(key)&h.b.mask]
	sh.mu.Lock()
	if v, ok := sh.m[key]; ok {
		copy(v, val)
	} else {
		sh.m[key] = append([]float32(nil), val...)
	}
	sh.mu.Unlock()
	return nil
}

func (h *memHandle) Peek(key uint64, dst []float32) (bool, error) {
	sh := &h.b.shards[util.Mix64(key)&h.b.mask]
	sh.mu.RLock()
	v, ok := sh.m[key]
	if ok {
		copy(dst, v)
	}
	sh.mu.RUnlock()
	return ok, nil
}

func (h *memHandle) Lookahead([]uint64) {}
func (h *memHandle) Close()             {}

func bytesToFloats32(src []byte, dst []float32) {
	for i := range dst {
		bits := uint32(src[i*4]) | uint32(src[i*4+1])<<8 | uint32(src[i*4+2])<<16 | uint32(src[i*4+3])<<24
		dst[i] = f32frombits(bits)
	}
}

func floats32ToBytes(src []float32, dst []byte) {
	for i, v := range src {
		bits := f32bits(v)
		dst[i*4] = byte(bits)
		dst[i*4+1] = byte(bits >> 8)
		dst[i*4+2] = byte(bits >> 16)
		dst[i*4+3] = byte(bits >> 24)
	}
}
