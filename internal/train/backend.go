// Package train implements the training pipelines of the paper's
// evaluation: synchronous (BSP), bounded-staleness (SSP), and fully
// asynchronous (ASP) out-of-core training of DLRM, KGE, and GNN models over
// pluggable embedding backends (MLKV, plain FASTER, LSM, B+tree, sharded
// memory, or a remote mlkv-server), with per-stage time instrumentation
// (embedding access, forward, backward) and periodic quality evaluation —
// everything needed to regenerate Figures 2 and 6–11.
//
// All three trainers access storage through the batched gather/scatter
// path (gather.go): the minibatch's keys are deduplicated and sorted, one
// GetBatch fetches every unique embedding, gradients accumulate per unique
// key, and one PutBatch writes everything back — so the vector-clock
// protocol applies to each unique key exactly once per step, and a remote
// backend pays two framed round trips per step instead of two per key.
package train

import (
	"fmt"
	"sync"

	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/tensor"
	"github.com/llm-db/mlkv-go/internal/util"
)

// Backend abstracts an embedding store for the trainers.
type Backend interface {
	// Name identifies the engine in results.
	Name() string
	// NewHandle returns a per-worker handle.
	NewHandle() (Handle, error)
	// Dim is the embedding dimension.
	Dim() int
}

// Handle is one worker's embedding-store handle.
//
// Clock discipline: under a bounded-staleness backend a Get (or a key's
// slot in a GetBatch) acquires a staleness token that only the matching
// Put releases, so every key read by Get/GetBatch must be written back by
// exactly one Put/PutBatch before the step ends. Batch calls that may
// block (any finite bound) additionally require unique keys in ascending
// order, which keeps the cross-worker wait graph acyclic; the gather
// helper enforces both invariants for the trainers.
type Handle interface {
	// Get reads (initializing on first touch) under the engine's
	// consistency protocol.
	Get(key uint64, dst []float32) error
	// GetBatch reads len(keys) embeddings into dst (len(keys)*Dim),
	// initializing missing keys on first touch, as one batched storage
	// call where the engine has one.
	GetBatch(keys []uint64, dst []float32) error
	// Put writes an updated embedding.
	Put(key uint64, val []float32) error
	// PutBatch writes len(keys) embeddings from vals (len(keys)*Dim) as
	// one batched storage call where the engine has one.
	PutBatch(keys []uint64, vals []float32) error
	// Peek reads without consistency effects (evaluation). Missing keys
	// leave dst zeroed and return false.
	Peek(key uint64, dst []float32) (bool, error)
	// Lookahead hints that keys will be read soon (best-effort, async).
	Lookahead(keys []uint64)
	// Close releases the handle.
	Close()
}

// --- MLKV / FASTER backend (core.Table) ---

// TableBackend adapts a core.Table. With StalenessBound disabled it *is*
// the plain-FASTER baseline; with a bound it is MLKV.
type TableBackend struct {
	T            *Table
	UseLookahead bool
}

// Table aliases core.Table for brevity in this package.
type Table = core.Table

// NewTableBackend wraps a table. useLookahead enables DestStorageBuffer
// prefetching for Lookahead calls (MLKV); when false Lookahead is a no-op
// (plain FASTER, which has no such interface).
func NewTableBackend(t *core.Table, useLookahead bool) *TableBackend {
	return &TableBackend{T: t, UseLookahead: useLookahead}
}

// Name identifies the engine.
func (b *TableBackend) Name() string {
	if b.T.Store().StalenessBound() >= 0 {
		return "mlkv"
	}
	return "faster"
}

// Dim returns the embedding dimension.
func (b *TableBackend) Dim() int { return b.T.Dim() }

// NewHandle registers a session.
func (b *TableBackend) NewHandle() (Handle, error) {
	s, err := b.T.NewSession()
	if err != nil {
		return nil, err
	}
	return &tableHandle{b: b, s: s}, nil
}

type tableHandle struct {
	b *TableBackend
	s *core.Session
}

func (h *tableHandle) Get(key uint64, dst []float32) error { return h.s.Get(key, dst) }
func (h *tableHandle) GetBatch(keys []uint64, dst []float32) error {
	return h.s.GetBatch(keys, dst)
}
func (h *tableHandle) Put(key uint64, val []float32) error { return h.s.Put(key, val) }
func (h *tableHandle) PutBatch(keys []uint64, vals []float32) error {
	return h.s.PutBatch(keys, vals)
}
func (h *tableHandle) Peek(key uint64, dst []float32) (bool, error) {
	return h.s.Peek(key, dst)
}
func (h *tableHandle) Lookahead(keys []uint64) {
	if h.b.UseLookahead {
		h.s.Lookahead(keys, core.DestStorageBuffer, nil)
	}
}
func (h *tableHandle) Close() { h.s.Close() }

// --- kv.Store backend (LSM, B+tree, remote) ---

// KVBackend adapts a byte-interface kv.Store, adding float32 conversion
// and first-touch initialization on the application side — exactly how the
// paper's "framework + RocksDB/WiredTiger" integrations offload embeddings.
type KVBackend struct {
	S    kv.Store
	DimN int
	Init core.Initializer
}

// NewKVBackend wraps a store.
func NewKVBackend(s kv.Store, dim int, init core.Initializer) *KVBackend {
	return &KVBackend{S: s, DimN: dim, Init: init}
}

// Name identifies the engine.
func (b *KVBackend) Name() string { return b.S.Name() }

// Dim returns the embedding dimension.
func (b *KVBackend) Dim() int { return b.DimN }

// NewHandle returns a session adapter.
func (b *KVBackend) NewHandle() (Handle, error) {
	s, err := b.S.NewSession()
	if err != nil {
		return nil, err
	}
	return &kvHandle{b: b, s: s, buf: make([]byte, b.DimN*4)}, nil
}

type kvHandle struct {
	b   *KVBackend
	s   kv.Session
	buf []byte // one value, scalar-path staging

	// Batch-path scratch, grown on demand and reused across steps.
	bbuf     []byte
	found    []bool
	missKeys []uint64
	missVals []byte
}

func (h *kvHandle) initInto(key uint64, dst []float32) {
	if h.b.Init != nil {
		h.b.Init(key, dst)
		return
	}
	zero32(dst)
}

func (h *kvHandle) Get(key uint64, dst []float32) error {
	found, err := h.s.Get(key, h.buf)
	if err != nil {
		return err
	}
	if !found {
		h.initInto(key, dst)
		tensor.F32sToBytes(dst, h.buf)
		return h.s.Put(key, h.buf)
	}
	tensor.BytesToF32s(h.buf, dst)
	return nil
}

// GetBatch issues one batched read, then initializes and writes back the
// missing keys with one batched write — the first-touch protocol of the
// scalar path, paid once per step instead of once per key.
func (h *kvHandle) GetBatch(keys []uint64, dst []float32) error {
	dim := h.b.DimN
	if len(dst) != len(keys)*dim {
		return fmt.Errorf("train: dst length %d != %d keys × dim %d", len(dst), len(keys), dim)
	}
	vs := dim * 4
	h.bbuf = grow(h.bbuf, len(keys)*vs)
	h.found = grow(h.found, len(keys))
	if err := kv.SessionGetBatch(h.s, vs, keys, h.bbuf, h.found); err != nil {
		return err
	}
	h.missKeys = h.missKeys[:0]
	h.missVals = h.missVals[:0]
	for i, ok := range h.found {
		seg := dst[i*dim : (i+1)*dim]
		if ok {
			tensor.BytesToF32s(h.bbuf[i*vs:], seg)
			continue
		}
		h.initInto(keys[i], seg)
		h.missKeys = append(h.missKeys, keys[i])
		n := len(h.missVals)
		h.missVals = append(h.missVals, make([]byte, vs)...)
		tensor.F32sToBytes(seg, h.missVals[n:])
	}
	if len(h.missKeys) == 0 {
		return nil
	}
	return kv.SessionPutBatch(h.s, vs, h.missKeys, h.missVals)
}

func (h *kvHandle) Put(key uint64, val []float32) error {
	tensor.F32sToBytes(val, h.buf)
	return h.s.Put(key, h.buf)
}

func (h *kvHandle) PutBatch(keys []uint64, vals []float32) error {
	dim := h.b.DimN
	if len(vals) != len(keys)*dim {
		return fmt.Errorf("train: vals length %d != %d keys × dim %d", len(vals), len(keys), dim)
	}
	vs := dim * 4
	h.bbuf = grow(h.bbuf, len(keys)*vs)
	tensor.F32sToBytes(vals, h.bbuf)
	return kv.SessionPutBatch(h.s, vs, keys, h.bbuf[:len(keys)*vs])
}

func (h *kvHandle) Peek(key uint64, dst []float32) (bool, error) {
	found, err := kv.SessionPeek(h.s, key, h.buf)
	if found {
		tensor.BytesToF32s(h.buf, dst)
	}
	return found, err
}

// Lookahead ships the whole key list as one batched call when the session
// supports it (one LOOKAHEAD frame on the network client) instead of one
// Prefetch per key.
func (h *kvHandle) Lookahead(keys []uint64) {
	kv.SessionLookahead(h.s, keys)
}

func (h *kvHandle) Close() { h.s.Close() }

// grow resizes a reusable scratch slice to n elements without preserving
// contents (callers overwrite the whole slice).
func grow[T any](b []T, n int) []T {
	if cap(b) < n {
		return make([]T, n)
	}
	return b[:n]
}

// --- sharded in-memory backend ---

// MemBackend is a sharded in-memory embedding store: the stand-in both for
// specialized frameworks' proprietary in-memory storage (Figure 6's
// baselines) and for DGL-DDP's two-instance RAM deployment (Figure 11a).
type MemBackend struct {
	NameStr string
	DimN    int
	Init    core.Initializer
	shards  []memShard
	mask    uint64
}

type memShard struct {
	mu sync.RWMutex
	m  map[uint64][]float32
}

// NewMemBackend builds an in-memory backend with 64 shards.
func NewMemBackend(name string, dim int, init core.Initializer) *MemBackend {
	const n = 64
	b := &MemBackend{NameStr: name, DimN: dim, Init: init, shards: make([]memShard, n), mask: n - 1}
	for i := range b.shards {
		b.shards[i].m = make(map[uint64][]float32)
	}
	return b
}

// Name identifies the engine.
func (b *MemBackend) Name() string { return b.NameStr }

// Dim returns the embedding dimension.
func (b *MemBackend) Dim() int { return b.DimN }

// NewHandle returns a handle (the backend is internally synchronized).
func (b *MemBackend) NewHandle() (Handle, error) {
	return &memHandle{b: b, groups: make([][]int, len(b.shards))}, nil
}

type memHandle struct {
	b      *MemBackend
	groups [][]int // reusable per-shard index groups for batches
	miss   []int   // reusable per-shard miss list
}

func (b *MemBackend) shardOf(key uint64) int { return int(util.Mix64(key) & b.mask) }

func (h *memHandle) Get(key uint64, dst []float32) error {
	sh := &h.b.shards[h.b.shardOf(key)]
	sh.mu.RLock()
	v, ok := sh.m[key]
	if ok {
		copy(dst, v)
		sh.mu.RUnlock()
		return nil
	}
	sh.mu.RUnlock()
	if h.b.Init != nil {
		h.b.Init(key, dst)
	} else {
		zero32(dst)
	}
	sh.mu.Lock()
	if v, ok := sh.m[key]; ok {
		copy(dst, v)
	} else {
		sh.m[key] = append([]float32(nil), dst...)
	}
	sh.mu.Unlock()
	return nil
}

// GetBatch groups the batch's keys by shard and takes each shard lock once
// per group instead of once per key; misses are initialized outside the
// lock and inserted under one write lock per shard.
func (h *memHandle) GetBatch(keys []uint64, dst []float32) error {
	dim := h.b.DimN
	if len(dst) != len(keys)*dim {
		return fmt.Errorf("train: dst length %d != %d keys × dim %d", len(dst), len(keys), dim)
	}
	for sh, idxs := range h.groupByShard(keys) {
		if len(idxs) == 0 {
			continue
		}
		s := &h.b.shards[sh]
		h.miss = h.miss[:0]
		s.mu.RLock()
		for _, i := range idxs {
			if v, ok := s.m[keys[i]]; ok {
				copy(dst[i*dim:(i+1)*dim], v)
			} else {
				h.miss = append(h.miss, i)
			}
		}
		s.mu.RUnlock()
		if len(h.miss) == 0 {
			continue
		}
		for _, i := range h.miss {
			seg := dst[i*dim : (i+1)*dim]
			if h.b.Init != nil {
				h.b.Init(keys[i], seg)
			} else {
				zero32(seg)
			}
		}
		s.mu.Lock()
		for _, i := range h.miss {
			seg := dst[i*dim : (i+1)*dim]
			if v, ok := s.m[keys[i]]; ok {
				copy(seg, v) // raced with another worker's first touch
			} else {
				s.m[keys[i]] = append([]float32(nil), seg...)
			}
		}
		s.mu.Unlock()
	}
	return nil
}

func (h *memHandle) Put(key uint64, val []float32) error {
	sh := &h.b.shards[h.b.shardOf(key)]
	sh.mu.Lock()
	if v, ok := sh.m[key]; ok {
		copy(v, val)
	} else {
		sh.m[key] = append([]float32(nil), val...)
	}
	sh.mu.Unlock()
	return nil
}

// PutBatch takes each shard lock once per per-shard group.
func (h *memHandle) PutBatch(keys []uint64, vals []float32) error {
	dim := h.b.DimN
	if len(vals) != len(keys)*dim {
		return fmt.Errorf("train: vals length %d != %d keys × dim %d", len(vals), len(keys), dim)
	}
	for sh, idxs := range h.groupByShard(keys) {
		if len(idxs) == 0 {
			continue
		}
		s := &h.b.shards[sh]
		s.mu.Lock()
		for _, i := range idxs {
			val := vals[i*dim : (i+1)*dim]
			if v, ok := s.m[keys[i]]; ok {
				copy(v, val)
			} else {
				s.m[keys[i]] = append([]float32(nil), val...)
			}
		}
		s.mu.Unlock()
	}
	return nil
}

func (h *memHandle) groupByShard(keys []uint64) [][]int {
	for i := range h.groups {
		h.groups[i] = h.groups[i][:0]
	}
	for i, k := range keys {
		sh := h.b.shardOf(k)
		h.groups[sh] = append(h.groups[sh], i)
	}
	return h.groups
}

func (h *memHandle) Peek(key uint64, dst []float32) (bool, error) {
	sh := &h.b.shards[h.b.shardOf(key)]
	sh.mu.RLock()
	v, ok := sh.m[key]
	if ok {
		copy(dst, v)
	}
	sh.mu.RUnlock()
	return ok, nil
}

func (h *memHandle) Lookahead([]uint64) {}
func (h *memHandle) Close()             {}
