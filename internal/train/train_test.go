package train

import (
	"testing"
	"time"

	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/data"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/lsm"
	"github.com/llm-db/mlkv-go/internal/models"
)

func memBackend(dim int) Backend {
	return NewMemBackend("mem", dim, core.UniformInit(0.05, 1))
}

func mlkvBackend(t *testing.T, dim int, bound int64) Backend {
	t.Helper()
	tbl, err := core.OpenTable(core.Options{
		Dir: t.TempDir(), Dim: dim, StalenessBound: bound,
		MemoryBytes: 1 << 20, RecordsPerPage: 64,
		Init: core.UniformInit(0.05, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tbl.Close() })
	return NewTableBackend(tbl, bound >= 0)
}

func TestTrainCTRInMemoryImprovesAUC(t *testing.T) {
	gen := data.NewCTRGen(data.CTRConfig{Fields: 4, DenseDim: 2, FieldCard: 500, Seed: 3, NoiseStd: 0.2})
	model := models.NewDLRM(models.FFNN, 4, 8, 2, []int{16}, 5)
	res, err := TrainCTR(CTROptions{
		Gen: gen, Model: model, Backend: memBackend(8),
		Workers: 2, Batch: 16, Mode: ModeAsync,
		DenseLR: 0.05, EmbLR: 0.05,
		MaxSamples: 30000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples < 30000 {
		t.Fatalf("trained only %d samples", res.Samples)
	}
	if res.FinalMetric < 0.60 {
		t.Fatalf("AUC after training = %.3f, want > 0.60", res.FinalMetric)
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput not measured")
	}
	if res.Stage.Total() == 0 {
		t.Fatal("stage times not measured")
	}
}

func TestTrainCTROnMLKV(t *testing.T) {
	gen := data.NewCTRGen(data.CTRConfig{Fields: 4, DenseDim: 2, FieldCard: 500, Seed: 7, NoiseStd: 0.2})
	model := models.NewDLRM(models.FFNN, 4, 8, 2, []int{16}, 9)
	res, err := TrainCTR(CTROptions{
		Gen: gen, Model: model, Backend: mlkvBackend(t, 8, 8),
		Workers: 2, Batch: 16, Mode: ModeAsync,
		DenseLR: 0.05, EmbLR: 0.05,
		MaxSamples:     10000,
		LookaheadDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "mlkv" {
		t.Fatalf("backend name %q", res.Backend)
	}
	if res.FinalMetric < 0.55 {
		t.Fatalf("AUC = %.3f, want > 0.55", res.FinalMetric)
	}
}

func TestTrainCTRSyncMode(t *testing.T) {
	gen := data.NewCTRGen(data.CTRConfig{Fields: 3, DenseDim: 2, FieldCard: 200, Seed: 11})
	model := models.NewDLRM(models.FFNN, 3, 4, 2, []int{8}, 13)
	res, err := TrainCTR(CTROptions{
		Gen: gen, Model: model, Backend: mlkvBackend(t, 4, core.BoundBSP),
		Workers: 3, Batch: 8, Mode: ModeSync,
		DenseLR: 0.05, EmbLR: 0.05,
		MaxSamples: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples < 2000 {
		t.Fatalf("sync training stalled at %d samples", res.Samples)
	}
}

func TestTrainCTRCurve(t *testing.T) {
	gen := data.NewCTRGen(data.CTRConfig{Fields: 3, DenseDim: 2, FieldCard: 200, Seed: 17})
	model := models.NewDLRM(models.DCN, 3, 4, 2, []int{8}, 19)
	res, err := TrainCTR(CTROptions{
		Gen: gen, Model: model, Backend: memBackend(4),
		Workers: 2, Batch: 16, Mode: ModeAsync,
		DenseLR: 0.05, EmbLR: 0.05,
		Duration:  900 * time.Millisecond,
		EvalEvery: 200 * time.Millisecond, EvalSamples: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) < 2 {
		t.Fatalf("expected convergence curve points, got %d", len(res.Curve))
	}
}

func TestTrainKGEImprovesHits(t *testing.T) {
	gen := data.NewKGGen(data.KGConfig{Entities: 2000, Relations: 4, Clusters: 8, Seed: 23})
	model := models.NewKGE(models.DistMult, 16)
	// Multiplicative scorers need a healthy init scale; tiny embeddings
	// produce vanishing three-way-product gradients.
	backend := NewMemBackend("mem", 16, core.UniformInit(0.5, 1))
	res, err := TrainKGE(KGEOptions{
		Gen: gen, Model: model, Backend: backend,
		Workers: 2, Negatives: 8, EmbLR: 0.2,
		MaxSamples:  120000,
		EvalTriples: 200, EvalNegs: 20, HitsK: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Random ranking over 21 candidates gives Hits@10 ≈ 48%; trained should
	// be clearly better.
	if res.FinalMetric < 60 {
		t.Fatalf("Hits@10 = %.1f%%, want > 60%%", res.FinalMetric)
	}
}

func TestTrainKGEWithBETAOnMLKV(t *testing.T) {
	gen := data.NewKGGen(data.KGConfig{Entities: 2000, Relations: 4, Clusters: 8, Seed: 29})
	model := models.NewKGE(models.ComplEx, 16)
	res, err := TrainKGE(KGEOptions{
		Gen: gen, Model: model, Backend: mlkvBackend(t, 16, 8),
		Workers: 2, Negatives: 2, EmbLR: 0.1,
		MaxSamples:     4000,
		BETA:           true,
		BETAPartitions: 4, BETABuffer: 2,
		LookaheadDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples < 4000 {
		t.Fatalf("BETA training stalled at %d", res.Samples)
	}
}

func TestTrainGNNImprovesAccuracy(t *testing.T) {
	graph := data.NewGraphGen(data.GraphConfig{Nodes: 2000, Classes: 4, Homophily: 0.9, Seed: 31})
	sage := models.NewGraphSage(8, 16, 4, 37)
	res, err := TrainGNN(GNNOptions{
		Graph: graph, Kind: KindGraphSage, Sage: sage,
		Backend: NewMemBackend("mem", 8, core.UniformInit(0.3, 1)),
		Workers: 2, Fanout: 3, Fanout2: 3,
		DenseLR: 0.1, EmbLR: 0.1, Batch: 8,
		MaxSamples: 20000, EvalNodes: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalMetric < 45 {
		t.Fatalf("accuracy = %.1f%%, want > 45%% (4 classes, random = 25%%)", res.FinalMetric)
	}
}

func TestTrainGATRuns(t *testing.T) {
	graph := data.NewGraphGen(data.GraphConfig{Nodes: 1000, Classes: 3, Seed: 41})
	gat := models.NewGAT(8, 12, 3, 43)
	res, err := TrainGNN(GNNOptions{
		Graph: graph, Kind: KindGAT, Gat: gat,
		Backend: mlkvBackend(t, 8, core.BoundASP),
		Workers: 2, Fanout: 2, Fanout2: 2,
		DenseLR: 0.05, EmbLR: 0.05, Batch: 8,
		MaxSamples: 1500, EvalNodes: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples < 1500 {
		t.Fatalf("GAT training stalled at %d", res.Samples)
	}
}

func TestTrainCTROnLSMBackend(t *testing.T) {
	s, err := lsm.Open(lsm.Config{Dir: t.TempDir(), ValueSize: 16, MemtableBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	gen := data.NewCTRGen(data.CTRConfig{Fields: 3, DenseDim: 2, FieldCard: 200, Seed: 47})
	model := models.NewDLRM(models.FFNN, 3, 4, 2, []int{8}, 53)
	res, err := TrainCTR(CTROptions{
		Gen: gen, Model: model,
		Backend: NewKVBackend(kv.WrapLSM(s), 4, core.UniformInit(0.05, 1)),
		Workers: 2, Batch: 8, Mode: ModeAsync,
		DenseLR: 0.05, EmbLR: 0.05,
		MaxSamples: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "lsm" {
		t.Fatalf("backend name %q", res.Backend)
	}
	if res.Samples < 2000 {
		t.Fatal("LSM-backed training stalled")
	}
}

func TestDDPSimulationSlowsThroughput(t *testing.T) {
	gen := data.NewCTRGen(data.CTRConfig{Fields: 3, DenseDim: 2, FieldCard: 200, Seed: 59})
	mk := func(delay time.Duration) float64 {
		model := models.NewDLRM(models.FFNN, 3, 4, 2, []int{8}, 61)
		res, err := TrainCTR(CTROptions{
			Gen: gen, Model: model, Backend: memBackend(4),
			Workers: 2, Batch: 8, Mode: ModeAsync,
			DenseLR: 0.05, EmbLR: 0.05,
			MaxSamples:     3000,
			BatchSyncDelay: delay,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	fast := mk(0)
	slow := mk(2 * time.Millisecond)
	if slow >= fast {
		t.Fatalf("network-delay simulation had no effect: %v >= %v", slow, fast)
	}
}
