package train

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"github.com/llm-db/mlkv-go/internal/bptree"
	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/data"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/lsm"
	"github.com/llm-db/mlkv-go/internal/models"
	"github.com/llm-db/mlkv-go/internal/server"
)

const confDim = 8

var confInit = core.UniformInit(0.05, 1)

// confBackends builds one instance of every Handle implementation: MLKV
// table (clock on), plain FASTER (clock off), LSM and B+tree through the
// lifted KV adapters, sharded memory, and remote backends speaking the
// wire protocol to loopback mlkv-servers — one per engine, so the remote
// matrix covers every engine an OPEN frame can request. Each comes fresh
// (empty store).
func confBackends(t *testing.T) map[string]Backend {
	t.Helper()
	out := map[string]Backend{
		"mlkv":   mlkvBackend(t, confDim, core.BoundASP),
		"faster": mlkvBackend(t, confDim, core.BoundDisabled),
		"mem":    NewMemBackend("mem", confDim, confInit),
	}

	ls, err := lsm.Open(lsm.Config{
		Dir: t.TempDir(), ValueSize: confDim * 4,
		MemtableBytes: 64 << 10, CacheBytes: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ls.Close() })
	out["lsm"] = NewKVBackend(kv.WrapLSM(ls), confDim, confInit)

	bt, err := bptree.Open(bptree.Config{Dir: t.TempDir(), ValueSize: confDim * 4, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bt.Close() })
	out["bptree"] = NewKVBackend(kv.WrapBPTree(bt), confDim, confInit)

	out["remote"] = remoteBackend(t, confDim, 0, core.BoundASP, "mlkv")
	out["remote-lsm"] = remoteBackend(t, confDim, 0, core.BoundASP, "lsm")
	out["remote-bptree"] = remoteBackend(t, confDim, 0, core.BoundASP, "bptree")
	return out
}

// remoteBackend serves a fresh sharded store of the named engine on
// loopback and dials it through the public API. conns sizes the
// connection pool (0 = a small default). The clock-free engines must be
// paired with a non-blocking bound.
func remoteBackend(t *testing.T, dim, conns int, bound int64, engine string) *RemoteBackend {
	t.Helper()
	if conns <= 0 {
		conns = 4
	}
	store, err := kv.OpenEngine(engine, kv.ShardedConfig{
		Dir: t.TempDir(), Shards: 4, ValueSize: dim * 4, RecordsPerPage: 64,
		MemoryBytes: 1 << 20, StalenessBound: bound,
	}, engine)
	if err != nil {
		t.Fatal(err)
	}
	reg := server.NewRegistry(server.RegistryConfig{})
	if _, err := reg.Add("conformance", dim, store); err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Registry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	rb, err := DialRemote(ln.Addr().String(), "conformance", dim, confInit, conns)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		rb.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveErr
		reg.Close()
	})
	return rb
}

func f32Eq(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestHandleConformance runs the same observable-behavior contract over
// every backend: first-touch init is deterministic and persistent,
// GetBatch and scalar Get agree, PutBatch round-trips, Peek sees the last
// Put and misses on unknown keys, Lookahead is a safe no-op at worst.
// Reads and writes stay balanced so the clocked backends' vector clocks
// never strand a token.
func TestHandleConformance(t *testing.T) {
	for name, b := range confBackends(t) {
		t.Run(name, func(t *testing.T) {
			if b.Dim() != confDim {
				t.Fatalf("Dim() = %d, want %d", b.Dim(), confDim)
			}
			h, err := b.NewHandle()
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()

			keys := []uint64{3, 11, 42, 77, 99, 500, 12345, 1<<40 + 7}
			dim := b.Dim()

			// First touch through the batch path: every slot must hold the
			// deterministic initializer's output.
			got := make([]float32, len(keys)*dim)
			if err := h.GetBatch(keys, got); err != nil {
				t.Fatal(err)
			}
			want := make([]float32, dim)
			for i, k := range keys {
				confInit(k, want)
				if !f32Eq(got[i*dim:(i+1)*dim], want) {
					t.Fatalf("key %d: first-touch GetBatch = %v, want %v", k, got[i*dim:(i+1)*dim], want)
				}
			}
			if err := h.PutBatch(keys, got); err != nil { // release the read tokens
				t.Fatal(err)
			}

			// Scalar Get must see exactly what the batch saw (the init
			// persisted; no re-initialization on later reads).
			one := make([]float32, dim)
			for i, k := range keys {
				if err := h.Get(k, one); err != nil {
					t.Fatal(err)
				}
				if !f32Eq(one, got[i*dim:(i+1)*dim]) {
					t.Fatalf("key %d: scalar Get %v != batch value %v", k, one, got[i*dim:(i+1)*dim])
				}
				if err := h.Put(k, one); err != nil {
					t.Fatal(err)
				}
			}

			// PutBatch round-trip with distinct values.
			vals := make([]float32, len(keys)*dim)
			for i := range vals {
				vals[i] = float32(i) * 0.25
			}
			if err := h.PutBatch(keys, vals); err != nil {
				t.Fatal(err)
			}
			if err := h.GetBatch(keys, got); err != nil {
				t.Fatal(err)
			}
			if !f32Eq(got, vals) {
				t.Fatal("GetBatch after PutBatch returned different values")
			}
			if err := h.PutBatch(keys, got); err != nil {
				t.Fatal(err)
			}

			// Peek-after-Put: sees the last write, no clock effects, and
			// misses cleanly on a never-touched key.
			if found, err := h.Peek(keys[0], one); err != nil || !found {
				t.Fatalf("Peek(%d): found=%v err=%v", keys[0], found, err)
			}
			if !f32Eq(one, vals[:dim]) {
				t.Fatalf("Peek read %v, want %v", one, vals[:dim])
			}
			if found, err := h.Peek(0xdead_beef_0001, one); err != nil || found {
				t.Fatalf("Peek of missing key: found=%v err=%v", found, err)
			}

			// Lookahead must be safe on any backend (async hint or no-op).
			h.Lookahead(keys)
		})
	}
}

// TestGatherDedupAndScatter pins the gather contract: duplicate adds
// collapse to one slot, keys sort ascending, duplicate gradients sum, and
// scatter applies each unique key's combined update exactly once.
func TestGatherDedupAndScatter(t *testing.T) {
	const dim = 4
	for _, scalar := range []bool{false, true} {
		b := NewMemBackend("mem", dim, nil) // zero-init
		h, err := b.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		g := newGather(dim, scalar)
		g.reset()
		for _, k := range []uint64{9, 5, 9, 7, 5, 9} {
			g.add(k)
		}
		if g.keyCount() != 3 {
			t.Fatalf("scalar=%v: %d unique keys, want 3", scalar, g.keyCount())
		}
		if err := g.fetch(h); err != nil {
			t.Fatal(err)
		}
		for i, want := range []uint64{5, 7, 9} {
			if g.keys[i] != want {
				t.Fatalf("scalar=%v: keys[%d] = %d, want %d (ascending)", scalar, i, g.keys[i], want)
			}
		}
		// Duplicate keys alias one embedding slot.
		g.emb(9)[0] = 42
		if g.emb(9)[0] != 42 {
			t.Fatal("emb(9) not aliased")
		}
		// Gradients accumulate per unique key; scatter applies once.
		g.accumulate(9, []float32{1, 0, 0, 0}, 1)
		g.accumulate(9, []float32{2, 0, 0, 0}, 1)
		g.accumulate(5, []float32{1, 1, 1, 1}, 0.5)
		if err := g.scatter(h, 1.0); err != nil {
			t.Fatal(err)
		}
		out := make([]float32, dim)
		if found, _ := h.Peek(9, out); !found || out[0] != 42-3 {
			t.Fatalf("scalar=%v: key 9 = %v, want first elem %v", scalar, out, 42-3)
		}
		if found, _ := h.Peek(5, out); !found || out[0] != -0.5 {
			t.Fatalf("scalar=%v: key 5 = %v, want first elem -0.5", scalar, out)
		}
		if found, _ := h.Peek(7, out); !found || out[0] != 0 {
			t.Fatalf("scalar=%v: key 7 = %v, want zeros (fetched, no grad, still written)", scalar, out)
		}
		h.Close()
	}
}

// TestTrainCTRScalarPath keeps the legacy per-key access path working end
// to end (the trainbatch bench's baseline) under BSP sync training.
func TestTrainCTRScalarPath(t *testing.T) {
	gen := data.NewCTRGen(data.CTRConfig{Fields: 3, DenseDim: 2, FieldCard: 200, Seed: 11})
	model := models.NewDLRM(models.FFNN, 3, 4, 2, []int{8}, 13)
	res, err := TrainCTR(CTROptions{
		Gen: gen, Model: model, Backend: mlkvBackend(t, 4, core.BoundBSP),
		Workers: 3, Batch: 8, Mode: ModeSync, Scalar: true,
		DenseLR: 0.05, EmbLR: 0.05,
		MaxSamples: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples < 2000 {
		t.Fatalf("scalar sync training stalled at %d samples", res.Samples)
	}
}

// TestTrainCTRRemoteBSP trains DLRM against a loopback mlkv-server whose
// store enforces BSP (staleness bound 0) with sync workers — the full
// remote-training path: batched gather/scatter as GETBATCH/PUTBATCH
// frames, serial in-order clocked reads on the server, clock balance
// across steps, clock-free PEEK evaluation.
func TestTrainCTRRemoteBSP(t *testing.T) {
	const workers = 2
	rb := remoteBackend(t, confDim, workers+2, core.BoundBSP, "mlkv")
	gen := data.NewCTRGen(data.CTRConfig{Fields: 3, DenseDim: 2, FieldCard: 200, Seed: 7})
	model := models.NewDLRM(models.FFNN, 3, confDim, 2, []int{8}, 9)
	res, err := TrainCTR(CTROptions{
		Gen: gen, Model: model, Backend: rb,
		Workers: workers, Batch: 8, Mode: ModeSync,
		DenseLR: 0.05, EmbLR: 0.05,
		MaxSamples: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "remote(mlkv)" {
		t.Fatalf("backend name %q", res.Backend)
	}
	if res.Samples < 1500 {
		t.Fatalf("remote BSP training stalled at %d samples", res.Samples)
	}
	if res.FinalMetric <= 0 {
		t.Fatalf("final AUC = %v", res.FinalMetric)
	}
}
