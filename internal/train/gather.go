package train

// gather owns one worker's gather/scatter state for a training step: the
// deduplicated key set, the fetched embeddings, and the accumulated
// gradients. All three trainers drive it the same way —
//
//	g.reset(); g.add(k)...          // collect the step's keys (dup-safe)
//	g.fetch(h)                      // sort ascending, one GetBatch
//	g.emb(k), g.accumulate(k, ...)  // model compute on unique embeddings
//	g.scatter(h, lr)                // apply grads, one PutBatch
//
// — which gives the storage layer its batch amortization (one framed
// round trip per step on a remote backend, one per-shard fan-out locally)
// while preserving the consistency protocol: the vector clock sees each
// unique key exactly once per step (one clocked read, one write), and
// because the keys are unique and sorted ascending, acquisitions stay in
// a global order and the cross-worker wait graph remains acyclic under
// blocking bounds, exactly as on the scalar path.
//
// Duplicate keys inside a step alias one embedding slot and their
// gradients sum — minibatch SGD on the step's snapshot.
type gather struct {
	dim    int
	scalar bool // per-key Get/Put in the same order (baseline path)

	keys  []uint64 // unique keys, ascending after fetch
	pos   map[uint64]int
	embs  []float32 // len(keys)×dim fetched values
	grads []float32 // len(keys)×dim accumulated gradients
}

func newGather(dim int, scalar bool) *gather {
	return &gather{dim: dim, scalar: scalar, pos: make(map[uint64]int)}
}

// reset begins a new step.
func (g *gather) reset() {
	g.keys = g.keys[:0]
	clear(g.pos)
}

// add collects key into the step's unique key set.
func (g *gather) add(key uint64) {
	if _, ok := g.pos[key]; !ok {
		g.pos[key] = -1 // position assigned after the sort in fetch
		g.keys = append(g.keys, key)
	}
}

// keyCount returns the number of unique keys collected.
func (g *gather) keyCount() int { return len(g.keys) }

// fetch sorts the unique keys ascending and reads them all: one GetBatch
// on the batched path, per-key Gets in the same order on the scalar path.
// Gradient accumulators start zeroed.
func (g *gather) fetch(h Handle) error {
	sortU64(g.keys)
	for i, k := range g.keys {
		g.pos[k] = i
	}
	n := len(g.keys) * g.dim
	g.embs = grow(g.embs, n)
	g.grads = grow(g.grads, n)
	zero32(g.grads)
	if g.scalar {
		for i, k := range g.keys {
			if err := h.Get(k, g.embs[i*g.dim:(i+1)*g.dim]); err != nil {
				return err
			}
		}
		return nil
	}
	return h.GetBatch(g.keys, g.embs)
}

// emb returns the fetched embedding of a key added before fetch. Callers
// must not retain the slice past scatter.
func (g *gather) emb(key uint64) []float32 {
	i := g.pos[key]
	return g.embs[i*g.dim : (i+1)*g.dim]
}

// accumulate adds scale×grad into key's gradient accumulator.
func (g *gather) accumulate(key uint64, grad []float32, scale float32) {
	i := g.pos[key]
	acc := g.grads[i*g.dim : (i+1)*g.dim]
	if scale == 1 {
		for d := range acc {
			acc[d] += grad[d]
		}
		return
	}
	for d := range acc {
		acc[d] += scale * grad[d]
	}
}

// scatter applies emb ← emb − lr·grad to every unique key and writes all
// of them back: one PutBatch on the batched path, per-key Puts in the
// same ascending order on the scalar path. Keys fetched without gradient
// still get their Put — every clocked read owes exactly one write.
func (g *gather) scatter(h Handle, lr float32) error {
	for i := 0; i < len(g.keys)*g.dim; i++ {
		g.embs[i] -= lr * g.grads[i]
	}
	if g.scalar {
		for i, k := range g.keys {
			if err := h.Put(k, g.embs[i*g.dim:(i+1)*g.dim]); err != nil {
				return err
			}
		}
		return nil
	}
	return h.PutBatch(g.keys, g.embs)
}
