package train

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/llm-db/mlkv-go/internal/data"
	"github.com/llm-db/mlkv-go/internal/models"
	"github.com/llm-db/mlkv-go/internal/util"
)

// RelationKeyBase offsets relation embeddings away from entity keys within
// the same table (relations are few; entities are billions).
const RelationKeyBase = uint64(1) << 48

// KGEOptions configures knowledge-graph-embedding training (the paper's
// DGL-KE workload).
type KGEOptions struct {
	Gen        *data.KGGen
	Model      *models.KGE
	Backend    Backend
	Workers    int
	Negatives  int
	EmbLR      float32
	Duration   time.Duration
	MaxSamples int64

	LookaheadDepth int

	// Scalar forces the legacy per-key Get/Put access path (see
	// CTROptions.Scalar).
	Scalar bool

	// BETA enables Marius-style partition-ordered training: entities are
	// range-partitioned, only triples inside the buffered partition pair
	// train, and partition swaps Lookahead the incoming partition
	// (Figure 9b's "BETA" variants).
	BETA           bool
	BETAPartitions int
	BETABuffer     int

	EvalEvery   time.Duration
	EvalTriples int
	EvalNegs    int
	HitsK       int
}

// TrainKGE runs link-prediction training; the curve metric is Hits@K.
func TrainKGE(opts KGEOptions) (*Result, error) {
	if opts.Workers == 0 {
		opts.Workers = 4
	}
	if opts.Negatives == 0 {
		opts.Negatives = 4
	}
	if opts.EvalTriples == 0 {
		opts.EvalTriples = 300
	}
	if opts.EvalNegs == 0 {
		opts.EvalNegs = 30
	}
	if opts.HitsK == 0 {
		opts.HitsK = 10
	}
	if opts.BETA {
		if opts.BETAPartitions == 0 {
			opts.BETAPartitions = 8
		}
		if opts.BETABuffer == 0 {
			opts.BETABuffer = opts.BETAPartitions / 2
		}
	}
	dim := opts.Model.Dim
	res := &Result{Backend: opts.Backend.Name()}
	var sampleCount atomic.Int64
	var embNS, fwdNS, bwdNS atomic.Int64
	stop := make(chan struct{})
	start := time.Now()

	evalCfg := opts.Gen.Config()
	evalCfg.Stream = 31337
	evalGen := data.NewKGGen(evalCfg)
	evalSet := evalGen.Batch(opts.EvalTriples)

	var curveMu sync.Mutex
	evalDone := make(chan struct{})
	if opts.EvalEvery > 0 {
		go func() {
			defer close(evalDone)
			h, err := opts.Backend.NewHandle()
			if err != nil {
				return
			}
			defer h.Close()
			tick := time.NewTicker(opts.EvalEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					hits := evalHits(opts, h, evalGen, evalSet)
					curveMu.Lock()
					res.Curve = append(res.Curve, CurvePoint{Seconds: time.Since(start).Seconds(), Metric: hits})
					curveMu.Unlock()
				}
			}
		}()
	} else {
		close(evalDone)
	}

	// BETA partition schedule, shared across workers.
	var sched *betaSchedule
	if opts.BETA {
		sched = newBetaSchedule(opts.Gen.Config().Entities, opts.BETAPartitions, opts.BETABuffer)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, opts.Workers)
	for wID := 0; wID < opts.Workers; wID++ {
		wg.Add(1)
		go func(wID int) {
			defer wg.Done()
			h, err := opts.Backend.NewHandle()
			if err != nil {
				errCh <- err
				return
			}
			defer h.Close()
			cfg := opts.Gen.Config()
			cfg.Stream = uint64(wID)*6151 + 1
			gen := data.NewKGGen(cfg)
			rng := util.NewRNG(uint64(wID) + 17)

			dh := make([]float32, dim)
			dr := make([]float32, dim)
			dt := make([]float32, dim)
			dNeg := make([][]float32, opts.Negatives)
			negEmb := make([][]float32, opts.Negatives)
			negKeys := make([]uint64, opts.Negatives)
			for i := range dNeg {
				dNeg[i] = make([]float32, dim)
			}
			g := newGather(dim, opts.Scalar)
			var pending []data.Triple

			nextTriple := func() data.Triple {
				for {
					if opts.LookaheadDepth > 0 {
						for len(pending) <= opts.LookaheadDepth {
							tr := gen.Next()
							if sched == nil || sched.admits(tr) {
								h.Lookahead([]uint64{tr.H, tr.T})
								pending = append(pending, tr)
							}
						}
						tr := pending[0]
						pending = pending[1:]
						return tr
					}
					tr := gen.Next()
					if sched == nil || sched.admits(tr) {
						return tr
					}
				}
			}

			for {
				select {
				case <-stop:
					return
				default:
				}
				tr := nextTriple()
				for i := range negKeys {
					negKeys[i] = gen.NegativeTail(tr)
				}
				rKey := RelationKeyBase + uint64(tr.R)
				// One step = one triple plus its negatives: the gather
				// dedups the key set, fetches it with one batched read in
				// ascending order (keeping cross-worker token acquisitions
				// in a global order under blocking bounds), and the scatter
				// writes each unique key back exactly once — so gradients of
				// duplicated keys compose and the vector clock stays
				// balanced, as on the scalar path.
				g.reset()
				g.add(tr.H)
				g.add(rKey)
				g.add(tr.T)
				for _, k := range negKeys {
					g.add(k)
				}
				t0 := time.Now()
				if err := g.fetch(h); err != nil {
					errCh <- err
					return
				}
				hEmb, rEmb, tEmb := g.emb(tr.H), g.emb(rKey), g.emb(tr.T)
				for i, nk := range negKeys {
					negEmb[i] = g.emb(nk)
				}
				t1 := time.Now()
				zero32(dh)
				zero32(dr)
				zero32(dt)
				for i := range dNeg {
					zero32(dNeg[i])
				}
				opts.Model.TripleLoss(hEmb, rEmb, tEmb, negEmb, dh, dr, dt, dNeg)
				t2 := time.Now()
				g.accumulate(tr.H, dh, 1)
				g.accumulate(rKey, dr, 1)
				g.accumulate(tr.T, dt, 1)
				for i, nk := range negKeys {
					g.accumulate(nk, dNeg[i], 1)
				}
				if err := g.scatter(h, opts.EmbLR); err != nil {
					errCh <- err
					return
				}
				t3 := time.Now()
				embNS.Add(int64(t1.Sub(t0) + t3.Sub(t2)))
				fwdNS.Add(int64(t2.Sub(t1)) / 2)
				bwdNS.Add(int64(t2.Sub(t1)) - int64(t2.Sub(t1))/2)
				n := sampleCount.Add(1)
				if opts.MaxSamples > 0 && n >= opts.MaxSamples {
					safeClose(stop)
					return
				}
				if sched != nil && rng.Uint64n(64) == 0 {
					// Periodically advance the partition schedule; the
					// incoming partition is prefetched via Lookahead.
					if in := sched.maybeAdvance(n); in != nil {
						h.Lookahead(in)
					}
				}
				if opts.Duration > 0 && time.Since(start) >= opts.Duration {
					safeClose(stop)
					return
				}
			}
		}(wID)
	}
	wg.Wait()
	safeClose(stop)
	<-evalDone
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	res.Samples = sampleCount.Load()
	res.Elapsed = time.Since(start)
	res.Throughput = float64(res.Samples) / res.Elapsed.Seconds()
	res.Stage = StageTimes{
		Emb:      time.Duration(embNS.Load()),
		Forward:  time.Duration(fwdNS.Load()),
		Backward: time.Duration(bwdNS.Load()),
	}
	if h, err := opts.Backend.NewHandle(); err == nil {
		res.FinalMetric = evalHits(opts, h, evalGen, evalSet)
		h.Close()
	}
	return res, nil
}

// evalHits computes Hits@K over the fixed evaluation triples using Peek.
func evalHits(opts KGEOptions, h Handle, gen *data.KGGen, evalSet []data.Triple) float64 {
	dim := opts.Model.Dim
	hEmb := make([]float32, dim)
	rEmb := make([]float32, dim)
	tEmb := make([]float32, dim)
	negs := make([][]float32, opts.EvalNegs)
	for i := range negs {
		negs[i] = make([]float32, dim)
	}
	hits := 0
	for _, tr := range evalSet {
		peekOrZero(h, tr.H, hEmb)
		peekOrZero(h, RelationKeyBase+uint64(tr.R), rEmb)
		peekOrZero(h, tr.T, tEmb)
		for i := range negs {
			peekOrZero(h, gen.NegativeTail(tr), negs[i])
		}
		hits += opts.Model.HitsAtK(hEmb, rEmb, tEmb, negs, opts.HitsK)
	}
	return float64(hits) / float64(len(evalSet)) * 100
}

func peekOrZero(h Handle, key uint64, dst []float32) {
	if found, _ := h.Peek(key, dst); !found {
		zero32(dst)
	}
}

func zero32(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// betaSchedule rotates a buffer of entity partitions in the spirit of
// Marius' BETA (buffer-aware edge traversal) ordering: training admits only
// triples whose endpoints fall in buffered partitions, maximizing reuse of
// in-memory embeddings between swaps.
type betaSchedule struct {
	mu         sync.Mutex
	entities   uint64
	partitions int
	buffer     []int
	nextPart   int
	lastSwap   int64
}

func newBetaSchedule(entities uint64, partitions, buffer int) *betaSchedule {
	s := &betaSchedule{entities: entities, partitions: partitions}
	for i := 0; i < buffer; i++ {
		s.buffer = append(s.buffer, i)
	}
	s.nextPart = buffer % partitions
	return s
}

func (s *betaSchedule) partOf(e uint64) int {
	return int(e * uint64(s.partitions) / s.entities)
}

// admits reports whether both endpoints are buffered.
func (s *betaSchedule) admits(tr data.Triple) bool {
	ph, pt := s.partOf(tr.H), s.partOf(tr.T)
	s.mu.Lock()
	defer s.mu.Unlock()
	okH, okT := false, false
	for _, p := range s.buffer {
		if p == ph {
			okH = true
		}
		if p == pt {
			okT = true
		}
	}
	return okH && okT
}

// maybeAdvance swaps the oldest buffered partition for the next one every
// swapInterval samples and returns the keys of the incoming partition for
// prefetching (capped to avoid flooding the queue).
func (s *betaSchedule) maybeAdvance(samples int64) []uint64 {
	const swapInterval = 2000
	s.mu.Lock()
	defer s.mu.Unlock()
	if samples-s.lastSwap < swapInterval {
		return nil
	}
	s.lastSwap = samples
	incoming := s.nextPart
	s.nextPart = (s.nextPart + 1) % s.partitions
	copy(s.buffer, s.buffer[1:])
	s.buffer[len(s.buffer)-1] = incoming
	lo := uint64(incoming) * s.entities / uint64(s.partitions)
	hi := uint64(incoming+1) * s.entities / uint64(s.partitions)
	if hi-lo > 4096 {
		hi = lo + 4096
	}
	keys := make([]uint64, 0, hi-lo)
	for e := lo; e < hi; e++ {
		keys = append(keys, e)
	}
	return keys
}
