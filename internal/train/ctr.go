package train

import (
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/llm-db/mlkv-go/internal/data"
	"github.com/llm-db/mlkv-go/internal/latency"
	"github.com/llm-db/mlkv-go/internal/models"
	"github.com/llm-db/mlkv-go/internal/util"
)

// Mode selects the consistency discipline of the training pipeline. The
// storage-level staleness bound lives in the backend; Mode controls the
// pipeline structure (per-batch barriers for sync training).
type Mode int

const (
	// ModeSync barriers all workers after every batch (BSP, Figure 2
	// "Sync"): embedding reads always see the previous batch's updates.
	ModeSync Mode = iota
	// ModeAsync lets workers free-run; consistency comes only from the
	// backend's staleness bound (SSP / ASP).
	ModeAsync
)

// StageTimes decomposes per-sample latency (Figure 2 left).
type StageTimes struct {
	Emb      time.Duration // embedding Get + Put (data stalls land here)
	Forward  time.Duration
	Backward time.Duration
}

// Total returns the sum of stages.
func (s StageTimes) Total() time.Duration { return s.Emb + s.Forward + s.Backward }

// CurvePoint is one quality measurement on the convergence curve.
type CurvePoint struct {
	Seconds float64
	Metric  float64 // AUC, accuracy, or Hits@k depending on task
}

// Result summarizes a training run.
type Result struct {
	Backend     string
	Samples     int64
	Elapsed     time.Duration
	Throughput  float64 // samples/s
	Stage       StageTimes
	Curve       []CurvePoint
	FinalMetric float64
	// EmbLat is the distribution of per-step embedding-access time (one
	// observation per minibatch: batched gather + batched scatter),
	// recorded across every worker. Stage.Emb is its sum; the percentiles
	// expose the tail — a flush or staleness stall shows up in p99 here
	// long before it moves the mean.
	EmbLat latency.Snapshot
}

// CTROptions configures DLRM CTR training (the paper's PERSIA workload).
type CTROptions struct {
	Gen        *data.CTRGen
	Model      *models.DLRM
	Backend    Backend
	Workers    int
	Batch      int // samples per worker between dense-weight applies
	Mode       Mode
	DenseLR    float32
	EmbLR      float32
	Duration   time.Duration // wall-clock budget
	MaxSamples int64         // optional hard cap (0 = unlimited)

	LookaheadDepth int // samples generated ahead and prefetched (0 = off)

	// Scalar forces the legacy per-key Get/Put access path: one storage
	// call per key instead of one batched gather and one batched scatter
	// per minibatch. The trainbatch bench uses it to measure what batching
	// buys; key ordering, dedup, and clock balance are identical either way.
	Scalar bool

	EvalEvery   time.Duration // 0 disables the convergence curve
	EvalSamples int

	// BatchSyncDelay simulates a distributed data-parallel gradient
	// exchange after every batch (the DDP baseline of Figure 11a).
	BatchSyncDelay time.Duration
}

// TrainCTR runs DLRM training and returns throughput, stage breakdown, and
// the AUC-over-time curve.
func TrainCTR(opts CTROptions) (*Result, error) {
	if opts.Workers == 0 {
		opts.Workers = 4
	}
	if opts.Batch == 0 {
		opts.Batch = 32
	}
	if opts.EvalSamples == 0 {
		opts.EvalSamples = 2000
	}
	res := &Result{Backend: opts.Backend.Name()}
	var sampleCount atomic.Int64
	var embNS, fwdNS, bwdNS atomic.Int64
	var embLat latency.Histogram
	stop := make(chan struct{})
	start := time.Now()

	// Fixed evaluation set: same planted ground truth, disjoint stream.
	evalGen := data.NewCTRGen(withStream(opts.Gen.Config(), 0xe7a1))
	evalSet := evalGen.Batch(opts.EvalSamples)

	var curveMu sync.Mutex
	evalDone := make(chan struct{})
	if opts.EvalEvery > 0 {
		go func() {
			defer close(evalDone)
			h, err := opts.Backend.NewHandle()
			if err != nil {
				return
			}
			defer h.Close()
			w := opts.Model.NewWorker()
			tick := time.NewTicker(opts.EvalEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					auc := evalCTRAUC(opts, h, w, evalSet)
					curveMu.Lock()
					res.Curve = append(res.Curve, CurvePoint{Seconds: time.Since(start).Seconds(), Metric: auc})
					curveMu.Unlock()
				}
			}
		}()
	} else {
		close(evalDone)
	}

	var wg sync.WaitGroup
	var barrier *syncBarrier
	if opts.Mode == ModeSync {
		barrier = newSyncBarrier(opts.Workers)
	}
	errCh := make(chan error, opts.Workers)
	for wID := 0; wID < opts.Workers; wID++ {
		wg.Add(1)
		go func(wID int) {
			defer wg.Done()
			h, err := opts.Backend.NewHandle()
			if err != nil {
				errCh <- err
				return
			}
			defer h.Close()
			worker := opts.Model.NewWorker()
			gen := data.NewCTRGen(withStream(opts.Gen.Config(), uint64(wID)*7919+1))
			dim := opts.Model.Dim
			embs := make([]float32, opts.Model.Fields*dim)
			g := newGather(dim, opts.Scalar)
			samples := make([]data.CTRSample, 0, opts.Batch)

			// Look-ahead pipeline: generate ahead, prefetch keys.
			var pending []data.CTRSample
			nextSample := func() data.CTRSample {
				if opts.LookaheadDepth <= 0 {
					return gen.Next()
				}
				for len(pending) <= opts.LookaheadDepth {
					s := gen.Next()
					h.Lookahead(s.Keys)
					pending = append(pending, s)
				}
				s := pending[0]
				pending = pending[1:]
				return s
			}

			for {
				select {
				case <-stop:
					return
				default:
				}
				// One step = one minibatch: collect the samples, dedup their
				// keys, fetch every unique embedding with one batched gather
				// (ascending order — under small staleness bounds clocked
				// reads are blocking token acquisitions, and a global order
				// keeps the cross-worker wait graph acyclic).
				samples = samples[:0]
				g.reset()
				for b := 0; b < opts.Batch; b++ {
					s := nextSample()
					samples = append(samples, s)
					// Fields draw from disjoint key ranges, so duplicates
					// only arise across samples; add dedups them.
					for _, k := range s.Keys {
						g.add(k)
					}
				}
				t0 := time.Now()
				if err := g.fetch(h); err != nil {
					errCh <- err
					return
				}
				t1 := time.Now()
				var fwdD, bwdD time.Duration
				capped := false
				for _, s := range samples {
					for f, k := range s.Keys {
						copy(embs[f*dim:(f+1)*dim], g.emb(k))
					}
					tf := time.Now()
					logit, err := worker.Forward(s.Dense, embs)
					if err != nil {
						errCh <- err
						return
					}
					tb := time.Now()
					_, dLogit := bceLogit(logit, s.Label)
					dEmb := worker.Backward(dLogit)
					for f, k := range s.Keys {
						g.accumulate(k, dEmb[f*dim:(f+1)*dim], 1)
					}
					td := time.Now()
					fwdD += tb.Sub(tf)
					bwdD += td.Sub(tb)
					n := sampleCount.Add(1)
					if opts.MaxSamples > 0 && n >= opts.MaxSamples {
						capped = true
						break
					}
				}
				// Scatter before anything can stop the worker: every fetched
				// key owes its write-back (clock balance), even on the final
				// truncated minibatch.
				t2 := time.Now()
				if err := g.scatter(h, opts.EmbLR); err != nil {
					errCh <- err
					return
				}
				t3 := time.Now()
				embNS.Add(int64(t1.Sub(t0) + t3.Sub(t2)))
				embLat.Record(t1.Sub(t0) + t3.Sub(t2))
				fwdNS.Add(int64(fwdD))
				bwdNS.Add(int64(bwdD))
				worker.Apply(opts.DenseLR)
				if capped {
					safeClose(stop)
					return
				}
				if opts.BatchSyncDelay > 0 {
					time.Sleep(opts.BatchSyncDelay)
				}
				if barrier != nil && !barrier.wait(stop) {
					return
				}
				if opts.Duration > 0 && time.Since(start) >= opts.Duration {
					safeClose(stop)
					return
				}
			}
		}(wID)
	}
	wg.Wait()
	safeClose(stop)
	<-evalDone
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	res.Samples = sampleCount.Load()
	res.Elapsed = time.Since(start)
	res.Throughput = float64(res.Samples) / res.Elapsed.Seconds()
	res.Stage = StageTimes{
		Emb:      time.Duration(embNS.Load()),
		Forward:  time.Duration(fwdNS.Load()),
		Backward: time.Duration(bwdNS.Load()),
	}
	res.EmbLat = embLat.Snapshot()
	// Final quality measurement.
	h, err := opts.Backend.NewHandle()
	if err == nil {
		w := opts.Model.NewWorker()
		res.FinalMetric = evalCTRAUC(opts, h, w, evalSet)
		h.Close()
	}
	return res, nil
}

// evalCTRAUC scores the fixed evaluation set with Peek (no clock effects).
func evalCTRAUC(opts CTROptions, h Handle, w *models.DLRMWorker, evalSet []data.CTRSample) float64 {
	dim := opts.Model.Dim
	embs := make([]float32, opts.Model.Fields*dim)
	scores := make([]float64, len(evalSet))
	labels := make([]int, len(evalSet))
	for i, s := range evalSet {
		for f, k := range s.Keys {
			seg := embs[f*dim : (f+1)*dim]
			if found, _ := h.Peek(k, seg); !found {
				for j := range seg {
					seg[j] = 0
				}
			}
		}
		p, err := w.Predict(s.Dense, embs)
		if err != nil {
			return 0.5
		}
		scores[i] = float64(p)
		labels[i] = int(s.Label)
	}
	return util.AUC(scores, labels)
}

func bceLogit(logit, label float32) (float32, float32) {
	p := 1 / (1 + float32(math.Exp(float64(-logit))))
	eps := float32(1e-7)
	var loss float32
	if label > 0.5 {
		loss = -float32(math.Log(float64(p + eps)))
	} else {
		loss = -float32(math.Log(float64(1 - p + eps)))
	}
	return loss, p - label
}

func withStream(cfg data.CTRConfig, stream uint64) data.CTRConfig {
	cfg.Stream = stream
	return cfg
}

// sortU64 sorts keys ascending. Per-step unique key sets reach a few
// hundred entries (CTR minibatches), so this is the stdlib sort rather
// than an insertion sort.
func sortU64(keys []uint64) {
	slices.Sort(keys)
}

// syncBarrier is a reusable barrier that also honours the stop channel.
type syncBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newSyncBarrier(n int) *syncBarrier {
	b := &syncBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n participants arrive or stop closes; it returns
// false when stopping.
func (b *syncBarrier) wait(stop <-chan struct{}) bool {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return true
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-stop:
			b.mu.Lock()
			b.cond.Broadcast()
			b.mu.Unlock()
		case <-done:
		}
	}()
	for gen == b.gen {
		select {
		case <-stop:
			b.mu.Unlock()
			close(done)
			return false
		default:
		}
		b.cond.Wait()
	}
	b.mu.Unlock()
	close(done)
	return true
}

func safeClose(ch chan struct{}) {
	defer func() { recover() }()
	close(ch)
}
