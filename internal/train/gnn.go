package train

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/llm-db/mlkv-go/internal/data"
	"github.com/llm-db/mlkv-go/internal/models"
	"github.com/llm-db/mlkv-go/internal/util"
)

// GNNKind selects the model for the GNN trainer.
type GNNKind int

const (
	// KindGraphSage trains the mean-aggregating GraphSAGE model.
	KindGraphSage GNNKind = iota
	// KindGAT trains the attention model.
	KindGAT
)

// GNNOptions configures node-classification training (the paper's DGL
// workload, and the eBay case studies).
type GNNOptions struct {
	Graph      *data.GraphGen
	Kind       GNNKind
	Sage       *models.GraphSage // required for KindGraphSage
	Gat        *models.GAT       // required for KindGAT
	Backend    Backend
	Workers    int
	Fanout     int // layer-1 neighbors
	Fanout2    int // layer-2 neighbors per layer-1 node
	DenseLR    float32
	EmbLR      float32
	Batch      int
	Duration   time.Duration
	MaxSamples int64

	LookaheadDepth int

	// Scalar forces the legacy per-key Get/Put access path (see
	// CTROptions.Scalar).
	Scalar bool

	EvalEvery time.Duration
	EvalNodes int

	BatchSyncDelay time.Duration // DDP simulation (Figure 11a)
}

// TrainGNN runs node-classification training; the curve metric is accuracy
// in percent.
func TrainGNN(opts GNNOptions) (*Result, error) {
	if opts.Workers == 0 {
		opts.Workers = 4
	}
	if opts.Fanout == 0 {
		opts.Fanout = 4
	}
	if opts.Fanout2 == 0 {
		opts.Fanout2 = 4
	}
	if opts.Batch == 0 {
		opts.Batch = 16
	}
	if opts.EvalNodes == 0 {
		opts.EvalNodes = 500
	}
	res := &Result{Backend: opts.Backend.Name()}
	var sampleCount atomic.Int64
	var embNS, fwdNS, bwdNS atomic.Int64
	stop := make(chan struct{})
	start := time.Now()

	var curveMu sync.Mutex
	evalDone := make(chan struct{})
	if opts.EvalEvery > 0 {
		go func() {
			defer close(evalDone)
			h, err := opts.Backend.NewHandle()
			if err != nil {
				return
			}
			defer h.Close()
			tick := time.NewTicker(opts.EvalEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					acc := evalGNNAccuracy(opts, h)
					curveMu.Lock()
					res.Curve = append(res.Curve, CurvePoint{Seconds: time.Since(start).Seconds(), Metric: acc})
					curveMu.Unlock()
				}
			}
		}()
	} else {
		close(evalDone)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, opts.Workers)
	for wID := 0; wID < opts.Workers; wID++ {
		wg.Add(1)
		go func(wID int) {
			defer wg.Done()
			h, err := opts.Backend.NewHandle()
			if err != nil {
				errCh <- err
				return
			}
			defer h.Close()
			w := newGNNWorker(opts, uint64(wID))
			for {
				select {
				case <-stop:
					return
				default:
				}
				for b := 0; b < opts.Batch; b++ {
					te, tf, tb, err := w.step(h)
					if err != nil {
						errCh <- err
						return
					}
					embNS.Add(int64(te))
					fwdNS.Add(int64(tf))
					bwdNS.Add(int64(tb))
					n := sampleCount.Add(1)
					if opts.MaxSamples > 0 && n >= opts.MaxSamples {
						safeClose(stop)
						w.apply()
						return
					}
				}
				w.apply()
				if opts.BatchSyncDelay > 0 {
					time.Sleep(opts.BatchSyncDelay)
				}
				if opts.Duration > 0 && time.Since(start) >= opts.Duration {
					safeClose(stop)
					return
				}
			}
		}(wID)
	}
	wg.Wait()
	safeClose(stop)
	<-evalDone
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	res.Samples = sampleCount.Load()
	res.Elapsed = time.Since(start)
	res.Throughput = float64(res.Samples) / res.Elapsed.Seconds()
	res.Stage = StageTimes{
		Emb:      time.Duration(embNS.Load()),
		Forward:  time.Duration(fwdNS.Load()),
		Backward: time.Duration(bwdNS.Load()),
	}
	if h, err := opts.Backend.NewHandle(); err == nil {
		res.FinalMetric = evalGNNAccuracy(opts, h)
		h.Close()
	}
	return res, nil
}

// gnnWorker assembles neighborhoods, runs the model, and scatters
// embedding gradients back to storage through the shared gather: the
// neighborhood's unique nodes are fetched with one batched read and
// written back with one batched write (so every clocked read has exactly
// one matching write, keeping the vector clock balanced).
type gnnWorker struct {
	opts GNNOptions
	rng  *util.RNG
	salt uint64
	dim  int

	sage *models.SageWorker
	gat  *models.GATWorker

	nodes1 []uint64   // {v} ∪ N1
	nbh    [][]uint64 // N2 per layer-1 node
	eSelf  [][]float32
	eMean  [][]float32
	inputs [][][]float32
	g      *gather
}

func newGNNWorker(opts GNNOptions, wID uint64) *gnnWorker {
	w := &gnnWorker{
		opts: opts,
		rng:  util.NewRNG(wID*31 + 7),
		salt: wID,
	}
	n1 := opts.Fanout + 1
	w.nodes1 = make([]uint64, n1)
	w.nbh = make([][]uint64, n1)
	switch opts.Kind {
	case KindGraphSage:
		w.dim = opts.Sage.Dim
		w.sage = opts.Sage.NewWorker(opts.Fanout)
		for i := 0; i < n1; i++ {
			w.eSelf = append(w.eSelf, make([]float32, w.dim))
			w.eMean = append(w.eMean, make([]float32, w.dim))
		}
	case KindGAT:
		w.dim = opts.Gat.Dim
		w.gat = opts.Gat.NewWorker(opts.Fanout, opts.Fanout2)
		for i := 0; i < n1; i++ {
			row := make([][]float32, opts.Fanout2+1)
			for j := range row {
				row[j] = make([]float32, w.dim)
			}
			w.inputs = append(w.inputs, row)
		}
	}
	w.g = newGather(w.dim, opts.Scalar)
	return w
}

// sample draws the neighborhood for one training node.
func (w *gnnWorker) sample() {
	g := w.opts.Graph
	v := g.TrainNode(w.rng)
	w.nodes1[0] = v
	n1 := g.SampleNeighbors(v, w.opts.Fanout, w.salt^w.rng.Uint64())
	copy(w.nodes1[1:], n1)
	for i, u := range w.nodes1 {
		w.nbh[i] = g.SampleNeighbors(u, w.opts.Fanout2, w.salt^w.rng.Uint64())
	}
}

// fetch loads every unique node embedding once: the gather dedups the
// neighborhood, sorts it ascending (a global acquisition order keeps the
// wait graph acyclic under blocking staleness bounds), and issues one
// batched read.
func (w *gnnWorker) fetch(h Handle) error {
	w.g.reset()
	for i, u := range w.nodes1 {
		w.g.add(u)
		for _, x := range w.nbh[i] {
			w.g.add(x)
		}
	}
	return w.g.fetch(h)
}

// step trains on one sampled neighborhood, returning stage durations.
func (w *gnnWorker) step(h Handle) (embT, fwdT, bwdT time.Duration, err error) {
	w.sample()
	if w.opts.LookaheadDepth > 0 {
		// Prefetch the *next* node's neighborhood before fetching this one.
		g := w.opts.Graph
		nv := g.TrainNode(w.rng.Split())
		keys := append([]uint64{nv}, g.SampleNeighbors(nv, w.opts.Fanout, w.salt)...)
		h.Lookahead(keys)
	}
	t0 := time.Now()
	if err := w.fetch(h); err != nil {
		return 0, 0, 0, err
	}
	t1 := time.Now()

	label := w.opts.Graph.Label(w.nodes1[0])
	var t2 time.Time
	switch w.opts.Kind {
	case KindGraphSage:
		for i, u := range w.nodes1 {
			copy(w.eSelf[i], w.g.emb(u))
			mean := w.eMean[i]
			zero32(mean)
			for _, x := range w.nbh[i] {
				e := w.g.emb(x)
				for d := 0; d < w.dim; d++ {
					mean[d] += e[d] / float32(len(w.nbh[i]))
				}
			}
		}
		// Forward+backward happen inside Step; split timing evenly.
		_, _, dSelf, dMean := w.sage.Step(w.eSelf, w.eMean, label)
		t2 = time.Now()
		for i, u := range w.nodes1 {
			w.g.accumulate(u, dSelf[i], 1)
			for _, x := range w.nbh[i] {
				w.g.accumulate(x, dMean[i], 1/float32(len(w.nbh[i])))
			}
		}
	case KindGAT:
		for i, u := range w.nodes1 {
			copy(w.inputs[i][0], w.g.emb(u))
			for j, x := range w.nbh[i] {
				copy(w.inputs[i][j+1], w.g.emb(x))
			}
		}
		_, _, dIn := w.gat.Step(w.inputs, label)
		t2 = time.Now()
		for i, u := range w.nodes1 {
			w.g.accumulate(u, dIn[i][0], 1)
			for j, x := range w.nbh[i] {
				w.g.accumulate(x, dIn[i][j+1], 1)
			}
		}
	}

	// Apply and write back each unique node once — including nodes fetched
	// without gradient, which still owe their write (clock balance).
	t3 := time.Now()
	if err := w.g.scatter(h, w.opts.EmbLR); err != nil {
		return 0, 0, 0, err
	}
	t4 := time.Now()
	half := t2.Sub(t1) / 2
	return t1.Sub(t0) + t4.Sub(t3), half, t2.Sub(t1) - half + t3.Sub(t2), nil
}

func (w *gnnWorker) apply() {
	switch w.opts.Kind {
	case KindGraphSage:
		w.sage.Apply(w.opts.DenseLR)
	case KindGAT:
		w.gat.Apply(w.opts.DenseLR)
	}
}

// evalGNNAccuracy scores fresh nodes with Peek.
func evalGNNAccuracy(opts GNNOptions, h Handle) float64 {
	w := newGNNWorker(opts, 0xe7a1)
	correct := 0
	peek := func(u uint64, dst []float32) {
		if found, _ := h.Peek(u, dst); !found {
			zero32(dst)
		}
	}
	for i := 0; i < opts.EvalNodes; i++ {
		w.sample()
		label := opts.Graph.Label(w.nodes1[0])
		var pred int
		switch opts.Kind {
		case KindGraphSage:
			for j, u := range w.nodes1 {
				peek(u, w.eSelf[j])
				zero32(w.eMean[j])
				tmp := make([]float32, w.dim)
				for _, x := range w.nbh[j] {
					peek(x, tmp)
					for d := 0; d < w.dim; d++ {
						w.eMean[j][d] += tmp[d] / float32(len(w.nbh[j]))
					}
				}
			}
			pred = w.sage.Predict(w.eSelf, w.eMean)
		case KindGAT:
			for j, u := range w.nodes1 {
				peek(u, w.inputs[j][0])
				for jj, x := range w.nbh[j] {
					peek(x, w.inputs[j][jj+1])
				}
			}
			pred = w.gat.Predict(w.inputs)
		}
		if pred == label {
			correct++
		}
	}
	return float64(correct) / float64(opts.EvalNodes) * 100
}
