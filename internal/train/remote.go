package train

import (
	"fmt"

	"github.com/llm-db/mlkv-go/internal/client"
	"github.com/llm-db/mlkv-go/internal/core"
	"github.com/llm-db/mlkv-go/internal/kv"
)

// RemoteBackend trains against a live mlkv-server: every handle is a
// session of an internal/client connection pool speaking the pipelined
// wire protocol, so a worker's per-step gather and scatter travel as one
// GETBATCH and one PUTBATCH frame, Lookahead hints as one LOOKAHEAD
// frame, and evaluation reads as clock-free PEEKs. First-touch
// initialization runs on the trainer side (the server stores raw bytes),
// seeded per key so every worker initializes a given embedding
// identically.
type RemoteBackend struct {
	*KVBackend
	c *client.Client

	// Lookahead hints are fire-and-forget on a local table but a blocking
	// round trip on the wire, so remote handles hand them to a background
	// worker with its own session; a full queue drops the hint, matching
	// core.Table's prefetch-pool semantics. lookCh is never closed —
	// handles may race Lookahead against Close, and a hint sent after
	// shutdown simply sits in (or falls off) the queue.
	lookCh   chan []uint64
	lookStop chan struct{}
	lookDone chan struct{}
}

// DialRemote connects conns pooled connections to a mlkv-server at addr
// and validates that the server's value size matches dim float32s.
//
// conns must be at least the number of concurrently training handles.
// Under a blocking staleness bound (BSP or finite SSP) a clocked read can
// wait for another worker's write; two workers sharing one connection
// would also share the server's per-connection handler goroutine, and the
// blocked worker's frame would stall the very write that unblocks it.
func DialRemote(addr string, dim int, init core.Initializer, conns int) (*RemoteBackend, error) {
	c, err := client.Dial(addr, client.Options{Conns: conns})
	if err != nil {
		return nil, err
	}
	if vs := c.ValueSize(); vs != dim*4 {
		c.Close()
		return nil, fmt.Errorf("train: server value size %d B != dim %d × 4 B (start mlkv-server with -valuesize %d)",
			vs, dim, dim*4)
	}
	b := &RemoteBackend{
		KVBackend: NewKVBackend(c, dim, init),
		c:         c,
		lookCh:    make(chan []uint64, 1024),
		lookStop:  make(chan struct{}),
		lookDone:  make(chan struct{}),
	}
	go b.lookaheadWorker()
	return b, nil
}

func (b *RemoteBackend) lookaheadWorker() {
	defer close(b.lookDone)
	s, err := b.c.NewSession()
	if err != nil {
		return
	}
	defer s.Close()
	for {
		select {
		case <-b.lookStop:
			return
		case keys := <-b.lookCh:
			// Hints are best-effort: a transient server error drops this
			// hint, not the whole prefetch pipeline. Once the pool closes,
			// lookStop is already closed and the next iteration exits.
			if _, err := kv.SessionLookahead(s, keys); err != nil {
				continue
			}
		}
	}
}

// NewHandle returns a remote session whose Lookahead is asynchronous.
func (b *RemoteBackend) NewHandle() (Handle, error) {
	h, err := b.KVBackend.NewHandle()
	if err != nil {
		return nil, err
	}
	return &remoteHandle{Handle: h, b: b}, nil
}

type remoteHandle struct {
	Handle
	b *RemoteBackend
}

// Lookahead enqueues the hint for the backend's prefetch worker, which
// ships it as one LOOKAHEAD frame; hints beyond the queue capacity drop.
func (h *remoteHandle) Lookahead(keys []uint64) {
	if len(keys) == 0 {
		return
	}
	cp := append([]uint64(nil), keys...) // caller reuses its slice
	select {
	case h.b.lookCh <- cp:
	default:
	}
}

// Client exposes the underlying connection pool (stats, checkpoint).
func (b *RemoteBackend) Client() *client.Client { return b.c }

// Close stops the prefetch worker and tears down the connection pool;
// open handles fail afterwards (and their Lookahead hints drop).
func (b *RemoteBackend) Close() error {
	close(b.lookStop)
	err := b.c.Close()
	<-b.lookDone
	return err
}
