package train

import (
	mlkv "github.com/llm-db/mlkv-go"
	"github.com/llm-db/mlkv-go/internal/core"
)

// ModelBackend adapts a public mlkv.Model to the trainer seam — the same
// backend for an in-process table and a remote mlkv-server, because the
// public API hides the target behind its driver. A worker's per-step
// gather and scatter travel as one GetBatch and one PutBatch (one framed
// round trip each on a remote model), Lookahead hints are asynchronous on
// both targets, and evaluation reads are clock-free Peeks.
type ModelBackend struct {
	M            *mlkv.Model
	UseLookahead bool
}

// NewModelBackend wraps a model. useLookahead enables Lookahead hints
// (MLKV's prefetch interface); when false Lookahead is a no-op (the
// plain-FASTER baseline, which has no such interface).
func NewModelBackend(m *mlkv.Model, useLookahead bool) *ModelBackend {
	return &ModelBackend{M: m, UseLookahead: useLookahead}
}

// Name identifies the engine ("mlkv", "faster", or "remote(<engine>)").
func (b *ModelBackend) Name() string { return b.M.EngineName() }

// Dim returns the embedding dimension.
func (b *ModelBackend) Dim() int { return b.M.Dim() }

// NewHandle registers a session on the model.
func (b *ModelBackend) NewHandle() (Handle, error) {
	s, err := b.M.NewSession()
	if err != nil {
		return nil, err
	}
	return &modelHandle{b: b, s: s}, nil
}

type modelHandle struct {
	b *ModelBackend
	s *mlkv.Session
}

func (h *modelHandle) Get(key uint64, dst []float32) error { return h.s.Get(key, dst) }
func (h *modelHandle) GetBatch(keys []uint64, dst []float32) error {
	return h.s.GetBatch(keys, dst)
}
func (h *modelHandle) Put(key uint64, val []float32) error { return h.s.Put(key, val) }
func (h *modelHandle) PutBatch(keys []uint64, vals []float32) error {
	return h.s.PutBatch(keys, vals)
}
func (h *modelHandle) Peek(key uint64, dst []float32) (bool, error) {
	return h.s.Peek(key, dst)
}
func (h *modelHandle) Lookahead(keys []uint64) {
	if h.b.UseLookahead {
		h.s.Lookahead(keys) //nolint:errcheck // best-effort hint
	}
}
func (h *modelHandle) Close() { h.s.Close() }

// RemoteBackend trains against a live mlkv-server through the public API:
// a ModelBackend over a model opened from an mlkv.Connect("mlkv://...")
// DB that the backend owns.
type RemoteBackend struct {
	*ModelBackend
	db *mlkv.DB
}

// DialRemote connects conns pooled connections to a mlkv-server at addr
// and opens (or creates) the named model with the given dimension.
// First-touch initialization runs on the trainer side with init, seeded
// per key so every worker initializes a given embedding identically.
// Extra model options (e.g. mlkv.WithCache for a trainer-side hot tier)
// append after the initializer.
//
// conns must be at least the number of concurrently training handles.
// Under a blocking staleness bound (BSP or finite SSP) a clocked read can
// wait for another worker's write; two workers sharing one connection
// would also share the server's per-connection handler goroutine, and the
// blocked worker's frame would stall the very write that unblocks it.
func DialRemote(addr, model string, dim int, init core.Initializer, conns int, opts ...mlkv.Option) (*RemoteBackend, error) {
	db, err := mlkv.Connect(mlkv.Scheme+addr, mlkv.WithConns(conns))
	if err != nil {
		return nil, err
	}
	mopts := append([]mlkv.Option{mlkv.WithInitializer(init)}, opts...)
	m, err := db.Open(model, dim, mopts...)
	if err != nil {
		db.Close()
		return nil, err
	}
	return &RemoteBackend{ModelBackend: NewModelBackend(m, true), db: db}, nil
}

// Model exposes the underlying public model (stats, checkpoint).
func (b *RemoteBackend) Model() *mlkv.Model { return b.M }

// Close releases the model and tears down the connection pool; open
// handles fail afterwards (and their Lookahead hints drop).
func (b *RemoteBackend) Close() error {
	err := b.M.Close()
	if cerr := b.db.Close(); err == nil {
		err = cerr
	}
	return err
}
