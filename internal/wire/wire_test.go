package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/util"
)

// TestFrameRoundTrip is the frame-layer property test: random frames must
// survive a write/read cycle byte-exactly, alone and back to back.
func TestFrameRoundTrip(t *testing.T) {
	r := util.NewRNG(1)
	var buf bytes.Buffer
	type sent struct {
		corrID  uint32
		op      Op
		payload []byte
	}
	var frames []sent
	for i := 0; i < 200; i++ {
		f := sent{
			corrID: uint32(r.Uint64()),
			op:     Op(r.Uint64n(256)),
		}
		n := int(r.Uint64n(512))
		f.payload = make([]byte, n)
		for j := range f.payload {
			f.payload[j] = byte(r.Uint64())
		}
		if err := WriteFrame(&buf, f.corrID, f.op, f.payload); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.CorrID != want.corrID || got.Op != want.op || !bytes.Equal(got.Payload, want.payload) {
			t.Fatalf("frame %d mismatch: got corr=%d op=%d %d bytes, want corr=%d op=%d %d bytes",
				i, got.CorrID, got.Op, len(got.Payload), want.corrID, want.op, len(want.payload))
		}
	}
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("after last frame: want io.EOF, got %v", err)
	}
}

// TestFrameTruncated cuts a valid frame at every byte boundary: all but
// the zero-length cut must yield io.ErrUnexpectedEOF, never a partial
// frame or a hang.
func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 7, OpPut, []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 0; cut < len(whole); cut++ {
		_, err := ReadFrame(bytes.NewReader(whole[:cut]), 0)
		want := io.ErrUnexpectedEOF
		if cut == 0 {
			want = io.EOF
		}
		if !errors.Is(err, want) {
			t.Fatalf("cut at %d: want %v, got %v", cut, want, err)
		}
	}
}

// TestFrameLimits covers the oversized- and malformed-length error paths.
func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 1, OpGet, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bytes.NewReader(buf.Bytes()), 64); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// A length below corrID+op can never frame a message.
	if _, err := ReadFrame(bytes.NewReader([]byte{4, 0, 0, 0, 9, 9, 9, 9}), 0); !errors.Is(err, ErrMalformed) {
		t.Fatalf("want ErrMalformed, got %v", err)
	}
}

// TestPayloadRoundTrips drives every op payload through encode/decode with
// randomized contents.
func TestPayloadRoundTrips(t *testing.T) {
	r := util.NewRNG(2)
	const vs = 24
	randVal := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Uint64())
		}
		return b
	}
	randKeys := func(n int) []uint64 {
		ks := make([]uint64, n)
		for i := range ks {
			ks[i] = r.Uint64()
		}
		return ks
	}

	if v, err := DecodeHello(EncodeHello()); err != nil || v != Version {
		t.Fatalf("hello: v=%d err=%v", v, err)
	}
	if vsz, sh, name, err := DecodeHelloResp(EncodeHelloResp(vs, 4, "mlkv")); err != nil || vsz != vs || sh != 4 || name != "mlkv" {
		t.Fatalf("hello resp: %d %d %q %v", vsz, sh, name, err)
	}
	if k, err := DecodeKey(EncodeKey(0xdeadbeef)); err != nil || k != 0xdeadbeef {
		t.Fatalf("key: %x %v", k, err)
	}

	val := randVal(vs)
	k2, v2, err := DecodePut(EncodePut(42, val), vs)
	if err != nil || k2 != 42 || !bytes.Equal(v2, val) {
		t.Fatalf("put: %d %v", k2, err)
	}

	dst := make([]byte, vs)
	if found, err := DecodeGetResp(EncodeGetResp(true, val), dst); err != nil || !found || !bytes.Equal(dst, val) {
		t.Fatalf("get hit: %v %v", found, err)
	}
	if found, err := DecodeGetResp(EncodeGetResp(false, nil), dst); err != nil || found {
		t.Fatalf("get miss: %v %v", found, err)
	}

	for _, n := range []int{0, 1, 7, 256} {
		keys := randKeys(n)
		got, err := DecodeKeys(EncodeKeys(keys), nil)
		if err != nil || len(got) != n {
			t.Fatalf("keys n=%d: len=%d %v", n, len(got), err)
		}
		for i := range keys {
			if got[i] != keys[i] {
				t.Fatalf("keys n=%d: [%d] = %d want %d", n, i, got[i], keys[i])
			}
		}

		vals := randVal(n * vs)
		gk, gv, err := DecodePutBatch(EncodePutBatch(keys, vals), vs, nil)
		if err != nil || len(gk) != n || !bytes.Equal(gv, vals) {
			t.Fatalf("putbatch n=%d: %v", n, err)
		}

		found := make([]bool, n)
		for i := range found {
			found[i] = r.Uint64n(2) == 1
		}
		df, dv := make([]bool, n), make([]byte, n*vs)
		if err := DecodeGetBatchResp(EncodeGetBatchResp(found, vals), vs, df, dv); err != nil {
			t.Fatalf("getbatch resp n=%d: %v", n, err)
		}
		for i := range found {
			if df[i] != found[i] {
				t.Fatalf("getbatch resp n=%d: found[%d] = %v", n, i, df[i])
			}
		}
		if !bytes.Equal(dv, vals) {
			t.Fatalf("getbatch resp n=%d: values differ", n)
		}
	}

	if v, err := DecodeUint32(EncodeUint32(77)); err != nil || v != 77 {
		t.Fatalf("uint32: %d %v", v, err)
	}

	snap := faster.StatsSnapshot{Gets: 1, Puts: 2, RMWs: 3, Deletes: 4,
		MemHits: 5, DiskReads: 6, InPlaceUpdates: 7, RCUAppends: 8,
		PrefetchCopies: 9, AbandonedAppends: 10, StalenessWaits: 11,
		FlushedPages: 12, BytesFlushed: 13}
	got, err := DecodeStatsResp(EncodeStatsResp(snap))
	if err != nil || got != snap {
		t.Fatalf("stats: %+v %v", got, err)
	}
}

// TestDecodeRejectsTruncation feeds every decoder every proper prefix of a
// valid payload: each must error (never panic, never accept).
func TestDecodeRejectsTruncation(t *testing.T) {
	const vs = 16
	keys := []uint64{1, 2, 3}
	vals := bytes.Repeat([]byte{9}, 3*vs)
	found := []bool{true, false, true}
	cases := []struct {
		name    string
		payload []byte
		decode  func([]byte) error
	}{
		{"hello", EncodeHello(), func(p []byte) error { _, err := DecodeHello(p); return err }},
		{"helloResp", EncodeHelloResp(vs, 2, "x"), func(p []byte) error { _, _, _, err := DecodeHelloResp(p); return err }},
		{"key", EncodeKey(5), func(p []byte) error { _, err := DecodeKey(p); return err }},
		{"put", EncodePut(5, vals[:vs]), func(p []byte) error { _, _, err := DecodePut(p, vs); return err }},
		{"getRespHit", EncodeGetResp(true, vals[:vs]), func(p []byte) error {
			_, err := DecodeGetResp(p, make([]byte, vs))
			return err
		}},
		{"keys", EncodeKeys(keys), func(p []byte) error { _, err := DecodeKeys(p, nil); return err }},
		{"putBatch", EncodePutBatch(keys, vals), func(p []byte) error { _, _, err := DecodePutBatch(p, vs, nil); return err }},
		{"getBatchResp", EncodeGetBatchResp(found, vals), func(p []byte) error {
			return DecodeGetBatchResp(p, vs, make([]bool, 3), make([]byte, 3*vs))
		}},
		{"uint32", EncodeUint32(9), func(p []byte) error { _, err := DecodeUint32(p); return err }},
		{"stats", EncodeStatsResp(faster.StatsSnapshot{Gets: 1}), func(p []byte) error { _, err := DecodeStatsResp(p); return err }},
	}
	for _, tc := range cases {
		if err := tc.decode(tc.payload); err != nil {
			t.Fatalf("%s: valid payload rejected: %v", tc.name, err)
		}
		for cut := 0; cut < len(tc.payload); cut++ {
			if tc.name == "helloResp" && cut >= 8 {
				continue // a shorter name tail is still a valid response
			}
			if err := tc.decode(tc.payload[:cut]); err == nil {
				t.Fatalf("%s: accepted %d/%d-byte prefix", tc.name, cut, len(tc.payload))
			}
		}
		if err := tc.decode(append(append([]byte{}, tc.payload...), 0)); err == nil && tc.name != "helloResp" {
			// helloResp legitimately carries a variable-length name tail.
			t.Fatalf("%s: accepted payload with a trailing byte", tc.name)
		}
	}
}

// TestBatchLimit verifies the decoder refuses batches beyond MaxBatchKeys
// before reading key data.
func TestBatchLimit(t *testing.T) {
	p := make([]byte, 4)
	p[0], p[1], p[2] = 0xff, 0xff, 0xff // n = 16M, far over the limit
	if _, err := DecodeKeys(p, nil); err == nil {
		t.Fatal("oversized key count accepted")
	}
	if _, _, err := DecodePutBatch(p, 8, nil); err == nil {
		t.Fatal("oversized PUTBATCH count accepted")
	}
}
