package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/util"
)

// TestFrameRoundTrip is the frame-layer property test: random frames must
// survive a write/read cycle byte-exactly, alone and back to back.
func TestFrameRoundTrip(t *testing.T) {
	r := util.NewRNG(1)
	var buf bytes.Buffer
	type sent struct {
		corrID  uint32
		op      Op
		payload []byte
	}
	var frames []sent
	for i := 0; i < 200; i++ {
		f := sent{
			corrID: uint32(r.Uint64()),
			op:     Op(r.Uint64n(256)),
		}
		n := int(r.Uint64n(512))
		f.payload = make([]byte, n)
		for j := range f.payload {
			f.payload[j] = byte(r.Uint64())
		}
		if err := WriteFrame(&buf, f.corrID, f.op, f.payload); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.CorrID != want.corrID || got.Op != want.op || !bytes.Equal(got.Payload, want.payload) {
			t.Fatalf("frame %d mismatch: got corr=%d op=%d %d bytes, want corr=%d op=%d %d bytes",
				i, got.CorrID, got.Op, len(got.Payload), want.corrID, want.op, len(want.payload))
		}
	}
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("after last frame: want io.EOF, got %v", err)
	}
}

// TestFrameTruncated cuts a valid frame at every byte boundary: all but
// the zero-length cut must yield io.ErrUnexpectedEOF, never a partial
// frame or a hang.
func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 7, OpPut, []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 0; cut < len(whole); cut++ {
		_, err := ReadFrame(bytes.NewReader(whole[:cut]), 0)
		want := io.ErrUnexpectedEOF
		if cut == 0 {
			want = io.EOF
		}
		if !errors.Is(err, want) {
			t.Fatalf("cut at %d: want %v, got %v", cut, want, err)
		}
	}
}

// TestFrameLimits covers the oversized- and malformed-length error paths.
func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 1, OpGet, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bytes.NewReader(buf.Bytes()), 64); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// A length below corrID+op can never frame a message.
	if _, err := ReadFrame(bytes.NewReader([]byte{4, 0, 0, 0, 9, 9, 9, 9}), 0); !errors.Is(err, ErrMalformed) {
		t.Fatalf("want ErrMalformed, got %v", err)
	}
}

// stripHandle asserts the payload's handle prefix and returns the per-op
// remainder, mirroring what the server does on every data frame.
func stripHandle(t *testing.T, p []byte, want uint32) []byte {
	t.Helper()
	h, rest, err := DecodeHandle(p)
	if err != nil {
		t.Fatal(err)
	}
	if h != want {
		t.Fatalf("handle = %d, want %d", h, want)
	}
	return rest
}

// TestPayloadRoundTrips drives every op payload through encode/decode with
// randomized contents.
func TestPayloadRoundTrips(t *testing.T) {
	r := util.NewRNG(2)
	const vs = 24
	const hdl = uint32(7)
	randVal := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Uint64())
		}
		return b
	}
	randKeys := func(n int) []uint64 {
		ks := make([]uint64, n)
		for i := range ks {
			ks[i] = r.Uint64()
		}
		return ks
	}

	if v, err := DecodeHello(EncodeHello()); err != nil || v != Version {
		t.Fatalf("hello: v=%d err=%v", v, err)
	}
	if v, name, err := DecodeHelloResp(EncodeHelloResp("mlkv")); err != nil || v != Version || name != "mlkv" {
		t.Fatalf("hello resp: %d %q %v", v, name, err)
	}

	id, dim, sh, bound, eng, err := DecodeOpen(mustEncodeOpen(t, "ctr-model", 16, 4, 8, ""))
	if err != nil || id != "ctr-model" || dim != 16 || sh != 4 || bound != 8 || eng != "" {
		t.Fatalf("open: %q %d %d %d %q %v", id, dim, sh, bound, eng, err)
	}
	if _, _, _, b, _, err := DecodeOpen(mustEncodeOpen(t, "m", 8, 0, BoundUnset, "")); err != nil || b != BoundUnset {
		t.Fatalf("open unset bound: %d %v", b, err)
	}
	// The engine extension survives a round trip for every engine, and an
	// engine-less frame stays byte-identical to the pre-engine layout.
	for _, wantEng := range []string{"faster", "lsm", "bptree"} {
		id, _, _, _, eng, err := DecodeOpen(mustEncodeOpen(t, "m-1", 8, 2, 4, wantEng))
		if err != nil || id != "m-1" || eng != wantEng {
			t.Fatalf("open engine %q: id=%q eng=%q err=%v", wantEng, id, eng, err)
		}
	}
	if _, err := EncodeOpen("m", 8, 0, 4, "rocksdb"); err == nil {
		t.Fatal("EncodeOpen accepted unknown engine")
	}
	plain := mustEncodeOpen(t, "m", 8, 2, 4, "")
	if len(plain) != 16+1 {
		t.Fatalf("engine-less OPEN grew to %d bytes (must stay v2-identical)", len(plain))
	}
	oh, odim, osh, ob, oname, err := DecodeOpenResp(EncodeOpenResp(3, 16, 4, -1, "mlkv"))
	if err != nil || oh != 3 || odim != 16 || osh != 4 || ob != -1 || oname != "mlkv" {
		t.Fatalf("open resp: %d %d %d %d %q %v", oh, odim, osh, ob, oname, err)
	}

	if h, rest, err := DecodeHandle(EncodeHandle(hdl)); err != nil || h != hdl || len(rest) != 0 {
		t.Fatalf("handle: %d %d %v", h, len(rest), err)
	}
	if k, err := DecodeKey(stripHandle(t, EncodeKey(hdl, 0xdeadbeef), hdl)); err != nil || k != 0xdeadbeef {
		t.Fatalf("key: %x %v", k, err)
	}
	if k, w, err := DecodeGet(stripHandle(t, EncodeGet(hdl, 0xfeed, 1500), hdl)); err != nil || k != 0xfeed || w != 1500 {
		t.Fatalf("get: %x wait=%d %v", k, w, err)
	}

	val := randVal(vs)
	k2, v2, err := DecodePut(stripHandle(t, EncodePut(hdl, 42, val), hdl), vs)
	if err != nil || k2 != 42 || !bytes.Equal(v2, val) {
		t.Fatalf("put: %d %v", k2, err)
	}

	dst := make([]byte, vs)
	if found, err := DecodeGetResp(EncodeGetResp(true, val), dst); err != nil || !found || !bytes.Equal(dst, val) {
		t.Fatalf("get hit: %v %v", found, err)
	}
	if found, err := DecodeGetResp(EncodeGetResp(false, nil), dst); err != nil || found {
		t.Fatalf("get miss: %v %v", found, err)
	}

	for _, n := range []int{0, 1, 7, 256} {
		keys := randKeys(n)
		got, err := DecodeKeys(stripHandle(t, EncodeKeys(hdl, keys), hdl), nil)
		if err != nil || len(got) != n {
			t.Fatalf("keys n=%d: len=%d %v", n, len(got), err)
		}
		for i := range keys {
			if got[i] != keys[i] {
				t.Fatalf("keys n=%d: [%d] = %d want %d", n, i, got[i], keys[i])
			}
		}

		gb, gw, err := DecodeGetBatch(stripHandle(t, EncodeGetBatch(hdl, 250, keys), hdl), nil)
		if err != nil || len(gb) != n || gw != 250 {
			t.Fatalf("getbatch n=%d: len=%d wait=%d %v", n, len(gb), gw, err)
		}

		vals := randVal(n * vs)
		gk, gv, err := DecodePutBatch(stripHandle(t, EncodePutBatch(hdl, keys, vals), hdl), vs, nil)
		if err != nil || len(gk) != n || !bytes.Equal(gv, vals) {
			t.Fatalf("putbatch n=%d: %v", n, err)
		}

		found := make([]bool, n)
		for i := range found {
			found[i] = r.Uint64n(2) == 1
		}
		df, dv := make([]bool, n), make([]byte, n*vs)
		if err := DecodeGetBatchResp(EncodeGetBatchResp(found, vals), vs, df, dv); err != nil {
			t.Fatalf("getbatch resp n=%d: %v", n, err)
		}
		for i := range found {
			if df[i] != found[i] {
				t.Fatalf("getbatch resp n=%d: found[%d] = %v", n, i, df[i])
			}
		}
		if !bytes.Equal(dv, vals) {
			t.Fatalf("getbatch resp n=%d: values differ", n)
		}
	}

	if v, err := DecodeUint32(EncodeUint32(77)); err != nil || v != 77 {
		t.Fatalf("uint32: %d %v", v, err)
	}

	snap := ModelStats{StatsSnapshot: faster.StatsSnapshot{
		Gets: 1, Puts: 2, RMWs: 3, Deletes: 4,
		MemHits: 5, DiskReads: 6, InPlaceUpdates: 7, RCUAppends: 8,
		PrefetchCopies: 9, AbandonedAppends: 10, StalenessWaits: 11,
		FlushedPages: 12, BytesFlushed: 13},
		BatchGets: 14, BatchPuts: 15, LookaheadFrames: 16, ActiveSessions: 17}
	got, err := DecodeStatsResp(EncodeStatsResp(snap))
	if err != nil || got != snap {
		t.Fatalf("stats: %+v %v", got, err)
	}
}

// mustEncodeOpen is EncodeOpen for known-good engines in tests.
func mustEncodeOpen(t *testing.T, id string, dim, shards int, bound int64, engine string) []byte {
	t.Helper()
	p, err := EncodeOpen(id, dim, shards, bound, engine)
	if err != nil {
		t.Fatalf("EncodeOpen(%q): %v", engine, err)
	}
	return p
}

// TestDecodeRejectsTruncation feeds every decoder every proper prefix of a
// valid payload: each must error (never panic, never accept).
func TestDecodeRejectsTruncation(t *testing.T) {
	const vs = 16
	keys := []uint64{1, 2, 3}
	vals := bytes.Repeat([]byte{9}, 3*vs)
	found := []bool{true, false, true}
	// Variable-length string tails: a shorter tail is still a valid payload.
	varTail := map[string]int{"helloResp": 4, "open": 16, "openEngine": 18, "openResp": 20}
	cases := []struct {
		name    string
		payload []byte
		decode  func([]byte) error
	}{
		{"hello", EncodeHello(), func(p []byte) error { _, err := DecodeHello(p); return err }},
		{"helloResp", EncodeHelloResp("x"), func(p []byte) error { _, _, err := DecodeHelloResp(p); return err }},
		{"open", mustEncodeOpen(t, "m", 8, 2, 4, ""), func(p []byte) error { _, _, _, _, _, err := DecodeOpen(p); return err }},
		{"openEngine", mustEncodeOpen(t, "m", 8, 2, 4, "lsm"), func(p []byte) error { _, _, _, _, _, err := DecodeOpen(p); return err }},
		{"openResp", EncodeOpenResp(1, 8, 2, 4, "x"), func(p []byte) error { _, _, _, _, _, err := DecodeOpenResp(p); return err }},
		{"handle", EncodeHandle(5), func(p []byte) error { _, _, err := DecodeHandle(p); return err }},
		{"key", stripHandle(t, EncodeKey(1, 5), 1), func(p []byte) error { _, err := DecodeKey(p); return err }},
		{"get", stripHandle(t, EncodeGet(1, 5, 9), 1), func(p []byte) error { _, _, err := DecodeGet(p); return err }},
		{"getBatch", stripHandle(t, EncodeGetBatch(1, 9, keys), 1), func(p []byte) error { _, _, err := DecodeGetBatch(p, nil); return err }},
		{"put", stripHandle(t, EncodePut(1, 5, vals[:vs]), 1), func(p []byte) error { _, _, err := DecodePut(p, vs); return err }},
		{"getRespHit", EncodeGetResp(true, vals[:vs]), func(p []byte) error {
			_, err := DecodeGetResp(p, make([]byte, vs))
			return err
		}},
		{"keys", stripHandle(t, EncodeKeys(1, keys), 1), func(p []byte) error { _, err := DecodeKeys(p, nil); return err }},
		{"putBatch", stripHandle(t, EncodePutBatch(1, keys, vals), 1), func(p []byte) error { _, _, err := DecodePutBatch(p, vs, nil); return err }},
		{"getBatchResp", EncodeGetBatchResp(found, vals), func(p []byte) error {
			return DecodeGetBatchResp(p, vs, make([]bool, 3), make([]byte, 3*vs))
		}},
		{"uint32", EncodeUint32(9), func(p []byte) error { _, err := DecodeUint32(p); return err }},
		{"stats", EncodeStatsResp(ModelStats{BatchGets: 1}), func(p []byte) error { _, err := DecodeStatsResp(p); return err }},
	}
	for _, tc := range cases {
		if err := tc.decode(tc.payload); err != nil {
			t.Fatalf("%s: valid payload rejected: %v", tc.name, err)
		}
		minLen, hasTail := varTail[tc.name]
		for cut := 0; cut < len(tc.payload); cut++ {
			if hasTail && cut >= minLen {
				continue // a shorter string tail is still a valid payload
			}
			if err := tc.decode(tc.payload[:cut]); err == nil {
				t.Fatalf("%s: accepted %d/%d-byte prefix", tc.name, cut, len(tc.payload))
			}
		}
		if tc.name == "handle" {
			continue // the handle prefix legitimately carries the op payload
		}
		if err := tc.decode(append(append([]byte{}, tc.payload...), 0)); err == nil && !hasTail {
			t.Fatalf("%s: accepted payload with a trailing byte", tc.name)
		}
	}
}

// TestBatchLimit verifies the decoder refuses batches beyond MaxBatchKeys
// before reading key data.
func TestBatchLimit(t *testing.T) {
	p := make([]byte, 4)
	p[0], p[1], p[2] = 0xff, 0xff, 0xff // n = 16M, far over the limit
	if _, err := DecodeKeys(p, nil); err == nil {
		t.Fatal("oversized key count accepted")
	}
	if _, _, err := DecodePutBatch(p, 8, nil); err == nil {
		t.Fatal("oversized PUTBATCH count accepted")
	}
}
