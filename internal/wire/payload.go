package wire

import (
	"encoding/binary"
	"fmt"

	"github.com/llm-db/mlkv-go/internal/faster"
)

// Payload layouts, one section per op. Every decoder checks lengths
// exactly — a payload with trailing or missing bytes is an error, never a
// silent truncation — and returns ErrShortPayload-wrapped errors so the
// server can answer RespErr without dropping the connection.

// EncodeHello builds the HELLO request: uint32 version.
func EncodeHello() []byte {
	p := make([]byte, 4)
	binary.LittleEndian.PutUint32(p, Version)
	return p
}

// DecodeHello parses a HELLO request.
func DecodeHello(p []byte) (version uint32, err error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("%w: HELLO wants 4 bytes, got %d", ErrShortPayload, len(p))
	}
	return binary.LittleEndian.Uint32(p), nil
}

// EncodeHelloResp builds the HELLO response: uint32 valueSize | uint32
// shards | name bytes.
func EncodeHelloResp(valueSize, shards int, name string) []byte {
	p := make([]byte, 8+len(name))
	binary.LittleEndian.PutUint32(p[0:], uint32(valueSize))
	binary.LittleEndian.PutUint32(p[4:], uint32(shards))
	copy(p[8:], name)
	return p
}

// DecodeHelloResp parses a HELLO response.
func DecodeHelloResp(p []byte) (valueSize, shards int, name string, err error) {
	if len(p) < 8 {
		return 0, 0, "", fmt.Errorf("%w: HELLO response wants >= 8 bytes, got %d", ErrShortPayload, len(p))
	}
	return int(binary.LittleEndian.Uint32(p[0:])),
		int(binary.LittleEndian.Uint32(p[4:])),
		string(p[8:]), nil
}

// EncodeKey builds a single-key request payload (GET, DELETE).
func EncodeKey(key uint64) []byte {
	p := make([]byte, 8)
	binary.LittleEndian.PutUint64(p, key)
	return p
}

// DecodeKey parses a single-key request.
func DecodeKey(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("%w: key wants 8 bytes, got %d", ErrShortPayload, len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// EncodePut builds a PUT request: uint64 key | valueSize value bytes.
func EncodePut(key uint64, val []byte) []byte {
	p := make([]byte, 8+len(val))
	binary.LittleEndian.PutUint64(p, key)
	copy(p[8:], val)
	return p
}

// DecodePut parses a PUT request; val aliases p.
func DecodePut(p []byte, valueSize int) (key uint64, val []byte, err error) {
	if len(p) != 8+valueSize {
		return 0, nil, fmt.Errorf("%w: PUT wants %d bytes, got %d", ErrShortPayload, 8+valueSize, len(p))
	}
	return binary.LittleEndian.Uint64(p), p[8:], nil
}

// EncodeGetResp builds a GET response: uint8 found | value (present only
// when found).
func EncodeGetResp(found bool, val []byte) []byte {
	if !found {
		return []byte{0}
	}
	p := make([]byte, 1+len(val))
	p[0] = 1
	copy(p[1:], val)
	return p
}

// DecodeGetResp parses a GET response into dst (len == valueSize).
func DecodeGetResp(p []byte, dst []byte) (bool, error) {
	if len(p) < 1 {
		return false, fmt.Errorf("%w: empty GET response", ErrShortPayload)
	}
	if p[0] == 0 {
		if len(p) != 1 {
			return false, fmt.Errorf("%w: GET miss carries %d extra bytes", ErrShortPayload, len(p)-1)
		}
		return false, nil
	}
	if len(p) != 1+len(dst) {
		return false, fmt.Errorf("%w: GET hit wants %d bytes, got %d", ErrShortPayload, 1+len(dst), len(p))
	}
	copy(dst, p[1:])
	return true, nil
}

// EncodeKeys builds a key-list request (GETBATCH, LOOKAHEAD): uint32 n |
// n×uint64 keys.
func EncodeKeys(keys []uint64) []byte {
	p := make([]byte, 4+8*len(keys))
	binary.LittleEndian.PutUint32(p, uint32(len(keys)))
	for i, k := range keys {
		binary.LittleEndian.PutUint64(p[4+8*i:], k)
	}
	return p
}

// DecodeKeys parses a key-list request, appending into buf (which may be
// nil) to let callers reuse one slice across frames.
func DecodeKeys(p []byte, buf []uint64) ([]uint64, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: key list wants >= 4 bytes, got %d", ErrShortPayload, len(p))
	}
	n := int(binary.LittleEndian.Uint32(p))
	if n > MaxBatchKeys {
		return nil, fmt.Errorf("wire: batch of %d keys exceeds limit %d", n, MaxBatchKeys)
	}
	if len(p) != 4+8*n {
		return nil, fmt.Errorf("%w: %d-key list wants %d bytes, got %d", ErrShortPayload, n, 4+8*n, len(p))
	}
	buf = buf[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, binary.LittleEndian.Uint64(p[4+8*i:]))
	}
	return buf, nil
}

// EncodePutBatch builds a PUTBATCH request: uint32 n | n×uint64 keys |
// n×valueSize values.
func EncodePutBatch(keys []uint64, vals []byte) []byte {
	p := make([]byte, 4+8*len(keys)+len(vals))
	binary.LittleEndian.PutUint32(p, uint32(len(keys)))
	for i, k := range keys {
		binary.LittleEndian.PutUint64(p[4+8*i:], k)
	}
	copy(p[4+8*len(keys):], vals)
	return p
}

// DecodePutBatch parses a PUTBATCH request; vals aliases p.
func DecodePutBatch(p []byte, valueSize int, buf []uint64) (keys []uint64, vals []byte, err error) {
	if len(p) < 4 {
		return nil, nil, fmt.Errorf("%w: PUTBATCH wants >= 4 bytes, got %d", ErrShortPayload, len(p))
	}
	n := int(binary.LittleEndian.Uint32(p))
	if n > MaxBatchKeys {
		return nil, nil, fmt.Errorf("wire: batch of %d keys exceeds limit %d", n, MaxBatchKeys)
	}
	want := 4 + n*(8+valueSize)
	if len(p) != want {
		return nil, nil, fmt.Errorf("%w: %d-key PUTBATCH wants %d bytes, got %d", ErrShortPayload, n, want, len(p))
	}
	buf = buf[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, binary.LittleEndian.Uint64(p[4+8*i:]))
	}
	return buf, p[4+8*n:], nil
}

// EncodeGetBatchResp builds a GETBATCH response: uint32 n | n found bytes
// | n×valueSize values (missing keys zeroed, keeping offsets fixed).
func EncodeGetBatchResp(found []bool, vals []byte) []byte {
	n := len(found)
	p := make([]byte, 4+n+len(vals))
	binary.LittleEndian.PutUint32(p, uint32(n))
	for i, f := range found {
		if f {
			p[4+i] = 1
		}
	}
	copy(p[4+n:], vals)
	return p
}

// DecodeGetBatchResp parses a GETBATCH response into found (len n) and
// vals (len n×valueSize).
func DecodeGetBatchResp(p []byte, valueSize int, found []bool, vals []byte) error {
	if len(p) < 4 {
		return fmt.Errorf("%w: GETBATCH response wants >= 4 bytes, got %d", ErrShortPayload, len(p))
	}
	n := int(binary.LittleEndian.Uint32(p))
	if n != len(found) {
		return fmt.Errorf("wire: GETBATCH response for %d keys, expected %d", n, len(found))
	}
	want := 4 + n*(1+valueSize)
	if len(p) != want {
		return fmt.Errorf("%w: %d-key GETBATCH response wants %d bytes, got %d", ErrShortPayload, n, want, len(p))
	}
	for i := range found {
		found[i] = p[4+i] != 0
	}
	copy(vals, p[4+n:])
	return nil
}

// EncodeUint32 builds a bare counter payload (LOOKAHEAD response).
func EncodeUint32(v uint32) []byte {
	p := make([]byte, 4)
	binary.LittleEndian.PutUint32(p, v)
	return p
}

// DecodeUint32 parses a bare counter payload.
func DecodeUint32(p []byte) (uint32, error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("%w: counter wants 4 bytes, got %d", ErrShortPayload, len(p))
	}
	return binary.LittleEndian.Uint32(p), nil
}

// statsFields lists the snapshot's counters in wire order. Appending new
// counters at the end keeps old readers working: the response carries its
// own field count and each side reads the prefix both understand.
func statsFields(s *faster.StatsSnapshot) []*int64 {
	return []*int64{
		&s.Gets, &s.Puts, &s.RMWs, &s.Deletes, &s.MemHits, &s.DiskReads,
		&s.InPlaceUpdates, &s.RCUAppends, &s.PrefetchCopies,
		&s.AbandonedAppends, &s.StalenessWaits, &s.FlushedPages,
		&s.BytesFlushed,
	}
}

// EncodeStatsResp builds a STATS response: uint32 field count | count
// int64 counters in statsFields order.
func EncodeStatsResp(s faster.StatsSnapshot) []byte {
	fields := statsFields(&s)
	p := make([]byte, 4+8*len(fields))
	binary.LittleEndian.PutUint32(p, uint32(len(fields)))
	for i, f := range fields {
		binary.LittleEndian.PutUint64(p[4+8*i:], uint64(*f))
	}
	return p
}

// DecodeStatsResp parses a STATS response, tolerating a server that
// reports more trailing counters than this client knows.
func DecodeStatsResp(p []byte) (faster.StatsSnapshot, error) {
	var s faster.StatsSnapshot
	if len(p) < 4 {
		return s, fmt.Errorf("%w: STATS response wants >= 4 bytes, got %d", ErrShortPayload, len(p))
	}
	n := int(binary.LittleEndian.Uint32(p))
	if len(p) != 4+8*n {
		return s, fmt.Errorf("%w: %d-field STATS response wants %d bytes, got %d", ErrShortPayload, n, 4+8*n, len(p))
	}
	fields := statsFields(&s)
	if n < len(fields) {
		return s, fmt.Errorf("wire: STATS response has %d fields, need %d", n, len(fields))
	}
	for i, f := range fields {
		*f = int64(binary.LittleEndian.Uint64(p[4+8*i:]))
	}
	return s, nil
}
