package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/latency"
)

// Payload layouts, one section per op. Every decoder checks lengths
// exactly — a payload with trailing or missing bytes is an error, never a
// silent truncation — and returns ErrShortPayload-wrapped errors so the
// server can answer RespErr without dropping the connection.
//
// Since protocol version 2 every data-op payload starts with the uint32
// model handle returned by OPEN; servers strip it with DecodeHandle and
// hand the rest to the per-op decoder.

// BoundUnset is the staleness-bound sentinel in an OPEN request meaning
// "the caller did not specify a bound": the server applies its default to
// a new model and leaves an existing model's bound untouched.
const BoundUnset = int64(math.MinInt64)

// EncodeHello builds the HELLO request: uint32 version.
func EncodeHello() []byte {
	p := make([]byte, 4)
	binary.LittleEndian.PutUint32(p, Version)
	return p
}

// DecodeHello parses a HELLO request.
func DecodeHello(p []byte) (version uint32, err error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("%w: HELLO wants 4 bytes, got %d", ErrShortPayload, len(p))
	}
	return binary.LittleEndian.Uint32(p), nil
}

// EncodeHelloResp builds the HELLO response: uint32 version | server name
// bytes. Store geometry moved to the OPEN response in version 2 — a
// multi-model server has no single value size or shard count to report.
func EncodeHelloResp(name string) []byte {
	p := make([]byte, 4+len(name))
	binary.LittleEndian.PutUint32(p[0:], Version)
	copy(p[4:], name)
	return p
}

// DecodeHelloResp parses a HELLO response.
func DecodeHelloResp(p []byte) (version uint32, name string, err error) {
	if len(p) < 4 {
		return 0, "", fmt.Errorf("%w: HELLO response wants >= 4 bytes, got %d", ErrShortPayload, len(p))
	}
	return binary.LittleEndian.Uint32(p[0:]), string(p[4:]), nil
}

// engineMarker introduces the optional engine extension in an OPEN
// request. Model ids are restricted to ASCII letters, digits, '.', '_',
// and '-' (see the server's validation), so 0xFF can never be an id's
// first byte: its presence at the id position unambiguously signals the
// extension without a protocol version bump. An OPEN with no engine
// requested is byte-identical to the version-2 layout, so pre-engine
// clients keep getting the server's default (FASTER), and an
// engine-requesting OPEN sent to a pre-engine server fails its model-id
// validation with a clean RespErr rather than misparsing.
const engineMarker = 0xFF

// Engine codes carried in the OPEN extension byte.
const (
	engineCodeUnset  = 0 // no engine requested (same as omitting the extension)
	engineCodeFaster = 1
	engineCodeLSM    = 2
	engineCodeBPTree = 3
)

func engineCode(engine string) (byte, error) {
	switch engine {
	case "":
		return engineCodeUnset, nil
	case "faster":
		return engineCodeFaster, nil
	case "lsm":
		return engineCodeLSM, nil
	case "bptree":
		return engineCodeBPTree, nil
	}
	return 0, fmt.Errorf("wire: unknown engine %q in OPEN", engine)
}

func engineName(code byte) (string, error) {
	switch code {
	case engineCodeUnset:
		return "", nil
	case engineCodeFaster:
		return "faster", nil
	case engineCodeLSM:
		return "lsm", nil
	case engineCodeBPTree:
		return "bptree", nil
	}
	return "", fmt.Errorf("wire: unknown engine code %d in OPEN", code)
}

// EncodeOpen builds an OPEN request: uint32 dim | uint32 shards (0 lets
// the server choose) | int64 staleness bound (BoundUnset for the server
// default) | [0xFF marker | engine code, when an engine is requested] |
// model id bytes. engine "" omits the extension entirely, keeping the
// frame byte-identical to protocol version 2.
func EncodeOpen(id string, dim, shards int, bound int64, engine string) ([]byte, error) {
	code, err := engineCode(engine)
	if err != nil {
		return nil, err
	}
	ext := 0
	if code != engineCodeUnset {
		ext = 2
	}
	p := make([]byte, 16+ext+len(id))
	binary.LittleEndian.PutUint32(p[0:], uint32(dim))
	binary.LittleEndian.PutUint32(p[4:], uint32(shards))
	binary.LittleEndian.PutUint64(p[8:], uint64(bound))
	if ext != 0 {
		p[16] = engineMarker
		p[17] = code
	}
	copy(p[16+ext:], id)
	return p, nil
}

// DecodeOpen parses an OPEN request. engine is "" when the client did not
// request one (the server applies its default to a new model and leaves an
// existing model's engine untouched).
func DecodeOpen(p []byte) (id string, dim, shards int, bound int64, engine string, err error) {
	if len(p) < 17 {
		return "", 0, 0, 0, "", fmt.Errorf("%w: OPEN wants >= 17 bytes, got %d", ErrShortPayload, len(p))
	}
	idb := p[16:]
	if idb[0] == engineMarker {
		if len(idb) < 3 {
			return "", 0, 0, 0, "", fmt.Errorf("%w: OPEN engine extension truncated", ErrShortPayload)
		}
		engine, err = engineName(idb[1])
		if err != nil {
			return "", 0, 0, 0, "", err
		}
		idb = idb[2:]
	}
	return string(idb),
		int(binary.LittleEndian.Uint32(p[0:])),
		int(binary.LittleEndian.Uint32(p[4:])),
		int64(binary.LittleEndian.Uint64(p[8:])), engine, nil
}

// EncodeOpenResp builds an OPEN response: uint32 handle | uint32 dim |
// uint32 shards | int64 staleness bound in effect | engine name bytes.
func EncodeOpenResp(handle uint32, dim, shards int, bound int64, name string) []byte {
	p := make([]byte, 20+len(name))
	binary.LittleEndian.PutUint32(p[0:], handle)
	binary.LittleEndian.PutUint32(p[4:], uint32(dim))
	binary.LittleEndian.PutUint32(p[8:], uint32(shards))
	binary.LittleEndian.PutUint64(p[12:], uint64(bound))
	copy(p[20:], name)
	return p
}

// DecodeOpenResp parses an OPEN response.
func DecodeOpenResp(p []byte) (handle uint32, dim, shards int, bound int64, name string, err error) {
	if len(p) < 20 {
		return 0, 0, 0, 0, "", fmt.Errorf("%w: OPEN response wants >= 20 bytes, got %d", ErrShortPayload, len(p))
	}
	return binary.LittleEndian.Uint32(p[0:]),
		int(binary.LittleEndian.Uint32(p[4:])),
		int(binary.LittleEndian.Uint32(p[8:])),
		int64(binary.LittleEndian.Uint64(p[12:])),
		string(p[20:]), nil
}

// EncodeHandle builds a bare-handle payload (ATTACH, DETACH, CHECKPOINT,
// STATS) or the handle prefix of a data op.
func EncodeHandle(handle uint32) []byte {
	p := make([]byte, 4)
	binary.LittleEndian.PutUint32(p, handle)
	return p
}

// DecodeHandle strips the uint32 model handle every data payload starts
// with, returning the remainder for the per-op decoder.
func DecodeHandle(p []byte) (handle uint32, rest []byte, err error) {
	if len(p) < 4 {
		return 0, nil, fmt.Errorf("%w: handle wants >= 4 bytes, got %d", ErrShortPayload, len(p))
	}
	return binary.LittleEndian.Uint32(p), p[4:], nil
}

// The Append* builders are the zero-allocation faces of their Encode*
// counterparts: they append the payload to dst (usually a caller-owned
// scratch sliced to [:0]) and return the extended slice, so a session
// issuing millions of requests reuses one buffer instead of allocating
// per frame. Encode* remains for cold paths and tests.

// AppendKey appends a single-key request payload (PEEK, DELETE).
func AppendKey(dst []byte, handle uint32, key uint64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, handle)
	return binary.LittleEndian.AppendUint64(dst, key)
}

// EncodeKey builds a single-key request payload (PEEK, DELETE):
// uint32 handle | uint64 key.
func EncodeKey(handle uint32, key uint64) []byte {
	return AppendKey(make([]byte, 0, 12), handle, key)
}

// AppendGet appends a GET request payload (see EncodeGet).
func AppendGet(dst []byte, handle uint32, key uint64, waitMs uint32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, handle)
	dst = binary.LittleEndian.AppendUint64(dst, key)
	return binary.LittleEndian.AppendUint32(dst, waitMs)
}

// EncodeGet builds a GET request: uint32 handle | uint64 key | uint32
// waitMs. waitMs carries the client's remaining context budget (0 = wait
// forever): a clocked read stalled on the staleness bound gives up
// server-side at the deadline instead of stranding a token on a request
// the client has already abandoned.
func EncodeGet(handle uint32, key uint64, waitMs uint32) []byte {
	return AppendGet(make([]byte, 0, 16), handle, key, waitMs)
}

// DecodeGet parses a GET request (after DecodeHandle).
func DecodeGet(p []byte) (key uint64, waitMs uint32, err error) {
	if len(p) != 12 {
		return 0, 0, fmt.Errorf("%w: GET wants 12 bytes, got %d", ErrShortPayload, len(p))
	}
	return binary.LittleEndian.Uint64(p), binary.LittleEndian.Uint32(p[8:]), nil
}

// DecodeKey parses a single-key request (after DecodeHandle).
func DecodeKey(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("%w: key wants 8 bytes, got %d", ErrShortPayload, len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// AppendPut appends a PUT request payload (see EncodePut).
func AppendPut(dst []byte, handle uint32, key uint64, val []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, handle)
	dst = binary.LittleEndian.AppendUint64(dst, key)
	return append(dst, val...)
}

// EncodePut builds a PUT request: uint32 handle | uint64 key | valueSize
// value bytes.
func EncodePut(handle uint32, key uint64, val []byte) []byte {
	return AppendPut(make([]byte, 0, 12+len(val)), handle, key, val)
}

// DecodePut parses a PUT request (after DecodeHandle); val aliases p.
func DecodePut(p []byte, valueSize int) (key uint64, val []byte, err error) {
	if len(p) != 8+valueSize {
		return 0, nil, fmt.Errorf("%w: PUT wants %d bytes, got %d", ErrShortPayload, 8+valueSize, len(p))
	}
	return binary.LittleEndian.Uint64(p), p[8:], nil
}

// AppendGetResp appends a GET response payload (see EncodeGetResp).
func AppendGetResp(dst []byte, found bool, val []byte) []byte {
	if !found {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return append(dst, val...)
}

// EncodeGetResp builds a GET response: uint8 found | value (present only
// when found).
func EncodeGetResp(found bool, val []byte) []byte {
	return AppendGetResp(make([]byte, 0, 1+len(val)), found, val)
}

// DecodeGetResp parses a GET response into dst (len == valueSize).
func DecodeGetResp(p []byte, dst []byte) (bool, error) {
	if len(p) < 1 {
		return false, fmt.Errorf("%w: empty GET response", ErrShortPayload)
	}
	if p[0] == 0 {
		if len(p) != 1 {
			return false, fmt.Errorf("%w: GET miss carries %d extra bytes", ErrShortPayload, len(p)-1)
		}
		return false, nil
	}
	if len(p) != 1+len(dst) {
		return false, fmt.Errorf("%w: GET hit wants %d bytes, got %d", ErrShortPayload, 1+len(dst), len(p))
	}
	copy(dst, p[1:])
	return true, nil
}

// AppendGetBatch appends a GETBATCH request payload (see EncodeGetBatch).
func AppendGetBatch(dst []byte, handle uint32, waitMs uint32, keys []uint64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, handle)
	dst = binary.LittleEndian.AppendUint32(dst, waitMs)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	for _, k := range keys {
		dst = binary.LittleEndian.AppendUint64(dst, k)
	}
	return dst
}

// EncodeGetBatch builds a GETBATCH request: uint32 handle | uint32
// waitMs (see EncodeGet) | uint32 n | n×uint64 keys.
func EncodeGetBatch(handle uint32, waitMs uint32, keys []uint64) []byte {
	return AppendGetBatch(make([]byte, 0, 12+8*len(keys)), handle, waitMs, keys)
}

// DecodeGetBatch parses a GETBATCH request (after DecodeHandle),
// appending keys into buf like DecodeKeys.
func DecodeGetBatch(p []byte, buf []uint64) (keys []uint64, waitMs uint32, err error) {
	if len(p) < 4 {
		return nil, 0, fmt.Errorf("%w: GETBATCH wants >= 4 bytes, got %d", ErrShortPayload, len(p))
	}
	waitMs = binary.LittleEndian.Uint32(p)
	keys, err = DecodeKeys(p[4:], buf)
	return keys, waitMs, err
}

// AppendKeys appends a key-list request payload (see EncodeKeys).
func AppendKeys(dst []byte, handle uint32, keys []uint64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, handle)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	for _, k := range keys {
		dst = binary.LittleEndian.AppendUint64(dst, k)
	}
	return dst
}

// EncodeKeys builds a key-list request (LOOKAHEAD): uint32
// handle | uint32 n | n×uint64 keys.
func EncodeKeys(handle uint32, keys []uint64) []byte {
	return AppendKeys(make([]byte, 0, 8+8*len(keys)), handle, keys)
}

// DecodeKeys parses a key-list request (after DecodeHandle), appending
// into buf (which may be nil) to let callers reuse one slice across
// frames.
func DecodeKeys(p []byte, buf []uint64) ([]uint64, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: key list wants >= 4 bytes, got %d", ErrShortPayload, len(p))
	}
	n := int(binary.LittleEndian.Uint32(p))
	if n > MaxBatchKeys {
		return nil, fmt.Errorf("wire: batch of %d keys exceeds limit %d", n, MaxBatchKeys)
	}
	if len(p) != 4+8*n {
		return nil, fmt.Errorf("%w: %d-key list wants %d bytes, got %d", ErrShortPayload, n, 4+8*n, len(p))
	}
	buf = buf[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, binary.LittleEndian.Uint64(p[4+8*i:]))
	}
	return buf, nil
}

// AppendPutBatch appends a PUTBATCH request payload (see EncodePutBatch).
func AppendPutBatch(dst []byte, handle uint32, keys []uint64, vals []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, handle)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	for _, k := range keys {
		dst = binary.LittleEndian.AppendUint64(dst, k)
	}
	return append(dst, vals...)
}

// EncodePutBatch builds a PUTBATCH request: uint32 handle | uint32 n |
// n×uint64 keys | n×valueSize values.
func EncodePutBatch(handle uint32, keys []uint64, vals []byte) []byte {
	return AppendPutBatch(make([]byte, 0, 8+8*len(keys)+len(vals)), handle, keys, vals)
}

// DecodePutBatch parses a PUTBATCH request (after DecodeHandle); vals
// aliases p.
func DecodePutBatch(p []byte, valueSize int, buf []uint64) (keys []uint64, vals []byte, err error) {
	if len(p) < 4 {
		return nil, nil, fmt.Errorf("%w: PUTBATCH wants >= 4 bytes, got %d", ErrShortPayload, len(p))
	}
	n := int(binary.LittleEndian.Uint32(p))
	if n > MaxBatchKeys {
		return nil, nil, fmt.Errorf("wire: batch of %d keys exceeds limit %d", n, MaxBatchKeys)
	}
	want := 4 + n*(8+valueSize)
	if len(p) != want {
		return nil, nil, fmt.Errorf("%w: %d-key PUTBATCH wants %d bytes, got %d", ErrShortPayload, n, want, len(p))
	}
	buf = buf[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, binary.LittleEndian.Uint64(p[4+8*i:]))
	}
	return buf, p[4+8*n:], nil
}

// EncodeGetBatchResp builds a GETBATCH response: uint32 n | n found bytes
// | n×valueSize values (missing keys zeroed, keeping offsets fixed).
func EncodeGetBatchResp(found []bool, vals []byte) []byte {
	n := len(found)
	p := make([]byte, 4+n+len(vals))
	binary.LittleEndian.PutUint32(p, uint32(n))
	for i, f := range found {
		if f {
			p[4+i] = 1
		}
	}
	copy(p[4+n:], vals)
	return p
}

// DecodeGetBatchResp parses a GETBATCH response into found (len n) and
// vals (len n×valueSize).
func DecodeGetBatchResp(p []byte, valueSize int, found []bool, vals []byte) error {
	if len(p) < 4 {
		return fmt.Errorf("%w: GETBATCH response wants >= 4 bytes, got %d", ErrShortPayload, len(p))
	}
	n := int(binary.LittleEndian.Uint32(p))
	if n != len(found) {
		return fmt.Errorf("wire: GETBATCH response for %d keys, expected %d", n, len(found))
	}
	want := 4 + n*(1+valueSize)
	if len(p) != want {
		return fmt.Errorf("%w: %d-key GETBATCH response wants %d bytes, got %d", ErrShortPayload, n, want, len(p))
	}
	for i := range found {
		found[i] = p[4+i] != 0
	}
	copy(vals, p[4+n:])
	return nil
}

// EncodeUint32 builds a bare counter payload (LOOKAHEAD response).
func EncodeUint32(v uint32) []byte {
	p := make([]byte, 4)
	binary.LittleEndian.PutUint32(p, v)
	return p
}

// DecodeUint32 parses a bare counter payload.
func DecodeUint32(p []byte) (uint32, error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("%w: counter wants 4 bytes, got %d", ErrShortPayload, len(p))
	}
	return binary.LittleEndian.Uint32(p), nil
}

// ModelStats is the STATS payload for one model: the engine's merged
// counters plus the serving layer's batch/lookahead frame counts and the
// model's active remote-session gauge.
type ModelStats struct {
	faster.StatsSnapshot
	// BatchGets / BatchPuts count GETBATCH / PUTBATCH frames served.
	BatchGets int64
	BatchPuts int64
	// LookaheadFrames counts LOOKAHEAD frames served.
	LookaheadFrames int64
	// ActiveSessions is the attach-minus-detach balance: how many remote
	// client sessions are currently open on the model.
	ActiveSessions int64
	// CacheHits / CacheMisses / CacheEvictions are the server-side hot
	// tier's counters (zero unless the server runs with -cache).
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	// Per-op-class latency summaries (nanoseconds), recorded around the
	// store calls in the conn handler. LatRMW stays zero on the wire
	// today — the protocol has no RMW frame — but the slot keeps the
	// class set uniform across server, client, and core reporting.
	LatGet      latency.Snapshot
	LatGetBatch latency.Snapshot
	LatPut      latency.Snapshot
	LatPutBatch latency.Snapshot
	LatRMW      latency.Snapshot
	// ReplicaLag is how far this model's replication stream trails its
	// primary, in write events (primary head − last applied sequence). Zero
	// on primaries and non-clustered servers. The cluster router reads it to
	// decide whether an SSP read may be served from this replica:
	// hotcache.Admissible(bound, ReplicaLag).
	ReplicaLag int64
}

// latFields appends one latency summary's fields in wire order.
func latFields(dst []*int64, s *latency.Snapshot) []*int64 {
	return append(dst, &s.Count, &s.Sum, &s.Max, &s.P50, &s.P90, &s.P99, &s.P999)
}

// statsFields lists the counters in wire order. Appending new counters at
// the end keeps old readers working: the response carries its own field
// count and each side reads the prefix both understand. (GroupCommits and
// FlushPaceStalls arrived after the latency block, so they sit at the tail
// even though their struct fields live in the engine snapshot.)
func statsFields(s *ModelStats) []*int64 {
	fields := []*int64{
		&s.Gets, &s.Puts, &s.RMWs, &s.Deletes, &s.MemHits, &s.DiskReads,
		&s.InPlaceUpdates, &s.RCUAppends, &s.PrefetchCopies,
		&s.AbandonedAppends, &s.StalenessWaits, &s.FlushedPages,
		&s.BytesFlushed,
		&s.BatchGets, &s.BatchPuts, &s.LookaheadFrames, &s.ActiveSessions,
		&s.CacheHits, &s.CacheMisses, &s.CacheEvictions,
	}
	for _, l := range []*latency.Snapshot{
		&s.LatGet, &s.LatGetBatch, &s.LatPut, &s.LatPutBatch, &s.LatRMW,
	} {
		fields = latFields(fields, l)
	}
	return append(fields, &s.GroupCommits, &s.FlushPaceStalls, &s.ReplicaLag)
}

// EncodeStatsResp builds a STATS response: uint32 field count | count
// int64 counters in statsFields order.
func EncodeStatsResp(s ModelStats) []byte {
	fields := statsFields(&s)
	p := make([]byte, 4+8*len(fields))
	binary.LittleEndian.PutUint32(p, uint32(len(fields)))
	for i, f := range fields {
		binary.LittleEndian.PutUint64(p[4+8*i:], uint64(*f))
	}
	return p
}

// DecodeStatsResp parses a STATS response, reading the field prefix both
// sides understand: a server that reports more trailing counters than this
// client knows is fine (the extras are skipped), and a server predating
// the newest tail counters leaves them zero instead of failing the call.
func DecodeStatsResp(p []byte) (ModelStats, error) {
	var s ModelStats
	if len(p) < 4 {
		return s, fmt.Errorf("%w: STATS response wants >= 4 bytes, got %d", ErrShortPayload, len(p))
	}
	n := int(binary.LittleEndian.Uint32(p))
	if len(p) != 4+8*n {
		return s, fmt.Errorf("%w: %d-field STATS response wants %d bytes, got %d", ErrShortPayload, n, 4+8*n, len(p))
	}
	fields := statsFields(&s)
	if n < len(fields) {
		fields = fields[:n]
	}
	for i, f := range fields {
		*f = int64(binary.LittleEndian.Uint64(p[4+8*i:]))
	}
	return s, nil
}

// Replication write kinds carried in a REPLWRITE frame.
const (
	// ReplPut upserts every key with its value.
	ReplPut byte = 0
	// ReplDelete removes every key (the frame carries no values).
	ReplDelete byte = 1
)

// AppendReplWrite appends a REPLWRITE request payload: uint32 handle |
// uint64 seq | uint64 head | uint8 kind | uint32 n | n×uint64 keys |
// [n×valueSize values, ReplPut only]. seq numbers this event in the
// primary's per-model replication stream; head is the newest sequence the
// primary had assigned when the frame was sent, so the replica advertises
// head−seq as its lag.
func AppendReplWrite(dst []byte, handle uint32, seq, head uint64, kind byte, keys []uint64, vals []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, handle)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint64(dst, head)
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	for _, k := range keys {
		dst = binary.LittleEndian.AppendUint64(dst, k)
	}
	return append(dst, vals...)
}

// DecodeReplWrite parses a REPLWRITE request (after DecodeHandle),
// appending keys into buf like DecodeKeys; vals aliases p and is empty for
// ReplDelete.
func DecodeReplWrite(p []byte, valueSize int, buf []uint64) (seq, head uint64, kind byte, keys []uint64, vals []byte, err error) {
	if len(p) < 21 {
		return 0, 0, 0, nil, nil, fmt.Errorf("%w: REPLWRITE wants >= 21 bytes, got %d", ErrShortPayload, len(p))
	}
	seq = binary.LittleEndian.Uint64(p)
	head = binary.LittleEndian.Uint64(p[8:])
	kind = p[16]
	if kind != ReplPut && kind != ReplDelete {
		return 0, 0, 0, nil, nil, fmt.Errorf("wire: unknown REPLWRITE kind %d", kind)
	}
	n := int(binary.LittleEndian.Uint32(p[17:]))
	if n > MaxBatchKeys {
		return 0, 0, 0, nil, nil, fmt.Errorf("wire: batch of %d keys exceeds limit %d", n, MaxBatchKeys)
	}
	vs := 0
	if kind == ReplPut {
		vs = valueSize
	}
	want := 21 + n*(8+vs)
	if len(p) != want {
		return 0, 0, 0, nil, nil, fmt.Errorf("%w: %d-key REPLWRITE wants %d bytes, got %d", ErrShortPayload, n, want, len(p))
	}
	buf = buf[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, binary.LittleEndian.Uint64(p[21+8*i:]))
	}
	return seq, head, kind, buf, p[21+8*n:], nil
}
