// Package wire defines the framed binary protocol spoken between
// mlkv-server and its clients. Every message — request or response — is one
// frame:
//
//	uint32  length   (bytes that follow: corrID + op + payload, so >= 5)
//	uint32  corrID   (correlation id, echoed verbatim in the response)
//	uint8   op       (request opcode, or RespOK/RespErr in a response)
//	[]byte  payload  (op-specific, see payload.go)
//
// All integers are little-endian. Correlation IDs let a client pipeline
// many requests on one connection and match responses as they arrive; the
// server today answers in request order, but clients must not rely on
// that. Frames longer than the reader's limit are refused before the body
// is read, so a corrupt or hostile length prefix cannot force a giant
// allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Op identifies a frame type.
type Op uint8

// Request opcodes.
const (
	// OpHello opens a connection: the client announces its protocol
	// Version and learns the store's value size, shard count, and name.
	OpHello Op = 1 + iota
	// OpGet reads one key.
	OpGet
	// OpPut upserts one key.
	OpPut
	// OpDelete removes one key.
	OpDelete
	// OpGetBatch reads up to MaxBatchKeys keys in one frame; the server
	// fans the batch into the sharded store as one batched operation.
	OpGetBatch
	// OpPutBatch upserts up to MaxBatchKeys keys in one frame.
	OpPutBatch
	// OpLookahead asks the store to prefetch keys toward memory (the
	// network face of MLKV's look-ahead interface).
	OpLookahead
	// OpCheckpoint makes the store durable.
	OpCheckpoint
	// OpStats fetches the store's merged operation counters.
	OpStats
	// OpPeek reads one key without consistency effects: no vector-clock
	// participation, no copy-to-tail. Evaluation traffic uses it so scoring
	// a model never leaves clock tokens that would stall training reads.
	// Payload layouts match GET. (Servers predating this op answer RespErr
	// and keep the connection usable; the request ops above keep their
	// values.)
	OpPeek
	// OpOpen creates or looks up a named model on the server — the wire
	// face of the paper's Open(model_id, dim, staleness_bound) — and
	// returns the model handle every subsequent data frame carries.
	OpOpen
	// OpAttach registers one client session on a model for this
	// connection. The server lazily opens its engine session on the first
	// attach and counts attaches minus detaches as the model's active
	// remote sessions, so drain tracking stays truthful.
	OpAttach
	// OpDetach releases one client session (the counterpart of OpAttach).
	// The engine session closes when the connection's last attach detaches.
	OpDetach
	// OpPeekBatch reads up to MaxBatchKeys keys in one frame with PEEK
	// semantics: no vector-clock participation, no copy-to-tail, never
	// blocks on a staleness bound. It is the idempotent duplicate the
	// client's hedged reads re-issue — a hedge must never acquire clock
	// tokens or block, or the duplicate could deadlock with its primary.
	// Request payload is AppendKeys (handle|n|keys — no wait budget, peeks
	// cannot block); the response reuses the GETBATCH layout.
	OpPeekBatch
	// OpClusterMap fetches the server's cluster topology: an epoch-numbered
	// map of node id → address → hash ranges → role (internal/cluster's
	// codec). Empty request payload. A server not running in cluster mode
	// answers RespErr and keeps the connection usable, which is also what
	// pre-cluster servers do for the unknown opcode — so a client may probe
	// any server with it to discover whether it fronts a cluster.
	OpClusterMap
	// OpClusterJoin announces a new node to a cluster member: the request
	// carries the joining node encoded as a single-node cluster map (epoch
	// ignored), the response carries the merged map at its new epoch. The
	// joiner then pushes that map to the remaining members with CLUSTERSYNC.
	OpClusterJoin
	// OpClusterSync gossips a cluster map between nodes: the request carries
	// an encoded map, the receiver adopts it if its epoch is newer than the
	// receiver's own, and the response carries the receiver's current map
	// (so a pusher with a stale map learns the newer one).
	OpClusterSync
	// OpReplWrite is the primary→replica replication frame: a batch of
	// upserts or deletes applied verbatim on the replica, stamped with the
	// stream's sequence number and the primary's head so the replica can
	// advertise its lag (head − seq) in the STATS ReplicaLag field. It
	// bypasses cluster ownership checks — it is how a replica legitimately
	// receives writes for ranges it does not own.
	OpReplWrite
	// OpClusterPing is the peer heartbeat: the request carries the sender's
	// health record (map epoch, replication watermark, and the peers it
	// currently suspects — internal/cluster's codec), the response carries
	// the receiver's. Both sides feed their failure detectors from the
	// exchange, so suspicion gossip rides the heartbeats themselves and
	// confirming a death needs no extra round trips. A server not running a
	// detector (or predating the op) answers RespErr and keeps the
	// connection usable.
	OpClusterPing
	// OpClusterLeave announces a planned departure: the payload names the
	// node shutting down, and receivers treat it as confirmed-dead
	// immediately — a graceful restart skips the suspicion timeout that an
	// actual crash must wait out.
	OpClusterLeave
)

// Response opcodes.
const (
	// RespOK carries the op-specific response payload.
	RespOK Op = 0x80
	// RespErr carries a UTF-8 error message; the connection stays usable.
	RespErr Op = 0x81
	// RespNotOwner rejects a data op whose key range belongs to another
	// cluster node. The payload is the server's current encoded cluster map,
	// so the client refreshes its topology and re-routes in one round trip
	// instead of probing for the owner. The connection stays usable.
	RespNotOwner Op = 0x82
)

// String names the opcode for diagnostics.
func (o Op) String() string {
	switch o {
	case OpHello:
		return "HELLO"
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDelete:
		return "DELETE"
	case OpGetBatch:
		return "GETBATCH"
	case OpPutBatch:
		return "PUTBATCH"
	case OpLookahead:
		return "LOOKAHEAD"
	case OpCheckpoint:
		return "CHECKPOINT"
	case OpStats:
		return "STATS"
	case OpPeek:
		return "PEEK"
	case OpOpen:
		return "OPEN"
	case OpAttach:
		return "ATTACH"
	case OpDetach:
		return "DETACH"
	case OpPeekBatch:
		return "PEEKBATCH"
	case OpClusterMap:
		return "CLUSTERMAP"
	case OpClusterJoin:
		return "CLUSTERJOIN"
	case OpClusterSync:
		return "CLUSTERSYNC"
	case OpReplWrite:
		return "REPLWRITE"
	case OpClusterPing:
		return "CLUSTERPING"
	case OpClusterLeave:
		return "CLUSTERLEAVE"
	case RespOK:
		return "OK"
	case RespErr:
		return "ERR"
	case RespNotOwner:
		return "NOTOWNER"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Version is the protocol revision carried in HELLO. A server refuses a
// mismatched client rather than guessing at payload layouts.
//
// Version 2 made the server multi-model: OPEN/ATTACH/DETACH were added,
// every data frame gained a uint32 model-handle prefix, the HELLO
// response dropped the single store's geometry (each OPEN response now
// carries its model's), and the STATS response grew batch/lookahead/
// session counters. Version-1 frames would misparse, so a v1 HELLO is
// answered with a clear RespErr and the connection closed.
const Version = 2

const (
	// minLength is the smallest legal length field: corrID + op.
	minLength = 5
	// headerSize is the fixed frame prefix: length + corrID + op.
	headerSize = 9
)

// DefaultMaxFrame bounds the length field when the caller passes 0 to
// ReadFrame: 16 MiB, comfortably above the largest legal batch frame.
const DefaultMaxFrame = 16 << 20

// MaxBatchKeys bounds keys per GETBATCH/PUTBATCH/LOOKAHEAD frame so the
// response (one found byte plus one value per key) stays well under
// DefaultMaxFrame at the largest value sizes the benchmarks use.
const MaxBatchKeys = 32768

// Protocol errors.
var (
	// ErrFrameTooLarge reports a length prefix beyond the reader's limit.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrMalformed reports a length prefix too small to hold a header.
	ErrMalformed = errors.New("wire: malformed frame")
	// ErrShortPayload reports a payload shorter than its op requires.
	ErrShortPayload = errors.New("wire: payload truncated")
)

// Frame is one decoded frame. Payload aliases the buffer ReadFrame
// allocated and is valid until the caller discards it.
type Frame struct {
	CorrID  uint32
	Op      Op
	Payload []byte
}

// WriteFrame writes one frame. The caller batches frames by passing a
// buffered writer and flushing when its pipeline drains. The header
// staging escapes to the heap through the io.Writer interface, so
// per-frame writers (connection loops) should hold a FrameWriter instead.
func WriteFrame(w io.Writer, corrID uint32, op Op, payload []byte) error {
	fw := FrameWriter{w: w}
	return fw.Write(corrID, op, payload)
}

// FrameWriter writes frames to one writer with a reusable header buffer,
// so a connection's write path allocates nothing per frame.
type FrameWriter struct {
	w   io.Writer
	hdr [headerSize]byte
}

// NewFrameWriter wraps w (normally a bufio.Writer owned by a connection).
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// Write writes one frame (see WriteFrame).
func (fw *FrameWriter) Write(corrID uint32, op Op, payload []byte) error {
	binary.LittleEndian.PutUint32(fw.hdr[0:], uint32(minLength+len(payload)))
	binary.LittleEndian.PutUint32(fw.hdr[4:], corrID)
	fw.hdr[8] = byte(op)
	if _, err := fw.w.Write(fw.hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := fw.w.Write(payload)
	return err
}

// ReadFrame reads one frame, refusing length fields above maxFrame
// (DefaultMaxFrame if 0) before allocating the body. A clean EOF between
// frames returns io.EOF; EOF inside a frame returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, maxFrame uint32) (Frame, error) {
	f, _, err := ReadFrameBuf(r, maxFrame, nil)
	return f, err
}

// ReadFrameBuf is ReadFrame with a caller-owned body buffer: the frame is
// read into buf when it fits (growing it otherwise) and the possibly
// grown buffer is returned for the next call, so a connection loop reads
// every frame with zero steady-state allocation. The returned
// Frame.Payload aliases the buffer and is valid only until the next use
// of it.
func ReadFrameBuf(r io.Reader, maxFrame uint32, buf []byte) (Frame, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, buf, io.ErrUnexpectedEOF
		}
		return Frame{}, buf, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < minLength {
		return Frame{}, buf, fmt.Errorf("%w: length %d < %d", ErrMalformed, n, minLength)
	}
	if maxFrame == 0 {
		maxFrame = DefaultMaxFrame
	}
	if n > maxFrame {
		return Frame{}, buf, fmt.Errorf("%w: length %d > limit %d", ErrFrameTooLarge, n, maxFrame)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	body := buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		if errors.Is(err, io.EOF) {
			return Frame{}, buf, io.ErrUnexpectedEOF
		}
		return Frame{}, buf, err
	}
	return Frame{
		CorrID:  binary.LittleEndian.Uint32(body[0:]),
		Op:      Op(body[4]),
		Payload: body[minLength:],
	}, buf, nil
}
