package lsm

import (
	"container/list"
	"sync"
)

// blockCache is a byte-capacity-bounded LRU cache over SSTable data blocks,
// the analogue of RocksDB's block cache. The configured capacity is the
// store's "buffer size" knob in the paper's Figure 7 sweeps.
type blockCache struct {
	mu       sync.Mutex
	capacity int
	used     int
	order    *list.List // front = most recent; values are *cacheItem
	items    map[cacheKey]*list.Element

	hits   int64
	misses int64
}

type cacheKey struct {
	file  uint64
	block int
}

type cacheItem struct {
	key  cacheKey
	data []byte
}

func newBlockCache(capacity int) *blockCache {
	return &blockCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[cacheKey]*list.Element),
	}
}

func (c *blockCache) get(file uint64, block int) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[cacheKey{file, block}]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).data, true
}

func (c *blockCache) put(file uint64, block int, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := cacheKey{file, block}
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.items[k] = c.order.PushFront(&cacheItem{key: k, data: data})
	c.used += len(data)
	for c.used > c.capacity && c.order.Len() > 1 {
		el := c.order.Back()
		item := el.Value.(*cacheItem)
		c.order.Remove(el)
		delete(c.items, item.key)
		c.used -= len(item.data)
	}
}

// dropFile evicts every cached block of a compacted-away file.
func (c *blockCache) dropFile(file uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		item := el.Value.(*cacheItem)
		if item.key.file == file {
			c.order.Remove(el)
			delete(c.items, item.key)
			c.used -= len(item.data)
		}
		el = next
	}
}

// stats reports hit/miss counters.
func (c *blockCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
