// Package lsm implements a RocksDB-style log-structured merge-tree store:
// an in-memory memtable (skip list) with a write-ahead log, immutable
// memtables flushed to block-based sorted-string tables with Bloom filters,
// leveled background compaction, and an LRU block cache. It serves as the
// paper's "industrial-strength LSM store" baseline (RocksDB in Figure 7).
package lsm

import (
	"sync"

	"github.com/llm-db/mlkv-go/internal/util"
)

const maxSkipLevel = 16

// entry is one memtable record. Value is nil for tombstones.
type entry struct {
	key  uint64
	val  []byte
	tomb bool
	next [maxSkipLevel]*entry
}

// memtable is a skip list over uint64 keys. A single RWMutex guards it:
// RocksDB's memtable also funnels writers through a WAL append lock, so the
// baseline's write path is comparably serialized.
type memtable struct {
	mu    sync.RWMutex
	head  *entry
	level int
	size  int // bytes of payload, for flush threshold accounting
	n     int
	rng   *util.RNG
}

func newMemtable(seed uint64) *memtable {
	return &memtable{head: &entry{}, level: 1, rng: util.NewRNG(seed)}
}

func (m *memtable) randomLevel() int {
	lvl := 1
	for lvl < maxSkipLevel && m.rng.Uint64()&3 == 0 {
		lvl++
	}
	return lvl
}

// put inserts or overwrites key. A nil val records a tombstone.
func (m *memtable) put(key uint64, val []byte, tomb bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var update [maxSkipLevel]*entry
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
		update[i] = x
	}
	if nx := x.next[0]; nx != nil && nx.key == key {
		m.size += len(val) - len(nx.val)
		nx.val = append(nx.val[:0], val...)
		nx.tomb = tomb
		return
	}
	lvl := m.randomLevel()
	if lvl > m.level {
		for i := m.level; i < lvl; i++ {
			update[i] = m.head
		}
		m.level = lvl
	}
	e := &entry{key: key, val: append([]byte(nil), val...), tomb: tomb}
	for i := 0; i < lvl; i++ {
		e.next[i] = update[i].next[i]
		update[i].next[i] = e
	}
	m.size += len(val) + 24
	m.n++
}

// get looks key up. ok reports presence (including tombstones).
func (m *memtable) get(key uint64, dst []byte) (ok, tomb bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
	}
	x = x.next[0]
	if x == nil || x.key != key {
		return false, false
	}
	if x.tomb {
		return true, true
	}
	copy(dst, x.val)
	return true, false
}

// bytes returns the approximate payload size.
func (m *memtable) bytes() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.size
}

// count returns the number of entries.
func (m *memtable) count() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.n
}

// all returns the entries in key order (used by flush; the memtable must be
// immutable by then).
func (m *memtable) all() []entry {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]entry, 0, m.n)
	for x := m.head.next[0]; x != nil; x = x.next[0] {
		out = append(out, entry{key: x.key, val: x.val, tomb: x.tomb})
	}
	return out
}
