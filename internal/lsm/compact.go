package lsm

import (
	"sort"
)

// Leveled compaction in the RocksDB style: when L0 accumulates cfg.L0Limit
// tables, all of L0 merges with the overlapping part of L1; when level i's
// byte size exceeds its budget (base × ratio^i), one table merges down into
// i+1. Newer versions win; tombstones are dropped when the merge output
// lands on the bottom-most populated level.

// maybeCompact runs compactions until no level is over budget.
func (s *Store) maybeCompact() error {
	s.compacting.Lock()
	defer s.compacting.Unlock()
	for {
		worked, err := s.compactOnce()
		if err != nil {
			return err
		}
		if !worked {
			return nil
		}
	}
}

func (s *Store) compactOnce() (bool, error) {
	v := s.ver.Load()
	if len(v.levels[0]) >= s.cfg.L0Limit {
		return true, s.compactL0(v)
	}
	base := int64(s.cfg.MemtableBytes) * int64(s.cfg.LevelRatio)
	budget := base
	for li := 1; li < len(v.levels); li++ {
		if levelBytes(v.levels[li]) > budget {
			return true, s.compactLevel(v, li)
		}
		budget *= int64(s.cfg.LevelRatio)
	}
	return false, nil
}

func levelBytes(lvl []*sstable) int64 {
	var sum int64
	for _, t := range lvl {
		sum += int64(t.entries) * int64(t.recSize)
	}
	return sum
}

// compactL0 merges every L0 table with the overlapping span of L1.
func (s *Store) compactL0(v *version) error {
	inputs := append([]*sstable(nil), v.levels[0]...)
	var lo, hi uint64 = ^uint64(0), 0
	for _, t := range inputs {
		if t.entries == 0 {
			continue
		}
		if t.minKey < lo {
			lo = t.minKey
		}
		if t.maxKey > hi {
			hi = t.maxKey
		}
	}
	var l1Keep, l1In []*sstable
	if len(v.levels) > 1 {
		for _, t := range v.levels[1] {
			if t.entries > 0 && t.maxKey >= lo && t.minKey <= hi {
				l1In = append(l1In, t)
			} else {
				l1Keep = append(l1Keep, t)
			}
		}
	}
	// Merge priority: L0 newest-first, then L1 (older than all of L0).
	ordered := make([]*sstable, 0, len(inputs)+len(l1In))
	for i := len(inputs) - 1; i >= 0; i-- {
		ordered = append(ordered, inputs[i])
	}
	ordered = append(ordered, l1In...)
	bottom := len(v.levels) <= 2 // output lands on the lowest populated level
	if len(v.levels) > 2 {
		bottom = levelsEmptyBelow(v, 2)
	}
	outs, err := s.mergeTables(ordered, bottom)
	if err != nil {
		return err
	}
	newL1 := append(append([]*sstable(nil), l1Keep...), outs...)
	sort.Slice(newL1, func(a, b int) bool { return newL1[a].minKey < newL1[b].minKey })

	s.mu.Lock()
	cur := s.ver.Load()
	nv := cloneVersion(cur)
	// L0 may have grown since we snapshotted; keep the tables we did not eat.
	nv.levels[0] = diffTables(cur.levels[0], inputs)
	if len(nv.levels) < 2 {
		nv.levels = append(nv.levels, nil)
	}
	nv.levels[1] = newL1
	s.ver.Store(nv)
	s.retireTables(append(inputs, l1In...))
	err = s.saveManifest()
	s.mu.Unlock()
	return err
}

// compactLevel pushes one table from level li down into li+1.
func (s *Store) compactLevel(v *version, li int) error {
	lvl := v.levels[li]
	if len(lvl) == 0 {
		return nil
	}
	// Pick the table with the smallest min key (simple deterministic choice).
	pick := lvl[0]
	for _, t := range lvl {
		if t.minKey < pick.minKey {
			pick = t
		}
	}
	var nextKeep, nextIn []*sstable
	if len(v.levels) > li+1 {
		for _, t := range v.levels[li+1] {
			if t.entries > 0 && t.maxKey >= pick.minKey && t.minKey <= pick.maxKey {
				nextIn = append(nextIn, t)
			} else {
				nextKeep = append(nextKeep, t)
			}
		}
	}
	bottom := levelsEmptyBelow(v, li+2)
	outs, err := s.mergeTables(append([]*sstable{pick}, nextIn...), bottom)
	if err != nil {
		return err
	}
	newNext := append(append([]*sstable(nil), nextKeep...), outs...)
	sort.Slice(newNext, func(a, b int) bool { return newNext[a].minKey < newNext[b].minKey })

	s.mu.Lock()
	cur := s.ver.Load()
	nv := cloneVersion(cur)
	nv.levels[li] = diffTables(cur.levels[li], []*sstable{pick})
	if len(nv.levels) < li+2 {
		nv.levels = append(nv.levels, nil)
	}
	nv.levels[li+1] = newNext
	s.ver.Store(nv)
	s.retireTables(append([]*sstable{pick}, nextIn...))
	err = s.saveManifest()
	s.mu.Unlock()
	return err
}

func levelsEmptyBelow(v *version, from int) bool {
	for li := from; li < len(v.levels); li++ {
		if len(v.levels[li]) > 0 {
			return false
		}
	}
	return true
}

// diffTables returns have minus remove (by identity).
func diffTables(have, remove []*sstable) []*sstable {
	rm := make(map[*sstable]bool, len(remove))
	for _, t := range remove {
		rm[t] = true
	}
	var out []*sstable
	for _, t := range have {
		if !rm[t] {
			out = append(out, t)
		}
	}
	return out
}

// retireTables moves replaced tables to the obsolete list and evicts their
// cached blocks. Files are closed and unlinked at Store.Close so that
// readers holding an older version snapshot never see a closed file.
// Callers hold s.mu.
func (s *Store) retireTables(ts []*sstable) {
	for _, t := range ts {
		s.cache.dropFile(t.num)
	}
	s.obsolete = append(s.obsolete, ts...)
}

// mergeTables k-way-merges the inputs (inputs[0] has the highest priority
// on key ties) and writes the result as a run of new tables.
func (s *Store) mergeTables(inputs []*sstable, dropTombstones bool) ([]*sstable, error) {
	// Load all records per input lazily via iterators. Inputs at our scale
	// are modest; stream block by block.
	iters := make([]*tableIter, len(inputs))
	for i, t := range inputs {
		iters[i] = newTableIter(t)
	}
	var outs []*sstable
	var pending []tableRec
	flushRun := func() error {
		if len(pending) == 0 {
			return nil
		}
		s.mu.Lock()
		num := s.nextFile
		s.nextFile++
		s.mu.Unlock()
		t, err := writeTable(s.tablePath(num), num, pending, s.cfg.ValueSize)
		if err != nil {
			return err
		}
		outs = append(outs, t)
		pending = nil
		return nil
	}
	for {
		// Find the smallest current key; on ties the lowest input index wins.
		best := -1
		for i, it := range iters {
			if !it.valid() {
				continue
			}
			if best == -1 || it.key() < iters[best].key() {
				best = i
			}
		}
		if best == -1 {
			break
		}
		k := iters[best].key()
		rec := iters[best].rec()
		// Advance every iterator past k (shadowed duplicates).
		for _, it := range iters {
			for it.valid() && it.key() == k {
				if err := it.next(); err != nil {
					return nil, err
				}
			}
		}
		if rec.tomb && dropTombstones {
			continue
		}
		pending = append(pending, rec)
		if len(pending) >= s.cfg.TableEntries {
			if err := flushRun(); err != nil {
				return nil, err
			}
		}
	}
	if err := flushRun(); err != nil {
		return nil, err
	}
	return outs, nil
}

// tableIter streams a table's records in order.
type tableIter struct {
	t     *sstable
	block []byte
	bIdx  int
	i     int
	n     int
	err   error
}

func newTableIter(t *sstable) *tableIter {
	it := &tableIter{t: t, bIdx: -1}
	it.err = it.loadNextBlock()
	return it
}

func (it *tableIter) loadNextBlock() error {
	it.bIdx++
	if it.bIdx >= it.t.blocks {
		it.block = nil
		return nil
	}
	blk, err := it.t.readBlock(it.bIdx, nil)
	if err != nil {
		return err
	}
	it.block = blk
	it.i = 0
	it.n = len(blk) / it.t.recSize
	return nil
}

func (it *tableIter) valid() bool { return it.err == nil && it.block != nil }

func (it *tableIter) key() uint64 {
	off := it.i * it.t.recSize
	return leUint64(it.block[off:])
}

func (it *tableIter) rec() tableRec {
	off := it.i * it.t.recSize
	return tableRec{
		key:  leUint64(it.block[off:]),
		tomb: leUint64(it.block[off+8:])&metaTombstone != 0,
		val:  append([]byte(nil), it.block[off+16:off+it.t.recSize]...),
	}
}

func (it *tableIter) next() error {
	it.i++
	if it.i >= it.n {
		it.err = it.loadNextBlock()
	}
	return it.err
}

func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
