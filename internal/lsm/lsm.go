package lsm

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Config parameterizes the LSM store.
type Config struct {
	Dir           string
	ValueSize     int
	MemtableBytes int // flush threshold (default 4 MiB)
	CacheBytes    int // block cache capacity (default 16 MiB)
	L0Limit       int // L0 table count triggering compaction (default 4)
	LevelRatio    int // size ratio between levels (default 10)
	TableEntries  int // target records per table on compaction (default 64Ki)
	SyncWAL       bool
}

func (c *Config) setDefaults() error {
	if c.Dir == "" {
		return errors.New("lsm: Dir is required")
	}
	if c.ValueSize <= 0 {
		return errors.New("lsm: ValueSize must be positive")
	}
	if c.MemtableBytes == 0 {
		c.MemtableBytes = 4 << 20
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 16 << 20
	}
	if c.L0Limit == 0 {
		c.L0Limit = 4
	}
	if c.LevelRatio == 0 {
		c.LevelRatio = 10
	}
	if c.TableEntries == 0 {
		c.TableEntries = 64 << 10
	}
	return nil
}

// version is an immutable snapshot of the table tree. levels[0] is ordered
// newest-first and may overlap; deeper levels are key-disjoint and sorted.
type version struct {
	levels [][]*sstable
}

// Store is the LSM-tree store.
type Store struct {
	cfg   Config
	cache *blockCache

	mu       sync.Mutex // guards memtable rotation, WAL, version installs
	mem      *memtable
	imm      []*memtable // oldest first
	immWAL   []string    // archived WAL path per immutable memtable
	walSeq   uint64
	wal      *os.File
	walPath  string
	ver      atomic.Pointer[version]
	nextFile uint64
	obsolete []*sstable // replaced tables, closed and deleted at Close

	flushSignal chan struct{}
	done        chan struct{}
	bg          sync.WaitGroup
	bgErr       atomic.Value // error

	flushing   sync.Mutex // serializes flushImmutables (bg vs Flush)
	compacting sync.Mutex // serializes compactions
}

type manifest struct {
	Levels   [][]uint64 `json:"levels"`
	NextFile uint64     `json:"next_file"`
}

// Open creates or reopens an LSM store in cfg.Dir.
func Open(cfg Config) (*Store, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		cfg:         cfg,
		cache:       newBlockCache(cfg.CacheBytes),
		mem:         newMemtable(1),
		flushSignal: make(chan struct{}, 1),
		done:        make(chan struct{}),
		nextFile:    1,
	}
	v := &version{levels: make([][]*sstable, 1)}
	s.ver.Store(v)
	if err := s.loadManifest(); err != nil {
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	if err := s.openWAL(); err != nil {
		return nil, err
	}
	s.bg.Add(1)
	go s.background()
	return s, nil
}

func (s *Store) tablePath(num uint64) string {
	return filepath.Join(s.cfg.Dir, fmt.Sprintf("%06d.sst", num))
}

func (s *Store) loadManifest() error {
	buf, err := os.ReadFile(filepath.Join(s.cfg.Dir, "MANIFEST"))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var m manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return fmt.Errorf("lsm: corrupt manifest: %w", err)
	}
	v := &version{levels: make([][]*sstable, len(m.Levels))}
	for li, nums := range m.Levels {
		for _, num := range nums {
			t, err := openTable(s.tablePath(num), num, s.cfg.ValueSize)
			if err != nil {
				return err
			}
			v.levels[li] = append(v.levels[li], t)
		}
	}
	if len(v.levels) == 0 {
		v.levels = make([][]*sstable, 1)
	}
	s.ver.Store(v)
	s.nextFile = m.NextFile
	return nil
}

// saveManifest persists the current version. Callers hold s.mu.
func (s *Store) saveManifest() error {
	v := s.ver.Load()
	m := manifest{NextFile: s.nextFile, Levels: make([][]uint64, len(v.levels))}
	for li, lvl := range v.levels {
		for _, t := range lvl {
			m.Levels[li] = append(m.Levels[li], t.num)
		}
	}
	buf, err := json.Marshal(&m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.cfg.Dir, "MANIFEST.tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(s.cfg.Dir, "MANIFEST"))
}

// WAL record: key(8) | meta(8) | value(vs).
func (s *Store) openWAL() error {
	s.walPath = filepath.Join(s.cfg.Dir, "wal.log")
	f, err := os.OpenFile(s.walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.wal = f
	return nil
}

func (s *Store) replayWAL() error {
	// Archived WALs (from memtables rotated but not yet flushed when the
	// process died) replay first, oldest to newest, then the live WAL.
	arch, err := filepath.Glob(filepath.Join(s.cfg.Dir, "wal.log.*"))
	if err != nil {
		return err
	}
	sort.Strings(arch)
	for _, p := range append(arch, filepath.Join(s.cfg.Dir, "wal.log")) {
		if err := s.replayOneWAL(p); err != nil {
			return err
		}
		if p != filepath.Join(s.cfg.Dir, "wal.log") {
			os.Remove(p)
		}
	}
	return nil
}

func (s *Store) replayOneWAL(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	rec := make([]byte, 16+s.cfg.ValueSize)
	for {
		_, err := io.ReadFull(f, rec)
		if err == io.EOF {
			return nil
		}
		if err == io.ErrUnexpectedEOF {
			return nil // torn tail record from a crash; discard
		}
		if err != nil {
			return err
		}
		key := binary.LittleEndian.Uint64(rec)
		tomb := binary.LittleEndian.Uint64(rec[8:])&metaTombstone != 0
		s.mem.put(key, rec[16:], tomb)
	}
}

func (s *Store) appendWAL(key uint64, val []byte, tomb bool) error {
	rec := make([]byte, 16+s.cfg.ValueSize)
	binary.LittleEndian.PutUint64(rec, key)
	meta := uint64(0)
	if tomb {
		meta = metaTombstone
	}
	binary.LittleEndian.PutUint64(rec[8:], meta)
	copy(rec[16:], val)
	if _, err := s.wal.Write(rec); err != nil {
		return err
	}
	if s.cfg.SyncWAL {
		return s.wal.Sync()
	}
	return nil
}

// put is the shared write path.
func (s *Store) put(key uint64, val []byte, tomb bool) error {
	if err, _ := s.bgErr.Load().(error); err != nil {
		return err
	}
	s.mu.Lock()
	if err := s.appendWAL(key, val, tomb); err != nil {
		s.mu.Unlock()
		return err
	}
	s.mem.put(key, val, tomb)
	if s.mem.bytes() >= s.cfg.MemtableBytes {
		s.rotateMemtableLocked()
	}
	s.mu.Unlock()
	return nil
}

// rotateMemtableLocked moves the active memtable to the immutable queue and
// starts a fresh one with a fresh WAL. Caller holds s.mu.
func (s *Store) rotateMemtableLocked() {
	s.imm = append(s.imm, s.mem)
	s.mem = newMemtable(uint64(len(s.imm)) + 2)
	s.wal.Close()
	// The old WAL's contents are safe in the immutable memtable (it will be
	// flushed shortly); a crash before the flush replays the archived WAL.
	s.walSeq++
	arch := fmt.Sprintf("%s.%06d", s.walPath, s.walSeq)
	os.Rename(s.walPath, arch)
	s.immWAL = append(s.immWAL, arch)
	s.openWAL()
	select {
	case s.flushSignal <- struct{}{}:
	default:
	}
}

// get is the shared read path.
func (s *Store) get(key uint64, dst []byte) (bool, error) {
	if err, _ := s.bgErr.Load().(error); err != nil {
		return false, err
	}
	// Snapshot the memtable pointers under the lock (rotation swaps them).
	s.mu.Lock()
	mem := s.mem
	imm := make([]*memtable, len(s.imm))
	copy(imm, s.imm)
	s.mu.Unlock()
	return s.getSnapshot(key, dst, mem, imm, s.ver.Load())
}

// getSnapshot resolves one key against an already-captured view of the
// store, so batch reads pay the snapshot lock once rather than per key.
func (s *Store) getSnapshot(key uint64, dst []byte, mem *memtable, imm []*memtable, v *version) (bool, error) {
	// 1. Active memtable.
	if ok, tomb := mem.get(key, dst); ok {
		return !tomb, nil
	}
	// 2. Immutable memtables, newest first.
	for i := len(imm) - 1; i >= 0; i-- {
		if ok, tomb := imm[i].get(key, dst); ok {
			return !tomb, nil
		}
	}
	// 3. Tables.
	for i := len(v.levels[0]) - 1; i >= 0; i-- { // L0 newest first
		ok, tomb, err := v.levels[0][i].get(key, dst, s.cache)
		if err != nil {
			return false, err
		}
		if ok {
			return !tomb, nil
		}
	}
	for li := 1; li < len(v.levels); li++ {
		lvl := v.levels[li]
		i := sort.Search(len(lvl), func(i int) bool { return lvl[i].maxKey >= key })
		if i == len(lvl) || lvl[i].minKey > key {
			continue
		}
		ok, tomb, err := lvl[i].get(key, dst, s.cache)
		if err != nil {
			return false, err
		}
		if ok {
			return !tomb, nil
		}
	}
	return false, nil
}

// getBatch reads keys[i] into vals[i*vs:(i+1)*vs], capturing the
// memtable/version snapshot once for the whole batch.
func (s *Store) getBatch(keys []uint64, vals []byte, found []bool) error {
	if err, _ := s.bgErr.Load().(error); err != nil {
		return err
	}
	vs := s.cfg.ValueSize
	s.mu.Lock()
	mem := s.mem
	imm := make([]*memtable, len(s.imm))
	copy(imm, s.imm)
	s.mu.Unlock()
	v := s.ver.Load()
	for i, key := range keys {
		ok, err := s.getSnapshot(key, vals[i*vs:(i+1)*vs], mem, imm, v)
		if err != nil {
			return err
		}
		found[i] = ok
	}
	return nil
}

// putBatch upserts all keys under one lock acquisition with a single WAL
// write. The memtable may overshoot MemtableBytes by at most one batch;
// rotation is checked once at the end.
func (s *Store) putBatch(keys []uint64, vals []byte) error {
	if err, _ := s.bgErr.Load().(error); err != nil {
		return err
	}
	vs := s.cfg.ValueSize
	rec := make([]byte, len(keys)*(16+vs))
	for i, key := range keys {
		off := i * (16 + vs)
		binary.LittleEndian.PutUint64(rec[off:], key)
		binary.LittleEndian.PutUint64(rec[off+8:], 0)
		copy(rec[off+16:], vals[i*vs:(i+1)*vs])
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.wal.Write(rec); err != nil {
		return err
	}
	if s.cfg.SyncWAL {
		if err := s.wal.Sync(); err != nil {
			return err
		}
	}
	for i, key := range keys {
		s.mem.put(key, vals[i*vs:(i+1)*vs], false)
	}
	if s.mem.bytes() >= s.cfg.MemtableBytes {
		s.rotateMemtableLocked()
	}
	return nil
}

// background runs flushes and compactions.
func (s *Store) background() {
	defer s.bg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.flushSignal:
			if err := s.flushImmutables(); err != nil {
				s.bgErr.Store(err)
				return
			}
			if err := s.maybeCompact(); err != nil {
				s.bgErr.Store(err)
				return
			}
		}
	}
}

// flushImmutables writes every queued immutable memtable to an L0 table.
func (s *Store) flushImmutables() error {
	s.flushing.Lock()
	defer s.flushing.Unlock()
	for {
		s.mu.Lock()
		if len(s.imm) == 0 {
			s.mu.Unlock()
			return nil
		}
		mt := s.imm[0]
		arch := s.immWAL[0]
		s.mu.Unlock()

		recs := memtableRecs(mt)
		s.mu.Lock()
		num := s.nextFile
		s.nextFile++
		s.mu.Unlock()
		t, err := writeTable(s.tablePath(num), num, recs, s.cfg.ValueSize)
		if err != nil {
			return err
		}

		s.mu.Lock()
		old := s.ver.Load()
		nv := cloneVersion(old)
		nv.levels[0] = append(nv.levels[0], t) // newest last
		s.ver.Store(nv)
		s.imm = s.imm[1:]
		s.immWAL = s.immWAL[1:]
		if err := s.saveManifest(); err != nil {
			s.mu.Unlock()
			return err
		}
		os.Remove(arch)
		s.mu.Unlock()
	}
}

func memtableRecs(mt *memtable) []tableRec {
	es := mt.all()
	recs := make([]tableRec, len(es))
	for i, e := range es {
		recs[i] = tableRec{key: e.key, val: e.val, tomb: e.tomb}
	}
	return recs
}

func cloneVersion(v *version) *version {
	nv := &version{levels: make([][]*sstable, len(v.levels))}
	for i := range v.levels {
		nv.levels[i] = append([]*sstable(nil), v.levels[i]...)
	}
	return nv
}

// Flush forces the active memtable to disk (mainly for tests/benchmarks).
func (s *Store) Flush() error {
	s.mu.Lock()
	if s.mem.count() > 0 {
		s.rotateMemtableLocked()
	}
	s.mu.Unlock()
	if err := s.flushImmutables(); err != nil {
		return err
	}
	return s.maybeCompact()
}

// CacheStats exposes block-cache hit/miss counters.
func (s *Store) CacheStats() (hits, misses int64) { return s.cache.stats() }

// Close flushes and shuts down.
func (s *Store) Close() error {
	if err := s.Flush(); err != nil {
		return err
	}
	close(s.done)
	s.bg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wal.Close()
	v := s.ver.Load()
	for _, lvl := range v.levels {
		for _, t := range lvl {
			t.close()
		}
	}
	for _, t := range s.obsolete {
		t.close()
		os.Remove(t.path)
	}
	if err, _ := s.bgErr.Load().(error); err != nil {
		return err
	}
	return nil
}

// ValueSize returns the fixed value size.
func (s *Store) ValueSize() int { return s.cfg.ValueSize }

// Name identifies the engine.
func (s *Store) Name() string { return "lsm" }

// Session adapts the store to kv.Session. The store is internally
// synchronized, so sessions are stateless.
type Session struct{ s *Store }

// NewSession returns an operation handle.
func (s *Store) NewSession() (*Session, error) { return &Session{s: s}, nil }

// Get reads key into dst.
func (se *Session) Get(key uint64, dst []byte) (bool, error) {
	if len(dst) != se.s.cfg.ValueSize {
		return false, errors.New("lsm: buffer length must equal ValueSize")
	}
	return se.s.get(key, dst)
}

// Put upserts key.
func (se *Session) Put(key uint64, val []byte) error {
	if len(val) != se.s.cfg.ValueSize {
		return errors.New("lsm: buffer length must equal ValueSize")
	}
	return se.s.put(key, val, false)
}

// Delete removes key.
func (se *Session) Delete(key uint64) error {
	return se.s.put(key, make([]byte, se.s.cfg.ValueSize), true)
}

// GetBatch reads keys[i] into vals[i*vs:(i+1)*vs], setting found[i]. The
// memtable/version snapshot is captured once for the whole batch instead of
// once per key.
func (se *Session) GetBatch(keys []uint64, vals []byte, found []bool) error {
	vs := se.s.cfg.ValueSize
	if len(vals) != len(keys)*vs || len(found) != len(keys) {
		return errors.New("lsm: batch buffer lengths must match len(keys)")
	}
	return se.s.getBatch(keys, vals, found)
}

// PutBatch upserts keys[i] = vals[i*vs:(i+1)*vs] under one lock
// acquisition with a single WAL write.
func (se *Session) PutBatch(keys []uint64, vals []byte) error {
	vs := se.s.cfg.ValueSize
	if len(vals) != len(keys)*vs {
		return errors.New("lsm: batch buffer lengths must match len(keys)")
	}
	return se.s.putBatch(keys, vals)
}

// Prefetch pulls key's block into the block cache.
func (se *Session) Prefetch(key uint64) (bool, error) {
	dst := make([]byte, se.s.cfg.ValueSize)
	found, err := se.s.get(key, dst)
	return found, err
}

// Close releases the session (no-op).
func (se *Session) Close() {}
