package lsm

import (
	"bytes"
	"testing"

	"github.com/llm-db/mlkv-go/internal/util"
)

// openPropLSM opens a store with thresholds small enough that a run of a
// few thousand operations crosses many memtable rotations and several
// compactions. No cleanup is registered: property runs close and reopen
// the store themselves.
func openPropLSM(t *testing.T, dir string, vs int) *Store {
	t.Helper()
	s, err := Open(Config{
		Dir:           dir,
		ValueSize:     vs,
		MemtableBytes: 8 << 10,
		CacheBytes:    32 << 10,
		L0Limit:       3,
		TableEntries:  256,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// propBatchKeys fills keys with a run of consecutive keys starting at a
// random point. Consecutive keys keep every batch duplicate-free, which
// the map model needs: a batch with an internal duplicate has no single
// "the" value for that key.
func propBatchKeys(r *util.RNG, keys []uint64, keySpace uint64) {
	start := r.Uint64n(keySpace) + 1
	for i := range keys {
		keys[i] = start + uint64(i)
	}
}

// TestLSMPropertyAcrossFlushCompactionReopen runs long random operation
// sequences — scalar and batch — against the store and a reference map
// simultaneously, forcing flushes and compactions along the way and
// closing and reopening the store twice mid-run. The surviving store must
// agree with the map exactly, including after the final reopen.
func TestLSMPropertyAcrossFlushCompactionReopen(t *testing.T) {
	const (
		vs       = 12
		keySpace = 800
		ops      = 20000
		batch    = 8
	)
	dir := t.TempDir()
	st := openPropLSM(t, dir, vs)
	defer func() { st.Close() }()
	se, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}

	model := make(map[uint64][]byte)
	r := util.NewRNG(0x15a15a)
	dst := make([]byte, vs)
	bkeys := make([]uint64, batch)
	bvals := make([]byte, batch*vs)
	bfound := make([]bool, batch)

	for i := 0; i < ops; i++ {
		// Boundary events: an explicit flush+compaction at the midpoint,
		// and a full close/reopen at the quarter points. Everything the
		// model holds must survive each.
		switch i {
		case ops / 4, 3 * ops / 4:
			se.Close()
			if err := st.Close(); err != nil {
				t.Fatalf("op %d: close: %v", i, err)
			}
			st = openPropLSM(t, dir, vs)
			if se, err = st.NewSession(); err != nil {
				t.Fatal(err)
			}
		case ops / 2:
			if err := st.Flush(); err != nil {
				t.Fatalf("op %d: flush: %v", i, err)
			}
		}

		k := r.Uint64n(keySpace) + 1
		switch r.Uint64n(12) {
		case 0, 1, 2, 3: // Put
			v := lval(vs, r.Uint64())
			if err := se.Put(k, v); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case 4: // Delete
			if err := se.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		case 5: // PutBatch over a consecutive key run
			propBatchKeys(r, bkeys, keySpace)
			for j, bk := range bkeys {
				v := lval(vs, r.Uint64())
				copy(bvals[j*vs:(j+1)*vs], v)
				model[bk] = v
			}
			if err := se.PutBatch(bkeys, bvals); err != nil {
				t.Fatal(err)
			}
		case 6: // GetBatch, checked slot by slot
			propBatchKeys(r, bkeys, keySpace)
			if err := se.GetBatch(bkeys, bvals, bfound); err != nil {
				t.Fatal(err)
			}
			for j, bk := range bkeys {
				mv, ok := model[bk]
				if bfound[j] != ok {
					t.Fatalf("op %d: GetBatch(%d) found=%v, model=%v", i, bk, bfound[j], ok)
				}
				if ok && !bytes.Equal(bvals[j*vs:(j+1)*vs], mv) {
					t.Fatalf("op %d: GetBatch(%d) value mismatch", i, bk)
				}
			}
		case 7: // Prefetch must never change visible state
			if _, err := se.Prefetch(k); err != nil {
				t.Fatal(err)
			}
		default: // Get
			found, err := se.Get(k, dst)
			if err != nil {
				t.Fatal(err)
			}
			mv, ok := model[k]
			if found != ok {
				t.Fatalf("op %d: Get(%d) found=%v, model=%v", i, k, found, ok)
			}
			if found && !bytes.Equal(dst, mv) {
				t.Fatalf("op %d: Get(%d) = %x, want %x", i, k, dst, mv)
			}
		}
	}

	// The run must actually have crossed the structural boundaries it
	// claims to test: compaction has built levels below L0 by now.
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if v := st.ver.Load(); len(v.levels) < 2 {
		t.Fatalf("run never compacted beyond L0 (levels=%d); shrink MemtableBytes", len(v.levels))
	}

	// Final reopen, then verify the entire key space against the model.
	se.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st = openPropLSM(t, dir, vs)
	se, err = st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= keySpace+batch; k++ {
		found, err := se.Get(k, dst)
		if err != nil {
			t.Fatal(err)
		}
		mv, ok := model[k]
		if found != ok {
			t.Fatalf("final: key %d found=%v model=%v", k, found, ok)
		}
		if found && !bytes.Equal(dst, mv) {
			t.Fatalf("final: key %d mismatch", k)
		}
	}
}

// TestLSMCrashRecoveryMatchesModel abandons the store without Close after
// a WAL sync — the crash the WAL exists for — and demands the reopened
// store agree with the model exactly, including deletions that only ever
// lived in the WAL.
func TestLSMCrashRecoveryMatchesModel(t *testing.T) {
	const (
		vs       = 12
		keySpace = 400
		ops      = 6000
	)
	dir := t.TempDir()
	st := openPropLSM(t, dir, vs)
	se, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[uint64][]byte)
	r := util.NewRNG(0xc4a54)
	for i := 0; i < ops; i++ {
		k := r.Uint64n(keySpace) + 1
		if r.Uint64n(5) == 0 {
			if err := se.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		} else {
			v := lval(vs, r.Uint64())
			if err := se.Put(k, v); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		}
	}
	// Crash: sync the WAL, stop the background worker where it stands (a
	// real crash does both at once — nothing flushes after this point),
	// and walk away without Close. Flushed tables, the manifest, and the
	// WAL tail together must reconstruct the model.
	if err := st.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	close(st.done)
	st.bg.Wait()

	st2 := openPropLSM(t, dir, vs)
	defer st2.Close()
	se2, err := st2.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, vs)
	for k := uint64(1); k <= keySpace; k++ {
		found, err := se2.Get(k, dst)
		if err != nil {
			t.Fatal(err)
		}
		mv, ok := model[k]
		if found != ok {
			t.Fatalf("after crash: key %d found=%v model=%v", k, found, ok)
		}
		if found && !bytes.Equal(dst, mv) {
			t.Fatalf("after crash: key %d mismatch", k)
		}
	}
	st.wal.Close() // release the abandoned handle
}
