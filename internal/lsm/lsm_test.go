package lsm

import (
	"bytes"
	"sync"
	"testing"

	"github.com/llm-db/mlkv-go/internal/util"
)

func testLSM(t *testing.T, vs int) *Store {
	t.Helper()
	s, err := Open(Config{
		Dir:           t.TempDir(),
		ValueSize:     vs,
		MemtableBytes: 8 << 10, // tiny, to force flushes
		CacheBytes:    32 << 10,
		L0Limit:       3,
		TableEntries:  256,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s
}

func lval(vs int, seed uint64) []byte {
	b := make([]byte, vs)
	r := util.NewRNG(seed)
	for i := range b {
		b[i] = byte(r.Uint64())
	}
	return b
}

func TestLSMPutGet(t *testing.T) {
	s := testLSM(t, 16)
	se, _ := s.NewSession()
	for k := uint64(1); k <= 100; k++ {
		if err := se.Put(k, lval(16, k)); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]byte, 16)
	for k := uint64(1); k <= 100; k++ {
		found, err := se.Get(k, dst)
		if err != nil || !found {
			t.Fatalf("key %d: found=%v err=%v", k, found, err)
		}
		if !bytes.Equal(dst, lval(16, k)) {
			t.Fatalf("key %d mismatch", k)
		}
	}
}

func TestLSMOverwriteAndDelete(t *testing.T) {
	s := testLSM(t, 16)
	se, _ := s.NewSession()
	se.Put(1, lval(16, 1))
	se.Put(1, lval(16, 2))
	dst := make([]byte, 16)
	if found, _ := se.Get(1, dst); !found || !bytes.Equal(dst, lval(16, 2)) {
		t.Fatal("overwrite lost")
	}
	se.Delete(1)
	if found, _ := se.Get(1, dst); found {
		t.Fatal("delete ignored")
	}
	se.Put(1, lval(16, 3))
	if found, _ := se.Get(1, dst); !found || !bytes.Equal(dst, lval(16, 3)) {
		t.Fatal("reinsert after delete lost")
	}
}

func TestLSMFlushAndCompaction(t *testing.T) {
	s := testLSM(t, 64)
	se, _ := s.NewSession()
	const n = 5000 // far beyond the 8 KiB memtable: many flushes + compactions
	for k := uint64(1); k <= n; k++ {
		if err := se.Put(k, lval(64, k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	v := s.ver.Load()
	if len(v.levels) < 2 {
		t.Fatalf("expected compaction to create deeper levels, have %d", len(v.levels))
	}
	dst := make([]byte, 64)
	for k := uint64(1); k <= n; k++ {
		found, err := se.Get(k, dst)
		if err != nil || !found {
			t.Fatalf("key %d after compaction: found=%v err=%v", k, found, err)
		}
		if !bytes.Equal(dst, lval(64, k)) {
			t.Fatalf("key %d corrupted by compaction", k)
		}
	}
	// Level 1+ must be key-disjoint and sorted.
	for li := 1; li < len(v.levels); li++ {
		lvl := v.levels[li]
		for i := 1; i < len(lvl); i++ {
			if lvl[i-1].maxKey >= lvl[i].minKey {
				t.Fatalf("level %d tables overlap: [%d..%d] then [%d..%d]",
					li, lvl[i-1].minKey, lvl[i-1].maxKey, lvl[i].minKey, lvl[i].maxKey)
			}
		}
	}
}

func TestLSMNewestVersionWinsAcrossLevels(t *testing.T) {
	s := testLSM(t, 16)
	se, _ := s.NewSession()
	// Round 1 pushes old versions deep.
	for k := uint64(1); k <= 1000; k++ {
		se.Put(k, lval(16, k))
	}
	s.Flush()
	// Round 2 overwrites a subset.
	for k := uint64(1); k <= 100; k++ {
		se.Put(k, lval(16, k+7777))
	}
	s.Flush()
	dst := make([]byte, 16)
	for k := uint64(1); k <= 1000; k++ {
		want := lval(16, k)
		if k <= 100 {
			want = lval(16, k+7777)
		}
		if found, _ := se.Get(k, dst); !found || !bytes.Equal(dst, want) {
			t.Fatalf("key %d: stale version surfaced", k)
		}
	}
}

func TestLSMRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, ValueSize: 16, MemtableBytes: 8 << 10, L0Limit: 3, TableEntries: 256}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se, _ := s.NewSession()
	for k := uint64(1); k <= 500; k++ {
		se.Put(k, lval(16, k))
	}
	se.Delete(42)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	se2, _ := s2.NewSession()
	dst := make([]byte, 16)
	for k := uint64(1); k <= 500; k++ {
		found, err := se2.Get(k, dst)
		if err != nil {
			t.Fatal(err)
		}
		if k == 42 {
			if found {
				t.Fatal("deleted key resurrected")
			}
			continue
		}
		if !found || !bytes.Equal(dst, lval(16, k)) {
			t.Fatalf("key %d lost in restart", k)
		}
	}
}

func TestLSMWALReplayWithoutCleanClose(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, ValueSize: 8, MemtableBytes: 1 << 20, L0Limit: 4}
	s, _ := Open(cfg)
	se, _ := s.NewSession()
	for k := uint64(1); k <= 50; k++ {
		se.Put(k, lval(8, k))
	}
	// Simulate a crash: abandon the store without Close (the WAL remains).
	s.wal.Sync()

	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	se2, _ := s2.NewSession()
	dst := make([]byte, 8)
	for k := uint64(1); k <= 50; k++ {
		if found, _ := se2.Get(k, dst); !found || !bytes.Equal(dst, lval(8, k)) {
			t.Fatalf("key %d lost across crash", k)
		}
	}
	s.wal.Close() // release the abandoned handle
}

func TestLSMConcurrent(t *testing.T) {
	s := testLSM(t, 16)
	const workers = 6
	const perWorker = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			se, _ := s.NewSession()
			defer se.Close()
			dst := make([]byte, 16)
			for i := 0; i < perWorker; i++ {
				k := uint64(w*perWorker + i + 1)
				if err := se.Put(k, lval(16, k)); err != nil {
					t.Error(err)
					return
				}
				if found, err := se.Get(k, dst); err != nil || !found || !bytes.Equal(dst, lval(16, k)) {
					t.Errorf("key %d: read-own-write failed (found=%v err=%v)", k, found, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestLSMMatchesModelMap is the engine-equivalence property test.
func TestLSMMatchesModelMap(t *testing.T) {
	s := testLSM(t, 12)
	se, _ := s.NewSession()
	model := make(map[uint64][]byte)
	r := util.NewRNG(0xabc)
	dst := make([]byte, 12)
	for i := 0; i < 15000; i++ {
		k := r.Uint64n(600) + 1
		switch r.Uint64n(6) {
		case 0, 1, 2:
			v := lval(12, r.Uint64())
			if err := se.Put(k, v); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case 3:
			if err := se.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		default:
			found, err := se.Get(k, dst)
			if err != nil {
				t.Fatal(err)
			}
			mv, ok := model[k]
			if found != ok {
				t.Fatalf("op %d key %d: found=%v model=%v", i, k, found, ok)
			}
			if found && !bytes.Equal(dst, mv) {
				t.Fatalf("op %d key %d: value mismatch", i, k)
			}
		}
		if i%5000 == 4999 {
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for k := uint64(1); k <= 600; k++ {
		found, err := se.Get(k, dst)
		if err != nil {
			t.Fatal(err)
		}
		mv, ok := model[k]
		if found != ok || (found && !bytes.Equal(dst, mv)) {
			t.Fatalf("final key %d mismatch", k)
		}
	}
}

func TestBloomFilterNoFalseNegatives(t *testing.T) {
	keys := make([]uint64, 5000)
	r := util.NewRNG(7)
	filter := make([]byte, 5000*bloomBitsPerKey/8)
	for i := range keys {
		keys[i] = r.Uint64()
		bloomSet(filter, keys[i])
	}
	for _, k := range keys {
		if !bloomTest(filter, k) {
			t.Fatalf("false negative for key %d", k)
		}
	}
	// False positive rate sanity: should be well under 10%.
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if bloomTest(filter, r.Uint64()) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.1 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestLSMCacheServesRepeatedReads(t *testing.T) {
	s := testLSM(t, 32)
	se, _ := s.NewSession()
	for k := uint64(1); k <= 2000; k++ {
		se.Put(k, lval(32, k))
	}
	s.Flush()
	dst := make([]byte, 32)
	se.Get(77, dst)
	h0, _ := s.CacheStats()
	se.Get(77, dst) // same block: must hit cache
	h1, _ := s.CacheStats()
	if h1 <= h0 {
		t.Fatal("expected a cache hit on repeated read")
	}
}

func TestLSMValueSizeValidation(t *testing.T) {
	s := testLSM(t, 16)
	se, _ := s.NewSession()
	if err := se.Put(1, make([]byte, 8)); err == nil {
		t.Fatal("short value accepted")
	}
	if _, err := se.Get(1, make([]byte, 8)); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestLSMConfigValidation(t *testing.T) {
	if _, err := Open(Config{ValueSize: 8}); err == nil {
		t.Fatal("missing Dir accepted")
	}
	if _, err := Open(Config{Dir: t.TempDir()}); err == nil {
		t.Fatal("missing ValueSize accepted")
	}
}
