package lsm

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"

	"github.com/llm-db/mlkv-go/internal/util"
)

// SSTable layout (all little-endian):
//
//	data blocks   — blockEntries records of (key:8 | meta:8 | value:vs)
//	index         — first key of each block (8 bytes per block)
//	bloom filter  — bloomBitsPerKey bits per key, 4 probe hashes
//	footer        — entries:8 | blocks:8 | bloomBytes:8 | valueSize:8 | magic:8
//
// Records within and across blocks are sorted by key; meta bit 0 marks a
// tombstone.

const (
	blockEntries    = 64
	bloomBitsPerKey = 10
	bloomProbes     = 4
	tableMagic      = uint64(0x4d4c4b564c534d31) // "MLKVLSM1"
	footerSize      = 40
	metaTombstone   = uint64(1)
)

// tableRec is one record during building or merging.
type tableRec struct {
	key  uint64
	val  []byte
	tomb bool
}

// sstable is an open, immutable on-disk table.
type sstable struct {
	num     uint64 // file number (cache identity)
	path    string
	file    *os.File
	entries int
	blocks  int
	vs      int
	minKey  uint64
	maxKey  uint64
	index   []uint64 // first key per block
	bloom   []byte
	recSize int
}

// writeTable persists recs (sorted, deduplicated) and returns the opened
// table.
func writeTable(path string, num uint64, recs []tableRec, vs int) (*sstable, error) {
	recSize := 16 + vs
	nBlocks := (len(recs) + blockEntries - 1) / blockEntries
	bloomBytes := (len(recs)*bloomBitsPerKey + 7) / 8
	if bloomBytes == 0 {
		bloomBytes = 1
	}
	bloom := make([]byte, bloomBytes)
	buf := make([]byte, 0, len(recs)*recSize+nBlocks*8+bloomBytes+footerSize)
	scratch := make([]byte, 8)
	index := make([]uint64, 0, nBlocks)
	for i, r := range recs {
		if i%blockEntries == 0 {
			index = append(index, r.key)
		}
		binary.LittleEndian.PutUint64(scratch, r.key)
		buf = append(buf, scratch...)
		meta := uint64(0)
		if r.tomb {
			meta = metaTombstone
		}
		binary.LittleEndian.PutUint64(scratch, meta)
		buf = append(buf, scratch...)
		buf = append(buf, r.val[:vs]...)
		bloomSet(bloom, r.key)
	}
	for _, k := range index {
		binary.LittleEndian.PutUint64(scratch, k)
		buf = append(buf, scratch...)
	}
	buf = append(buf, bloom...)
	footer := make([]byte, footerSize)
	binary.LittleEndian.PutUint64(footer[0:], uint64(len(recs)))
	binary.LittleEndian.PutUint64(footer[8:], uint64(nBlocks))
	binary.LittleEndian.PutUint64(footer[16:], uint64(bloomBytes))
	binary.LittleEndian.PutUint64(footer[24:], uint64(vs))
	binary.LittleEndian.PutUint64(footer[32:], tableMagic)
	buf = append(buf, footer...)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return nil, fmt.Errorf("lsm: write table: %w", err)
	}
	return openTable(path, num, vs)
}

// openTable maps an existing table file.
func openTable(path string, num uint64, vs int) (*sstable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	footer := make([]byte, footerSize)
	if _, err := f.ReadAt(footer, st.Size()-footerSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: read footer: %w", err)
	}
	if binary.LittleEndian.Uint64(footer[32:]) != tableMagic {
		f.Close()
		return nil, fmt.Errorf("lsm: %s: bad magic", path)
	}
	t := &sstable{
		num:     num,
		path:    path,
		file:    f,
		entries: int(binary.LittleEndian.Uint64(footer[0:])),
		blocks:  int(binary.LittleEndian.Uint64(footer[8:])),
		vs:      int(binary.LittleEndian.Uint64(footer[24:])),
		recSize: 16 + int(binary.LittleEndian.Uint64(footer[24:])),
	}
	if t.vs != vs {
		f.Close()
		return nil, fmt.Errorf("lsm: %s: value size %d != %d", path, t.vs, vs)
	}
	bloomBytes := int(binary.LittleEndian.Uint64(footer[16:]))
	meta := make([]byte, t.blocks*8+bloomBytes)
	if _, err := f.ReadAt(meta, int64(t.entries*t.recSize)); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: read index: %w", err)
	}
	t.index = make([]uint64, t.blocks)
	for i := range t.index {
		t.index[i] = binary.LittleEndian.Uint64(meta[i*8:])
	}
	t.bloom = meta[t.blocks*8:]
	if t.entries > 0 {
		t.minKey = t.index[0]
		// Max key: read the last record's key.
		last := make([]byte, 8)
		if _, err := f.ReadAt(last, int64((t.entries-1)*t.recSize)); err != nil {
			f.Close()
			return nil, err
		}
		t.maxKey = binary.LittleEndian.Uint64(last)
	}
	return t, nil
}

func (t *sstable) close() error { return t.file.Close() }

// mayContain consults the Bloom filter.
func (t *sstable) mayContain(key uint64) bool {
	if key < t.minKey || key > t.maxKey {
		return false
	}
	return bloomTest(t.bloom, key)
}

// blockLen returns the byte length of block b.
func (t *sstable) blockLen(b int) int {
	n := blockEntries
	if b == t.blocks-1 {
		n = t.entries - b*blockEntries
	}
	return n * t.recSize
}

// readBlock fetches block b, through cache if provided.
func (t *sstable) readBlock(b int, cache *blockCache) ([]byte, error) {
	if cache != nil {
		if blk, ok := cache.get(t.num, b); ok {
			return blk, nil
		}
	}
	blk := make([]byte, t.blockLen(b))
	if _, err := t.file.ReadAt(blk, int64(b*blockEntries*t.recSize)); err != nil {
		return nil, fmt.Errorf("lsm: read block %d of %s: %w", b, t.path, err)
	}
	if cache != nil {
		cache.put(t.num, b, blk)
	}
	return blk, nil
}

// get searches the table for key.
func (t *sstable) get(key uint64, dst []byte, cache *blockCache) (ok, tomb bool, err error) {
	if t.entries == 0 || !t.mayContain(key) {
		return false, false, nil
	}
	// Find the last block whose first key <= key.
	b := sort.Search(len(t.index), func(i int) bool { return t.index[i] > key }) - 1
	if b < 0 {
		return false, false, nil
	}
	blk, err := t.readBlock(b, cache)
	if err != nil {
		return false, false, err
	}
	n := len(blk) / t.recSize
	i := sort.Search(n, func(i int) bool {
		return binary.LittleEndian.Uint64(blk[i*t.recSize:]) >= key
	})
	if i == n || binary.LittleEndian.Uint64(blk[i*t.recSize:]) != key {
		return false, false, nil
	}
	off := i * t.recSize
	if binary.LittleEndian.Uint64(blk[off+8:])&metaTombstone != 0 {
		return true, true, nil
	}
	copy(dst, blk[off+16:off+t.recSize])
	return true, false, nil
}

// iterate streams the table's records in key order.
func (t *sstable) iterate(fn func(tableRec) error) error {
	for b := 0; b < t.blocks; b++ {
		blk, err := t.readBlock(b, nil)
		if err != nil {
			return err
		}
		n := len(blk) / t.recSize
		for i := 0; i < n; i++ {
			off := i * t.recSize
			r := tableRec{
				key:  binary.LittleEndian.Uint64(blk[off:]),
				tomb: binary.LittleEndian.Uint64(blk[off+8:])&metaTombstone != 0,
				val:  append([]byte(nil), blk[off+16:off+t.recSize]...),
			}
			if err := fn(r); err != nil {
				return err
			}
		}
	}
	return nil
}

func bloomSet(filter []byte, key uint64) {
	h := util.Mix64(key)
	d := h >> 32
	bits := uint64(len(filter)) * 8
	for i := 0; i < bloomProbes; i++ {
		bit := h % bits
		filter[bit/8] |= 1 << (bit % 8)
		h += d + uint64(i)
	}
}

func bloomTest(filter []byte, key uint64) bool {
	h := util.Mix64(key)
	d := h >> 32
	bits := uint64(len(filter)) * 8
	for i := 0; i < bloomProbes; i++ {
		bit := h % bits
		if filter[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
		h += d + uint64(i)
	}
	return true
}
