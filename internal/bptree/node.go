package bptree

import (
	"encoding/binary"
	"sort"
)

// Page layout (little-endian). Every page begins with a 16-byte header:
//
//	kind:2 | count:2 | pad:4 | next:8       (next links leaf pages)
//
// Leaf pages then hold count entries of (key:8 | meta:8 | value:vs).
// Internal pages hold count keys of 8 bytes followed by count+1 child page
// IDs of 8 bytes; child[i] covers keys < key[i], child[count] the rest.

const (
	pageHeaderSize = 16
	kindLeaf       = uint16(1)
	kindInternal   = uint16(2)
	metaTombstone  = uint64(1)
)

type node struct {
	data []byte
	vs   int // value size (leaf entry payload)
}

func (n node) kind() uint16      { return binary.LittleEndian.Uint16(n.data[0:]) }
func (n node) setKind(k uint16)  { binary.LittleEndian.PutUint16(n.data[0:], k) }
func (n node) count() int        { return int(binary.LittleEndian.Uint16(n.data[2:])) }
func (n node) setCount(c int)    { binary.LittleEndian.PutUint16(n.data[2:], uint16(c)) }
func (n node) next() uint64      { return binary.LittleEndian.Uint64(n.data[8:]) }
func (n node) setNext(id uint64) { binary.LittleEndian.PutUint64(n.data[8:], id) }

// --- Leaf accessors ---

func (n node) leafEntrySize() int { return 16 + n.vs }

func leafCapacity(pageSize, vs int) int { return (pageSize - pageHeaderSize) / (16 + vs) }

func (n node) leafKey(i int) uint64 {
	return binary.LittleEndian.Uint64(n.data[pageHeaderSize+i*n.leafEntrySize():])
}

func (n node) leafMeta(i int) uint64 {
	return binary.LittleEndian.Uint64(n.data[pageHeaderSize+i*n.leafEntrySize()+8:])
}

func (n node) leafVal(i int) []byte {
	off := pageHeaderSize + i*n.leafEntrySize() + 16
	return n.data[off : off+n.vs]
}

func (n node) setLeafEntry(i int, key, meta uint64, val []byte) {
	off := pageHeaderSize + i*n.leafEntrySize()
	binary.LittleEndian.PutUint64(n.data[off:], key)
	binary.LittleEndian.PutUint64(n.data[off+8:], meta)
	copy(n.data[off+16:off+16+n.vs], val)
}

// leafSearch returns the position of key, or (insertPos, false).
func (n node) leafSearch(key uint64) (int, bool) {
	c := n.count()
	i := sort.Search(c, func(i int) bool { return n.leafKey(i) >= key })
	if i < c && n.leafKey(i) == key {
		return i, true
	}
	return i, false
}

// leafInsertAt shifts entries right and writes the new entry at i.
func (n node) leafInsertAt(i int, key, meta uint64, val []byte) {
	es := n.leafEntrySize()
	c := n.count()
	start := pageHeaderSize + i*es
	end := pageHeaderSize + c*es
	copy(n.data[start+es:end+es], n.data[start:end])
	n.setLeafEntry(i, key, meta, val)
	n.setCount(c + 1)
}

// --- Internal accessors ---

func internalCapacity(pageSize int) int {
	// count keys (8B) + count+1 children (8B) + header <= pageSize
	return (pageSize - pageHeaderSize - 8) / 16
}

func (n node) internalKey(i int) uint64 {
	return binary.LittleEndian.Uint64(n.data[pageHeaderSize+i*8:])
}

func (n node) setInternalKey(i int, k uint64) {
	binary.LittleEndian.PutUint64(n.data[pageHeaderSize+i*8:], k)
}

func (n node) childOffset(maxKeys int) int { return pageHeaderSize + maxKeys*8 }

func (n node) child(i, maxKeys int) uint64 {
	return binary.LittleEndian.Uint64(n.data[n.childOffset(maxKeys)+i*8:])
}

func (n node) setChild(i, maxKeys int, id uint64) {
	binary.LittleEndian.PutUint64(n.data[n.childOffset(maxKeys)+i*8:], id)
}

// childFor returns the index of the child covering key.
func (n node) childFor(key uint64) int {
	c := n.count()
	return sort.Search(c, func(i int) bool { return key < n.internalKey(i) })
}

// internalInsertAt inserts (key, rightChild) at key position i.
func (n node) internalInsertAt(i int, key, rightChild uint64, maxKeys int) {
	c := n.count()
	// Shift keys [i, c) right by one.
	copy(n.data[pageHeaderSize+(i+1)*8:pageHeaderSize+(c+1)*8], n.data[pageHeaderSize+i*8:pageHeaderSize+c*8])
	n.setInternalKey(i, key)
	// Shift children [i+1, c+1) right by one.
	co := n.childOffset(maxKeys)
	copy(n.data[co+(i+2)*8:co+(c+2)*8], n.data[co+(i+1)*8:co+(c+1)*8])
	n.setChild(i+1, maxKeys, rightChild)
	n.setCount(c + 1)
}
