package bptree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Config parameterizes the B+tree store.
type Config struct {
	Dir        string
	ValueSize  int
	PageSize   int // default 4096
	PoolPages  int // buffer-pool capacity in pages (default 1024)
	SyncWrites bool
}

func (c *Config) setDefaults() error {
	if c.Dir == "" {
		return errors.New("bptree: Dir is required")
	}
	if c.ValueSize <= 0 {
		return errors.New("bptree: ValueSize must be positive")
	}
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.PoolPages == 0 {
		c.PoolPages = 1024
	}
	if leafCapacity(c.PageSize, c.ValueSize) < 2 {
		return fmt.Errorf("bptree: PageSize %d too small for ValueSize %d", c.PageSize, c.ValueSize)
	}
	return nil
}

// Meta page (page 0): magic:8 | root:8 | nextPage:8 | valueSize:8 | height:8.
const (
	metaMagic = uint64(0x4d4c4b5642545231) // "MLKVBTR1"
)

// Store is the disk B+tree.
type Store struct {
	cfg    Config
	file   *os.File
	pager  *pager
	treeMu sync.RWMutex // structure lock: shared for leaf ops, exclusive for splits

	metaMu   sync.Mutex
	root     uint64
	nextPage uint64
	height   int

	maxLeaf     int
	maxInternal int
}

// Open creates or reopens a B+tree store in cfg.Dir.
func Open(cfg Config) (*Store, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(cfg.Dir, "btree.dat")
	file, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{
		cfg:         cfg,
		file:        file,
		pager:       newPager(file, cfg.PageSize, cfg.PoolPages),
		maxLeaf:     leafCapacity(cfg.PageSize, cfg.ValueSize),
		maxInternal: internalCapacity(cfg.PageSize),
	}
	st, err := file.Stat()
	if err != nil {
		file.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if err := s.initialize(); err != nil {
			file.Close()
			return nil, err
		}
	} else if err := s.loadMeta(); err != nil {
		file.Close()
		return nil, err
	}
	return s, nil
}

func (s *Store) initialize() error {
	// Page 0 = meta, page 1 = empty root leaf.
	s.root = 1
	s.nextPage = 2
	s.height = 1
	rootPage := make([]byte, s.cfg.PageSize)
	n := node{data: rootPage, vs: s.cfg.ValueSize}
	n.setKind(kindLeaf)
	if _, err := s.file.WriteAt(rootPage, int64(s.cfg.PageSize)); err != nil {
		return err
	}
	return s.writeMeta()
}

func (s *Store) writeMeta() error {
	buf := make([]byte, s.cfg.PageSize)
	binary.LittleEndian.PutUint64(buf[0:], metaMagic)
	binary.LittleEndian.PutUint64(buf[8:], s.root)
	binary.LittleEndian.PutUint64(buf[16:], s.nextPage)
	binary.LittleEndian.PutUint64(buf[24:], uint64(s.cfg.ValueSize))
	binary.LittleEndian.PutUint64(buf[32:], uint64(s.height))
	_, err := s.file.WriteAt(buf, 0)
	return err
}

func (s *Store) loadMeta() error {
	buf := make([]byte, s.cfg.PageSize)
	if _, err := s.file.ReadAt(buf, 0); err != nil {
		return fmt.Errorf("bptree: read meta: %w", err)
	}
	if binary.LittleEndian.Uint64(buf) != metaMagic {
		return errors.New("bptree: bad meta magic")
	}
	s.root = binary.LittleEndian.Uint64(buf[8:])
	s.nextPage = binary.LittleEndian.Uint64(buf[16:])
	if vs := binary.LittleEndian.Uint64(buf[24:]); int(vs) != s.cfg.ValueSize {
		return fmt.Errorf("bptree: ValueSize %d != configured %d", vs, s.cfg.ValueSize)
	}
	s.height = int(binary.LittleEndian.Uint64(buf[32:]))
	return nil
}

func (s *Store) allocPage() uint64 {
	s.metaMu.Lock()
	id := s.nextPage
	s.nextPage++
	s.metaMu.Unlock()
	return id
}

// descendToLeaf walks from the root to the leaf covering key, pinning only
// one page at a time. Caller holds the tree lock (shared or exclusive).
func (s *Store) descendToLeaf(key uint64) (*pframe, error) {
	id := s.root
	for {
		f, err := s.pager.fetch(id)
		if err != nil {
			return nil, err
		}
		f.latch.RLock()
		n := node{data: f.data, vs: s.cfg.ValueSize}
		if n.kind() == kindLeaf {
			f.latch.RUnlock()
			return f, nil
		}
		next := n.child(n.childFor(key), s.maxInternal)
		f.latch.RUnlock()
		s.pager.unpin(f, false)
		id = next
	}
}

// get reads key's value.
func (s *Store) get(key uint64, dst []byte) (bool, error) {
	s.treeMu.RLock()
	defer s.treeMu.RUnlock()
	f, err := s.descendToLeaf(key)
	if err != nil {
		return false, err
	}
	defer s.pager.unpin(f, false)
	f.latch.RLock()
	defer f.latch.RUnlock()
	n := node{data: f.data, vs: s.cfg.ValueSize}
	i, ok := n.leafSearch(key)
	if !ok || n.leafMeta(i)&metaTombstone != 0 {
		return false, nil
	}
	copy(dst, n.leafVal(i))
	return true, nil
}

// put upserts key. The fast path (existing key, or room in the leaf) runs
// under the shared tree lock with a leaf write latch; splits retry under the
// exclusive lock.
func (s *Store) put(key uint64, val []byte, tomb bool) error {
	meta := uint64(0)
	if tomb {
		meta = metaTombstone
	}
	s.treeMu.RLock()
	full, err := s.putShared(key, meta, val)
	s.treeMu.RUnlock()
	if err != nil || !full {
		return err
	}
	// Leaf is full: restart with the exclusive structure lock.
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	return s.insertExclusive(key, meta, val)
}

// putShared attempts the fast-path upsert (existing key, or room in the
// leaf) with a leaf write latch. It returns full=true when the leaf needs a
// split, which requires the exclusive lock. Caller holds treeMu shared.
func (s *Store) putShared(key, meta uint64, val []byte) (full bool, err error) {
	f, err := s.descendToLeaf(key)
	if err != nil {
		return false, err
	}
	f.latch.Lock()
	n := node{data: f.data, vs: s.cfg.ValueSize}
	if i, ok := n.leafSearch(key); ok {
		n.setLeafEntry(i, key, meta, val)
		f.latch.Unlock()
		s.pager.unpin(f, true)
		return false, nil
	} else if n.count() < s.maxLeaf {
		n.leafInsertAt(i, key, meta, val)
		f.latch.Unlock()
		s.pager.unpin(f, true)
		return false, nil
	}
	f.latch.Unlock()
	s.pager.unpin(f, false)
	return true, nil
}

// getBatch reads keys[i] into vals[i*vs:(i+1)*vs] under one acquisition of
// the shared tree lock.
func (s *Store) getBatch(keys []uint64, vals []byte, found []bool) error {
	vs := s.cfg.ValueSize
	s.treeMu.RLock()
	defer s.treeMu.RUnlock()
	for bi, key := range keys {
		f, err := s.descendToLeaf(key)
		if err != nil {
			return err
		}
		f.latch.RLock()
		n := node{data: f.data, vs: vs}
		i, ok := n.leafSearch(key)
		if ok && n.leafMeta(i)&metaTombstone == 0 {
			copy(vals[bi*vs:(bi+1)*vs], n.leafVal(i))
			found[bi] = true
		} else {
			found[bi] = false
		}
		f.latch.RUnlock()
		s.pager.unpin(f, false)
	}
	return nil
}

// putBatch upserts all keys: the fast path runs for every key under one
// shared-lock acquisition; keys that landed on full leaves are retried
// under one exclusive-lock acquisition, splitting as needed.
func (s *Store) putBatch(keys []uint64, vals []byte) error {
	vs := s.cfg.ValueSize
	var overflow []int
	s.treeMu.RLock()
	for i, key := range keys {
		full, err := s.putShared(key, 0, vals[i*vs:(i+1)*vs])
		if err != nil {
			s.treeMu.RUnlock()
			return err
		}
		if full {
			overflow = append(overflow, i)
		}
	}
	s.treeMu.RUnlock()
	if len(overflow) == 0 {
		return nil
	}
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	for _, i := range overflow {
		if err := s.insertExclusive(keys[i], 0, vals[i*vs:(i+1)*vs]); err != nil {
			return err
		}
	}
	return nil
}

// insertExclusive inserts under the exclusive tree lock, splitting as
// needed. No latches are required: the lock excludes all other operations.
func (s *Store) insertExclusive(key, meta uint64, val []byte) error {
	// Walk down, remembering the path.
	type step struct {
		f   *pframe
		idx int
	}
	var path []step
	release := func() {
		for _, st := range path {
			s.pager.unpin(st.f, true) // conservatively mark dirty
		}
	}
	id := s.root
	for {
		f, err := s.pager.fetch(id)
		if err != nil {
			release()
			return err
		}
		n := node{data: f.data, vs: s.cfg.ValueSize}
		if n.kind() == kindLeaf {
			path = append(path, step{f: f})
			break
		}
		idx := n.childFor(key)
		path = append(path, step{f: f, idx: idx})
		id = n.child(idx, s.maxInternal)
	}
	leafStep := path[len(path)-1]
	leaf := node{data: leafStep.f.data, vs: s.cfg.ValueSize}
	if i, ok := leaf.leafSearch(key); ok {
		leaf.setLeafEntry(i, key, meta, val)
		release()
		return nil
	} else if leaf.count() < s.maxLeaf {
		leaf.leafInsertAt(i, key, meta, val)
		release()
		return nil
	}

	// Split the leaf: move the upper half to a new page.
	newID := s.allocPage()
	nf, err := s.pager.fetchNew(newID)
	if err != nil {
		release()
		return err
	}
	nn := node{data: nf.data, vs: s.cfg.ValueSize}
	nn.setKind(kindLeaf)
	mid := leaf.count() / 2
	moved := leaf.count() - mid
	es := leaf.leafEntrySize()
	copy(nn.data[pageHeaderSize:pageHeaderSize+moved*es],
		leaf.data[pageHeaderSize+mid*es:pageHeaderSize+leaf.count()*es])
	nn.setCount(moved)
	nn.setNext(leaf.next())
	leaf.setCount(mid)
	leaf.setNext(newID)
	sepKey := nn.leafKey(0)
	// Insert into the correct half.
	if key >= sepKey {
		i, ok := nn.leafSearch(key)
		if ok {
			nn.setLeafEntry(i, key, meta, val)
		} else {
			nn.leafInsertAt(i, key, meta, val)
		}
	} else {
		i, _ := leaf.leafSearch(key)
		leaf.leafInsertAt(i, key, meta, val)
	}
	s.pager.unpin(nf, true)

	// Propagate the separator up the path.
	upKey, rightID := sepKey, newID
	for lvl := len(path) - 2; lvl >= 0; lvl-- {
		pf := path[lvl].f
		pn := node{data: pf.data, vs: s.cfg.ValueSize}
		if pn.count() < s.maxInternal {
			pn.internalInsertAt(path[lvl].idx, upKey, rightID, s.maxInternal)
			release()
			return nil
		}
		// Split the internal node.
		nid := s.allocPage()
		rf, err := s.pager.fetchNew(nid)
		if err != nil {
			release()
			return err
		}
		rn := node{data: rf.data, vs: s.cfg.ValueSize}
		rn.setKind(kindInternal)
		c := pn.count()
		midk := c / 2
		promote := pn.internalKey(midk)
		// Right node takes keys (midk, c) and children (midk+1 .. c].
		rc := c - midk - 1
		for i := 0; i < rc; i++ {
			rn.setInternalKey(i, pn.internalKey(midk+1+i))
		}
		for i := 0; i <= rc; i++ {
			rn.setChild(i, s.maxInternal, pn.child(midk+1+i, s.maxInternal))
		}
		rn.setCount(rc)
		pn.setCount(midk)
		// Insert the pending separator into the proper half.
		if upKey >= promote {
			idx := rn.childFor(upKey)
			rn.internalInsertAt(idx, upKey, rightID, s.maxInternal)
		} else {
			idx := pn.childFor(upKey)
			pn.internalInsertAt(idx, upKey, rightID, s.maxInternal)
		}
		s.pager.unpin(rf, true)
		upKey, rightID = promote, nid
	}

	// Root split: grow the tree by one level.
	newRootID := s.allocPage()
	rf, err := s.pager.fetchNew(newRootID)
	if err != nil {
		release()
		return err
	}
	rn := node{data: rf.data, vs: s.cfg.ValueSize}
	rn.setKind(kindInternal)
	rn.setCount(1)
	rn.setInternalKey(0, upKey)
	rn.setChild(0, s.maxInternal, s.root)
	rn.setChild(1, s.maxInternal, rightID)
	s.pager.unpin(rf, true)
	s.metaMu.Lock()
	s.root = newRootID
	s.height++
	s.metaMu.Unlock()
	release()
	return nil
}

// Sync flushes dirty pages and the metadata to the file without closing,
// making everything written so far recoverable — the engine's checkpoint.
func (s *Store) Sync() error {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	if err := s.pager.flushAll(); err != nil {
		return err
	}
	s.metaMu.Lock()
	err := s.writeMeta()
	s.metaMu.Unlock()
	if err != nil {
		return err
	}
	return s.file.Sync()
}

// Close flushes dirty pages and the metadata.
func (s *Store) Close() error {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	if err := s.pager.flushAll(); err != nil {
		s.file.Close()
		return err
	}
	s.metaMu.Lock()
	err := s.writeMeta()
	s.metaMu.Unlock()
	if err != nil {
		s.file.Close()
		return err
	}
	if s.cfg.SyncWrites {
		if err := s.file.Sync(); err != nil {
			s.file.Close()
			return err
		}
	}
	return s.file.Close()
}

// ValueSize returns the fixed value size.
func (s *Store) ValueSize() int { return s.cfg.ValueSize }

// Name identifies the engine.
func (s *Store) Name() string { return "bptree" }

// Height returns the tree height (diagnostics).
func (s *Store) Height() int {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	return s.height
}

// IOStats reports pager counters (reads, writes, pool hits).
func (s *Store) IOStats() (reads, writes, hits int64) { return s.pager.stats() }

// Session adapts the store to kv.Session.
type Session struct{ s *Store }

// NewSession returns an operation handle.
func (s *Store) NewSession() (*Session, error) { return &Session{s: s}, nil }

// Get reads key into dst.
func (se *Session) Get(key uint64, dst []byte) (bool, error) {
	if len(dst) != se.s.cfg.ValueSize {
		return false, errors.New("bptree: buffer length must equal ValueSize")
	}
	return se.s.get(key, dst)
}

// Put upserts key.
func (se *Session) Put(key uint64, val []byte) error {
	if len(val) != se.s.cfg.ValueSize {
		return errors.New("bptree: buffer length must equal ValueSize")
	}
	return se.s.put(key, val, false)
}

// Delete removes key (tombstone; space is reused on reinsert).
func (se *Session) Delete(key uint64) error {
	return se.s.put(key, make([]byte, se.s.cfg.ValueSize), true)
}

// GetBatch reads keys[i] into vals[i*vs:(i+1)*vs], setting found[i], under
// one acquisition of the shared tree lock.
func (se *Session) GetBatch(keys []uint64, vals []byte, found []bool) error {
	vs := se.s.cfg.ValueSize
	if len(vals) != len(keys)*vs || len(found) != len(keys) {
		return errors.New("bptree: batch buffer lengths must match len(keys)")
	}
	return se.s.getBatch(keys, vals, found)
}

// PutBatch upserts keys[i] = vals[i*vs:(i+1)*vs]; fast-path inserts share
// one lock acquisition, overflowing leaves split under one exclusive pass.
func (se *Session) PutBatch(keys []uint64, vals []byte) error {
	vs := se.s.cfg.ValueSize
	if len(vals) != len(keys)*vs {
		return errors.New("bptree: batch buffer lengths must match len(keys)")
	}
	return se.s.putBatch(keys, vals)
}

// Prefetch pulls key's leaf page into the buffer pool.
func (se *Session) Prefetch(key uint64) (bool, error) {
	dst := make([]byte, se.s.cfg.ValueSize)
	return se.s.get(key, dst)
}

// Close releases the session (no-op).
func (se *Session) Close() {}
