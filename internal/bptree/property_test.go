package bptree

import (
	"bytes"
	"sync"
	"testing"

	"github.com/llm-db/mlkv-go/internal/util"
)

// openPropTree opens a store with pages small enough that a few thousand
// distinct keys build a deep tree through many leaf and internal splits.
// No cleanup is registered: property runs close and reopen the store
// themselves.
func openPropTree(t *testing.T, dir string, vs int) *Store {
	t.Helper()
	s, err := Open(Config{
		Dir:       dir,
		ValueSize: vs,
		PageSize:  512,
		PoolPages: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// propBatchKeys fills keys with a run of consecutive keys starting at a
// random point. Consecutive keys keep every batch duplicate-free, which
// the map model needs, and putBatch's overflow retry path re-applies the
// first occurrence of a key — last-wins only holds for distinct keys.
func propBatchKeys(r *util.RNG, keys []uint64, keySpace uint64) {
	start := r.Uint64n(keySpace) + 1
	for i := range keys {
		keys[i] = start + uint64(i)
	}
}

// TestBPTreePropertyAcrossSplitsAndReopen runs long random operation
// sequences — scalar and batch — against the tree and a reference map
// simultaneously, over a key space wide enough to split leaves and
// internal nodes repeatedly, closing and reopening the store twice
// mid-run. The surviving tree must agree with the map exactly, including
// after the final reopen.
func TestBPTreePropertyAcrossSplitsAndReopen(t *testing.T) {
	const (
		vs       = 12
		keySpace = 3000
		ops      = 20000
		batch    = 8
	)
	dir := t.TempDir()
	st := openPropTree(t, dir, vs)
	defer func() { st.Close() }()
	se, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}

	model := make(map[uint64][]byte)
	r := util.NewRNG(0xb9713)
	dst := make([]byte, vs)
	bkeys := make([]uint64, batch)
	bvals := make([]byte, batch*vs)
	bfound := make([]bool, batch)

	for i := 0; i < ops; i++ {
		// Boundary events: a checkpoint at the midpoint, a full
		// close/reopen at the quarter points. Everything the model holds
		// must survive each.
		switch i {
		case ops / 4, 3 * ops / 4:
			se.Close()
			if err := st.Close(); err != nil {
				t.Fatalf("op %d: close: %v", i, err)
			}
			st = openPropTree(t, dir, vs)
			if se, err = st.NewSession(); err != nil {
				t.Fatal(err)
			}
		case ops / 2:
			if err := st.Sync(); err != nil {
				t.Fatalf("op %d: sync: %v", i, err)
			}
		}

		k := r.Uint64n(keySpace) + 1
		switch r.Uint64n(12) {
		case 0, 1, 2, 3: // Put
			v := bval(vs, r.Uint64())
			if err := se.Put(k, v); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case 4: // Delete
			if err := se.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		case 5: // PutBatch over a consecutive key run
			propBatchKeys(r, bkeys, keySpace)
			for j, bk := range bkeys {
				v := bval(vs, r.Uint64())
				copy(bvals[j*vs:(j+1)*vs], v)
				model[bk] = v
			}
			if err := se.PutBatch(bkeys, bvals); err != nil {
				t.Fatal(err)
			}
		case 6: // GetBatch, checked slot by slot
			propBatchKeys(r, bkeys, keySpace)
			if err := se.GetBatch(bkeys, bvals, bfound); err != nil {
				t.Fatal(err)
			}
			for j, bk := range bkeys {
				mv, ok := model[bk]
				if bfound[j] != ok {
					t.Fatalf("op %d: GetBatch(%d) found=%v, model=%v", i, bk, bfound[j], ok)
				}
				if ok && !bytes.Equal(bvals[j*vs:(j+1)*vs], mv) {
					t.Fatalf("op %d: GetBatch(%d) value mismatch", i, bk)
				}
			}
		case 7: // Prefetch must never change visible state
			if _, err := se.Prefetch(k); err != nil {
				t.Fatal(err)
			}
		default: // Get
			found, err := se.Get(k, dst)
			if err != nil {
				t.Fatal(err)
			}
			mv, ok := model[k]
			if found != ok {
				t.Fatalf("op %d: Get(%d) found=%v, model=%v", i, k, found, ok)
			}
			if found && !bytes.Equal(dst, mv) {
				t.Fatalf("op %d: Get(%d) = %x, want %x", i, k, dst, mv)
			}
		}
	}

	// The run must actually have crossed the structural boundary it
	// claims to test: this many distinct keys on 512-byte pages splits
	// the root at least twice.
	if st.Height() < 3 {
		t.Fatalf("run never split past height %d; widen the key space", st.Height())
	}

	// Final reopen, then verify the entire key space against the model.
	se.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st = openPropTree(t, dir, vs)
	se, err = st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= keySpace+batch; k++ {
		found, err := se.Get(k, dst)
		if err != nil {
			t.Fatal(err)
		}
		mv, ok := model[k]
		if found != ok {
			t.Fatalf("final: key %d found=%v model=%v", k, found, ok)
		}
		if found && !bytes.Equal(dst, mv) {
			t.Fatalf("final: key %d mismatch", k)
		}
	}
}

// TestBPTreeCrashAfterSyncMatchesModel abandons the store without Close
// after a Sync — the checkpoint the engine promises is recoverable — and
// demands the reopened file agree with the model at the sync point.
func TestBPTreeCrashAfterSyncMatchesModel(t *testing.T) {
	const (
		vs       = 12
		keySpace = 1500
		ops      = 6000
	)
	dir := t.TempDir()
	st := openPropTree(t, dir, vs)
	se, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[uint64][]byte)
	r := util.NewRNG(0xc4a55)
	for i := 0; i < ops; i++ {
		k := r.Uint64n(keySpace) + 1
		if r.Uint64n(5) == 0 {
			if err := se.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		} else {
			v := bval(vs, r.Uint64())
			if err := se.Put(k, v); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		}
	}
	// Checkpoint, then crash: walk away without Close. The file alone
	// must reconstruct the model.
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	st2 := openPropTree(t, dir, vs)
	defer st2.Close()
	se2, err := st2.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, vs)
	for k := uint64(1); k <= keySpace; k++ {
		found, err := se2.Get(k, dst)
		if err != nil {
			t.Fatal(err)
		}
		mv, ok := model[k]
		if found != ok {
			t.Fatalf("after crash: key %d found=%v model=%v", k, found, ok)
		}
		if found && !bytes.Equal(dst, mv) {
			t.Fatalf("after crash: key %d mismatch", k)
		}
	}
	st.file.Close() // release the abandoned handle
}

// TestBPTreeColdFetchUnderConcurrency hammers the pager's miss path with
// same-page collisions: every worker reads and writes a hot key range
// spanning a handful of leaf pages, while periodic cold scans evict those
// pages from the 16-frame pool — so the hot pages are constantly being
// refetched from disk by several goroutines at once. A frame published in
// the page table before its disk read completes surfaces here as tree
// corruption (reads of the recycled frame's previous tenant) — a logical
// latch-ordering race the race detector cannot flag, so this stress test
// is the gate.
func TestBPTreeColdFetchUnderConcurrency(t *testing.T) {
	const (
		vs       = 64
		hotKeys  = 256   // a few leaf pages all workers share
		coldKeys = 50000 // far beyond the pool: scans evict the hot pages
		workers  = 8
		ops      = 20000
	)
	dir := t.TempDir()
	st := openPropTree(t, dir, vs)
	defer st.Close()

	se, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= coldKeys; k += 2 {
		if err := se.Put(k, bval(vs, k)); err != nil {
			t.Fatal(err)
		}
	}
	se.Close()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ses, err := st.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer ses.Close()
			r := util.NewRNG(uint64(w)*77 + 5)
			dst := make([]byte, vs)
			for i := 0; i < ops; i++ {
				if r.Uint64n(8) == 0 {
					// Cold burst: churn the pool so the hot pages evict.
					for j := 0; j < 16; j++ {
						k := r.Uint64n(coldKeys) + 1
						found, err := ses.Get(k, dst)
						if err != nil {
							t.Errorf("cold get: %v", err)
							return
						}
						// Odd keys are preloaded and never deleted: a miss
						// means the reader walked a corrupt (recycled) page.
						if k%2 == 1 && !found {
							t.Errorf("cold key %d vanished", k)
							return
						}
					}
					continue
				}
				k := r.Uint64n(hotKeys) + 1
				if r.Uint64n(4) == 0 {
					if err := ses.Put(k, bval(vs, k)); err != nil {
						t.Errorf("put %d: %v", k, err)
						return
					}
				} else {
					found, err := ses.Get(k, dst)
					if err != nil {
						t.Errorf("get %d: %v", k, err)
						return
					}
					if k%2 == 1 && !found {
						t.Errorf("hot key %d vanished", k)
						return
					}
					if found && !bytes.Equal(dst, bval(vs, k)) {
						t.Errorf("key %d: torn or foreign value", k)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
