package bptree

import (
	"bytes"
	"sync"
	"testing"

	"github.com/llm-db/mlkv-go/internal/util"
)

func testTree(t *testing.T, vs int) *Store {
	t.Helper()
	s, err := Open(Config{
		Dir:       t.TempDir(),
		ValueSize: vs,
		PageSize:  512, // tiny pages force deep trees and many splits
		PoolPages: 16,  // tiny pool forces eviction
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s
}

func bval(vs int, seed uint64) []byte {
	b := make([]byte, vs)
	r := util.NewRNG(seed)
	for i := range b {
		b[i] = byte(r.Uint64())
	}
	return b
}

func TestBPTreePutGet(t *testing.T) {
	s := testTree(t, 16)
	se, _ := s.NewSession()
	for k := uint64(1); k <= 100; k++ {
		if err := se.Put(k, bval(16, k)); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]byte, 16)
	for k := uint64(1); k <= 100; k++ {
		found, err := se.Get(k, dst)
		if err != nil || !found || !bytes.Equal(dst, bval(16, k)) {
			t.Fatalf("key %d: found=%v err=%v", k, found, err)
		}
	}
}

func TestBPTreeSplitsAndDeepTree(t *testing.T) {
	s := testTree(t, 32)
	se, _ := s.NewSession()
	const n = 5000
	r := util.NewRNG(3)
	perm := r.Perm(n) // random insertion order stresses splits everywhere
	for _, i := range perm {
		k := uint64(i + 1)
		if err := se.Put(k, bval(32, k)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Height() < 3 {
		t.Fatalf("expected a deep tree, height = %d", s.Height())
	}
	dst := make([]byte, 32)
	for k := uint64(1); k <= n; k++ {
		found, err := se.Get(k, dst)
		if err != nil || !found {
			t.Fatalf("key %d: found=%v err=%v (height %d)", k, found, err, s.Height())
		}
		if !bytes.Equal(dst, bval(32, k)) {
			t.Fatalf("key %d corrupted", k)
		}
	}
}

func TestBPTreeOverwrite(t *testing.T) {
	s := testTree(t, 16)
	se, _ := s.NewSession()
	se.Put(5, bval(16, 1))
	se.Put(5, bval(16, 2))
	dst := make([]byte, 16)
	if found, _ := se.Get(5, dst); !found || !bytes.Equal(dst, bval(16, 2)) {
		t.Fatal("overwrite lost")
	}
}

func TestBPTreeDeleteAndReinsert(t *testing.T) {
	s := testTree(t, 16)
	se, _ := s.NewSession()
	se.Put(5, bval(16, 1))
	se.Delete(5)
	dst := make([]byte, 16)
	if found, _ := se.Get(5, dst); found {
		t.Fatal("delete ignored")
	}
	se.Put(5, bval(16, 3))
	if found, _ := se.Get(5, dst); !found || !bytes.Equal(dst, bval(16, 3)) {
		t.Fatal("reinsert lost")
	}
}

func TestBPTreeGetMissing(t *testing.T) {
	s := testTree(t, 16)
	se, _ := s.NewSession()
	dst := make([]byte, 16)
	if found, err := se.Get(42, dst); err != nil || found {
		t.Fatalf("missing key: found=%v err=%v", found, err)
	}
}

func TestBPTreePersistence(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, ValueSize: 16, PageSize: 512, PoolPages: 16}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	se, _ := s.NewSession()
	for k := uint64(1); k <= 2000; k++ {
		se.Put(k, bval(16, k))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	se2, _ := s2.NewSession()
	dst := make([]byte, 16)
	for k := uint64(1); k <= 2000; k++ {
		if found, _ := se2.Get(k, dst); !found || !bytes.Equal(dst, bval(16, k)) {
			t.Fatalf("key %d lost across restart", k)
		}
	}
}

func TestBPTreeConcurrentReadersAndWriters(t *testing.T) {
	s := testTree(t, 16)
	// Preload so readers have something to find.
	se, _ := s.NewSession()
	for k := uint64(1); k <= 1000; k++ {
		se.Put(k, bval(16, k))
	}
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ses, _ := s.NewSession()
			defer ses.Close()
			r := util.NewRNG(uint64(w) + 9)
			dst := make([]byte, 16)
			for i := 0; i < 500; i++ {
				k := r.Uint64n(2000) + 1
				if r.Uint64n(2) == 0 {
					if err := ses.Put(k, bval(16, k)); err != nil {
						t.Error(err)
						return
					}
				} else {
					found, err := ses.Get(k, dst)
					if err != nil {
						t.Error(err)
						return
					}
					if found && !bytes.Equal(dst, bval(16, k)) {
						t.Errorf("key %d torn", k)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestBPTreeMatchesModelMap is the engine-equivalence property test.
func TestBPTreeMatchesModelMap(t *testing.T) {
	s := testTree(t, 12)
	se, _ := s.NewSession()
	model := make(map[uint64][]byte)
	r := util.NewRNG(0xdef)
	dst := make([]byte, 12)
	for i := 0; i < 15000; i++ {
		k := r.Uint64n(900) + 1
		switch r.Uint64n(6) {
		case 0, 1, 2:
			v := bval(12, r.Uint64())
			if err := se.Put(k, v); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case 3:
			if err := se.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		default:
			found, err := se.Get(k, dst)
			if err != nil {
				t.Fatal(err)
			}
			mv, ok := model[k]
			if found != ok {
				t.Fatalf("op %d key %d: found=%v model=%v", i, k, found, ok)
			}
			if found && !bytes.Equal(dst, mv) {
				t.Fatalf("op %d key %d: value mismatch", i, k)
			}
		}
	}
	for k := uint64(1); k <= 900; k++ {
		found, err := se.Get(k, dst)
		if err != nil {
			t.Fatal(err)
		}
		mv, ok := model[k]
		if found != ok || (found && !bytes.Equal(dst, mv)) {
			t.Fatalf("final key %d mismatch", k)
		}
	}
}

// TestBPTreeSortedIterationInvariant walks leaf pages via next links and
// checks global key order — the core structural invariant.
func TestBPTreeSortedIterationInvariant(t *testing.T) {
	s := testTree(t, 8)
	se, _ := s.NewSession()
	r := util.NewRNG(11)
	inserted := map[uint64]bool{}
	for i := 0; i < 3000; i++ {
		k := r.Uint64n(100000) + 1
		se.Put(k, bval(8, k))
		inserted[k] = true
	}
	// Find the leftmost leaf.
	s.treeMu.RLock()
	defer s.treeMu.RUnlock()
	id := s.root
	for {
		f, err := s.pager.fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		n := node{data: f.data, vs: 8}
		if n.kind() == kindLeaf {
			s.pager.unpin(f, false)
			break
		}
		next := n.child(0, s.maxInternal)
		s.pager.unpin(f, false)
		id = next
	}
	var last uint64
	count := 0
	for id != 0 {
		f, err := s.pager.fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		n := node{data: f.data, vs: 8}
		for i := 0; i < n.count(); i++ {
			k := n.leafKey(i)
			if count > 0 && k <= last {
				t.Fatalf("keys out of order: %d after %d", k, last)
			}
			if !inserted[k] {
				t.Fatalf("phantom key %d", k)
			}
			last = k
			count++
		}
		next := n.next()
		s.pager.unpin(f, false)
		id = next
	}
	if count != len(inserted) {
		t.Fatalf("leaf scan found %d keys, inserted %d", count, len(inserted))
	}
}

func TestBPTreeValueSizeMismatchOnReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, ValueSize: 8, PageSize: 512, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := Open(Config{Dir: dir, ValueSize: 16, PageSize: 512, PoolPages: 16}); err == nil {
		t.Fatal("ValueSize mismatch accepted")
	}
}

func TestBPTreeConfigValidation(t *testing.T) {
	if _, err := Open(Config{ValueSize: 8}); err == nil {
		t.Fatal("missing Dir accepted")
	}
	if _, err := Open(Config{Dir: t.TempDir(), ValueSize: 4096, PageSize: 128}); err == nil {
		t.Fatal("oversize values accepted")
	}
}
