// Package bptree implements a disk-resident B+tree key-value store with a
// fixed-capacity buffer pool, standing in for WiredTiger as the paper's
// "industrial-strength B+tree store" baseline (Figure 7). Values are fixed
// size; updates happen in place on leaf pages; the buffer-pool capacity is
// the store's "buffer size" knob.
package bptree

import (
	"fmt"
	"os"
	"sync"
)

// pager is the buffer pool: a page table over fixed-size frames with clock
// eviction and write-back of dirty pages.
type pager struct {
	file     *os.File
	pageSize int

	mu       sync.Mutex
	frames   map[uint64]*pframe
	clock    []*pframe
	hand     int
	capacity int

	reads  int64
	writes int64
	hits   int64
}

// pframe is one resident page. The content latch (RWMutex) protects data;
// pins prevent eviction while a caller holds the frame.
type pframe struct {
	id    uint64
	data  []byte
	dirty bool
	pins  int
	ref   bool
	latch sync.RWMutex
}

func newPager(file *os.File, pageSize, capacity int) *pager {
	if capacity < 8 {
		capacity = 8
	}
	return &pager{
		file:     file,
		pageSize: pageSize,
		frames:   make(map[uint64]*pframe, capacity),
		capacity: capacity,
	}
}

// fetch pins page id into the pool, reading it from disk on a miss.
func (p *pager) fetch(id uint64) (*pframe, error) {
	p.mu.Lock()
	if f, ok := p.frames[id]; ok {
		f.pins++
		f.ref = true
		p.hits++
		p.mu.Unlock()
		return f, nil
	}
	f, err := p.allocFrameLocked()
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	f.id = id
	f.pins = 1
	f.ref = true
	f.dirty = false
	// Take the content latch BEFORE the frame becomes visible in the page
	// table: a concurrent fetcher of the same id returns the frame from the
	// map and then blocks on the latch until the disk read below completes.
	// Published unlatched, that fetcher could win the latch race and read —
	// or worse, update — the evicted previous tenant's bytes still sitting
	// in the recycled frame. Acquiring here cannot block: eviction requires
	// pins == 0, and every caller releases the latch before unpinning.
	f.latch.Lock()
	p.frames[id] = f
	p.reads++
	p.mu.Unlock()
	_, err = p.file.ReadAt(f.data, int64(id)*int64(p.pageSize))
	f.latch.Unlock()
	if err != nil {
		p.mu.Lock()
		delete(p.frames, id)
		f.pins-- // only this fetch's pin; concurrent fetchers drop their own
		p.mu.Unlock()
		return nil, fmt.Errorf("bptree: read page %d: %w", id, err)
	}
	return f, nil
}

// fetchNew pins a frame for a fresh page (no disk read).
func (p *pager) fetchNew(id uint64) (*pframe, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.frames[id]; ok {
		return nil, fmt.Errorf("bptree: page %d already resident", id)
	}
	f, err := p.allocFrameLocked()
	if err != nil {
		return nil, err
	}
	for i := range f.data {
		f.data[i] = 0
	}
	f.id = id
	f.pins = 1
	f.ref = true
	f.dirty = true
	p.frames[id] = f
	return f, nil
}

// allocFrameLocked returns a free frame, evicting an unpinned page if the
// pool is full. Caller holds p.mu.
func (p *pager) allocFrameLocked() (*pframe, error) {
	if len(p.clock) < p.capacity {
		f := &pframe{data: make([]byte, p.pageSize)}
		p.clock = append(p.clock, f)
		return f, nil
	}
	for sweep := 0; sweep < 2*len(p.clock)+1; sweep++ {
		f := p.clock[p.hand]
		p.hand = (p.hand + 1) % len(p.clock)
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if f.dirty {
			if _, err := p.file.WriteAt(f.data, int64(f.id)*int64(p.pageSize)); err != nil {
				return nil, fmt.Errorf("bptree: evict page %d: %w", f.id, err)
			}
			p.writes++
			f.dirty = false
		}
		delete(p.frames, f.id)
		return f, nil
	}
	return nil, fmt.Errorf("bptree: buffer pool exhausted (%d frames, all pinned)", p.capacity)
}

// unpin releases the caller's pin, marking the page dirty if modified.
func (p *pager) unpin(f *pframe, dirty bool) {
	p.mu.Lock()
	f.pins--
	if dirty {
		f.dirty = true
	}
	p.mu.Unlock()
}

// flushAll writes every dirty resident page back to disk.
func (p *pager) flushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.dirty {
			if _, err := p.file.WriteAt(f.data, int64(f.id)*int64(p.pageSize)); err != nil {
				return err
			}
			p.writes++
			f.dirty = false
		}
	}
	return nil
}

// stats reports I/O counters.
func (p *pager) stats() (reads, writes, hits int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reads, p.writes, p.hits
}
