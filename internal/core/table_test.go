package core

import (
	"math"
	"sync"
	"testing"
	"time"

	"github.com/llm-db/mlkv-go/internal/util"
)

func testTable(t *testing.T, dim int, bound int64) *Table {
	t.Helper()
	tbl, err := OpenTable(Options{
		Dir:            t.TempDir(),
		Dim:            dim,
		StalenessBound: bound,
		MemoryBytes:    1 << 20,
		RecordsPerPage: 64,
		Init:           UniformInit(0.1, 42),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tbl.Close() })
	return tbl
}

func TestTableGetInitializesFirstTouch(t *testing.T) {
	tbl := testTable(t, 8, BoundDisabled)
	s, err := tbl.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	emb := make([]float32, 8)
	if err := s.Get(1, emb); err != nil {
		t.Fatal(err)
	}
	nonzero := false
	for _, v := range emb {
		if v != 0 {
			nonzero = true
		}
		if v < -0.1 || v >= 0.1 {
			t.Fatalf("init out of range: %v", v)
		}
	}
	if !nonzero {
		t.Fatal("initializer produced all zeros")
	}
	// Same key, same init — deterministic.
	emb2 := make([]float32, 8)
	if err := s.Get(1, emb2); err != nil {
		t.Fatal(err)
	}
	for i := range emb {
		if emb[i] != emb2[i] {
			t.Fatal("initialized embedding unstable")
		}
	}
}

func TestTablePutGetRoundTrip(t *testing.T) {
	tbl := testTable(t, 4, BoundDisabled)
	s, _ := tbl.NewSession()
	defer s.Close()
	want := []float32{1.5, -2.25, 3.125, -0.0625}
	if err := s.Put(7, want); err != nil {
		t.Fatal(err)
	}
	got := make([]float32, 4)
	if err := s.Get(7, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dim %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestTableBatchOps(t *testing.T) {
	tbl := testTable(t, 4, BoundDisabled)
	s, _ := tbl.NewSession()
	defer s.Close()
	keys := []uint64{1, 2, 3}
	vals := make([]float32, 12)
	for i := range vals {
		vals[i] = float32(i)
	}
	if err := s.PutBatch(keys, vals); err != nil {
		t.Fatal(err)
	}
	got := make([]float32, 12)
	if err := s.GetBatch(keys, got); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("slot %d: got %v want %v", i, got[i], vals[i])
		}
	}
}

func TestTableDimValidation(t *testing.T) {
	tbl := testTable(t, 4, BoundDisabled)
	s, _ := tbl.NewSession()
	defer s.Close()
	if err := s.Get(1, make([]float32, 3)); err == nil {
		t.Fatal("wrong dim accepted in Get")
	}
	if err := s.Put(1, make([]float32, 5)); err == nil {
		t.Fatal("wrong dim accepted in Put")
	}
	if err := s.GetBatch([]uint64{1, 2}, make([]float32, 7)); err == nil {
		t.Fatal("wrong batch size accepted")
	}
}

func TestApplyGradient(t *testing.T) {
	tbl := testTable(t, 4, BoundDisabled)
	s, _ := tbl.NewSession()
	defer s.Close()
	s.Put(1, []float32{1, 1, 1, 1})
	if err := s.ApplyGradient(1, []float32{1, 2, 3, 4}, 0.5); err != nil {
		t.Fatal(err)
	}
	got := make([]float32, 4)
	s.Get(1, got)
	want := []float32{0.5, 0, -0.5, -1}
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-6 {
			t.Fatalf("dim %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestLookaheadStorageBufferWarmsDiskRecords(t *testing.T) {
	// A 64 KiB buffer holds ~1100 records of dim 8; writing 6000 evicts the
	// early keys to disk.
	tbl, err := OpenTable(Options{
		Dir:            t.TempDir(),
		Dim:            8,
		StalenessBound: 4,
		MemoryBytes:    64 << 10,
		RecordsPerPage: 64,
		Init:           UniformInit(0.1, 42),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	s, _ := tbl.NewSession()
	defer s.Close()
	// Write enough embeddings to evict the early keys to disk.
	emb := make([]float32, 8)
	const n = 6000
	for k := uint64(1); k <= n; k++ {
		for i := range emb {
			emb[i] = float32(k)
		}
		if err := s.Put(k, emb); err != nil {
			t.Fatal(err)
		}
	}
	// Prefetch early (cold) keys and wait for copies to land.
	cold := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	if err := s.Lookahead(cold, DestStorageBuffer, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		copied, _ := tbl.PrefetchStats()
		if copied >= int64(len(cold)) || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	copied, dropped := tbl.PrefetchStats()
	if copied < int64(len(cold)) {
		t.Fatalf("prefetch copied %d of %d (dropped %d)", copied, len(cold), dropped)
	}
	// The subsequent Gets should be disk-free.
	before := tbl.Store().Stats().DiskReads
	for _, k := range cold {
		if err := s.Get(k, emb); err != nil {
			t.Fatal(err)
		}
		if emb[0] != float32(k) {
			t.Fatalf("key %d: wrong value after prefetch", k)
		}
		if err := s.Put(k, emb); err != nil { // balance the clock
			t.Fatal(err)
		}
	}
	after := tbl.Store().Stats().DiskReads
	if after != before {
		t.Fatalf("gets after lookahead hit disk %d times", after-before)
	}
}

func TestLookaheadAppCache(t *testing.T) {
	tbl := testTable(t, 8, 4)
	s, _ := tbl.NewSession()
	defer s.Close()
	emb := make([]float32, 8)
	for k := uint64(1); k <= 100; k++ {
		for i := range emb {
			emb[i] = float32(k)
		}
		s.Put(k, emb)
	}
	cache := NewCache(64, 8)
	defer cache.Close()
	if err := s.Lookahead([]uint64{5, 6, 7}, DestAppCache, cache); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for cache.Len() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	got := make([]float32, 8)
	if !cache.Get(5, got, tbl.WriteClock(), BoundASP) {
		t.Fatal("key 5 not in app cache after Lookahead")
	}
	if got[0] != 5 {
		t.Fatalf("cached value wrong: %v", got[0])
	}
	if err := s.Lookahead([]uint64{1}, DestAppCache, nil); err == nil {
		t.Fatal("nil cache accepted for DestAppCache")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(16, 2) // 16 slots over 16 shards => 1 per shard
	defer c.Close()
	for k := uint64(0); k < 64; k++ {
		c.Put(k, []float32{float32(k), 0}, 0)
	}
	if c.Len() > 16 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
	// Most recent key per shard must be resident.
	got := make([]float32, 2)
	if !c.Get(63, got, 0, BoundASP) {
		t.Fatal("most recent key evicted")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(32, 2)
	defer c.Close()
	c.Put(1, []float32{1, 2}, 0)
	c.Invalidate(1)
	if c.Get(1, make([]float32, 2), 0, BoundASP) {
		t.Fatal("invalidated key still cached")
	}
}

func TestTableConcurrentTraining(t *testing.T) {
	// Simulated async training: workers Get, compute, Put, with a bound.
	tbl := testTable(t, 8, 8)
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			s, err := tbl.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			r := util.NewRNG(seed)
			emb := make([]float32, 8)
			for i := 0; i < 500; i++ {
				k := r.Uint64n(200) + 1
				if err := s.Get(k, emb); err != nil {
					t.Error(err)
					return
				}
				for j := range emb {
					emb[j] += 0.001
				}
				if err := s.Put(k, emb); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
}

func TestTableCheckpointRestore(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Dir: dir, Dim: 4, StalenessBound: BoundDisabled,
		MemoryBytes: 1 << 20, RecordsPerPage: 64,
	}
	tbl, err := OpenTable(opts)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := tbl.NewSession()
	s.Put(1, []float32{1, 2, 3, 4})
	s.Close()
	if err := tbl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tbl.Close()

	tbl2, err := OpenTable(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tbl2.Close()
	s2, _ := tbl2.NewSession()
	defer s2.Close()
	got := make([]float32, 4)
	if err := s2.Get(1, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[3] != 4 {
		t.Fatalf("restored embedding wrong: %v", got)
	}
}

func TestOpenTableValidation(t *testing.T) {
	if _, err := OpenTable(Options{Dir: t.TempDir()}); err == nil {
		t.Fatal("Dim 0 accepted")
	}
	if _, err := OpenTable(Options{Dim: 4}); err == nil {
		t.Fatal("missing Dir accepted")
	}
}

func TestBoundModesSmoke(t *testing.T) {
	for _, bound := range []int64{BoundDisabled, BoundBSP, 4, BoundASP} {
		tbl := testTable(t, 4, bound)
		s, _ := tbl.NewSession()
		emb := make([]float32, 4)
		for k := uint64(1); k <= 50; k++ {
			if err := s.Get(k, emb); err != nil {
				t.Fatalf("bound %d: %v", bound, err)
			}
			if err := s.Put(k, emb); err != nil {
				t.Fatalf("bound %d: %v", bound, err)
			}
		}
		s.Close()
	}
}

// TestActiveSessions covers the serving layer's lifecycle hook: the count
// tracks opens and closes, and double-close does not double-count.
func TestActiveSessions(t *testing.T) {
	tbl := testTable(t, 4, BoundDisabled)
	if n := tbl.ActiveSessions(); n != 0 {
		t.Fatalf("fresh table has %d sessions", n)
	}
	var sessions []*Session
	for i := 0; i < 3; i++ {
		s, err := tbl.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
		if n := tbl.ActiveSessions(); n != int64(i+1) {
			t.Fatalf("after %d opens: count %d", i+1, n)
		}
	}
	sessions[0].Close()
	sessions[0].Close() // idempotent
	if n := tbl.ActiveSessions(); n != 2 {
		t.Fatalf("after double-close: count %d", n)
	}
	for _, s := range sessions[1:] {
		s.Close()
	}
	if n := tbl.ActiveSessions(); n != 0 {
		t.Fatalf("after all closes: count %d", n)
	}
}
