package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/llm-db/mlkv-go/internal/util"
)

func testShardedTable(t *testing.T, dim, shards int, bound int64) *Table {
	t.Helper()
	tbl, err := OpenTable(Options{
		Dir:            t.TempDir(),
		Dim:            dim,
		Shards:         shards,
		StalenessBound: bound,
		MemoryBytes:    1 << 20,
		RecordsPerPage: 64,
		Init:           UniformInit(0.1, 42),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tbl.Close() })
	return tbl
}

func TestShardOfUniformDistribution(t *testing.T) {
	const shards = 8
	const keys = 1 << 20
	counts := make([]int, shards)
	for k := uint64(0); k < keys; k++ {
		sh := util.ShardOf(k, shards)
		if sh < 0 || sh >= shards {
			t.Fatalf("ShardOf(%d, %d) = %d out of range", k, shards, sh)
		}
		counts[sh]++
	}
	mean := float64(keys) / shards
	for sh, c := range counts {
		dev := (float64(c) - mean) / mean
		if dev < -0.02 || dev > 0.02 {
			t.Fatalf("shard %d holds %d keys, %.1f%% from the mean %f", sh, c, dev*100, mean)
		}
	}
	// One shard must collapse to index 0 without hashing.
	if util.ShardOf(12345, 1) != 0 {
		t.Fatal("ShardOf with one shard must return 0")
	}
}

func TestShardOfStableAcrossLayers(t *testing.T) {
	// The router's placement must be exactly util.ShardOf so every layer
	// (core, kv adapter) agrees on which shard owns a key.
	tbl := testShardedTable(t, 4, 4, BoundDisabled)
	for k := uint64(0); k < 1000; k++ {
		if got, want := tbl.shardOf(k), util.ShardOf(k, 4); got != want {
			t.Fatalf("table shardOf(%d)=%d, util.ShardOf=%d", k, got, want)
		}
	}
}

func TestShardedBatchRoundTrip(t *testing.T) {
	const (
		dim     = 8
		shards  = 4
		workers = 4
		batches = 40
		batch   = 64 // >= batchFanoutMin so the parallel fan-out runs
	)
	// ASP: the vector clock is exercised but never blocks. A finite bound
	// would deadlock this access pattern by design: Zipf batches repeat hot
	// keys, every worker reads before writing, and a read of a record at
	// the bound waits for a Put no blocked worker can issue.
	tbl := testShardedTable(t, dim, shards, BoundASP)

	// Each key's value is derived from the key alone, so concurrent
	// writers of the same Zipf-hot key are idempotent and any read can be
	// verified.
	valAt := func(key uint64, i int) float32 {
		return float32(util.Mix64(key)%1000)/1000 + float32(i)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := tbl.NewSession()
			if err != nil {
				errCh <- err
				return
			}
			defer s.Close()
			zipf := util.NewScrambledZipf(util.NewRNG(uint64(w)+1), 1<<14, 0.99)
			keys := make([]uint64, batch)
			vals := make([]float32, batch*dim)
			got := make([]float32, batch*dim)
			for b := 0; b < batches; b++ {
				for i := range keys {
					keys[i] = zipf.Next()
					for j := 0; j < dim; j++ {
						vals[i*dim+j] = valAt(keys[i], j)
					}
				}
				if err := s.PutBatch(keys, vals); err != nil {
					errCh <- fmt.Errorf("worker %d PutBatch: %w", w, err)
					return
				}
				if err := s.GetBatch(keys, got); err != nil {
					errCh <- fmt.Errorf("worker %d GetBatch: %w", w, err)
					return
				}
				for i, k := range keys {
					for j := 0; j < dim; j++ {
						if got[i*dim+j] != valAt(k, j) {
							errCh <- fmt.Errorf("worker %d key %d dim %d: got %f want %f",
								w, k, j, got[i*dim+j], valAt(k, j))
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestShardedSingleKeyOpsRoundTrip(t *testing.T) {
	const dim = 4
	tbl := testShardedTable(t, dim, 4, BoundDisabled)
	s, err := tbl.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	val := []float32{1, 2, 3, 4}
	got := make([]float32, dim)
	for k := uint64(0); k < 500; k++ {
		if err := s.Put(k, val); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 500; k++ {
		if err := s.Get(k, got); err != nil {
			t.Fatal(err)
		}
		for i := range val {
			if got[i] != val[i] {
				t.Fatalf("key %d: got %v want %v", k, got, val)
			}
		}
		if found, err := s.Peek(k, got); err != nil || !found {
			t.Fatalf("Peek(%d) = %v, %v", k, found, err)
		}
	}
	// Delete must route to the same shard Put used.
	for k := uint64(0); k < 500; k += 7 {
		if err := s.Delete(k); err != nil {
			t.Fatal(err)
		}
		if found, _ := s.Peek(k, got); found {
			t.Fatalf("key %d still present after Delete", k)
		}
	}
}

func TestShardedStatsMerge(t *testing.T) {
	const dim = 4
	tbl := testShardedTable(t, dim, 4, BoundDisabled)
	s, err := tbl.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 2000
	val := []float32{1, 2, 3, 4}
	got := make([]float32, dim)
	for k := uint64(0); k < n; k++ {
		if err := s.Put(k, val); err != nil {
			t.Fatal(err)
		}
		if err := s.Get(k, got); err != nil {
			t.Fatal(err)
		}
	}
	merged := tbl.StoreStats()
	if merged.Puts != n {
		t.Fatalf("merged Puts = %d, want %d", merged.Puts, n)
	}
	if merged.Gets != n {
		t.Fatalf("merged Gets = %d, want %d", merged.Gets, n)
	}
	// The merged view must equal the element-wise sum over shards, and the
	// traffic must actually be spread: no shard may hold everything.
	var sumGets, sumPuts int64
	for _, st := range tbl.Stores() {
		snap := st.Stats()
		sumGets += snap.Gets
		sumPuts += snap.Puts
		if snap.Puts == n {
			t.Fatal("all puts landed on one shard; router is not partitioning")
		}
	}
	if sumGets != merged.Gets || sumPuts != merged.Puts {
		t.Fatalf("per-shard sums (%d gets, %d puts) != merged (%d, %d)",
			sumGets, sumPuts, merged.Gets, merged.Puts)
	}
	if len(tbl.Stores()) != 4 || tbl.Shards() != 4 {
		t.Fatalf("expected 4 shards, got Stores=%d Shards=%d", len(tbl.Stores()), tbl.Shards())
	}
}

func TestShardedCheckpointRecovery(t *testing.T) {
	const dim = 4
	dir := t.TempDir()
	opts := Options{
		Dir: dir, Dim: dim, Shards: 4,
		MemoryBytes: 1 << 20, RecordsPerPage: 64,
	}
	tbl, err := OpenTable(opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := tbl.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	val := []float32{9, 8, 7, 6}
	for k := uint64(0); k < 300; k++ {
		if err := s.Put(k, val); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := tbl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}

	tbl2, err := OpenTable(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tbl2.Close()
	s2, err := tbl2.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := make([]float32, dim)
	for k := uint64(0); k < 300; k++ {
		found, err := s2.Peek(k, got)
		if err != nil || !found {
			t.Fatalf("key %d after recovery: found=%v err=%v", k, found, err)
		}
		for i := range val {
			if got[i] != val[i] {
				t.Fatalf("key %d: got %v want %v", k, got, val)
			}
		}
	}
}

func TestShardCountMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	tbl, err := OpenTable(Options{Dir: dir, Dim: 4, Shards: 4, MemoryBytes: 1 << 20, RecordsPerPage: 64})
	if err != nil {
		t.Fatal(err)
	}
	tbl.Close()
	if _, err := OpenTable(Options{Dir: dir, Dim: 4, Shards: 2, MemoryBytes: 1 << 20, RecordsPerPage: 64}); err == nil {
		t.Fatal("reopening a 4-shard table with 2 shards must fail")
	}
	// The recorded count still opens.
	tbl2, err := OpenTable(Options{Dir: dir, Dim: 4, Shards: 4, MemoryBytes: 1 << 20, RecordsPerPage: 64})
	if err != nil {
		t.Fatal(err)
	}
	tbl2.Close()
}

func TestShardingRefusedOnUnshardedData(t *testing.T) {
	// A pre-sharding table directory (hlog.dat at the root, no SHARDS
	// metadata) must not silently reshard.
	dir := t.TempDir()
	tbl, err := OpenTable(Options{Dir: dir, Dim: 4, MemoryBytes: 1 << 20, RecordsPerPage: 64})
	if err != nil {
		t.Fatal(err)
	}
	tbl.Close()
	// Simulate a pre-sharding directory by dropping the metadata file.
	if err := os.Remove(filepath.Join(dir, util.ShardsMetaFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTable(Options{Dir: dir, Dim: 4, Shards: 4, MemoryBytes: 1 << 20, RecordsPerPage: 64}); err == nil {
		t.Fatal("sharding a directory holding unsharded data must fail")
	}
}

func TestShardedLookaheadRoutes(t *testing.T) {
	const dim = 4
	tbl := testShardedTable(t, dim, 4, 4)
	s, err := tbl.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	val := []float32{1, 1, 1, 1}
	keys := make([]uint64, 0, 4096)
	for k := uint64(0); k < 4096; k++ {
		if err := s.Put(k, val); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	// Lookahead across all shards must neither panic nor error; copies
	// only happen for disk-resident records, so just exercise the path.
	if err := s.Lookahead(keys, DestStorageBuffer, nil); err != nil {
		t.Fatal(err)
	}
}
