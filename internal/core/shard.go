package core

import (
	"fmt"
	"path/filepath"
	"sync"

	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/util"
)

// The shard router hash-partitions the key space across S independent
// FASTER store instances, each with its own hybrid log, hash index, epoch
// domain, and background flusher. Single-key operations route to one shard;
// batch operations group keys by shard and fan the per-shard groups out in
// parallel, so one session's GetBatch/PutBatch overlaps log allocation,
// disk reads, and flush waits across shards instead of serializing them
// behind a single log tail.
//
// Shard placement uses util.ShardOf, which mixes with a constant distinct
// from the in-shard index hash so partitioning and bucket placement stay
// uncorrelated.

// shardDirs returns the per-shard storage directories under dir. A
// single-shard table stores directly in dir, byte-compatible with tables
// created before sharding existed.
func shardDirs(dir string, shards int) []string {
	if shards <= 1 {
		return []string{dir}
	}
	dirs := make([]string, shards)
	for i := range dirs {
		dirs[i] = filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
	}
	return dirs
}

// shardOf returns the shard index owning key.
func (t *Table) shardOf(key uint64) int { return util.ShardOf(key, len(t.stores)) }

// Shards returns the number of hash partitions backing the table.
func (t *Table) Shards() int { return len(t.stores) }

// Stores exposes every shard's engine, in shard order (benchmarks and
// diagnostics).
func (t *Table) Stores() []*faster.Store { return t.stores }

// StoreStats returns the element-wise sum of every shard's operation
// counters: the single-store view callers of Stats expect, regardless of
// the shard count.
func (t *Table) StoreStats() faster.StatsSnapshot {
	var sum faster.StatsSnapshot
	for _, st := range t.stores {
		sum = sum.Add(st.Stats())
	}
	return sum
}

// batchFanoutMin is the batch size below which cross-shard batches run
// serially: goroutine spawn costs more than a handful of routed operations.
const batchFanoutMin = 16

// groupByShard buckets indices of keys by owning shard into the session's
// reusable group buffers. idxs selects a subset of key positions (the
// hot-tier miss set); nil means every key.
func (s *Session) groupByShard(keys []uint64, idxs []int) [][]int {
	n := len(s.t.stores)
	if s.groups == nil {
		s.groups = make([][]int, n)
	}
	for i := range s.groups {
		s.groups[i] = s.groups[i][:0]
	}
	if idxs == nil {
		for i, k := range keys {
			sh := util.ShardOf(k, n)
			s.groups[sh] = append(s.groups[sh], i)
		}
		return s.groups
	}
	for _, i := range idxs {
		sh := util.ShardOf(keys[i], n)
		s.groups[sh] = append(s.groups[sh], i)
	}
	return s.groups
}

// fanOut runs op over each non-empty shard group in its own goroutine and
// returns the first error by shard order. op receives the shard index and
// the indices (into the caller's key slice) that shard owns; within one
// fan-out each shard's faster session and scratch buffer are touched only
// by that shard's goroutine, preserving the session's single-goroutine
// contract per shard.
func (s *Session) fanOut(groups [][]int, op func(shard int, idxs []int) error) error {
	var wg sync.WaitGroup
	if s.errs == nil {
		s.errs = make([]error, len(groups))
	}
	errs := s.errs
	for sh, idxs := range groups {
		errs[sh] = nil
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int, idxs []int) {
			defer wg.Done()
			errs[sh] = op(sh, idxs)
		}(sh, idxs)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
