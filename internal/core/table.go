// Package core implements MLKV proper: the embedding-table abstraction the
// paper's §III exposes to ML frameworks. A Table stores one embedding table
// (fixed dimension) in a FASTER-style hybrid-log store with MLKV's
// bounded-staleness consistency, and adds the Lookahead interface — an
// asynchronous prefetch pool that moves disk-resident embeddings into the
// store's mutable memory buffer (or an application-side cache) ahead of use.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"

	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/util"
)

// Bounds for Options.StalenessBound with paper-aligned names.
const (
	// BoundBSP trains bulk-synchronous: a read waits for every outstanding
	// update on the record.
	BoundBSP = int64(0)
	// BoundASP trains fully asynchronously (INT64_MAX, per §III-C1).
	BoundASP = faster.BoundAsync
	// BoundDisabled turns the vector clock off (plain FASTER semantics).
	BoundDisabled = int64(-1)
)

// Initializer produces the initial embedding for a key seen for the first
// time. dst has the table's dimension; it arrives zeroed.
type Initializer func(key uint64, dst []float32)

// UniformInit returns an Initializer drawing i.i.d. values from
// [-scale, scale), seeded per key so initialization is deterministic.
func UniformInit(scale float32, seed uint64) Initializer {
	return func(key uint64, dst []float32) {
		r := util.NewRNG(util.Mix64(key) ^ seed)
		for i := range dst {
			dst[i] = (r.Float32()*2 - 1) * scale
		}
	}
}

// Options configures a Table.
type Options struct {
	// Dir is the table's storage directory.
	Dir string
	// Dim is the embedding dimension.
	Dim int
	// StalenessBound is the consistency knob (§III-C1): BoundBSP, BoundASP,
	// BoundDisabled, or any positive SSP bound.
	StalenessBound int64
	// MemoryBytes is the in-memory buffer budget (the paper's "buffer
	// size"). Default 64 MiB.
	MemoryBytes int64
	// MutableFraction is the share of the buffer accepting in-place
	// updates. Default 0.5.
	MutableFraction float64
	// ExpectedKeys sizes the hash index.
	ExpectedKeys uint64
	// PrefetchWorkers is the Lookahead pool size. Default 2.
	PrefetchWorkers int
	// PrefetchQueue is the Lookahead queue capacity. Default 4096.
	PrefetchQueue int
	// Init initializes first-touch embeddings. Default: zeros.
	Init Initializer
	// RecordsPerPage overrides the log page granularity (power of two).
	RecordsPerPage int
}

// Table is one embedding table. It is safe for concurrent use through
// per-goroutine Sessions.
type Table struct {
	store *faster.Store
	dir   string
	dim   int
	vs    int
	init  Initializer

	prefetchCh      chan uint64
	prefetchStop    chan struct{}
	prefetchDone    chan struct{}
	prefetchDropped atomic.Int64
	prefetched      atomic.Int64
}

// OpenTable creates or recovers an embedding table.
func OpenTable(opts Options) (*Table, error) {
	if opts.Dim <= 0 {
		return nil, errors.New("core: Dim must be positive")
	}
	if opts.Dir == "" {
		return nil, errors.New("core: Dir is required")
	}
	if opts.MemoryBytes == 0 {
		opts.MemoryBytes = 64 << 20
	}
	if opts.MutableFraction == 0 {
		opts.MutableFraction = 0.5
	}
	if opts.PrefetchWorkers == 0 {
		opts.PrefetchWorkers = 2
	}
	if opts.PrefetchQueue == 0 {
		opts.PrefetchQueue = 4096
	}
	vs := opts.Dim * 4
	rpp := opts.RecordsPerPage
	if rpp == 0 {
		rpp = 1024
	}
	recBytes := int64(vs + 24)
	memPages := int(opts.MemoryBytes / (recBytes * int64(rpp)))
	if memPages < 4 {
		memPages = 4
	}
	mutPages := int(float64(memPages) * opts.MutableFraction)
	if mutPages < 1 {
		mutPages = 1
	}
	if mutPages > memPages-2 {
		mutPages = memPages - 2
	}
	st, err := faster.Open(faster.Config{
		Dir:            opts.Dir,
		ValueSize:      vs,
		RecordsPerPage: rpp,
		MemPages:       memPages,
		MutablePages:   mutPages,
		ExpectedKeys:   opts.ExpectedKeys,
		StalenessBound: opts.StalenessBound,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		store:        st,
		dir:          opts.Dir,
		dim:          opts.Dim,
		vs:           vs,
		init:         opts.Init,
		prefetchCh:   make(chan uint64, opts.PrefetchQueue),
		prefetchStop: make(chan struct{}),
		prefetchDone: make(chan struct{}),
	}
	go t.prefetchPool(opts.PrefetchWorkers)
	return t, nil
}

// Dim returns the embedding dimension.
func (t *Table) Dim() int { return t.dim }

// Store exposes the underlying engine (benchmarks and diagnostics).
func (t *Table) Store() *faster.Store { return t.store }

// SetStalenessBound adjusts the consistency bound at runtime.
func (t *Table) SetStalenessBound(b int64) { t.store.SetStalenessBound(b) }

// Checkpoint makes the table durable (call at a training barrier).
func (t *Table) Checkpoint() error { return t.store.Checkpoint() }

// Close stops the prefetch pool and closes the store.
func (t *Table) Close() error {
	close(t.prefetchStop)
	<-t.prefetchDone
	return t.store.Close()
}

// PrefetchStats reports Lookahead activity: copies made into the memory
// buffer and requests dropped due to a full queue.
func (t *Table) PrefetchStats() (copied, dropped int64) {
	return t.store.Stats().PrefetchCopies, t.prefetchDropped.Load()
}

// prefetchPool runs the Lookahead workers.
func (t *Table) prefetchPool(workers int) {
	defer close(t.prefetchDone)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			s, err := t.store.NewSession()
			if err != nil {
				return
			}
			defer s.Close()
			for {
				select {
				case <-t.prefetchStop:
					return
				case key := <-t.prefetchCh:
					if _, err := s.Prefetch(key); err == nil {
						t.prefetched.Add(1)
					}
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}

// Session is one worker's handle onto the table. Not safe for concurrent
// use; create one per goroutine.
type Session struct {
	t   *Table
	s   *faster.Session
	buf []byte
}

// NewSession registers a session.
func (t *Table) NewSession() (*Session, error) {
	s, err := t.store.NewSession()
	if err != nil {
		return nil, err
	}
	return &Session{t: t, s: s, buf: make([]byte, t.vs)}, nil
}

// Close unregisters the session.
func (s *Session) Close() { s.s.Close() }

// Get reads the embedding for key into dst (len == Dim), initializing it on
// first touch. It participates in the bounded-staleness protocol (§III-C1).
func (s *Session) Get(key uint64, dst []float32) error {
	if len(dst) != s.t.dim {
		return fmt.Errorf("core: dst length %d != dim %d", len(dst), s.t.dim)
	}
	for {
		found, err := s.s.Get(key, s.buf)
		if err != nil {
			return err
		}
		if found {
			bytesToFloats(s.buf, dst)
			return nil
		}
		// First touch: initialize atomically, then retry the Get so the
		// vector-clock accounting matches a normal read.
		if err := s.initKey(key); err != nil {
			return err
		}
	}
}

// initKey writes the initial embedding if key is still absent.
func (s *Session) initKey(key uint64) error {
	return s.s.RMW(key, func(cur []byte, exists bool) {
		if exists || s.t.init == nil {
			return
		}
		tmp := make([]float32, s.t.dim)
		s.t.init(key, tmp)
		floatsToBytes(tmp, cur)
	})
}

// GetBatch reads len(keys) embeddings into dst (len == len(keys)*Dim).
// Duplicate keys each perform their own clocked read; deduplicate in the
// caller if the training step applies one combined update.
func (s *Session) GetBatch(keys []uint64, dst []float32) error {
	if len(dst) != len(keys)*s.t.dim {
		return fmt.Errorf("core: dst length %d != %d keys × dim %d", len(dst), len(keys), s.t.dim)
	}
	for i, k := range keys {
		if err := s.Get(k, dst[i*s.t.dim:(i+1)*s.t.dim]); err != nil {
			return err
		}
	}
	return nil
}

// Peek reads without touching the vector clock (evaluation path).
func (s *Session) Peek(key uint64, dst []float32) (bool, error) {
	if len(dst) != s.t.dim {
		return false, fmt.Errorf("core: dst length %d != dim %d", len(dst), s.t.dim)
	}
	found, err := s.s.Peek(key, s.buf)
	if found {
		bytesToFloats(s.buf, dst)
	}
	return found, err
}

// Put upserts the embedding for key (the backward-propagation write of
// Figure 3, line 17). Puts never wait on the staleness bound.
func (s *Session) Put(key uint64, val []float32) error {
	if len(val) != s.t.dim {
		return fmt.Errorf("core: val length %d != dim %d", len(val), s.t.dim)
	}
	floatsToBytes(val, s.buf)
	return s.s.Put(key, s.buf)
}

// PutBatch upserts len(keys) embeddings from vals (len == len(keys)*Dim).
func (s *Session) PutBatch(keys []uint64, vals []float32) error {
	if len(vals) != len(keys)*s.t.dim {
		return fmt.Errorf("core: vals length %d != %d keys × dim %d", len(vals), len(keys), s.t.dim)
	}
	for i, k := range keys {
		if err := s.Put(k, vals[i*s.t.dim:(i+1)*s.t.dim]); err != nil {
			return err
		}
	}
	return nil
}

// ApplyGradient performs emb ← emb − lr·grad as a single storage-side
// read-modify-write (the Rmw path of Figure 4, step 8).
func (s *Session) ApplyGradient(key uint64, grad []float32, lr float32) error {
	if len(grad) != s.t.dim {
		return fmt.Errorf("core: grad length %d != dim %d", len(grad), s.t.dim)
	}
	return s.s.RMW(key, func(cur []byte, exists bool) {
		for i := 0; i < s.t.dim; i++ {
			v := math.Float32frombits(binary.LittleEndian.Uint32(cur[i*4:]))
			v -= lr * grad[i]
			binary.LittleEndian.PutUint32(cur[i*4:], math.Float32bits(v))
		}
	})
}

// Delete removes key's embedding.
func (s *Session) Delete(key uint64) error { return s.s.Delete(key) }

// LookaheadDest selects where Lookahead materializes embeddings (Fig. 5b).
type LookaheadDest int

const (
	// DestStorageBuffer copies disk-resident records into MLKV's mutable
	// memory buffer (the default, and the paper's headline optimization:
	// it is not limited by the staleness bound).
	DestStorageBuffer LookaheadDest = iota
	// DestAppCache loads values into an application-provided Cache,
	// equivalent to conventional prefetching.
	DestAppCache
)

// Lookahead asynchronously warms the given keys (§III-C2). It never blocks:
// requests beyond the queue capacity are dropped (and counted). With
// DestAppCache, cache must be non-nil.
func (s *Session) Lookahead(keys []uint64, dest LookaheadDest, cache *Cache) error {
	switch dest {
	case DestStorageBuffer:
		for _, k := range keys {
			select {
			case s.t.prefetchCh <- k:
			default:
				s.t.prefetchDropped.Add(1)
			}
		}
		return nil
	case DestAppCache:
		if cache == nil {
			return errors.New("core: DestAppCache requires a cache")
		}
		cache.requestFill(s.t, keys)
		return nil
	}
	return fmt.Errorf("core: unknown Lookahead destination %d", dest)
}

// DiskUsage reports the size of the table's log file in bytes.
func (t *Table) DiskUsage() (int64, error) {
	fi, err := os.Stat(filepath.Join(t.dir, "hlog.dat"))
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func bytesToFloats(src []byte, dst []float32) {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:]))
	}
}

func floatsToBytes(src []float32, dst []byte) {
	for i, v := range src {
		binary.LittleEndian.PutUint32(dst[i*4:], math.Float32bits(v))
	}
}
