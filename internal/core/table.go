// Package core implements MLKV proper: the embedding-table abstraction the
// paper's §III exposes to ML frameworks. A Table stores one embedding table
// (fixed dimension) in a FASTER-style hybrid-log store with MLKV's
// bounded-staleness consistency, and adds the Lookahead interface — an
// asynchronous prefetch pool that moves disk-resident embeddings into the
// store's mutable memory buffer (or an application-side cache) ahead of use.
package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/latency"
	"github.com/llm-db/mlkv-go/internal/tensor"
	"github.com/llm-db/mlkv-go/internal/util"
)

// Bounds for Options.StalenessBound with paper-aligned names.
const (
	// BoundBSP trains bulk-synchronous: a read waits for every outstanding
	// update on the record.
	BoundBSP = int64(0)
	// BoundASP trains fully asynchronously (INT64_MAX, per §III-C1).
	BoundASP = faster.BoundAsync
	// BoundDisabled turns the vector clock off (plain FASTER semantics).
	BoundDisabled = int64(-1)
)

// Initializer produces the initial embedding for a key seen for the first
// time. dst has the table's dimension; it arrives zeroed.
type Initializer func(key uint64, dst []float32)

// UniformInit returns an Initializer drawing i.i.d. values from
// [-scale, scale), seeded per key so initialization is deterministic.
func UniformInit(scale float32, seed uint64) Initializer {
	return func(key uint64, dst []float32) {
		r := util.NewRNG(util.Mix64(key) ^ seed)
		for i := range dst {
			dst[i] = (r.Float32()*2 - 1) * scale
		}
	}
}

// Options configures a Table.
type Options struct {
	// Dir is the table's storage directory.
	Dir string
	// Dim is the embedding dimension.
	Dim int
	// Shards is the number of independent FASTER store instances the key
	// space is hash-partitioned across (each with its own hybrid log, hash
	// index, and epoch domain). Batch operations fan out across shards in
	// parallel. Default 1: a single store, laid out exactly as unsharded
	// tables always were. The memory budget and expected-key sizing are
	// split evenly across shards.
	Shards int
	// StalenessBound is the consistency knob (§III-C1): BoundBSP, BoundASP,
	// BoundDisabled, or any positive SSP bound.
	StalenessBound int64
	// MemoryBytes is the in-memory buffer budget (the paper's "buffer
	// size"). Default 64 MiB.
	MemoryBytes int64
	// MutableFraction is the share of the buffer accepting in-place
	// updates. Default 0.5.
	MutableFraction float64
	// ExpectedKeys sizes the hash index.
	ExpectedKeys uint64
	// PrefetchWorkers is the Lookahead pool size. Default 2.
	PrefetchWorkers int
	// PrefetchQueue is the Lookahead queue capacity. Default 4096.
	PrefetchQueue int
	// CacheEntries attaches a staleness-aware hot tier (a table-owned
	// Cache) of this capacity in front of the read path: Get/GetBatch
	// consult it before the store and serve a hit only within the staleness
	// bound, reads fill it, Put/PutBatch update it in place, and RMW/Delete
	// invalidate. 0 (the default) disables it.
	CacheEntries int
	// Init initializes first-touch embeddings. Default: zeros.
	Init Initializer
	// RecordsPerPage overrides the log page granularity (power of two).
	RecordsPerPage int
	// FlushPace paces each shard's background log flusher: when positive,
	// consecutive flush writes are separated by at least this gap so a
	// flush burst is smeared instead of stalling concurrent reads (see
	// faster.Config.FlushPace). Zero disables pacing.
	FlushPace time.Duration
	// TrackLatency attaches per-op-class latency histograms to the table:
	// session Get/GetBatch/Put/PutBatch/ApplyGradient record their wall
	// time (wait-free, no allocation) and TableStats reports the
	// percentile summaries. Off by default for direct core users; the
	// public-API local driver turns it on so both drivers expose the same
	// latency fields.
	TrackLatency bool
}

// Table is one embedding table, hash-partitioned across one or more FASTER
// stores. It is safe for concurrent use through per-goroutine Sessions.
type Table struct {
	stores []*faster.Store // one per shard, in shard order
	dirs   []string        // per-shard storage directories
	dir    string
	dim    int
	vs     int
	init   Initializer
	cache  *Cache // optional hot tier (Options.CacheEntries)

	// writeClock counts key writes (Put, RMW, Delete, first-touch init)
	// table-wide. Hot-tier entries are stamped with it at fill time; the
	// gap between the current clock and an entry's stamp bounds from above
	// how many versions stale the entry can be, which is what makes a
	// cached read admissible under a finite staleness bound.
	writeClock atomic.Int64

	prefetchCh      chan uint64
	prefetchStop    chan struct{}
	prefetchDone    chan struct{}
	prefetchDropped atomic.Int64
	prefetched      atomic.Int64
	activeSessions  atomic.Int64
	batchGets       atomic.Int64
	batchPuts       atomic.Int64
	lookaheadCalls  atomic.Int64

	// lat is the optional per-op-class histogram set (Options.TrackLatency);
	// nil when tracking is off, so the hot path pays one nil check.
	lat *latency.OpSet
}

// OpenTable creates or recovers an embedding table.
func OpenTable(opts Options) (*Table, error) {
	if opts.Dim <= 0 {
		return nil, errors.New("core: Dim must be positive")
	}
	if opts.Dir == "" {
		return nil, errors.New("core: Dir is required")
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("core: Shards must be non-negative, got %d", opts.Shards)
	}
	if opts.Shards == 0 {
		opts.Shards = 1
	}
	if opts.MemoryBytes == 0 {
		opts.MemoryBytes = 64 << 20
	}
	if opts.MutableFraction == 0 {
		opts.MutableFraction = 0.5
	}
	if opts.PrefetchWorkers == 0 {
		opts.PrefetchWorkers = 2
	}
	if opts.PrefetchQueue == 0 {
		opts.PrefetchQueue = 4096
	}
	vs := opts.Dim * 4
	rpp := opts.RecordsPerPage
	if rpp == 0 {
		rpp = 1024
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	if err := util.ValidateShardMeta(opts.Dir, opts.Shards); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// Split the memory and index budgets evenly: S shards together use the
	// same resources one unsharded store would.
	recBytes := int64(vs + 24)
	memPages := int(opts.MemoryBytes / int64(opts.Shards) / (recBytes * int64(rpp)))
	if memPages < 4 {
		memPages = 4
	}
	mutPages := int(float64(memPages) * opts.MutableFraction)
	if mutPages < 1 {
		mutPages = 1
	}
	if mutPages > memPages-2 {
		mutPages = memPages - 2
	}
	keysPerShard := opts.ExpectedKeys / uint64(opts.Shards)
	if opts.ExpectedKeys > 0 && keysPerShard == 0 {
		keysPerShard = 1
	}
	dirs := shardDirs(opts.Dir, opts.Shards)
	stores := make([]*faster.Store, 0, opts.Shards)
	for _, d := range dirs {
		st, err := faster.Open(faster.Config{
			Dir:            d,
			ValueSize:      vs,
			RecordsPerPage: rpp,
			MemPages:       memPages,
			MutablePages:   mutPages,
			ExpectedKeys:   keysPerShard,
			StalenessBound: opts.StalenessBound,
			FlushPace:      opts.FlushPace,
		})
		if err != nil {
			for _, prev := range stores {
				prev.Close()
			}
			return nil, err
		}
		stores = append(stores, st)
	}
	// Persist the shard count only now that every shard opened, so a
	// failed open never pins the directory to a count holding no data.
	if err := util.WriteShardMeta(opts.Dir, opts.Shards); err != nil {
		for _, prev := range stores {
			prev.Close()
		}
		return nil, err
	}
	t := &Table{
		stores:       stores,
		dirs:         dirs,
		dir:          opts.Dir,
		dim:          opts.Dim,
		vs:           vs,
		init:         opts.Init,
		prefetchCh:   make(chan uint64, opts.PrefetchQueue),
		prefetchStop: make(chan struct{}),
		prefetchDone: make(chan struct{}),
	}
	if opts.CacheEntries > 0 {
		t.cache = NewCache(opts.CacheEntries, opts.Dim)
	}
	if opts.TrackLatency {
		t.lat = new(latency.OpSet)
	}
	go t.prefetchPool(opts.PrefetchWorkers)
	return t, nil
}

// Cache returns the table-owned hot tier, nil unless Options.CacheEntries
// was set.
func (t *Table) Cache() *Cache { return t.cache }

// WriteClock returns the table-wide write counter hot-tier entries are
// stamped with.
func (t *Table) WriteClock() int64 { return t.writeClock.Load() }

// Dim returns the embedding dimension.
func (t *Table) Dim() int { return t.dim }

// Store exposes the first shard's engine. With one shard (the default)
// that is the whole table; with more it is a representative for
// configuration reads such as the staleness bound, which all shards share.
// Use Stores or StoreStats for whole-table views.
func (t *Table) Store() *faster.Store { return t.stores[0] }

// SetStalenessBound adjusts the consistency bound at runtime, on every
// shard.
func (t *Table) SetStalenessBound(b int64) {
	for _, st := range t.stores {
		st.SetStalenessBound(b)
	}
}

// Checkpoint makes the table durable (call at a training barrier). Shards
// checkpoint in parallel; the first error is returned.
func (t *Table) Checkpoint() error {
	if len(t.stores) == 1 {
		return t.stores[0].Checkpoint()
	}
	var wg sync.WaitGroup
	errs := make([]error, len(t.stores))
	for i, st := range t.stores {
		wg.Add(1)
		go func(i int, st *faster.Store) {
			defer wg.Done()
			errs[i] = st.Checkpoint()
		}(i, st)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close stops the prefetch pool and closes every shard, returning the
// first error.
func (t *Table) Close() error {
	close(t.prefetchStop)
	<-t.prefetchDone
	if t.cache != nil {
		t.cache.Close()
	}
	var first error
	for _, st := range t.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PrefetchStats reports Lookahead activity: copies made into the memory
// buffer and requests dropped due to a full queue.
func (t *Table) PrefetchStats() (copied, dropped int64) {
	return t.StoreStats().PrefetchCopies, t.prefetchDropped.Load()
}

// TableStats is the table-level counter snapshot: the engine counters
// summed across shards plus the counters that only exist above the engine
// (batch calls, Lookahead calls, dropped prefetch requests).
type TableStats struct {
	faster.StatsSnapshot
	// BatchGets / BatchPuts count GetBatch / PutBatch calls (each may
	// cover thousands of keys; the per-key counts are in Gets/Puts).
	BatchGets int64
	BatchPuts int64
	// LookaheadCalls counts Lookahead invocations.
	LookaheadCalls int64
	// PrefetchDropped counts Lookahead keys dropped on a full queue.
	PrefetchDropped int64
	// CacheHits / CacheMisses / CacheEvictions are the hot tier's counters
	// (zero without Options.CacheEntries). A miss includes entries present
	// but inadmissible under the staleness bound.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	// Per-op-class latency summaries in nanoseconds (all zero without
	// Options.TrackLatency). LatRMW covers ApplyGradient.
	LatGet      latency.Snapshot
	LatGetBatch latency.Snapshot
	LatPut      latency.Snapshot
	LatPutBatch latency.Snapshot
	LatRMW      latency.Snapshot
}

// TableStats returns the full table-level counter snapshot.
func (t *Table) TableStats() TableStats {
	ts := TableStats{
		StatsSnapshot:   t.StoreStats(),
		BatchGets:       t.batchGets.Load(),
		BatchPuts:       t.batchPuts.Load(),
		LookaheadCalls:  t.lookaheadCalls.Load(),
		PrefetchDropped: t.prefetchDropped.Load(),
	}
	if t.cache != nil {
		cs := t.cache.Stats()
		ts.CacheHits, ts.CacheMisses, ts.CacheEvictions = cs.Hits, cs.Misses, cs.Evictions
	}
	if t.lat != nil {
		ts.LatGet = t.lat[latency.OpGet].Snapshot()
		ts.LatGetBatch = t.lat[latency.OpGetBatch].Snapshot()
		ts.LatPut = t.lat[latency.OpPut].Snapshot()
		ts.LatPutBatch = t.lat[latency.OpPutBatch].Snapshot()
		ts.LatRMW = t.lat[latency.OpRMW].Snapshot()
	}
	return ts
}

// prefetchPool runs the Lookahead workers. Each worker holds a session on
// every shard and routes requests to the key's owner.
func (t *Table) prefetchPool(workers int) {
	defer close(t.prefetchDone)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			sess := make([]*faster.Session, len(t.stores))
			for i, st := range t.stores {
				s, err := st.NewSession()
				if err != nil {
					for _, prev := range sess[:i] {
						prev.Close()
					}
					return
				}
				sess[i] = s
			}
			defer func() {
				for _, s := range sess {
					s.Close()
				}
			}()
			for {
				select {
				case <-t.prefetchStop:
					return
				case key := <-t.prefetchCh:
					if _, err := sess[t.shardOf(key)].Prefetch(key); err == nil {
						t.prefetched.Add(1)
					}
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}

// Session is one worker's handle onto the table: one faster session per
// shard plus a per-shard scratch buffer. Not safe for concurrent use;
// create one per goroutine. (During a batch fan-out the session internally
// drives its shards from parallel goroutines, but each shard's session and
// scratch are touched by exactly one of them.)
type Session struct {
	t       *Table
	ss      []*faster.Session // one per shard, in shard order
	bufs    [][]byte          // per-shard scratch, t.vs bytes each
	groups  [][]int           // reusable per-shard index groups for batches
	errs    []error           // reusable per-shard fan-out results
	missIdx []int             // reusable hot-tier miss indices for batches
	closed  bool
}

// NewSession registers a session on every shard.
func (t *Table) NewSession() (*Session, error) {
	ss := make([]*faster.Session, len(t.stores))
	bufs := make([][]byte, len(t.stores))
	for i, st := range t.stores {
		s, err := st.NewSession()
		if err != nil {
			for _, prev := range ss[:i] {
				prev.Close()
			}
			return nil, err
		}
		ss[i] = s
		bufs[i] = make([]byte, t.vs)
	}
	t.activeSessions.Add(1)
	return &Session{t: t, ss: ss, bufs: bufs}, nil
}

// ActiveSessions reports how many sessions are currently open — the
// lifecycle hook a serving front-end uses to decide when a drain has
// finished and for load diagnostics.
func (t *Table) ActiveSessions() int64 { return t.activeSessions.Load() }

// Close unregisters the session from every shard. Closing twice is safe;
// only the first call releases the shard sessions.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.t.activeSessions.Add(-1)
	for _, fs := range s.ss {
		fs.Close()
	}
}

// Get reads the embedding for key into dst (len == Dim), initializing it on
// first touch. It participates in the bounded-staleness protocol (§III-C1).
func (s *Session) Get(key uint64, dst []float32) error {
	return s.GetCtx(context.Background(), key, dst)
}

// GetCtx is Get with cancellation: a read stalled on the staleness bound
// returns ctx.Err() when ctx ends instead of waiting for the releasing
// write. No token is held after a cancelled read.
func (s *Session) GetCtx(ctx context.Context, key uint64, dst []float32) error {
	if len(dst) != s.t.dim {
		return fmt.Errorf("core: dst length %d != dim %d", len(dst), s.t.dim)
	}
	if s.t.lat != nil {
		// Deferred with the start time evaluated here: records on every
		// return path, including a read stalled on the staleness bound.
		defer s.t.lat.Since(latency.OpGet, time.Now())
	}
	c := s.t.cache
	bound := int64(BoundBSP)
	if c != nil {
		bound = s.t.stores[0].StalenessBound()
	}
	// Under BSP every read must synchronize through the store, so the tier
	// is neither consulted nor filled; writes still keep it coherent.
	if c == nil || bound == BoundBSP {
		return s.getOn(ctx, s.t.shardOf(key), key, dst)
	}
	now := s.t.writeClock.Load()
	if c.Get(key, dst, now, bound) {
		return nil
	}
	if err := s.getOn(ctx, s.t.shardOf(key), key, dst); err != nil {
		return err
	}
	// Fill with the pre-read stamp: writes racing the read only widen the
	// entry's apparent gap, keeping admissibility conservative.
	c.Put(key, dst, now)
	return nil
}

// getOn runs the clocked read against one shard, using that shard's
// session and scratch. It goes straight to the store; hot-tier consult
// and fill belong to the callers (GetCtx, GetBatchCtx).
func (s *Session) getOn(ctx context.Context, sh int, key uint64, dst []float32) error {
	fs, buf := s.ss[sh], s.bufs[sh]
	for {
		found, err := fs.GetCtx(ctx, key, buf)
		if err != nil {
			return err
		}
		if found {
			tensor.BytesToF32s(buf, dst)
			return nil
		}
		// First touch: initialize atomically, then retry the Get so the
		// vector-clock accounting matches a normal read.
		if err := s.initKey(fs, key); err != nil {
			return err
		}
	}
}

// initKey writes the initial embedding if key is still absent.
func (s *Session) initKey(fs *faster.Session, key uint64) error {
	s.t.writeClock.Add(1)
	return fs.RMW(key, func(cur []byte, exists bool) {
		if exists || s.t.init == nil {
			return
		}
		tmp := make([]float32, s.t.dim)
		s.t.init(key, tmp)
		tensor.F32sToBytes(tmp, cur)
	})
}

// GetBatch reads len(keys) embeddings into dst (len == len(keys)*Dim),
// fanning the per-shard key groups out in parallel on a sharded table.
// Duplicate keys each perform their own clocked read; deduplicate in the
// caller if the training step applies one combined update.
//
// Under a blocking staleness bound (BSP or finite SSP) the batch runs
// sequentially in the caller's key order instead of fanning out: a clocked
// Get is a token acquisition that only the matching Put releases, so two
// sessions acquiring different shards in parallel could each hold a key
// the other is blocked on. Callers that may block (the trainers) pass
// unique keys in ascending order, which keeps the cross-session wait
// graph acyclic exactly as it does on the scalar path.
func (s *Session) GetBatch(keys []uint64, dst []float32) error {
	return s.GetBatchCtx(context.Background(), keys, dst)
}

// GetBatchCtx is GetBatch with cancellation, checked on every key's
// clocked read (see GetCtx).
func (s *Session) GetBatchCtx(ctx context.Context, keys []uint64, dst []float32) error {
	if len(dst) != len(keys)*s.t.dim {
		return fmt.Errorf("core: dst length %d != %d keys × dim %d", len(dst), len(keys), s.t.dim)
	}
	if s.t.lat != nil {
		defer s.t.lat.Since(latency.OpGetBatch, time.Now())
	}
	s.t.batchGets.Add(1)
	dim := s.t.dim
	bound := s.t.stores[0].StalenessBound()

	// Hot-tier sweep: admissible keys fill straight from the cache and
	// only the misses go to the store. The miss subset preserves the
	// caller's key order, so the deadlock-freedom argument for blocking
	// bounds (unique ascending keys ⇒ acyclic wait graph) is unaffected.
	c := s.t.cache
	var miss []int // indices still to read; nil = all
	var stamp int64
	if c != nil && bound != BoundBSP {
		stamp = s.t.writeClock.Load()
		s.missIdx = s.missIdx[:0]
		for i, k := range keys {
			if !c.Get(k, dst[i*dim:(i+1)*dim], stamp, bound) {
				s.missIdx = append(s.missIdx, i)
			}
		}
		if len(s.missIdx) == 0 {
			return nil
		}
		miss = s.missIdx
	}
	readOne := func(sh, i int) error {
		seg := dst[i*dim : (i+1)*dim]
		if err := s.getOn(ctx, sh, keys[i], seg); err != nil {
			return err
		}
		if c != nil && bound != BoundBSP {
			c.Put(keys[i], seg, stamp)
		}
		return nil
	}
	n := len(keys)
	if miss != nil {
		n = len(miss)
	}
	if len(s.t.stores) == 1 || n < batchFanoutMin || faster.BlockingBound(bound) {
		if miss == nil {
			for i, k := range keys {
				if err := readOne(s.t.shardOf(k), i); err != nil {
					return err
				}
			}
			return nil
		}
		for _, i := range miss {
			if err := readOne(s.t.shardOf(keys[i]), i); err != nil {
				return err
			}
		}
		return nil
	}
	return s.fanOut(s.groupByShard(keys, miss), func(sh int, idxs []int) error {
		for _, i := range idxs {
			if err := readOne(sh, i); err != nil {
				return err
			}
		}
		return nil
	})
}

// Peek reads without touching the vector clock (evaluation path).
func (s *Session) Peek(key uint64, dst []float32) (bool, error) {
	if len(dst) != s.t.dim {
		return false, fmt.Errorf("core: dst length %d != dim %d", len(dst), s.t.dim)
	}
	sh := s.t.shardOf(key)
	found, err := s.ss[sh].Peek(key, s.bufs[sh])
	if found {
		tensor.BytesToF32s(s.bufs[sh], dst)
	}
	return found, err
}

// Put upserts the embedding for key (the backward-propagation write of
// Figure 3, line 17). Puts never wait on the staleness bound.
func (s *Session) Put(key uint64, val []float32) error {
	if len(val) != s.t.dim {
		return fmt.Errorf("core: val length %d != dim %d", len(val), s.t.dim)
	}
	if s.t.lat != nil {
		defer s.t.lat.Since(latency.OpPut, time.Now())
	}
	return s.putOn(s.t.shardOf(key), key, val)
}

// putOn runs the upsert against one shard, using that shard's session and
// scratch, then advances the write clock and writes the hot tier through:
// the entry it leaves is the value just written, stamped with the write's
// own clock tick, so the tier never lags a Put.
func (s *Session) putOn(sh int, key uint64, val []float32) error {
	tensor.F32sToBytes(val, s.bufs[sh])
	if err := s.ss[sh].Put(key, s.bufs[sh]); err != nil {
		return err
	}
	clock := s.t.writeClock.Add(1)
	if c := s.t.cache; c != nil {
		c.Put(key, val, clock)
	}
	return nil
}

// PutBatch upserts len(keys) embeddings from vals (len == len(keys)*Dim),
// fanning the per-shard key groups out in parallel on a sharded table.
func (s *Session) PutBatch(keys []uint64, vals []float32) error {
	if len(vals) != len(keys)*s.t.dim {
		return fmt.Errorf("core: vals length %d != %d keys × dim %d", len(vals), len(keys), s.t.dim)
	}
	if s.t.lat != nil {
		defer s.t.lat.Since(latency.OpPutBatch, time.Now())
	}
	s.t.batchPuts.Add(1)
	dim := s.t.dim
	if len(s.t.stores) == 1 || len(keys) < batchFanoutMin {
		for i, k := range keys {
			if err := s.putOn(s.t.shardOf(k), k, vals[i*dim:(i+1)*dim]); err != nil {
				return err
			}
		}
		return nil
	}
	return s.fanOut(s.groupByShard(keys, nil), func(sh int, idxs []int) error {
		for _, i := range idxs {
			if err := s.putOn(sh, keys[i], vals[i*dim:(i+1)*dim]); err != nil {
				return err
			}
		}
		return nil
	})
}

// ApplyGradient performs emb ← emb − lr·grad as a single storage-side
// read-modify-write (the Rmw path of Figure 4, step 8).
func (s *Session) ApplyGradient(key uint64, grad []float32, lr float32) error {
	if len(grad) != s.t.dim {
		return fmt.Errorf("core: grad length %d != dim %d", len(grad), s.t.dim)
	}
	if s.t.lat != nil {
		defer s.t.lat.Since(latency.OpRMW, time.Now())
	}
	err := s.ss[s.t.shardOf(key)].RMW(key, func(cur []byte, exists bool) {
		for i := 0; i < s.t.dim; i++ {
			v := math.Float32frombits(binary.LittleEndian.Uint32(cur[i*4:]))
			v -= lr * grad[i]
			binary.LittleEndian.PutUint32(cur[i*4:], math.Float32bits(v))
		}
	})
	if err != nil {
		return err
	}
	// The new value materialized inside storage; drop the tier's copy.
	s.t.writeClock.Add(1)
	if c := s.t.cache; c != nil {
		c.Invalidate(key)
	}
	return nil
}

// Delete removes key's embedding.
func (s *Session) Delete(key uint64) error {
	if err := s.ss[s.t.shardOf(key)].Delete(key); err != nil {
		return err
	}
	s.t.writeClock.Add(1)
	if c := s.t.cache; c != nil {
		c.Invalidate(key)
	}
	return nil
}

// LookaheadDest selects where Lookahead materializes embeddings (Fig. 5b).
type LookaheadDest int

const (
	// DestStorageBuffer copies disk-resident records into MLKV's mutable
	// memory buffer (the default, and the paper's headline optimization:
	// it is not limited by the staleness bound).
	DestStorageBuffer LookaheadDest = iota
	// DestAppCache loads values into an application-provided Cache,
	// equivalent to conventional prefetching.
	DestAppCache
)

// Lookahead asynchronously warms the given keys (§III-C2). It never blocks:
// requests beyond the queue capacity are dropped (and counted). With
// DestAppCache, cache must be non-nil.
func (s *Session) Lookahead(keys []uint64, dest LookaheadDest, cache *Cache) error {
	s.t.lookaheadCalls.Add(1)
	switch dest {
	case DestStorageBuffer:
		for _, k := range keys {
			select {
			case s.t.prefetchCh <- k:
			default:
				s.t.prefetchDropped.Add(1)
			}
		}
		return nil
	case DestAppCache:
		if cache == nil {
			cache = s.t.cache // default to the table-owned hot tier
		}
		if cache == nil {
			return errors.New("core: DestAppCache requires a cache")
		}
		cache.requestFill(s.t, keys)
		return nil
	}
	return fmt.Errorf("core: unknown Lookahead destination %d", dest)
}

// DiskUsage reports the total size of the table's log files in bytes,
// summed across shards.
func (t *Table) DiskUsage() (int64, error) {
	var total int64
	for _, d := range t.dirs {
		fi, err := os.Stat(filepath.Join(d, "hlog.dat"))
		if err != nil {
			return 0, err
		}
		total += fi.Size()
	}
	return total, nil
}
