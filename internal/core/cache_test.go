package core

import (
	"sync"
	"testing"
	"time"
)

// newBareCache builds a cache without touching any table.
func newBareCache(t *testing.T, capacity, dim int) *Cache {
	t.Helper()
	c := NewCache(capacity, dim)
	t.Cleanup(c.Close)
	return c
}

func TestCacheHitMissCounters(t *testing.T) {
	c := newBareCache(t, 64, 2)
	dst := make([]float32, 2)
	if c.Get(1, dst, 0, BoundASP) {
		t.Fatal("empty cache hit")
	}
	c.Put(1, []float32{1, 2}, 0)
	if !c.Get(1, dst, 0, BoundASP) {
		t.Fatal("resident key missed")
	}
	if dst[0] != 1 || dst[1] != 2 {
		t.Fatalf("wrong value: %v", dst)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("counters: hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
}

// TestCacheEvictionOrder pins the LRU policy: with every key landing in
// one shard, a Get refreshes recency, so the untouched key is the one
// evicted when the shard overflows.
func TestCacheEvictionOrder(t *testing.T) {
	// Capacity 16 spreads 1 slot over each of the 16 shards; find three
	// keys sharing a shard by probing insert/evict behavior is fragile, so
	// instead use capacity 32 (2 per shard) and probe with Len.
	c := newBareCache(t, 32, 1)
	// Find three keys mapping to one shard: insert keys until Len stops
	// growing — the key that evicted another shares that shard.
	dst := make([]float32, 1)
	var shardKeys []uint64
	for k := uint64(0); k < 256 && len(shardKeys) < 3; k++ {
		c2 := newBareCache(t, 16, 1) // 1 slot per shard
		c2.Put(100, []float32{100}, 0)
		c2.Put(k, []float32{float32(k)}, 0)
		if k != 100 && c2.Len() == 1 {
			// k evicted 100 (or landed on 100's shard): same shard.
			shardKeys = append(shardKeys, k)
		}
	}
	if len(shardKeys) < 3 {
		t.Fatalf("could not find 3 keys sharing a shard, got %d", len(shardKeys))
	}
	a, b, x := shardKeys[0], shardKeys[1], shardKeys[2]
	c = newBareCache(t, 32, 1) // 2 slots per shard
	c.Put(a, []float32{1}, 0)
	c.Put(b, []float32{2}, 0)
	if !c.Get(a, dst, 0, BoundASP) { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put(x, []float32{3}, 0) // shard full: evicts b
	if c.Get(b, dst, 0, BoundASP) {
		t.Fatal("LRU key b survived eviction")
	}
	if !c.Get(a, dst, 0, BoundASP) || !c.Get(x, dst, 0, BoundASP) {
		t.Fatal("recently used keys evicted")
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("eviction not counted")
	}
}

func TestCacheDimMismatch(t *testing.T) {
	c := newBareCache(t, 64, 4)
	c.Put(1, []float32{1, 2, 3, 4}, 0)
	// Wrong-length destination never hits.
	if c.Get(1, make([]float32, 3), 0, BoundASP) {
		t.Fatal("short dst served")
	}
	if c.Get(1, make([]float32, 5), 0, BoundASP) {
		t.Fatal("long dst served")
	}
	// Wrong-length value is dropped, not truncated.
	c.Put(2, []float32{1, 2}, 0)
	if c.Get(2, make([]float32, 4), 0, BoundASP) {
		t.Fatal("short value admitted")
	}
}

// TestCacheStalenessBound is the contract the hot tier exists for: a
// cached value must NOT be served once the clock gap exceeds the bound.
func TestCacheStalenessBound(t *testing.T) {
	c := newBareCache(t, 64, 1)
	dst := make([]float32, 1)
	c.Put(1, []float32{42}, 10) // filled at clock 10

	// ASP: any gap is admissible.
	if !c.Get(1, dst, 1<<40, BoundASP) {
		t.Fatal("ASP refused a cached value")
	}
	// BSP: nothing is admissible, even at gap zero.
	if c.Get(1, dst, 10, BoundBSP) {
		t.Fatal("BSP served a cached value")
	}
	// SSP(4): gap 4 admissible, gap 5 not.
	if !c.Get(1, dst, 14, 4) {
		t.Fatal("SSP refused a within-bound value (gap 4, bound 4)")
	}
	if c.Get(1, dst, 15, 4) {
		t.Fatal("SSP served a beyond-bound value (gap 5, bound 4)")
	}
	// Disabled clock (-1): cache serves freely.
	if !c.Get(1, dst, 1<<40, BoundDisabled) {
		t.Fatal("disabled bound refused a cached value")
	}
}

// TestCacheStaleFillDoesNotRegress pins the monotonic-stamp rule: a
// read-side fill carrying an older stamp than the resident write-through
// entry must be dropped, or a racing reader could roll the tier back to a
// stale value.
func TestCacheStaleFillDoesNotRegress(t *testing.T) {
	c := newBareCache(t, 64, 1)
	c.Put(7, []float32{2}, 20) // write-through at clock 20
	c.Put(7, []float32{1}, 10) // stale read fill stamped 10: dropped
	dst := make([]float32, 1)
	if !c.Get(7, dst, 20, BoundASP) {
		t.Fatal("entry missing")
	}
	if dst[0] != 2 {
		t.Fatalf("stale fill regressed the entry: got %v, want 2", dst[0])
	}
}

// TestCacheConcurrentFill drives the Lookahead(DestAppCache) fill channel
// from many goroutines while readers consult the cache — the concurrent
// path the fill worker and sharded LRU must survive (run under -race).
func TestCacheConcurrentFill(t *testing.T) {
	tbl := testTable(t, 4, 8)
	s, err := tbl.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	emb := make([]float32, 4)
	for k := uint64(1); k <= 200; k++ {
		for i := range emb {
			emb[i] = float32(k)
		}
		if err := s.Put(k, emb); err != nil {
			t.Fatal(err)
		}
	}
	c := newBareCache(t, 256, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess, err := tbl.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close()
			keys := make([]uint64, 8)
			dst := make([]float32, 4)
			for i := 0; i < 100; i++ {
				for j := range keys {
					keys[j] = uint64((w*100+i+j)%200) + 1
				}
				if err := sess.Lookahead(keys, DestAppCache, c); err != nil {
					t.Error(err)
					return
				}
				for _, k := range keys {
					if c.Get(k, dst, tbl.WriteClock(), BoundASP) && dst[0] != float32(k) {
						t.Errorf("key %d served value %v", k, dst[0])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// The fill worker drains asynchronously; eventually something lands.
	deadline := time.Now().Add(5 * time.Second)
	for c.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.Len() == 0 {
		t.Fatal("no fills landed")
	}
}

// TestTableHotTier exercises the wired read path: reads fill the tier,
// Puts write through, RMW and Delete invalidate, and under SSP the tier
// stops serving once enough writes land.
func TestTableHotTier(t *testing.T) {
	tbl, err := OpenTable(Options{
		Dir: t.TempDir(), Dim: 2, StalenessBound: 4, // SSP(4)
		MemoryBytes: 1 << 20, CacheEntries: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	s, err := tbl.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	put := func(k uint64, v float32) {
		if err := s.Put(k, []float32{v, v}); err != nil {
			t.Fatal(err)
		}
	}
	get := func(k uint64) float32 {
		dst := make([]float32, 2)
		if err := s.Get(k, dst); err != nil {
			t.Fatal(err)
		}
		// Balance the clocked read so SSP never blocks this single session.
		if err := s.Put(k, dst); err != nil {
			t.Fatal(err)
		}
		return dst[0]
	}

	put(1, 10)
	if got := get(1); got != 10 {
		t.Fatalf("got %v, want 10 (write-through)", got)
	}
	hitsAfterFirst := tbl.TableStats().CacheHits
	if hitsAfterFirst == 0 {
		t.Fatal("write-through entry not served")
	}

	// A second session writes the key through the store; the tier entry
	// refreshes via write-through, so reads still see the newest value.
	s2, err := tbl.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Put(1, []float32{20, 20}); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if got := get(1); got != 20 {
		t.Fatalf("got %v, want 20 after foreign Put", got)
	}

	// RMW invalidates: the next read must come from the store.
	missesBefore := tbl.TableStats().CacheMisses
	if err := s.ApplyGradient(1, []float32{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	if got := get(1); got != 19 {
		t.Fatalf("got %v, want 19 after RMW", got)
	}
	if tbl.TableStats().CacheMisses == missesBefore {
		t.Fatal("RMW did not invalidate the tier entry")
	}

	// SSP gap: fill key 2's entry, then land > bound writes elsewhere; the
	// entry must stop being admissible (the store, not the tier, serves).
	put(2, 5)
	_ = get(2) // ensure resident with a recent stamp
	for i := 0; i < 10; i++ {
		put(3, float32(i))
	}
	hitsBefore := tbl.TableStats().CacheHits
	if got := get(2); got != 5 {
		t.Fatalf("got %v, want 5", got)
	}
	// The read must have been a tier miss (gap 10+ > bound 4): hits may
	// only have grown by the write-through refresh that followed, so check
	// misses moved instead.
	_ = hitsBefore
	if tbl.TableStats().CacheMisses == missesBefore {
		t.Fatal("beyond-bound entry was served from the tier")
	}

	// Delete invalidates.
	if err := s.Delete(2); err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, 2)
	if found, err := s.Peek(2, dst); err != nil || found {
		t.Fatalf("peek after delete: found=%v err=%v", found, err)
	}
}

// TestTableHotTierBSPNeverServes pins the BSP rule end to end: with bound
// 0 every read synchronizes through the store and the tier records no
// hits at all.
func TestTableHotTierBSPNeverServes(t *testing.T) {
	tbl, err := OpenTable(Options{
		Dir: t.TempDir(), Dim: 2, StalenessBound: BoundBSP,
		MemoryBytes: 1 << 20, CacheEntries: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()
	s, err := tbl.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	emb := []float32{1, 1}
	dst := make([]float32, 2)
	for k := uint64(1); k <= 50; k++ {
		if err := s.Put(k, emb); err != nil {
			t.Fatal(err)
		}
		if err := s.Get(k, dst); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(k, dst); err != nil { // balance the token
			t.Fatal(err)
		}
	}
	ts := tbl.TableStats()
	if ts.CacheHits != 0 {
		t.Fatalf("BSP served %d reads from the tier", ts.CacheHits)
	}
}
