package core

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Cache is an application-side embedding cache — the other Lookahead
// destination in Figure 5(b). Frameworks with their own caching policies
// (e.g. PERSIA's LRU, BETA's partition buffer) prefetch into it and consult
// it before calling Get, trading staleness-tracking for zero storage calls.
//
// It is a sharded LRU keyed by embedding ID.
type Cache struct {
	shards []cacheShard
	mask   uint64
	dim    int

	hits   atomic.Int64
	misses atomic.Int64

	fillCh   chan fillReq
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

type cacheShard struct {
	mu    sync.Mutex
	cap   int
	items map[uint64]*list.Element
	order *list.List
}

type cacheEntry struct {
	key uint64
	val []float32
}

type fillReq struct {
	t    *Table
	keys []uint64
}

// NewCache builds a cache holding capacity embeddings of dimension dim,
// spread over 16 shards, with a background fill worker serving
// Lookahead(DestAppCache) requests.
func NewCache(capacity, dim int) *Cache {
	const nShards = 16
	perShard := capacity / nShards
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{
		shards: make([]cacheShard, nShards),
		mask:   nShards - 1,
		dim:    dim,
		fillCh: make(chan fillReq, 1024),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for i := range c.shards {
		c.shards[i] = cacheShard{cap: perShard, items: make(map[uint64]*list.Element), order: list.New()}
	}
	go c.fillLoop()
	return c
}

// Close stops the fill worker.
func (c *Cache) Close() {
	c.stopOnce.Do(func() {
		close(c.stop)
		<-c.done
	})
}

// Get returns the cached embedding, copying into dst.
func (c *Cache) Get(key uint64, dst []float32) bool {
	sh := &c.shards[key&c.mask]
	sh.mu.Lock()
	el, ok := sh.items[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return false
	}
	sh.order.MoveToFront(el)
	copy(dst, el.Value.(*cacheEntry).val)
	sh.mu.Unlock()
	c.hits.Add(1)
	return true
}

// Put inserts or refreshes an embedding.
func (c *Cache) Put(key uint64, val []float32) {
	sh := &c.shards[key&c.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[key]; ok {
		copy(el.Value.(*cacheEntry).val, val)
		sh.order.MoveToFront(el)
		return
	}
	e := &cacheEntry{key: key, val: append([]float32(nil), val...)}
	sh.items[key] = sh.order.PushFront(e)
	for sh.order.Len() > sh.cap {
		tail := sh.order.Back()
		sh.order.Remove(tail)
		delete(sh.items, tail.Value.(*cacheEntry).key)
	}
}

// Invalidate drops a key (call after updating its embedding in the store).
func (c *Cache) Invalidate(key uint64) {
	sh := &c.shards[key&c.mask]
	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		sh.order.Remove(el)
		delete(sh.items, key)
	}
	sh.mu.Unlock()
}

// Stats reports hit/miss counters.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of cached embeddings.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].order.Len()
		c.shards[i].mu.Unlock()
	}
	return n
}

// requestFill enqueues an asynchronous cache fill (Lookahead/DestAppCache).
func (c *Cache) requestFill(t *Table, keys []uint64) {
	cp := append([]uint64(nil), keys...)
	select {
	case c.fillCh <- fillReq{t: t, keys: cp}:
	default: // queue full: drop, prefetching is best-effort
	}
}

func (c *Cache) fillLoop() {
	defer close(c.done)
	var sess *Session
	var sessTable *Table
	defer func() {
		if sess != nil {
			sess.Close()
		}
	}()
	dst := make([]float32, c.dim)
	for {
		select {
		case <-c.stop:
			return
		case req := <-c.fillCh:
			if sessTable != req.t {
				if sess != nil {
					sess.Close()
				}
				var err error
				sess, err = req.t.NewSession()
				if err != nil {
					continue
				}
				sessTable = req.t
			}
			for _, k := range req.keys {
				// Peek: cache fills must not perturb the vector clock.
				if found, err := sess.Peek(k, dst); err == nil && found {
					c.Put(k, dst)
				}
			}
		}
	}
}
