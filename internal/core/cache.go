package core

import (
	"sync"

	"github.com/llm-db/mlkv-go/internal/hotcache"
)

// Cache is the application-side embedding hot tier — the other Lookahead
// destination in Figure 5(b), and since the hot-tier wiring the cache the
// production read path consults before touching the store. It is a
// staleness-aware sharded LRU keyed by embedding ID: every entry records
// the table's write clock at fill time, and Get serves a hit only when
// the entry is admissible under the caller's staleness bound (always
// under ASP, never under BSP, within `bound` table writes under SSP — see
// hotcache.Admissible). Frameworks with their own caching policies (e.g.
// PERSIA's LRU, BETA's partition buffer) prefetch into it via
// Lookahead(DestAppCache) and a background fill worker.
type Cache struct {
	hc  *hotcache.Cache[float32]
	dim int

	fillCh   chan fillReq
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

type fillReq struct {
	t    *Table
	keys []uint64
}

// NewCache builds a cache holding capacity embeddings of dimension dim,
// spread over 16 shards, with a background fill worker serving
// Lookahead(DestAppCache) requests.
func NewCache(capacity, dim int) *Cache {
	c := &Cache{
		hc:     hotcache.New[float32](capacity, dim),
		dim:    dim,
		fillCh: make(chan fillReq, 1024),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go c.fillLoop()
	return c
}

// Close stops the fill worker.
func (c *Cache) Close() {
	c.stopOnce.Do(func() {
		close(c.stop)
		<-c.done
	})
}

// Get copies the cached embedding into dst if the entry is admissible
// under bound given the table's current write clock now: its fill stamp
// may trail now by at most the bound (hotcache.Admissible). A dst whose
// length differs from the cache dimension never hits.
func (c *Cache) Get(key uint64, dst []float32, now, bound int64) bool {
	return c.hc.Get(key, dst, now, bound)
}

// Put inserts or refreshes an embedding, stamped with the write-clock
// value clock. A refresh carrying an older stamp than the resident entry
// is dropped (a stale read-side fill must not regress a fresher
// write-through). Values whose length differs from the cache dimension
// are ignored.
func (c *Cache) Put(key uint64, val []float32, clock int64) {
	c.hc.Put(key, val, clock)
}

// Invalidate drops a key (call after updating its embedding in the store
// without the new value at hand: RMW, Delete).
func (c *Cache) Invalidate(key uint64) { c.hc.Invalidate(key) }

// Stats reports hit/miss/eviction counters.
func (c *Cache) Stats() hotcache.Stats { return c.hc.Stats() }

// Len returns the number of cached embeddings.
func (c *Cache) Len() int { return c.hc.Len() }

// requestFill enqueues an asynchronous cache fill (Lookahead/DestAppCache).
func (c *Cache) requestFill(t *Table, keys []uint64) {
	cp := append([]uint64(nil), keys...)
	select {
	case c.fillCh <- fillReq{t: t, keys: cp}:
	default: // queue full: drop, prefetching is best-effort
	}
}

func (c *Cache) fillLoop() {
	defer close(c.done)
	var sess *Session
	var sessTable *Table
	defer func() {
		if sess != nil {
			sess.Close()
		}
	}()
	dst := make([]float32, c.dim)
	for {
		select {
		case <-c.stop:
			return
		case req := <-c.fillCh:
			if sessTable != req.t {
				if sess != nil {
					sess.Close()
				}
				var err error
				sess, err = req.t.NewSession()
				if err != nil {
					continue
				}
				sessTable = req.t
			}
			for _, k := range req.keys {
				// Stamp with the clock read before the Peek: any write that
				// lands during the read only widens the entry's apparent
				// gap, so admissibility stays conservative. Peek: cache
				// fills must not perturb the vector clock.
				clock := req.t.WriteClock()
				if found, err := sess.Peek(k, dst); err == nil && found {
					c.Put(k, dst, clock)
				}
			}
		}
	}
}
