package kv

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/util"
)

// ShardedConfig sizes a hash-partitioned FASTER store set. The memory and
// expected-key budgets are totals: S shards together use the same
// resources one unsharded store would, so 1-vs-N comparisons are fair.
type ShardedConfig struct {
	// Dir is the root directory. One shard stores directly in it; more
	// get shard-NNN subdirectories. The shard count is recorded in a
	// metadata file and a mismatched reopen is refused.
	Dir string
	// Shards is the partition count (0 and 1 both mean unsharded).
	Shards int
	// ValueSize is the fixed value payload in bytes.
	ValueSize int
	// RecordsPerPage is the log page granularity (default 256).
	RecordsPerPage int
	// MemoryBytes is the total in-memory buffer budget across all shards.
	MemoryBytes int64
	// MutableFraction is the share of each shard's pages accepting
	// in-place updates (default 0.5).
	MutableFraction float64
	// ExpectedKeys sizes the hash indexes (total across all shards).
	ExpectedKeys uint64
	// StalenessBound configures the vector clock (see faster.Config).
	StalenessBound int64
	// SyncWrites fsyncs every flushed log page.
	SyncWrites bool
	// FlushPace paces each shard's background flusher (see
	// faster.Config.FlushPace); zero disables pacing.
	FlushPace time.Duration
}

// OpenFasterShards opens cfg.Shards FASTER stores under cfg.Dir and wraps
// them as one Store routing by util.ShardOf — the one place the
// benchmarks and CLIs derive a sharded store set from a total budget, so
// the split policy and the shard-count guard cannot drift between them.
func OpenFasterShards(cfg ShardedConfig, name string) (Store, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.RecordsPerPage == 0 {
		cfg.RecordsPerPage = 256
	}
	if cfg.MutableFraction == 0 {
		cfg.MutableFraction = 0.5
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	if err := util.ValidateShardMeta(cfg.Dir, cfg.Shards); err != nil {
		return nil, fmt.Errorf("kv: %w", err)
	}
	recBytes := int64(cfg.ValueSize + 24)
	memPages := int(cfg.MemoryBytes / int64(cfg.Shards) / (recBytes * int64(cfg.RecordsPerPage)))
	if memPages < 4 {
		memPages = 4
	}
	mutPages := int(float64(memPages) * cfg.MutableFraction)
	if mutPages < 1 {
		mutPages = 1
	}
	if mutPages > memPages-2 {
		mutPages = memPages - 2
	}
	stores := make([]*faster.Store, cfg.Shards)
	for i := range stores {
		d := cfg.Dir
		if cfg.Shards > 1 {
			d = filepath.Join(cfg.Dir, fmt.Sprintf("shard-%03d", i))
		}
		st, err := faster.Open(faster.Config{
			Dir:            d,
			ValueSize:      cfg.ValueSize,
			RecordsPerPage: cfg.RecordsPerPage,
			MemPages:       memPages,
			MutablePages:   mutPages,
			ExpectedKeys:   cfg.ExpectedKeys / uint64(cfg.Shards),
			StalenessBound: cfg.StalenessBound,
			SyncWrites:     cfg.SyncWrites,
			FlushPace:      cfg.FlushPace,
		})
		if err != nil {
			for _, prev := range stores[:i] {
				prev.Close()
			}
			return nil, err
		}
		stores[i] = st
	}
	// Persist the count only after every shard opened, so a failed open
	// never pins the directory.
	if err := util.WriteShardMeta(cfg.Dir, cfg.Shards); err != nil {
		for _, st := range stores {
			st.Close()
		}
		return nil, err
	}
	return WrapFasterShards(stores, name), nil
}
