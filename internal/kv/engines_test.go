package kv

import (
	"bytes"
	"testing"

	"github.com/llm-db/mlkv-go/internal/util"
)

// openEngineStore opens a sharded clock-free engine store through the same
// entry point the driver and server use.
func openEngineStore(t *testing.T, engine string, shards, vs int) Store {
	t.Helper()
	st, err := OpenEngine(engine, ShardedConfig{
		Dir:            t.TempDir(),
		Shards:         shards,
		ValueSize:      vs,
		StalenessBound: -1, // clock-free engines take no blocking bound
	}, engine)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := st.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return st
}

// TestEngineBatchFanOutBounded is the batching regression test: a 256-key
// GetBatch against a 4-shard engine store must reach the engine as at most
// one native batch call per shard — not 256 scalar reads dressed up as a
// batch. Same for PutBatch. The BatchCalls counters sit exactly at the
// lifted-engine boundary, so any regression to per-key fan-out moves them
// by two orders of magnitude.
func TestEngineBatchFanOutBounded(t *testing.T) {
	const (
		shards = 4
		vs     = 16
		n      = 256
	)
	for _, engine := range []string{EngineLSM, EngineBPTree} {
		t.Run(engine, func(t *testing.T) {
			st := openEngineStore(t, engine, shards, vs)
			rep, ok := st.(BatchCallReporter)
			if !ok {
				t.Fatalf("%T does not report engine-level batch calls", st)
			}
			s, err := st.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			r := util.NewRNG(0xfa0)
			keys := make([]uint64, n)
			vals := make([]byte, n*vs)
			found := make([]bool, n)
			for i := range keys {
				keys[i] = r.Uint64() | 1 // spread across all shards
				vals[i*vs] = byte(i)
			}

			g0, p0 := rep.BatchCalls()
			if err := SessionPutBatch(s, vs, keys, vals); err != nil {
				t.Fatal(err)
			}
			g1, p1 := rep.BatchCalls()
			if dp := p1 - p0; dp < 1 || dp > shards {
				t.Fatalf("256-key PutBatch issued %d engine batch calls, want 1..%d", dp, shards)
			}
			if g1 != g0 {
				t.Fatalf("PutBatch issued %d engine batch reads", g1-g0)
			}

			read := make([]byte, n*vs)
			if err := SessionGetBatch(s, vs, keys, read, found); err != nil {
				t.Fatal(err)
			}
			g2, p2 := rep.BatchCalls()
			if dg := g2 - g1; dg < 1 || dg > shards {
				t.Fatalf("256-key GetBatch issued %d engine batch calls, want 1..%d", dg, shards)
			}
			if p2 != p1 {
				t.Fatalf("GetBatch issued %d engine batch writes", p2-p1)
			}

			// The fan-out must still be correct, not merely cheap.
			for i := range keys {
				if !found[i] {
					t.Fatalf("key %d missing after PutBatch", keys[i])
				}
				if !bytes.Equal(read[i*vs:(i+1)*vs], vals[i*vs:(i+1)*vs]) {
					t.Fatalf("key %d value mismatch", keys[i])
				}
			}
		})
	}
}
