package kv

import (
	"context"
	"errors"
	"sync/atomic"

	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/hotcache"
)

// CacheStatsReporter is an optional Store extension exposing a hot tier's
// counters (the serving layer folds them into per-model STATS).
type CacheStatsReporter interface {
	CacheStats() hotcache.Stats
}

// WrapCached layers a staleness-aware hot tier over a byte-level store:
// the shared per-model cache mlkv-server enables with -cache, and the
// client-side tier mlkv-ycsb uses. All sessions of the wrapped store
// share one tier and one write clock; every write through the wrapper
// advances the clock and updates (Put) or invalidates (Delete) the tier,
// so an entry is never older than its stamp claims. Reads consult the
// tier first and serve a hit only when the entry is admissible under the
// store's current staleness bound (see hotcache.Admissible); for engines
// without a bound the tier is coherent as long as every writer goes
// through this wrapper.
//
// Peek and Prefetch/Lookahead bypass the tier: evaluation reads stay
// exact and prefetch targets the engine's own memory.
func WrapCached(inner Store, entries int) Store {
	return &cachedStore{
		inner: inner,
		cache: hotcache.New[byte](entries, inner.ValueSize()),
	}
}

type cachedStore struct {
	inner Store
	cache *hotcache.Cache[byte]
	clock atomic.Int64
}

func (w *cachedStore) ValueSize() int { return w.inner.ValueSize() }
func (w *cachedStore) Name() string   { return w.inner.Name() }
func (w *cachedStore) Close() error   { return w.inner.Close() }

func (w *cachedStore) CacheStats() hotcache.Stats { return w.cache.Stats() }

// bound reports the inner store's staleness bound, -1 (no clock) when the
// engine has none.
func (w *cachedStore) bound() int64 {
	if b, ok := w.inner.(interface{ StalenessBound() int64 }); ok {
		return b.StalenessBound()
	}
	return -1
}

// Optional Store extensions forward to the engine.

func (w *cachedStore) Checkpoint() error {
	if cp, ok := w.inner.(Checkpointer); ok {
		return cp.Checkpoint()
	}
	return errors.New("kv: engine cannot checkpoint")
}

func (w *cachedStore) Stats() faster.StatsSnapshot {
	if sr, ok := w.inner.(StatsReporter); ok {
		return sr.Stats()
	}
	return faster.StatsSnapshot{}
}

func (w *cachedStore) Shards() int {
	if sh, ok := w.inner.(Sharded); ok {
		return sh.Shards()
	}
	return 1
}

func (w *cachedStore) StalenessBound() int64 { return w.bound() }

func (w *cachedStore) SetStalenessBound(b int64) {
	if bd, ok := w.inner.(Bounded); ok {
		bd.SetStalenessBound(b)
	}
}

func (w *cachedStore) NewSession() (Session, error) {
	s, err := w.inner.NewSession()
	if err != nil {
		return nil, err
	}
	return &cachedSession{w: w, inner: s, vs: w.inner.ValueSize()}, nil
}

// cachedSession is one worker's handle through the tier. Like every
// kv.Session it is single-goroutine; the shared tier and clock are safe
// for concurrent sessions.
type cachedSession struct {
	w     *cachedStore
	inner Session
	vs    int

	// Reusable batch scratch: hot-tier miss positions, their compacted
	// keys, and the fetch staging the engine reads into.
	missIdx    []int
	fetchKeys  []uint64
	fetchVals  []byte
	fetchFound []bool
}

func (s *cachedSession) Close()                            { s.inner.Close() }
func (s *cachedSession) Prefetch(key uint64) (bool, error) { return s.inner.Prefetch(key) }

// Lookahead forwards to the engine's batched prefetch when it has one.
func (s *cachedSession) Lookahead(keys []uint64) (int, error) {
	return SessionLookahead(s.inner, keys)
}

// Peek bypasses the tier: evaluation reads stay exact.
func (s *cachedSession) Peek(key uint64, dst []byte) (bool, error) {
	return SessionPeek(s.inner, key, dst)
}

func (s *cachedSession) Get(key uint64, dst []byte) (bool, error) {
	return s.GetCtx(context.Background(), key, dst)
}

// GetCtx implements CtxSession with the tier in front: an admissible
// entry is served without touching the engine; a miss reads the engine
// and fills the tier with a conservative pre-read stamp.
func (s *cachedSession) GetCtx(ctx context.Context, key uint64, dst []byte) (bool, error) {
	bound := s.w.bound()
	consult := bound != 0
	var now int64
	if consult {
		now = s.w.clock.Load()
		if s.w.cache.Get(key, dst, now, bound) {
			return true, nil
		}
	}
	found, err := SessionGetCtx(ctx, s.inner, key, dst)
	if err != nil || !found {
		return found, err
	}
	if consult {
		s.w.cache.Put(key, dst, now)
	}
	return true, nil
}

func (s *cachedSession) Put(key uint64, val []byte) error {
	if err := s.inner.Put(key, val); err != nil {
		return err
	}
	s.w.cache.Put(key, val, s.w.clock.Add(1))
	return nil
}

func (s *cachedSession) Delete(key uint64) error {
	if err := s.inner.Delete(key); err != nil {
		return err
	}
	s.w.clock.Add(1)
	s.w.cache.Invalidate(key)
	return nil
}

func (s *cachedSession) GetBatch(keys []uint64, vals []byte, found []bool) error {
	return s.GetBatchCtx(context.Background(), keys, vals, found)
}

// GetBatchCtx implements CtxBatchSession: a tier sweep first, then one
// engine batch over the compacted miss set. The miss subset preserves the
// caller's key order, so the ordering rule blocking bounds rely on is
// unaffected.
func (s *cachedSession) GetBatchCtx(ctx context.Context, keys []uint64, vals []byte, found []bool) error {
	bound := s.w.bound()
	if bound == 0 || len(keys) == 0 {
		return SessionGetBatchCtx(ctx, s.inner, s.vs, keys, vals, found)
	}
	now := s.w.clock.Load()
	s.missIdx = s.missIdx[:0]
	s.fetchKeys = s.fetchKeys[:0]
	for i, k := range keys {
		if s.w.cache.Get(k, vals[i*s.vs:(i+1)*s.vs], now, bound) {
			found[i] = true
			continue
		}
		s.missIdx = append(s.missIdx, i)
		s.fetchKeys = append(s.fetchKeys, k)
	}
	n := len(s.fetchKeys)
	if n == 0 {
		return nil
	}
	if cap(s.fetchVals) < n*s.vs {
		s.fetchVals = make([]byte, n*s.vs)
	}
	if cap(s.fetchFound) < n {
		s.fetchFound = make([]bool, n)
	}
	fv, ff := s.fetchVals[:n*s.vs], s.fetchFound[:n]
	if err := SessionGetBatchCtx(ctx, s.inner, s.vs, s.fetchKeys, fv, ff); err != nil {
		return err
	}
	for j, i := range s.missIdx {
		slot := vals[i*s.vs : (i+1)*s.vs]
		copy(slot, fv[j*s.vs:(j+1)*s.vs])
		found[i] = ff[j]
		if ff[j] {
			s.w.cache.Put(keys[i], slot, now)
		}
	}
	return nil
}

// PutBatch implements BatchSession: the engine write first, then a
// write-through of every key stamped with the batch's clock advance.
func (s *cachedSession) PutBatch(keys []uint64, vals []byte) error {
	if err := SessionPutBatch(s.inner, s.vs, keys, vals); err != nil {
		return err
	}
	clock := s.w.clock.Add(int64(len(keys)))
	for i, k := range keys {
		s.w.cache.Put(k, vals[i*s.vs:(i+1)*s.vs], clock)
	}
	return nil
}
