package kv

import (
	"bytes"
	"testing"

	"github.com/llm-db/mlkv-go/internal/bptree"
	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/lsm"
)

// TestAdaptersBehaveUniformly drives every engine through the shared
// interface with the same operation sequence.
func TestAdaptersBehaveUniformly(t *testing.T) {
	const vs = 16
	stores := map[string]Store{}

	fst, err := faster.Open(faster.Config{
		Dir: t.TempDir(), ValueSize: vs, RecordsPerPage: 64,
		MemPages: 8, MutablePages: 3, StalenessBound: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	stores["faster"] = WrapFaster(fst, "faster")

	ls, err := lsm.Open(lsm.Config{Dir: t.TempDir(), ValueSize: vs, MemtableBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	stores["lsm"] = WrapLSM(ls)

	bt, err := bptree.Open(bptree.Config{Dir: t.TempDir(), ValueSize: vs, PageSize: 512, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	stores["bptree"] = WrapBPTree(bt)

	shardSet := make([]*faster.Store, 4)
	for i := range shardSet {
		st, err := faster.Open(faster.Config{
			Dir: t.TempDir(), ValueSize: vs, RecordsPerPage: 64,
			MemPages: 8, MutablePages: 3, StalenessBound: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		shardSet[i] = st
	}
	stores["faster-sharded"] = WrapFasterShards(shardSet, "faster-sharded")

	for name, s := range stores {
		name, s := name, s
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if s.ValueSize() != vs {
				t.Fatalf("ValueSize = %d", s.ValueSize())
			}
			if s.Name() == "" {
				t.Fatal("empty Name")
			}
			se, err := s.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer se.Close()
			val := bytes.Repeat([]byte{7}, vs)
			for k := uint64(1); k <= 200; k++ {
				if err := se.Put(k, val); err != nil {
					t.Fatal(err)
				}
			}
			dst := make([]byte, vs)
			for k := uint64(1); k <= 200; k++ {
				found, err := se.Get(k, dst)
				if err != nil || !found || !bytes.Equal(dst, val) {
					t.Fatalf("key %d: found=%v err=%v", k, found, err)
				}
			}
			if err := se.Delete(5); err != nil {
				t.Fatal(err)
			}
			if found, _ := se.Get(5, dst); found {
				t.Fatal("deleted key visible")
			}
			if _, err := se.Prefetch(6); err != nil {
				t.Fatal(err)
			}
			if found, _ := se.Get(9999, dst); found {
				t.Fatal("phantom key")
			}
		})
	}
}
