// Package kv defines the backend-neutral key-value interface that the
// training pipelines and benchmarks run against, plus adapters for each
// engine (MLKV/FASTER hybrid-log, LSM-tree, disk B+tree, sharded memory).
// It mirrors how the paper integrates PERSIA/DGL/DGL-KE with FASTER,
// RocksDB, and WiredTiger behind one embedding-access layer.
package kv

import (
	"context"
	"fmt"

	"github.com/llm-db/mlkv-go/internal/faster"
)

// Store is a disk-backed key-value store with fixed-size values.
type Store interface {
	// NewSession returns a handle for one worker goroutine. Sessions are
	// not safe for concurrent use; the Store itself is.
	NewSession() (Session, error)
	// ValueSize is the fixed value payload in bytes.
	ValueSize() int
	// Name identifies the engine in benchmark output.
	Name() string
	// Close releases resources.
	Close() error
}

// Session is one worker's operation handle.
type Session interface {
	// Get reads key's value into dst (len must equal ValueSize).
	Get(key uint64, dst []byte) (bool, error)
	// Put upserts key's value.
	Put(key uint64, val []byte) error
	// Delete removes key.
	Delete(key uint64) error
	// Prefetch hints that key will be read soon. Engines without native
	// prefetch return false immediately.
	Prefetch(key uint64) (bool, error)
	// Close releases the session.
	Close()
}

// BatchSession is an optional Session extension for engines with a native
// batch path (the sharded adapter fans a batch out across shards in
// parallel; the network client ships it as one frame). Callers should go
// through SessionGetBatch/SessionPutBatch, which fall back to per-key
// loops on plain sessions.
type BatchSession interface {
	Session
	// GetBatch reads len(keys) values into vals (len(keys)×ValueSize),
	// recording presence in found and zeroing the value slot of any
	// missing key.
	GetBatch(keys []uint64, vals []byte, found []bool) error
	// PutBatch upserts len(keys) values from vals.
	PutBatch(keys []uint64, vals []byte) error
}

// PeekSession is an optional Session extension for engines whose reads
// normally have consistency effects (MLKV's clocked Gets). Peek reads
// without them: no vector-clock participation, no copy toward the mutable
// tail. Evaluation traffic goes through SessionPeek so scoring a model
// never acquires clock tokens that would stall training reads.
type PeekSession interface {
	Session
	// Peek reads key's value into dst without consistency effects.
	Peek(key uint64, dst []byte) (bool, error)
}

// LookaheadSession is an optional Session extension for engines with a
// native batched prefetch: the network client ships one LOOKAHEAD frame
// instead of one Prefetch round trip per key.
type LookaheadSession interface {
	Session
	// Lookahead hints that keys will be read soon, returning how many
	// records the engine reports moving toward memory.
	Lookahead(keys []uint64) (int, error)
}

// Checkpointer is an optional Store extension for engines that can make
// their contents durable on demand.
type Checkpointer interface {
	Checkpoint() error
}

// StatsReporter is an optional Store extension exposing the engine's
// merged operation counters (summed across shards for a sharded store).
type StatsReporter interface {
	Stats() faster.StatsSnapshot
}

// Sharded is an optional Store extension reporting the hash-partition
// count backing the store.
type Sharded interface {
	Shards() int
}

// CtxSession is an optional Session extension for engines whose reads
// can block (MLKV's clocked Gets waiting on the staleness bound): GetCtx
// gives up with ctx.Err() when ctx ends, without acquiring a token. The
// serving layer uses it to honor a remote client's deadline server-side,
// so an abandoned request cannot strand a staleness token.
type CtxSession interface {
	Session
	// GetCtx is Get bounded by ctx.
	GetCtx(ctx context.Context, key uint64, dst []byte) (bool, error)
}

// CtxBatchSession is the batch counterpart of CtxSession.
type CtxBatchSession interface {
	BatchSession
	// GetBatchCtx is GetBatch bounded by ctx, checked on every key.
	GetBatchCtx(ctx context.Context, keys []uint64, vals []byte, found []bool) error
}

// Bounded is an optional Store extension for engines with MLKV's
// bounded-staleness clock: the serving layer reports the bound in OPEN
// responses and applies a client-requested bound at open time.
type Bounded interface {
	// StalenessBound returns the current bound (shared by all shards).
	StalenessBound() int64
	// SetStalenessBound changes the bound at runtime, on every shard.
	SetStalenessBound(int64)
}

// SessionPeek reads key without consistency effects when s supports it,
// falling back to a plain Get — which, for the clock-free engines that
// lack Peek (LSM, B+tree), is the same thing.
func SessionPeek(s Session, key uint64, dst []byte) (bool, error) {
	if ps, ok := s.(PeekSession); ok {
		return ps.Peek(key, dst)
	}
	return s.Get(key, dst)
}

// SessionLookahead hints that keys will be read soon — as one batched call
// when the engine has one, else one Prefetch per key — returning how many
// records the engine reports moving toward memory.
func SessionLookahead(s Session, keys []uint64) (int, error) {
	if ls, ok := s.(LookaheadSession); ok {
		return ls.Lookahead(keys)
	}
	n := 0
	for _, k := range keys {
		ok, err := s.Prefetch(k)
		if err != nil {
			return n, err
		}
		if ok {
			n++
		}
	}
	return n, nil
}

// SessionGetCtx reads key under ctx when s supports cancellation, falling
// back to a plain Get (engines whose reads never block).
func SessionGetCtx(ctx context.Context, s Session, key uint64, dst []byte) (bool, error) {
	if cs, ok := s.(CtxSession); ok {
		return cs.GetCtx(ctx, key, dst)
	}
	return s.Get(key, dst)
}

// SessionGetBatch reads len(keys) values into vals (len(keys)×valueSize)
// through s's native batch path when it has one, else key by key. Missing
// keys get found[i]=false and a zeroed value slot either way.
func SessionGetBatch(s Session, valueSize int, keys []uint64, vals []byte, found []bool) error {
	return SessionGetBatchCtx(context.Background(), s, valueSize, keys, vals, found)
}

// SessionGetBatchCtx is SessionGetBatch bounded by ctx where the engine
// supports it.
func SessionGetBatchCtx(ctx context.Context, s Session, valueSize int, keys []uint64, vals []byte, found []bool) error {
	if len(vals) != len(keys)*valueSize || len(found) != len(keys) {
		return fmt.Errorf("kv: GetBatch buffers sized %d/%d for %d keys × %d bytes",
			len(vals), len(found), len(keys), valueSize)
	}
	if bs, ok := s.(CtxBatchSession); ok {
		return bs.GetBatchCtx(ctx, keys, vals, found)
	}
	if bs, ok := s.(BatchSession); ok {
		return bs.GetBatch(keys, vals, found)
	}
	for i, k := range keys {
		slot := vals[i*valueSize : (i+1)*valueSize]
		ok, err := SessionGetCtx(ctx, s, k, slot)
		if err != nil {
			return err
		}
		found[i] = ok
		if !ok {
			clear(slot)
		}
	}
	return nil
}

// SessionPutBatch upserts len(keys) values from vals through s's native
// batch path when it has one, else key by key.
func SessionPutBatch(s Session, valueSize int, keys []uint64, vals []byte) error {
	if len(vals) != len(keys)*valueSize {
		return fmt.Errorf("kv: PutBatch vals sized %d for %d keys × %d bytes",
			len(vals), len(keys), valueSize)
	}
	if bs, ok := s.(BatchSession); ok {
		return bs.PutBatch(keys, vals)
	}
	for i, k := range keys {
		if err := s.Put(k, vals[i*valueSize:(i+1)*valueSize]); err != nil {
			return err
		}
	}
	return nil
}
