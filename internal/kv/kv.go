// Package kv defines the backend-neutral key-value interface that the
// training pipelines and benchmarks run against, plus adapters for each
// engine (MLKV/FASTER hybrid-log, LSM-tree, disk B+tree, sharded memory).
// It mirrors how the paper integrates PERSIA/DGL/DGL-KE with FASTER,
// RocksDB, and WiredTiger behind one embedding-access layer.
package kv

// Store is a disk-backed key-value store with fixed-size values.
type Store interface {
	// NewSession returns a handle for one worker goroutine. Sessions are
	// not safe for concurrent use; the Store itself is.
	NewSession() (Session, error)
	// ValueSize is the fixed value payload in bytes.
	ValueSize() int
	// Name identifies the engine in benchmark output.
	Name() string
	// Close releases resources.
	Close() error
}

// Session is one worker's operation handle.
type Session interface {
	// Get reads key's value into dst (len must equal ValueSize).
	Get(key uint64, dst []byte) (bool, error)
	// Put upserts key's value.
	Put(key uint64, val []byte) error
	// Delete removes key.
	Delete(key uint64) error
	// Prefetch hints that key will be read soon. Engines without native
	// prefetch return false immediately.
	Prefetch(key uint64) (bool, error)
	// Close releases the session.
	Close()
}
