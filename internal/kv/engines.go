package kv

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/llm-db/mlkv-go/internal/bptree"
	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/lsm"
	"github.com/llm-db/mlkv-go/internal/util"
)

// Engine names accepted across the public API, the wire protocol, and the
// server flags. "faster" is the canonical name of the hybrid-log engine;
// "mlkv" and "" alias it (whether its vector clock runs is the staleness
// bound's business, not the engine name's).
const (
	EngineFaster = "faster"
	EngineLSM    = "lsm"
	EngineBPTree = "bptree"
)

// NormalizeEngine maps an engine name (or alias, or "") to its canonical
// form, rejecting unknown names with the accepted set in the message.
func NormalizeEngine(engine string) (string, error) {
	switch strings.ToLower(engine) {
	case "", "mlkv", EngineFaster:
		return EngineFaster, nil
	case EngineLSM:
		return EngineLSM, nil
	case EngineBPTree:
		return EngineBPTree, nil
	}
	return "", fmt.Errorf("kv: unknown engine %q (want faster, lsm, or bptree)", engine)
}

// ClockFree reports whether the canonical engine name has no vector
// clock, so it can never honor a blocking staleness bound (BSP or finite
// SSP). Callers reject explicit blocking bounds on such engines up front
// rather than silently serving unbounded reads.
func ClockFree(engine string) bool { return engine == EngineLSM || engine == EngineBPTree }

// BatchCallReporter is an optional Store extension counting the native
// engine-level batch calls the store has issued. It is the measurement
// behind the batch-amplification regression gate: one session GetBatch
// through a sharded store must reach the engine as at most Shards calls,
// never one call per key.
type BatchCallReporter interface {
	// BatchCalls returns the cumulative engine-level batch read and batch
	// write call counts.
	BatchCalls() (gets, puts int64)
}

// engineSession is the native session surface the clock-free engines
// share (both *lsm.Session and *bptree.Session satisfy it), including the
// batch entry points the lifted adapter builds on.
type engineSession interface {
	Get(key uint64, dst []byte) (bool, error)
	Put(key uint64, val []byte) error
	Delete(key uint64) error
	Prefetch(key uint64) (bool, error)
	GetBatch(keys []uint64, vals []byte, found []bool) error
	PutBatch(keys []uint64, vals []byte) error
	Close()
}

// liftedStore adapts one clock-free engine store to the full optional
// surface the serving layer uses: batch sessions, Peek, Checkpoint, and
// merged stats, with operation counters kept at this layer (the engines
// themselves only count IO).
type liftedStore struct {
	name      string
	engine    string // canonical engine name
	valueSize int

	newSess    func() (engineSession, error)
	checkpoint func() error
	ioStats    func() (memHits, diskReads, flushed int64)
	closeFn    func() error

	gets, puts, deletes    atomic.Int64
	batchGets, batchPuts   atomic.Int64
	batchGetKs, batchPutKs atomic.Int64
}

func (w *liftedStore) NewSession() (Session, error) {
	es, err := w.newSess()
	if err != nil {
		return nil, err
	}
	return &liftedSession{st: w, es: es}, nil
}

func (w *liftedStore) ValueSize() int    { return w.valueSize }
func (w *liftedStore) Name() string      { return w.name }
func (w *liftedStore) Close() error      { return w.closeFn() }
func (w *liftedStore) Checkpoint() error { return w.checkpoint() }

// Stats maps the lift-level operation counters plus the engine's IO
// counters onto the shared snapshot shape (batch calls count once per
// contained key, like the sharded FASTER adapter).
func (w *liftedStore) Stats() faster.StatsSnapshot {
	memHits, diskReads, flushed := w.ioStats()
	return faster.StatsSnapshot{
		Gets:         w.gets.Load() + w.batchGetKs.Load(),
		Puts:         w.puts.Load() + w.batchPutKs.Load(),
		Deletes:      w.deletes.Load(),
		MemHits:      memHits,
		DiskReads:    diskReads,
		FlushedPages: flushed,
	}
}

// BatchCalls implements BatchCallReporter.
func (w *liftedStore) BatchCalls() (gets, puts int64) {
	return w.batchGets.Load(), w.batchPuts.Load()
}

// liftedSession is the lifted store's session: BatchSession through the
// engine's native batch path, PeekSession trivially (clock-free reads have
// no consistency effects, so Peek is Get).
type liftedSession struct {
	st *liftedStore
	es engineSession
}

func (se *liftedSession) Get(key uint64, dst []byte) (bool, error) {
	se.st.gets.Add(1)
	return se.es.Get(key, dst)
}

func (se *liftedSession) Put(key uint64, val []byte) error {
	se.st.puts.Add(1)
	return se.es.Put(key, val)
}

func (se *liftedSession) Delete(key uint64) error {
	se.st.deletes.Add(1)
	return se.es.Delete(key)
}

func (se *liftedSession) Prefetch(key uint64) (bool, error) { return se.es.Prefetch(key) }

// Peek implements PeekSession: on a clock-free engine a plain Get already
// has no consistency effects.
func (se *liftedSession) Peek(key uint64, dst []byte) (bool, error) {
	se.st.gets.Add(1)
	return se.es.Get(key, dst)
}

// GetBatch implements BatchSession as one native engine call.
func (se *liftedSession) GetBatch(keys []uint64, vals []byte, found []bool) error {
	se.st.batchGets.Add(1)
	se.st.batchGetKs.Add(int64(len(keys)))
	if err := se.es.GetBatch(keys, vals, found); err != nil {
		return err
	}
	vs := se.st.valueSize
	for i, ok := range found {
		if !ok {
			clear(vals[i*vs : (i+1)*vs])
		}
	}
	return nil
}

// PutBatch implements BatchSession as one native engine call.
func (se *liftedSession) PutBatch(keys []uint64, vals []byte) error {
	se.st.batchPuts.Add(1)
	se.st.batchPutKs.Add(int64(len(keys)))
	return se.es.PutBatch(keys, vals)
}

func (se *liftedSession) Close() { se.es.Close() }

// liftLSM wraps an LSM store with the full adapter surface. Checkpoint is
// Flush (memtable + WAL to sorted tables); cache stats map to mem-hit and
// disk-read counters.
func liftLSM(s *lsm.Store, name string) *liftedStore {
	return &liftedStore{
		name:      name,
		engine:    EngineLSM,
		valueSize: s.ValueSize(),
		newSess: func() (engineSession, error) {
			return s.NewSession()
		},
		checkpoint: func() error { return s.Flush() },
		ioStats: func() (int64, int64, int64) {
			hits, misses := s.CacheStats()
			return hits, misses, 0
		},
		closeFn: func() error { return s.Close() },
	}
}

// liftBPTree wraps a B+tree store with the full adapter surface.
// Checkpoint is Sync (dirty pages + metadata to the file); pager stats map
// to mem-hit, disk-read, and flushed-page counters.
func liftBPTree(s *bptree.Store, name string) *liftedStore {
	return &liftedStore{
		name:      name,
		engine:    EngineBPTree,
		valueSize: s.ValueSize(),
		newSess: func() (engineSession, error) {
			return s.NewSession()
		},
		checkpoint: func() error { return s.Sync() },
		ioStats: func() (int64, int64, int64) {
			reads, writes, hits := s.IOStats()
			return hits, reads, writes
		},
		closeFn: func() error { return s.Close() },
	}
}

// engineShardStore hash-partitions N lifted stores the way
// WrapFasterShards partitions FASTER stores, with batch fan-out that
// reaches each shard's engine as one native batch call. The engines here
// are clock-free — no staleness bound, so batches never need the
// blocking-bound serial order the clocked adapter enforces and always fan
// out per shard.
type engineShardStore struct {
	stores []*liftedStore
	name   string
}

func (w *engineShardStore) NewSession() (Session, error) {
	ss := make([]*liftedSession, len(w.stores))
	for i, st := range w.stores {
		s, err := st.NewSession()
		if err != nil {
			for _, prev := range ss[:i] {
				prev.Close()
			}
			return nil, err
		}
		ss[i] = s.(*liftedSession)
	}
	return &engineShardSession{
		ss:      ss,
		vs:      w.stores[0].valueSize,
		groups:  make([][]int, len(ss)),
		scratch: make([]shardScratch, len(ss)),
	}, nil
}

func (w *engineShardStore) ValueSize() int { return w.stores[0].valueSize }
func (w *engineShardStore) Name() string   { return w.name }
func (w *engineShardStore) Shards() int    { return len(w.stores) }

func (w *engineShardStore) Close() error {
	var first error
	for _, st := range w.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Checkpoint makes every shard durable, in parallel.
func (w *engineShardStore) Checkpoint() error {
	var wg sync.WaitGroup
	errs := make([]error, len(w.stores))
	for i, st := range w.stores {
		wg.Add(1)
		go func(i int, st *liftedStore) {
			defer wg.Done()
			errs[i] = st.Checkpoint()
		}(i, st)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Stats returns the element-wise sum of every shard's counters.
func (w *engineShardStore) Stats() faster.StatsSnapshot {
	var sum faster.StatsSnapshot
	for _, st := range w.stores {
		sum = sum.Add(st.Stats())
	}
	return sum
}

// BatchCalls implements BatchCallReporter across shards.
func (w *engineShardStore) BatchCalls() (gets, puts int64) {
	for _, st := range w.stores {
		g, p := st.BatchCalls()
		gets += g
		puts += p
	}
	return gets, puts
}

// shardScratch is one shard's reusable gather buffers for batch fan-out.
type shardScratch struct {
	keys []uint64
	vals []byte
	fnd  []bool
	err  error
}

type engineShardSession struct {
	ss      []*liftedSession
	vs      int
	groups  [][]int
	scratch []shardScratch
}

func (se *engineShardSession) route(key uint64) *liftedSession {
	return se.ss[util.ShardOf(key, len(se.ss))]
}

func (se *engineShardSession) Get(key uint64, dst []byte) (bool, error) {
	return se.route(key).Get(key, dst)
}
func (se *engineShardSession) Put(key uint64, val []byte) error { return se.route(key).Put(key, val) }
func (se *engineShardSession) Delete(key uint64) error          { return se.route(key).Delete(key) }
func (se *engineShardSession) Prefetch(key uint64) (bool, error) {
	return se.route(key).Prefetch(key)
}

// Peek implements PeekSession (clock-free: Peek is Get).
func (se *engineShardSession) Peek(key uint64, dst []byte) (bool, error) {
	return se.route(key).Peek(key, dst)
}

func (se *engineShardSession) Close() {
	for _, s := range se.ss {
		s.Close()
	}
}

// group partitions the batch's indices by owning shard into the session's
// reusable buffers.
func (se *engineShardSession) group(keys []uint64) [][]int {
	n := len(se.ss)
	for i := range se.groups {
		se.groups[i] = se.groups[i][:0]
	}
	for i, k := range keys {
		sh := util.ShardOf(k, n)
		se.groups[sh] = append(se.groups[sh], i)
	}
	return se.groups
}

// GetBatch implements BatchSession: keys gather into per-shard contiguous
// buffers, each shard answers with ONE native engine batch call, and the
// results scatter back to the caller's slots. Shards run in parallel for
// large batches.
func (se *engineShardSession) GetBatch(keys []uint64, vals []byte, found []bool) error {
	if len(keys) == 0 {
		return nil
	}
	vs := se.vs
	groups := se.group(keys)
	run := func(sh int, idxs []int) error {
		sc := &se.scratch[sh]
		sc.keys = sc.keys[:0]
		for _, i := range idxs {
			sc.keys = append(sc.keys, keys[i])
		}
		need := len(idxs) * vs
		if cap(sc.vals) < need {
			sc.vals = make([]byte, need)
		}
		if cap(sc.fnd) < len(idxs) {
			sc.fnd = make([]bool, len(idxs))
		}
		sv, sf := sc.vals[:need], sc.fnd[:len(idxs)]
		if err := se.ss[sh].GetBatch(sc.keys, sv, sf); err != nil {
			return err
		}
		for j, i := range idxs {
			copy(vals[i*vs:(i+1)*vs], sv[j*vs:(j+1)*vs])
			found[i] = sf[j]
		}
		return nil
	}
	return se.eachShard(len(keys), groups, run)
}

// PutBatch implements BatchSession with the same per-shard gather.
func (se *engineShardSession) PutBatch(keys []uint64, vals []byte) error {
	if len(keys) == 0 {
		return nil
	}
	vs := se.vs
	groups := se.group(keys)
	run := func(sh int, idxs []int) error {
		sc := &se.scratch[sh]
		sc.keys = sc.keys[:0]
		need := len(idxs) * vs
		if cap(sc.vals) < need {
			sc.vals = make([]byte, need)
		}
		sv := sc.vals[:need]
		for j, i := range idxs {
			sc.keys = append(sc.keys, keys[i])
			copy(sv[j*vs:(j+1)*vs], vals[i*vs:(i+1)*vs])
		}
		return se.ss[sh].PutBatch(sc.keys, sv)
	}
	return se.eachShard(len(keys), groups, run)
}

// eachShard runs op over every non-empty shard group — serially for small
// batches, one goroutine per shard otherwise (the engines are internally
// synchronized, so parallel shard batches are safe).
func (se *engineShardSession) eachShard(total int, groups [][]int, op func(sh int, idxs []int) error) error {
	if total < batchFanoutMin {
		for sh, idxs := range groups {
			if len(idxs) == 0 {
				continue
			}
			if err := op(sh, idxs); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	for sh, idxs := range groups {
		se.scratch[sh].err = nil
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int, idxs []int) {
			defer wg.Done()
			se.scratch[sh].err = op(sh, idxs)
		}(sh, idxs)
	}
	wg.Wait()
	for sh := range se.scratch {
		if err := se.scratch[sh].err; err != nil {
			return err
		}
	}
	return nil
}

// engineMetaFile pins a store directory to one engine, so reopening with a
// different engine fails crisply instead of misparsing on-disk state.
const engineMetaFile = "ENGINE"

func checkEngineMeta(dir, engine string) error {
	path := filepath.Join(dir, engineMetaFile)
	buf, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return os.WriteFile(path, []byte(engine+"\n"), 0o644)
	}
	if err != nil {
		return err
	}
	if got := strings.TrimSpace(string(buf)); got != engine {
		return fmt.Errorf("kv: directory %s holds a %q store, cannot reopen as %q", dir, got, engine)
	}
	return nil
}

// CheckEngineDir pins dir to the named engine: it creates the directory
// if needed, records the engine on first use, and fails if the directory
// already belongs to a different engine. OpenEngine does this itself;
// the export is for callers that open the hybrid log through core.Table
// instead and still want the cross-engine reopen guard.
func CheckEngineDir(dir, engine string) error {
	eng, err := NormalizeEngine(engine)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return checkEngineMeta(dir, eng)
}

// OpenEngine opens a store of the named engine under cfg — the one place
// every CLI, server, and driver derives an engine store from a total
// budget, mirroring OpenFasterShards' split policy:
//
//   - "faster" (aliases "", "mlkv"): OpenFasterShards verbatim, staleness
//     bound and all.
//   - "lsm": cfg.Shards LSM trees, each with half its memory share as
//     memtable and half as block cache.
//   - "bptree": cfg.Shards B+trees, each with its memory share as buffer
//     pool.
//
// The clock-free engines reject a blocking staleness bound (BSP or finite
// SSP) up front: they have no vector clock, so accepting one would
// silently serve unbounded reads.
func OpenEngine(engine string, cfg ShardedConfig, name string) (Store, error) {
	eng, err := NormalizeEngine(engine)
	if err != nil {
		return nil, err
	}
	if eng == EngineFaster {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, err
		}
		if err := checkEngineMeta(cfg.Dir, eng); err != nil {
			return nil, err
		}
		return OpenFasterShards(cfg, name)
	}
	if faster.BlockingBound(cfg.StalenessBound) {
		return nil, fmt.Errorf("kv: engine %q has no vector clock and cannot honor blocking staleness bound %d (use the faster engine, or an async/disabled bound)", eng, cfg.StalenessBound)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	if err := checkEngineMeta(cfg.Dir, eng); err != nil {
		return nil, err
	}
	if err := util.ValidateShardMeta(cfg.Dir, cfg.Shards); err != nil {
		return nil, fmt.Errorf("kv: %w", err)
	}
	stores := make([]*liftedStore, cfg.Shards)
	fail := func(i int, err error) (Store, error) {
		for _, prev := range stores[:i] {
			prev.Close()
		}
		return nil, err
	}
	for i := range stores {
		d := cfg.Dir
		if cfg.Shards > 1 {
			d = filepath.Join(cfg.Dir, fmt.Sprintf("shard-%03d", i))
		}
		switch eng {
		case EngineLSM:
			memBytes := int(cfg.MemoryBytes) / (2 * cfg.Shards)
			if memBytes < 64<<10 {
				memBytes = 64 << 10
			}
			st, err := lsm.Open(lsm.Config{
				Dir:           d,
				ValueSize:     cfg.ValueSize,
				MemtableBytes: memBytes,
				CacheBytes:    memBytes,
				SyncWAL:       cfg.SyncWrites,
			})
			if err != nil {
				return fail(i, err)
			}
			stores[i] = liftLSM(st, name)
		case EngineBPTree:
			poolPages := int(cfg.MemoryBytes) / cfg.Shards / 4096
			if poolPages < 64 {
				poolPages = 64
			}
			st, err := bptree.Open(bptree.Config{
				Dir:        d,
				ValueSize:  cfg.ValueSize,
				PoolPages:  poolPages,
				SyncWrites: cfg.SyncWrites,
			})
			if err != nil {
				return fail(i, err)
			}
			stores[i] = liftBPTree(st, name)
		}
	}
	if err := util.WriteShardMeta(cfg.Dir, cfg.Shards); err != nil {
		return fail(cfg.Shards, err)
	}
	if cfg.Shards == 1 {
		return stores[0], nil
	}
	return &engineShardStore{stores: stores, name: name}, nil
}
