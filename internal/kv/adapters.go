package kv

import (
	"github.com/llm-db/mlkv-go/internal/bptree"
	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/lsm"
	"github.com/llm-db/mlkv-go/internal/util"
)

// WrapLSM adapts an LSM store to the Store interface.
func WrapLSM(s *lsm.Store) Store { return lsmStore{s} }

type lsmStore struct{ s *lsm.Store }

func (w lsmStore) NewSession() (Session, error) { return w.s.NewSession() }
func (w lsmStore) ValueSize() int               { return w.s.ValueSize() }
func (w lsmStore) Name() string                 { return w.s.Name() }
func (w lsmStore) Close() error                 { return w.s.Close() }

// WrapBPTree adapts a B+tree store to the Store interface.
func WrapBPTree(s *bptree.Store) Store { return btStore{s} }

type btStore struct{ s *bptree.Store }

func (w btStore) NewSession() (Session, error) { return w.s.NewSession() }
func (w btStore) ValueSize() int               { return w.s.ValueSize() }
func (w btStore) Name() string                 { return w.s.Name() }
func (w btStore) Close() error                 { return w.s.Close() }

// WrapFaster adapts a FASTER store to the Store interface (used by the
// YCSB harness, which works on raw bytes).
func WrapFaster(s *faster.Store, name string) Store { return fkStore{s: s, name: name} }

type fkStore struct {
	s    *faster.Store
	name string
}

func (w fkStore) NewSession() (Session, error) {
	s, err := w.s.NewSession()
	if err != nil {
		return nil, err
	}
	return fkSession{s}, nil
}
func (w fkStore) ValueSize() int { return w.s.ValueSize() }
func (w fkStore) Name() string   { return w.name }
func (w fkStore) Close() error   { return w.s.Close() }

type fkSession struct{ s *faster.Session }

func (se fkSession) Get(key uint64, dst []byte) (bool, error) { return se.s.Get(key, dst) }
func (se fkSession) Put(key uint64, val []byte) error         { return se.s.Put(key, val) }
func (se fkSession) Delete(key uint64) error                  { return se.s.Delete(key) }
func (se fkSession) Prefetch(key uint64) (bool, error)        { return se.s.Prefetch(key) }
func (se fkSession) Close()                                   { se.s.Close() }

// WrapFasterShards adapts a hash-partitioned set of FASTER stores to the
// Store interface: every operation routes to the shard util.ShardOf
// assigns its key, the same placement the core shard router uses. The
// stores must share one ValueSize. A single store degenerates to
// WrapFaster, so 1-vs-N comparisons measure sharding alone, not adapter
// overhead.
func WrapFasterShards(stores []*faster.Store, name string) Store {
	if len(stores) == 1 {
		return WrapFaster(stores[0], name)
	}
	return fkShardStore{stores: stores, name: name}
}

type fkShardStore struct {
	stores []*faster.Store
	name   string
}

func (w fkShardStore) NewSession() (Session, error) {
	ss := make([]*faster.Session, len(w.stores))
	for i, st := range w.stores {
		s, err := st.NewSession()
		if err != nil {
			for _, prev := range ss[:i] {
				prev.Close()
			}
			return nil, err
		}
		ss[i] = s
	}
	return fkShardSession{ss: ss}, nil
}

func (w fkShardStore) ValueSize() int { return w.stores[0].ValueSize() }
func (w fkShardStore) Name() string   { return w.name }

func (w fkShardStore) Close() error {
	var first error
	for _, st := range w.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

type fkShardSession struct{ ss []*faster.Session }

func (se fkShardSession) route(key uint64) *faster.Session {
	return se.ss[util.ShardOf(key, len(se.ss))]
}

func (se fkShardSession) Get(key uint64, dst []byte) (bool, error) { return se.route(key).Get(key, dst) }
func (se fkShardSession) Put(key uint64, val []byte) error         { return se.route(key).Put(key, val) }
func (se fkShardSession) Delete(key uint64) error                  { return se.route(key).Delete(key) }
func (se fkShardSession) Prefetch(key uint64) (bool, error)        { return se.route(key).Prefetch(key) }
func (se fkShardSession) Close() {
	for _, s := range se.ss {
		s.Close()
	}
}
