package kv

import (
	"context"
	"sync"

	"github.com/llm-db/mlkv-go/internal/bptree"
	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/lsm"
	"github.com/llm-db/mlkv-go/internal/util"
)

// WrapLSM adapts an LSM store to the Store interface, with the full
// optional surface (BatchSession/PeekSession/Checkpointer/StatsReporter)
// lifted onto it — see liftLSM in engines.go.
func WrapLSM(s *lsm.Store) Store { return liftLSM(s, s.Name()) }

// WrapBPTree adapts a B+tree store to the Store interface, with the full
// optional surface lifted onto it — see liftBPTree in engines.go.
func WrapBPTree(s *bptree.Store) Store { return liftBPTree(s, s.Name()) }

// WrapFaster adapts a FASTER store to the Store interface (used by the
// YCSB harness, which works on raw bytes).
func WrapFaster(s *faster.Store, name string) Store { return fkStore{s: s, name: name} }

type fkStore struct {
	s    *faster.Store
	name string
}

func (w fkStore) NewSession() (Session, error) {
	s, err := w.s.NewSession()
	if err != nil {
		return nil, err
	}
	return fkSession{s}, nil
}
func (w fkStore) ValueSize() int              { return w.s.ValueSize() }
func (w fkStore) Name() string                { return w.name }
func (w fkStore) Close() error                { return w.s.Close() }
func (w fkStore) Checkpoint() error           { return w.s.Checkpoint() }
func (w fkStore) Stats() faster.StatsSnapshot { return w.s.Stats() }
func (w fkStore) Shards() int                 { return 1 }
func (w fkStore) StalenessBound() int64       { return w.s.StalenessBound() }
func (w fkStore) SetStalenessBound(b int64)   { w.s.SetStalenessBound(b) }

type fkSession struct{ s *faster.Session }

func (se fkSession) Get(key uint64, dst []byte) (bool, error) { return se.s.Get(key, dst) }

// GetCtx implements CtxSession: a clocked read stalled on the staleness
// bound gives up with ctx.Err() when ctx ends.
func (se fkSession) GetCtx(ctx context.Context, key uint64, dst []byte) (bool, error) {
	return se.s.GetCtx(ctx, key, dst)
}
func (se fkSession) Put(key uint64, val []byte) error          { return se.s.Put(key, val) }
func (se fkSession) Delete(key uint64) error                   { return se.s.Delete(key) }
func (se fkSession) Prefetch(key uint64) (bool, error)         { return se.s.Prefetch(key) }
func (se fkSession) Peek(key uint64, dst []byte) (bool, error) { return se.s.Peek(key, dst) }
func (se fkSession) Close()                                    { se.s.Close() }

// WrapFasterShards adapts a hash-partitioned set of FASTER stores to the
// Store interface: every operation routes to the shard util.ShardOf
// assigns its key, the same placement the core shard router uses. The
// stores must share one ValueSize. A single store degenerates to
// WrapFaster, so 1-vs-N comparisons measure sharding alone, not adapter
// overhead.
func WrapFasterShards(stores []*faster.Store, name string) Store {
	if len(stores) == 1 {
		return WrapFaster(stores[0], name)
	}
	return fkShardStore{stores: stores, name: name}
}

type fkShardStore struct {
	stores []*faster.Store
	name   string
}

func (w fkShardStore) NewSession() (Session, error) {
	ss := make([]*faster.Session, len(w.stores))
	for i, st := range w.stores {
		s, err := st.NewSession()
		if err != nil {
			for _, prev := range ss[:i] {
				prev.Close()
			}
			return nil, err
		}
		ss[i] = s
	}
	return &fkShardSession{ss: ss, groups: make([][]int, len(ss)), st0: w.stores[0]}, nil
}

func (w fkShardStore) ValueSize() int { return w.stores[0].ValueSize() }
func (w fkShardStore) Name() string   { return w.name }
func (w fkShardStore) Shards() int    { return len(w.stores) }

// StalenessBound reports the bound all shards share.
func (w fkShardStore) StalenessBound() int64 { return w.stores[0].StalenessBound() }

// SetStalenessBound changes the bound on every shard.
func (w fkShardStore) SetStalenessBound(b int64) {
	for _, st := range w.stores {
		st.SetStalenessBound(b)
	}
}

func (w fkShardStore) Close() error {
	var first error
	for _, st := range w.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Checkpoint makes every shard durable, in parallel; the first error by
// shard order is returned.
func (w fkShardStore) Checkpoint() error {
	var wg sync.WaitGroup
	errs := make([]error, len(w.stores))
	for i, st := range w.stores {
		wg.Add(1)
		go func(i int, st *faster.Store) {
			defer wg.Done()
			errs[i] = st.Checkpoint()
		}(i, st)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats returns the element-wise sum of every shard's counters.
func (w fkShardStore) Stats() faster.StatsSnapshot {
	var sum faster.StatsSnapshot
	for _, st := range w.stores {
		sum = sum.Add(st.Stats())
	}
	return sum
}

type fkShardSession struct {
	ss     []*faster.Session
	groups [][]int       // reusable per-shard index groups for batches
	errs   []error       // reusable per-shard fan-out results
	st0    *faster.Store // representative for the shared staleness bound
}

func (se *fkShardSession) route(key uint64) *faster.Session {
	return se.ss[util.ShardOf(key, len(se.ss))]
}

func (se *fkShardSession) Get(key uint64, dst []byte) (bool, error) {
	return se.route(key).Get(key, dst)
}

// GetCtx implements CtxSession (see fkSession.GetCtx).
func (se *fkShardSession) GetCtx(ctx context.Context, key uint64, dst []byte) (bool, error) {
	return se.route(key).GetCtx(ctx, key, dst)
}
func (se *fkShardSession) Put(key uint64, val []byte) error  { return se.route(key).Put(key, val) }
func (se *fkShardSession) Delete(key uint64) error           { return se.route(key).Delete(key) }
func (se *fkShardSession) Prefetch(key uint64) (bool, error) { return se.route(key).Prefetch(key) }
func (se *fkShardSession) Peek(key uint64, dst []byte) (bool, error) {
	return se.route(key).Peek(key, dst)
}
func (se *fkShardSession) Close() {
	for _, s := range se.ss {
		s.Close()
	}
}

// batchFanoutMin matches the core router's threshold: below it, goroutine
// spawn costs more than the handful of routed operations it would overlap.
const batchFanoutMin = 16

// GetBatch implements BatchSession: keys group by owning shard and the
// per-shard groups run in parallel goroutines. Within one call each
// shard's faster session is driven by exactly one goroutine, preserving
// the engine's single-goroutine session contract.
func (se *fkShardSession) GetBatch(keys []uint64, vals []byte, found []bool) error {
	return se.GetBatchCtx(context.Background(), keys, vals, found)
}

// GetBatchCtx implements CtxBatchSession: ctx is checked on every clocked
// read, so a batch stalled on the staleness bound gives up at the
// caller's deadline.
func (se *fkShardSession) GetBatchCtx(ctx context.Context, keys []uint64, vals []byte, found []bool) error {
	if len(keys) == 0 {
		return nil
	}
	vs := len(vals) / len(keys)
	// Under a blocking staleness bound (BSP or finite SSP) clocked reads
	// are token acquisitions that must keep the caller's global key order,
	// or two sessions' parallel per-shard groups could each hold a token
	// the other is blocked on. Run the batch serially in caller order —
	// exactly what core.Session.GetBatch does for the same reason.
	if faster.BlockingBound(se.st0.StalenessBound()) {
		for i, k := range keys {
			slot := vals[i*vs : (i+1)*vs]
			ok, err := se.route(k).GetCtx(ctx, k, slot)
			if err != nil {
				return err
			}
			found[i] = ok
			if !ok {
				clear(slot)
			}
		}
		return nil
	}
	return se.fanOut(keys, func(sh int, idxs []int) error {
		s := se.ss[sh]
		for _, i := range idxs {
			slot := vals[i*vs : (i+1)*vs]
			ok, err := s.GetCtx(ctx, keys[i], slot)
			if err != nil {
				return err
			}
			found[i] = ok
			if !ok {
				clear(slot)
			}
		}
		return nil
	})
}

// PutBatch implements BatchSession with the same per-shard fan-out.
func (se *fkShardSession) PutBatch(keys []uint64, vals []byte) error {
	if len(keys) == 0 {
		return nil
	}
	vs := len(vals) / len(keys)
	return se.fanOut(keys, func(sh int, idxs []int) error {
		s := se.ss[sh]
		for _, i := range idxs {
			if err := s.Put(keys[i], vals[i*vs:(i+1)*vs]); err != nil {
				return err
			}
		}
		return nil
	})
}

// fanOut groups the indices of keys by owning shard into the session's
// reusable group buffers and runs op over each non-empty group — serially
// for small batches, in one goroutine per shard otherwise. The first
// error by shard order is returned.
func (se *fkShardSession) fanOut(keys []uint64, op func(shard int, idxs []int) error) error {
	n := len(se.ss)
	groups := se.groups
	for i := range groups {
		groups[i] = groups[i][:0]
	}
	for i, k := range keys {
		sh := util.ShardOf(k, n)
		groups[sh] = append(groups[sh], i)
	}
	if len(keys) < batchFanoutMin {
		for sh, idxs := range groups {
			if len(idxs) == 0 {
				continue
			}
			if err := op(sh, idxs); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	if se.errs == nil {
		se.errs = make([]error, n)
	}
	errs := se.errs
	for sh, idxs := range groups {
		errs[sh] = nil
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int, idxs []int) {
			defer wg.Done()
			errs[sh] = op(sh, idxs)
		}(sh, idxs)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
