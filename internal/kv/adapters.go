package kv

import (
	"github.com/llm-db/mlkv-go/internal/bptree"
	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/lsm"
)

// WrapLSM adapts an LSM store to the Store interface.
func WrapLSM(s *lsm.Store) Store { return lsmStore{s} }

type lsmStore struct{ s *lsm.Store }

func (w lsmStore) NewSession() (Session, error) { return w.s.NewSession() }
func (w lsmStore) ValueSize() int               { return w.s.ValueSize() }
func (w lsmStore) Name() string                 { return w.s.Name() }
func (w lsmStore) Close() error                 { return w.s.Close() }

// WrapBPTree adapts a B+tree store to the Store interface.
func WrapBPTree(s *bptree.Store) Store { return btStore{s} }

type btStore struct{ s *bptree.Store }

func (w btStore) NewSession() (Session, error) { return w.s.NewSession() }
func (w btStore) ValueSize() int               { return w.s.ValueSize() }
func (w btStore) Name() string                 { return w.s.Name() }
func (w btStore) Close() error                 { return w.s.Close() }

// WrapFaster adapts a FASTER store to the Store interface (used by the
// YCSB harness, which works on raw bytes).
func WrapFaster(s *faster.Store, name string) Store { return fkStore{s: s, name: name} }

type fkStore struct {
	s    *faster.Store
	name string
}

func (w fkStore) NewSession() (Session, error) {
	s, err := w.s.NewSession()
	if err != nil {
		return nil, err
	}
	return fkSession{s}, nil
}
func (w fkStore) ValueSize() int { return w.s.ValueSize() }
func (w fkStore) Name() string   { return w.name }
func (w fkStore) Close() error   { return w.s.Close() }

type fkSession struct{ s *faster.Session }

func (se fkSession) Get(key uint64, dst []byte) (bool, error) { return se.s.Get(key, dst) }
func (se fkSession) Put(key uint64, val []byte) error         { return se.s.Put(key, val) }
func (se fkSession) Delete(key uint64) error                  { return se.s.Delete(key) }
func (se fkSession) Prefetch(key uint64) (bool, error)        { return se.s.Prefetch(key) }
func (se fkSession) Close()                                   { se.s.Close() }
