package kv

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/lsm"
)

func openShardSet(t *testing.T, shards, vs int) Store {
	return openShardSetBound(t, shards, vs, -1)
}

func openShardSetBound(t *testing.T, shards, vs int, bound int64) Store {
	t.Helper()
	set := make([]*faster.Store, shards)
	for i := range set {
		st, err := faster.Open(faster.Config{
			Dir: t.TempDir(), ValueSize: vs, RecordsPerPage: 64,
			MemPages: 8, MutablePages: 3, StalenessBound: bound,
		})
		if err != nil {
			t.Fatal(err)
		}
		set[i] = st
	}
	return WrapFasterShards(set, "sharded")
}

// TestBatchHelpers drives SessionGetBatch/SessionPutBatch over both the
// native sharded path and the per-key fallback (LSM), asserting identical
// observable behavior: values round-trip, missing keys report found=false
// with zeroed slots, deletes are visible to batch reads.
func TestBatchHelpers(t *testing.T) {
	const vs = 16
	stores := map[string]Store{"sharded": openShardSet(t, 4, vs)}
	ls, err := lsm.Open(lsm.Config{Dir: t.TempDir(), ValueSize: vs, MemtableBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	stores["lsm-fallback"] = WrapLSM(ls)

	for name, store := range stores {
		t.Run(name, func(t *testing.T) {
			defer store.Close()
			s, err := store.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			const n = 300 // above batchFanoutMin so the fan-out path runs
			keys := make([]uint64, n)
			vals := make([]byte, n*vs)
			for i := range keys {
				keys[i] = uint64(i * 7)
				for j := 0; j < vs; j++ {
					vals[i*vs+j] = byte(i + j)
				}
			}
			if err := SessionPutBatch(s, vs, keys, vals); err != nil {
				t.Fatal(err)
			}

			got := make([]byte, n*vs)
			found := make([]bool, n)
			if err := SessionGetBatch(s, vs, keys, got, found); err != nil {
				t.Fatal(err)
			}
			for i := range keys {
				if !found[i] {
					t.Fatalf("key %d missing", keys[i])
				}
			}
			if !bytes.Equal(got, vals) {
				t.Fatal("batch values differ from what was written")
			}

			// Deleted and never-written keys: found=false, zeroed slots.
			if err := s.Delete(keys[3]); err != nil {
				t.Fatal(err)
			}
			probe := []uint64{keys[3], 1<<60 + 9, keys[4]}
			pv := bytes.Repeat([]byte{0xee}, len(probe)*vs) // dirt the buffer
			pf := make([]bool, len(probe))
			if err := SessionGetBatch(s, vs, probe, pv, pf); err != nil {
				t.Fatal(err)
			}
			if pf[0] || pf[1] || !pf[2] {
				t.Fatalf("found = %v, want [false false true]", pf)
			}
			for i := 0; i < 2*vs; i++ {
				if pv[i] != 0 {
					t.Fatalf("missing key slot not zeroed at byte %d", i)
				}
			}

			// Size validation.
			if err := SessionGetBatch(s, vs, keys, got[:1], found); err == nil {
				t.Fatal("undersized vals accepted")
			}
			if err := SessionPutBatch(s, vs, keys, vals[:1]); err == nil {
				t.Fatal("undersized vals accepted")
			}
		})
	}
}

// TestSessionPeekAndLookahead drives the optional Peek/Lookahead seams
// over a store that implements them natively (sharded FASTER) and one
// that relies on the helpers' fallbacks (LSM).
func TestSessionPeekAndLookahead(t *testing.T) {
	const vs = 8
	stores := map[string]Store{"sharded": openShardSet(t, 4, vs)}
	ls, err := lsm.Open(lsm.Config{Dir: t.TempDir(), ValueSize: vs, MemtableBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	stores["lsm-fallback"] = WrapLSM(ls)

	for name, store := range stores {
		t.Run(name, func(t *testing.T) {
			defer store.Close()
			s, err := store.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			keys := []uint64{2, 40, 77, 1 << 33}
			val := make([]byte, vs)
			for _, k := range keys {
				for i := range val {
					val[i] = byte(k) + byte(i)
				}
				if err := s.Put(k, val); err != nil {
					t.Fatal(err)
				}
			}
			got := make([]byte, vs)
			for _, k := range keys {
				found, err := SessionPeek(s, k, got)
				if err != nil || !found {
					t.Fatalf("peek %d: found=%v err=%v", k, found, err)
				}
				if got[0] != byte(k) {
					t.Fatalf("peek %d read %d", k, got[0])
				}
			}
			if found, err := SessionPeek(s, 0xdead_beef, got); err != nil || found {
				t.Fatalf("peek of missing key: found=%v err=%v", found, err)
			}
			if _, err := SessionLookahead(s, keys); err != nil {
				t.Fatalf("lookahead: %v", err)
			}
		})
	}
}

// TestShardedBatchBlockingBoundSerial covers the GetBatch ordering gate:
// under BSP (bound 0) the sharded adapter must run batches serially in
// caller order, and a balanced get-then-put loop must make progress.
func TestShardedBatchBlockingBoundSerial(t *testing.T) {
	const vs = 8
	store := openShardSetBound(t, 4, vs, 0)
	defer store.Close()
	s, err := store.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 64 // above batchFanoutMin: without the gate this would fan out
	keys := make([]uint64, n)
	vals := make([]byte, n*vs)
	for i := range keys {
		keys[i] = uint64(i * 3)
		vals[i*vs] = byte(i)
	}
	if err := SessionPutBatch(s, vs, keys, vals); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, n*vs)
	found := make([]bool, n)
	for round := 0; round < 3; round++ {
		if err := SessionGetBatch(s, vs, keys, got, found); err != nil {
			t.Fatal(err)
		}
		for i := range keys {
			if !found[i] || got[i*vs] != byte(i) {
				t.Fatalf("round %d key %d: found=%v val=%d", round, keys[i], found[i], got[i*vs])
			}
		}
		// Release the tokens the clocked reads acquired.
		if err := SessionPutBatch(s, vs, keys, got); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedBatchConcurrent exercises the parallel fan-out from many
// sessions at once (meaningful under -race).
func TestShardedBatchConcurrent(t *testing.T) {
	const vs, workers, batch = 8, 4, 64
	store := openShardSet(t, 4, vs)
	defer store.Close()
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := store.NewSession()
			if err != nil {
				errCh <- err
				return
			}
			defer s.Close()
			keys := make([]uint64, batch)
			vals := make([]byte, batch*vs)
			for i := range keys {
				keys[i] = uint64(w*batch + i)
				vals[i*vs] = byte(w)
			}
			for round := 0; round < 20; round++ {
				if err := SessionPutBatch(s, vs, keys, vals); err != nil {
					errCh <- err
					return
				}
				got := make([]byte, batch*vs)
				found := make([]bool, batch)
				if err := SessionGetBatch(s, vs, keys, got, found); err != nil {
					errCh <- err
					return
				}
				for i := range keys {
					if !found[i] || got[i*vs] != byte(w) {
						errCh <- fmt.Errorf("worker %d round %d: key %d found=%v val=%d",
							w, round, keys[i], found[i], got[i*vs])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
}
