package kv

import (
	"bytes"
	"testing"

	"github.com/llm-db/mlkv-go/internal/faster"
)

// openCachedPair opens one sharded FASTER store raw and one wrapped in
// the hot tier, both under the given bound.
func openCachedPair(t *testing.T, bound int64, entries int) (raw, cached Store) {
	t.Helper()
	open := func(dir string) Store {
		st, err := OpenFasterShards(ShardedConfig{
			Dir: dir, Shards: 2, ValueSize: 16, RecordsPerPage: 64,
			MemoryBytes: 1 << 20, ExpectedKeys: 1 << 10, StalenessBound: bound,
		}, "mlkv")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		return st
	}
	raw = open(t.TempDir())
	cached = WrapCached(open(t.TempDir()), entries)
	return raw, cached
}

// TestCachedStoreEquivalence drives an identical operation sequence
// through a raw store and a hot-tier-wrapped one and requires identical
// observable results — the cache must be invisible except for speed.
func TestCachedStoreEquivalence(t *testing.T) {
	raw, cached := openCachedPair(t, faster.BoundAsync, 256)
	rs, err := raw.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	cs, err := cached.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	val := func(k uint64, gen byte) []byte {
		v := make([]byte, 16)
		for i := range v {
			v[i] = byte(k) + gen
		}
		return v
	}
	for k := uint64(1); k <= 64; k++ {
		if err := rs.Put(k, val(k, 0)); err != nil {
			t.Fatal(err)
		}
		if err := cs.Put(k, val(k, 0)); err != nil {
			t.Fatal(err)
		}
	}
	a, b := make([]byte, 16), make([]byte, 16)
	for round := 0; round < 3; round++ {
		for k := uint64(1); k <= 64; k++ {
			fa, erra := rs.Get(k, a)
			fb, errb := cs.Get(k, b)
			if erra != nil || errb != nil || fa != fb || !bytes.Equal(a, b) {
				t.Fatalf("round %d key %d diverged: %v/%v %v/%v", round, k, fa, fb, erra, errb)
			}
		}
		// Overwrite half the keys: write-through must keep reads fresh.
		for k := uint64(1); k <= 32; k++ {
			if err := rs.Put(k, val(k, byte(round+1))); err != nil {
				t.Fatal(err)
			}
			if err := cs.Put(k, val(k, byte(round+1))); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Delete invalidates.
	if err := rs.Delete(7); err != nil {
		t.Fatal(err)
	}
	if err := cs.Delete(7); err != nil {
		t.Fatal(err)
	}
	fa, _ := rs.Get(7, a)
	fb, _ := cs.Get(7, b)
	if fa || fb {
		t.Fatalf("deleted key found: raw=%v cached=%v", fa, fb)
	}
	if cr, ok := cached.(CacheStatsReporter); !ok {
		t.Fatal("cached store does not report cache stats")
	} else if cr.CacheStats().Hits == 0 {
		t.Fatal("no reads were served from the tier")
	}
}

// TestCachedStoreBatchPartialHits pins the sweep/compact/scatter path:
// a batch where some keys are tier-resident, some engine-resident, and
// some absent must land every value and found flag in the right slot.
func TestCachedStoreBatchPartialHits(t *testing.T) {
	_, cached := openCachedPair(t, faster.BoundAsync, 256)
	s, err := cached.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	v := make([]byte, 16)
	// Keys 1..12 are tier-resident via write-through; 100/101 are absent,
	// so the batch mixes tier hits with engine misses and the compacted
	// engine read must scatter back to the right slots.
	for k := uint64(1); k <= 12; k++ {
		for i := range v {
			v[i] = byte(k)
		}
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	keys := []uint64{3, 100, 7, 101, 12, 1}
	vals := make([]byte, len(keys)*16)
	found := make([]bool, len(keys))
	if err := SessionGetBatch(s, 16, keys, vals, found); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		slot := vals[i*16 : (i+1)*16]
		if k >= 100 {
			if found[i] {
				t.Fatalf("absent key %d reported found", k)
			}
			for _, bv := range slot {
				if bv != 0 {
					t.Fatalf("absent key %d slot not zeroed: %v", k, slot)
				}
			}
			continue
		}
		if !found[i] {
			t.Fatalf("present key %d reported missing", k)
		}
		if slot[0] != byte(k) {
			t.Fatalf("key %d got value %d (misrouted scatter)", k, slot[0])
		}
	}
}

// TestCachedStoreBSPBypasses pins the consistency rule at the kv layer:
// under BSP (bound 0) the tier must never serve a read.
func TestCachedStoreBSPBypasses(t *testing.T) {
	_, cached := openCachedPair(t, 0, 256)
	s, err := cached.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	v := make([]byte, 16)
	for k := uint64(1); k <= 8; k++ {
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(k, v); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(k, v); err != nil { // balance the clocked read
			t.Fatal(err)
		}
	}
	if hits := cached.(CacheStatsReporter).CacheStats().Hits; hits != 0 {
		t.Fatalf("BSP served %d reads from the tier", hits)
	}
}
