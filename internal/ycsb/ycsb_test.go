package ycsb

import (
	"testing"
	"time"

	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
)

func fasterStore(t *testing.T, bound int64) kv.Store {
	t.Helper()
	st, err := faster.Open(faster.Config{
		Dir: t.TempDir(), ValueSize: 64, RecordsPerPage: 256,
		MemPages: 16, MutablePages: 6, StalenessBound: bound,
		ExpectedKeys: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	name := "faster"
	if bound >= 0 {
		name = "mlkv"
	}
	s := kv.WrapFaster(st, name)
	t.Cleanup(func() { s.Close() })
	return s
}

func TestYCSBUniform(t *testing.T) {
	res, err := Run(Options{
		Store: fasterStore(t, -1), Records: 5000, Threads: 4,
		ReadFraction: 0.5, Dist: Uniform, MaxOps: 20000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops < 20000 {
		t.Fatalf("ran %d ops, want >= 20000", res.Ops)
	}
	if res.NotFound > 0 {
		t.Fatalf("%d reads missed despite full preload", res.NotFound)
	}
	if res.Reads == 0 || res.Updates == 0 {
		t.Fatal("mix not exercised")
	}
	frac := float64(res.Reads) / float64(res.Reads+res.Updates)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("read fraction %.3f, want ~0.5", frac)
	}
}

func TestYCSBZipfian(t *testing.T) {
	// MLKV with ASP bound: vector clock maintained, never blocks — this is
	// the Figure 10 configuration measuring clock overhead.
	res, err := Run(Options{
		Store: fasterStore(t, faster.BoundAsync), Records: 5000, Threads: 4,
		ReadFraction: 0.5, Dist: Zipfian, MaxOps: 20000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops < 20000 {
		t.Fatalf("ran %d ops", res.Ops)
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput not measured")
	}
}

func TestYCSBSkipLoad(t *testing.T) {
	store := fasterStore(t, -1)
	if err := Load(store, 1000, 3); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{
		Store: store, Records: 1000, Threads: 2,
		ReadFraction: 1.0, Dist: Uniform, MaxOps: 5000, Seed: 3, SkipLoad: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NotFound > 0 {
		t.Fatalf("%d misses after explicit load", res.NotFound)
	}
	if res.Updates != 0 {
		t.Fatal("read-only run performed updates")
	}
}

// TestYCSBStops covers the graceful-interrupt path: closing Stop ends an
// otherwise unbounded run promptly with a usable partial result.
func TestYCSBStops(t *testing.T) {
	stop := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(stop)
	}()
	start := time.Now()
	res, err := Run(Options{
		Store: fasterStore(t, -1), Records: 2000, Threads: 4,
		ReadFraction: 0.5, Dist: Uniform, Seed: 4,
		Duration: time.Hour, Stop: stop,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stop took %s", elapsed)
	}
	if res.Ops == 0 {
		t.Fatal("no partial result survived the stop")
	}
}
