// Package ycsb implements the YCSB-style NoSQL benchmark the paper uses to
// isolate storage overhead from application code (§IV-E, Figure 10):
// a configurable read/update mix over uniform or zipfian key popularity,
// run by N concurrent client threads against any kv.Store.
package ycsb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/latency"
	"github.com/llm-db/mlkv-go/internal/util"
)

// Distribution selects the request popularity distribution.
type Distribution int

const (
	// Uniform draws keys uniformly.
	Uniform Distribution = iota
	// Zipfian draws keys with YCSB's scrambled-zipfian skew (θ = 0.99).
	Zipfian
)

// String names the distribution for benchmark output.
func (d Distribution) String() string {
	if d == Zipfian {
		return "zipfian"
	}
	return "uniform"
}

// Options configures a workload run.
type Options struct {
	Store        kv.Store
	Records      uint64 // key space (loaded before the run)
	Threads      int
	ReadFraction float64 // 0.5 = YCSB-A
	Dist         Distribution
	Duration     time.Duration
	MaxOps       int64 // optional cap (0 = duration-bound)
	Seed         uint64
	SkipLoad     bool // reuse a pre-loaded store
	// Stop, when non-nil, ends the run early once closed: a load phase in
	// progress stops at the next batch (Run returns ErrLoadInterrupted),
	// and running workers finish their current operation and Run returns
	// the partial result. Used for graceful SIGINT/SIGTERM handling.
	Stop <-chan struct{}
}

// Result summarizes a run.
type Result struct {
	Ops        int64
	Reads      int64
	Updates    int64
	NotFound   int64
	Elapsed    time.Duration
	Throughput float64 // ops/s
	// Per-op-class latency distributions recorded across every thread
	// (nanoseconds): reads, updates, and the two merged. On a graceful
	// early stop they cover the partial run, like the counters above.
	ReadLat   latency.Snapshot
	UpdateLat latency.Snapshot
	OpLat     latency.Snapshot
}

// loadBatch is the load phase's batch granularity: large enough that a
// sharded store fans out and a remote store amortizes round trips, small
// enough to stay well under the wire protocol's per-frame key limit.
const loadBatch = 1024

// ErrLoadInterrupted reports a load phase cut short by a stop signal.
var ErrLoadInterrupted = errors.New("ycsb: load interrupted")

// Load populates keys [0, Records) with deterministic values, in batches
// so sharded stores fan the writes out and remote stores ship one frame
// per batch instead of one round trip per key.
func Load(store kv.Store, records uint64, seed uint64) error {
	return load(store, records, seed, nil)
}

// load is Load plus a stop channel checked between batches, so a
// multi-minute preload answers an interrupt promptly.
func load(store kv.Store, records uint64, seed uint64, stop <-chan struct{}) error {
	s, err := store.NewSession()
	if err != nil {
		return err
	}
	defer s.Close()
	vs := store.ValueSize()
	keys := make([]uint64, 0, loadBatch)
	vals := make([]byte, 0, loadBatch*vs)
	for k := uint64(0); k < records; k++ {
		keys = append(keys, k)
		vals = vals[:len(vals)+vs]
		fillValue(vals[len(vals)-vs:], k, seed)
		if len(keys) == loadBatch || k == records-1 {
			if err := kv.SessionPutBatch(s, vs, keys, vals); err != nil {
				return fmt.Errorf("ycsb: load keys %d..%d: %w", keys[0], k, err)
			}
			keys, vals = keys[:0], vals[:0]
			select {
			case <-stop:
				return fmt.Errorf("%w after %d of %d records", ErrLoadInterrupted, k+1, records)
			default:
			}
		}
	}
	return nil
}

func fillValue(buf []byte, key, seed uint64) {
	r := util.NewRNG(key ^ seed)
	for i := range buf {
		buf[i] = byte(r.Uint64())
	}
}

// Run executes the workload and reports throughput.
func Run(opts Options) (*Result, error) {
	if opts.Threads == 0 {
		opts.Threads = 4
	}
	if opts.ReadFraction == 0 {
		opts.ReadFraction = 0.5
	}
	if opts.Records == 0 {
		opts.Records = 100000
	}
	if !opts.SkipLoad {
		if err := load(opts.Store, opts.Records, opts.Seed, opts.Stop); err != nil {
			return nil, err
		}
	}
	res := &Result{}
	var readLat, updateLat latency.Histogram
	var ops, reads, updates, notFound atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, opts.Threads)
	start := time.Now()
	for th := 0; th < opts.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			s, err := opts.Store.NewSession()
			if err != nil {
				errCh <- err
				return
			}
			defer s.Close()
			r := util.NewRNG(opts.Seed + uint64(th)*104729 + 1)
			var zipf *util.ScrambledZipf
			if opts.Dist == Zipfian {
				zipf = util.NewScrambledZipf(r.Split(), opts.Records, 0.99)
			}
			vs := opts.Store.ValueSize()
			buf := make([]byte, vs)
			for i := 0; ; i++ {
				if i%256 == 0 {
					select {
					case <-stop:
						return
					case <-opts.Stop: // nil when unset: never ready
						safeClose(stop)
						return
					default:
					}
					if opts.Duration > 0 && time.Since(start) >= opts.Duration {
						safeClose(stop)
						return
					}
				}
				var key uint64
				if zipf != nil {
					key = zipf.Next()
				} else {
					key = r.Uint64n(opts.Records)
				}
				if r.Float64() < opts.ReadFraction {
					opStart := time.Now()
					found, err := s.Get(key, buf)
					readLat.Since(opStart)
					if err != nil {
						errCh <- err
						return
					}
					if !found {
						notFound.Add(1)
					}
					reads.Add(1)
				} else {
					fillValue(buf, key, opts.Seed+uint64(i))
					opStart := time.Now()
					err := s.Put(key, buf)
					updateLat.Since(opStart)
					if err != nil {
						errCh <- err
						return
					}
					updates.Add(1)
				}
				if n := ops.Add(1); opts.MaxOps > 0 && n >= opts.MaxOps {
					safeClose(stop)
					return
				}
			}
		}(th)
	}
	wg.Wait()
	safeClose(stop)
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	res.Ops = ops.Load()
	res.Reads = reads.Load()
	res.Updates = updates.Load()
	res.NotFound = notFound.Load()
	res.Elapsed = time.Since(start)
	res.Throughput = float64(res.Ops) / res.Elapsed.Seconds()
	res.ReadLat = readLat.Snapshot()
	res.UpdateLat = updateLat.Snapshot()
	var all latency.Histogram
	all.Merge(&readLat)
	all.Merge(&updateLat)
	res.OpLat = all.Snapshot()
	return res, nil
}

func safeClose(ch chan struct{}) {
	defer func() { recover() }()
	close(ch)
}
