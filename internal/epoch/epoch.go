// Package epoch implements epoch-based protection in the style of the FASTER
// key-value store. Threads of execution (sessions) declare when they are
// operating on shared, latch-free structures; maintenance work that would
// invalidate concurrent readers (recycling a log page frame, resizing an
// index) is deferred with BumpWith and executed only once every protected
// session has observed the new epoch — i.e., once no reader can still hold a
// reference acquired before the bump.
package epoch

import (
	"math"
	"sync"
	"sync/atomic"
)

const unprotected = 0

// Manager tracks the global epoch, per-session protection marks, and the
// drain list of deferred actions.
type Manager struct {
	current atomic.Uint64

	slots []slot

	mu      sync.Mutex
	free    []int     // indices of unregistered slots
	pending []trigger // actions awaiting safety, ordered by epoch
}

// slot is padded to a cache line so sessions on different cores do not
// false-share their protection marks.
type slot struct {
	epoch atomic.Uint64 // 0 = unprotected; otherwise the observed epoch
	_     [7]uint64
}

type trigger struct {
	epoch  uint64
	action func()
}

// NewManager returns a Manager that can serve up to maxSessions concurrent
// sessions. The first epoch is 1 so that 0 can mean "unprotected".
func NewManager(maxSessions int) *Manager {
	if maxSessions <= 0 {
		maxSessions = 64
	}
	m := &Manager{slots: make([]slot, maxSessions)}
	m.current.Store(1)
	m.free = make([]int, maxSessions)
	for i := range m.free {
		m.free[i] = i
	}
	return m
}

// Current returns the current global epoch.
func (m *Manager) Current() uint64 { return m.current.Load() }

// Session is one registered participant. A Session is not safe for
// concurrent use; each goroutine must register its own.
type Session struct {
	m    *Manager
	slot int
}

// Register claims a session slot. It returns nil if all slots are taken.
func (m *Manager) Register() *Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.free) == 0 {
		return nil
	}
	i := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	return &Session{m: m, slot: i}
}

// Unregister releases the session's slot. The session must be unprotected.
func (s *Session) Unregister() {
	s.m.slots[s.slot].epoch.Store(unprotected)
	s.m.mu.Lock()
	s.m.free = append(s.m.free, s.slot)
	s.m.mu.Unlock()
	s.m.tryDrain()
}

// Protect marks the session as operating at the current epoch. Calls may
// nest with Refresh; a protected session blocks deferred actions queued at
// later epochs.
func (s *Session) Protect() {
	s.m.slots[s.slot].epoch.Store(s.m.current.Load())
}

// Refresh re-reads the global epoch (allowing deferred actions queued before
// the session's previous mark to become safe) and opportunistically drains.
func (s *Session) Refresh() {
	s.m.slots[s.slot].epoch.Store(s.m.current.Load())
	s.m.tryDrain()
}

// Unprotect marks the session idle and opportunistically drains.
func (s *Session) Unprotect() {
	s.m.slots[s.slot].epoch.Store(unprotected)
	s.m.tryDrain()
}

// Protected reports whether the session currently holds protection.
func (s *Session) Protected() bool {
	return s.m.slots[s.slot].epoch.Load() != unprotected
}

// BumpWith advances the global epoch and schedules action to run as soon as
// every session protected before the bump has refreshed or unprotected.
// The action may run synchronously on this call if nothing is protected.
func (m *Manager) BumpWith(action func()) {
	e := m.current.Add(1)
	m.mu.Lock()
	m.pending = append(m.pending, trigger{epoch: e, action: action})
	m.mu.Unlock()
	m.tryDrain()
}

// Bump advances the global epoch with no deferred action.
func (m *Manager) Bump() { m.current.Add(1) }

// SafeEpoch returns the largest epoch E such that every protected session
// has observed an epoch >= E. Actions queued at epochs <= SafeEpoch may run.
func (m *Manager) SafeEpoch() uint64 {
	safe := uint64(math.MaxUint64)
	for i := range m.slots {
		if e := m.slots[i].epoch.Load(); e != unprotected && e < safe {
			safe = e
		}
	}
	if safe == math.MaxUint64 {
		return m.current.Load()
	}
	return safe
}

// tryDrain runs every pending action whose epoch has become safe. Actions
// run outside the manager lock, in epoch order.
func (m *Manager) tryDrain() {
	m.mu.Lock()
	if len(m.pending) == 0 {
		m.mu.Unlock()
		return
	}
	safe := m.SafeEpoch()
	var ready []trigger
	rest := m.pending[:0]
	for _, t := range m.pending {
		if t.epoch <= safe {
			ready = append(ready, t)
		} else {
			rest = append(rest, t)
		}
	}
	m.pending = rest
	m.mu.Unlock()
	for _, t := range ready {
		t.action()
	}
}

// Drain blocks logically until all currently pending actions have run, by
// repeatedly attempting the drain. It must only be called from an
// unprotected context, otherwise the caller deadlocks against itself.
func (m *Manager) Drain() {
	for {
		m.tryDrain()
		m.mu.Lock()
		n := len(m.pending)
		m.mu.Unlock()
		if n == 0 {
			return
		}
	}
}
