package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestBumpWithNoSessionsRunsImmediately(t *testing.T) {
	m := NewManager(4)
	ran := false
	m.BumpWith(func() { ran = true })
	if !ran {
		t.Fatal("action should run immediately with no protected sessions")
	}
}

func TestActionDeferredUntilRefresh(t *testing.T) {
	m := NewManager(4)
	s := m.Register()
	s.Protect()

	var ran atomic.Bool
	m.BumpWith(func() { ran.Store(true) })
	if ran.Load() {
		t.Fatal("action ran while a stale session was protected")
	}
	s.Refresh() // session observes the new epoch; action becomes safe
	if !ran.Load() {
		t.Fatal("action did not run after the protected session refreshed")
	}
	s.Unprotect()
	s.Unregister()
}

func TestActionDeferredUntilUnprotect(t *testing.T) {
	m := NewManager(4)
	s := m.Register()
	s.Protect()
	var ran atomic.Bool
	m.BumpWith(func() { ran.Store(true) })
	if ran.Load() {
		t.Fatal("action ran too early")
	}
	s.Unprotect()
	if !ran.Load() {
		t.Fatal("action did not run after unprotect")
	}
	s.Unregister()
}

func TestMultipleSessionsAllMustAdvance(t *testing.T) {
	m := NewManager(4)
	s1 := m.Register()
	s2 := m.Register()
	s1.Protect()
	s2.Protect()

	var ran atomic.Bool
	m.BumpWith(func() { ran.Store(true) })
	s1.Refresh()
	if ran.Load() {
		t.Fatal("action ran before all sessions advanced")
	}
	s2.Refresh()
	if !ran.Load() {
		t.Fatal("action did not run after all sessions advanced")
	}
	s1.Unprotect()
	s2.Unprotect()
	s1.Unregister()
	s2.Unregister()
}

func TestActionsRunInEpochOrder(t *testing.T) {
	m := NewManager(4)
	s := m.Register()
	s.Protect()
	var order []int
	var mu sync.Mutex
	for i := 0; i < 5; i++ {
		i := i
		m.BumpWith(func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	s.Unprotect()
	m.Drain()
	if len(order) != 5 {
		t.Fatalf("got %d actions, want 5", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("actions out of order: %v", order)
		}
	}
	s.Unregister()
}

func TestRegisterExhaustion(t *testing.T) {
	m := NewManager(2)
	a := m.Register()
	b := m.Register()
	if a == nil || b == nil {
		t.Fatal("expected two successful registrations")
	}
	if c := m.Register(); c != nil {
		t.Fatal("third registration should fail")
	}
	a.Unregister()
	if c := m.Register(); c == nil {
		t.Fatal("slot should be reusable after unregister")
	}
	_ = b
}

func TestSafeEpoch(t *testing.T) {
	m := NewManager(4)
	if m.SafeEpoch() != m.Current() {
		t.Fatal("safe epoch should equal current with no sessions")
	}
	s := m.Register()
	s.Protect()
	e0 := m.Current()
	m.Bump()
	m.Bump()
	if got := m.SafeEpoch(); got != e0 {
		t.Fatalf("SafeEpoch = %d, want %d (the stale session's mark)", got, e0)
	}
	s.Refresh()
	if got := m.SafeEpoch(); got != m.Current() {
		t.Fatalf("SafeEpoch = %d, want current %d", got, m.Current())
	}
	s.Unprotect()
	s.Unregister()
}

func TestConcurrentProtectRefreshStress(t *testing.T) {
	m := NewManager(16)
	const workers = 8
	const iters = 2000
	var executed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			s := m.Register()
			if s == nil {
				t.Error("registration failed")
				return
			}
			defer s.Unregister()
			for i := 0; i < iters; i++ {
				s.Protect()
				if i%7 == 0 {
					m.BumpWith(func() { executed.Add(1) })
				}
				s.Refresh()
				s.Unprotect()
			}
		}(w)
	}
	wg.Wait()
	m.Drain()
	want := int64(workers * ((iters + 6) / 7))
	if executed.Load() != want {
		t.Fatalf("executed %d actions, want %d", executed.Load(), want)
	}
}

func TestProtectedFlag(t *testing.T) {
	m := NewManager(2)
	s := m.Register()
	if s.Protected() {
		t.Fatal("fresh session should be unprotected")
	}
	s.Protect()
	if !s.Protected() {
		t.Fatal("session should report protected")
	}
	s.Unprotect()
	if s.Protected() {
		t.Fatal("session should report unprotected")
	}
	s.Unregister()
}
