package faster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"github.com/llm-db/mlkv-go/internal/util"
)

// Checkpointing: the paper's deployments periodically checkpoint the local
// NVMe-resident log to durable storage (§II-B, "Heterogeneous Storage").
// Here a checkpoint is (1) flushing every allocated page to the log file and
// (2) atomically writing a metadata file recording the durable tail, from
// which the index is rebuilt by a forward scan on recovery.

const (
	metaMagic   = uint64(0x4d4c4b56464b5631) // "MLKVFKV1"
	metaFile    = "CHECKPOINT"
	metaTmpFile = "CHECKPOINT.tmp"
	metaSize    = 8 + 8 + 8 + 4 // magic | tailAddr | valueSize | crc
)

// Checkpoint makes the current store contents durable. The caller must
// guarantee no operations are in flight (e.g., at an epoch barrier between
// training batches).
func (st *Store) Checkpoint() error {
	st.em.Drain()
	if err := st.log.flushAll(); err != nil {
		return err
	}
	buf := make([]byte, metaSize)
	binary.LittleEndian.PutUint64(buf[0:], metaMagic)
	binary.LittleEndian.PutUint64(buf[8:], st.log.nextAddr.Load())
	binary.LittleEndian.PutUint64(buf[16:], uint64(st.cfg.ValueSize))
	crc := crc32.ChecksumIEEE(buf[:24])
	binary.LittleEndian.PutUint32(buf[24:], crc)
	tmp := filepath.Join(st.cfg.Dir, metaTmpFile)
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("faster: write checkpoint: %w", err)
	}
	return os.Rename(tmp, filepath.Join(st.cfg.Dir, metaFile))
}

// ErrCorruptCheckpoint indicates a damaged or torn checkpoint file.
var ErrCorruptCheckpoint = errors.New("faster: corrupt checkpoint metadata")

// maybeRecover rebuilds the index from the log if a checkpoint exists.
func (st *Store) maybeRecover() error {
	buf, err := os.ReadFile(filepath.Join(st.cfg.Dir, metaFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(buf) != metaSize {
		return ErrCorruptCheckpoint
	}
	if binary.LittleEndian.Uint64(buf) != metaMagic {
		return ErrCorruptCheckpoint
	}
	if crc32.ChecksumIEEE(buf[:24]) != binary.LittleEndian.Uint32(buf[24:]) {
		return ErrCorruptCheckpoint
	}
	tail := binary.LittleEndian.Uint64(buf[8:])
	vs := binary.LittleEndian.Uint64(buf[16:])
	if int(vs) != st.cfg.ValueSize {
		return fmt.Errorf("faster: checkpoint ValueSize %d != configured %d", vs, st.cfg.ValueSize)
	}
	return st.recover(tail)
}

// recover scans records [1, tail) in address order and re-establishes the
// index so that each hash chain's head is its newest record, exactly as it
// was at checkpoint time. The in-memory log restarts on a fresh page past
// the durable region: recovered records are all disk-resident and will be
// copied forward on first touch.
func (st *Store) recover(tail uint64) error {
	rec := make([]byte, st.log.recSize)
	for addr := uint64(1); addr < tail; addr++ {
		if _, err := st.log.file.ReadAt(rec, int64(addr)*int64(st.log.recSize)); err != nil {
			return fmt.Errorf("faster: recovery read at %d: %w", addr, err)
		}
		key := binary.LittleEndian.Uint64(rec[8:])
		hdr := binary.LittleEndian.Uint64(rec)
		if hdr == 0 && key == 0 && binary.LittleEndian.Uint64(rec[16:]) == 0 && allZero(rec[24:]) {
			// Unallocated slot: the gap between a previous checkpoint's tail
			// and the page boundary allocation resumed at. A genuine first
			// record of key 0 also has hdr 0 and no predecessor, so only an
			// entirely zero record (value included) is treated as a gap —
			// the one casualty is an all-zero embedding for key 0, which
			// recovers as absent-and-reinitialized-to-zeros.
			continue
		}
		hash := hashOfKey(key)
		entry := st.ix.findOrCreate(hash)
		// Later records supersede earlier ones; a plain store is correct
		// because recovery is single-threaded.
		entry.Store(packEntry(tagOf(hash), addr))
	}
	// Resume allocation on the page after the durable tail, leaving all
	// recovered data in the disk region. The first allocator lands on slot 0
	// of that page and materializes it through the normal openPage path.
	lastPage := st.log.pageOf(tail - 1)
	start := uint64(lastPage+1) << st.log.pageShift
	st.log.nextAddr.Store(start)
	st.log.headAddr.Store(start)
	st.log.roAddr.Store(start)
	st.log.safeRoAddr.Store(start)
	st.log.flushMu.Lock()
	st.log.flushedPage = lastPage
	st.log.flushMu.Unlock()
	st.log.enqMu.Lock()
	st.log.frozenEnq = lastPage
	st.log.enqMu.Unlock()
	// Frame 0 was eagerly bound to page 0 at construction; after recovery
	// page 0 lives on disk, so unbind the frame.
	st.log.frames[0].holds.Store(-1)
	return nil
}

func hashOfKey(key uint64) uint64 {
	// Mirrors the hashing used by Session.findKey.
	return util.HashKey(key)
}

// allZero reports whether every byte of b is zero.
func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
