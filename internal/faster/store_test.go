package faster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"github.com/llm-db/mlkv-go/internal/util"
)

// testStore opens a tiny store whose in-memory window holds memPages pages
// of rpp records each, forcing eviction quickly.
func testStore(t *testing.T, valueSize, rpp, memPages, mutPages int, bound int64) *Store {
	t.Helper()
	st, err := Open(Config{
		Dir:            t.TempDir(),
		ValueSize:      valueSize,
		RecordsPerPage: rpp,
		MemPages:       memPages,
		MutablePages:   mutPages,
		StalenessBound: bound,
		ExpectedKeys:   1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func val(vs int, seed uint64) []byte {
	b := make([]byte, vs)
	r := util.NewRNG(seed)
	for i := range b {
		b[i] = byte(r.Uint64())
	}
	return b
}

func TestPutGetRoundTrip(t *testing.T) {
	st := testStore(t, 32, 64, 8, 2, -1)
	s, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for k := uint64(1); k <= 100; k++ {
		if err := s.Put(k, val(32, k)); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]byte, 32)
	for k := uint64(1); k <= 100; k++ {
		found, err := s.Get(k, dst)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("key %d not found", k)
		}
		if !bytes.Equal(dst, val(32, k)) {
			t.Fatalf("key %d value mismatch", k)
		}
	}
}

func TestGetMissing(t *testing.T) {
	st := testStore(t, 16, 64, 8, 2, -1)
	s, _ := st.NewSession()
	defer s.Close()
	dst := make([]byte, 16)
	found, err := s.Get(12345, dst)
	if err != nil || found {
		t.Fatalf("missing key: found=%v err=%v", found, err)
	}
}

func TestValueSizeValidation(t *testing.T) {
	st := testStore(t, 16, 64, 8, 2, -1)
	s, _ := st.NewSession()
	defer s.Close()
	if err := s.Put(1, make([]byte, 15)); err != ErrValueSize {
		t.Fatalf("Put wrong size: %v", err)
	}
	if _, err := s.Get(1, make([]byte, 17)); err != ErrValueSize {
		t.Fatalf("Get wrong size: %v", err)
	}
}

func TestOverwriteInPlace(t *testing.T) {
	st := testStore(t, 16, 64, 8, 2, -1)
	s, _ := st.NewSession()
	defer s.Close()
	if err := s.Put(7, val(16, 1)); err != nil {
		t.Fatal(err)
	}
	before := st.Stats()
	if err := s.Put(7, val(16, 2)); err != nil {
		t.Fatal(err)
	}
	after := st.Stats()
	if after.InPlaceUpdates-before.InPlaceUpdates != 1 {
		t.Fatalf("expected one in-place update, got %d", after.InPlaceUpdates-before.InPlaceUpdates)
	}
	dst := make([]byte, 16)
	if found, _ := s.Get(7, dst); !found || !bytes.Equal(dst, val(16, 2)) {
		t.Fatal("overwrite not visible")
	}
}

func TestDelete(t *testing.T) {
	st := testStore(t, 16, 64, 8, 2, -1)
	s, _ := st.NewSession()
	defer s.Close()
	s.Put(9, val(16, 9))
	if err := s.Delete(9); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 16)
	if found, _ := s.Get(9, dst); found {
		t.Fatal("deleted key still found")
	}
	// Re-insert after delete.
	s.Put(9, val(16, 10))
	if found, _ := s.Get(9, dst); !found || !bytes.Equal(dst, val(16, 10)) {
		t.Fatal("re-insert after delete failed")
	}
}

func TestDeleteMissingIsNoop(t *testing.T) {
	st := testStore(t, 16, 64, 8, 2, -1)
	s, _ := st.NewSession()
	defer s.Close()
	if err := s.Delete(404); err != nil {
		t.Fatal(err)
	}
}

func TestRMW(t *testing.T) {
	st := testStore(t, 8, 64, 8, 2, -1)
	s, _ := st.NewSession()
	defer s.Close()
	inc := func(cur []byte, exists bool) {
		v := binary.LittleEndian.Uint64(cur)
		binary.LittleEndian.PutUint64(cur, v+1)
	}
	for i := 0; i < 100; i++ {
		if err := s.RMW(1, inc); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]byte, 8)
	if found, _ := s.Get(1, dst); !found {
		t.Fatal("RMW key missing")
	}
	if v := binary.LittleEndian.Uint64(dst); v != 100 {
		t.Fatalf("RMW counter = %d, want 100", v)
	}
}

// TestEvictionToDisk writes far more records than fit in memory and checks
// everything remains readable (the cold path exercises disk reads).
func TestEvictionToDisk(t *testing.T) {
	const vs = 16
	st := testStore(t, vs, 32, 6, 2, -1)
	s, _ := st.NewSession()
	defer s.Close()

	const n = 2000 // 2000 records >> 6*32 = 192 in-memory slots
	for k := uint64(1); k <= n; k++ {
		if err := s.Put(k, val(vs, k)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Stats().FlushedPages == 0 {
		t.Fatal("expected pages to be flushed")
	}
	dst := make([]byte, vs)
	for k := uint64(1); k <= n; k++ {
		found, err := s.Get(k, dst)
		if err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
		if !found {
			t.Fatalf("key %d lost after eviction", k)
		}
		if !bytes.Equal(dst, val(vs, k)) {
			t.Fatalf("key %d corrupted after eviction", k)
		}
	}
	if st.Stats().DiskReads == 0 {
		t.Fatal("expected some reads to hit disk")
	}
}

// TestUpdateAfterEviction updates cold keys, forcing the RCU append path.
func TestUpdateAfterEviction(t *testing.T) {
	const vs = 16
	st := testStore(t, vs, 32, 6, 2, -1)
	s, _ := st.NewSession()
	defer s.Close()
	const n = 1000
	for k := uint64(1); k <= n; k++ {
		s.Put(k, val(vs, k))
	}
	// Key 1 is long evicted; updating it must append a fresh version.
	before := st.Stats()
	if err := s.Put(1, val(vs, 777)); err != nil {
		t.Fatal(err)
	}
	after := st.Stats()
	if after.RCUAppends-before.RCUAppends == 0 {
		t.Fatal("expected an RCU append for a cold key")
	}
	dst := make([]byte, vs)
	if found, _ := s.Get(1, dst); !found || !bytes.Equal(dst, val(vs, 777)) {
		t.Fatal("cold update lost")
	}
}

func TestPeekDoesNotCopyToTail(t *testing.T) {
	const vs = 16
	st := testStore(t, vs, 32, 6, 2, 4) // BSC enabled
	s, _ := st.NewSession()
	defer s.Close()
	const n = 1000
	for k := uint64(1); k <= n; k++ {
		s.Put(k, val(vs, k))
	}
	tail := st.TailAddr()
	dst := make([]byte, vs)
	if found, err := s.Peek(1, dst); err != nil || !found {
		t.Fatalf("peek: %v %v", found, err)
	}
	if !bytes.Equal(dst, val(vs, 1)) {
		t.Fatal("peek value mismatch")
	}
	if st.TailAddr() != tail {
		t.Fatal("Peek must not allocate")
	}
}

// TestStalenessProtocol drives the vector clock directly: with bound 0, a
// second Get on a key with an outstanding read must block until Put.
func TestStalenessGetIncrementsPutDecrements(t *testing.T) {
	const vs = 8
	st := testStore(t, vs, 64, 8, 2, 10)
	s, _ := st.NewSession()
	defer s.Close()
	s.Put(5, val(vs, 5)) // staleness 0 (fresh insert)
	dst := make([]byte, vs)
	for i := 0; i < 3; i++ {
		if found, _ := s.Get(5, dst); !found {
			t.Fatal("get failed")
		}
	}
	if stal := recordStaleness(t, st, s, 5); stal != 3 {
		t.Fatalf("staleness after 3 gets = %d, want 3", stal)
	}
	s.Put(5, val(vs, 6))
	if stal := recordStaleness(t, st, s, 5); stal != 2 {
		t.Fatalf("staleness after put = %d, want 2", stal)
	}
}

// recordStaleness inspects the header of key's newest version.
func recordStaleness(t *testing.T, st *Store, s *Session, key uint64) uint64 {
	t.Helper()
	s.es.Protect()
	defer s.es.Unprotect()
	hit, err := s.findKey(key, false)
	if err != nil {
		t.Fatal(err)
	}
	if hit.addr == InvalidAddr {
		t.Fatal("key missing")
	}
	if hit.reg == regionDisk {
		return Staleness(hit.diskRec.hdr)
	}
	return Staleness(hit.f.hdrs[hit.slot].Load())
}

func TestStalenessBoundBlocksGet(t *testing.T) {
	const vs = 8
	st := testStore(t, vs, 64, 8, 2, 1)
	s, _ := st.NewSession()
	defer s.Close()
	s.Put(5, val(vs, 5))
	dst := make([]byte, vs)
	s.Get(5, dst) // staleness 0 -> 1
	s.Get(5, dst) // staleness 1 == bound -> allowed -> 2

	// A third Get would exceed the bound; run it concurrently and release it
	// with a Put from this goroutine.
	done := make(chan struct{})
	go func() {
		s2, _ := st.NewSession()
		defer s2.Close()
		buf := make([]byte, vs)
		s2.Get(5, buf)
		close(done)
	}()
	// Wait until the reader has demonstrably hit the bound at least once.
	for st.Stats().StalenessWaits == 0 {
		select {
		case <-done:
			t.Fatal("Get should have blocked on the staleness bound")
		default:
		}
	}
	s.Put(5, val(vs, 6)) // staleness 2 -> 1, unblocking the reader
	<-done
}

func TestAsyncBoundNeverBlocks(t *testing.T) {
	const vs = 8
	st := testStore(t, vs, 64, 8, 2, BoundAsync)
	s, _ := st.NewSession()
	defer s.Close()
	s.Put(5, val(vs, 5))
	dst := make([]byte, vs)
	for i := 0; i < 1000; i++ {
		if found, _ := s.Get(5, dst); !found {
			t.Fatal("get failed")
		}
	}
	if stal := recordStaleness(t, st, s, 5); stal != 1000 {
		t.Fatalf("staleness = %d, want 1000", stal)
	}
}

func TestPrefetchCopiesDiskRecordToTail(t *testing.T) {
	const vs = 16
	st := testStore(t, vs, 32, 6, 2, 4)
	s, _ := st.NewSession()
	defer s.Close()
	const n = 1000
	for k := uint64(1); k <= n; k++ {
		s.Put(k, val(vs, k))
	}
	// Key 1 is on disk now.
	copied, err := s.Prefetch(1)
	if err != nil {
		t.Fatal(err)
	}
	if !copied {
		t.Fatal("expected prefetch to copy a disk-resident record")
	}
	// A second prefetch finds it in memory and does nothing.
	copied, _ = s.Prefetch(1)
	if copied {
		t.Fatal("prefetch should skip in-memory records")
	}
	// The subsequent Get must be served from memory.
	before := st.Stats()
	dst := make([]byte, vs)
	if found, _ := s.Get(1, dst); !found || !bytes.Equal(dst, val(vs, 1)) {
		t.Fatal("value wrong after prefetch")
	}
	after := st.Stats()
	if after.DiskReads != before.DiskReads {
		t.Fatal("Get after prefetch should not touch disk")
	}
}

func TestPrefetchMissingKey(t *testing.T) {
	st := testStore(t, 16, 32, 6, 2, 4)
	s, _ := st.NewSession()
	defer s.Close()
	if copied, err := s.Prefetch(999); err != nil || copied {
		t.Fatalf("prefetch of missing key: copied=%v err=%v", copied, err)
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	const vs = 16
	st := testStore(t, vs, 64, 10, 3, -1)
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := st.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			dst := make([]byte, vs)
			for i := 0; i < perWorker; i++ {
				k := uint64(w*perWorker + i + 1)
				if err := s.Put(k, val(vs, k)); err != nil {
					t.Error(err)
					return
				}
				if found, err := s.Get(k, dst); err != nil || !found {
					t.Errorf("key %d: found=%v err=%v", k, found, err)
					return
				}
				if !bytes.Equal(dst, val(vs, k)) {
					t.Errorf("key %d torn", k)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentRMWCounters hammers shared counters from many goroutines;
// the total must be exact (atomic read-modify-write, no lost updates).
func TestConcurrentRMWCounters(t *testing.T) {
	const vs = 8
	st := testStore(t, vs, 64, 10, 3, -1)
	const workers = 8
	const iters = 300
	const keys = 5
	inc := func(cur []byte, exists bool) {
		binary.LittleEndian.PutUint64(cur, binary.LittleEndian.Uint64(cur)+1)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			s, _ := st.NewSession()
			defer s.Close()
			r := util.NewRNG(uint64(seed))
			for i := 0; i < iters; i++ {
				if err := s.RMW(uint64(r.Uint64n(keys)+1), inc); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s, _ := st.NewSession()
	defer s.Close()
	total := uint64(0)
	dst := make([]byte, vs)
	for k := uint64(1); k <= keys; k++ {
		if found, _ := s.Get(k, dst); found {
			total += binary.LittleEndian.Uint64(dst)
		}
	}
	if total != workers*iters {
		t.Fatalf("lost updates: total = %d, want %d", total, workers*iters)
	}
}

// TestConcurrentEvictionStress mixes heavy writes (forcing page turnover)
// with reads across a hot/cold key split under the race detector.
func TestConcurrentEvictionStress(t *testing.T) {
	const vs = 16
	st := testStore(t, vs, 32, 6, 2, BoundAsync)
	const workers = 6
	const iters = 800
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			s, _ := st.NewSession()
			defer s.Close()
			r := util.NewRNG(uint64(seed) + 100)
			dst := make([]byte, vs)
			for i := 0; i < iters; i++ {
				k := r.Uint64n(500) + 1
				switch r.Uint64n(3) {
				case 0:
					if err := s.Put(k, val(vs, k)); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := s.Get(k, dst); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := s.Prefetch(k); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Every key that was ever written must still resolve to its seed value.
	s, _ := st.NewSession()
	defer s.Close()
	dst := make([]byte, vs)
	for k := uint64(1); k <= 500; k++ {
		found, err := s.Get(k, dst)
		if err != nil {
			t.Fatal(err)
		}
		if found && !bytes.Equal(dst, val(vs, k)) {
			t.Fatalf("key %d corrupted", k)
		}
	}
}

func TestSessionLimit(t *testing.T) {
	st, err := Open(Config{
		Dir: t.TempDir(), ValueSize: 8, RecordsPerPage: 16, MemPages: 4,
		MutablePages: 1, StalenessBound: -1, MaxSessions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	a, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.NewSession(); err == nil {
		t.Fatal("expected session limit error")
	}
	a.Close()
	if _, err := st.NewSession(); err != nil {
		t.Fatal("slot should be reusable")
	}
	_ = b
}

func TestConfigValidation(t *testing.T) {
	if _, err := Open(Config{Dir: t.TempDir(), ValueSize: 0}); err == nil {
		t.Fatal("ValueSize 0 should fail")
	}
	if _, err := Open(Config{Dir: t.TempDir(), ValueSize: 8, MemPages: 4, MutablePages: 4}); err == nil {
		t.Fatal("MutablePages == MemPages should fail")
	}
	if _, err := Open(Config{ValueSize: 8}); err == nil {
		t.Fatal("missing Dir should fail")
	}
	if _, err := Open(Config{Dir: t.TempDir(), ValueSize: 8, RecordsPerPage: 33}); err == nil {
		t.Fatal("non-power-of-two RecordsPerPage should fail")
	}
}

func TestSetStalenessBound(t *testing.T) {
	st := testStore(t, 8, 64, 8, 2, 0)
	if st.StalenessBound() != 0 {
		t.Fatal("initial bound")
	}
	st.SetStalenessBound(42)
	if st.StalenessBound() != 42 {
		t.Fatal("bound update")
	}
}

func TestManyTablesSimultaneously(t *testing.T) {
	// Multiple independent stores (one per embedding table) in one process.
	stores := make([]*Store, 4)
	for i := range stores {
		var err error
		stores[i], err = Open(Config{
			Dir: t.TempDir(), ValueSize: 8 * (i + 1), RecordsPerPage: 32,
			MemPages: 4, MutablePages: 1, StalenessBound: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer stores[i].Close()
	}
	for i, st := range stores {
		s, _ := st.NewSession()
		v := val(8*(i+1), uint64(i))
		if err := s.Put(1, v); err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, 8*(i+1))
		if found, _ := s.Get(1, dst); !found || !bytes.Equal(dst, v) {
			t.Fatalf("store %d: value mismatch", i)
		}
		s.Close()
	}
}

func ExampleStore() {
	st, _ := Open(Config{
		Dir:            "/tmp/faster-example",
		ValueSize:      8,
		StalenessBound: -1,
	})
	defer st.Close()
	s, _ := st.NewSession()
	defer s.Close()
	s.Put(1, []byte("8 bytes!"))
	dst := make([]byte, 8)
	s.Get(1, dst)
	fmt.Println(string(dst))
	// Output: 8 bytes!
}
