package faster

import (
	"encoding/binary"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/llm-db/mlkv-go/internal/epoch"
)

// logWriter is the write side of the log file. It is an interface so tests
// can inject a failing writer and exercise the flush-error path without
// touching the filesystem; production always uses the *os.File itself.
type logWriter interface {
	WriteAt(p []byte, off int64) (int, error)
	Sync() error
}

// maxGroupPages caps how many adjacent frozen pages one flush write may
// merge. The cap bounds the flusher's scratch buffer and keeps a single
// write from monopolizing the device for long bursts.
const maxGroupPages = 8

// hybridLog is FASTER's hybrid log: a logical address space of fixed-size
// records backed by a circular buffer of in-memory page frames and a single
// append-only file. Addresses partition into four regions:
//
//	[tail ......... roAddr)   mutable   — in-place updates allowed
//	[roAddr .. safeRoAddr)    fuzzy     — boundary is draining; ops retry
//	[safeRoAddr ..... head)   read-only — in-memory, immutable values
//	[head ............. 1]    disk      — positional reads from the file
//
// (Regions listed from the newest address down; roAddr >= safeRoAddr >=
// headAddr always holds.) Page frames recycle only after the page is flushed
// and an epoch drain guarantees no latch-free reader still holds a frame
// reference.
type hybridLog struct {
	valueSize int
	recSize   int // disk footprint per record
	rpp       int // records per page (power of two)
	pageShift uint
	pageMask  uint64
	memPages  int
	mutPages  int

	file *os.File
	w    logWriter // write seam (== file outside fault-injection tests)
	em   *epoch.Manager

	nextAddr   atomic.Uint64 // next record index to allocate
	roAddr     atomic.Uint64 // first mutable address
	safeRoAddr atomic.Uint64 // ro boundary all sessions have observed
	headAddr   atomic.Uint64 // first in-memory address

	frames []frame

	// Flush pipeline. frozenEnq tracks the highest page whose flush has been
	// enqueued; flushedPage is the contiguous flushed watermark.
	flushCh     chan int64
	enqMu       sync.Mutex
	frozenEnq   int64
	flushMu     sync.Mutex
	flushCond   *sync.Cond
	flushedPage int64
	flushErr    error
	flushDone   chan struct{}
	syncWrites  bool
	flushPace   time.Duration // minimum gap between flush writes (0 = none)

	frameMu   sync.Mutex
	frameCond *sync.Cond

	stats *Stats
}

// frame is one in-memory page. holds is the logical page number currently
// materialized: -1 while the frame awaits reset, pages are published by the
// initializing allocator after the previous occupant is flushed and drained.
type frame struct {
	holds atomic.Int64
	freed atomic.Bool // set by the epoch action that releases the old page
	hdrs  []atomic.Uint64
	keys  []uint64
	prevs []uint64
	vals  []byte
}

func newHybridLog(path string, valueSize, recsPerPage, memPages, mutPages int, syncWrites bool, flushPace time.Duration, em *epoch.Manager, stats *Stats) (*hybridLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("faster: open log: %w", err)
	}
	l := &hybridLog{
		valueSize:  valueSize,
		recSize:    diskRecSize(valueSize),
		rpp:        recsPerPage,
		memPages:   memPages,
		mutPages:   mutPages,
		file:       f,
		w:          f,
		em:         em,
		flushCh:    make(chan int64, 4*memPages),
		flushDone:  make(chan struct{}),
		syncWrites: syncWrites,
		flushPace:  flushPace,
		stats:      stats,
	}
	for s := uint(0); 1<<s < recsPerPage; s++ {
		l.pageShift = s + 1
	}
	if 1<<l.pageShift != recsPerPage {
		f.Close()
		return nil, fmt.Errorf("faster: RecordsPerPage %d is not a power of two", recsPerPage)
	}
	l.pageMask = uint64(recsPerPage - 1)
	l.frames = make([]frame, memPages)
	for i := range l.frames {
		l.frames[i].holds.Store(-1)
		l.frames[i].hdrs = make([]atomic.Uint64, recsPerPage)
		l.frames[i].keys = make([]uint64, recsPerPage)
		l.frames[i].prevs = make([]uint64, recsPerPage)
		l.frames[i].vals = make([]byte, recsPerPage*valueSize)
	}
	l.flushCond = sync.NewCond(&l.flushMu)
	l.frameCond = sync.NewCond(&l.frameMu)
	l.flushedPage = -1
	l.frozenEnq = -1

	// Address 0 is reserved as InvalidAddr; allocation starts at 1 within
	// page 0, which is materialized eagerly.
	l.nextAddr.Store(1)
	l.headAddr.Store(1)
	l.roAddr.Store(1)
	l.safeRoAddr.Store(1)
	l.frames[0].holds.Store(0)

	go l.flusher()
	return l, nil
}

func (l *hybridLog) pageOf(addr uint64) int64 { return int64(addr >> l.pageShift) }
func (l *hybridLog) slotOf(addr uint64) int   { return int(addr & l.pageMask) }

// frameFor returns the frame materializing page p. Callers must hold epoch
// protection and have verified the address is at or above headAddr.
func (l *hybridLog) frameFor(p int64) *frame {
	return &l.frames[int(p)%l.memPages]
}

// allocate reserves one record slot and returns its address. The calling
// session must be protected; allocate may Refresh the session while waiting
// on page turnover, so callers must not hold frame references across it.
// It fails (instead of blocking forever) once a background flush has
// failed: no further page can ever be recycled, so the append side of the
// log is permanently down and every caller must see the error.
func (l *hybridLog) allocate(s *epoch.Session) (uint64, error) {
	addr := l.nextAddr.Add(1) - 1
	p := l.pageOf(addr)
	if l.slotOf(addr) == 0 {
		if err := l.openPage(p, s); err != nil {
			return 0, err
		}
	} else if err := l.waitPageReady(p, s); err != nil {
		return 0, err
	}
	return addr, nil
}

// openPage is run by the allocator that received the first slot of page p.
// It freezes pages that leave the mutable window, waits for the frame's
// previous occupant to be flushed and epoch-released, resets the frame, and
// publishes it.
func (l *hybridLog) openPage(p int64, s *epoch.Session) error {
	// 1. Advance the read-only boundary so the mutable window ends at p.
	if frozen := p - int64(l.mutPages); frozen >= 0 {
		newRO := uint64(frozen+1) << l.pageShift
		for {
			cur := l.roAddr.Load()
			if newRO <= cur {
				break
			}
			if l.roAddr.CompareAndSwap(cur, newRO) {
				l.em.BumpWith(func() { l.onROBoundaryDrained(newRO, frozen) })
				break
			}
		}
	}

	// 2. Recycle the frame. Its previous occupant (if any) must be flushed,
	// evicted past the head boundary, and epoch-drained.
	f := l.frameFor(p)
	victim := p - int64(l.memPages)
	if victim >= 0 {
		if err := l.waitFlushed(victim, s); err != nil {
			return err
		}

		newHead := uint64(victim+1) << l.pageShift
		for {
			cur := l.headAddr.Load()
			if newHead <= cur {
				break
			}
			if l.headAddr.CompareAndSwap(cur, newHead) {
				break
			}
		}
		l.em.BumpWith(func() { f.freed.Store(true); l.broadcastFrames() })
		l.frameMu.Lock()
		for !f.freed.Load() {
			l.frameMu.Unlock()
			s.Refresh() // our own refresh lets the drain complete
			runtime.Gosched()
			l.frameMu.Lock()
		}
		l.frameMu.Unlock()
	}

	// 3. Reset and publish.
	for i := range f.hdrs {
		f.hdrs[i].Store(0)
	}
	clearUint64(f.keys)
	clearUint64(f.prevs)
	f.freed.Store(false)
	f.holds.Store(p)
	l.broadcastFrames()
	return nil
}

func clearUint64(s []uint64) {
	for i := range s {
		s[i] = 0
	}
}

// onROBoundaryDrained runs once every session has observed the read-only
// boundary at newRO: it publishes the safe boundary and enqueues the newly
// frozen pages for flushing, in order and exactly once.
func (l *hybridLog) onROBoundaryDrained(newRO uint64, upTo int64) {
	for {
		cur := l.safeRoAddr.Load()
		if newRO <= cur {
			break
		}
		if l.safeRoAddr.CompareAndSwap(cur, newRO) {
			break
		}
	}
	l.enqMu.Lock()
	for q := l.frozenEnq + 1; q <= upTo; q++ {
		l.flushCh <- q
	}
	if upTo > l.frozenEnq {
		l.frozenEnq = upTo
	}
	l.enqMu.Unlock()
}

func (l *hybridLog) broadcastFrames() {
	l.frameMu.Lock()
	l.frameCond.Broadcast()
	l.frameMu.Unlock()
}

// waitPageReady blocks until page p is materialized, refreshing the
// caller's epoch so drains can proceed. If a background flush has failed,
// the allocator that should publish p may have bailed out with that error,
// so waiters must observe it too instead of spinning forever.
func (l *hybridLog) waitPageReady(p int64, s *epoch.Session) error {
	f := l.frameFor(p)
	for f.holds.Load() != p {
		l.flushMu.Lock()
		err := l.flushErr
		l.flushMu.Unlock()
		if err != nil && f.holds.Load() != p {
			return fmt.Errorf("faster: log flush failed: %w", err)
		}
		s.Refresh()
		runtime.Gosched()
	}
	return nil
}

// waitFlushed blocks until page p has been written to disk. A background
// flush failure is returned (not panicked): the caller propagates it up
// through Get/Put/RMW so the application decides what to do with a store
// whose log device died.
func (l *hybridLog) waitFlushed(p int64, s *epoch.Session) error {
	for {
		l.flushMu.Lock()
		done := l.flushedPage >= p
		err := l.flushErr
		l.flushMu.Unlock()
		if err != nil {
			return fmt.Errorf("faster: log flush failed: %w", err)
		}
		if done {
			return nil
		}
		s.Refresh()
		runtime.Gosched()
	}
}

// flusher serializes frozen pages to the log file in page order. Adjacent
// frozen pages already waiting in flushCh are merged into one contiguous
// write (group commit) — a checkpoint or eviction burst of k pages costs
// ~k/maxGroupPages writes and one sync instead of k of each — and when
// flushPace is set, consecutive writes are separated by at least that gap
// so flush I/O is smeared across time instead of monopolizing the device
// while reads queue behind it.
func (l *hybridLog) flusher() {
	defer close(l.flushDone)
	pageBytes := l.rpp * l.recSize
	buf := make([]byte, maxGroupPages*pageBytes)
	for p := range l.flushCh {
		if p < 0 { // shutdown sentinel
			return
		}
		// Group commit: greedily take pages p+1, p+2, ... that are already
		// enqueued. onROBoundaryDrained enqueues page numbers in order, so
		// buffered successors are always contiguous with p.
		n := 1
	drain:
		for n < maxGroupPages {
			select {
			case q := <-l.flushCh:
				if q < 0 {
					// Flush what we have, then honor the shutdown sentinel.
					l.writeGroup(p, n, buf[:n*pageBytes])
					return
				}
				n++
			default:
				break drain
			}
		}
		if err := l.writeGroup(p, n, buf[:n*pageBytes]); err != nil {
			l.drainUntilSentinel()
			return
		}
		if l.flushPace > 0 {
			// Inter-write yield: smear the next write out by the pace gap.
			l.stats.FlushPaceStalls.Add(1)
			time.Sleep(l.flushPace)
		}
	}
}

// writeGroup serializes pages [p, p+n) into buf and commits them with one
// positional write (and at most one sync). On error it fails the flush
// pipeline and returns the error.
func (l *hybridLog) writeGroup(p int64, n int, buf []byte) error {
	pageBytes := l.rpp * l.recSize
	for g := 0; g < n; g++ {
		f := l.frameFor(p + int64(g))
		if f.holds.Load() != p+int64(g) {
			err := fmt.Errorf("flush page %d: frame holds %d", p+int64(g), f.holds.Load())
			l.failFlush(err)
			return err
		}
		base := g * pageBytes
		for i := 0; i < l.rpp; i++ {
			off := base + i*l.recSize
			h := f.hdrs[i].Load() &^ lockedBit
			binary.LittleEndian.PutUint64(buf[off:], h)
			binary.LittleEndian.PutUint64(buf[off+8:], f.keys[i])
			binary.LittleEndian.PutUint64(buf[off+16:], f.prevs[i])
			copy(buf[off+24:off+l.recSize], f.vals[i*l.valueSize:(i+1)*l.valueSize])
		}
	}
	if _, err := l.w.WriteAt(buf, p*int64(pageBytes)); err != nil {
		err = fmt.Errorf("flush pages %d..%d: %w", p, p+int64(n)-1, err)
		l.failFlush(err)
		return err
	}
	if l.syncWrites {
		if err := l.w.Sync(); err != nil {
			err = fmt.Errorf("sync pages %d..%d: %w", p, p+int64(n)-1, err)
			l.failFlush(err)
			return err
		}
	}
	l.stats.FlushedPages.Add(int64(n))
	l.stats.BytesFlushed.Add(int64(len(buf)))
	if n > 1 {
		l.stats.GroupCommits.Add(1)
	}
	l.flushMu.Lock()
	l.flushedPage = p + int64(n) - 1
	l.flushCond.Broadcast()
	l.flushMu.Unlock()
	return nil
}

func (l *hybridLog) failFlush(err error) {
	l.flushMu.Lock()
	if l.flushErr == nil {
		l.flushErr = err
	}
	l.flushCond.Broadcast()
	l.flushMu.Unlock()
}

// drainUntilSentinel keeps consuming (and discarding) enqueued page numbers
// after a flush failure so onROBoundaryDrained senders and close() never
// block on a dead flusher; it returns when the shutdown sentinel arrives.
func (l *hybridLog) drainUntilSentinel() {
	for p := range l.flushCh {
		if p < 0 {
			return
		}
	}
}

// diskRecord is a parsed on-disk record.
type diskRecord struct {
	hdr  uint64
	key  uint64
	prev uint64 // packed prev word (address + tombstone)
	val  []byte
}

// readDisk reads the record at addr from the log file.
func (l *hybridLog) readDisk(addr uint64, valBuf []byte) (diskRecord, error) {
	buf := make([]byte, l.recSize)
	if _, err := l.file.ReadAt(buf, int64(addr)*int64(l.recSize)); err != nil {
		return diskRecord{}, fmt.Errorf("faster: read record %d: %w", addr, err)
	}
	l.stats.DiskReads.Add(1)
	rec := diskRecord{
		hdr:  binary.LittleEndian.Uint64(buf),
		key:  binary.LittleEndian.Uint64(buf[8:]),
		prev: binary.LittleEndian.Uint64(buf[16:]),
	}
	if valBuf == nil {
		valBuf = make([]byte, l.valueSize)
	}
	copy(valBuf, buf[24:24+l.valueSize])
	rec.val = valBuf[:l.valueSize]
	return rec, nil
}

// flushAll freezes and flushes every allocated page up to and including the
// current tail page. Callers must guarantee no concurrent operations (it is
// used by Checkpoint and Close).
func (l *hybridLog) flushAll() error {
	tail := l.nextAddr.Load()
	if tail <= 1 {
		return nil
	}
	lastPage := l.pageOf(tail - 1)
	buf := make([]byte, l.rpp*l.recSize)
	// Let the background flusher finish everything already enqueued so we
	// never write a page concurrently with it.
	l.enqMu.Lock()
	enqueued := l.frozenEnq
	l.enqMu.Unlock()
	l.flushMu.Lock()
	for l.flushedPage < enqueued && l.flushErr == nil {
		l.flushMu.Unlock()
		runtime.Gosched()
		l.flushMu.Lock()
	}
	from := l.flushedPage + 1
	err := l.flushErr
	l.flushMu.Unlock()
	if err != nil {
		return err
	}
	for p := from; p <= lastPage; p++ {
		f := l.frameFor(p)
		if f.holds.Load() != p {
			continue // already evicted and flushed
		}
		for i := 0; i < l.rpp; i++ {
			off := i * l.recSize
			binary.LittleEndian.PutUint64(buf[off:], f.hdrs[i].Load()&^lockedBit)
			binary.LittleEndian.PutUint64(buf[off+8:], f.keys[i])
			binary.LittleEndian.PutUint64(buf[off+16:], f.prevs[i])
			copy(buf[off+24:off+l.recSize], f.vals[i*l.valueSize:(i+1)*l.valueSize])
		}
		if _, err := l.w.WriteAt(buf, p*int64(len(buf))); err != nil {
			return fmt.Errorf("faster: flushAll page %d: %w", p, err)
		}
	}
	return l.w.Sync()
}

// close stops the flusher and closes the file.
func (l *hybridLog) close() error {
	l.flushCh <- -1
	<-l.flushDone
	return l.file.Close()
}
