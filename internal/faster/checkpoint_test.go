package faster

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Dir: dir, ValueSize: 16, RecordsPerPage: 32, MemPages: 6,
		MutablePages: 2, StalenessBound: -1, ExpectedKeys: 4096,
	}
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := st.NewSession()
	const n = 500
	for k := uint64(1); k <= n; k++ {
		if err := s.Put(k, val(16, k)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite some keys so recovery must pick the newest version.
	for k := uint64(1); k <= 50; k++ {
		if err := s.Put(k, val(16, k+1000)); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete(60)
	s.Close()
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2, _ := st2.NewSession()
	defer s2.Close()
	dst := make([]byte, 16)
	for k := uint64(1); k <= n; k++ {
		found, err := s2.Get(k, dst)
		if err != nil {
			t.Fatal(err)
		}
		if k == 60 {
			if found {
				t.Fatal("deleted key resurrected by recovery")
			}
			continue
		}
		if !found {
			t.Fatalf("key %d lost in recovery", k)
		}
		want := val(16, k)
		if k <= 50 {
			want = val(16, k+1000)
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("key %d recovered wrong version", k)
		}
	}
	// The recovered store accepts new writes.
	if err := s2.Put(9999, val(16, 9999)); err != nil {
		t.Fatal(err)
	}
	if found, _ := s2.Get(9999, dst); !found || !bytes.Equal(dst, val(16, 9999)) {
		t.Fatal("write after recovery failed")
	}
}

func TestRecoverPreservesStaleness(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Dir: dir, ValueSize: 8, RecordsPerPage: 32, MemPages: 6,
		MutablePages: 2, StalenessBound: 100,
	}
	st, _ := Open(cfg)
	s, _ := st.NewSession()
	s.Put(1, val(8, 1))
	dst := make([]byte, 8)
	for i := 0; i < 5; i++ {
		s.Get(1, dst) // staleness -> 5
	}
	s.Close()
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, _ := Open(cfg)
	defer st2.Close()
	s2, _ := st2.NewSession()
	defer s2.Close()
	if stal := recordStaleness(t, st2, s2, 1); stal != 5 {
		t.Fatalf("recovered staleness = %d, want 5", stal)
	}
}

func TestOpenWithoutCheckpointStartsEmpty(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, ValueSize: 8, RecordsPerPage: 32, MemPages: 6, MutablePages: 2, StalenessBound: -1}
	st, _ := Open(cfg)
	s, _ := st.NewSession()
	s.Put(1, val(8, 1))
	s.Close()
	st.Close() // no checkpoint

	st2, _ := Open(cfg)
	defer st2.Close()
	s2, _ := st2.NewSession()
	defer s2.Close()
	dst := make([]byte, 8)
	if found, _ := s2.Get(1, dst); found {
		t.Fatal("store without checkpoint should start empty")
	}
}

func TestCorruptCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, ValueSize: 8, RecordsPerPage: 32, MemPages: 6, MutablePages: 2, StalenessBound: -1}
	st, _ := Open(cfg)
	s, _ := st.NewSession()
	s.Put(1, val(8, 1))
	s.Close()
	st.Checkpoint()
	st.Close()

	// Flip a byte in the metadata.
	meta := filepath.Join(dir, metaFile)
	buf, err := os.ReadFile(meta)
	if err != nil {
		t.Fatal(err)
	}
	buf[10] ^= 0xff
	os.WriteFile(meta, buf, 0o644)
	if _, err := Open(cfg); err == nil {
		t.Fatal("corrupt checkpoint should be rejected")
	}

	// Truncated metadata likewise.
	os.WriteFile(meta, buf[:7], 0o644)
	if _, err := Open(cfg); err == nil {
		t.Fatal("truncated checkpoint should be rejected")
	}
}

func TestCheckpointValueSizeMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, ValueSize: 8, RecordsPerPage: 32, MemPages: 6, MutablePages: 2, StalenessBound: -1}
	st, _ := Open(cfg)
	st.Checkpoint()
	st.Close()
	cfg.ValueSize = 16
	if _, err := Open(cfg); err == nil {
		t.Fatal("ValueSize mismatch should be rejected")
	}
}

func TestCheckpointTwice(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, ValueSize: 8, RecordsPerPage: 32, MemPages: 6, MutablePages: 2, StalenessBound: -1}
	st, _ := Open(cfg)
	s, _ := st.NewSession()
	s.Put(1, val(8, 1))
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Put(2, val(8, 2))
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	st.Close()

	st2, _ := Open(cfg)
	defer st2.Close()
	s2, _ := st2.NewSession()
	defer s2.Close()
	dst := make([]byte, 8)
	for k := uint64(1); k <= 2; k++ {
		if found, _ := s2.Get(k, dst); !found || !bytes.Equal(dst, val(8, k)) {
			t.Fatalf("key %d lost across incremental checkpoints", k)
		}
	}
}

func TestRecoverKeyZero(t *testing.T) {
	// Regression: key 0's first version has header 0 and no predecessor,
	// which the recovery scan used to misread as an unallocated gap slot
	// and drop. Only fully zero records (value included) are gaps.
	dir := t.TempDir()
	cfg := Config{
		Dir: dir, ValueSize: 16, RecordsPerPage: 32, MemPages: 6,
		MutablePages: 2, StalenessBound: 0, ExpectedKeys: 64,
	}
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := st.NewSession()
	want := val(16, 12345)
	if err := s.Put(0, want); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2, _ := st2.NewSession()
	defer s2.Close()
	got := make([]byte, 16)
	found, err := s2.Peek(0, got)
	if err != nil || !found {
		t.Fatalf("key 0 after recovery: found=%v err=%v", found, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("key 0 value: got %v want %v", got, want)
	}
}
