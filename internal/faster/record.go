// Package faster implements a log-structured, latch-free, disk-backed
// key-value store modeled on FASTER (Chandramouli et al., VLDB 2018), the
// storage substrate MLKV is built on. Records live in a hybrid log: a
// mutable in-memory tail region (in-place updates), an immutable in-memory
// read-only region (read-copy-update), and disk (direct positional reads).
//
// The store natively implements MLKV's record format (Fig. 5a of the paper):
// each record carries a 64-bit atomic header word packing
//
//	locked(1) | replaced(1) | generation(30) | staleness(32)
//
// used both as a latch-free record lock and — when bounded-staleness
// consistency is enabled — as a per-record vector clock.
package faster

// Header word bit layout. The paper steals the unused bits of FASTER's
// record-level lock word: 1 lock bit, 1 replaced bit, 30 generation bits,
// and 32 staleness bits.
const (
	lockedBit   = uint64(1) << 63
	replacedBit = uint64(1) << 62
	genShift    = 32
	genMask     = uint64(1<<30) - 1
	stalMask    = uint64(1<<32) - 1
)

// Locked reports whether the header word has the lock bit set.
func Locked(h uint64) bool { return h&lockedBit != 0 }

// Replaced reports whether the record was superseded by a copy elsewhere.
func Replaced(h uint64) bool { return h&replacedBit != 0 }

// Generation extracts the 30-bit record generation.
func Generation(h uint64) uint64 { return (h >> genShift) & genMask }

// Staleness extracts the 32-bit staleness counter (the per-record vector
// clock: the number of outstanding reads whose corresponding updates have
// not yet been applied).
func Staleness(h uint64) uint64 { return h & stalMask }

// PackHeader builds a header word from its fields.
func PackHeader(locked, replaced bool, gen, stal uint64) uint64 {
	h := (gen&genMask)<<genShift | stal&stalMask
	if locked {
		h |= lockedBit
	}
	if replaced {
		h |= replacedBit
	}
	return h
}

// withLock returns h with the lock bit set and the staleness counter
// adjusted by delta (+1 for Get, -1 for Put, floored at zero), implementing
// the single-CAS acquire described in §III-C1.
func withLock(h uint64, delta int) uint64 {
	s := Staleness(h)
	switch {
	case delta > 0:
		if s < stalMask {
			s++
		}
	case delta < 0:
		if s > 0 {
			s--
		}
	}
	return h&^stalMask | s | lockedBit
}

// releaseHeader returns the header to store on unlock: lock cleared and the
// generation advanced when the value was modified.
func releaseHeader(h uint64, bumpGen bool) uint64 {
	h &^= lockedBit
	if bumpGen {
		g := (Generation(h) + 1) & genMask
		h = h&^(genMask<<genShift) | g<<genShift
	}
	return h
}

// Prev-word layout: 48-bit previous-record address, one tombstone flag.
const (
	addrMask     = uint64(1<<48) - 1
	tombstoneBit = uint64(1) << 63
)

// InvalidAddr marks the end of a hash chain. Valid record addresses start
// at 1 (slot 0 of page 0 is never allocated).
const InvalidAddr = uint64(0)

func packPrev(prev uint64, tombstone bool) uint64 {
	w := prev & addrMask
	if tombstone {
		w |= tombstoneBit
	}
	return w
}

func prevAddr(w uint64) uint64  { return w & addrMask }
func isTombstone(w uint64) bool { return w&tombstoneBit != 0 }

// Disk record layout: header(8) | key(8) | prevWord(8) | value(valueSize).
const diskRecOverhead = 24

// diskRecSize returns the on-disk footprint of one record.
func diskRecSize(valueSize int) int { return diskRecOverhead + valueSize }
