package faster

import (
	"sync"
	"sync/atomic"

	"github.com/llm-db/mlkv-go/internal/util"
)

// The hash index maps key hashes to hash-chain head addresses in the hybrid
// log, following FASTER's design: an array of cache-line-sized buckets, each
// holding seven tag+address entries plus one overflow-bucket link, updated
// exclusively with compare-and-swap. Insertion of a fresh hash entry uses
// the two-phase "tentative bit" protocol so two racing threads never
// establish duplicate entries for the same tag.

// Index entry word layout: tentative(1) | tag(15) | address(48).
const (
	entryTentativeBit = uint64(1) << 63
	entryTagShift     = 48
	entryTagMask      = uint64(1<<15) - 1
	entryAddrMask     = uint64(1<<48) - 1

	entriesPerBucket = 7 // the 8th slot links to an overflow bucket
)

func packEntry(tag, addr uint64) uint64 {
	return tag<<entryTagShift | addr&entryAddrMask
}

func entryTag(e uint64) uint64  { return (e >> entryTagShift) & entryTagMask }
func entryAddr(e uint64) uint64 { return e & entryAddrMask }

type bucket struct {
	entries  [entriesPerBucket]atomic.Uint64
	overflow atomic.Uint64 // 1-based index into the overflow arena; 0 = none
}

// index is the latch-free hash table. The main bucket array is sized at
// construction; overflow buckets absorb collisions beyond seven tags per
// bucket and are allocated from a growable chunked arena. The chunk
// directory is copy-on-write so bucket pointers handed to readers remain
// stable across growth.
type index struct {
	buckets   []bucket
	mask      uint64
	chunks    atomic.Pointer[[]*arenaChunk]
	arenaNext atomic.Uint64 // last allocated overflow id (ids are 1-based)
	growMu    sync.Mutex
}

const arenaChunkBits = 8 // 256 overflow buckets per chunk

type arenaChunk [1 << arenaChunkBits]bucket

// newIndex creates an index with at least minBuckets buckets (rounded up to
// a power of two).
func newIndex(minBuckets uint64) *index {
	n := util.NextPow2(minBuckets)
	ix := &index{
		buckets: make([]bucket, n),
		mask:    n - 1,
	}
	initial := []*arenaChunk{new(arenaChunk)}
	ix.chunks.Store(&initial)
	return ix
}

// overflowBucket resolves a 1-based overflow bucket id.
func (ix *index) overflowBucket(id uint64) *bucket {
	i := id - 1
	chunks := *ix.chunks.Load()
	return &chunks[i>>arenaChunkBits][i&(1<<arenaChunkBits-1)]
}

// allocOverflow reserves a fresh overflow bucket and returns its id,
// growing the chunk directory as needed.
func (ix *index) allocOverflow() uint64 {
	id := ix.arenaNext.Add(1)
	need := (id - 1) >> arenaChunkBits
	for uint64(len(*ix.chunks.Load())) <= need {
		ix.growMu.Lock()
		cur := ix.chunks.Load()
		if uint64(len(*cur)) <= need {
			grown := make([]*arenaChunk, len(*cur)+1)
			copy(grown, *cur)
			grown[len(*cur)] = new(arenaChunk)
			ix.chunks.Store(&grown)
		}
		ix.growMu.Unlock()
	}
	return id
}

// tagOf derives the 15-bit entry tag from a key hash. Tag 0 is reserved to
// mean "free entry", so the top bit of the tag is forced on.
func tagOf(hash uint64) uint64 {
	return (hash>>49)&entryTagMask | 1<<14
}

// find returns the entry word slot for hash if present, else nil.
func (ix *index) find(hash uint64) *atomic.Uint64 {
	tag := tagOf(hash)
	b := &ix.buckets[hash&ix.mask]
	for {
		for i := 0; i < entriesPerBucket; i++ {
			e := b.entries[i].Load()
			if e != 0 && e&entryTentativeBit == 0 && entryTag(e) == tag {
				return &b.entries[i]
			}
		}
		ov := b.overflow.Load()
		if ov == 0 {
			return nil
		}
		b = ix.overflowBucket(ov)
	}
}

// findOrCreate returns the entry slot for hash, creating it (with address
// InvalidAddr) if absent. The tentative-bit protocol guarantees that
// concurrent creators converge on a single slot per (bucket, tag).
func (ix *index) findOrCreate(hash uint64) *atomic.Uint64 {
	tag := tagOf(hash)
	root := &ix.buckets[hash&ix.mask]
	for {
		// Pass 1: existing non-tentative entry?
		if slot := ix.find(hash); slot != nil {
			return slot
		}
		// Pass 2: claim a free slot tentatively.
		slot, ok := ix.claimFree(root, tag)
		if !ok {
			continue // chain mutated under us; retry
		}
		// Pass 3: scan for a duplicate (another thread may have claimed or
		// published the same tag concurrently).
		if ix.hasDuplicate(root, tag, slot) {
			slot.Store(0) // back off; retry from the top
			continue
		}
		// Safe to publish: clear the tentative bit.
		slot.Store(packEntry(tag, InvalidAddr))
		return slot
	}
}

// claimFree CASes the first empty slot in the bucket chain to a tentative
// entry for tag, extending the chain with an overflow bucket if required.
func (ix *index) claimFree(b *bucket, tag uint64) (*atomic.Uint64, bool) {
	for {
		for i := 0; i < entriesPerBucket; i++ {
			if b.entries[i].Load() == 0 {
				if b.entries[i].CompareAndSwap(0, entryTentativeBit|packEntry(tag, InvalidAddr)) {
					return &b.entries[i], true
				}
				return nil, false // lost the race; caller rescans
			}
		}
		ov := b.overflow.Load()
		if ov == 0 {
			idx := ix.allocOverflow()
			if !b.overflow.CompareAndSwap(0, idx) {
				// Another thread linked an overflow bucket first; the arena
				// slot we reserved is simply wasted.
				ov = b.overflow.Load()
			} else {
				ov = idx
			}
		}
		b = ix.overflowBucket(ov)
	}
}

// hasDuplicate reports whether any entry other than self in the bucket
// chain carries tag (tentative or not).
func (ix *index) hasDuplicate(b *bucket, tag uint64, self *atomic.Uint64) bool {
	for {
		for i := 0; i < entriesPerBucket; i++ {
			s := &b.entries[i]
			if s == self {
				continue
			}
			e := s.Load()
			if e != 0 && entryTag(e) == tag {
				return true
			}
		}
		ov := b.overflow.Load()
		if ov == 0 {
			return false
		}
		b = ix.overflowBucket(ov)
	}
}

// entryCount returns the number of published entries (diagnostics only).
func (ix *index) entryCount() int {
	count := 0
	scan := func(b *bucket) uint64 {
		for i := 0; i < entriesPerBucket; i++ {
			e := b.entries[i].Load()
			if e != 0 && e&entryTentativeBit == 0 {
				count++
			}
		}
		return b.overflow.Load()
	}
	for i := range ix.buckets {
		b := &ix.buckets[i]
		for {
			ov := scan(b)
			if ov == 0 {
				break
			}
			b = ix.overflowBucket(ov)
		}
	}
	return count
}
