package faster

import (
	"bytes"
	"testing"

	"github.com/llm-db/mlkv-go/internal/util"
)

// TestStoreMatchesModelMap runs long random operation sequences against the
// store and an in-memory reference map simultaneously, across key spaces
// large enough to force eviction, and demands exact agreement. This is the
// backbone property test for the whole engine.
func TestStoreMatchesModelMap(t *testing.T) {
	const (
		vs       = 12
		keySpace = 800
		ops      = 20000
	)
	for _, bound := range []int64{-1, 0, 4, BoundAsync} {
		bound := bound
		t.Run(boundName(bound), func(t *testing.T) {
			st := testStore(t, vs, 32, 6, 2, bound)
			s, err := st.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			model := make(map[uint64][]byte)
			r := util.NewRNG(0xfeed ^ uint64(bound))
			dst := make([]byte, vs)
			for i := 0; i < ops; i++ {
				k := r.Uint64n(keySpace) + 1
				switch r.Uint64n(10) {
				case 0, 1, 2, 3: // Put
					v := val(vs, r.Uint64())
					if err := s.Put(k, v); err != nil {
						t.Fatal(err)
					}
					model[k] = v
				case 4: // Delete
					if err := s.Delete(k); err != nil {
						t.Fatal(err)
					}
					delete(model, k)
				case 5: // RMW increment first byte
					if err := s.RMW(k, func(cur []byte, exists bool) { cur[0]++ }); err != nil {
						t.Fatal(err)
					}
					mv, ok := model[k]
					if !ok {
						mv = make([]byte, vs)
					} else {
						mv = append([]byte(nil), mv...)
					}
					mv[0]++
					model[k] = mv
				case 6: // Prefetch (must never change visible state)
					if _, err := s.Prefetch(k); err != nil {
						t.Fatal(err)
					}
				case 7: // Peek
					found, err := s.Peek(k, dst)
					if err != nil {
						t.Fatal(err)
					}
					mv, ok := model[k]
					if found != ok {
						t.Fatalf("op %d: Peek(%d) found=%v, model=%v", i, k, found, ok)
					}
					if found && !bytes.Equal(dst, mv) {
						t.Fatalf("op %d: Peek(%d) value mismatch", i, k)
					}
				default: // Get
					// Under BSP (bound 0) an unmatched Get would block the
					// next Get forever, so balance it with a Put-back, which
					// is exactly what training does.
					found, err := s.Get(k, dst)
					if err != nil {
						t.Fatal(err)
					}
					mv, ok := model[k]
					if found != ok {
						t.Fatalf("op %d: Get(%d) found=%v, model has=%v", i, k, found, ok)
					}
					if found {
						if !bytes.Equal(dst, mv) {
							t.Fatalf("op %d: Get(%d) = %x, want %x", i, k, dst, mv)
						}
						if bound >= 0 {
							if err := s.Put(k, dst); err != nil {
								t.Fatal(err)
							}
						}
					}
				}
			}
			// Final full verification via Peek (staleness-neutral).
			for k := uint64(1); k <= keySpace; k++ {
				found, err := s.Peek(k, dst)
				if err != nil {
					t.Fatal(err)
				}
				mv, ok := model[k]
				if found != ok {
					t.Fatalf("final: key %d found=%v model=%v", k, found, ok)
				}
				if found && !bytes.Equal(dst, mv) {
					t.Fatalf("final: key %d mismatch", k)
				}
			}
		})
	}
}

func boundName(b int64) string {
	switch {
	case b < 0:
		return "plain"
	case b == 0:
		return "bsp"
	case b == BoundAsync:
		return "asp"
	default:
		return "ssp"
	}
}

// TestGenerationMonotonic verifies the generation counter increases with
// every value mutation of an in-place record.
func TestGenerationMonotonic(t *testing.T) {
	st := testStore(t, 8, 256, 8, 4, -1)
	s, _ := st.NewSession()
	defer s.Close()
	s.Put(1, val(8, 0))
	last := uint64(0)
	for i := 1; i < 50; i++ {
		s.Put(1, val(8, uint64(i)))
		s.es.Protect()
		hit, _ := s.findKey(1, false)
		gen := Generation(hit.f.hdrs[hit.slot].Load())
		s.es.Unprotect()
		if gen <= last {
			t.Fatalf("generation not monotonic: %d -> %d", last, gen)
		}
		last = gen
	}
}
