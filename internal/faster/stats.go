package faster

import "sync/atomic"

// Stats holds the store's operation counters. All fields are updated with
// atomics on the hot path and read via snapshot.
type Stats struct {
	Gets             atomic.Int64
	Puts             atomic.Int64
	RMWs             atomic.Int64
	Deletes          atomic.Int64
	MemHits          atomic.Int64
	DiskReads        atomic.Int64
	InPlaceUpdates   atomic.Int64
	RCUAppends       atomic.Int64
	PrefetchCopies   atomic.Int64
	AbandonedAppends atomic.Int64
	StalenessWaits   atomic.Int64
	FlushedPages     atomic.Int64
	BytesFlushed     atomic.Int64
	GroupCommits     atomic.Int64 // multi-page flush writes (group commit)
	FlushPaceStalls  atomic.Int64 // pacing sleeps taken between flush writes
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	Gets             int64
	Puts             int64
	RMWs             int64
	Deletes          int64
	MemHits          int64
	DiskReads        int64
	InPlaceUpdates   int64
	RCUAppends       int64
	PrefetchCopies   int64
	AbandonedAppends int64
	StalenessWaits   int64
	FlushedPages     int64
	BytesFlushed     int64
	GroupCommits     int64
	FlushPaceStalls  int64
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Gets:             s.Gets.Load(),
		Puts:             s.Puts.Load(),
		RMWs:             s.RMWs.Load(),
		Deletes:          s.Deletes.Load(),
		MemHits:          s.MemHits.Load(),
		DiskReads:        s.DiskReads.Load(),
		InPlaceUpdates:   s.InPlaceUpdates.Load(),
		RCUAppends:       s.RCUAppends.Load(),
		PrefetchCopies:   s.PrefetchCopies.Load(),
		AbandonedAppends: s.AbandonedAppends.Load(),
		StalenessWaits:   s.StalenessWaits.Load(),
		FlushedPages:     s.FlushedPages.Load(),
		BytesFlushed:     s.BytesFlushed.Load(),
		GroupCommits:     s.GroupCommits.Load(),
		FlushPaceStalls:  s.FlushPaceStalls.Load(),
	}
}

// Add returns the element-wise sum a+b (for merging per-shard snapshots
// into one top-level view).
func (a StatsSnapshot) Add(b StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Gets:             a.Gets + b.Gets,
		Puts:             a.Puts + b.Puts,
		RMWs:             a.RMWs + b.RMWs,
		Deletes:          a.Deletes + b.Deletes,
		MemHits:          a.MemHits + b.MemHits,
		DiskReads:        a.DiskReads + b.DiskReads,
		InPlaceUpdates:   a.InPlaceUpdates + b.InPlaceUpdates,
		RCUAppends:       a.RCUAppends + b.RCUAppends,
		PrefetchCopies:   a.PrefetchCopies + b.PrefetchCopies,
		AbandonedAppends: a.AbandonedAppends + b.AbandonedAppends,
		StalenessWaits:   a.StalenessWaits + b.StalenessWaits,
		FlushedPages:     a.FlushedPages + b.FlushedPages,
		BytesFlushed:     a.BytesFlushed + b.BytesFlushed,
		GroupCommits:     a.GroupCommits + b.GroupCommits,
		FlushPaceStalls:  a.FlushPaceStalls + b.FlushPaceStalls,
	}
}

// Sub returns the element-wise difference a-b (for interval measurements).
func (a StatsSnapshot) Sub(b StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Gets:             a.Gets - b.Gets,
		Puts:             a.Puts - b.Puts,
		RMWs:             a.RMWs - b.RMWs,
		Deletes:          a.Deletes - b.Deletes,
		MemHits:          a.MemHits - b.MemHits,
		DiskReads:        a.DiskReads - b.DiskReads,
		InPlaceUpdates:   a.InPlaceUpdates - b.InPlaceUpdates,
		RCUAppends:       a.RCUAppends - b.RCUAppends,
		PrefetchCopies:   a.PrefetchCopies - b.PrefetchCopies,
		AbandonedAppends: a.AbandonedAppends - b.AbandonedAppends,
		StalenessWaits:   a.StalenessWaits - b.StalenessWaits,
		FlushedPages:     a.FlushedPages - b.FlushedPages,
		BytesFlushed:     a.BytesFlushed - b.BytesFlushed,
		GroupCommits:     a.GroupCommits - b.GroupCommits,
		FlushPaceStalls:  a.FlushPaceStalls - b.FlushPaceStalls,
	}
}
