package faster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/llm-db/mlkv-go/internal/epoch"
	"github.com/llm-db/mlkv-go/internal/util"
)

// Config parameterizes a Store.
type Config struct {
	// Dir is the directory holding the log and checkpoint files.
	Dir string
	// ValueSize is the fixed value payload size in bytes (an embedding
	// table's dim × 4 for float32 vectors).
	ValueSize int
	// RecordsPerPage is the number of records per log page (power of two).
	RecordsPerPage int
	// MemPages is the number of in-memory page frames: the store's memory
	// budget is roughly MemPages × RecordsPerPage × (ValueSize + 40) bytes.
	MemPages int
	// MutablePages is how many of the newest pages accept in-place updates.
	// Must be at least 1 and at most MemPages-2.
	MutablePages int
	// IndexBuckets is the hash-index size; defaults to one bucket per
	// expected 4 keys if ExpectedKeys is set, else 64Ki.
	IndexBuckets uint64
	// ExpectedKeys sizes the index when IndexBuckets is zero.
	ExpectedKeys uint64
	// StalenessBound configures MLKV's bounded-staleness consistency:
	//   <0               — disabled (plain FASTER semantics; the lock word
	//                      is still used, the vector clock is not),
	//   0                — BSP (a read waits until no update is outstanding),
	//   1..2^31          — SSP with the given bound,
	//   BoundAsync       — ASP (clock maintained, never blocks).
	StalenessBound int64
	// SyncWrites fsyncs every flushed page (off for benchmarks, as in the
	// paper's NVMe setup).
	SyncWrites bool
	// FlushPace, when positive, is the minimum gap the background flusher
	// leaves between consecutive flush writes, smearing flush I/O across
	// time instead of letting an eviction or checkpoint burst monopolize
	// the device while concurrent reads queue behind it. Zero disables
	// pacing (writes go back-to-back, merged by group commit).
	FlushPace time.Duration
	// MaxSessions bounds concurrent sessions (default 512).
	MaxSessions int
}

// BoundAsync is the staleness bound representing fully asynchronous (ASP)
// training; in practice INT64_MAX, as §III-C1 prescribes.
const BoundAsync = int64(math.MaxInt64)

func (c *Config) setDefaults() error {
	if c.ValueSize <= 0 {
		return errors.New("faster: ValueSize must be positive")
	}
	if c.RecordsPerPage == 0 {
		c.RecordsPerPage = 1024
	}
	if c.MemPages == 0 {
		c.MemPages = 64
	}
	if c.MutablePages == 0 {
		c.MutablePages = c.MemPages / 4
	}
	if c.MutablePages < 1 {
		c.MutablePages = 1
	}
	if c.MutablePages > c.MemPages-2 {
		return fmt.Errorf("faster: MutablePages (%d) must be <= MemPages-2 (%d)", c.MutablePages, c.MemPages-2)
	}
	if c.IndexBuckets == 0 {
		if c.ExpectedKeys > 0 {
			c.IndexBuckets = c.ExpectedKeys/4 + 1
		} else {
			c.IndexBuckets = 1 << 16
		}
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 512
	}
	return nil
}

// Store is a FASTER-style hybrid-log key-value store with MLKV's
// bounded-staleness extension. All operations go through a Session.
type Store struct {
	cfg   Config
	em    *epoch.Manager
	ix    *index
	log   *hybridLog
	stats Stats
	bound atomic.Int64 // current staleness bound (mutable at runtime)
}

// Open creates or opens a store in cfg.Dir. If a checkpoint exists it is
// recovered; otherwise the store starts empty.
func Open(cfg Config) (*Store, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if cfg.Dir == "" {
		return nil, errors.New("faster: Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	st := &Store{cfg: cfg}
	st.bound.Store(cfg.StalenessBound)
	st.em = epoch.NewManager(cfg.MaxSessions)
	st.ix = newIndex(cfg.IndexBuckets)
	var err error
	st.log, err = newHybridLog(filepath.Join(cfg.Dir, "hlog.dat"), cfg.ValueSize,
		cfg.RecordsPerPage, cfg.MemPages, cfg.MutablePages, cfg.SyncWrites, cfg.FlushPace, st.em, &st.stats)
	if err != nil {
		return nil, err
	}
	if err := st.maybeRecover(); err != nil {
		st.log.close()
		return nil, err
	}
	return st, nil
}

// Close flushes the in-memory tail and releases resources.
func (st *Store) Close() error {
	st.em.Drain()
	if err := st.log.flushAll(); err != nil {
		st.log.close()
		return err
	}
	return st.log.close()
}

// ValueSize returns the fixed value payload size.
func (st *Store) ValueSize() int { return st.cfg.ValueSize }

// SetStalenessBound changes the staleness bound at runtime (used by the
// benchmark harness to sweep bounds without reopening the store).
func (st *Store) SetStalenessBound(b int64) { st.bound.Store(b) }

// StalenessBound returns the current bound.
func (st *Store) StalenessBound() int64 { return st.bound.Load() }

// BlockingBound reports whether clocked reads under bound can wait on the
// vector clock. Only then does batch ordering matter for deadlock freedom:
// with the clock disabled (bound < 0) or fully asynchronous (BoundAsync) a
// Get never blocks, so batched reads are free to fan out across shards in
// parallel. Under a blocking bound a Get is a token acquisition that only
// the matching Put releases, and acquisitions must keep a global order.
func BlockingBound(bound int64) bool { return bound >= 0 && bound != BoundAsync }

// Stats returns a snapshot of operation counters.
func (st *Store) Stats() StatsSnapshot { return st.stats.snapshot() }

// MemoryBytes reports the approximate in-memory footprint of the log frames.
func (st *Store) MemoryBytes() int64 {
	per := int64(st.cfg.RecordsPerPage) * int64(st.cfg.ValueSize+3*8)
	return per * int64(st.cfg.MemPages)
}

// Session is a registered participant in the store's epoch protocol. It is
// not safe for concurrent use; each goroutine needs its own session.
type Session struct {
	st      *Store
	es      *epoch.Session
	scratch []byte
}

// NewSession registers a session. It returns an error if MaxSessions are
// already active.
func (st *Store) NewSession() (*Session, error) {
	es := st.em.Register()
	if es == nil {
		return nil, errors.New("faster: too many sessions")
	}
	return &Session{st: st, es: es, scratch: make([]byte, st.cfg.ValueSize)}, nil
}

// Close unregisters the session.
func (s *Session) Close() { s.es.Unregister() }

// Address regions, newest to oldest.
type region int

const (
	regionMutable region = iota
	regionFuzzy
	regionReadOnly
	regionDisk
)

func (st *Store) regionOf(addr uint64) region {
	if addr >= st.log.roAddr.Load() {
		return regionMutable
	}
	if addr >= st.log.safeRoAddr.Load() {
		return regionFuzzy
	}
	if addr >= st.log.headAddr.Load() {
		return regionReadOnly
	}
	return regionDisk
}

// memRecord locates addr's frame slot. Valid only under epoch protection
// for addresses at or above the head boundary.
func (st *Store) memRecord(addr uint64) (*frame, int) {
	p := st.log.pageOf(addr)
	f := st.log.frameFor(p)
	if f.holds.Load() != p {
		return nil, 0
	}
	return f, st.log.slotOf(addr)
}

// chainHit is the outcome of a hash-chain walk.
type chainHit struct {
	entry    *atomic.Uint64
	entryVal uint64 // entry word at lookup time (CAS expectation)
	addr     uint64 // record address, InvalidAddr if key absent
	tomb     bool
	reg      region
	f        *frame // set for in-memory hits
	slot     int
	diskRec  diskRecord // set for disk hits
}

// findKey walks the hash chain for key. Must be called under protection.
// create controls whether a missing index entry is established.
func (s *Session) findKey(key uint64, create bool) (chainHit, error) {
	st := s.st
	hash := util.HashKey(key)
	var entry *atomic.Uint64
	if create {
		entry = st.ix.findOrCreate(hash)
	} else {
		entry = st.ix.find(hash)
		if entry == nil {
			return chainHit{}, nil
		}
	}
	ev := entry.Load()
	hit := chainHit{entry: entry, entryVal: ev, addr: entryAddr(ev)}
	addr := hit.addr
	for addr != InvalidAddr {
		reg := st.regionOf(addr)
		if reg == regionDisk {
			rec, err := st.log.readDisk(addr, s.scratch)
			if err != nil {
				return chainHit{}, err
			}
			if rec.key == key {
				hit.addr, hit.reg, hit.diskRec = addr, regionDisk, rec
				hit.tomb = isTombstone(rec.prev)
				return hit, nil
			}
			addr = prevAddr(rec.prev)
			continue
		}
		f, slot := st.memRecord(addr)
		if f == nil {
			// Frame turned over beneath us (we raced a region change);
			// reclassify as disk on the next iteration.
			continue
		}
		if f.keys[slot] == key {
			hit.addr, hit.reg, hit.f, hit.slot = addr, reg, f, slot
			hit.tomb = isTombstone(f.prevs[slot])
			return hit, nil
		}
		addr = prevAddr(f.prevs[slot])
	}
	hit.addr = InvalidAddr
	return hit, nil
}

// ErrValueSize is returned when a caller buffer does not match ValueSize.
var ErrValueSize = errors.New("faster: buffer length must equal ValueSize")

// Get reads the value for key into dst. Under bounded-staleness consistency
// it implements the paper's protocol: wait until the record's staleness
// counter is within the bound, then atomically {lock, staleness+1}, copy the
// value, and release. Cold records (read-only region or disk) are first
// copied to the mutable tail with their vector clock preserved.
// Returns found=false for absent or deleted keys.
func (s *Session) Get(key uint64, dst []byte) (bool, error) {
	return s.GetCtx(context.Background(), key, dst)
}

// GetCtx is Get with cancellation: a read stalled on the staleness bound
// (another session's token not yet released by its Put) gives up with
// ctx.Err() when ctx is cancelled or its deadline passes, instead of
// spinning until the releasing write arrives. The clock is untouched on a
// cancelled read — no token was acquired — so a caller that times out owes
// no balancing Put.
func (s *Session) GetCtx(ctx context.Context, key uint64, dst []byte) (bool, error) {
	if len(dst) != s.st.cfg.ValueSize {
		return false, ErrValueSize
	}
	s.st.stats.Gets.Add(1)
	bound := s.st.bound.Load()
	s.es.Protect()
	defer s.es.Unprotect()
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if err := ctx.Err(); err != nil {
				return false, err
			}
		}
		hit, err := s.findKey(key, false)
		if err != nil {
			return false, err
		}
		if hit.addr == InvalidAddr || hit.tomb {
			return false, nil
		}
		done, found, err := s.getOnce(key, hit, dst, bound)
		if err != nil {
			return false, err
		}
		if done {
			return found, nil
		}
		s.backoff(attempt)
	}
}

// getOnce attempts the Get against one located record version. done=false
// means the caller must re-resolve the chain and retry.
func (s *Session) getOnce(key uint64, hit chainHit, dst []byte, bound int64) (done, found bool, err error) {
	st := s.st
	switch hit.reg {
	case regionMutable:
		h := hit.f.hdrs[hit.slot].Load()
		if Locked(h) || Replaced(h) {
			return false, false, nil
		}
		if bound >= 0 && int64(Staleness(h)) > bound {
			st.stats.StalenessWaits.Add(1)
			return false, false, nil
		}
		delta := 0
		if bound >= 0 {
			delta = 1
		}
		if !hit.f.hdrs[hit.slot].CompareAndSwap(h, withLock(h, delta)) {
			return false, false, nil
		}
		copy(dst, hit.f.vals[hit.slot*st.cfg.ValueSize:(hit.slot+1)*st.cfg.ValueSize])
		hit.f.hdrs[hit.slot].Store(releaseHeader(withLock(h, delta), false))
		st.stats.MemHits.Add(1)
		return true, true, nil

	case regionFuzzy:
		// The read-only boundary is draining; wait for it to settle.
		s.es.Refresh()
		return false, false, nil

	case regionReadOnly:
		if bound < 0 {
			// Plain FASTER read: values are immutable here, no lock needed.
			copy(dst, hit.f.vals[hit.slot*st.cfg.ValueSize:(hit.slot+1)*st.cfg.ValueSize])
			st.stats.MemHits.Add(1)
			return true, true, nil
		}
		// BSC requires mutating the vector clock, which frozen pages cannot
		// do consistently: copy the record to the mutable tail (clock
		// preserved) and retry there.
		h := hit.f.hdrs[hit.slot].Load()
		if bound >= 0 && int64(Staleness(h)) > bound {
			st.stats.StalenessWaits.Add(1)
			s.es.Refresh()
			return false, false, nil
		}
		copy(s.scratch, hit.f.vals[hit.slot*st.cfg.ValueSize:(hit.slot+1)*st.cfg.ValueSize])
		if _, err := s.copyToTail(key, h&^lockedBit, s.scratch, hit); err != nil {
			return false, false, err
		}
		return false, false, nil

	case regionDisk:
		if bound < 0 {
			copy(dst, hit.diskRec.val)
			return true, true, nil
		}
		h := hit.diskRec.hdr
		if int64(Staleness(h)) > bound {
			st.stats.StalenessWaits.Add(1)
			s.es.Refresh()
			return false, false, nil
		}
		// diskRec.val aliases s.scratch (findKey read into it).
		if _, err := s.copyToTail(key, h&^lockedBit, hit.diskRec.val, hit); err != nil {
			return false, false, err
		}
		return false, false, nil
	}
	return false, false, nil
}

// Peek reads the value for key without touching the vector clock and
// without copying cold records to the tail. Used for evaluation and
// diagnostics; it never blocks on staleness.
func (s *Session) Peek(key uint64, dst []byte) (bool, error) {
	if len(dst) != s.st.cfg.ValueSize {
		return false, ErrValueSize
	}
	s.es.Protect()
	defer s.es.Unprotect()
	for attempt := 0; ; attempt++ {
		hit, err := s.findKey(key, false)
		if err != nil {
			return false, err
		}
		if hit.addr == InvalidAddr || hit.tomb {
			return false, nil
		}
		switch hit.reg {
		case regionDisk:
			copy(dst, hit.diskRec.val)
			return true, nil
		case regionReadOnly:
			copy(dst, hit.f.vals[hit.slot*s.st.cfg.ValueSize:(hit.slot+1)*s.st.cfg.ValueSize])
			return true, nil
		default: // mutable or fuzzy: locked read for value atomicity
			h := hit.f.hdrs[hit.slot].Load()
			if Locked(h) || Replaced(h) {
				s.backoff(attempt)
				continue
			}
			if !hit.f.hdrs[hit.slot].CompareAndSwap(h, h|lockedBit) {
				s.backoff(attempt)
				continue
			}
			copy(dst, hit.f.vals[hit.slot*s.st.cfg.ValueSize:(hit.slot+1)*s.st.cfg.ValueSize])
			hit.f.hdrs[hit.slot].Store(h)
			return true, nil
		}
	}
}

// Put upserts the value for key. Under BSC it atomically {lock,
// staleness-1}s in the mutable region (a Put never waits on the bound —
// it only reduces staleness) and bumps the record generation on release.
// Cold or absent records get a new version appended at the tail.
func (s *Session) Put(key uint64, val []byte) error {
	if len(val) != s.st.cfg.ValueSize {
		return ErrValueSize
	}
	s.st.stats.Puts.Add(1)
	return s.update(key, func(cur []byte, _ bool) {
		copy(cur, val)
	})
}

// RMW applies fn to the current value (zeroed if the key is absent) as a
// single atomic read-modify-write: in place in the mutable region, by
// append elsewhere. It follows Put's staleness semantics.
func (s *Session) RMW(key uint64, fn func(cur []byte, exists bool)) error {
	s.st.stats.RMWs.Add(1)
	return s.update(key, fn)
}

func (s *Session) update(key uint64, fn func(cur []byte, exists bool)) error {
	bound := s.st.bound.Load()
	s.es.Protect()
	defer s.es.Unprotect()
	for attempt := 0; ; attempt++ {
		hit, err := s.findKey(key, true)
		if err != nil {
			return err
		}
		done, err := s.updateOnce(key, hit, fn, bound)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		s.backoff(attempt)
	}
}

func (s *Session) updateOnce(key uint64, hit chainHit, fn func([]byte, bool), bound int64) (bool, error) {
	st := s.st
	vs := st.cfg.ValueSize
	exists := hit.addr != InvalidAddr && !hit.tomb

	if exists && hit.reg == regionMutable {
		h := hit.f.hdrs[hit.slot].Load()
		if Locked(h) || Replaced(h) {
			return false, nil
		}
		delta := 0
		if bound >= 0 {
			delta = -1
		}
		if !hit.f.hdrs[hit.slot].CompareAndSwap(h, withLock(h, delta)) {
			return false, nil
		}
		fn(hit.f.vals[hit.slot*vs:(hit.slot+1)*vs], true)
		hit.f.hdrs[hit.slot].Store(releaseHeader(withLock(h, delta), true))
		st.stats.InPlaceUpdates.Add(1)
		return true, nil
	}
	if exists && hit.reg == regionFuzzy {
		s.es.Refresh()
		return false, nil
	}

	// Append path (RCU): build the new version in scratch.
	var newHdr uint64
	if !exists {
		clearBytes(s.scratch)
		fn(s.scratch, false)
		newHdr = PackHeader(false, false, 0, 0)
	} else {
		var oldHdr uint64
		switch hit.reg {
		case regionReadOnly:
			oldHdr = hit.f.hdrs[hit.slot].Load()
			copy(s.scratch, hit.f.vals[hit.slot*vs:(hit.slot+1)*vs])
		case regionDisk:
			oldHdr = hit.diskRec.hdr
			// diskRec.val already aliases scratch.
		}
		fn(s.scratch, true)
		stal := Staleness(oldHdr)
		if bound >= 0 && stal > 0 {
			stal--
		}
		newHdr = PackHeader(false, false, (Generation(oldHdr)+1)&genMask, stal)
	}
	ok, err := s.copyToTail(key, newHdr, s.scratch, hit)
	if err != nil {
		return false, err
	}
	if ok {
		st.stats.RCUAppends.Add(1)
		return true, nil
	}
	return false, nil
}

// Delete appends a tombstone for key. Subsequent Gets report not-found.
func (s *Session) Delete(key uint64) error {
	s.st.stats.Deletes.Add(1)
	s.es.Protect()
	defer s.es.Unprotect()
	for attempt := 0; ; attempt++ {
		hit, err := s.findKey(key, true)
		if err != nil {
			return err
		}
		if hit.addr == InvalidAddr || hit.tomb {
			return nil // nothing to delete
		}
		clearBytes(s.scratch)
		ok, err := s.appendRecord(key, PackHeader(false, false, 0, 0), s.scratch, hit, true)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		s.backoff(attempt)
	}
}

// Prefetch implements the storage half of MLKV's look-ahead prefetching
// (§III-C2): if key's newest version lives on disk, copy it — vector clock
// intact — into the mutable tail so a future Get will not stall. Records
// already in memory (including the immutable region, per the paper, to
// avoid redundant page writes) are left alone. Returns true if a copy was
// made.
func (s *Session) Prefetch(key uint64) (bool, error) {
	s.es.Protect()
	defer s.es.Unprotect()
	hit, err := s.findKey(key, false)
	if err != nil {
		return false, err
	}
	if hit.addr == InvalidAddr || hit.tomb || hit.reg != regionDisk {
		return false, nil
	}
	ok, err := s.copyToTail(key, hit.diskRec.hdr&^lockedBit, hit.diskRec.val, hit)
	if err != nil {
		return false, err
	}
	if ok {
		s.st.stats.PrefetchCopies.Add(1)
		return true, nil
	}
	return false, nil
}

// copyToTail appends a record carrying hdr/val for key with the chain head
// captured in hit as its predecessor, then CASes the index entry. Returns
// false if the chain moved (caller retries or abandons); a non-nil error
// means the log can no longer allocate (background flush failed).
func (s *Session) copyToTail(key uint64, hdr uint64, val []byte, hit chainHit) (bool, error) {
	return s.appendRecordHdr(key, hdr, val, hit, false)
}

func (s *Session) appendRecord(key uint64, hdr uint64, val []byte, hit chainHit, tomb bool) (bool, error) {
	return s.appendRecordHdr(key, hdr, val, hit, tomb)
}

func (s *Session) appendRecordHdr(key uint64, hdr uint64, val []byte, hit chainHit, tomb bool) (bool, error) {
	st := s.st
	// allocate may Refresh the session; hit.entryVal remains a valid CAS
	// expectation (addresses are stable), but frame pointers in hit must
	// not be dereferenced after this point.
	addr, err := st.log.allocate(s.es)
	if err != nil {
		return false, err
	}
	f, slot := st.memRecord(addr)
	if f == nil {
		panic("faster: fresh tail record not in memory")
	}
	vs := st.cfg.ValueSize
	f.keys[slot] = key
	f.prevs[slot] = packPrev(entryAddr(hit.entryVal), tomb)
	copy(f.vals[slot*vs:(slot+1)*vs], val)
	f.hdrs[slot].Store(hdr)
	tag := entryTag(hit.entryVal)
	if tag == 0 {
		tag = tagOf(util.HashKey(key))
	}
	if hit.entry.CompareAndSwap(hit.entryVal, packEntry(tag, addr)) {
		if hit.addr != InvalidAddr && hit.reg != regionDisk {
			// Mark the superseded version so stragglers that cached its
			// address observe the bit and re-resolve. The frame pointer in
			// hit is stale after allocate (which may have refreshed our
			// epoch), so re-resolve the address; if the page was recycled
			// the old version is on disk and already shadowed.
			if of, oslot := st.memRecord(hit.addr); of != nil {
				for {
					h := of.hdrs[oslot].Load()
					if Replaced(h) || of.hdrs[oslot].CompareAndSwap(h, h|replacedBit) {
						break
					}
				}
			}
		}
		return true, nil
	}
	// Lost the race: abandon the allocated record (it is unreachable).
	st.stats.AbandonedAppends.Add(1)
	return false, nil
}

// backoff refreshes the session's epoch and yields, bounding live-lock in
// contended retry loops.
func (s *Session) backoff(attempt int) {
	s.es.Refresh()
	if attempt > 4 {
		runtime.Gosched()
	}
}

func clearBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// TailAddr returns the next address to be allocated (diagnostics).
func (st *Store) TailAddr() uint64 { return st.log.nextAddr.Load() }

// HeadAddr returns the first in-memory address (diagnostics).
func (st *Store) HeadAddr() uint64 { return st.log.headAddr.Load() }

// ReadOnlyAddr returns the first mutable address (diagnostics).
func (st *Store) ReadOnlyAddr() uint64 { return st.log.roAddr.Load() }
