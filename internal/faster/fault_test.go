package faster

import (
	"errors"
	"sync"
	"testing"
)

// errInjected is the fault the failing log writer returns.
var errInjected = errors.New("injected log device failure")

// faultWriter wraps the real log writer and, once armed, fails every
// write and sync — a log device dying mid-run.
type faultWriter struct {
	mu    sync.Mutex
	armed bool
	inner logWriter
}

func (w *faultWriter) failing() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.armed
}

func (w *faultWriter) arm() {
	w.mu.Lock()
	w.armed = true
	w.mu.Unlock()
}

func (w *faultWriter) WriteAt(p []byte, off int64) (int, error) {
	if w.failing() {
		return 0, errInjected
	}
	return w.inner.WriteAt(p, off)
}

func (w *faultWriter) Sync() error {
	if w.failing() {
		return errInjected
	}
	return w.inner.Sync()
}

// TestFlushFailurePropagatesToCallers injects a failing log writer and
// drives the store until page turnover needs a flushed victim: the
// background flush error must surface as an error from Put (through
// allocate → waitFlushed), not hang the allocator or panic the flusher
// goroutine, and Checkpoint and Close must fail cleanly afterward.
func TestFlushFailurePropagatesToCallers(t *testing.T) {
	st, err := Open(Config{
		Dir:            t.TempDir(),
		ValueSize:      32,
		RecordsPerPage: 8,
		MemPages:       4,
		MutablePages:   1,
		StalenessBound: -1,
		ExpectedKeys:   1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	fw := &faultWriter{inner: st.log.w}
	fw.arm()
	st.log.w = fw

	s, err := st.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// 4 pages x 8 records fit in memory; well past that, a frame recycle
	// must wait on a flush that can never succeed — and must return the
	// flush error instead of spinning or panicking.
	var putErr error
	v := val(32, 1)
	for k := uint64(1); k <= 1<<10; k++ {
		if putErr = s.Put(k, v); putErr != nil {
			break
		}
	}
	if putErr == nil {
		t.Fatal("every Put succeeded with a dead log device")
	}
	if !errors.Is(putErr, errInjected) {
		t.Fatalf("Put error %v does not wrap the injected device failure", putErr)
	}

	// The store is append-dead but must stay crash-free: more writes keep
	// failing with the same error, and durability ops fail cleanly.
	if err := s.Put(1, v); !errors.Is(err, errInjected) {
		t.Fatalf("Put after failure = %v, want the injected failure", err)
	}
	if err := st.Checkpoint(); !errors.Is(err, errInjected) {
		t.Fatalf("Checkpoint = %v, want the injected failure", err)
	}
	s.Close()
	if err := st.Close(); !errors.Is(err, errInjected) {
		t.Fatalf("Close = %v, want the injected failure", err)
	}
}

// TestFlushFailureUnblocksWaiters pins the multi-waiter path: sessions
// blocked in waitPageReady (they did not win the page-opening slot) must
// also observe the flush error instead of spinning forever.
func TestFlushFailureUnblocksWaiters(t *testing.T) {
	st, err := Open(Config{
		Dir:            t.TempDir(),
		ValueSize:      32,
		RecordsPerPage: 8,
		MemPages:       4,
		MutablePages:   1,
		StalenessBound: -1,
		ExpectedKeys:   1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	fw := &faultWriter{inner: st.log.w}
	fw.arm()
	st.log.w = fw

	const workers = 4
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := st.NewSession()
			if err != nil {
				errCh <- err
				return
			}
			defer s.Close()
			v := val(32, uint64(w))
			for k := uint64(1); k <= 1<<10; k++ {
				if err := s.Put(uint64(w)<<32|k, v); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}(w)
	}
	wg.Wait()
	close(errCh)
	failures := 0
	for err := range errCh {
		if err == nil {
			continue
		}
		if !errors.Is(err, errInjected) {
			t.Fatalf("worker error %v does not wrap the injected failure", err)
		}
		failures++
	}
	if failures == 0 {
		t.Fatal("no worker observed the dead log device")
	}
	st.Close()
}
