package faster

import (
	"testing"
	"testing/quick"
)

func TestHeaderPackUnpack(t *testing.T) {
	f := func(locked, replaced bool, gen, stal uint64) bool {
		gen &= genMask
		stal &= stalMask
		h := PackHeader(locked, replaced, gen, stal)
		return Locked(h) == locked && Replaced(h) == replaced &&
			Generation(h) == gen && Staleness(h) == stal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWithLockIncrementsStaleness(t *testing.T) {
	h := PackHeader(false, false, 5, 7)
	l := withLock(h, +1)
	if !Locked(l) || Staleness(l) != 8 || Generation(l) != 5 {
		t.Fatalf("withLock(+1): locked=%v stal=%d gen=%d", Locked(l), Staleness(l), Generation(l))
	}
	l = withLock(h, -1)
	if !Locked(l) || Staleness(l) != 6 {
		t.Fatalf("withLock(-1): stal=%d", Staleness(l))
	}
	l = withLock(h, 0)
	if !Locked(l) || Staleness(l) != 7 {
		t.Fatalf("withLock(0): stal=%d", Staleness(l))
	}
}

func TestWithLockStalenessSaturates(t *testing.T) {
	h := PackHeader(false, false, 0, 0)
	if s := Staleness(withLock(h, -1)); s != 0 {
		t.Fatalf("staleness underflowed to %d", s)
	}
	h = PackHeader(false, false, 0, stalMask)
	if s := Staleness(withLock(h, +1)); s != stalMask {
		t.Fatalf("staleness overflowed to %d", s)
	}
}

func TestReleaseHeader(t *testing.T) {
	h := PackHeader(true, false, 5, 3)
	r := releaseHeader(h, false)
	if Locked(r) || Generation(r) != 5 || Staleness(r) != 3 {
		t.Fatalf("release without bump: %x", r)
	}
	r = releaseHeader(h, true)
	if Locked(r) || Generation(r) != 6 || Staleness(r) != 3 {
		t.Fatalf("release with bump: gen=%d stal=%d", Generation(r), Staleness(r))
	}
}

func TestGenerationWraps(t *testing.T) {
	h := PackHeader(true, false, genMask, 0)
	r := releaseHeader(h, true)
	if Generation(r) != 0 {
		t.Fatalf("generation should wrap to 0, got %d", Generation(r))
	}
}

func TestPrevWord(t *testing.T) {
	f := func(addr uint64, tomb bool) bool {
		addr &= addrMask
		w := packPrev(addr, tomb)
		return prevAddr(w) == addr && isTombstone(w) == tomb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplacedBitSurvivesLockCycle(t *testing.T) {
	h := PackHeader(false, true, 9, 2)
	l := withLock(h, +1)
	if !Replaced(l) {
		t.Fatal("replaced bit lost on lock")
	}
	r := releaseHeader(l, false)
	if !Replaced(r) {
		t.Fatal("replaced bit lost on release")
	}
}
