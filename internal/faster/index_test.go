package faster

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/llm-db/mlkv-go/internal/util"
)

func TestIndexFindMissing(t *testing.T) {
	ix := newIndex(16)
	if ix.find(util.HashKey(42)) != nil {
		t.Fatal("find on empty index should return nil")
	}
}

func TestIndexFindOrCreateThenFind(t *testing.T) {
	ix := newIndex(16)
	h := util.HashKey(42)
	slot := ix.findOrCreate(h)
	if slot == nil {
		t.Fatal("findOrCreate returned nil")
	}
	if got := ix.find(h); got != slot {
		t.Fatal("find should return the created slot")
	}
	if entryAddr(slot.Load()) != InvalidAddr {
		t.Fatal("fresh entry should carry InvalidAddr")
	}
}

func TestIndexManyKeysDistinctSlots(t *testing.T) {
	ix := newIndex(64)
	slots := make(map[*any]bool)
	_ = slots
	seen := make(map[uint64]bool)
	for k := uint64(0); k < 1000; k++ {
		h := util.HashKey(k)
		slot := ix.findOrCreate(h)
		slot.Store(packEntry(tagOf(h), k+1))
		seen[k] = true
	}
	for k := uint64(0); k < 1000; k++ {
		h := util.HashKey(k)
		slot := ix.find(h)
		if slot == nil {
			t.Fatalf("key %d missing", k)
		}
		// Keys may legitimately share a (bucket, tag); the stored address is
		// then the last writer's. Verify the slot at least holds some valid
		// key's address.
		a := entryAddr(slot.Load())
		if a == InvalidAddr || !seen[a-1] {
			t.Fatalf("slot for key %d holds bogus address %d", k, a)
		}
	}
}

func TestIndexOverflowChains(t *testing.T) {
	// One bucket forces every tag into a single chain with overflow buckets.
	ix := newIndex(1)
	created := 0
	for k := uint64(0); k < 100; k++ {
		h := util.HashKey(k)
		if ix.findOrCreate(h) != nil {
			created++
		}
	}
	if created != 100 {
		t.Fatalf("created %d entries, want 100", created)
	}
	if got := ix.entryCount(); got > 100 || got < 50 {
		// Distinct keys can share tags; entryCount counts unique (bucket,tag).
		t.Fatalf("entryCount = %d, implausible", got)
	}
}

func TestIndexConcurrentFindOrCreateConverges(t *testing.T) {
	ix := newIndex(8)
	const workers = 8
	const keys = 200
	results := make([][]*atomic.Uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		results[w] = make([]*atomic.Uint64, keys)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				results[w][k] = ix.findOrCreate(util.HashKey(uint64(k)))
			}
		}()
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		for w := 1; w < workers; w++ {
			if results[w][k] != results[0][k] {
				t.Fatalf("key %d: workers disagree on slot identity", k)
			}
		}
	}
}
