// Package latency provides an HDR-style log-bucketed histogram for
// tail-latency tracking on hot paths.
//
// The histogram is a fixed array of atomic counters, so Record is
// wait-free, allocation-free, and safe for any number of concurrent
// writers; Merge folds one histogram into another (cross-shard or
// cross-connection aggregation) with the same guarantees. Snapshot walks
// the buckets once and reports p50/p90/p99/p999 and the exact maximum.
//
// Bucket scheme (values are nanoseconds):
//
//   - v < 128: one bucket per nanosecond (exact).
//   - v >= 128: 64 sub-buckets per power-of-two octave. For a value
//     whose most significant bit is m (>= 7), the sub-bucket is the next
//     6 bits below it, so every bucket spans [low, low + 2^(m-6)) with
//     low >= 64 * 2^(m-6). Reporting the bucket midpoint bounds the
//     relative error of any quantile by half a bucket width over the
//     bucket's low bound: 1/128 (< 1%).
//
// With 57 octaves above the linear range the array has 3776 buckets
// (~30 KiB per histogram) and covers every int64 nanosecond value —
// there is no overflow bucket and no configuration.
package latency

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	sigBits    = 6                 // sub-bucket resolution: 2^6 per octave
	linBits    = sigBits + 1       // values below 2^7 are bucketed exactly
	numLinear  = 1 << linBits      // 128 exact buckets
	subCount   = 1 << sigBits      // 64 sub-buckets per octave
	numOctaves = 64 - linBits      // msb 7..63
	numBuckets = numLinear + numOctaves*subCount
)

// Histogram is a fixed-size log-bucketed latency histogram. The zero
// value is ready to use. All methods are safe for concurrent use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// bucketIdx maps a non-negative nanosecond value to its bucket.
func bucketIdx(v int64) int {
	if v < numLinear {
		return int(v)
	}
	m := bits.Len64(uint64(v)) - 1 // >= linBits
	sub := int(v>>(m-sigBits)) - subCount
	return numLinear + (m-linBits)*subCount + sub
}

// bucketMid returns the midpoint of bucket i, the value Snapshot reports
// for quantiles that land in it.
func bucketMid(i int) int64 {
	if i < numLinear {
		return int64(i)
	}
	octave := (i - numLinear) / subCount
	sub := (i - numLinear) % subCount
	shift := uint(octave + linBits - sigBits) // m - sigBits, m = octave+linBits
	mid := uint64(subCount+sub)<<shift + uint64(1)<<shift/2
	if mid > math.MaxInt64 {
		return math.MaxInt64 // top octave's upper half overflows int64
	}
	return int64(mid)
}

// Record adds one observation. Negative durations are clamped to zero.
// Record never allocates and never blocks.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIdx(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Since records the elapsed time from start until now. It is the cheap
// always-on timer helper for hot paths:
//
//	start := time.Now()
//	... do the work ...
//	h.Since(start)
func (h *Histogram) Since(start time.Time) {
	h.Record(time.Since(start))
}

// Merge folds src's observations into h. Concurrent writers on either
// histogram are tolerated: Merge transfers each bucket's current count
// atomically, so no observation is lost or double-counted, though a
// snapshot taken mid-merge may see a partial transfer.
func (h *Histogram) Merge(src *Histogram) {
	if src == nil {
		return
	}
	for i := range src.buckets {
		if n := src.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(src.count.Load())
	h.sum.Add(src.sum.Load())
	m := src.max.Load()
	for {
		old := h.max.Load()
		if m <= old || h.max.CompareAndSwap(old, m) {
			return
		}
	}
}

// Reset zeroes the histogram. Not linearizable against concurrent
// writers; intended for tests and between benchmark phases.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Snapshot is a point-in-time summary of a Histogram. All values are
// nanoseconds except Count. The zero Snapshot means "no observations".
type Snapshot struct {
	Count int64
	Sum   int64
	Max   int64
	P50   int64
	P90   int64
	P99   int64
	P999  int64
}

// Mean returns the average observation, or 0 if empty.
func (s Snapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// quantile ranks for Snapshot, in the order the fields are filled.
var quantiles = [...]float64{0.50, 0.90, 0.99, 0.999}

// Snapshot summarizes the current contents. It walks the bucket array
// once; concurrent Records during the walk may or may not be included.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if s.Count == 0 {
		return s
	}
	// Rank for quantile q is ceil(q * count), at least 1.
	var ranks [len(quantiles)]int64
	for i, q := range quantiles {
		r := int64(q * float64(s.Count))
		if float64(r) < q*float64(s.Count) {
			r++
		}
		if r < 1 {
			r = 1
		}
		ranks[i] = r
	}
	out := [len(quantiles)]int64{}
	var cum int64
	qi := 0
	for i := 0; i < numBuckets && qi < len(quantiles); i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		for qi < len(quantiles) && cum >= ranks[qi] {
			out[qi] = bucketMid(i)
			qi++
		}
	}
	// A racing Record can leave the cumulative walk short of the ranks;
	// report the max for any quantile the walk did not reach.
	for ; qi < len(quantiles); qi++ {
		out[qi] = s.Max
	}
	// The midpoint of the top bucket can exceed the true maximum.
	for i := range out {
		if out[i] > s.Max {
			out[i] = s.Max
		}
	}
	s.P50, s.P90, s.P99, s.P999 = out[0], out[1], out[2], out[3]
	return s
}

// Us converts a nanosecond value from a Snapshot to microseconds as a
// float, the unit bench results and human-facing output use.
func Us(ns int64) float64 { return float64(ns) / 1e3 }
