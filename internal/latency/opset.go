package latency

import "time"

// Op is a latency op class. The classes mirror the data operations every
// layer of the stack shares: scalar reads, batched reads, scalar writes,
// batched writes, and read-modify-write. Layers that see more operations
// than this fold them into the nearest class (the server counts PEEK as
// a Get and DELETE as a Put); layers that see fewer leave the unused
// class empty (the wire protocol has no RMW frame, so a server-side RMW
// histogram only fills via the core table or the composite client RMW).
type Op int

const (
	OpGet Op = iota
	OpGetBatch
	OpPut
	OpPutBatch
	OpRMW
	NumOps
)

// String returns the class name as it appears in expvar and tool output.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpGetBatch:
		return "get_batch"
	case OpPut:
		return "put"
	case OpPutBatch:
		return "put_batch"
	case OpRMW:
		return "rmw"
	}
	return "unknown"
}

// OpSet is one histogram per op class. The zero value is ready to use;
// like Histogram, every method is lock-free and allocation-free.
type OpSet [NumOps]Histogram

// Record adds one observation to the class's histogram.
func (s *OpSet) Record(op Op, d time.Duration) {
	s[op].Record(d)
}

// Since records the elapsed time from start into the class's histogram.
func (s *OpSet) Since(op Op, start time.Time) {
	s[op].Record(time.Since(start))
}

// Snapshot summarizes every class.
func (s *OpSet) Snapshot() [NumOps]Snapshot {
	var out [NumOps]Snapshot
	for i := range s {
		out[i] = s[i].Snapshot()
	}
	return out
}
