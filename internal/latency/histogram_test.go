package latency

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBucketRelativeError is the property behind the whole design: for
// any representable value, the midpoint of the bucket it lands in is
// within 1/128 relative error (and exact below 128ns).
func TestBucketRelativeError(t *testing.T) {
	check := func(v int64) {
		t.Helper()
		idx := bucketIdx(v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("value %d: bucket %d out of range [0,%d)", v, idx, numBuckets)
		}
		mid := bucketMid(idx)
		if v < numLinear {
			if mid != v {
				t.Fatalf("value %d: linear bucket should be exact, got mid %d", v, mid)
			}
			return
		}
		relErr := math.Abs(float64(mid-v)) / float64(v)
		if relErr > 1.0/128 {
			t.Fatalf("value %d: bucket mid %d, relative error %.5f > 1/128", v, mid, relErr)
		}
	}
	// Edges: zero, linear/log boundary, powers of two and neighbors, max.
	for _, v := range []int64{0, 1, 127, 128, 129, 255, 256, 1 << 20, (1 << 20) + 1, math.MaxInt64 - 1, math.MaxInt64} {
		check(v)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		// Log-uniform draw so every octave gets coverage.
		v := int64(1) << uint(rng.Intn(63))
		v += rng.Int63n(v)
		check(v)
	}
}

// TestBucketMonotone: bucket midpoints are non-decreasing in the bucket
// index, so cumulative-count quantiles are well defined. (The top
// octave's midpoints clamp to MaxInt64, hence non-decreasing rather
// than strictly increasing.)
func TestBucketMonotone(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < numBuckets; i++ {
		mid := bucketMid(i)
		if mid < prev {
			t.Fatalf("bucket %d: mid %d < previous %d", i, mid, prev)
		}
		if mid == prev && mid != math.MaxInt64 {
			t.Fatalf("bucket %d: duplicate mid %d below the clamp", i, mid)
		}
		prev = mid
	}
}

func TestSnapshotEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s != (Snapshot{}) {
		t.Fatalf("empty histogram snapshot = %+v, want zero", s)
	}
	if s.Mean() != 0 {
		t.Fatalf("empty Mean = %d, want 0", s.Mean())
	}
}

func TestSnapshotOneSample(t *testing.T) {
	var h Histogram
	h.Record(1500 * time.Microsecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("Count = %d, want 1", s.Count)
	}
	want := int64(1500 * time.Microsecond)
	if s.Max != want || s.Sum != want {
		t.Fatalf("Max/Sum = %d/%d, want %d", s.Max, s.Sum, want)
	}
	// Every quantile of a single sample is that sample, within the
	// bucket relative-error bound, and never above the exact max.
	for _, p := range []int64{s.P50, s.P90, s.P99, s.P999} {
		if p > s.Max {
			t.Fatalf("quantile %d above max %d", p, s.Max)
		}
		if relErr := math.Abs(float64(p-want)) / float64(want); relErr > 1.0/128 {
			t.Fatalf("quantiles = %d/%d/%d/%d, want ~%d (err %.5f)", s.P50, s.P90, s.P99, s.P999, want, relErr)
		}
	}
}

func TestSnapshotQuantiles(t *testing.T) {
	var h Histogram
	// 0..9999 microseconds, one sample each: p50 ~ 5ms, p99 ~ 9.9ms.
	for i := 0; i < 10000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 10000 {
		t.Fatalf("Count = %d", s.Count)
	}
	checks := []struct {
		name string
		got  int64
		want float64
	}{
		{"p50", s.P50, 5000e3}, {"p90", s.P90, 9000e3},
		{"p99", s.P99, 9900e3}, {"p999", s.P999, 9990e3},
	}
	for _, c := range checks {
		if relErr := math.Abs(float64(c.got)-c.want) / c.want; relErr > 0.02 {
			t.Errorf("%s = %d, want ~%.0f (err %.4f)", c.name, c.got, c.want, relErr)
		}
	}
	if s.Max != 9999e3 {
		t.Fatalf("Max = %d, want 9999000", s.Max)
	}
}

// TestMergeEquivalence: recording a stream split across N histograms and
// merging must yield exactly the snapshot of recording the whole stream
// into one histogram, regardless of split or merge order (commutativity
// and associativity of Merge).
func TestMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var single Histogram
	parts := make([]*Histogram, 4)
	for i := range parts {
		parts[i] = new(Histogram)
	}
	for i := 0; i < 50000; i++ {
		d := time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
		single.Record(d)
		parts[rng.Intn(len(parts))].Record(d)
	}
	want := single.Snapshot()

	// Left fold: ((p0+p1)+p2)+p3.
	var left Histogram
	for _, p := range parts {
		left.Merge(p)
	}
	// Reverse fold with nested intermediate: p3+(p2+(p1+p0)).
	var inner, right Histogram
	inner.Merge(parts[0])
	inner.Merge(parts[1])
	right.Merge(parts[3])
	right.Merge(parts[2])
	right.Merge(&inner)

	if got := left.Snapshot(); got != want {
		t.Fatalf("left-fold merge snapshot %+v != single-histogram %+v", got, want)
	}
	if got := right.Snapshot(); got != want {
		t.Fatalf("reordered merge snapshot %+v != single-histogram %+v", got, want)
	}
}

// TestConcurrentRecord hammers one histogram from many goroutines (run
// under -race in CI) and checks no observation is lost.
func TestConcurrentRecord(t *testing.T) {
	const (
		writers = 8
		perW    = 20000
	)
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				h.Record(time.Duration(rng.Int63n(int64(time.Second))))
			}
		}(int64(w))
	}
	// Concurrent readers and a concurrent merge target exercise the
	// lock-free read paths while writes are in flight.
	done := make(chan struct{})
	go func() {
		var agg Histogram
		for {
			select {
			case <-done:
				return
			default:
				agg.Reset()
				agg.Merge(&h)
				_ = h.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	s := h.Snapshot()
	if s.Count != writers*perW {
		t.Fatalf("Count = %d, want %d", s.Count, writers*perW)
	}
	var bucketSum int64
	for i := range h.buckets {
		bucketSum += h.buckets[i].Load()
	}
	if bucketSum != writers*perW {
		t.Fatalf("bucket sum = %d, want %d", bucketSum, writers*perW)
	}
	if s.P50 <= 0 || s.P999 < s.P50 || s.Max < s.P999 {
		t.Fatalf("implausible quantiles: %+v", s)
	}
}

func TestOpSet(t *testing.T) {
	var s OpSet
	s.Record(OpGet, time.Millisecond)
	s.Since(OpPutBatch, time.Now().Add(-2*time.Millisecond))
	snaps := s.Snapshot()
	if snaps[OpGet].Count != 1 || snaps[OpPutBatch].Count != 1 {
		t.Fatalf("counts: %+v", snaps)
	}
	if snaps[OpGetBatch].Count != 0 || snaps[OpRMW].Count != 0 {
		t.Fatalf("unrecorded classes not empty: %+v", snaps)
	}
	for op, want := range map[Op]string{OpGet: "get", OpGetBatch: "get_batch", OpPut: "put", OpPutBatch: "put_batch", OpRMW: "rmw"} {
		if op.String() != want {
			t.Fatalf("Op(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
}

// BenchmarkRecord documents the hot-path cost; the alloc gate in the
// root package is the hard check that this stays at zero allocations.
func BenchmarkRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i))
	}
}
