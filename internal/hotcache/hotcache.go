// Package hotcache is the staleness-aware hot tier behind MLKV's
// application-side embedding cache (Figure 5(b)) and the server's shared
// per-model cache: a sharded LRU whose entries are stamped with the value
// of a write clock at fill time. A read is served from the tier only when
// the entry is provably within the caller's staleness bound — always
// under ASP, never under BSP, and only while at most `bound` writes have
// landed since the fill under a finite SSP bound — so the tier can sit in
// front of a bounded-staleness store without weakening the guarantee the
// bound spells out.
//
// The tier is generic over the element type so the same structure serves
// float32 embeddings (core.Table, the remote driver) and raw value bytes
// (the kv wrapper the server uses). Entries recycle in place once a shard
// reaches capacity, so the steady-state hot path — hit, refresh, or
// eviction-reusing fill — performs no allocation.
package hotcache

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/llm-db/mlkv-go/internal/util"
)

// BoundAsync mirrors faster.BoundAsync: the ASP staleness bound
// (INT64_MAX), under which a cached entry is always admissible.
const BoundAsync = int64(math.MaxInt64)

// nShards spreads lock contention; must be a power of two.
const nShards = 16

// Stats is a snapshot of the tier's counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// Add returns the element-wise sum (for merging client- and server-side
// tiers into one view).
func (a Stats) Add(b Stats) Stats {
	return Stats{Hits: a.Hits + b.Hits, Misses: a.Misses + b.Misses, Evictions: a.Evictions + b.Evictions}
}

// Admissible reports whether an entry whose clock stamp trails the
// current write clock by gap may be served under bound. The rule encodes
// the consistency ladder: with the clock disabled (bound < 0) there is no
// staleness contract and the tier behaves like any cache; BSP (bound 0)
// requires every read to synchronize through the store, so nothing is
// admissible; ASP admits everything; a finite SSP bound admits an entry
// while no more than bound writes have landed since its fill — a
// conservative table-wide over-count of the record's own staleness, so a
// served value is never more than bound versions behind.
func Admissible(bound, gap int64) bool {
	switch {
	case bound < 0:
		return true
	case bound == 0:
		return false
	case bound == BoundAsync:
		return true
	default:
		return gap <= bound
	}
}

// Cache is one staleness-aware hot tier over fixed-length []T values.
// All methods are safe for concurrent use.
type Cache[T any] struct {
	shards [nShards]shard[T]
	valLen int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// entry is one cached value on a shard's intrusive LRU list. Evicted
// entries are reused for the incoming key, so a full shard churns with
// zero allocation.
type entry[T any] struct {
	key        uint64
	clock      int64
	val        []T
	prev, next *entry[T]
}

type shard[T any] struct {
	mu    sync.Mutex
	cap   int
	items map[uint64]*entry[T]
	head  *entry[T] // most recently used
	tail  *entry[T] // least recently used
}

// New builds a tier holding up to capacity values of valLen elements,
// spread over 16 shards.
func New[T any](capacity, valLen int) *Cache[T] {
	perShard := capacity / nShards
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache[T]{valLen: valLen}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].items = make(map[uint64]*entry[T], perShard)
	}
	return c
}

// ValLen returns the fixed value length the tier was built for.
func (c *Cache[T]) ValLen() int { return c.valLen }

func (c *Cache[T]) shardOf(key uint64) *shard[T] {
	return &c.shards[util.Mix64(key)&(nShards-1)]
}

// Get copies the cached value for key into dst if an entry exists and is
// admissible: its clock stamp must trail now by no more than bound allows
// (see Admissible). An inadmissible or absent entry counts as a miss. A
// dst of the wrong length never hits.
func (c *Cache[T]) Get(key uint64, dst []T, now, bound int64) bool {
	if len(dst) != c.valLen {
		return false
	}
	sh := c.shardOf(key)
	sh.mu.Lock()
	e, ok := sh.items[key]
	if !ok || !Admissible(bound, now-e.clock) {
		sh.mu.Unlock()
		c.misses.Add(1)
		return false
	}
	copy(dst, e.val)
	sh.moveToFront(e)
	sh.mu.Unlock()
	c.hits.Add(1)
	return true
}

// Put inserts or refreshes key's value, stamped with clock. A refresh
// carrying an older stamp than the resident entry is dropped: a stale
// read-side fill racing a write-through must not regress the entry, whose
// invariant is "val reflects the table at or after clock". Values of the
// wrong length are ignored.
func (c *Cache[T]) Put(key uint64, val []T, clock int64) {
	if len(val) != c.valLen {
		return
	}
	sh := c.shardOf(key)
	sh.mu.Lock()
	if e, ok := sh.items[key]; ok {
		if clock >= e.clock {
			copy(e.val, val)
			e.clock = clock
			sh.moveToFront(e)
		}
		sh.mu.Unlock()
		return
	}
	var e *entry[T]
	if len(sh.items) >= sh.cap {
		// Recycle the LRU tail in place for the incoming key.
		e = sh.tail
		sh.unlink(e)
		delete(sh.items, e.key)
		c.evictions.Add(1)
	} else {
		e = &entry[T]{val: make([]T, c.valLen)}
	}
	e.key = key
	e.clock = clock
	copy(e.val, val)
	sh.items[key] = e
	sh.pushFront(e)
	sh.mu.Unlock()
}

// Invalidate drops key's entry (after an update whose new value is not at
// hand, e.g. a storage-side RMW, or a delete).
func (c *Cache[T]) Invalidate(key uint64) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	if e, ok := sh.items[key]; ok {
		sh.unlink(e)
		delete(sh.items, key)
	}
	sh.mu.Unlock()
}

// Len returns the number of resident entries.
func (c *Cache[T]) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].items)
		c.shards[i].mu.Unlock()
	}
	return n
}

// Stats snapshots the hit/miss/eviction counters.
func (c *Cache[T]) Stats() Stats {
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), Evictions: c.evictions.Load()}
}

func (sh *shard[T]) pushFront(e *entry[T]) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *shard[T]) unlink(e *entry[T]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *shard[T]) moveToFront(e *entry[T]) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}
