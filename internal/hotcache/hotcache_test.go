package hotcache

import "testing"

func TestAdmissible(t *testing.T) {
	cases := []struct {
		bound, gap int64
		want       bool
	}{
		{-1, 1 << 40, true},         // clock disabled: no contract
		{0, 0, false},               // BSP: never
		{BoundAsync, 1 << 40, true}, // ASP: always
		{4, 4, true},                // SSP at the bound
		{4, 5, false},               // SSP beyond the bound
		{1, 0, true},
	}
	for _, c := range cases {
		if got := Admissible(c.bound, c.gap); got != c.want {
			t.Errorf("Admissible(bound=%d, gap=%d) = %v, want %v", c.bound, c.gap, got, c.want)
		}
	}
}

// TestByteCacheRoundTrip pins the byte instantiation the kv wrapper and
// server tier use.
func TestByteCacheRoundTrip(t *testing.T) {
	c := New[byte](64, 4)
	c.Put(9, []byte{1, 2, 3, 4}, 5)
	dst := make([]byte, 4)
	if !c.Get(9, dst, 5, BoundAsync) {
		t.Fatal("miss on resident key")
	}
	if dst[2] != 3 {
		t.Fatalf("wrong bytes: %v", dst)
	}
	if c.Get(9, dst, 100, 4) { // gap 95 > bound 4
		t.Fatal("beyond-bound byte entry served")
	}
	c.Invalidate(9)
	if c.Len() != 0 {
		t.Fatalf("len after invalidate: %d", c.Len())
	}
}

// TestEntryRecycling pins the zero-allocation eviction path: a full shard
// reuses the evicted entry's storage for the incoming key.
func TestEntryRecycling(t *testing.T) {
	c := New[float32](16, 1) // one slot per shard
	for k := uint64(0); k < 1024; k++ {
		c.Put(k, []float32{float32(k)}, 0)
	}
	if c.Len() > 16 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions counted")
	}
}
