// Package server is mlkv's network front-end: a TCP listener speaking the
// internal/wire framed protocol over any kv.Store. Each connection gets
// its own store session (the per-worker handle the engine expects) and is
// handled by one goroutine, so a remote client maps onto the store exactly
// like a local worker thread; batch frames fan into the sharded store as
// one batched operation. Shutdown drains: in-flight requests finish and
// their responses flush before connections close.
package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/wire"
)

// connBufSize sizes the per-connection read/write buffers: large enough
// that a typical batch frame needs one syscall, small enough that a
// thousand idle connections stay cheap.
const connBufSize = 64 << 10

func newReader(c net.Conn) *bufio.Reader { return bufio.NewReaderSize(c, connBufSize) }
func newWriter(c net.Conn) *bufio.Writer { return bufio.NewWriterSize(c, connBufSize) }

// Config parameterizes a Server.
type Config struct {
	// Store is the backing store. Batch frames use its native batch path
	// when it has one (kv.BatchSession); CHECKPOINT and STATS require
	// kv.Checkpointer / kv.StatsReporter and answer an error otherwise.
	Store kv.Store
	// MaxFrame bounds incoming frame sizes (default wire.DefaultMaxFrame).
	MaxFrame uint32
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

// Stats is a snapshot of the server's own counters (the store's operation
// counters travel separately, over the STATS op).
type Stats struct {
	ConnsAccepted int64
	ConnsActive   int64
	Requests      int64
	BatchKeys     int64 // keys carried by GETBATCH/PUTBATCH frames
	Errors        int64 // requests answered with RespErr
}

// Server serves one kv.Store over TCP.
type Server struct {
	cfg Config

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	// draining is atomic because every handler checks it per request;
	// conns/ln stay behind mu.
	draining atomic.Bool

	wg sync.WaitGroup // one per live connection

	connsAccepted atomic.Int64
	connsActive   atomic.Int64
	requests      atomic.Int64
	batchKeys     atomic.Int64
	errorsSent    atomic.Int64
}

// New builds a Server; call Serve or ListenAndServe to start it.
func New(cfg Config) *Server {
	if cfg.MaxFrame == 0 {
		cfg.MaxFrame = wire.DefaultMaxFrame
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Server{cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown (which returns nil) or a
// listener error.
func (s *Server) Serve(ln net.Listener) error {
	if s.draining.Load() {
		return errors.New("server: already shut down")
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.connsAccepted.Add(1)
		s.connsActive.Add(1)
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, c)
				s.mu.Unlock()
				s.connsActive.Add(-1)
				s.wg.Done()
			}()
			s.handleConn(c)
		}()
	}
}

// Addr returns the bound listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown stops accepting, then drains: every connection finishes the
// request it is processing, flushes its responses, and closes. If ctx
// expires first the stragglers are closed forcibly. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	ln := s.ln
	// Nudge handlers out of their blocking reads; requests already being
	// processed are unaffected (deadlines only bound reads).
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		ConnsAccepted: s.connsAccepted.Load(),
		ConnsActive:   s.connsActive.Load(),
		Requests:      s.requests.Load(),
		BatchKeys:     s.batchKeys.Load(),
		Errors:        s.errorsSent.Load(),
	}
}

// connState carries one connection's reusable buffers so steady-state
// request handling does not allocate per frame beyond the frame body.
type connState struct {
	sess    kv.Session
	vs      int
	keys    []uint64
	found   []bool
	scratch []byte // vs bytes, single-key GET staging
}

func (s *Server) handleConn(c net.Conn) {
	defer c.Close()
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // responses are latency-bound, like the client's requests
	}
	sess, err := s.cfg.Store.NewSession()
	if err != nil {
		s.cfg.Logf("server: %s: session: %v", c.RemoteAddr(), err)
		return
	}
	defer sess.Close()
	vs := s.cfg.Store.ValueSize()
	st := &connState{sess: sess, vs: vs, scratch: make([]byte, vs)}
	br := newReader(c)
	bw := newWriter(c)
	defer bw.Flush()
	for {
		f, err := wire.ReadFrame(br, s.cfg.MaxFrame)
		if err != nil {
			// io.EOF: client hung up. Deadline errors: Shutdown nudged us.
			// Anything else is a framing violation; either way the
			// connection is done. Responses already written still flush.
			return
		}
		respOp, payload, fatal := s.handle(st, f.Op, f.Payload)
		s.requests.Add(1)
		if respOp == wire.RespErr {
			s.errorsSent.Add(1)
		}
		if err := wire.WriteFrame(bw, f.CorrID, respOp, payload); err != nil {
			return
		}
		// Flush when the pipeline drains (no bytes waiting) so pipelined
		// clients get batched writes and single-shot clients get answers.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
		if fatal || s.draining.Load() {
			return
		}
	}
}

// handle services one request frame. fatal marks protocol violations that
// should end the connection after the error response is sent.
func (s *Server) handle(st *connState, op wire.Op, p []byte) (respOp wire.Op, payload []byte, fatal bool) {
	fail := func(err error) (wire.Op, []byte, bool) {
		return wire.RespErr, []byte(err.Error()), false
	}
	switch op {
	case wire.OpHello:
		v, err := wire.DecodeHello(p)
		if err != nil {
			return fail(err)
		}
		if v != wire.Version {
			op, pl, _ := fail(fmt.Errorf("server: protocol version %d, want %d", v, wire.Version))
			return op, pl, true
		}
		shards := 1
		if sh, ok := s.cfg.Store.(kv.Sharded); ok {
			shards = sh.Shards()
		}
		return wire.RespOK, wire.EncodeHelloResp(st.vs, shards, s.cfg.Store.Name()), false

	case wire.OpGet:
		key, err := wire.DecodeKey(p)
		if err != nil {
			return fail(err)
		}
		found, err := st.sess.Get(key, st.scratch)
		if err != nil {
			return fail(err)
		}
		return wire.RespOK, wire.EncodeGetResp(found, st.scratch), false

	case wire.OpPeek:
		key, err := wire.DecodeKey(p)
		if err != nil {
			return fail(err)
		}
		found, err := kv.SessionPeek(st.sess, key, st.scratch)
		if err != nil {
			return fail(err)
		}
		return wire.RespOK, wire.EncodeGetResp(found, st.scratch), false

	case wire.OpPut:
		key, val, err := wire.DecodePut(p, st.vs)
		if err != nil {
			return fail(err)
		}
		if err := st.sess.Put(key, val); err != nil {
			return fail(err)
		}
		return wire.RespOK, nil, false

	case wire.OpDelete:
		key, err := wire.DecodeKey(p)
		if err != nil {
			return fail(err)
		}
		if err := st.sess.Delete(key); err != nil {
			return fail(err)
		}
		return wire.RespOK, nil, false

	case wire.OpGetBatch:
		keys, err := wire.DecodeKeys(p, st.keys)
		if err != nil {
			return fail(err)
		}
		st.keys = keys
		n := len(keys)
		s.batchKeys.Add(int64(n))
		// Build the response in place: found flags and values land
		// directly in the outgoing payload, one batched store call.
		out := make([]byte, 4+n+n*st.vs)
		binary.LittleEndian.PutUint32(out, uint32(n))
		vals := out[4+n:]
		st.found = grow(st.found, n)
		if err := kv.SessionGetBatch(st.sess, st.vs, keys, vals, st.found); err != nil {
			return fail(err)
		}
		for i, f := range st.found {
			if f {
				out[4+i] = 1
			}
		}
		return wire.RespOK, out, false

	case wire.OpPutBatch:
		keys, vals, err := wire.DecodePutBatch(p, st.vs, st.keys)
		if err != nil {
			return fail(err)
		}
		st.keys = keys
		s.batchKeys.Add(int64(len(keys)))
		if err := kv.SessionPutBatch(st.sess, st.vs, keys, vals); err != nil {
			return fail(err)
		}
		return wire.RespOK, nil, false

	case wire.OpLookahead:
		keys, err := wire.DecodeKeys(p, st.keys)
		if err != nil {
			return fail(err)
		}
		st.keys = keys
		var copied uint32
		for _, k := range keys {
			ok, err := st.sess.Prefetch(k)
			if err != nil {
				return fail(err)
			}
			if ok {
				copied++
			}
		}
		return wire.RespOK, wire.EncodeUint32(copied), false

	case wire.OpCheckpoint:
		cp, ok := s.cfg.Store.(kv.Checkpointer)
		if !ok {
			return fail(fmt.Errorf("server: engine %s cannot checkpoint", s.cfg.Store.Name()))
		}
		if err := cp.Checkpoint(); err != nil {
			return fail(err)
		}
		return wire.RespOK, nil, false

	case wire.OpStats:
		sr, ok := s.cfg.Store.(kv.StatsReporter)
		if !ok {
			return fail(fmt.Errorf("server: engine %s reports no stats", s.cfg.Store.Name()))
		}
		return wire.RespOK, wire.EncodeStatsResp(sr.Stats()), false
	}
	return fail(fmt.Errorf("server: unknown opcode %d", uint8(op)))
}

func grow(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	clear(b)
	return b
}
