// Package server is mlkv's network front-end: a TCP listener speaking the
// internal/wire framed protocol over a registry of named models. Each
// connection is handled by one goroutine and holds, per model it has
// attached, its own store session (the per-worker handle the engine
// expects) — so a remote client maps onto a model exactly like a local
// worker thread, and one connection can drive many models. Batch frames
// fan into the sharded stores as one batched operation. Shutdown drains:
// in-flight requests finish and their responses flush before connections
// close.
package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/latency"
	"github.com/llm-db/mlkv-go/internal/wire"
)

// ClusterState is the server's view of its cluster node state, satisfied
// by *cluster.State. It is an interface here (payloads crossing it stay
// encoded) so the server does not import internal/cluster — whose router
// half imports internal/client, which this package's tests drive.
type ClusterState interface {
	// Encoded returns the current map's wire encoding, cached per epoch.
	Encoded() []byte
	// ReadOwned / WriteOwned gate data frames by the key's hash range.
	ReadOwned(key uint64) bool
	WriteOwned(key uint64) bool
	// Replicate streams one committed write to this node's replicas.
	Replicate(model string, dim int, kind byte, keys []uint64, vals []byte)
	// HandleJoin merges a CLUSTERJOIN node record into the membership and
	// returns the merged map, encoded.
	HandleJoin(payload []byte) ([]byte, error)
	// HandleSync adopts a gossiped CLUSTERSYNC map if newer and returns
	// the node's current map, encoded.
	HandleSync(payload []byte) ([]byte, error)
	// HandlePing absorbs a CLUSTERPING heartbeat and returns this node's
	// own health record, encoded (an error when no detector runs — the
	// resulting RespErr still proves this node alive to the pinger).
	HandlePing(payload []byte) ([]byte, error)
	// HandleLeave absorbs a CLUSTERLEAVE departure announcement; the named
	// node skips the suspicion timeout and is treated as confirmed dead.
	HandleLeave(payload []byte) ([]byte, error)
}

// connBufSize sizes the per-connection read/write buffers: large enough
// that a typical batch frame needs one syscall, small enough that a
// thousand idle connections stay cheap.
const connBufSize = 64 << 10

func newReader(c net.Conn) *bufio.Reader { return bufio.NewReaderSize(c, connBufSize) }
func newWriter(c net.Conn) *bufio.Writer { return bufio.NewWriterSize(c, connBufSize) }

// Config parameterizes a Server.
type Config struct {
	// Registry holds the named models the server serves. Models open
	// lazily on OPEN frames (when the registry has an Opener) or are
	// pre-registered with Registry.Add. The registry's lifecycle belongs
	// to the caller: Shutdown drains connections but does not close it.
	Registry *Registry
	// MaxFrame bounds incoming frame sizes (default wire.DefaultMaxFrame).
	MaxFrame uint32
	// Cluster, when set, makes this server one node of a cluster: data
	// frames are ownership-checked against the node's hash ranges (a miss
	// answers NOT_OWNER with the current map), CLUSTERMAP/CLUSTERJOIN/
	// CLUSTERSYNC are served, committed writes stream to replicas, and
	// REPLWRITE frames are accepted. Nil serves a plain single-node store.
	Cluster ClusterState
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

// Stats is a snapshot of the server's own counters (per-model counters
// travel separately, over the STATS op).
type Stats struct {
	ConnsAccepted int64
	ConnsActive   int64
	Requests      int64
	BatchKeys     int64 // keys carried by GETBATCH/PUTBATCH frames
	Errors        int64 // requests answered with RespErr
}

// Server serves a model registry over TCP.
type Server struct {
	cfg Config

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	// draining is atomic because every handler checks it per request;
	// conns/ln stay behind mu.
	draining atomic.Bool

	wg sync.WaitGroup // one per live connection

	connsAccepted atomic.Int64
	connsActive   atomic.Int64
	requests      atomic.Int64
	batchKeys     atomic.Int64
	errorsSent    atomic.Int64
}

// New builds a Server; call Serve or ListenAndServe to start it.
func New(cfg Config) *Server {
	if cfg.MaxFrame == 0 {
		cfg.MaxFrame = wire.DefaultMaxFrame
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Server{cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown (which returns nil) or a
// listener error.
func (s *Server) Serve(ln net.Listener) error {
	if s.draining.Load() {
		return errors.New("server: already shut down")
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.connsAccepted.Add(1)
		s.connsActive.Add(1)
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, c)
				s.mu.Unlock()
				s.connsActive.Add(-1)
				s.wg.Done()
			}()
			s.handleConn(c)
		}()
	}
}

// Addr returns the bound listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown stops accepting, then drains: every connection finishes the
// request it is processing, flushes its responses, and closes. If ctx
// expires first the stragglers are closed forcibly. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	ln := s.ln
	// Nudge handlers out of their blocking reads; requests already being
	// processed are unaffected (deadlines only bound reads).
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		ConnsAccepted: s.connsAccepted.Load(),
		ConnsActive:   s.connsActive.Load(),
		Requests:      s.requests.Load(),
		BatchKeys:     s.batchKeys.Load(),
		Errors:        s.errorsSent.Load(),
	}
}

// connModel is one connection's state on one attached model: the engine
// session (driven serially by this connection's handler goroutine), the
// attach refcount, and reusable buffers so steady-state request handling
// does not allocate per frame beyond the frame body.
type connModel struct {
	m       *Model
	sess    kv.Session
	refs    int // client sessions attached through this connection
	vs      int
	keys    []uint64
	found   []bool
	scratch []byte // vs bytes, single-key GET staging
	resp    []byte // reusable GET/PEEK response payload (1+vs bytes)
	out     []byte // reusable GETBATCH response payload
}

// connState is one connection's handler state: the models it has touched,
// by handle.
type connState struct {
	models map[uint32]*connModel
}

func (s *Server) handleConn(c net.Conn) {
	defer c.Close()
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // responses are latency-bound, like the client's requests
	}
	st := &connState{models: make(map[uint32]*connModel)}
	defer func() {
		// Connection teardown releases everything it still holds: engine
		// sessions close and the models' remote-session gauges drop by the
		// un-detached attach balance, so a dropped client cannot leak
		// sessions into the drain accounting.
		for _, cm := range st.models {
			if cm.sess != nil {
				cm.sess.Close()
			}
			cm.m.activeSessions.Add(int64(-cm.refs))
		}
	}()
	br := newReader(c)
	bw := newWriter(c)
	defer bw.Flush()
	fw := wire.NewFrameWriter(bw)
	// One frame body buffer per connection: each request is fully handled
	// and its response written before the next ReadFrameBuf reuses it.
	var frameBuf []byte
	for {
		f, fb, err := wire.ReadFrameBuf(br, s.cfg.MaxFrame, frameBuf)
		frameBuf = fb
		if err != nil {
			// io.EOF: client hung up. Deadline errors: Shutdown nudged us.
			// Anything else is a framing violation; either way the
			// connection is done. Responses already written still flush.
			return
		}
		respOp, payload, fatal := s.handle(st, f.Op, f.Payload)
		s.requests.Add(1)
		if respOp == wire.RespErr {
			s.errorsSent.Add(1)
		}
		if err := fw.Write(f.CorrID, respOp, payload); err != nil {
			return
		}
		// Flush when the pipeline drains (no bytes waiting) so pipelined
		// clients get batched writes and single-shot clients get answers.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
		if fatal || s.draining.Load() {
			return
		}
	}
}

// attached resolves a data frame's handle to this connection's session
// state, requiring a prior ATTACH so session accounting stays truthful.
func (st *connState) attached(handle uint32) (*connModel, error) {
	cm := st.models[handle]
	if cm == nil || cm.sess == nil {
		return nil, fmt.Errorf("server: model handle %d not attached on this connection", handle)
	}
	return cm, nil
}

// handle services one request frame. fatal marks protocol violations that
// should end the connection after the error response is sent.
func (s *Server) handle(st *connState, op wire.Op, p []byte) (respOp wire.Op, payload []byte, fatal bool) {
	fail := func(err error) (wire.Op, []byte, bool) {
		return wire.RespErr, []byte(err.Error()), false
	}
	reg := s.cfg.Registry
	switch op {
	case wire.OpHello:
		v, err := wire.DecodeHello(p)
		if err != nil {
			return fail(err)
		}
		if v != wire.Version {
			op, pl, _ := fail(fmt.Errorf("server: protocol version %d, want %d (upgrade the older side)", v, wire.Version))
			return op, pl, true
		}
		return wire.RespOK, wire.EncodeHelloResp(reg.Name()), false

	case wire.OpOpen:
		id, dim, shards, bound, engine, err := wire.DecodeOpen(p)
		if err != nil {
			return fail(err)
		}
		m, err := reg.Open(id, dim, shards, bound, engine)
		if err != nil {
			return fail(err)
		}
		return wire.RespOK, wire.EncodeOpenResp(m.handle, m.dim, m.shards(), m.bound(), m.store.Name()), false

	case wire.OpAttach:
		h, rest, err := wire.DecodeHandle(p)
		if err != nil || len(rest) != 0 {
			return fail(fmt.Errorf("%w: ATTACH wants a bare handle", wire.ErrShortPayload))
		}
		m, err := reg.lookup(h)
		if err != nil {
			return fail(err)
		}
		cm := st.models[h]
		if cm == nil {
			cm = &connModel{m: m, vs: m.dim * 4}
			cm.scratch = make([]byte, cm.vs)
			st.models[h] = cm
		}
		if cm.sess == nil {
			sess, err := m.store.NewSession()
			if err != nil {
				return fail(err)
			}
			cm.sess = sess
		}
		cm.refs++
		m.activeSessions.Add(1)
		return wire.RespOK, nil, false

	case wire.OpDetach:
		h, rest, err := wire.DecodeHandle(p)
		if err != nil || len(rest) != 0 {
			return fail(fmt.Errorf("%w: DETACH wants a bare handle", wire.ErrShortPayload))
		}
		cm := st.models[h]
		if cm == nil || cm.refs == 0 {
			return fail(fmt.Errorf("server: model handle %d has no attached session to detach", h))
		}
		cm.refs--
		cm.m.activeSessions.Add(-1)
		if cm.refs == 0 && cm.sess != nil {
			cm.sess.Close()
			cm.sess = nil
		}
		return wire.RespOK, nil, false

	case wire.OpCheckpoint:
		h, _, err := wire.DecodeHandle(p)
		if err != nil {
			return fail(err)
		}
		m, err := reg.lookup(h)
		if err != nil {
			return fail(err)
		}
		cp, ok := m.store.(kv.Checkpointer)
		if !ok {
			return fail(fmt.Errorf("server: engine %s cannot checkpoint", m.store.Name()))
		}
		if err := cp.Checkpoint(); err != nil {
			return fail(err)
		}
		return wire.RespOK, nil, false

	case wire.OpStats:
		h, _, err := wire.DecodeHandle(p)
		if err != nil {
			return fail(err)
		}
		m, err := reg.lookup(h)
		if err != nil {
			return fail(err)
		}
		return wire.RespOK, wire.EncodeStatsResp(m.Stats()), false

	case wire.OpClusterMap:
		if s.cfg.Cluster == nil {
			return fail(errors.New("server: not clustered"))
		}
		return wire.RespOK, s.cfg.Cluster.Encoded(), false

	case wire.OpClusterJoin:
		if s.cfg.Cluster == nil {
			return fail(errors.New("server: not clustered"))
		}
		merged, err := s.cfg.Cluster.HandleJoin(p)
		if err != nil {
			return fail(err)
		}
		return wire.RespOK, merged, false

	case wire.OpClusterPing:
		if s.cfg.Cluster == nil {
			return fail(errors.New("server: not clustered"))
		}
		info, err := s.cfg.Cluster.HandlePing(p)
		if err != nil {
			return fail(err)
		}
		return wire.RespOK, info, false

	case wire.OpClusterLeave:
		if s.cfg.Cluster == nil {
			return fail(errors.New("server: not clustered"))
		}
		if _, err := s.cfg.Cluster.HandleLeave(p); err != nil {
			return fail(err)
		}
		return wire.RespOK, nil, false

	case wire.OpClusterSync:
		if s.cfg.Cluster == nil {
			return fail(errors.New("server: not clustered"))
		}
		// Adoption keeps the newer epoch either way; the response always
		// carries this node's current map, so sync doubles as an exchange.
		cur, err := s.cfg.Cluster.HandleSync(p)
		if err != nil {
			return fail(err)
		}
		return wire.RespOK, cur, false
	}

	// Everything below is a data op: handle-prefixed and session-bound.
	h, rest, err := wire.DecodeHandle(p)
	if err != nil {
		return fail(err)
	}
	cm, err := st.attached(h)
	if err != nil {
		return fail(err)
	}
	cm.m.requests.Add(1)
	switch op {
	case wire.OpGet:
		key, waitMs, err := wire.DecodeGet(rest)
		if err != nil {
			return fail(err)
		}
		if !s.mayRead(key) {
			return s.notOwner()
		}
		ctx, cancel := waitCtx(waitMs)
		start := time.Now()
		found, err := kv.SessionGetCtx(ctx, cm.sess, key, cm.scratch)
		cm.m.lat.Since(latency.OpGet, start)
		cancel()
		if err != nil {
			return fail(err)
		}
		cm.resp = wire.AppendGetResp(cm.resp[:0], found, cm.scratch)
		return wire.RespOK, cm.resp, false

	case wire.OpPeek:
		key, err := wire.DecodeKey(rest)
		if err != nil {
			return fail(err)
		}
		if !s.mayRead(key) {
			return s.notOwner()
		}
		start := time.Now()
		found, err := kv.SessionPeek(cm.sess, key, cm.scratch)
		cm.m.lat.Since(latency.OpGet, start)
		if err != nil {
			return fail(err)
		}
		cm.resp = wire.AppendGetResp(cm.resp[:0], found, cm.scratch)
		return wire.RespOK, cm.resp, false

	case wire.OpPut:
		key, val, err := wire.DecodePut(rest, cm.vs)
		if err != nil {
			return fail(err)
		}
		if !s.mayWrite(key) {
			return s.notOwner()
		}
		start := time.Now()
		err = cm.sess.Put(key, val)
		cm.m.lat.Since(latency.OpPut, start)
		if err != nil {
			return fail(err)
		}
		s.replicate(cm, wire.ReplPut, []uint64{key}, val)
		return wire.RespOK, nil, false

	case wire.OpDelete:
		key, err := wire.DecodeKey(rest)
		if err != nil {
			return fail(err)
		}
		if !s.mayWrite(key) {
			return s.notOwner()
		}
		// Deletes are write-class traffic: they share the Put histogram.
		start := time.Now()
		err = cm.sess.Delete(key)
		cm.m.lat.Since(latency.OpPut, start)
		if err != nil {
			return fail(err)
		}
		s.replicate(cm, wire.ReplDelete, []uint64{key}, nil)
		return wire.RespOK, nil, false

	case wire.OpGetBatch:
		keys, waitMs, err := wire.DecodeGetBatch(rest, cm.keys)
		if err != nil {
			return fail(err)
		}
		cm.keys = keys
		if !s.mayReadAll(keys) {
			return s.notOwner()
		}
		n := len(keys)
		s.batchKeys.Add(int64(n))
		cm.m.batchGets.Add(1)
		cm.m.batchKeys.Add(int64(n))
		// Build the response in place: found flags and values land
		// directly in the outgoing payload, one batched store call. The
		// payload buffer is per-connection and reused across frames (the
		// response is flushed before the next frame is read).
		out := growBytes(cm.out, 4+n+n*cm.vs)
		cm.out = out
		clear(out[4 : 4+n])
		binary.LittleEndian.PutUint32(out, uint32(n))
		vals := out[4+n:]
		cm.found = grow(cm.found, n)
		ctx, cancel := waitCtx(waitMs)
		start := time.Now()
		err = kv.SessionGetBatchCtx(ctx, cm.sess, cm.vs, keys, vals, cm.found)
		cm.m.lat.Since(latency.OpGetBatch, start)
		cancel()
		if err != nil {
			return fail(err)
		}
		for i, f := range cm.found {
			if f {
				out[4+i] = 1
			}
		}
		return wire.RespOK, out, false

	case wire.OpPeekBatch:
		// The batched PEEK a hedged read re-issues: same response layout as
		// GETBATCH, but clock-free per key — no staleness tokens, no
		// copy-to-tail, never blocks — so a duplicate of an in-flight batch
		// is harmless no matter which copy the client keeps.
		keys, err := wire.DecodeKeys(rest, cm.keys)
		if err != nil {
			return fail(err)
		}
		cm.keys = keys
		if !s.mayReadAll(keys) {
			return s.notOwner()
		}
		n := len(keys)
		s.batchKeys.Add(int64(n))
		cm.m.batchGets.Add(1)
		cm.m.batchKeys.Add(int64(n))
		out := growBytes(cm.out, 4+n+n*cm.vs)
		cm.out = out
		clear(out[4 : 4+n])
		binary.LittleEndian.PutUint32(out, uint32(n))
		vals := out[4+n:]
		start := time.Now()
		for i, k := range keys {
			found, err := kv.SessionPeek(cm.sess, k, vals[i*cm.vs:(i+1)*cm.vs])
			if err != nil {
				cm.m.lat.Since(latency.OpGetBatch, start)
				return fail(err)
			}
			if found {
				out[4+i] = 1
			} else {
				clear(vals[i*cm.vs : (i+1)*cm.vs]) // keep offsets fixed, like GETBATCH
			}
		}
		cm.m.lat.Since(latency.OpGetBatch, start)
		return wire.RespOK, out, false

	case wire.OpPutBatch:
		keys, vals, err := wire.DecodePutBatch(rest, cm.vs, cm.keys)
		if err != nil {
			return fail(err)
		}
		cm.keys = keys
		if !s.mayWriteAll(keys) {
			return s.notOwner()
		}
		s.batchKeys.Add(int64(len(keys)))
		cm.m.batchPuts.Add(1)
		cm.m.batchKeys.Add(int64(len(keys)))
		start := time.Now()
		err = kv.SessionPutBatch(cm.sess, cm.vs, keys, vals)
		cm.m.lat.Since(latency.OpPutBatch, start)
		if err != nil {
			return fail(err)
		}
		s.replicate(cm, wire.ReplPut, keys, vals)
		return wire.RespOK, nil, false

	case wire.OpLookahead:
		keys, err := wire.DecodeKeys(rest, cm.keys)
		if err != nil {
			return fail(err)
		}
		cm.keys = keys
		if !s.mayReadAll(keys) {
			return s.notOwner()
		}
		cm.m.lookaheadFrames.Add(1)
		var copied uint32
		for _, k := range keys {
			ok, err := cm.sess.Prefetch(k)
			if err != nil {
				return fail(err)
			}
			if ok {
				copied++
			}
		}
		return wire.RespOK, wire.EncodeUint32(copied), false

	case wire.OpReplWrite:
		// The replication stream from this range's primary. Bypasses the
		// ownership check — a replica rejects client writes but must accept
		// these — and never re-replicates (replicas have no replicas).
		if s.cfg.Cluster == nil {
			return fail(errors.New("server: not clustered"))
		}
		seq, head, kind, keys, vals, err := wire.DecodeReplWrite(rest, cm.vs, cm.keys[:0])
		if err != nil {
			return fail(err)
		}
		cm.keys = keys
		start := time.Now()
		if kind == wire.ReplPut {
			err = kv.SessionPutBatch(cm.sess, cm.vs, keys, vals)
			cm.m.lat.Since(latency.OpPutBatch, start)
		} else {
			for _, k := range keys {
				if err = cm.sess.Delete(k); err != nil {
					break
				}
			}
			cm.m.lat.Since(latency.OpPut, start)
		}
		if err != nil {
			return fail(err)
		}
		// Advance the contiguous-application cursor: the replica
		// advertises head − highest-contiguous-seq as the lag a router
		// checks for SSP admissibility, so a sequence gap (lost records)
		// keeps the advertised lag pinned instead of draining to zero.
		cm.m.applyReplSeq(seq, head)
		return wire.RespOK, nil, false
	}
	return fail(fmt.Errorf("server: unknown opcode %d", uint8(op)))
}

// notOwner answers a mis-routed data frame: the client's map is stale (or
// it guessed a seed), so the response carries this node's current map for
// the router to adopt before retrying.
func (s *Server) notOwner() (wire.Op, []byte, bool) {
	return wire.RespNotOwner, s.cfg.Cluster.Encoded(), false
}

// mayRead reports whether this node serves reads for key: primaries for
// their ranges, replicas for their primary's. A non-clustered server owns
// everything.
func (s *Server) mayRead(key uint64) bool {
	return s.cfg.Cluster == nil || s.cfg.Cluster.ReadOwned(key)
}

func (s *Server) mayReadAll(keys []uint64) bool {
	if s.cfg.Cluster == nil {
		return true
	}
	for _, k := range keys {
		if !s.cfg.Cluster.ReadOwned(k) {
			return false
		}
	}
	return true
}

// mayWrite reports whether this node accepts client writes for key: only
// the owning primary (replicas take writes solely over REPLWRITE).
func (s *Server) mayWrite(key uint64) bool {
	return s.cfg.Cluster == nil || s.cfg.Cluster.WriteOwned(key)
}

func (s *Server) mayWriteAll(keys []uint64) bool {
	if s.cfg.Cluster == nil {
		return true
	}
	for _, k := range keys {
		if !s.cfg.Cluster.WriteOwned(k) {
			return false
		}
	}
	return true
}

// replicate streams a committed client write to this node's replicas
// (async — the event is copied and queued, never on this request's path).
func (s *Server) replicate(cm *connModel, kind byte, keys []uint64, vals []byte) {
	if s.cfg.Cluster != nil {
		s.cfg.Cluster.Replicate(cm.m.id, cm.m.dim, kind, keys, vals)
	}
}

// waitCtx turns a frame's wait budget into a context: a clocked read
// stalled on the staleness bound gives up server-side at the client's
// deadline instead of stranding a token on an abandoned request (and
// wedging this connection's handler).
func waitCtx(waitMs uint32) (context.Context, context.CancelFunc) {
	if waitMs == 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), time.Duration(waitMs)*time.Millisecond)
}

func grow(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	clear(b)
	return b
}

// growBytes resizes a reusable byte buffer to n without preserving
// contents.
func growBytes(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}
