package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/latency"
	"github.com/llm-db/mlkv-go/internal/wire"
)

// Registry is the server's model table: the named embedding models it
// serves, opened lazily on the first OPEN frame naming them — the server
// half of the paper's Open(model_id, dim, staleness_bound) interface.
// Handles are registry-global: every connection addresses a model by the
// same uint32, and an OPEN of an already-open model returns the existing
// handle.
type Registry struct {
	cfg RegistryConfig

	mu         sync.Mutex
	closed     bool
	byName     map[string]*Model
	byHandle   map[uint32]*Model
	nextHandle uint32
}

// RegistryConfig parameterizes a Registry.
type RegistryConfig struct {
	// Opener opens the backing store for a model on its first OPEN. The
	// id is validated (see validateModelID) before Opener runs, so it is
	// safe to use as a directory name. engine is the canonical engine name
	// the client requested, or "" for the server's choice. Required unless
	// every model is pre-registered with Add.
	Opener func(id string, dim, shards int, bound int64, engine string) (kv.Store, error)
	// DefaultShards is the shard count applied when an OPEN requests 0.
	// Defaults to 1.
	DefaultShards int
	// DefaultBound is the staleness bound applied when an OPEN carries
	// wire.BoundUnset and the model does not exist yet. Zero value means
	// BSP; set it deliberately.
	DefaultBound int64
	// CacheEntries layers a server-side staleness-aware hot tier of this
	// capacity (kv.WrapCached) over every model the Opener opens, shared by
	// all connections serving that model. 0 disables it.
	CacheEntries int
	// Name identifies the server in HELLO responses (default "mlkv").
	Name string
}

// NewRegistry builds an empty registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.DefaultShards <= 0 {
		cfg.DefaultShards = 1
	}
	if cfg.Name == "" {
		cfg.Name = "mlkv"
	}
	return &Registry{
		cfg:      cfg,
		byName:   make(map[string]*Model),
		byHandle: make(map[uint32]*Model),
	}
}

// Name identifies the server in HELLO responses.
func (r *Registry) Name() string { return r.cfg.Name }

// maxModelID bounds model identifiers; they become directory names.
const maxModelID = 128

// validateModelID refuses identifiers that could escape the data
// directory or collide with the shard layout: only letters, digits, '.',
// '_' and '-' are allowed, and the first character must not be '.'.
func validateModelID(id string) error {
	if id == "" {
		return errors.New("server: model id is required")
	}
	if len(id) > maxModelID {
		return fmt.Errorf("server: model id longer than %d bytes", maxModelID)
	}
	if id[0] == '.' {
		return fmt.Errorf("server: model id %q may not start with '.'", id)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("server: model id %q contains %q (allowed: letters, digits, '.', '_', '-')", id, c)
		}
	}
	return nil
}

// Open returns the model named id, opening it through the configured
// Opener on first use. dim must match an existing model. shards 0 takes
// the registry default (and is advisory for an existing model: the store
// keeps the count it was created with). A bound other than wire.BoundUnset
// is applied to the model — at creation for a new one, via
// kv.Bounded.SetStalenessBound for an existing one, matching the paper's
// interface where the trainer declares the consistency it needs. engine
// "" takes the server's choice for a new model and is never a mismatch
// for an existing one; a named engine must match an existing model's and
// is passed to the Opener for a new one.
//
// The Opener runs outside the registry lock (store opens do directory
// creation and log recovery I/O), so one tenant's slow cold open never
// stalls other connections' OPEN/ATTACH/STATS; concurrent opens of the
// same name wait on one pending entry instead of double-opening.
func (r *Registry) Open(id string, dim, shards int, bound int64, engine string) (*Model, error) {
	if err := validateModelID(id); err != nil {
		return nil, err
	}
	if dim <= 0 || dim > 1<<20 {
		return nil, fmt.Errorf("server: model %q: dim %d out of range", id, dim)
	}
	if shards < 0 {
		return nil, fmt.Errorf("server: model %q: negative shard count %d", id, shards)
	}
	if engine != "" {
		var err error
		if engine, err = kv.NormalizeEngine(engine); err != nil {
			return nil, fmt.Errorf("server: model %q: %w", id, err)
		}
		if kv.ClockFree(engine) && bound != wire.BoundUnset && faster.BlockingBound(bound) {
			return nil, fmt.Errorf("server: model %q: engine %q has no vector clock and cannot honor blocking staleness bound %d", id, engine, bound)
		}
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, errors.New("server: registry closed")
	}
	if m, ok := r.byName[id]; ok {
		r.mu.Unlock()
		<-m.ready
		if m.openErr != nil {
			return nil, m.openErr
		}
		if m.dim != dim {
			return nil, fmt.Errorf("server: model %q has dim %d, requested %d", id, m.dim, dim)
		}
		if engine != "" && engine != m.engine {
			return nil, fmt.Errorf("server: model %q runs engine %q, requested %q", id, m.engine, engine)
		}
		if bound != wire.BoundUnset {
			if bd, ok := m.store.(kv.Bounded); ok {
				bd.SetStalenessBound(bound)
			} else if faster.BlockingBound(bound) {
				return nil, fmt.Errorf("server: model %q: engine %q has no vector clock and cannot honor blocking staleness bound %d", id, m.engine, bound)
			}
		}
		return m, nil
	}
	if r.cfg.Opener == nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("server: unknown model %q (server opens no new models)", id)
	}
	if shards == 0 {
		shards = r.cfg.DefaultShards
	}
	if bound == wire.BoundUnset {
		bound = r.cfg.DefaultBound
		if kv.ClockFree(engine) {
			// A clock-free engine cannot run the server's default bound if
			// that bound blocks; open it unbounded instead of failing.
			if faster.BlockingBound(bound) {
				bound = -1
			}
		}
	}
	// Publish a pending entry, open outside the lock, then resolve it.
	m := &Model{id: id, dim: dim, ready: make(chan struct{})}
	r.byName[id] = m
	r.mu.Unlock()

	store, err := r.cfg.Opener(id, dim, shards, bound, engine)
	if err == nil {
		if vs := store.ValueSize(); vs != dim*4 {
			store.Close()
			err = fmt.Errorf("store value size %d != dim %d × 4", vs, dim)
		} else if r.cfg.CacheEntries > 0 {
			store = kv.WrapCached(store, r.cfg.CacheEntries)
		}
	}

	r.mu.Lock()
	switch {
	case err != nil:
		delete(r.byName, id) // a later Open may retry
		m.openErr = fmt.Errorf("server: open model %q: %w", id, err)
	case r.closed:
		delete(r.byName, id)
		m.openErr = errors.New("server: registry closed")
		store.Close()
	default:
		m.store = store
		m.engine = storeEngine(store)
		r.nextHandle++
		m.handle = r.nextHandle
		r.byHandle[m.handle] = m
	}
	close(m.ready)
	r.mu.Unlock()
	if m.openErr != nil {
		return nil, m.openErr
	}
	return m, nil
}

// Add pre-registers an already-open store as the model named id (embedded
// servers and tests). The registry takes ownership: Close closes it.
func (r *Registry) Add(id string, dim int, store kv.Store) (*Model, error) {
	if err := validateModelID(id); err != nil {
		return nil, err
	}
	if store.ValueSize() != dim*4 {
		return nil, fmt.Errorf("server: model %q: store value size %d != dim %d × 4", id, store.ValueSize(), dim)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, errors.New("server: registry closed")
	}
	if _, ok := r.byName[id]; ok {
		return nil, fmt.Errorf("server: model %q already registered", id)
	}
	r.nextHandle++
	m := &Model{id: id, handle: r.nextHandle, dim: dim, store: store, engine: storeEngine(store), ready: make(chan struct{})}
	close(m.ready)
	r.byName[id] = m
	r.byHandle[m.handle] = m
	return m, nil
}

// lookup resolves a handle carried by a data frame.
func (r *Registry) lookup(handle uint32) (*Model, error) {
	r.mu.Lock()
	m, ok := r.byHandle[handle]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("server: unknown model handle %d (OPEN first)", handle)
	}
	return m, nil
}

// Models snapshots the registered models in handle order (shutdown and
// expvar iterate it).
func (r *Registry) Models() []*Model {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Model, 0, len(r.byHandle))
	for h := uint32(1); h <= r.nextHandle; h++ {
		if m, ok := r.byHandle[h]; ok {
			out = append(out, m)
		}
	}
	return out
}

// ReplWatermark sums the replication sequences this node has applied
// contiguously across its models — the "how caught up am I" number the
// failure detector gossips in heartbeats so promotion can pick the
// most-caught-up replica. Contiguity matters: a replica with a gap stops
// counting at the gap, so a candidate missing acknowledged writes never
// outranks one that has them all.
func (r *Registry) ReplWatermark() uint64 {
	var wm uint64
	for _, m := range r.Models() {
		m.replMu.Lock()
		wm += m.replApplied
		m.replMu.Unlock()
	}
	return wm
}

// Checkpoint makes every model that can checkpoint durable, returning the
// first error.
func (r *Registry) Checkpoint() error {
	var first error
	for _, m := range r.Models() {
		if cp, ok := m.store.(kv.Checkpointer); ok {
			if err := cp.Checkpoint(); err != nil && first == nil {
				first = fmt.Errorf("model %q: %w", m.id, err)
			}
		}
	}
	return first
}

// Close closes every model's store, returning the first error. A model
// whose open is still pending resolves as "registry closed" and its
// store is closed by the opener when it lands.
func (r *Registry) Close() error {
	r.mu.Lock()
	r.closed = true
	models := make([]*Model, 0, len(r.byHandle))
	for _, m := range r.byHandle {
		models = append(models, m)
	}
	r.byName = make(map[string]*Model)
	r.byHandle = make(map[uint32]*Model)
	r.mu.Unlock()
	var first error
	for _, m := range models {
		if err := m.store.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// storeEngine derives a store's canonical engine name from its Name()
// (the adapters name themselves after their engine); anything
// unrecognized — custom store names, embedded tests — is the hybrid-log
// engine, the only one with a vector clock.
func storeEngine(s kv.Store) string {
	if eng, err := kv.NormalizeEngine(s.Name()); err == nil {
		return eng
	}
	return kv.EngineFaster
}

// Model is one served embedding model: a named store plus the serving
// counters the engine cannot see (frames, remote sessions).
type Model struct {
	id     string
	handle uint32
	dim    int
	engine string // canonical engine name (kv.EngineFaster/LSM/BPTree)
	store  kv.Store
	// ready is closed once store/openErr are resolved; concurrent opens
	// of the same name wait on it instead of double-opening.
	ready   chan struct{}
	openErr error

	requests        atomic.Int64
	batchGets       atomic.Int64
	batchPuts       atomic.Int64
	batchKeys       atomic.Int64
	lookaheadFrames atomic.Int64
	activeSessions  atomic.Int64
	// replicaLag is the primary's stream head minus the highest REPLWRITE
	// sequence applied here contiguously — zero on primaries and
	// non-clustered servers. replMu orders the bookkeeping: frames normally
	// arrive from a single stream goroutine, but a stream teardown can
	// briefly overlap its replacement.
	replicaLag  atomic.Int64
	replMu      sync.Mutex
	replApplied uint64

	// lat holds the always-on per-op-class latency histograms, recorded
	// around the store calls in the conn handler (wait-free, shared by
	// every connection serving the model).
	lat latency.OpSet
}

// ID returns the model name.
func (m *Model) ID() string { return m.id }

// Handle returns the registry-global handle.
func (m *Model) Handle() uint32 { return m.handle }

// Dim returns the embedding dimension.
func (m *Model) Dim() int { return m.dim }

// Engine returns the canonical name of the engine backing the model
// (expvar groups per-engine aggregates by it).
func (m *Model) Engine() string { return m.engine }

// Store exposes the backing store.
func (m *Model) Store() kv.Store { return m.store }

// ActiveSessions reports the attach-minus-detach balance: how many remote
// client sessions are currently open on the model.
func (m *Model) ActiveSessions() int64 { return m.activeSessions.Load() }

// shards reports the store's hash-partition count.
func (m *Model) shards() int {
	if sh, ok := m.store.(kv.Sharded); ok {
		return sh.Shards()
	}
	return 1
}

// bound reports the store's staleness bound (-1 when the engine has none).
func (m *Model) bound() int64 {
	if bd, ok := m.store.(kv.Bounded); ok {
		return bd.StalenessBound()
	}
	return -1
}

// Stats merges the engine's counters with the serving layer's per-model
// counters into the STATS payload.
func (m *Model) Stats() wire.ModelStats {
	s := wire.ModelStats{
		BatchGets:       m.batchGets.Load(),
		BatchPuts:       m.batchPuts.Load(),
		LookaheadFrames: m.lookaheadFrames.Load(),
		ActiveSessions:  m.activeSessions.Load(),
	}
	if sr, ok := m.store.(kv.StatsReporter); ok {
		s.StatsSnapshot = sr.Stats()
	}
	if cr, ok := m.store.(kv.CacheStatsReporter); ok {
		cs := cr.CacheStats()
		s.CacheHits, s.CacheMisses, s.CacheEvictions = cs.Hits, cs.Misses, cs.Evictions
	}
	s.ReplicaLag = m.replicaLag.Load()
	s.LatGet = m.lat[latency.OpGet].Snapshot()
	s.LatGetBatch = m.lat[latency.OpGetBatch].Snapshot()
	s.LatPut = m.lat[latency.OpPut].Snapshot()
	s.LatPutBatch = m.lat[latency.OpPutBatch].Snapshot()
	s.LatRMW = m.lat[latency.OpRMW].Snapshot()
	return s
}

// Latency exposes the model's per-op-class histograms (the mlkv_latency
// expvar reads through this).
func (m *Model) Latency() *latency.OpSet { return &m.lat }

// applyReplSeq folds one applied REPLWRITE frame into the replica's lag
// bookkeeping. The advertised lag is head minus the highest CONTIGUOUSLY
// applied sequence: an in-order frame advances the cursor, a replayed
// frame (seq at or below it, an idempotent re-send after a stream
// reconnect) leaves it alone, and a frame past a gap advances nothing — a
// replica that missed writes keeps advertising the full distance back to
// the loss, staying SSP-inadmissible, until the primary replays the gap.
// A head below the cursor means the primary's stream restarted its
// numbering; the cursor resets to follow the new generation.
func (m *Model) applyReplSeq(seq, head uint64) {
	m.replMu.Lock()
	switch {
	case head < m.replApplied: // new stream generation (primary restart)
		m.replApplied = seq
	case seq == m.replApplied+1: // in order: advance
		m.replApplied = seq
	case seq <= m.replApplied: // replay: already counted
	default: // gap: hold at the last contiguous sequence
	}
	var lag int64
	if head > m.replApplied {
		lag = int64(head - m.replApplied)
	}
	m.replicaLag.Store(lag)
	m.replMu.Unlock()
}
