package server

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/llm-db/mlkv-go/internal/client"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/wire"
)

// startServer builds a registry that lazily opens 4-shard stores under
// dir and serves it on loopback, returning the dial address and a
// shutdown func.
func startServer(t *testing.T, dir string) (string, *Server, func()) {
	t.Helper()
	reg := NewRegistry(RegistryConfig{
		DefaultShards: 4,
		DefaultBound:  -1,
		Name:          "mlkv-test",
		Opener: func(id string, dim, shards int, bound int64, engine string) (kv.Store, error) {
			return kv.OpenEngine(engine, kv.ShardedConfig{
				Dir: filepath.Join(dir, id), Shards: shards, ValueSize: dim * 4,
				RecordsPerPage: 64, MemoryBytes: 1 << 20, ExpectedKeys: 1 << 12,
				StalenessBound: bound,
			}, "mlkv-test")
		},
	})
	srv := New(Config{Registry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
		reg.Close()
	}
	return ln.Addr().String(), srv, stop
}

// openModel opens a model on the test server with the given dimension.
func openModel(t *testing.T, cl *client.Client, id string, dim int) *client.Model {
	t.Helper()
	m, err := cl.OpenModel(context.Background(), client.OpenSpec{ID: id, Dim: dim, Bound: wire.BoundUnset})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRemoteRoundTrip drives the whole single-key surface through a real
// TCP connection: handshake, open, put, get, delete, prefetch, value-size
// guard.
func TestRemoteRoundTrip(t *testing.T) {
	const dim = 8
	const vs = dim * 4
	addr, _, stop := startServer(t, t.TempDir())
	defer stop()

	cl, err := client.Dial(addr, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.ServerName() != "mlkv-test" {
		t.Fatalf("ServerName = %q", cl.ServerName())
	}

	m := openModel(t, cl, "roundtrip", dim)
	if m.ValueSize() != vs {
		t.Fatalf("ValueSize = %d, want %d", m.ValueSize(), vs)
	}
	if m.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", m.Shards())
	}
	if !strings.Contains(m.Name(), "mlkv-test") {
		t.Fatalf("Name = %q", m.Name())
	}

	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte{0xab}, vs)
	dst := make([]byte, vs)
	if found, _ := s.Get(1, dst); found {
		t.Fatal("fresh store has key 1")
	}
	if err := s.Put(1, val); err != nil {
		t.Fatal(err)
	}
	if found, err := s.Get(1, dst); err != nil || !found || !bytes.Equal(dst, val) {
		t.Fatalf("get after put: found=%v err=%v", found, err)
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if found, _ := s.Get(1, dst); found {
		t.Fatal("key survived delete")
	}
	if _, err := s.Prefetch(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(2, val[:3]); err == nil {
		t.Fatal("short value accepted")
	}
}

// TestMultiModel serves two models with different dimensions over one
// connection pool: keys are independent, value sizes differ, and the
// registry deduplicates by name while refusing a dim mismatch.
func TestMultiModel(t *testing.T) {
	addr, _, stop := startServer(t, t.TempDir())
	defer stop()
	cl, err := client.Dial(addr, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	a := openModel(t, cl, "model-a", 8)
	b := openModel(t, cl, "model-b", 4)
	if a.ValueSize() == b.ValueSize() {
		t.Fatal("models share a value size; want distinct dims")
	}

	sa, err := a.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	sb, err := b.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()

	va := bytes.Repeat([]byte{1}, a.ValueSize())
	vb := bytes.Repeat([]byte{2}, b.ValueSize())
	if err := sa.Put(7, va); err != nil {
		t.Fatal(err)
	}
	if err := sb.Put(7, vb); err != nil {
		t.Fatal(err)
	}
	da := make([]byte, a.ValueSize())
	db := make([]byte, b.ValueSize())
	if found, err := sa.Get(7, da); err != nil || !found || !bytes.Equal(da, va) {
		t.Fatalf("model-a key 7: found=%v err=%v val=%v", found, err, da)
	}
	if found, err := sb.Get(7, db); err != nil || !found || !bytes.Equal(db, vb) {
		t.Fatalf("model-b key 7: found=%v err=%v val=%v", found, err, db)
	}

	// Same name, same dim: deduplicated. Same name, other dim: refused.
	if again := openModel(t, cl, "model-a", 8); again.ValueSize() != a.ValueSize() {
		t.Fatal("reopen returned a different model")
	}
	if _, err := cl.OpenModel(context.Background(), client.OpenSpec{ID: "model-a", Dim: 16, Bound: wire.BoundUnset}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	// Unsafe ids are refused before they touch the filesystem.
	for _, id := range []string{"", "../escape", "a/b", ".hidden", "white space"} {
		if _, err := cl.OpenModel(context.Background(), client.OpenSpec{ID: id, Dim: 8, Bound: wire.BoundUnset}); err == nil {
			t.Fatalf("unsafe model id %q accepted", id)
		}
	}
}

// TestSessionAccounting pins the attach/detach protocol: the server's
// per-model session gauge follows client sessions, and a connection torn
// down without detaching releases its balance.
func TestSessionAccounting(t *testing.T) {
	addr, srv, stop := startServer(t, t.TempDir())
	defer stop()
	cl, err := client.Dial(addr, client.Options{Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := openModel(t, cl, "sessions", 4)

	reg := srv.cfg.Registry
	model := reg.Models()[0]
	if n := model.ActiveSessions(); n != 0 {
		t.Fatalf("fresh model has %d sessions", n)
	}
	s1, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if n := model.ActiveSessions(); n != 2 {
		t.Fatalf("ActiveSessions = %d after two attaches, want 2", n)
	}
	s1.Close()
	s1.Close() // idempotent: must not double-detach
	if n := model.ActiveSessions(); n != 1 {
		t.Fatalf("ActiveSessions = %d after detach, want 1", n)
	}
	_ = s2 // left attached: the connection teardown must release it
	cl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for model.ActiveSessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("ActiveSessions = %d after connection close, want 0", model.ActiveSessions())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRemoteBatchConcurrent runs many sessions over a small pool (forcing
// pipelining) doing disjoint batched writes and reads, then checks the
// server's view of the data and its batch counters.
func TestRemoteBatchConcurrent(t *testing.T) {
	const dim, workers, batch, rounds = 4, 8, 256, 5
	const vs = dim * 4
	addr, srv, stop := startServer(t, t.TempDir())
	defer stop()

	cl, err := client.Dial(addr, client.Options{Conns: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	m := openModel(t, cl, "batch", dim)

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := m.NewSession()
			if err != nil {
				errCh <- err
				return
			}
			defer s.Close()
			keys := make([]uint64, batch)
			vals := make([]byte, batch*vs)
			for i := range keys {
				keys[i] = uint64(w*batch + i)
				vals[i*vs] = byte(w + 1)
				vals[i*vs+1] = byte(i)
			}
			got := make([]byte, batch*vs)
			found := make([]bool, batch)
			for r := 0; r < rounds; r++ {
				if err := kv.SessionPutBatch(s, vs, keys, vals); err != nil {
					errCh <- err
					return
				}
				if err := kv.SessionGetBatch(s, vs, keys, got, found); err != nil {
					errCh <- err
					return
				}
				for i := range keys {
					if !found[i] {
						errCh <- fmt.Errorf("worker %d round %d: key %d missing", w, r, keys[i])
						return
					}
				}
				if !bytes.Equal(got, vals) {
					errCh <- fmt.Errorf("worker %d round %d: batch values differ", w, r)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	wantKeys := int64(workers * batch * rounds * 2)
	if st.BatchKeys != wantKeys {
		t.Fatalf("BatchKeys = %d, want %d", st.BatchKeys, wantKeys)
	}
	if st.Errors != 0 {
		t.Fatalf("server answered %d errors", st.Errors)
	}
	ms, err := m.ModelStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantFrames := int64(workers * rounds)
	if ms.BatchGets != wantFrames || ms.BatchPuts != wantFrames {
		t.Fatalf("model batch frames = %d/%d, want %d/%d", ms.BatchGets, ms.BatchPuts, wantFrames, wantFrames)
	}
}

// TestRemoteStatsAndCheckpoint exercises the STATS and CHECKPOINT ops:
// counters reflect remote traffic and a checkpoint lands metadata in
// every shard directory of the model.
func TestRemoteStatsAndCheckpoint(t *testing.T) {
	const dim = 2
	const vs = dim * 4
	dir := t.TempDir()
	addr, _, stop := startServer(t, dir)
	defer stop()

	cl, err := client.Dial(addr, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	m := openModel(t, cl, "ckpt", dim)
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, vs)
	for k := uint64(0); k < 100; k++ {
		if err := s.Put(k, val); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]byte, vs)
	for k := uint64(0); k < 100; k++ {
		if _, err := s.Get(k, dst); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Stats()
	if snap.Puts < 100 || snap.Gets < 100 {
		t.Fatalf("remote stats missed traffic: %+v", snap)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		p := filepath.Join(dir, "ckpt", "shard-00"+string(rune('0'+i)), "CHECKPOINT")
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("shard %d checkpoint missing: %v", i, err)
		}
	}
}

// TestGracefulShutdownDrains verifies in-flight pipelined requests get
// their responses before connections close, and that the server refuses
// new work afterward.
func TestGracefulShutdownDrains(t *testing.T) {
	const dim = 4
	addr, srv, stop := startServer(t, t.TempDir())
	defer stop() // Shutdown is idempotent; this releases the registry
	cl, err := client.Dial(addr, client.Options{Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	m := openModel(t, cl, "drain", dim)
	s, err := m.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, dim*4)
	// Lay down traffic so the drain has something in flight, then shut
	// down concurrently with a writer.
	done := make(chan error, 1)
	go func() {
		var err error
		for k := uint64(0); k < 2000; k++ {
			if err = s.Put(k, val); err != nil {
				break
			}
		}
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The writer either finished cleanly or observed the connection close
	// once the drain completed — but it must return, not hang on a
	// swallowed response. (<-done doubles as the hang check: the test
	// binary would time out.)
	<-done
	if _, err := client.Dial(addr, client.Options{Conns: 1}); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

// TestProtocolErrorPaths talks raw frames to the server: bad opcodes,
// oversized batches, and unattached handles must answer RespErr without
// killing the connection; a version mismatch (an old client's HELLO) must
// answer RespErr with a clear message and then close it.
func TestProtocolErrorPaths(t *testing.T) {
	addr, _, stop := startServer(t, t.TempDir())
	defer stop()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// Unknown opcode → RespErr, connection lives.
	if err := wire.WriteFrame(nc, 1, wire.Op(99), wire.EncodeHandle(1)); err != nil {
		t.Fatal(err)
	}
	f, err := wire.ReadFrame(nc, 0)
	if err != nil || f.Op != wire.RespErr || f.CorrID != 1 {
		t.Fatalf("unknown op: %+v err=%v", f, err)
	}

	// Open a real model so data frames have a live handle.
	openReq, err := wire.EncodeOpen("raw", 2, 0, wire.BoundUnset, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(nc, 2, wire.OpOpen, openReq); err != nil {
		t.Fatal(err)
	}
	f, err = wire.ReadFrame(nc, 0)
	if err != nil || f.Op != wire.RespOK {
		t.Fatalf("open: %+v err=%v", f, err)
	}
	handle, _, _, _, _, err := wire.DecodeOpenResp(f.Payload)
	if err != nil {
		t.Fatal(err)
	}

	// A data frame before ATTACH → RespErr, connection lives.
	if err := wire.WriteFrame(nc, 3, wire.OpGet, wire.EncodeGet(handle, 7, 0)); err != nil {
		t.Fatal(err)
	}
	f, err = wire.ReadFrame(nc, 0)
	if err != nil || f.Op != wire.RespErr || !strings.Contains(string(f.Payload), "not attached") {
		t.Fatalf("unattached get: %+v err=%v", f, err)
	}

	// ATTACH, then exercise the error paths on a live session.
	if err := wire.WriteFrame(nc, 4, wire.OpAttach, wire.EncodeHandle(handle)); err != nil {
		t.Fatal(err)
	}
	if f, err = wire.ReadFrame(nc, 0); err != nil || f.Op != wire.RespOK {
		t.Fatalf("attach: %+v err=%v", f, err)
	}

	// Oversized batch count → RespErr, connection lives.
	huge := append(wire.EncodeHandle(handle), 0xff, 0xff, 0xff, 0x00)
	if err := wire.WriteFrame(nc, 5, wire.OpGetBatch, huge); err != nil {
		t.Fatal(err)
	}
	f, err = wire.ReadFrame(nc, 0)
	if err != nil || f.Op != wire.RespErr || f.CorrID != 5 {
		t.Fatalf("oversized batch: %+v err=%v", f, err)
	}

	// Mis-sized PUT → RespErr, connection lives.
	if err := wire.WriteFrame(nc, 6, wire.OpPut, append(wire.EncodeHandle(handle), 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	f, err = wire.ReadFrame(nc, 0)
	if err != nil || f.Op != wire.RespErr || f.CorrID != 6 {
		t.Fatalf("short put: %+v err=%v", f, err)
	}

	// Unknown handle → RespErr, connection lives.
	if err := wire.WriteFrame(nc, 7, wire.OpGet, wire.EncodeGet(99, 7, 0)); err != nil {
		t.Fatal(err)
	}
	f, err = wire.ReadFrame(nc, 0)
	if err != nil || f.Op != wire.RespErr {
		t.Fatalf("unknown handle: %+v err=%v", f, err)
	}

	// The connection still works.
	if err := wire.WriteFrame(nc, 8, wire.OpGet, wire.EncodeGet(handle, 7, 0)); err != nil {
		t.Fatal(err)
	}
	f, err = wire.ReadFrame(nc, 0)
	if err != nil || f.Op != wire.RespOK {
		t.Fatalf("get after errors: %+v err=%v", f, err)
	}

	// An old client's HELLO (version 1) → a clear RespErr, then close.
	old := wire.EncodeHello()
	old[0] = 1
	if err := wire.WriteFrame(nc, 9, wire.OpHello, old); err != nil {
		t.Fatal(err)
	}
	f, err = wire.ReadFrame(nc, 0)
	if err != nil || f.Op != wire.RespErr || !strings.Contains(string(f.Payload), "version 1") {
		t.Fatalf("version mismatch: %+v err=%v", f, err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := wire.ReadFrame(nc, 0); err == nil {
		t.Fatal("connection survived version mismatch")
	}
}

// TestReplicaLagContiguity pins the replica's lag bookkeeping: the
// advertised lag is stream head minus the highest CONTIGUOUSLY applied
// sequence, so lost records keep the lag pinned (a replica missing writes
// must never look fresh to an SSP router), replays after a reconnect are
// absorbed, and a primary restart resets the cursor to the new numbering.
func TestReplicaLagContiguity(t *testing.T) {
	m := &Model{}
	apply := func(seq, head uint64) int64 {
		t.Helper()
		m.applyReplSeq(seq, head)
		return m.replicaLag.Load()
	}

	// In-order frames: lag is simply head − seq.
	if lag := apply(1, 1); lag != 0 {
		t.Fatalf("after (1,1): lag = %d, want 0", lag)
	}
	if lag := apply(2, 5); lag != 3 {
		t.Fatalf("after (2,5): lag = %d, want 3", lag)
	}
	if lag := apply(3, 5); lag != 2 {
		t.Fatalf("after (3,5): lag = %d, want 2", lag)
	}

	// A gap: sequences 4 and 5 never arrive. Applying 6 must NOT advance
	// the cursor — the advertised lag stays pinned at the distance back to
	// the last contiguous sequence (3) even as later frames drain.
	if lag := apply(6, 6); lag != 3 {
		t.Fatalf("after gapped (6,6): lag = %d, want 3 (pinned at the loss)", lag)
	}
	if lag := apply(7, 7); lag != 4 {
		t.Fatalf("after gapped (7,7): lag = %d, want 4 (gap + new backlog)", lag)
	}

	// The primary replays the gap from its ring: contiguity is restored
	// and the cursor catches all the way up through the already-seen 6,7.
	if lag := apply(4, 7); lag != 3 {
		t.Fatalf("after replayed (4,7): lag = %d, want 3", lag)
	}
	if lag := apply(5, 7); lag != 2 {
		t.Fatalf("after replayed (5,7): lag = %d, want 2", lag)
	}
	if lag := apply(6, 7); lag != 1 {
		t.Fatalf("after replayed (6,7): lag = %d, want 1", lag)
	}
	if lag := apply(7, 7); lag != 0 {
		t.Fatalf("after replayed (7,7): lag = %d, want 0", lag)
	}

	// Replays of frames at or below the cursor are idempotent no-ops.
	if lag := apply(6, 7); lag != 0 {
		t.Fatalf("after duplicate (6,7): lag = %d, want 0", lag)
	}

	// A primary restart renumbers the stream from 1: head below the cursor
	// resets the bookkeeping to the new generation.
	if lag := apply(1, 1); lag != 0 {
		t.Fatalf("after restart (1,1): lag = %d, want 0", lag)
	}
	if lag := apply(2, 4); lag != 2 {
		t.Fatalf("after restart (2,4): lag = %d, want 2", lag)
	}
}
