package server

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/llm-db/mlkv-go/internal/client"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/wire"
)

// startServer opens a 4-shard store under dir and serves it on loopback,
// returning the dial address and a shutdown func.
func startServer(t *testing.T, dir string, vs int) (string, *Server, func()) {
	t.Helper()
	store, err := kv.OpenFasterShards(kv.ShardedConfig{
		Dir: dir, Shards: 4, ValueSize: vs, RecordsPerPage: 64,
		MemoryBytes: 1 << 20, ExpectedKeys: 1 << 12, StalenessBound: -1,
	}, "mlkv-test")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Store: store})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
		store.Close()
	}
	return ln.Addr().String(), srv, stop
}

// TestRemoteRoundTrip drives the whole single-key surface through a real
// TCP connection: handshake, put, get, delete, prefetch, value-size guard.
func TestRemoteRoundTrip(t *testing.T) {
	const vs = 32
	addr, _, stop := startServer(t, t.TempDir(), vs)
	defer stop()

	cl, err := client.Dial(addr, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.ValueSize() != vs {
		t.Fatalf("ValueSize = %d, want %d", cl.ValueSize(), vs)
	}
	if cl.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", cl.Shards())
	}
	if !strings.Contains(cl.Name(), "mlkv-test") {
		t.Fatalf("Name = %q", cl.Name())
	}

	s, err := cl.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte{0xab}, vs)
	dst := make([]byte, vs)
	if found, _ := s.Get(1, dst); found {
		t.Fatal("fresh store has key 1")
	}
	if err := s.Put(1, val); err != nil {
		t.Fatal(err)
	}
	if found, err := s.Get(1, dst); err != nil || !found || !bytes.Equal(dst, val) {
		t.Fatalf("get after put: found=%v err=%v", found, err)
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if found, _ := s.Get(1, dst); found {
		t.Fatal("key survived delete")
	}
	if _, err := s.Prefetch(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(2, val[:3]); err == nil {
		t.Fatal("short value accepted")
	}
}

// TestRemoteBatchConcurrent runs many sessions over a small pool (forcing
// pipelining) doing disjoint batched writes and reads, then checks the
// server's view of the data and its batch counters.
func TestRemoteBatchConcurrent(t *testing.T) {
	const vs, workers, batch, rounds = 16, 8, 256, 5
	addr, srv, stop := startServer(t, t.TempDir(), vs)
	defer stop()

	cl, err := client.Dial(addr, client.Options{Conns: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := cl.NewSession()
			if err != nil {
				errCh <- err
				return
			}
			defer s.Close()
			keys := make([]uint64, batch)
			vals := make([]byte, batch*vs)
			for i := range keys {
				keys[i] = uint64(w*batch + i)
				vals[i*vs] = byte(w + 1)
				vals[i*vs+1] = byte(i)
			}
			got := make([]byte, batch*vs)
			found := make([]bool, batch)
			for r := 0; r < rounds; r++ {
				if err := kv.SessionPutBatch(s, vs, keys, vals); err != nil {
					errCh <- err
					return
				}
				if err := kv.SessionGetBatch(s, vs, keys, got, found); err != nil {
					errCh <- err
					return
				}
				for i := range keys {
					if !found[i] {
						errCh <- fmt.Errorf("worker %d round %d: key %d missing", w, r, keys[i])
						return
					}
				}
				if !bytes.Equal(got, vals) {
					errCh <- fmt.Errorf("worker %d round %d: batch values differ", w, r)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	wantKeys := int64(workers * batch * rounds * 2)
	if st.BatchKeys != wantKeys {
		t.Fatalf("BatchKeys = %d, want %d", st.BatchKeys, wantKeys)
	}
	if st.Errors != 0 {
		t.Fatalf("server answered %d errors", st.Errors)
	}
}

// TestRemoteStatsAndCheckpoint exercises the STATS and CHECKPOINT ops:
// counters reflect remote traffic and a checkpoint lands metadata in
// every shard directory.
func TestRemoteStatsAndCheckpoint(t *testing.T) {
	const vs = 8
	dir := t.TempDir()
	addr, _, stop := startServer(t, dir, vs)
	defer stop()

	cl, err := client.Dial(addr, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	s, _ := cl.NewSession()
	defer s.Close()
	val := make([]byte, vs)
	for k := uint64(0); k < 100; k++ {
		if err := s.Put(k, val); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]byte, vs)
	for k := uint64(0); k < 100; k++ {
		if _, err := s.Get(k, dst); err != nil {
			t.Fatal(err)
		}
	}
	snap := cl.Stats()
	if snap.Puts < 100 || snap.Gets < 100 {
		t.Fatalf("remote stats missed traffic: %+v", snap)
	}
	if err := cl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		p := filepath.Join(dir, "shard-00"+string(rune('0'+i)), "CHECKPOINT")
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("shard %d checkpoint missing: %v", i, err)
		}
	}
}

// TestGracefulShutdownDrains verifies in-flight pipelined requests get
// their responses before connections close, and that the server refuses
// new work afterward.
func TestGracefulShutdownDrains(t *testing.T) {
	const vs = 16
	addr, srv, stop := startServer(t, t.TempDir(), vs)
	defer stop() // Shutdown is idempotent; this releases the store
	cl, err := client.Dial(addr, client.Options{Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	s, _ := cl.NewSession()
	val := make([]byte, vs)
	// Lay down traffic so the drain has something in flight, then shut
	// down concurrently with a writer.
	done := make(chan error, 1)
	go func() {
		var err error
		for k := uint64(0); k < 2000; k++ {
			if err = s.Put(k, val); err != nil {
				break
			}
		}
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The writer either finished cleanly or observed the connection close
	// once the drain completed — but it must return, not hang on a
	// swallowed response. (<-done doubles as the hang check: the test
	// binary would time out.)
	<-done
	if _, err := client.Dial(addr, client.Options{Conns: 1}); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

// TestProtocolErrorPaths talks raw frames to the server: bad opcodes and
// oversized batches must answer RespErr without killing the connection;
// a version mismatch must answer RespErr and then close it.
func TestProtocolErrorPaths(t *testing.T) {
	const vs = 8
	addr, _, stop := startServer(t, t.TempDir(), vs)
	defer stop()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// Unknown opcode → RespErr, connection lives.
	if err := wire.WriteFrame(nc, 1, wire.Op(99), nil); err != nil {
		t.Fatal(err)
	}
	f, err := wire.ReadFrame(nc, 0)
	if err != nil || f.Op != wire.RespErr || f.CorrID != 1 {
		t.Fatalf("unknown op: %+v err=%v", f, err)
	}

	// Oversized batch count → RespErr, connection lives.
	huge := make([]byte, 4)
	huge[0], huge[1], huge[2] = 0xff, 0xff, 0xff
	if err := wire.WriteFrame(nc, 2, wire.OpGetBatch, huge); err != nil {
		t.Fatal(err)
	}
	f, err = wire.ReadFrame(nc, 0)
	if err != nil || f.Op != wire.RespErr || f.CorrID != 2 {
		t.Fatalf("oversized batch: %+v err=%v", f, err)
	}

	// Mis-sized PUT → RespErr, connection lives.
	if err := wire.WriteFrame(nc, 3, wire.OpPut, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f, err = wire.ReadFrame(nc, 0)
	if err != nil || f.Op != wire.RespErr || f.CorrID != 3 {
		t.Fatalf("short put: %+v err=%v", f, err)
	}

	// The connection still works.
	if err := wire.WriteFrame(nc, 4, wire.OpGet, wire.EncodeKey(7)); err != nil {
		t.Fatal(err)
	}
	f, err = wire.ReadFrame(nc, 0)
	if err != nil || f.Op != wire.RespOK {
		t.Fatalf("get after errors: %+v err=%v", f, err)
	}

	// Version mismatch → RespErr then close.
	bad := wire.EncodeHello()
	bad[0] = 99
	if err := wire.WriteFrame(nc, 5, wire.OpHello, bad); err != nil {
		t.Fatal(err)
	}
	f, err = wire.ReadFrame(nc, 0)
	if err != nil || f.Op != wire.RespErr {
		t.Fatalf("version mismatch: %+v err=%v", f, err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := wire.ReadFrame(nc, 0); err == nil {
		t.Fatal("connection survived version mismatch")
	}
}
