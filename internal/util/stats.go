package util

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation. xs need not be sorted; it is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// AUC computes the area under the ROC curve for binary labels (1/0) and
// real-valued scores via the rank statistic (Mann-Whitney U). Ties receive
// the average rank. Returns 0.5 when either class is absent.
func AUC(scores []float64, labels []int) float64 {
	n := len(scores)
	if n == 0 || n != len(labels) {
		return 0.5
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	// Assign average ranks to tied scores.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1 // ranks are 1-based
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	var pos, sumPos float64
	for i, l := range labels {
		if l == 1 {
			pos++
			sumPos += ranks[i]
		}
	}
	neg := float64(n) - pos
	if pos == 0 || neg == 0 {
		return 0.5
	}
	u := sumPos - pos*(pos+1)/2
	return u / (pos * neg)
}

// Sigmoid returns 1/(1+e^-x) with guards against overflow.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}
