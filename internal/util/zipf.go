package util

import "math"

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^theta, matching the popularity skew of the YCSB "zipfian" request
// distribution and of categorical-feature frequencies in click logs.
//
// The implementation follows Gray et al.'s "Quickly Generating
// Billion-Record Synthetic Databases" (the same derivation YCSB uses), which
// samples in O(1) per draw after O(n)-free constant setup.
type Zipf struct {
	rng     *RNG
	n       uint64
	theta   float64
	alpha   float64
	zetan   float64
	eta     float64
	half    float64 // zeta(2, theta)
	rank1Lo float64 // 1 + 0.5^theta: the CDF boundary between ranks 1 and 2
}

// NewZipf returns a sampler over [0, n) with skew theta (0 < theta < 1;
// YCSB's default is 0.99). n must be positive.
func NewZipf(rng *RNG, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("util: NewZipf with n == 0")
	}
	if theta <= 0 || theta >= 1 {
		panic("util: NewZipf theta must be in (0, 1)")
	}
	z := &Zipf{rng: rng, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.half = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.half/z.zetan)
	z.rank1Lo = 1 + math.Pow(0.5, theta)
	return z
}

// Next draws one sample. Item 0 is the most popular.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.rank1Lo {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n uint64, theta float64) float64 {
	// Exact for small n; for large n, integrate the tail. The approximation
	// error is far below the sampling noise of any workload in this repo.
	const exact = 1 << 20
	if n <= exact {
		sum := 0.0
		for i := uint64(1); i <= n; i++ {
			sum += 1 / math.Pow(float64(i), theta)
		}
		return sum
	}
	head := zeta(exact, theta)
	// Integral of x^-theta from exact to n.
	tail := (math.Pow(float64(n), 1-theta) - math.Pow(float64(exact), 1-theta)) / (1 - theta)
	return head + tail
}

// ScrambledZipf composes Zipf popularity with an FNV-style hash so that hot
// items are spattered across the key space instead of clustered at low IDs,
// matching YCSB's "scrambled zipfian" distribution.
type ScrambledZipf struct {
	z *Zipf
	n uint64
}

// NewScrambledZipf returns a scrambled sampler over [0, n).
func NewScrambledZipf(rng *RNG, n uint64, theta float64) *ScrambledZipf {
	return &ScrambledZipf{z: NewZipf(rng, n, theta), n: n}
}

// Next draws one sample in [0, n).
func (s *ScrambledZipf) Next() uint64 {
	// HashKey rather than bare Mix64: Mix64(0) == 0, which would leave the
	// hottest rank parked at key 0 instead of scattering it.
	return HashKey(s.z.Next()) % s.n
}
