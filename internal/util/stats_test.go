package util

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if s := Stddev(xs); math.Abs(s-2.138) > 0.01 {
		t.Errorf("Stddev = %v, want ~2.138", s)
	}
	if Mean(nil) != 0 || Stddev(nil) != 0 {
		t.Error("empty-slice stats should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestAUCPerfectSeparation(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []int{1, 1, 0, 0}
	if auc := AUC(scores, labels); auc != 1 {
		t.Errorf("AUC = %v, want 1", auc)
	}
}

func TestAUCInverted(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []int{1, 1, 0, 0}
	if auc := AUC(scores, labels); auc != 0 {
		t.Errorf("AUC = %v, want 0", auc)
	}
}

func TestAUCRandomIsHalf(t *testing.T) {
	r := NewRNG(5)
	const n = 20000
	scores := make([]float64, n)
	labels := make([]int, n)
	for i := range scores {
		scores[i] = r.Float64()
		labels[i] = int(r.Uint64n(2))
	}
	if auc := AUC(scores, labels); math.Abs(auc-0.5) > 0.02 {
		t.Errorf("AUC on random data = %v, want ~0.5", auc)
	}
}

func TestAUCTies(t *testing.T) {
	// All scores identical: AUC must be exactly 0.5 by average-rank ties.
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []int{1, 0, 1, 0}
	if auc := AUC(scores, labels); auc != 0.5 {
		t.Errorf("AUC with all ties = %v, want 0.5", auc)
	}
}

func TestAUCDegenerate(t *testing.T) {
	if AUC(nil, nil) != 0.5 {
		t.Error("empty input should return 0.5")
	}
	if AUC([]float64{1, 2}, []int{1, 1}) != 0.5 {
		t.Error("single-class input should return 0.5")
	}
}

func TestAUCInvariantUnderMonotoneTransform(t *testing.T) {
	f := func(raw []float64, bits uint64) bool {
		if len(raw) < 4 {
			return true
		}
		scores := make([]float64, len(raw))
		for i, v := range raw {
			// Squash into (-1, 1) so the monotone transform below cannot
			// overflow and collapse distinct scores into ties.
			scores[i] = v / (1 + math.Abs(v))
			if math.IsNaN(scores[i]) {
				scores[i] = 0
			}
		}
		labels := make([]int, len(scores))
		for i := range labels {
			labels[i] = int((bits >> (uint(i) % 64)) & 1)
		}
		a := AUC(scores, labels)
		shifted := make([]float64, len(scores))
		for i, v := range scores {
			shifted[i] = 3*v + 7 // strictly monotone
		}
		b := AUC(shifted, labels)
		return math.Abs(a-b) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0); s != 0.5 {
		t.Errorf("Sigmoid(0) = %v", s)
	}
	if s := Sigmoid(1000); s != 1 {
		t.Errorf("Sigmoid(1000) = %v, want 1", s)
	}
	if s := Sigmoid(-1000); s != 0 {
		t.Errorf("Sigmoid(-1000) = %v, want 0", s)
	}
	if math.Abs(Sigmoid(2)+Sigmoid(-2)-1) > 1e-15 {
		t.Error("Sigmoid(x) + Sigmoid(-x) != 1")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[uint64]uint64{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	// Distinct inputs must produce distinct outputs (spot check).
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 100000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}
