package util

import (
	"math"
	"testing"
)

func TestZipfBounds(t *testing.T) {
	r := NewRNG(1)
	z := NewZipf(r, 1000, 0.99)
	for i := 0; i < 100000; i++ {
		if v := z.Next(); v >= 1000 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(2)
	const n = 10000
	z := NewZipf(r, n, 0.99)
	counts := make([]int, n)
	const draws = 500000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Item 0 must dominate and the head must be heavy: top 1% of items should
	// cover the majority of draws under theta=0.99.
	if counts[0] < counts[n/2]*10 {
		t.Errorf("head item count %d not much larger than median item %d", counts[0], counts[n/2])
	}
	head := 0
	for i := 0; i < n/100; i++ {
		head += counts[i]
	}
	if frac := float64(head) / draws; frac < 0.5 {
		t.Errorf("top 1%% of items covered only %.2f of draws, want > 0.5", frac)
	}
}

func TestZipfMatchesExactDistributionSmallN(t *testing.T) {
	r := NewRNG(3)
	const n = 4
	const theta = 0.5
	z := NewZipf(r, n, theta)
	counts := make([]float64, n)
	const draws = 400000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	zn := 0.0
	for i := 1; i <= n; i++ {
		zn += 1 / math.Pow(float64(i), theta)
	}
	for i := 0; i < n; i++ {
		want := (1 / math.Pow(float64(i+1), theta)) / zn
		got := counts[i] / draws
		if math.Abs(got-want) > 0.02 {
			t.Errorf("item %d: got frequency %.4f, want %.4f", i, got, want)
		}
	}
}

func TestScrambledZipfSpreadsHotKeys(t *testing.T) {
	r := NewRNG(4)
	const n = 1 << 16
	s := NewScrambledZipf(r, n, 0.99)
	counts := make(map[uint64]int)
	for i := 0; i < 100000; i++ {
		counts[s.Next()]++
	}
	// Find the hottest key; it should not be key 0 or clustered at low IDs.
	var hot uint64
	best := 0
	lowID := 0
	for k, c := range counts {
		if c > best {
			best, hot = c, k
		}
		if k < 16 {
			lowID += c
		}
	}
	if best < 100 {
		t.Errorf("expected a hot key, hottest %d had only %d draws", hot, best)
	}
	if float64(lowID) > 0.05*100000 {
		t.Errorf("low IDs got %d draws; scrambling should spread the head", lowID)
	}
}

func TestZetaTailApproximation(t *testing.T) {
	// The closed form for n > 2^20 must agree with brute force at the seam.
	const theta = 0.99
	exact := zeta(1<<20, theta)
	if approx := zeta(1<<20, theta); math.Abs(approx-exact) > 1e-9 {
		t.Fatalf("seam mismatch: %v vs %v", approx, exact)
	}
	big := zeta(1<<21, theta)
	if big <= exact {
		t.Fatalf("zeta must grow with n: %v <= %v", big, exact)
	}
}

func TestNewZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n == 0")
		}
	}()
	NewZipf(NewRNG(1), 0, 0.99)
}
