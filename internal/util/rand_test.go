package util

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeeds(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first outputs")
	}
}

func TestUint64nBounds(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []uint64{1, 2, 7, 100, 1 << 40} {
		for i := 0; i < 1000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := NewRNG(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d too far from %v", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestMul64MatchesBigMul(t *testing.T) {
	f := func(x, y uint64) bool {
		hi, lo := mul64(x, y)
		// Verify via 32-bit decomposition independently.
		wantLo := x * y
		// Compute hi by splitting both operands.
		a, b := x>>32, x&0xffffffff
		c, d := y>>32, y&0xffffffff
		mid := b*c + (b*d)>>32
		mid2 := a*d + (mid & 0xffffffff)
		wantHi := a*c + (mid >> 32) + (mid2 >> 32)
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
