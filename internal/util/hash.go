package util

// Mix64 is the splitmix64 finalizer: a fast, high-quality 64-bit mixing
// function used for hashing integer keys into index buckets and for key
// scrambling in workload generators.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashKey hashes a record key for index placement. Kept separate from Mix64
// so the index's hash can evolve without perturbing workload generators.
func HashKey(key uint64) uint64 {
	return Mix64(key ^ 0x9e3779b97f4a7c15)
}

// ShardOf maps a record key to one of shards hash partitions. It mixes the
// key with a constant distinct from HashKey's so that shard placement and
// in-shard index placement stay uncorrelated; every layer that partitions a
// key space (core's shard router, kv's sharded adapter) must use this one
// function so they agree on placement.
func ShardOf(key uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(Mix64(key^0xc2b2ae3d27d4eb4f) % uint64(shards))
}

// NextPow2 returns the smallest power of two >= v (and at least 1).
func NextPow2(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	v--
	v |= v >> 1
	v |= v >> 2
	v |= v >> 4
	v |= v >> 8
	v |= v >> 16
	v |= v >> 32
	return v + 1
}
