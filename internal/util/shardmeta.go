package util

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// ShardsMetaFile is the file recording the shard count a partitioned store
// directory was created with. Every layer that opens a shard set (core's
// table, kv's sharded FASTER adapter) validates it, because reopening with
// a different count would silently route keys to the wrong shard.
const ShardsMetaFile = "SHARDS"

// ValidateShardMeta checks dir against the requested shard count. A
// missing metadata file passes, except when sharding is requested for a
// directory that already holds an unsharded log (whose keys would become
// unreachable). It never writes: callers persist the count with
// WriteShardMeta only after the shard stores open successfully, so a
// failed open does not pin the directory to a count that holds no data.
func ValidateShardMeta(dir string, shards int) error {
	metaPath := filepath.Join(dir, ShardsMetaFile)
	if raw, err := os.ReadFile(metaPath); err == nil {
		prev, perr := strconv.Atoi(strings.TrimSpace(string(raw)))
		if perr != nil {
			return fmt.Errorf("corrupt shard metadata in %s: %q", metaPath, raw)
		}
		if prev != shards {
			return fmt.Errorf("table at %s was created with %d shards, reopened with %d", dir, prev, shards)
		}
		return nil
	}
	if shards > 1 {
		if _, err := os.Stat(filepath.Join(dir, "hlog.dat")); err == nil {
			return fmt.Errorf("table at %s holds unsharded data; cannot reopen with %d shards", dir, shards)
		}
	}
	return nil
}

// WriteShardMeta records the shard count for future ValidateShardMeta
// calls.
func WriteShardMeta(dir string, shards int) error {
	return os.WriteFile(filepath.Join(dir, ShardsMetaFile), []byte(strconv.Itoa(shards)+"\n"), 0o644)
}
