// Package util provides small shared helpers: deterministic random number
// generation, skewed-distribution samplers, hashing, and statistics used by
// the storage engines, workload generators, and benchmark harness.
package util

import "math"

// RNG is a splitmix64 pseudo-random number generator. It is deterministic,
// allocation-free, and fast enough to sit on benchmark hot paths. It is not
// safe for concurrent use; give each goroutine its own RNG (see Split).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two RNGs with the same seed
// produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent generator from the current state. The parent
// stream advances by one step, so repeated Splits yield distinct children.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniform value in [0, n). n must be positive.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("util: Uint64n with n == 0")
	}
	// Lemire's nearly-divisionless bounded sampling, without the rejection
	// loop; the bias is below 2^-32 for the n used in this repository.
	hi, _ := mul64(r.Uint64(), n)
	return hi
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns a standard normal variate using the polar method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place (Fisher-Yates).
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}
