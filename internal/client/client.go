// Package client is the remote face of an mlkv-server: a connection pool
// speaking the internal/wire protocol, from which callers open any number
// of named models — the network half of the paper's
// Open(model_id, dim, staleness_bound) interface. Each opened Model
// exposes the same kv.Store/kv.Session interfaces the in-process engines
// implement, so the YCSB harness, benchmark sweeps, and examples run
// against a remote model unchanged.
//
// Sessions are assigned to pooled connections round-robin and announce
// themselves to the server with an ATTACH frame (and a DETACH on Close),
// so the server's per-model session accounting tracks remote workers
// truthfully. Every connection has a reader goroutine that demultiplexes
// responses by correlation ID, so sessions sharing a connection pipeline
// their requests: the second request is on the wire before the first
// response returns. Batch operations travel as single frames and fan into
// the server's sharded store as one batched call — the unit that
// amortizes the network round trip.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/latency"
	"github.com/llm-db/mlkv-go/internal/wire"
)

// Options configures Dial.
type Options struct {
	// Conns is the pool size (default 2). Each server connection is
	// served by one engine session per attached model and handled
	// serially on the server, so parallelism across a model is
	// min(Conns, concurrent sessions); sessions beyond Conns share
	// connections via pipelining. Set it to the worker count for full
	// fan-out.
	Conns int
	// MaxFrame bounds incoming response frames (default wire.DefaultMaxFrame).
	MaxFrame uint32
	// DialTimeout bounds each TCP connect (default 5s).
	DialTimeout time.Duration
	// MaxKeysPerFrame splits larger batches into multiple frames (default
	// 4096, capped at wire.MaxBatchKeys).
	MaxKeysPerFrame int
	// HedgeDelay, when positive, re-issues an admissible read (GET or
	// GETBATCH on a model whose staleness bound cannot block) as a
	// clock-free duplicate on a second pooled connection if the first
	// response has not arrived within the delay; whichever response
	// arrives first wins. Zero disables hedging unless HedgeAdaptive.
	HedgeDelay time.Duration
	// HedgeAdaptive derives the hedge delay from the pool's own observed
	// round-trip histogram (the op class's p99, floored), so the trigger
	// tracks the workload instead of a guessed constant. HedgeDelay, when
	// also set, is the fallback until enough samples accumulate.
	HedgeAdaptive bool

	// dial overrides the TCP dial for tests (write-counting conns).
	dial func(addr string, timeout time.Duration) (net.Conn, error)
}

// Hedge pacing: a token bucket in tenths of a hedge. Every admissible
// read deposits one tenth (capped at the burst), a hedge withdraws ten —
// so hedges are capped at ~10% of admissible reads with a small burst,
// and a server melting down (every request slow ⇒ every request wants a
// hedge) sees at most 1.1× its offered load instead of 2×.
const (
	hedgeCostTenths  = 10
	hedgeBurstTenths = 100
	// hedgeAdaptiveMinSamples gates the adaptive delay: below this many
	// observations the histogram's tail is noise, so the fixed fallback
	// applies.
	hedgeAdaptiveMinSamples = 64
	// hedgeMinDelay floors the adaptive delay so a very fast loopback
	// does not hedge every read that hits one scheduler hiccup.
	hedgeMinDelay = 200 * time.Microsecond
	// hedgeDefaultDelay is the adaptive mode's fallback before enough
	// samples exist (when no fixed HedgeDelay was given).
	hedgeDefaultDelay = 2 * time.Millisecond
	// hedgeDelayRefresh is how many hedgeable reads share one cached
	// adaptive-delay computation (a histogram scan per read would tax the
	// hot path for a value that moves slowly).
	hedgeDelayRefresh = 256
)

// Client is a connection pool onto one mlkv-server. Models are opened
// from it with OpenModel; the Client itself carries no store state.
type Client struct {
	opts Options
	addr string
	// connMu guards the conns slice's elements: a pooled connection that
	// died is evicted and replaced on the next checkout, so one mid-pipeline
	// failure costs the requests in flight, not every later request on the
	// slot. The slice itself never changes length after Dial.
	connMu     sync.RWMutex
	conns      []*conn
	poolClosed bool
	next       atomic.Uint64
	serverName string

	// lat holds per-op-class round-trip histograms shared by every
	// connection in the pool: wall time from just before the frame write
	// to response receipt, so it includes queueing in the pipelined
	// demux — the end-to-end tail a caller actually experiences.
	lat latency.OpSet

	// Redial breaker state, guarded by connMu. Every slot dials the same
	// address, so one slot's dial failure is evidence about them all:
	// consecutive failures open a shared jittered-backoff window during
	// which further redial attempts fail fast on the cached error instead
	// of queueing a fresh TCP connect against a host already known dead.
	dialFails   int       // consecutive failed redials
	dialNext    time.Time // no redial before this instant
	lastDialErr error     // what the breaker fast-fails with

	dialRetries  atomic.Int64 // redial attempts actually made
	dialBackoffs atomic.Int64 // redials refused by the breaker window

	// Hedge state. The credit bucket and cached adaptive delay are shared
	// by every session on the pool; counters feed HedgeStats.
	hedgeCredit     atomic.Int64
	hedgeDelayNS    atomic.Int64  // cached adaptive delay (ns)
	hedgeDelayTick  atomic.Uint32 // reads since the cache was refreshed
	hedgeIssued     atomic.Int64
	hedgeWon        atomic.Int64
	hedgeWasted     atomic.Int64
	hedgeSuppressed atomic.Int64
}

// HedgeStats is a point-in-time copy of the pool's hedging counters.
type HedgeStats struct {
	// Issued counts hedge duplicates actually put on the wire.
	Issued int64
	// Won counts hedges whose response arrived before the primary's.
	Won int64
	// Wasted counts hedges beaten by their primary (the duplicate's work
	// bought nothing).
	Wasted int64
	// Suppressed counts hedges the token bucket refused — reads that
	// crossed the delay but stayed single-shot to cap duplicate load.
	Suppressed int64
}

// Redial backoff: the first failed redial opens a dialBackoffMin window,
// doubling per consecutive failure up to dialBackoffMax, each window
// jittered ±50% so a fleet of clients does not hammer a rebooting server
// in lockstep.
const (
	dialBackoffMin = 10 * time.Millisecond
	dialBackoffMax = time.Second
)

// DialStats reports the pool's redial counters: attempts actually dialed
// and attempts refused fast by the breaker's backoff window.
func (c *Client) DialStats() (retries, backoffs int64) {
	return c.dialRetries.Load(), c.dialBackoffs.Load()
}

// HedgeStats snapshots the pool's hedging counters.
func (c *Client) HedgeStats() HedgeStats {
	return HedgeStats{
		Issued:     c.hedgeIssued.Load(),
		Won:        c.hedgeWon.Load(),
		Wasted:     c.hedgeWasted.Load(),
		Suppressed: c.hedgeSuppressed.Load(),
	}
}

// hedging reports whether any hedge configuration is active on the pool.
func (c *Client) hedging() bool {
	return c.opts.HedgeDelay > 0 || c.opts.HedgeAdaptive
}

// hedgeDelay resolves the delay before a read hedges. Fixed mode returns
// the configured constant; adaptive mode tracks the pool's own observed
// p99 for the op class (floored), recomputed every hedgeDelayRefresh
// hedgeable reads so the hot path never scans a histogram.
func (c *Client) hedgeDelay(cls latency.Op) time.Duration {
	if !c.opts.HedgeAdaptive {
		return c.opts.HedgeDelay
	}
	if c.hedgeDelayTick.Add(1)%hedgeDelayRefresh != 1 {
		if d := c.hedgeDelayNS.Load(); d > 0 {
			return time.Duration(d)
		}
	}
	s := c.lat[cls].Snapshot()
	d := c.opts.HedgeDelay
	if d <= 0 {
		d = hedgeDefaultDelay
	}
	if s.Count >= hedgeAdaptiveMinSamples {
		d = time.Duration(s.P99)
		if d < hedgeMinDelay {
			d = hedgeMinDelay
		}
	}
	c.hedgeDelayNS.Store(int64(d))
	return d
}

// depositHedgeCredit banks one tenth of a hedge for an admissible read.
func (c *Client) depositHedgeCredit() {
	for {
		cur := c.hedgeCredit.Load()
		if cur >= hedgeBurstTenths {
			return
		}
		if c.hedgeCredit.CompareAndSwap(cur, cur+1) {
			return
		}
	}
}

// takeHedgeToken withdraws one hedge's worth of credit, reporting whether
// the bucket could afford it.
func (c *Client) takeHedgeToken() bool {
	for {
		cur := c.hedgeCredit.Load()
		if cur < hedgeCostTenths {
			return false
		}
		if c.hedgeCredit.CompareAndSwap(cur, cur-hedgeCostTenths) {
			return true
		}
	}
}

// Latency exposes the pool's round-trip histograms. The driver folds
// them into Stats; the composite remote RMW records into OpRMW here.
func (c *Client) Latency() *latency.OpSet { return &c.lat }

// Dial connects the pool and performs the HELLO handshake, failing fast
// on a protocol-version mismatch.
func Dial(addr string, opts Options) (*Client, error) {
	if opts.Conns <= 0 {
		opts.Conns = 2
	}
	if opts.MaxFrame == 0 {
		opts.MaxFrame = wire.DefaultMaxFrame
	}
	if opts.DialTimeout == 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.MaxKeysPerFrame <= 0 || opts.MaxKeysPerFrame > wire.MaxBatchKeys {
		opts.MaxKeysPerFrame = 4096
	}
	c := &Client{opts: opts, addr: addr}
	c.hedgeCredit.Store(hedgeBurstTenths) // start with a full burst banked
	for i := 0; i < opts.Conns; i++ {
		cn, err := dialConn(addr, opts, &c.lat)
		if err != nil {
			c.Close()
			return nil, err
		}
		cn.idx = i
		c.conns = append(c.conns, cn)
	}
	// The handshake rides the dial budget: an accepting-but-silent host
	// (half-dead, or a fault-injection blackhole) must cost one timeout,
	// not a forever-hung Dial.
	hctx, hcancel := context.WithTimeout(context.Background(), opts.DialTimeout)
	p, err := c.conns[0].roundTripCtx(hctx, wire.OpHello, wire.EncodeHello())
	hcancel()
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	_, name, err := wire.DecodeHelloResp(p)
	c.conns[0].release(p)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	c.serverName = name
	return c, nil
}

// ServerName identifies the server (from the HELLO response).
func (c *Client) ServerName() string { return c.serverName }

// NotOwnerError reports a data op the server refused because another
// cluster node owns the key's hash range. Map is the server's current
// encoded cluster topology (internal/cluster's codec — this package cannot
// import it, since the cluster router imports this package), so the caller
// refreshes and re-routes without an extra round trip.
type NotOwnerError struct{ Map []byte }

// Error describes the redirect.
func (e *NotOwnerError) Error() string {
	return "client: server does not own the key's hash range (cluster map attached)"
}

// ClusterMapRaw fetches the server's encoded cluster map — the bootstrap
// probe. A server not running in cluster mode (or predating the op)
// answers RespErr, which comes back as an ordinary error with the
// connection still usable.
func (c *Client) ClusterMapRaw(ctx context.Context) ([]byte, error) {
	cn, err := c.pick()
	if err != nil {
		return nil, err
	}
	p, err := cn.roundTripCtx(ctx, wire.OpClusterMap, nil)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), p...)
	cn.release(p)
	return out, nil
}

// Close tears down every pooled connection; outstanding requests and all
// models opened from this client fail afterwards.
func (c *Client) Close() error {
	c.connMu.Lock()
	c.poolClosed = true
	conns := append([]*conn(nil), c.conns...)
	c.connMu.Unlock()
	var first error
	for _, cn := range conns {
		if err := cn.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// connAt returns the healthy connection at slot, evicting and re-dialing a
// dead one: a connection poisoned mid-pipeline fails only the requests that
// were in flight on it, and the slot heals on its next checkout.
func (c *Client) connAt(slot int) (*conn, error) {
	c.connMu.RLock()
	cn := c.conns[slot]
	c.connMu.RUnlock()
	if !cn.broken() {
		return cn, nil
	}
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.poolClosed {
		return nil, errors.New("client: closed")
	}
	cn = c.conns[slot]
	if !cn.broken() {
		return cn, nil
	}
	// The breaker: inside an open backoff window the checkout fails fast
	// on the cached error — against a dead host, thousands of checkouts
	// must not each queue a TCP connect.
	now := time.Now()
	if now.Before(c.dialNext) {
		c.dialBackoffs.Add(1)
		return nil, fmt.Errorf("client: redial %s: backing off: %w", c.addr, c.lastDialErr)
	}
	c.dialRetries.Add(1)
	fresh, err := c.redial()
	if err != nil {
		c.dialFails++
		shift := c.dialFails - 1
		if shift > 7 {
			shift = 7
		}
		backoff := dialBackoffMin << shift
		if backoff > dialBackoffMax {
			backoff = dialBackoffMax
		}
		backoff = backoff/2 + time.Duration(rand.Int63n(int64(backoff))) // ±50% jitter
		c.dialNext = now.Add(backoff)
		c.lastDialErr = err
		return nil, err
	}
	c.dialFails = 0
	c.dialNext = time.Time{}
	c.lastDialErr = nil
	fresh.idx = slot
	c.conns[slot] = fresh
	return fresh, nil
}

// redial dials and handshakes one replacement connection. The HELLO is
// bounded by DialTimeout: a blackholed host accepts the connect and then
// says nothing, and an unbounded handshake there would hang the checkout
// (and everyone queued on connMu) forever.
func (c *Client) redial() (*conn, error) {
	fresh, err := dialConn(c.addr, c.opts, &c.lat)
	if err != nil {
		return nil, fmt.Errorf("client: redial %s: %w", c.addr, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.DialTimeout)
	p, err := fresh.roundTripCtx(ctx, wire.OpHello, wire.EncodeHello())
	cancel()
	if err != nil {
		fresh.close()
		return nil, fmt.Errorf("client: redial %s: handshake: %w", c.addr, err)
	}
	fresh.release(p)
	return fresh, nil
}

// pick returns the next pooled connection round-robin, healing dead slots.
func (c *Client) pick() (*conn, error) {
	return c.connAt(int(c.next.Add(1) % uint64(len(c.conns))))
}

// pickNot returns a pooled connection other than avoid (avoid itself when
// the pool has only one). Hedges use it: a duplicate on the primary's own
// connection would queue behind the very frame it is trying to outrun.
func (c *Client) pickNot(avoid *conn) *conn {
	if len(c.conns) < 2 {
		return avoid
	}
	cn, err := c.connAt((avoid.idx + 1) % len(c.conns))
	if err != nil {
		return avoid // hedge conn unavailable; caller's begin will no-op it
	}
	return cn
}

// OpenSpec names the model an OpenModel call wants.
type OpenSpec struct {
	// ID is the model name (letters, digits, '.', '_', '-').
	ID string
	// Dim is the embedding dimension; must match an existing model.
	Dim int
	// Shards requests a hash-partition count for a newly created model
	// (0 lets the server choose; advisory for an existing model).
	Shards int
	// Bound is the staleness bound to apply; wire.BoundUnset keeps the
	// server's default (new model) or the current bound (existing model).
	Bound int64
	// Engine requests a storage engine ("faster", "lsm", "bptree") for a
	// newly created model; "" takes the server's choice. An existing model
	// opened with a different engine is refused by the server.
	Engine string
}

// OpenModel creates or looks up the named model on the server and returns
// its handle. Opening the same name twice returns equivalent models — the
// server deduplicates by name.
func (c *Client) OpenModel(ctx context.Context, spec OpenSpec) (*Model, error) {
	req, err := wire.EncodeOpen(spec.ID, spec.Dim, spec.Shards, spec.Bound, spec.Engine)
	if err != nil {
		return nil, fmt.Errorf("client: open model %q: %w", spec.ID, err)
	}
	cn, err := c.pick()
	if err != nil {
		return nil, fmt.Errorf("client: open model %q: %w", spec.ID, err)
	}
	p, err := cn.roundTripCtx(ctx, wire.OpOpen, req)
	if err != nil {
		return nil, fmt.Errorf("client: open model %q: %w", spec.ID, err)
	}
	handle, dim, shards, bound, engine, err := wire.DecodeOpenResp(p)
	cn.release(p)
	if err != nil {
		return nil, fmt.Errorf("client: open model %q: %w", spec.ID, err)
	}
	if dim != spec.Dim {
		return nil, fmt.Errorf("client: model %q: server dim %d != requested %d", spec.ID, dim, spec.Dim)
	}
	m := &Model{c: c, handle: handle, id: spec.ID, dim: dim, shards: shards, engine: engine}
	m.bound.Store(bound)
	return m, nil
}

// Model is one named model on the server: a remote kv.Store. It also
// implements kv.Checkpointer, kv.StatsReporter, and kv.Sharded by
// delegating to the server.
type Model struct {
	c      *Client
	handle uint32
	id     string
	dim    int
	shards int
	// bound is the staleness bound the server reported, kept current by
	// SetBoundHint when the caller re-opens with a new bound. Atomic
	// because hedge admissibility reads it on every read while another
	// goroutine may be retuning the bound.
	bound  atomic.Int64
	engine string
}

// ID returns the model name.
func (m *Model) ID() string { return m.id }

// Dim returns the embedding dimension.
func (m *Model) Dim() int { return m.dim }

// ValueSize returns the model's fixed value payload size (Dim × 4).
func (m *Model) ValueSize() int { return m.dim * 4 }

// Shards returns the server store's hash-partition count.
func (m *Model) Shards() int { return m.shards }

// StalenessBound returns the bound currently in effect (as of the last
// open or SetBoundHint).
func (m *Model) StalenessBound() int64 { return m.bound.Load() }

// SetBoundHint records a bound change made through a fresh OPEN of the
// same model, so hedge admissibility tracks the runtime bound: a model
// retuned from ASP to BSP must stop hedging immediately — a clocked read
// re-issued clock-free would silently weaken its consistency.
func (m *Model) SetBoundHint(bound int64) { m.bound.Store(bound) }

// Name identifies the remote engine in benchmark output.
func (m *Model) Name() string { return "remote(" + m.engine + ")" }

// Close releases nothing on the server (the registry owns the model's
// lifecycle); it exists to satisfy kv.Store. Close the Client to tear
// down the connections.
func (m *Model) Close() error { return nil }

// Checkpoint asks the server to make the model durable.
func (m *Model) Checkpoint() error { return m.CheckpointCtx(context.Background()) }

// CheckpointCtx is Checkpoint bounded by ctx.
func (m *Model) CheckpointCtx(ctx context.Context) error {
	cn, err := m.c.pick()
	if err != nil {
		return err
	}
	p, err := cn.roundTripCtx(ctx, wire.OpCheckpoint, wire.EncodeHandle(m.handle))
	cn.release(p)
	return err
}

// Stats fetches the engine's merged operation counters (kv.StatsReporter).
func (m *Model) Stats() faster.StatsSnapshot {
	s, err := m.ModelStats(context.Background())
	if err != nil {
		return faster.StatsSnapshot{}
	}
	return s.StatsSnapshot
}

// ModelStats fetches the full per-model counter set: engine counters plus
// the server's batch/lookahead frame counts and active-session gauge.
func (m *Model) ModelStats(ctx context.Context) (wire.ModelStats, error) {
	cn, err := m.c.pick()
	if err != nil {
		return wire.ModelStats{}, err
	}
	p, err := cn.roundTripCtx(ctx, wire.OpStats, wire.EncodeHandle(m.handle))
	if err != nil {
		return wire.ModelStats{}, err
	}
	s, err := wire.DecodeStatsResp(p)
	cn.release(p)
	return s, err
}

// NewSession returns a session bound to one pooled connection, announced
// to the server with an ATTACH frame. Like every kv.Session it is
// single-goroutine; sessions sharing a connection pipeline.
func (m *Model) NewSession() (kv.Session, error) {
	return m.NewSessionCtx(context.Background())
}

// NewSessionCtx is NewSession bounded by ctx.
func (m *Model) NewSessionCtx(ctx context.Context) (*Session, error) {
	cn, err := m.c.pick()
	if err != nil {
		return nil, fmt.Errorf("client: attach to model %q: %w", m.id, err)
	}
	if _, err := cn.roundTripCtx(ctx, wire.OpAttach, wire.EncodeHandle(m.handle)); err != nil {
		return nil, fmt.Errorf("client: attach to model %q: %w", m.id, err)
	}
	return &Session{m: m, cn: cn, slot: cn.idx, vs: m.dim * 4}, nil
}

// Session is one worker's remote handle onto a model.
type Session struct {
	m  *Model
	cn *conn
	// slot is the pool position the session rides: when its connection dies
	// and the slot heals with a fresh one, checkout follows the slot and
	// re-attaches there instead of failing every later request.
	slot   int
	vs     int
	closed bool
	// enc is the session's reusable request-encode scratch. A session is
	// single-goroutine and a round trip returns only after its frame is
	// written, so reuse across requests is safe and the steady-state
	// request path allocates nothing.
	enc []byte
	// henc is the hedge duplicate's encode scratch: the hedge frame (a
	// clock-free PEEK/PEEKBATCH) has a different payload layout than its
	// primary, and enc's bytes were already claimed by the primary's write.
	henc []byte
}

// checkout returns the session's connection, following the pool slot to a
// fresh one (and re-ATTACHing the model there) if the old connection died.
// The dead connection's server side already released the session's attach
// when it disconnected, so the re-attach keeps accounting truthful.
func (s *Session) checkout(ctx context.Context) (*conn, error) {
	if !s.cn.broken() {
		return s.cn, nil
	}
	cn, err := s.m.c.connAt(s.slot)
	if err != nil {
		return nil, err
	}
	if cn != s.cn {
		p, err := cn.roundTripCtx(ctx, wire.OpAttach, wire.EncodeHandle(s.m.handle))
		if err != nil {
			return nil, fmt.Errorf("client: re-attach to model %q: %w", s.m.id, err)
		}
		cn.release(p)
		s.cn = cn
	}
	return s.cn, nil
}

// hedgeable reports whether this session's reads may hedge right now:
// hedging configured, a second connection to duplicate onto, and the
// model's current bound unable to block (ASP or disabled — never BSP/SSP,
// whose reads wait on clock tokens a duplicate must not touch).
func (s *Session) hedgeable() bool {
	c := s.m.c
	return c.hedging() && len(c.conns) > 1 && !faster.BlockingBound(s.m.bound.Load())
}

// hedgedRead is a read round trip that re-issues itself if the response
// lags: the primary (op, s.enc) goes to the session's own connection; if
// no response arrives within the pool's hedge delay and the token bucket
// admits it, the clock-free duplicate (hedgeOp, encoded by encodeHedge
// into s.henc) goes to a neighboring connection, and whichever response
// arrives first wins. The loser is reaped in the background — its pending
// entry is deleted by the read loop on arrival and its payload returned
// to the pool, so abandoned hedges leak nothing.
//
// A hedge that answers with an error never wins: the primary is still in
// flight and authoritative (this also keeps hedging safe against servers
// predating PEEKBATCH, which answer RespErr). The returned conn is the
// winner; release the payload to it.
func (s *Session) hedgedRead(ctx context.Context, op, hedgeOp wire.Op, cls latency.Op, encodeHedge func(dst []byte) []byte) ([]byte, *conn, error) {
	c := s.m.c
	if err := ctx.Err(); err != nil {
		return nil, s.cn, err
	}
	c.depositHedgeCredit()
	start := time.Now()
	defer func() { c.lat.Since(cls, start) }()

	ch1, err := s.cn.begin(op, s.enc)
	if err != nil {
		return nil, s.cn, err
	}
	timer := time.NewTimer(c.hedgeDelay(cls))
	var cn2 *conn
	var ch2 chan response
	select {
	case r, ok := <-ch1:
		timer.Stop()
		p, err := s.cn.finish(r, ok)
		return p, s.cn, err
	case <-ctx.Done():
		timer.Stop()
		return nil, s.cn, ctx.Err()
	case <-timer.C:
		if c.takeHedgeToken() {
			cn2 = c.pickNot(s.cn)
			s.henc = encodeHedge(s.henc[:0])
			if ch2, err = cn2.begin(hedgeOp, s.henc); err != nil {
				cn2, ch2 = nil, nil // hedge conn broken; primary carries on
			} else {
				c.hedgeIssued.Add(1)
			}
		} else {
			c.hedgeSuppressed.Add(1)
		}
	}
	for {
		select {
		case r, ok := <-ch1:
			if ch2 != nil {
				c.hedgeWasted.Add(1)
				cn2.reap(ch2)
			}
			p, err := s.cn.finish(r, ok)
			return p, s.cn, err
		case r, ok := <-ch2: // nil (blocks forever) when no hedge went out
			p, err := cn2.finish(r, ok)
			if err != nil {
				// Failed hedges defer to the still-pending primary.
				c.hedgeWasted.Add(1)
				ch2 = nil
				continue
			}
			c.hedgeWon.Add(1)
			s.cn.reap(ch1)
			return p, cn2, nil
		case <-ctx.Done():
			if ch2 != nil {
				cn2.reap(ch2)
			}
			return nil, s.cn, ctx.Err()
		}
	}
}

func (s *Session) Get(key uint64, dst []byte) (bool, error) {
	return s.GetCtx(context.Background(), key, dst)
}

// GetCtx reads one key, honoring ctx end to end: the frame carries the
// context's remaining budget so a clocked read stalled on the staleness
// bound gives up on the server at the deadline (stranding no token), and
// the round trip itself returns ctx.Err() if ctx ends first.
func (s *Session) GetCtx(ctx context.Context, key uint64, dst []byte) (bool, error) {
	if len(dst) != s.vs {
		return false, fmt.Errorf("client: dst length %d != value size %d", len(dst), s.vs)
	}
	if _, err := s.checkout(ctx); err != nil {
		return false, err
	}
	s.enc = wire.AppendGet(s.enc[:0], s.m.handle, key, waitMsFrom(ctx))
	var p []byte
	var err error
	winner := s.cn
	if s.hedgeable() {
		// The duplicate is a PEEK: same read, clock-free by construction,
		// so a straggling primary can be outrun without consistency cost
		// (the bound already admits unbounded staleness here).
		p, winner, err = s.hedgedRead(ctx, wire.OpGet, wire.OpPeek, latency.OpGet, func(dst []byte) []byte {
			return wire.AppendKey(dst, s.m.handle, key)
		})
	} else {
		p, err = s.cn.roundTripCtx(ctx, wire.OpGet, s.enc)
	}
	if err != nil {
		// Near the deadline the server's "gave up" error and our own
		// timer race; the caller asked for ctx semantics either way.
		if cerr := ctx.Err(); cerr != nil {
			return false, cerr
		}
		return false, err
	}
	found, err := wire.DecodeGetResp(p, dst)
	winner.release(p)
	return found, err
}

// waitMsFrom converts ctx's remaining budget to the wire's wait field
// (0 = no deadline, wait forever).
func waitMsFrom(ctx context.Context) uint32 {
	d, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(d).Milliseconds()
	if ms <= 0 {
		return 1
	}
	if ms >= math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(ms)
}

// Peek implements kv.PeekSession: a clock-free read on the server, so
// remote evaluation never acquires staleness tokens that would stall
// training reads.
func (s *Session) Peek(key uint64, dst []byte) (bool, error) {
	return s.PeekCtx(context.Background(), key, dst)
}

// PeekCtx is Peek bounded by ctx.
func (s *Session) PeekCtx(ctx context.Context, key uint64, dst []byte) (bool, error) {
	if len(dst) != s.vs {
		return false, fmt.Errorf("client: dst length %d != value size %d", len(dst), s.vs)
	}
	if _, err := s.checkout(ctx); err != nil {
		return false, err
	}
	s.enc = wire.AppendKey(s.enc[:0], s.m.handle, key)
	p, err := s.cn.roundTripCtx(ctx, wire.OpPeek, s.enc)
	if err != nil {
		return false, err
	}
	found, err := wire.DecodeGetResp(p, dst)
	s.cn.release(p)
	return found, err
}

func (s *Session) Put(key uint64, val []byte) error {
	return s.PutCtx(context.Background(), key, val)
}

// PutCtx is Put bounded by ctx.
func (s *Session) PutCtx(ctx context.Context, key uint64, val []byte) error {
	if len(val) != s.vs {
		return fmt.Errorf("client: val length %d != value size %d", len(val), s.vs)
	}
	if _, err := s.checkout(ctx); err != nil {
		return err
	}
	s.enc = wire.AppendPut(s.enc[:0], s.m.handle, key, val)
	p, err := s.cn.roundTripCtx(ctx, wire.OpPut, s.enc)
	s.cn.release(p)
	return err
}

func (s *Session) Delete(key uint64) error {
	return s.DeleteCtx(context.Background(), key)
}

// DeleteCtx is Delete bounded by ctx.
func (s *Session) DeleteCtx(ctx context.Context, key uint64) error {
	if _, err := s.checkout(ctx); err != nil {
		return err
	}
	s.enc = wire.AppendKey(s.enc[:0], s.m.handle, key)
	p, err := s.cn.roundTripCtx(ctx, wire.OpDelete, s.enc)
	s.cn.release(p)
	return err
}

// Prefetch ships a one-key LOOKAHEAD; true means the server copied the
// record toward memory.
func (s *Session) Prefetch(key uint64) (bool, error) {
	n, err := s.Lookahead([]uint64{key})
	return n > 0, err
}

// Lookahead asks the server to prefetch keys, returning how many records
// it copied toward memory.
func (s *Session) Lookahead(keys []uint64) (int, error) {
	return s.LookaheadCtx(context.Background(), keys)
}

// LookaheadCtx is Lookahead bounded by ctx.
func (s *Session) LookaheadCtx(ctx context.Context, keys []uint64) (int, error) {
	if _, err := s.checkout(ctx); err != nil {
		return 0, err
	}
	total := 0
	for len(keys) > 0 {
		chunk := keys
		if len(chunk) > s.m.c.opts.MaxKeysPerFrame {
			chunk = chunk[:s.m.c.opts.MaxKeysPerFrame]
		}
		keys = keys[len(chunk):]
		s.enc = wire.AppendKeys(s.enc[:0], s.m.handle, chunk)
		p, err := s.cn.roundTripCtx(ctx, wire.OpLookahead, s.enc)
		if err != nil {
			return total, err
		}
		n, err := wire.DecodeUint32(p)
		s.cn.release(p)
		if err != nil {
			return total, err
		}
		total += int(n)
	}
	return total, nil
}

// GetBatch implements kv.BatchSession: one frame per MaxKeysPerFrame
// chunk, each fanned into the server's sharded store as a single batched
// read.
func (s *Session) GetBatch(keys []uint64, vals []byte, found []bool) error {
	return s.GetBatchCtx(context.Background(), keys, vals, found)
}

// GetBatchCtx is GetBatch bounded by ctx end to end: checked per frame on
// the round trip, and carried in each frame so a stalled batch gives up
// on the server at the deadline (see GetCtx).
func (s *Session) GetBatchCtx(ctx context.Context, keys []uint64, vals []byte, found []bool) error {
	if _, err := s.checkout(ctx); err != nil {
		return err
	}
	vs := s.vs
	for len(keys) > 0 {
		n := len(keys)
		if n > s.m.c.opts.MaxKeysPerFrame {
			n = s.m.c.opts.MaxKeysPerFrame
		}
		s.enc = wire.AppendGetBatch(s.enc[:0], s.m.handle, waitMsFrom(ctx), keys[:n])
		var p []byte
		var err error
		winner := s.cn
		if s.hedgeable() {
			// Duplicate as PEEKBATCH: identical response layout, clock-free
			// by construction (see GetCtx).
			p, winner, err = s.hedgedRead(ctx, wire.OpGetBatch, wire.OpPeekBatch, latency.OpGetBatch, func(dst []byte) []byte {
				return wire.AppendKeys(dst, s.m.handle, keys[:n])
			})
		} else {
			p, err = s.cn.roundTripCtx(ctx, wire.OpGetBatch, s.enc)
		}
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			return err
		}
		err = wire.DecodeGetBatchResp(p, vs, found[:n], vals[:n*vs])
		winner.release(p)
		if err != nil {
			return err
		}
		keys, found, vals = keys[n:], found[n:], vals[n*vs:]
	}
	return nil
}

// PutBatch implements kv.BatchSession.
func (s *Session) PutBatch(keys []uint64, vals []byte) error {
	return s.PutBatchCtx(context.Background(), keys, vals)
}

// PutBatchCtx is PutBatch bounded by ctx, checked per frame.
func (s *Session) PutBatchCtx(ctx context.Context, keys []uint64, vals []byte) error {
	if _, err := s.checkout(ctx); err != nil {
		return err
	}
	vs := s.vs
	for len(keys) > 0 {
		n := len(keys)
		if n > s.m.c.opts.MaxKeysPerFrame {
			n = s.m.c.opts.MaxKeysPerFrame
		}
		s.enc = wire.AppendPutBatch(s.enc[:0], s.m.handle, keys[:n], vals[:n*vs])
		p, err := s.cn.roundTripCtx(ctx, wire.OpPutBatch, s.enc)
		s.cn.release(p)
		if err != nil {
			return err
		}
		keys, vals = keys[n:], vals[n*vs:]
	}
	return nil
}

// Close releases the session: a DETACH frame tells the server to drop it
// from the model's active-session accounting (best effort — a dead
// connection already released it server-side). The pooled connection
// stays open for other sessions. Idempotent.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.cn.broken() {
		return // the dead connection already released the attach server-side
	}
	p, _ := s.cn.roundTrip(wire.OpDetach, wire.EncodeHandle(s.m.handle))
	s.cn.release(p)
}

// PeekBatch reads a batch with PEEK semantics (see Peek): clock-free, so
// it never blocks on a staleness bound.
func (s *Session) PeekBatch(keys []uint64, vals []byte, found []bool) error {
	return s.PeekBatchCtx(context.Background(), keys, vals, found)
}

// PeekBatchCtx is PeekBatch bounded by ctx, checked per frame. The cluster
// router reads replicas through it — a peek acquires no clock tokens, so a
// lagging replica can answer it without consistency cost, and a miss falls
// back to the primary.
func (s *Session) PeekBatchCtx(ctx context.Context, keys []uint64, vals []byte, found []bool) error {
	if _, err := s.checkout(ctx); err != nil {
		return err
	}
	vs := s.vs
	for len(keys) > 0 {
		n := len(keys)
		if n > s.m.c.opts.MaxKeysPerFrame {
			n = s.m.c.opts.MaxKeysPerFrame
		}
		s.enc = wire.AppendKeys(s.enc[:0], s.m.handle, keys[:n])
		p, err := s.cn.roundTripCtx(ctx, wire.OpPeekBatch, s.enc)
		if err != nil {
			return err
		}
		err = wire.DecodeGetBatchResp(p, vs, found[:n], vals[:n*vs])
		s.cn.release(p)
		if err != nil {
			return err
		}
		keys, found, vals = keys[n:], found[n:], vals[n*vs:]
	}
	return nil
}

// conn is one pooled connection with a demultiplexing reader goroutine.
type conn struct {
	c   net.Conn
	idx int // position in the owning pool (hedges pick a neighbor)
	bw  *bufio.Writer
	fw  *wire.FrameWriter // over bw; guarded by wmu

	wmu sync.Mutex // serializes frame writes across sessions
	// writers counts round trips between "committed to write" and "frame
	// written": the last one out flushes, so concurrent pipelined requests
	// coalesce into one syscall (the server's flush-on-idle pattern,
	// mirrored client-side).
	writers atomic.Int32

	pmu     sync.Mutex
	pending map[uint32]chan response
	closed  bool
	failure error

	nextID atomic.Uint32
	done   chan struct{}

	// bufs recycles response payload buffers: the read loop copies each
	// frame's payload out of its reusable frame buffer into a pooled one,
	// and the round-trip caller releases it back after parsing. Callers
	// that abandon a round trip simply leak their buffer to the GC.
	bufs sync.Pool

	// lat points at the owning Client's pool-wide histograms; data-op
	// round trips record into it (nil on test-only bare conns).
	lat *latency.OpSet
}

// broken reports whether the connection has been poisoned by a failure or
// closed: its slot should be re-checked out, not written to.
func (cn *conn) broken() bool {
	cn.pmu.Lock()
	b := cn.closed || cn.failure != nil
	cn.pmu.Unlock()
	return b
}

// getBuf returns a pooled buffer of length n (allocating if the pooled
// one is too small).
func (cn *conn) getBuf(n int) []byte {
	if v := cn.bufs.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// release returns a round trip's payload to the pool. Safe on nil and
// zero-capacity slices.
func (cn *conn) release(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	cn.bufs.Put(&b)
}

type response struct {
	op      wire.Op
	payload []byte
}

func dialConn(addr string, opts Options, lat *latency.OpSet) (*conn, error) {
	dial := opts.dial
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	nc, err := dial(addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // latency matters more than segment count
	}
	cn := &conn{
		c:       nc,
		bw:      bufio.NewWriterSize(nc, connBufSize),
		pending: make(map[uint32]chan response),
		done:    make(chan struct{}),
		lat:     lat,
	}
	cn.fw = wire.NewFrameWriter(cn.bw)
	go cn.readLoop(opts.MaxFrame)
	return cn, nil
}

const connBufSize = 64 << 10

// readLoop demultiplexes responses to their waiting round trips until the
// connection dies, then fails everything still pending.
func (cn *conn) readLoop(maxFrame uint32) {
	br := bufio.NewReaderSize(cn.c, connBufSize)
	var err error
	// One reusable frame buffer for the loop; each payload is copied into
	// a pooled buffer before handoff, so neither side of the exchange
	// allocates in steady state.
	var frameBuf []byte
	for {
		var f wire.Frame
		f, frameBuf, err = wire.ReadFrameBuf(br, maxFrame, frameBuf)
		if err != nil {
			break
		}
		cn.pmu.Lock()
		ch, ok := cn.pending[f.CorrID]
		delete(cn.pending, f.CorrID)
		cn.pmu.Unlock()
		if ok {
			var p []byte
			if len(f.Payload) > 0 {
				p = cn.getBuf(len(f.Payload))
				copy(p, f.Payload)
			}
			// Buffered (cap 1): a caller that gave up on ctx is not
			// reading, and the response must not stall the loop.
			ch <- response{op: f.Op, payload: p}
		}
	}
	cn.pmu.Lock()
	if cn.failure == nil {
		cn.failure = fmt.Errorf("client: connection lost: %w", err)
	}
	for id, ch := range cn.pending {
		delete(cn.pending, id)
		close(ch)
	}
	cn.pmu.Unlock()
	close(cn.done)
}

// roundTrip sends one request and blocks for its response. Concurrent
// calls pipeline: writes interleave under wmu and the read loop routes
// each response to its caller.
func (cn *conn) roundTrip(op wire.Op, payload []byte) ([]byte, error) {
	return cn.roundTripCtx(context.Background(), op, payload)
}

// roundTripCtx is roundTrip bounded by ctx: if ctx ends first the caller
// gets ctx.Err() and the eventual response is dropped by the read loop.
// The request itself is not retracted — the server will still process it.
//
// A non-empty success payload is a pooled buffer: the caller must hand it
// back with cn.release once parsed (forgetting to merely costs the reuse).
func (cn *conn) roundTripCtx(ctx context.Context, op wire.Op, payload []byte) ([]byte, error) {
	cls, timed := opClass(op)
	if !timed || cn.lat == nil {
		return cn.doRoundTrip(ctx, op, payload)
	}
	start := time.Now()
	p, err := cn.doRoundTrip(ctx, op, payload)
	cn.lat.Since(cls, start)
	return p, err
}

// opClass maps a request opcode to its latency class; control-plane ops
// (HELLO, OPEN, ATTACH, STATS, ...) are not timed. PEEK shares the Get
// histogram and DELETE the Put one, matching the server's folding.
func opClass(op wire.Op) (latency.Op, bool) {
	switch op {
	case wire.OpGet, wire.OpPeek:
		return latency.OpGet, true
	case wire.OpGetBatch, wire.OpPeekBatch:
		return latency.OpGetBatch, true
	case wire.OpPut, wire.OpDelete:
		return latency.OpPut, true
	case wire.OpPutBatch:
		return latency.OpPutBatch, true
	case wire.OpLookahead:
		// Prefetch hints ride the Get class: they contend for the same
		// store shards and their stalls surface as read tail.
		return latency.OpGet, true
	}
	return 0, false
}

func (cn *conn) doRoundTrip(ctx context.Context, op wire.Op, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ch, err := cn.begin(op, payload)
	if err != nil {
		return nil, err
	}
	select {
	case r, ok := <-ch:
		return cn.finish(r, ok)
	case <-ctx.Done():
		// Abandon the round trip. Leave the pending entry for the read
		// loop: the buffered channel absorbs the late response.
		return nil, ctx.Err()
	}
}

// begin registers a pending slot and writes the request frame; the
// response will arrive on the returned buffered channel (closed if the
// connection dies first). It is the send half of a round trip, split out
// so a hedged read can have two requests in flight and wait on both.
func (cn *conn) begin(op wire.Op, payload []byte) (chan response, error) {
	id := cn.nextID.Add(1)
	ch := make(chan response, 1)
	cn.pmu.Lock()
	if cn.closed || cn.failure != nil {
		err := cn.failure
		cn.pmu.Unlock()
		if err == nil {
			err = errors.New("client: connection closed")
		}
		return nil, err
	}
	cn.pending[id] = ch
	cn.pmu.Unlock()

	if err := cn.send(id, op, payload); err != nil {
		cn.pmu.Lock()
		delete(cn.pending, id)
		cn.pmu.Unlock()
		return nil, err
	}
	return ch, nil
}

// send writes one frame, flushing only when this is the last counted
// writer: N concurrent pipelined requests coalesce into ~1 syscall.
// Correctness of the skipped flush: the writer it yielded to has already
// incremented the counter and will hold wmu after us, so every buffered
// byte is flushed by whichever counted writer leaves last.
func (cn *conn) send(id uint32, op wire.Op, payload []byte) error {
	cn.writers.Add(1)
	cn.wmu.Lock()
	err := cn.fw.Write(id, op, payload)
	if cn.writers.Add(-1) == 0 && err == nil {
		err = cn.bw.Flush()
	}
	cn.wmu.Unlock()
	if err != nil {
		// A failed write or flush leaves the stream framing unknown (and
		// may strand another writer's coalesced bytes); poison the
		// connection so everything pending fails fast instead of waiting
		// on responses that can never arrive.
		cn.fail(err)
	}
	return err
}

// fail marks the connection broken and closes it, which unblocks the
// read loop to fail every pending round trip. First error wins.
func (cn *conn) fail(err error) {
	cn.pmu.Lock()
	if cn.failure == nil {
		cn.failure = fmt.Errorf("client: write failed: %w", err)
	}
	cn.pmu.Unlock()
	cn.c.Close()
}

// finish interprets a delivered response (or the closed channel of a dead
// connection). It is the receive half of a round trip.
func (cn *conn) finish(r response, ok bool) ([]byte, error) {
	if !ok {
		cn.pmu.Lock()
		err := cn.failure
		cn.pmu.Unlock()
		return nil, err
	}
	switch r.op {
	case wire.RespOK:
		return r.payload, nil
	case wire.RespErr:
		err := respError(string(r.payload))
		cn.release(r.payload)
		return nil, err
	case wire.RespNotOwner:
		m := append([]byte(nil), r.payload...)
		cn.release(r.payload)
		return nil, &NotOwnerError{Map: m}
	}
	cn.release(r.payload)
	return nil, fmt.Errorf("client: unexpected response opcode %s", r.op)
}

// reap drains an abandoned round trip's channel in the background and
// returns the late payload to the pool. The read loop deletes the
// pending entry when the response lands (so no map leak either way);
// connection death closes the channel, ending the wait. Hedged reads use
// it for the losing attempt.
func (cn *conn) reap(ch chan response) {
	go func() {
		if r, ok := <-ch; ok {
			cn.release(r.payload)
		}
	}()
}

// ServerError is an application-level refusal: the server processed the
// request and answered RespErr over a healthy connection. Anything else a
// round trip returns is transport trouble (a dead connection, a timeout) —
// callers that probe capabilities (the cluster bootstrap) branch on the
// distinction with errors.As.
type ServerError struct{ Msg string }

// Error returns the server's message verbatim.
func (e *ServerError) Error() string { return e.Msg }

// respError rebuilds a server error. Deadline/cancellation errors — a
// read that gave up server-side at the wait budget this client put on the
// wire — come back as the canonical context errors so errors.Is works
// across the network boundary.
func respError(msg string) error {
	switch {
	case strings.Contains(msg, context.DeadlineExceeded.Error()):
		return fmt.Errorf("client: server gave up: %w", context.DeadlineExceeded)
	case strings.Contains(msg, context.Canceled.Error()):
		return fmt.Errorf("client: server gave up: %w", context.Canceled)
	}
	return &ServerError{Msg: msg}
}

func (cn *conn) close() error {
	cn.pmu.Lock()
	cn.closed = true
	cn.pmu.Unlock()
	err := cn.c.Close()
	<-cn.done // reader has failed all pending and exited
	return err
}
