// Package client is the remote face of an mlkv-server: a connection pool
// speaking the internal/wire protocol, exposed through the same
// kv.Store/kv.Session interfaces the in-process engines implement, so the
// YCSB harness, benchmark sweeps, and examples run against a remote store
// unchanged.
//
// Sessions are assigned to pooled connections round-robin. Every
// connection has a reader goroutine that demultiplexes responses by
// correlation ID, so sessions sharing a connection pipeline their
// requests: the second request is on the wire before the first response
// returns. Batch operations travel as single frames and fan into the
// server's sharded store as one batched call — the unit that amortizes
// the network round trip.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/llm-db/mlkv-go/internal/faster"
	"github.com/llm-db/mlkv-go/internal/kv"
	"github.com/llm-db/mlkv-go/internal/wire"
)

// Options configures Dial.
type Options struct {
	// Conns is the pool size (default 2). Each server connection is
	// served by one store session and handled serially on the server, so
	// parallelism across the store is min(Conns, concurrent sessions);
	// sessions beyond Conns share connections via pipelining. Set it to
	// the worker count for full fan-out.
	Conns int
	// MaxFrame bounds incoming response frames (default wire.DefaultMaxFrame).
	MaxFrame uint32
	// DialTimeout bounds each TCP connect (default 5s).
	DialTimeout time.Duration
	// MaxKeysPerFrame splits larger batches into multiple frames (default
	// 4096, capped at wire.MaxBatchKeys).
	MaxKeysPerFrame int
}

// Client is a remote kv.Store. It also implements kv.Checkpointer,
// kv.StatsReporter, and kv.Sharded by delegating to the server.
type Client struct {
	opts      Options
	conns     []*conn
	next      atomic.Uint64
	valueSize int
	shards    int
	name      string
}

// Dial connects the pool and performs the HELLO handshake.
func Dial(addr string, opts Options) (*Client, error) {
	if opts.Conns <= 0 {
		opts.Conns = 2
	}
	if opts.MaxFrame == 0 {
		opts.MaxFrame = wire.DefaultMaxFrame
	}
	if opts.DialTimeout == 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.MaxKeysPerFrame <= 0 || opts.MaxKeysPerFrame > wire.MaxBatchKeys {
		opts.MaxKeysPerFrame = 4096
	}
	c := &Client{opts: opts}
	for i := 0; i < opts.Conns; i++ {
		cn, err := dialConn(addr, opts)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns = append(c.conns, cn)
	}
	p, err := c.conns[0].roundTrip(wire.OpHello, wire.EncodeHello())
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	vs, shards, name, err := wire.DecodeHelloResp(p)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	c.valueSize, c.shards, c.name = vs, shards, name
	return c, nil
}

// ValueSize returns the server store's fixed value payload size.
func (c *Client) ValueSize() int { return c.valueSize }

// Shards returns the server store's hash-partition count.
func (c *Client) Shards() int { return c.shards }

// Name identifies the remote engine in benchmark output.
func (c *Client) Name() string { return "remote(" + c.name + ")" }

// Close tears down every pooled connection; outstanding requests fail.
func (c *Client) Close() error {
	var first error
	for _, cn := range c.conns {
		if err := cn.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// pick returns the next pooled connection round-robin.
func (c *Client) pick() *conn {
	return c.conns[c.next.Add(1)%uint64(len(c.conns))]
}

// NewSession returns a session bound to one pooled connection. Like every
// kv.Session it is single-goroutine; sessions sharing a connection
// pipeline their requests.
func (c *Client) NewSession() (kv.Session, error) {
	return &session{c: c, cn: c.pick(), vs: c.valueSize}, nil
}

// Checkpoint asks the server to make the store durable.
func (c *Client) Checkpoint() error {
	_, err := c.pick().roundTrip(wire.OpCheckpoint, nil)
	return err
}

// Stats fetches the server store's merged operation counters.
func (c *Client) Stats() faster.StatsSnapshot {
	p, err := c.pick().roundTrip(wire.OpStats, nil)
	if err != nil {
		return faster.StatsSnapshot{}
	}
	s, err := wire.DecodeStatsResp(p)
	if err != nil {
		return faster.StatsSnapshot{}
	}
	return s
}

// session is one worker's remote handle.
type session struct {
	c  *Client
	cn *conn
	vs int
}

func (s *session) Get(key uint64, dst []byte) (bool, error) {
	if len(dst) != s.vs {
		return false, fmt.Errorf("client: dst length %d != value size %d", len(dst), s.vs)
	}
	p, err := s.cn.roundTrip(wire.OpGet, wire.EncodeKey(key))
	if err != nil {
		return false, err
	}
	return wire.DecodeGetResp(p, dst)
}

// Peek implements kv.PeekSession: a clock-free read on the server, so
// remote evaluation never acquires staleness tokens that would stall
// training reads.
func (s *session) Peek(key uint64, dst []byte) (bool, error) {
	if len(dst) != s.vs {
		return false, fmt.Errorf("client: dst length %d != value size %d", len(dst), s.vs)
	}
	p, err := s.cn.roundTrip(wire.OpPeek, wire.EncodeKey(key))
	if err != nil {
		return false, err
	}
	return wire.DecodeGetResp(p, dst)
}

func (s *session) Put(key uint64, val []byte) error {
	if len(val) != s.vs {
		return fmt.Errorf("client: val length %d != value size %d", len(val), s.vs)
	}
	_, err := s.cn.roundTrip(wire.OpPut, wire.EncodePut(key, val))
	return err
}

func (s *session) Delete(key uint64) error {
	_, err := s.cn.roundTrip(wire.OpDelete, wire.EncodeKey(key))
	return err
}

// Prefetch ships a one-key LOOKAHEAD; true means the server copied the
// record toward memory.
func (s *session) Prefetch(key uint64) (bool, error) {
	n, err := s.Lookahead([]uint64{key})
	return n > 0, err
}

// Lookahead asks the server to prefetch keys, returning how many records
// it copied toward memory.
func (s *session) Lookahead(keys []uint64) (int, error) {
	total := 0
	for len(keys) > 0 {
		chunk := keys
		if len(chunk) > s.c.opts.MaxKeysPerFrame {
			chunk = chunk[:s.c.opts.MaxKeysPerFrame]
		}
		keys = keys[len(chunk):]
		p, err := s.cn.roundTrip(wire.OpLookahead, wire.EncodeKeys(chunk))
		if err != nil {
			return total, err
		}
		n, err := wire.DecodeUint32(p)
		if err != nil {
			return total, err
		}
		total += int(n)
	}
	return total, nil
}

// GetBatch implements kv.BatchSession: one frame per MaxKeysPerFrame
// chunk, each fanned into the server's sharded store as a single batched
// read.
func (s *session) GetBatch(keys []uint64, vals []byte, found []bool) error {
	vs := s.vs
	for len(keys) > 0 {
		n := len(keys)
		if n > s.c.opts.MaxKeysPerFrame {
			n = s.c.opts.MaxKeysPerFrame
		}
		p, err := s.cn.roundTrip(wire.OpGetBatch, wire.EncodeKeys(keys[:n]))
		if err != nil {
			return err
		}
		if err := wire.DecodeGetBatchResp(p, vs, found[:n], vals[:n*vs]); err != nil {
			return err
		}
		keys, found, vals = keys[n:], found[n:], vals[n*vs:]
	}
	return nil
}

// PutBatch implements kv.BatchSession.
func (s *session) PutBatch(keys []uint64, vals []byte) error {
	vs := s.vs
	for len(keys) > 0 {
		n := len(keys)
		if n > s.c.opts.MaxKeysPerFrame {
			n = s.c.opts.MaxKeysPerFrame
		}
		if _, err := s.cn.roundTrip(wire.OpPutBatch, wire.EncodePutBatch(keys[:n], vals[:n*vs])); err != nil {
			return err
		}
		keys, vals = keys[n:], vals[n*vs:]
	}
	return nil
}

// Close releases the session. The pooled connection stays open for other
// sessions.
func (s *session) Close() {}

// conn is one pooled connection with a demultiplexing reader goroutine.
type conn struct {
	c  net.Conn
	bw *bufio.Writer

	wmu sync.Mutex // serializes frame writes across sessions

	pmu     sync.Mutex
	pending map[uint32]chan response
	closed  bool
	failure error

	nextID atomic.Uint32
	done   chan struct{}
}

type response struct {
	op      wire.Op
	payload []byte
}

func dialConn(addr string, opts Options) (*conn, error) {
	nc, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // latency matters more than segment count
	}
	cn := &conn{
		c:       nc,
		bw:      bufio.NewWriterSize(nc, connBufSize),
		pending: make(map[uint32]chan response),
		done:    make(chan struct{}),
	}
	go cn.readLoop(opts.MaxFrame)
	return cn, nil
}

const connBufSize = 64 << 10

// readLoop demultiplexes responses to their waiting round trips until the
// connection dies, then fails everything still pending.
func (cn *conn) readLoop(maxFrame uint32) {
	br := bufio.NewReaderSize(cn.c, connBufSize)
	var err error
	for {
		var f wire.Frame
		f, err = wire.ReadFrame(br, maxFrame)
		if err != nil {
			break
		}
		cn.pmu.Lock()
		ch, ok := cn.pending[f.CorrID]
		delete(cn.pending, f.CorrID)
		cn.pmu.Unlock()
		if ok {
			ch <- response{op: f.Op, payload: f.Payload}
		}
	}
	cn.pmu.Lock()
	if cn.failure == nil {
		cn.failure = fmt.Errorf("client: connection lost: %w", err)
	}
	for id, ch := range cn.pending {
		delete(cn.pending, id)
		close(ch)
	}
	cn.pmu.Unlock()
	close(cn.done)
}

// roundTrip sends one request and blocks for its response. Concurrent
// calls pipeline: writes interleave under wmu and the read loop routes
// each response to its caller.
func (cn *conn) roundTrip(op wire.Op, payload []byte) ([]byte, error) {
	id := cn.nextID.Add(1)
	ch := make(chan response, 1)
	cn.pmu.Lock()
	if cn.closed || cn.failure != nil {
		err := cn.failure
		cn.pmu.Unlock()
		if err == nil {
			err = errors.New("client: connection closed")
		}
		return nil, err
	}
	cn.pending[id] = ch
	cn.pmu.Unlock()

	cn.wmu.Lock()
	err := wire.WriteFrame(cn.bw, id, op, payload)
	if err == nil {
		err = cn.bw.Flush()
	}
	cn.wmu.Unlock()
	if err != nil {
		cn.pmu.Lock()
		delete(cn.pending, id)
		cn.pmu.Unlock()
		return nil, err
	}

	r, ok := <-ch
	if !ok {
		cn.pmu.Lock()
		err := cn.failure
		cn.pmu.Unlock()
		return nil, err
	}
	switch r.op {
	case wire.RespOK:
		return r.payload, nil
	case wire.RespErr:
		return nil, errors.New(string(r.payload))
	}
	return nil, fmt.Errorf("client: unexpected response opcode %s", r.op)
}

func (cn *conn) close() error {
	cn.pmu.Lock()
	cn.closed = true
	cn.pmu.Unlock()
	err := cn.c.Close()
	<-cn.done // reader has failed all pending and exited
	return err
}
